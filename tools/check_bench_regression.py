#!/usr/bin/env python3
"""Guard against simulator-throughput regressions.

Compares a freshly produced ``glifs.bench_report.v1`` JSON (the
``bench_sim_throughput`` output) against the committed baseline
``BENCH_sim_throughput.json`` and fails when any shared
``cycles_per_sec`` row dropped by more than the threshold (default
30%).

Raw rates are machine-dependent, so for cross-machine use (CI runners
vs the machine that committed the baseline) pass ``--normalize-by
<row>``: every fresh rate is scaled by ``baseline[row] / fresh[row]``
before comparison, cancelling the overall speed difference while
still catching *relative* regressions -- e.g. the packed backend
losing its edge over the interpreter.

``--scaling-floor FRAC`` switches to a different check, for the
``bench_explore_scaling`` report: every ``.../jobs:N`` row's
``speedup_vs_serial`` must reach ``FRAC * min(N, cpus)``, where
``cpus`` is the online-CPU counter *recorded in the fresh report
itself* -- so a 1-core CI runner only demands the coordinator is no
slower than serial, while a many-core machine demands real scaling
(0.375 * 8 = 3x at jobs=8 with the default floor). No baseline file
is involved; the floor is absolute.

Exit code 0 when within budget, 1 on regression or malformed input.
"""

import argparse
import json
import re
import sys


def load_rates(path):
    """Return {row name: cycles_per_sec} from a bench report."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "glifs.bench_report.v1":
        raise ValueError(f"{path}: not a glifs.bench_report.v1 file")
    rates = {}
    for row in doc.get("results", []):
        rate = row.get("cycles_per_sec")
        if isinstance(rate, (int, float)) and rate > 0:
            rates[row["name"]] = float(rate)
    if not rates:
        raise ValueError(f"{path}: no cycles_per_sec rows")
    return rates


def compare(baseline, fresh, threshold, normalize_by=None):
    """Yield (name, base, scaled_fresh, ok) for every shared row."""
    scale = 1.0
    if normalize_by is not None:
        if normalize_by not in baseline or normalize_by not in fresh:
            raise ValueError(
                f"--normalize-by row {normalize_by!r} missing from "
                "baseline or fresh report")
        scale = baseline[normalize_by] / fresh[normalize_by]
    for name in sorted(baseline):
        if name not in fresh:
            continue
        base = baseline[name]
        got = fresh[name] * scale
        yield name, base, got, got >= base * (1.0 - threshold)


def load_scaling_rows(path):
    """Return [(jobs, speedup, cpus)] from a scaling bench report."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "glifs.bench_report.v1":
        raise ValueError(f"{path}: not a glifs.bench_report.v1 file")
    rows = []
    for row in doc.get("results", []):
        m = re.search(r"/jobs:(\d+)$", row.get("name", ""))
        if not m:
            continue
        speedup = row.get("speedup_vs_serial")
        cpus = row.get("cpus")
        if not isinstance(speedup, (int, float)) or \
           not isinstance(cpus, (int, float)) or cpus < 1:
            raise ValueError(
                f"{path}: row {row.get('name')!r} lacks "
                "speedup_vs_serial/cpus counters")
        rows.append((int(m.group(1)), float(speedup), float(cpus)))
    if not rows:
        raise ValueError(f"{path}: no .../jobs:N scaling rows")
    return rows


def check_scaling(rows, floor):
    """Yield (jobs, speedup, required, ok) for every jobs > 1 row."""
    for jobs, speedup, cpus in sorted(rows):
        if jobs <= 1:
            continue
        required = floor * min(jobs, cpus)
        yield jobs, speedup, required, speedup >= required


def self_test():
    base = {"a": 100.0, "b": 200.0, "norm": 1000.0}
    ok_fresh = {"a": 90.0, "b": 250.0, "norm": 1000.0}
    bad_fresh = {"a": 60.0, "b": 250.0, "norm": 1000.0}
    rows = list(compare(base, ok_fresh, 0.30))
    assert all(ok for _, _, _, ok in rows), rows
    rows = list(compare(base, bad_fresh, 0.30))
    assert [ok for _, _, _, ok in rows] == [False, True, True], rows
    # Normalization cancels a uniformly slower machine...
    slow = {k: v / 3.0 for k, v in base.items()}
    rows = list(compare(base, slow, 0.30, normalize_by="norm"))
    assert all(ok for _, _, _, ok in rows), rows
    # ...but still catches a relative regression.
    slow["a"] /= 2.0
    rows = list(compare(base, slow, 0.30, normalize_by="norm"))
    assert [ok for n, _, _, ok in rows if n == "a"] == [False], rows
    # Rows missing on either side are skipped, not errors.
    assert len(list(compare(base, {"a": 100.0, "norm": 1.0}, 0.3))) == 2
    # Scaling floor: min(jobs, cpus) caps what a small machine owes.
    one_core = [(1, 1.0, 1.0), (4, 0.9, 1.0), (8, 0.95, 1.0)]
    assert all(ok for *_, ok in check_scaling(one_core, 0.375)), \
        list(check_scaling(one_core, 0.375))
    eight_core = [(1, 1.0, 8.0), (4, 1.6, 8.0), (8, 3.1, 8.0)]
    rows = list(check_scaling(eight_core, 0.375))
    assert [ok for *_, ok in rows] == [True, True], rows
    eight_core_bad = [(1, 1.0, 8.0), (8, 2.5, 8.0)]
    rows = list(check_scaling(eight_core_bad, 0.375))
    assert [ok for *_, ok in rows] == [False], rows
    print("check_bench_regression: self-test ok")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", help="committed bench report")
    ap.add_argument("--fresh", help="freshly produced bench report")
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="max allowed fractional drop (default 0.30)")
    ap.add_argument("--normalize-by", metavar="ROW",
                    help="scale fresh rates so this row matches the "
                         "baseline (cross-machine comparison)")
    ap.add_argument("--scaling-floor", type=float, metavar="FRAC",
                    help="check --fresh as a bench_explore_scaling "
                         "report: speedup_vs_serial of every jobs:N "
                         "row must reach FRAC * min(N, cpus)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in unit checks and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    if args.scaling_floor is not None:
        if not args.fresh:
            ap.error("--scaling-floor requires --fresh")
        try:
            rows = list(check_scaling(load_scaling_rows(args.fresh),
                                      args.scaling_floor))
        except (OSError, ValueError, KeyError) as e:
            print(f"check_bench_regression: {e}", file=sys.stderr)
            return 1
        failures = 0
        for jobs, speedup, required, ok in rows:
            flag = "ok" if ok else "REGRESSION"
            print(f"{flag:>10}  explore jobs={jobs:<2d} "
                  f"speedup {speedup:5.2f}x (floor {required:.2f}x)")
            failures += not ok
        if not rows:
            print("check_bench_regression: no jobs>1 scaling rows",
                  file=sys.stderr)
            return 1
        if failures:
            print(f"check_bench_regression: {failures} scaling "
                  f"row(s) under the floor", file=sys.stderr)
            return 1
        print(f"check_bench_regression: {len(rows)} scaling row(s) "
              f"above the {args.scaling_floor:.3f} floor")
        return 0

    if not args.baseline or not args.fresh:
        ap.error("--baseline and --fresh are required")

    try:
        baseline = load_rates(args.baseline)
        fresh = load_rates(args.fresh)
        rows = list(compare(baseline, fresh, args.threshold,
                            args.normalize_by))
    except (OSError, ValueError, KeyError) as e:
        print(f"check_bench_regression: {e}", file=sys.stderr)
        return 1

    failures = 0
    for name, base, got, ok in rows:
        delta = (got - base) / base * 100.0
        flag = "ok" if ok else "REGRESSION"
        print(f"{flag:>10}  {name:40s} {base:12.0f} -> {got:12.0f} "
              f"({delta:+.1f}%)")
        failures += not ok
    if not rows:
        print("check_bench_regression: no shared cycles_per_sec rows",
              file=sys.stderr)
        return 1
    if failures:
        print(f"check_bench_regression: {failures} row(s) regressed "
              f"beyond {args.threshold:.0%}", file=sys.stderr)
        return 1
    print(f"check_bench_regression: {len(rows)} row(s) within "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
