/**
 * @file
 * glifs-audit: command-line front end to the toolflow (Figure 10).
 *
 * Usage:
 *   glifs_audit <firmware.s> [options]
 *
 * Options:
 *   --policy FILE      load labels from a policy file (see
 *                      src/ift/policy_file.hh for the format);
 *                      overrides --task-base/--task-end
 *   --task-base ADDR   first word address of the tainted task
 *                      partition (default 0x80; system code below it)
 *   --task-end ADDR    last word address of the partition (default
 *                      0xfff)
 *   --fix              apply watchdog + masking fixes and re-verify;
 *                      writes <firmware>.secured.s next to the input
 *   --interval SEL     watchdog interval selector 0..3 (default 1)
 *   --star             also run the *-logic baseline for comparison
 *   --taint-code       mark the task's instructions tainted in program
 *                      memory (paper footnote 3)
 *
 * Exit code: 0 if (after fixing, when --fix) the system verifies
 * secure, 1 otherwise, 2 on usage errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "assembler/assembler.hh"
#include "base/logging.hh"
#include "base/strutil.hh"
#include "ift/policy_file.hh"
#include "ift/rootcause.hh"
#include "starlogic/starlogic.hh"
#include "xform/masking.hh"
#include "xform/watchdog_xform.hh"

using namespace glifs;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: glifs_audit <firmware.s> [--policy FILE] "
                 "[--task-base A] [--task-end A]\n"
                 "                   [--fix] [--interval 0..3] [--star] "
                 "[--taint-code]\n");
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        GLIFS_FATAL("cannot open ", path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::string policy_path;
    uint16_t task_base = 0x80;
    uint16_t task_end = 0xFFF;
    bool fix = false;
    bool star = false;
    bool taint_code = false;
    unsigned interval = 1;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--policy")
            policy_path = next();
        else if (arg == "--task-base")
            task_base = static_cast<uint16_t>(
                parseInt(next()).value_or(0x80));
        else if (arg == "--task-end")
            task_end = static_cast<uint16_t>(
                parseInt(next()).value_or(0xFFF));
        else if (arg == "--fix")
            fix = true;
        else if (arg == "--star")
            star = true;
        else if (arg == "--taint-code")
            taint_code = true;
        else if (arg == "--interval")
            interval = static_cast<unsigned>(
                parseInt(next()).value_or(1)) & 3;
        else if (!arg.empty() && arg[0] == '-')
            usage();
        else if (path.empty())
            path = arg;
        else
            usage();
    }
    if (path.empty())
        usage();

    try {
        Soc soc;
        Policy policy = policy_path.empty()
                            ? benchmarkPolicy(task_base, task_end)
                            : loadPolicyFile(policy_path);
        policy.taintCodeInProgMem =
            policy.taintCodeInProgMem || taint_code;
        std::printf("%s\n", policy.str().c_str());

        AsmProgram prog = parseSource(readFile(path));
        ProgramImage img = assemble(prog);
        std::printf("assembled %s: %zu words\n\n", path.c_str(),
                    img.usedWords);

        IftEngine engine(soc, policy, EngineConfig{});
        EngineResult result = engine.run(img);
        std::printf("analysis: %s\n\n", result.summary().c_str());
        RootCauseReport rc = analyzeRootCauses(result, policy, &img);
        std::printf("%s\n", rc.str(&img).c_str());

        if (star) {
            StarLogicResult sl = runStarLogic(soc, policy, img);
            std::printf("%s\n\n", sl.str().c_str());
        }

        if (!fix || !rc.needsModification()) {
            std::printf("verdict: %s\n",
                        result.secure() ? "SECURE" : "INSECURE");
            return result.secure() ? 0 : 1;
        }

        // Apply fixes: watchdog first (re-analyze before masking, as
        // Figure 11 requires), then iterate masks.
        AsmProgram cur = prog;
        if (!rc.tasksNeedingWatchdog.empty()) {
            WatchdogXformResult wd =
                applyWatchdogProtection(cur, interval);
            for (const std::string &n : wd.notes)
                std::printf("%s\n", n.c_str());
            cur = wd.program;
        }
        ProgramImage cur_img = assemble(cur);
        for (int round = 0; round < 4; ++round) {
            EngineResult r =
                IftEngine(soc, policy, EngineConfig{}).run(cur_img);
            RootCauseReport rcr = analyzeRootCauses(r, policy, &cur_img);
            if (rcr.storesToMask.empty()) {
                result = r;
                break;
            }
            MaskingResult mr =
                insertMasks(cur, cur_img, rcr.storesToMask);
            for (const std::string &n : mr.notes)
                std::printf("%s\n", n.c_str());
            if (!mr.unmaskable.empty()) {
                std::printf("unfixable stores remain\n");
                return 1;
            }
            cur = mr.program;
            cur_img = assemble(cur);
            result = IftEngine(soc, policy, EngineConfig{}).run(cur_img);
        }

        std::string out_path = path + ".secured.s";
        std::ofstream out(out_path);
        out << render(cur);
        std::printf("\nwrote %s\n", out_path.c_str());
        std::printf("re-verification: %s\n", result.summary().c_str());
        std::printf("verdict: %s\n",
                    result.secure() ? "SECURE after software fixes"
                                    : "STILL INSECURE");
        return result.secure() ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}
