/**
 * @file
 * glifs-audit: command-line front end to the toolflow (Figure 10).
 *
 * Usage:
 *   glifs_audit <firmware.s> [options]
 *
 * Options:
 *   --policy FILE      load labels from a policy file (see
 *                      src/ift/policy_file.hh for the format);
 *                      overrides --task-base/--task-end
 *   --task-base ADDR   first word address of the tainted task
 *                      partition (default 0x80; system code below it)
 *   --task-end ADDR    last word address of the partition (default
 *                      0xfff)
 *   --fix              apply watchdog + masking fixes and re-verify;
 *                      writes <firmware>.secured.s next to the input
 *   --interval SEL     watchdog interval selector 0..3 (default 1)
 *   --star             also run the *-logic baseline for comparison
 *   --taint-code       mark the task's instructions tainted in program
 *                      memory (paper footnote 3)
 *   --list-workloads   print the built-in workload registry, one name
 *                      per line (machine-readable; batch manifests
 *                      reference these names -- docs/BATCH.md), then
 *                      exit 0
 *
 * Resource governance (see docs/ROBUSTNESS.md):
 *   --deadline SECS    wall-clock budget; soft threshold at 85%
 *   --max-cycles N     simulated-cycle budget across all paths
 *   --max-rss MB       approximate resident-memory budget
 *   --max-states N     conservative-state-table entry budget
 *   --checkpoint FILE  write a resumable snapshot when a hard budget,
 *                      the deadline, or SIGINT/SIGTERM stops the run
 *   --resume FILE      continue a snapshotted run (same firmware); an
 *                      unusable snapshot warns and runs fresh
 *   --no-retry         disable the *-logic retry after degradation
 *
 * Parallel exploration (see DESIGN.md, "Parallel exploration"):
 *   --explore-jobs N   explore with N processes: a coordinator that
 *                      owns the authoritative serial frontier plus
 *                      N-1 speculative segment workers. The verdict,
 *                      violations and counters are bit-identical to
 *                      the serial engine for every N; N=1 *is* the
 *                      serial engine
 *   --explore-worker   internal: serve exploration work units to a
 *                      coordinator over inherited pipes (fd 0 in,
 *                      fd 3 out); never invoke by hand
 *
 * Observability (see docs/OBSERVABILITY.md):
 *   --stats-json FILE  write the machine-readable run report (verdict,
 *                      exit code, analysis counters, full stats
 *                      registry snapshot) as JSON
 *   --trace-out FILE   record structured trace spans/instants and
 *                      write Chrome trace_event JSON (open in
 *                      chrome://tracing or Perfetto)
 *   --progress[=SECS]  one-line heartbeat to stderr about every SECS
 *                      (default 1) seconds, fired from the governor
 *                      poll point: cycles/s, frontier, states, RSS,
 *                      hard-budget %
 *   --debug-trace      legacy alias: enable tracing and dump the
 *                      events as text to stderr at exit (in addition
 *                      to --trace-out, if given)
 *   --telemetry-fd N   stream framed telemetry events (lifecycle,
 *                      heartbeats, stats snapshots, budget crossings)
 *                      over inherited fd N to a supervising scheduler
 *                      (docs/OBSERVABILITY.md, "Cross-process
 *                      telemetry"); degrades silently to a no-op when
 *                      the fd is unusable or the reader goes away
 *
 * Exit codes (the contract -- see docs/ROBUSTNESS.md):
 *   0  verified secure (after fixing, when --fix)
 *   1  violations found
 *   2  degraded / unknown: not verified secure within the budgets
 *   3  usage error or unusable input (bad flags, bad policy file,
 *      unassemblable firmware)
 */

#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "assembler/assembler.hh"
#include "base/logging.hh"
#include "base/stats.hh"
#include "base/strutil.hh"
#include "base/telemetry.hh"
#include "base/trace.hh"
#include "explore/coordinator.hh"
#include "explore/worker.hh"
#include "ift/checkpoint.hh"
#include "ift/policy_file.hh"
#include "ift/rootcause.hh"
#include "starlogic/starlogic.hh"
#include "workloads/workload.hh"
#include "xform/masking.hh"
#include "xform/watchdog_xform.hh"

using namespace glifs;

namespace
{

constexpr int kExitSecure = 0;
constexpr int kExitViolations = 1;
constexpr int kExitDegraded = 2;
constexpr int kExitUsage = 3;

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: glifs_audit <firmware.s> [--policy FILE] "
        "[--task-base A] [--task-end A]\n"
        "       glifs_audit --list-workloads\n"
        "                   [--fix] [--interval 0..3] [--star] "
        "[--taint-code]\n"
        "                   [--deadline SECS] [--max-cycles N] "
        "[--max-rss MB] [--max-states N]\n"
        "                   [--checkpoint FILE] [--resume FILE] "
        "[--no-retry]\n"
        "                   [--stats-json FILE] [--trace-out FILE] "
        "[--progress[=SECS]] [--debug-trace]\n"
        "                   [--telemetry-fd N] [--explore-jobs N]\n");
    std::exit(kExitUsage);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        GLIFS_FATAL("cannot open ", path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

extern "C" void
onStopSignal(int)
{
    ResourceGovernor::requestGlobalStop();
}

int
exitCodeFor(Verdict v)
{
    switch (v) {
      case Verdict::Secure: return kExitSecure;
      case Verdict::Violations: return kExitViolations;
      case Verdict::UnknownDegraded: return kExitDegraded;
    }
    return kExitUsage;
}

const char *
verdictBanner(Verdict v)
{
    switch (v) {
      case Verdict::Secure: return "SECURE";
      case Verdict::Violations: return "INSECURE";
      case Verdict::UnknownDegraded: return "UNKNOWN (degraded)";
    }
    return "?";
}

void
printDegradations(const EngineResult &r)
{
    for (const Degradation &d : r.degradations)
        std::printf("degradation: %s\n", d.str().c_str());
}

struct Options
{
    std::string path;
    std::string policyPath;
    std::string checkpointPath;
    std::string resumePath;
    std::string statsJsonPath;
    std::string traceOutPath;
    uint16_t taskBase = 0x80;
    uint16_t taskEnd = 0xFFF;
    bool fix = false;
    bool star = false;
    bool taintCode = false;
    bool retryDegraded = true;
    bool debugTrace = false;
    double progressSeconds = 0.0;
    int telemetryFd = -1;
    unsigned interval = 1;
    unsigned exploreJobs = 1;
    bool exploreWorker = false;
    EngineConfig engineCfg;
};

/** Absolute path of this binary, for re-exec'ing it as a worker. */
std::string
selfExePath()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "glifs_audit";
    buf[n] = '\0';
    return buf;
}

/**
 * The argv tail that rebuilds this run's Soc/policy/image in an
 * exploration worker: only the knobs that shape segment execution
 * (firmware, labels, cycle cap) -- budgets, checkpoints and reporting
 * stay coordinator-side.
 */
std::vector<std::string>
workerArgsFor(const Options &opts)
{
    std::vector<std::string> args;
    args.push_back(opts.path);
    if (!opts.policyPath.empty()) {
        args.push_back("--policy");
        args.push_back(opts.policyPath);
    } else {
        args.push_back("--task-base");
        args.push_back(std::to_string(opts.taskBase));
        args.push_back("--task-end");
        args.push_back(std::to_string(opts.taskEnd));
    }
    if (opts.taintCode)
        args.push_back("--taint-code");
    if (opts.engineCfg.maxCycles > 0) {
        args.push_back("--max-cycles");
        args.push_back(std::to_string(opts.engineCfg.maxCycles));
    }
    return args;
}

/**
 * stderr heartbeat line (fired from the governor poll point). Built
 * in one buffer and pushed with a single fwrite + fflush: when a
 * batch scheduler captures this stream into a per-job log, the line
 * must land atomically — a stall watchdog or a human tailing the log
 * should never see an interleaved or partial heartbeat.
 */
void
printProgress(const GovernorProgress &p)
{
    char line[256];
    int n = std::snprintf(
        line, sizeof(line),
        "progress: %.1fs %llu cycles (%.0f cyc/s) "
        "frontier=%zu states=%zu rss=%zuMiB budget=%d%%\n",
        p.elapsedSeconds, static_cast<unsigned long long>(p.cycles),
        p.cyclesPerSec, p.frontier, p.states, p.rssBytes >> 20,
        static_cast<int>(p.budgetUsed * 100.0));
    if (n <= 0)
        return;
    std::fwrite(line, 1, std::min(static_cast<size_t>(n),
                                  sizeof(line) - 1), stderr);
    std::fflush(stderr);
}

/**
 * The machine-readable run report: verdict and exit code (the same
 * contract the process exit code carries), the EngineResult counters,
 * and the full stats-registry snapshot, so a degraded run documents
 * where its budget went.
 */
void
writeRunReport(const std::string &path, const EngineResult &r,
               int exit_code)
{
    std::ostringstream oss;
    oss << "{\n"
        << "  \"schema\": \"glifs.run_report.v1\",\n"
        << "  \"verdict\": " << jsonQuote(verdictName(r.verdict()))
        << ",\n"
        << "  \"exit_code\": " << exit_code << ",\n"
        << "  \"analysis\": {\n"
        << "    \"completed\": " << (r.completed ? "true" : "false")
        << ",\n"
        << "    \"star_aborted\": "
        << (r.starAborted ? "true" : "false") << ",\n"
        << "    \"cycles_simulated\": " << r.cyclesSimulated << ",\n"
        << "    \"paths_explored\": " << r.pathsExplored << ",\n"
        << "    \"branch_points\": " << r.branchPoints << ",\n"
        << "    \"merges\": " << r.merges << ",\n"
        << "    \"subsumptions\": " << r.subsumptions << ",\n"
        << "    \"states_tracked\": " << r.statesTracked << ",\n"
        << "    \"analysis_seconds\": " << r.analysisSeconds << ",\n"
        << "    \"tainted_gates\": " << r.taintedGates << ",\n"
        << "    \"total_gates\": " << r.totalGates << ",\n"
        << "    \"violations\": [\n";
    for (size_t i = 0; i < r.violations.size(); ++i) {
        const Violation &v = r.violations[i];
        oss << "      {\"kind\": "
            << jsonQuote(violationKindName(v.kind))
            << ", \"instr\": " << jsonQuote(hex16(v.instrAddr))
            << ", \"first_cycle\": " << v.firstCycle
            << ", \"count\": " << v.count << ", \"maskable\": "
            << (v.maskable ? "true" : "false")
            << ", \"detail\": " << jsonQuote(v.detail) << "}"
            << (i + 1 < r.violations.size() ? "," : "") << "\n";
    }
    oss << "    ],\n"
        << "    \"degradations\": [\n";
    for (size_t i = 0; i < r.degradations.size(); ++i) {
        const Degradation &d = r.degradations[i];
        oss << "      {\"level\": "
            << jsonQuote(degradeLevelName(d.level))
            << ", \"trigger\": "
            << jsonQuote(resourceKindName(d.trigger))
            << ", \"severity\": "
            << (d.severity == BudgetSeverity::Hard ? "\"hard\""
                                                   : "\"soft\"")
            << ", \"cycle\": " << d.cycle << ", \"instr\": "
            << jsonQuote(hex16(d.instrAddr)) << ", \"detail\": "
            << jsonQuote(d.detail) << "}"
            << (i + 1 < r.degradations.size() ? "," : "") << "\n";
    }
    oss << "    ]\n"
        << "  },\n"
        << "  \"stats\": "
        << stats::Registry::instance().snapshot().json(2) << "\n"
        << "}\n";

    std::ofstream out(path);
    if (!out)
        GLIFS_FATAL("cannot write stats report ", path);
    out << oss.str();
    if (!out)
        GLIFS_FATAL("error writing stats report ", path);
    std::printf("run report written to %s\n", path.c_str());
}

/**
 * Explain where the budget went when a run degraded: each configured
 * hard budget with its consumption (the exit-code-2 contract should
 * never leave the operator guessing which resource ran out).
 */
void
printBudgetUsage(const Options &opts, const EngineResult &r)
{
    const ResourceBudgets &b = opts.engineCfg.budgets;
    std::ostringstream oss;
    oss << "budget usage: cycles " << r.cyclesSimulated;
    if (b.hardCycles) {
        oss << "/" << b.hardCycles << " ("
            << static_cast<int>(100.0 * r.cyclesSimulated /
                                b.hardCycles)
            << "%)";
    }
    oss << ", wall " << r.analysisSeconds << "s";
    if (b.hardSeconds > 0) {
        oss << "/" << b.hardSeconds << "s ("
            << static_cast<int>(100.0 * r.analysisSeconds /
                                b.hardSeconds)
            << "%)";
    }
    oss << ", states " << r.statesTracked;
    if (b.hardStates)
        oss << "/" << b.hardStates;
    const size_t rss = ResourceGovernor::currentRssBytes();
    oss << ", rss " << (rss >> 20) << " MiB";
    if (b.hardRssBytes)
        oss << "/" << (b.hardRssBytes >> 20) << " MiB";
    std::printf("%s\n", oss.str().c_str());
}

/**
 * Run the engine; if the result is degraded/unknown and retrying is
 * allowed, fall back to the cheap *-logic configuration (footnote 8).
 * The fallback is fully conservative, so a clean *-logic completion is
 * a sound SECURE verdict that rescues the run; otherwise the original
 * (more informative) result is kept.
 */
EngineResult
analyzeGoverned(const Soc &soc, const Policy &policy,
                const ProgramImage &img, const Options &opts,
                const EngineCheckpoint *resume)
{
    EngineResult result = [&] {
        if (opts.exploreJobs >= 2 && !opts.engineCfg.starLogicMode) {
            explore::ExploreConfig x;
            x.jobs = opts.exploreJobs;
            x.auditBinary = selfExePath();
            x.workerArgs = workerArgsFor(opts);
            return explore::ParallelEngine(soc, policy,
                                           opts.engineCfg, x)
                .run(img, resume);
        }
        IftEngine engine(soc, policy, opts.engineCfg);
        return engine.run(img, resume);
    }();

    if (result.verdict() == Verdict::UnknownDegraded &&
        opts.retryDegraded && !opts.engineCfg.starLogicMode &&
        !ResourceGovernor::globalStopRequested()) {
        std::printf("analysis degraded; retrying with the *-logic "
                    "fallback configuration\n");
        EngineConfig starCfg = opts.engineCfg;
        starCfg.starLogicMode = true;
        starCfg.checkpointOnStop = false;
        EngineResult fallback =
            IftEngine(soc, policy, starCfg).run(img);
        std::printf("*-logic retry: %s\n",
                    fallback.summary().c_str());
        if (fallback.verdict() == Verdict::Secure)
            return fallback;
    }
    return result;
}

int
runAudit(const Options &opts)
{
    Soc soc;
    Policy policy = opts.policyPath.empty()
                        ? benchmarkPolicy(opts.taskBase, opts.taskEnd)
                        : loadPolicyFile(opts.policyPath);
    policy.taintCodeInProgMem =
        policy.taintCodeInProgMem || opts.taintCode;
    std::printf("%s\n", policy.str().c_str());

    AsmProgram prog = parseSource(readFile(opts.path));
    ProgramImage img = assemble(prog);
    std::printf("assembled %s: %zu words\n\n", opts.path.c_str(),
                img.usedWords);

    EngineCheckpoint resumed;
    const EngineCheckpoint *resume = nullptr;
    if (!opts.resumePath.empty()) {
        // An unusable checkpoint (corrupt, truncated, version skew)
        // degrades to a fresh run rather than failing: the snapshot
        // only ever saved work, so losing it must only cost work.
        try {
            resumed = EngineCheckpoint::load(opts.resumePath);
            resume = &resumed;
            std::printf("resuming from %s (%llu cycles, %zu frontier "
                        "states)\n\n",
                        opts.resumePath.c_str(),
                        static_cast<unsigned long long>(
                            resumed.totalCycles),
                        resumed.frontier.size());
        } catch (const RecoverableError &e) {
            std::fprintf(stderr,
                         "glifs_audit: %s; starting a fresh run\n",
                         e.what());
        }
    }

    EngineResult result =
        analyzeGoverned(soc, policy, img, opts, resume);
    std::printf("analysis: %s\n\n", result.summary().c_str());
    printDegradations(result);

    // Every exit path reports the same way: degraded runs explain
    // where the budget went, and --stats-json gets the machine-
    // readable run report with the final exit code baked in.
    auto finish = [&](const EngineResult &r, int code) {
        if (r.verdict() == Verdict::UnknownDegraded)
            printBudgetUsage(opts, r);
        if (!opts.statsJsonPath.empty())
            writeRunReport(opts.statsJsonPath, r, code);
        return code;
    };
    RootCauseReport rc = analyzeRootCauses(result, policy, &img);
    std::printf("%s\n", rc.str(&img).c_str());

    if (result.checkpoint && !opts.checkpointPath.empty()) {
        result.checkpoint->save(opts.checkpointPath);
        std::printf("checkpoint written to %s (continue with "
                    "--resume %s)\n",
                    opts.checkpointPath.c_str(),
                    opts.checkpointPath.c_str());
    }

    if (opts.star) {
        StarLogicResult sl = runStarLogic(soc, policy, img);
        std::printf("%s\n\n", sl.str().c_str());
    }

    if (!opts.fix || !rc.needsModification()) {
        std::printf("verdict: %s\n", verdictBanner(result.verdict()));
        return finish(result, exitCodeFor(result.verdict()));
    }

    // Apply fixes: watchdog first (re-analyze before masking, as
    // Figure 11 requires), then iterate masks.
    AsmProgram cur = prog;
    if (!rc.tasksNeedingWatchdog.empty()) {
        WatchdogXformResult wd =
            applyWatchdogProtection(cur, opts.interval);
        for (const std::string &n : wd.notes)
            std::printf("%s\n", n.c_str());
        cur = wd.program;
    }
    ProgramImage cur_img = assemble(cur);
    for (int round = 0; round < 4; ++round) {
        EngineResult r =
            analyzeGoverned(soc, policy, cur_img, opts, nullptr);
        RootCauseReport rcr = analyzeRootCauses(r, policy, &cur_img);
        if (rcr.storesToMask.empty()) {
            result = r;
            break;
        }
        MaskingResult mr = insertMasks(cur, cur_img, rcr.storesToMask);
        for (const std::string &n : mr.notes)
            std::printf("%s\n", n.c_str());
        if (!mr.unmaskable.empty()) {
            std::printf("unfixable stores remain\n");
            return finish(r, kExitViolations);
        }
        cur = mr.program;
        cur_img = assemble(cur);
        result = analyzeGoverned(soc, policy, cur_img, opts, nullptr);
    }

    std::string out_path = opts.path + ".secured.s";
    std::ofstream out(out_path);
    out << render(cur);
    std::printf("\nwrote %s\n", out_path.c_str());
    std::printf("re-verification: %s\n", result.summary().c_str());
    printDegradations(result);
    Verdict v = result.verdict();
    std::printf("verdict: %s%s\n", verdictBanner(v),
                v == Verdict::Secure ? " after software fixes" : "");
    return finish(result, exitCodeFor(v));
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        auto nextNum = [&]() -> int64_t {
            std::optional<int64_t> v = parseInt(next());
            if (!v || *v < 0)
                usage();
            return *v;
        };
        if (arg == "--list-workloads") {
            // Machine-readable registry dump: one name per line, no
            // decoration, so scripts and manifests can consume it.
            for (const std::string &name : workloadNames())
                std::printf("%s\n", name.c_str());
            return kExitSecure;
        } else if (arg == "--policy")
            opts.policyPath = next();
        else if (arg == "--task-base")
            opts.taskBase = static_cast<uint16_t>(nextNum());
        else if (arg == "--task-end")
            opts.taskEnd = static_cast<uint16_t>(nextNum());
        else if (arg == "--fix")
            opts.fix = true;
        else if (arg == "--star")
            opts.star = true;
        else if (arg == "--taint-code")
            opts.taintCode = true;
        else if (arg == "--no-retry")
            opts.retryDegraded = false;
        else if (arg == "--interval")
            opts.interval = static_cast<unsigned>(nextNum()) & 3;
        else if (arg == "--deadline") {
            std::string s = next();
            char *end = nullptr;
            double secs = std::strtod(s.c_str(), &end);
            if (end == s.c_str() || *end != '\0' || secs <= 0)
                usage();
            opts.engineCfg.budgets.hardSeconds = secs;
            opts.engineCfg.budgets.softSeconds = secs * 0.85;
        } else if (arg == "--max-cycles") {
            int64_t n = nextNum();
            if (n <= 0)
                usage();
            opts.engineCfg.maxCycles = static_cast<uint64_t>(n);
            opts.engineCfg.budgets.softCycles =
                static_cast<uint64_t>(n - n / 8);
        } else if (arg == "--max-rss") {
            int64_t mb = nextNum();
            if (mb <= 0)
                usage();
            opts.engineCfg.budgets.hardRssBytes =
                static_cast<size_t>(mb) << 20;
            opts.engineCfg.budgets.softRssBytes =
                (static_cast<size_t>(mb) << 20) / 8 * 7;
        } else if (arg == "--max-states") {
            int64_t n = nextNum();
            if (n <= 0)
                usage();
            opts.engineCfg.budgets.hardStates =
                static_cast<size_t>(n);
            opts.engineCfg.budgets.softStates =
                static_cast<size_t>(n - n / 8);
        } else if (arg == "--checkpoint")
            opts.checkpointPath = next();
        else if (arg == "--resume")
            opts.resumePath = next();
        else if (arg == "--stats-json")
            opts.statsJsonPath = next();
        else if (arg == "--trace-out")
            opts.traceOutPath = next();
        else if (arg == "--debug-trace")
            opts.debugTrace = true;
        else if (arg == "--telemetry-fd")
            opts.telemetryFd = static_cast<int>(nextNum());
        else if (arg == "--explore-jobs") {
            int64_t n = nextNum();
            if (n < 1)
                usage();
            opts.exploreJobs = static_cast<unsigned>(n);
        } else if (arg == "--explore-worker")
            opts.exploreWorker = true;
        else if (arg == "--progress")
            opts.progressSeconds = 1.0;
        else if (arg.rfind("--progress=", 0) == 0) {
            std::string s = arg.substr(11);
            char *end = nullptr;
            double secs = std::strtod(s.c_str(), &end);
            if (end == s.c_str() || *end != '\0' || secs <= 0)
                usage();
            opts.progressSeconds = secs;
        } else if (!arg.empty() && arg[0] == '-')
            usage();
        else if (opts.path.empty())
            opts.path = arg;
        else
            usage();
    }
    if (opts.path.empty())
        usage();

    if (opts.exploreWorker) {
        // Internal mode: serve segment work units to a parallel
        // coordinator over inherited pipes (explore/worker.hh).
        // Rebuild the same Soc/Policy/image the coordinator holds,
        // quietly; default signal dispositions stay in place so the
        // coordinator's shutdown SIGTERM ends the process promptly.
        try {
            Soc soc;
            Policy policy =
                opts.policyPath.empty()
                    ? benchmarkPolicy(opts.taskBase, opts.taskEnd)
                    : loadPolicyFile(opts.policyPath);
            policy.taintCodeInProgMem =
                policy.taintCodeInProgMem || opts.taintCode;
            ProgramImage img =
                assemble(parseSource(readFile(opts.path)));
            return explore::workerMain(soc, policy, opts.engineCfg,
                                       img);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "explore worker: %s\n", e.what());
            return kExitUsage;
        }
    }

    opts.engineCfg.checkpointOnStop = !opts.checkpointPath.empty();
    // SIGINT and SIGTERM always request a governed stop instead of
    // dying outright: with --checkpoint the run snapshots its state
    // (which is why the batch stall watchdog sends SIGTERM first),
    // and even without one the run exits through the normal reporting
    // path with a clean degraded verdict.
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);

    if (opts.telemetryFd >= 0) {
        // Arm the cross-process telemetry writer over the inherited
        // pipe fd; everything downstream is fire-and-forget.
        telemetry::Writer::instance().open(opts.telemetryFd);
        telemetry::Event started;
        started.type = telemetry::EventType::Lifecycle;
        started.phase = "started";
        telemetry::Writer::instance().emit(started);
    }

    if (opts.progressSeconds > 0) {
        // The heartbeat fires from the governor's per-cycle poll
        // point, sharing a clock with budget checks and the
        // SIGINT-safe stop above (docs/OBSERVABILITY.md).
        opts.engineCfg.progressSeconds = opts.progressSeconds;
        opts.engineCfg.progressFn = printProgress;
    } else if (telemetry::Writer::instance().enabled()) {
        // Telemetry wants the heartbeat clock running even when the
        // human-readable progress line is off: tick fast (the emit
        // itself is a single non-blocking write) and keep stderr
        // quiet.
        opts.engineCfg.progressSeconds = 0.25;
        opts.engineCfg.progressFn = [](const GovernorProgress &) {};
    }

    if (!opts.traceOutPath.empty() || opts.debugTrace)
        trace::Tracer::instance().enable();

    // Flush trace output on every exit path, including thrown errors,
    // so an aborted run still leaves its breadcrumbs behind.
    auto flushTrace = [&opts]() {
        trace::Tracer &tr = trace::Tracer::instance();
        if (!tr.enabled())
            return;
        if (!opts.traceOutPath.empty()) {
            tr.writeJson(opts.traceOutPath);
            std::printf("trace written to %s (load in chrome://tracing "
                        "or Perfetto)\n",
                        opts.traceOutPath.c_str());
        }
        if (opts.debugTrace)
            std::fputs(tr.text().c_str(), stderr);
    };

    // The closing lifecycle frame carries the exit-code contract, so
    // the scheduler learns the outcome from the stream itself — even
    // before (or without) reading the run report.
    auto emitFinished = [](int code) {
        telemetry::Writer &w = telemetry::Writer::instance();
        if (!w.enabled())
            return;
        telemetry::Event e;
        e.type = telemetry::EventType::Lifecycle;
        e.phase = "finished";
        e.exitCode = code;
        e.verdict = code == kExitSecure       ? "secure"
                    : code == kExitViolations ? "violations"
                    : code == kExitDegraded   ? "unknown-degraded"
                                              : "error";
        w.emit(e);
    };

    try {
        int code = runAudit(opts);
        flushTrace();
        emitFinished(code);
        return code;
    } catch (const FatalError &e) {
        // User-level input errors (policy file, firmware, netlist
        // validation): one-line diagnostic, never a raw abort.
        std::fprintf(stderr, "glifs_audit: %s\n", e.what());
        flushTrace();
        emitFinished(kExitUsage);
        return kExitUsage;
    } catch (const RecoverableError &e) {
        // Unusable checkpoint or comparable recoverable condition the
        // CLI cannot recover from by itself.
        std::fprintf(stderr, "glifs_audit: %s\n", e.what());
        flushTrace();
        emitFinished(kExitUsage);
        return kExitUsage;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "glifs_audit: internal error: %s\n",
                     e.what());
        flushTrace();
        emitFinished(kExitUsage);
        return kExitUsage;
    }
}
