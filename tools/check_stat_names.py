#!/usr/bin/env python3
"""Lint the stat-name contract (docs/OBSERVABILITY.md).

Scans the C++ sources for stats constructor literals --

    stats::Scalar  name{"engine.cycles", "..."};
    stats::Gauge   g{"governor.rss_bytes", "..."};
    stats::Distribution d{"engine.fanout_width", "...", 0, 64, 16};
    stats::Formula f{"engine.cycles_per_path", "...", ...};

-- and enforces that every registered name is dotted-lowercase
(``[a-z0-9_]+(\\.[a-z0-9_]+)+``), unique across the tree, and filed
under a known top-level group (so ``telemtry.frames_written`` fails
the build instead of silently forking the catalogue).  The same
rules are enforced at runtime by the registry (base/stats.cc); this
lint catches violations at build time, before any binary runs, and
keeps the documented catalogue greppable.

``--require NAME`` (repeatable) additionally asserts that NAME is
registered somewhere: CI pins the names that external surfaces
depend on -- the batch status file, the run-report stats snapshot
and the telemetry stream -- so a rename cannot silently break a
dashboard.

Exit code 0 when clean, 1 with one diagnostic line per offence.
"""

import argparse
import pathlib
import re
import sys

# A stats object construction: the type, a variable name, then a brace
# or paren initializer whose first argument is the string literal name.
CTOR_RE = re.compile(
    r"stats::(?:Scalar|Gauge|Distribution|Formula)\s+"
    r"[A-Za-z_]\w*\s*[{(]\s*\"([^\"]+)\"",
)

NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

# The documented top-level groups (docs/OBSERVABILITY.md, "Stat
# catalogue").  A new subsystem adds its group here in the same PR
# that registers its first stat.
KNOWN_GROUPS = frozenset({
    "batch",
    "checker",
    "checkpoint",
    "engine",
    "explore",
    "governor",
    "sim",
    "state_table",
    "telemetry",
    "trace",
})

# Test sources may deliberately register scratch stats (including
# intentionally-bad names inside EXPECT_THROW); only production code
# under src/ and tools/ defines the documented catalogue.
DEFAULT_ROOTS = ["src", "tools"]


def scan_text(path, text):
    """Yield (where, stat_name) for every registration in @p text."""
    for m in CTOR_RE.finditer(text):
        line = text.count("\n", 0, m.start()) + 1
        yield f"{path}:{line}", m.group(1)


def scan(root: pathlib.Path):
    """Yield (where, stat_name) for every registration under root."""
    for path in sorted(root.rglob("*.cc")) + sorted(root.rglob("*.hh")):
        text = path.read_text(encoding="utf-8", errors="replace")
        yield from scan_text(path, text)


def lint(registrations, required):
    """Check (where, name) pairs; return (errors, total, unique)."""
    errors = []
    seen = {}
    total = 0
    for where, name in registrations:
        total += 1
        if not NAME_RE.fullmatch(name):
            errors.append(
                f"{where}: stat name {name!r} is not "
                "dotted-lowercase ([a-z0-9_]+(.[a-z0-9_]+)+)"
            )
        elif name.split(".", 1)[0] not in KNOWN_GROUPS:
            groups = ", ".join(sorted(KNOWN_GROUPS))
            errors.append(
                f"{where}: stat name {name!r} has unknown top-level "
                f"group {name.split('.', 1)[0]!r} (known: {groups})"
            )
        if name in seen:
            errors.append(
                f"{where}: stat name {name!r} already registered "
                f"at {seen[name]}"
            )
        else:
            seen[name] = where
    for name in required:
        if name not in seen:
            errors.append(
                f"--require {name}: not registered anywhere "
                "(renamed or removed? external surfaces depend on it)"
            )
    return errors, total, len(seen)


def self_test() -> int:
    """The lint's own failure paths must actually fail."""
    cases = [
        # (source text, required, substring expected in an error)
        ('stats::Scalar a{"Engine.cycles", ""};', [],
         "not dotted-lowercase"),
        ('stats::Scalar a{"nodots", ""};', [],
         "not dotted-lowercase"),
        ('stats::Scalar a{"telemtry.frames_written", ""};', [],
         "unknown top-level group"),
        ('stats::Scalar a{"engine.cycles", ""};\n'
         'stats::Gauge b{"engine.cycles", ""};', [],
         "already registered"),
        ('stats::Scalar a{"engine.cycles", ""};',
         ["trace.dropped_events"], "not registered anywhere"),
    ]
    failures = 0
    for i, (text, required, expect) in enumerate(cases):
        errors, _, _ = lint(scan_text("<self-test>", text), required)
        if not any(expect in e for e in errors):
            print(f"self-test case {i}: expected an error matching "
                  f"{expect!r}, got {errors}", file=sys.stderr)
            failures += 1
    # And a clean registration must stay clean.
    errors, _, _ = lint(
        scan_text("<self-test>",
                  'stats::Scalar a{"engine.cycles", ""};'),
        ["engine.cycles"])
    if errors:
        print(f"self-test clean case: unexpected {errors}",
              file=sys.stderr)
        failures += 1
    print(f"check_stat_names --self-test: "
          f"{len(cases) + 1} cases, {failures} failure(s)")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "roots",
        nargs="*",
        default=DEFAULT_ROOTS,
        help="directories to scan (default: src tools)",
    )
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless NAME is registered (repeatable); pins "
        "names that external surfaces depend on",
    )
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="exercise the lint's own failure paths and exit",
    )
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    errors = []
    regs = []
    for root in args.roots:
        rootpath = pathlib.Path(root)
        if not rootpath.is_dir():
            errors.append(f"{root}: not a directory")
            continue
        regs.extend(scan(rootpath))
    lint_errors, total, unique = lint(regs, args.require)
    errors.extend(lint_errors)

    for e in errors:
        print(e, file=sys.stderr)
    print(f"check_stat_names: {total} registrations, "
          f"{unique} unique names, {len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
