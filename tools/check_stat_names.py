#!/usr/bin/env python3
"""Lint the stat-name contract (docs/OBSERVABILITY.md).

Scans the C++ sources for stats constructor literals --

    stats::Scalar  name{"engine.cycles", "..."};
    stats::Gauge   g{"governor.rss_bytes", "..."};
    stats::Distribution d{"engine.fanout_width", "...", 0, 64, 16};
    stats::Formula f{"engine.cycles_per_path", "...", ...};

-- and enforces that every registered name is dotted-lowercase
(``[a-z0-9_]+(\\.[a-z0-9_]+)+``) and unique across the tree.  The same
rules are enforced at runtime by the registry (base/stats.cc); this
lint catches violations at build time, before any binary runs, and
keeps the documented catalogue greppable.

Exit code 0 when clean, 1 with one diagnostic line per offence.
"""

import argparse
import pathlib
import re
import sys

# A stats object construction: the type, a variable name, then a brace
# or paren initializer whose first argument is the string literal name.
CTOR_RE = re.compile(
    r"stats::(?:Scalar|Gauge|Distribution|Formula)\s+"
    r"[A-Za-z_]\w*\s*[{(]\s*\"([^\"]+)\"",
)

NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

# Test sources may deliberately register scratch stats (including
# intentionally-bad names inside EXPECT_THROW); only production code
# under src/ and tools/ defines the documented catalogue.
DEFAULT_ROOTS = ["src", "tools"]


def scan(root: pathlib.Path):
    """Yield (path, line_number, stat_name) for every registration."""
    for path in sorted(root.rglob("*.cc")) + sorted(root.rglob("*.hh")):
        text = path.read_text(encoding="utf-8", errors="replace")
        for m in CTOR_RE.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            yield path, line, m.group(1)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "roots",
        nargs="*",
        default=DEFAULT_ROOTS,
        help="directories to scan (default: src tools)",
    )
    args = ap.parse_args()

    errors = []
    seen = {}
    total = 0
    for root in args.roots:
        rootpath = pathlib.Path(root)
        if not rootpath.is_dir():
            errors.append(f"{root}: not a directory")
            continue
        for path, line, name in scan(rootpath):
            total += 1
            where = f"{path}:{line}"
            if not NAME_RE.fullmatch(name):
                errors.append(
                    f"{where}: stat name {name!r} is not "
                    "dotted-lowercase ([a-z0-9_]+(.[a-z0-9_]+)+)"
                )
            if name in seen:
                errors.append(
                    f"{where}: stat name {name!r} already registered "
                    f"at {seen[name]}"
                )
            else:
                seen[name] = where

    for e in errors:
        print(e, file=sys.stderr)
    print(f"check_stat_names: {total} registrations, "
          f"{len(seen)} unique names, {len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
