/**
 * @file
 * glifs-batch: fleet verification driver (docs/BATCH.md).
 *
 * Usage:
 *   glifs_batch <manifest> [options]
 *
 * Options:
 *   --jobs N         worker process concurrency (default 1)
 *   --report FILE    write the glifs.batch_report.v1 JSON
 *   --cache-dir DIR  content-addressed result cache location
 *                    (default .glifs-cache)
 *   --no-cache       run every job; store nothing
 *   --work-dir DIR   scratch space for materialized workloads, worker
 *                    logs, per-attempt run reports and checkpoints
 *                    (default <cache-dir>/work)
 *   --audit-bin PATH the glifs_audit worker binary (default: next to
 *                    this executable)
 *   --quiet          suppress per-job progress lines
 *   --journal FILE   write-ahead batch journal location
 *                    (default <work-dir>/batch.journal)
 *   --resume-batch FILE  replay FILE from a crashed run: finished
 *                    jobs are reported from the journal, only the
 *                    rest run (docs/ROBUSTNESS.md, "Crash recovery")
 *   --stall-timeout SECS  SIGTERM (then SIGKILL) workers whose log
 *                    stops growing for SECS (0 = off, the default);
 *                    live worker telemetry also counts as progress
 *   --status-file FILE  continuously publish a glifs.batch_status.v1
 *                    JSON snapshot (atomic rename) with per-job
 *                    state/progress fed by live worker telemetry
 *                    (docs/OBSERVABILITY.md)
 *   --trace-merge FILE  run every worker with --trace-out and merge
 *                    the traces into one multi-process Chrome trace,
 *                    one pid lane per job (open in Perfetto)
 *
 * The manifest format, cache key definition, retry ladder and report
 * schema are specified in docs/BATCH.md; crash recovery and the fault
 * matrix in docs/ROBUSTNESS.md.
 *
 * Exit code: the worst worker exit code across the fleet (the same
 * 0/1/2/3 contract as glifs_audit), or 3 for a bad manifest/flags.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "batch/runner.hh"

using namespace glifs;

namespace
{

constexpr int kExitUsage = 3;

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: glifs_batch <manifest> [--jobs N] [--report FILE]\n"
        "                   [--cache-dir DIR] [--no-cache] "
        "[--work-dir DIR]\n"
        "                   [--audit-bin PATH] [--quiet] "
        "[--journal FILE]\n"
        "                   [--resume-batch FILE] "
        "[--stall-timeout SECS]\n"
        "                   [--status-file FILE] "
        "[--trace-merge FILE]\n");
    std::exit(kExitUsage);
}

/** Default worker binary: glifs_audit next to this executable. */
std::string
siblingAuditBinary()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "glifs_audit";
    buf[n] = '\0';
    std::string self(buf);
    size_t slash = self.rfind('/');
    if (slash == std::string::npos)
        return "glifs_audit";
    return self.substr(0, slash) + "/glifs_audit";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string manifestPath;
    std::string reportPath;
    batch::BatchOptions opts;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--jobs") {
            std::optional<int64_t> v = parseInt(next());
            if (!v || *v < 1 || *v > 1024)
                usage();
            opts.jobs = static_cast<unsigned>(*v);
        } else if (arg == "--report")
            reportPath = next();
        else if (arg == "--cache-dir")
            opts.cacheDir = next();
        else if (arg == "--no-cache")
            opts.noCache = true;
        else if (arg == "--work-dir")
            opts.workDir = next();
        else if (arg == "--audit-bin")
            opts.auditBinary = next();
        else if (arg == "--quiet")
            opts.verbose = false;
        else if (arg == "--journal")
            opts.journalPath = next();
        else if (arg == "--resume-batch")
            opts.resumeJournalPath = next();
        else if (arg == "--stall-timeout") {
            std::optional<int64_t> v = parseInt(next());
            if (!v || *v < 0)
                usage();
            opts.stallTimeoutSeconds = static_cast<double>(*v);
        } else if (arg == "--status-file")
            opts.statusFilePath = next();
        else if (arg == "--trace-merge")
            opts.traceMergePath = next();
        else if (!arg.empty() && arg[0] == '-')
            usage();
        else if (manifestPath.empty())
            manifestPath = arg;
        else
            usage();
    }
    if (manifestPath.empty())
        usage();
    if (opts.auditBinary.empty())
        opts.auditBinary = siblingAuditBinary();

    try {
        batch::Manifest manifest = batch::loadManifest(manifestPath);
        std::printf("batch '%s': %zu job(s), --jobs %u, cache %s\n",
                    manifest.name.c_str(), manifest.jobs.size(),
                    opts.jobs,
                    opts.noCache ? "disabled"
                                 : opts.cacheDir.c_str());

        batch::BatchReport report = batch::runBatch(manifest, opts);
        std::printf("%s\n", report.summary().c_str());

        if (!reportPath.empty()) {
            std::ofstream out(reportPath);
            if (!out)
                GLIFS_FATAL("cannot write batch report ", reportPath);
            out << report.json();
            if (!out)
                GLIFS_FATAL("error writing batch report ",
                            reportPath);
            std::printf("batch report written to %s\n",
                        reportPath.c_str());
        }
        return report.exitCode();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "glifs_batch: %s\n", e.what());
        return kExitUsage;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "glifs_batch: internal error: %s\n",
                     e.what());
        return kExitUsage;
    }
}
