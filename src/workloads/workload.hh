/**
 * @file
 * Benchmark workloads (Table 1 of the paper): the embedded sensor
 * benchmarks (mult, binSearch, tea8, intFilt, tHold, div, inSort, rle,
 * intAVG) and the EEMBC-style kernels (autocorr, FFT, ConvEn, Viterbi),
 * written in IoT430 assembly with the same security-relevant structure
 * as the paper's versions: the six benchmarks of Table 2 branch and/or
 * store through tainted-input-derived values, the other seven have
 * fixed (or predicated) control and bounded store addresses.
 *
 * Every workload runs inside a standard harness: untainted system code
 * at the reset vector sets the stack pointer (and, when the watchdog
 * transformation is applied, arms the watchdog) and transfers to the
 * tainted task at kTaskBase. Tasks persist their progress in their
 * tainted RAM partition so watchdog-sliced execution can resume after
 * each POR, signal completion by writing kDoneMagic to the untrusted
 * output port P2OUT, and either jump back to the system code
 * (unprotected harness -- the control-flow escape the analysis must
 * catch) or idle until the watchdog fires (protected harness).
 */

#ifndef GLIFS_WORKLOADS_WORKLOAD_HH
#define GLIFS_WORKLOADS_WORKLOAD_HH

#include <string>
#include <vector>

#include "assembler/assembler.hh"
#include "ift/policy.hh"

namespace glifs
{

/** First word address of the (tainted) task partition. */
constexpr uint16_t kTaskBase = 0x0080;
/** Last word address of the task partition. */
constexpr uint16_t kTaskEnd = 0x0FFF;

/** Harness configuration ("#define"-level knobs, Figure 11). */
struct HarnessOptions
{
    /** Watchdog-protect the task (idle-until-POR instead of jumping
     *  back to system code). */
    bool watchdog = false;
    /** Watchdog interval selector (0..3 -> 64/512/8192/32768). */
    unsigned intervalSel = 1;
};

/** One benchmark. */
struct Workload
{
    std::string name;
    std::string description;
    bool expectC1 = false;  ///< Table 2: violates condition 1
    bool expectC2 = false;  ///< Table 2: violates condition 2
    std::string body;       ///< task body assembly

    /** Full program source with the standard harness. */
    std::string source(const HarnessOptions &opts = {}) const;

    /** Parsed program. */
    AsmProgram program(const HarnessOptions &opts = {}) const;

    /** Assembled image. */
    ProgramImage image(const HarnessOptions &opts = {}) const;

    /** The benchmark non-interference policy for this layout. */
    Policy policy() const;
};

/** The harness wrapped around a task body (exposed for tests). */
std::string harnessSource(const std::string &body,
                          const HarnessOptions &opts);

/** All 13 benchmarks, in Table 1 order. */
const std::vector<Workload> &allWorkloads();

/** The registry's names, in Table 1 order (one manifest-referencable
 *  identifier per workload; also `glifs_audit --list-workloads`). */
std::vector<std::string> workloadNames();

/** Look up a benchmark by name; nullptr if unknown. */
const Workload *findWorkload(const std::string &name);

/** Look up a benchmark by name (fatal if unknown). */
const Workload &workloadByName(const std::string &name);

} // namespace glifs

#endif // GLIFS_WORKLOADS_WORKLOAD_HH
