/**
 * @file
 * MiniRTOS (Section 7.3): a round-robin scheduler multiplexing a
 * trusted div task and an untrusted binSearch task on the IoT430,
 * standing in for the paper's FreeRTOS system.
 *
 * The protected variant arms the watchdog before dispatching each time
 * slice; expiry fires a POR that lands back in the scheduler with an
 * untainted PC (the paper's reset-vector-into-scheduler trick), and
 * binSearch's stores are masked into its own partition. The baseline
 * variant schedules cooperatively with no protection: the untrusted
 * task's tainted control flow re-enters the scheduler directly.
 */

#ifndef GLIFS_WORKLOADS_RTOS_HH
#define GLIFS_WORKLOADS_RTOS_HH

#include "soc/soc.hh"
#include "workloads/micro.hh"

namespace glifs
{

/** Unprotected cooperative system (the "before" of Section 7.3). */
MicroBenchmark rtosBaseline();

/** Watchdog-scheduled, mask-protected system (the "after"). */
MicroBenchmark rtosProtected(unsigned interval_sel = 1);

/** Result of a concrete RTOS run. */
struct RtosMeasurement
{
    bool completed = false;   ///< both tasks signalled done
    uint64_t cycles = 0;      ///< first-dispatch to both-done
};

/**
 * Run an RTOS image concretely until both the trusted task (P4OUT)
 * and the untrusted task (P2OUT) have signalled completion.
 */
RtosMeasurement measureRtos(const Soc &soc, const ProgramImage &image,
                            uint64_t max_cycles = 4'000'000);

} // namespace glifs

#endif // GLIFS_WORKLOADS_RTOS_HH
