/**
 * @file
 * The Section-5.3 verification micro-benchmarks: IoT430 transcriptions
 * of the paper's Figure 8 (watchdog timer reset) and Figure 9 (memory
 * address masking) code listings, each in unprotected and protected
 * variants.
 */

#ifndef GLIFS_WORKLOADS_MICRO_HH
#define GLIFS_WORKLOADS_MICRO_HH

#include <string>

#include "ift/policy.hh"

namespace glifs
{

/** A self-contained analysis scenario. */
struct MicroBenchmark
{
    std::string name;
    std::string description;
    std::string source;
    Policy policy;
};

/**
 * Figure 8, left-hand listing: a tainted task whose control flow
 * becomes tainted and then jumps back to untainted code -- once the PC
 * is tainted it never becomes untainted again.
 */
MicroBenchmark fig8Unprotected();

/**
 * Figure 8, right-hand listing: the untainted code arms the watchdog
 * before entering the task; the POR recovers an untainted PC.
 */
MicroBenchmark fig8Protected();

/**
 * Figure 9, left-hand listing: an untrusted input is used as a store
 * offset, tainting memory outside the tainted partition.
 */
MicroBenchmark fig9Unmasked();

/**
 * Figure 9, right-hand listing: the offset is masked into the tainted
 * partition; no untainted memory can be tainted.
 */
MicroBenchmark fig9Masked();

} // namespace glifs

#endif // GLIFS_WORKLOADS_MICRO_HH
