#include "workloads/micro.hh"

namespace glifs
{

namespace
{

const char *kEquHeader =
    "        .equ P1IN, 0x0000\n"
    "        .equ P2OUT, 0x0003\n"
    "        .equ WDT, 0x0010\n";

Policy
microPolicy()
{
    return benchmarkPolicy(0x0010, 0x0FFF);
}

} // namespace

MicroBenchmark
fig8Unprotected()
{
    MicroBenchmark mb;
    mb.name = "fig8-unprotected";
    mb.description =
        "tainted control flow jumps back into untainted code";
    mb.source = std::string(kEquHeader) + R"(
start:  nop
        jmp tsk
        .org 0x10
tsk:    mov &P1IN, r4        ; tainted input
        tst r4
        jz t1                ; PC becomes tainted here
        nop
t1:     mov #100, r10
tl:     dec r10
        jnz tl
        jmp start            ; tainted PC enters untainted code
)";
    mb.policy = microPolicy();
    return mb;
}

MicroBenchmark
fig8Protected()
{
    MicroBenchmark mb;
    mb.name = "fig8-protected";
    mb.description = "watchdog reset recovers an untainted PC";
    mb.source = std::string(kEquHeader) + R"(
start:  mov #0x0000, &WDT    ; arm the watchdog (64-cycle interval)
        jmp tsk
        .org 0x10
tsk:    mov &P1IN, r4
        tst r4
        jz t1
        nop
t1:     mov #100, r10
tl:     dec r10
        jnz tl
pad:    jmp pad              ; idle until the POR resets the PC
)";
    mb.policy = microPolicy();
    return mb;
}

MicroBenchmark
fig9Unmasked()
{
    MicroBenchmark mb;
    mb.name = "fig9-unmasked";
    mb.description = "untrusted input used as an unbounded store offset";
    mb.source = std::string(kEquHeader) + R"(
start:  jmp tsk
        .org 0x10
tsk:    mov #4096, &0x0cfa
        mov #0x0c31, r15
        mov #1, 0(r15)
        mov &P1IN, r15       ; read untrusted input
        mov #0x0c00, r14
        add r15, r14         ; compute store address from it
        mov #500, 0(r14)     ; taints the whole data memory
        mov r15, &0x0c64
stop:   jmp stop
)";
    mb.policy = microPolicy();
    return mb;
}

MicroBenchmark
fig9Masked()
{
    MicroBenchmark mb;
    mb.name = "fig9-masked";
    mb.description = "masked store offset stays in the tainted partition";
    mb.source = std::string(kEquHeader) + R"(
start:  jmp tsk
        .org 0x10
tsk:    mov #4096, &0x0cfa
        mov #0x0c31, r15
        mov #1, 0(r15)
        mov &P1IN, r15
        mov #0x0c00, r14
        add r15, r14
        and #0x03ff, r14     ; mask into the tainted partition
        bis #0x0c00, r14
        mov #500, 0(r14)
        mov r15, &0x0c64
stop:   jmp stop
)";
    mb.policy = microPolicy();
    return mb;
}

} // namespace glifs
