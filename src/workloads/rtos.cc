#include "workloads/rtos.hh"

#include <sstream>

#include "soc/runner.hh"
#include "xform/overhead.hh"
#include "xform/watchdog_xform.hh"

namespace glifs
{

namespace
{

Policy
rtosPolicy()
{
    Policy p;
    p.name = "rtos non-interference";
    p.taintedInPort = {true, false, false, false};   // P1 untrusted
    p.trustedOutPort = {true, false, true, true};    // P2 untrusted out
    p.addCode("scheduler", 0x0000, 0x003F, false);
    p.addCode("div", 0x0040, 0x00FF, false);         // trusted task
    p.addCode("binSearch", 0x0100, 0x01FF, true);    // untrusted task
    p.addMem("sys_ram", 0x0800, 0x0BFF, false);
    p.addMem("task_ram", 0x0C00, 0x0FFF, true);
    return p;
}

/**
 * Generate the system source.
 * @param protected_mode watchdog slicing + masked binSearch stores
 * @param interval_sel watchdog interval for protected mode
 */
std::string
rtosSource(bool protected_mode, unsigned interval_sel)
{
    std::ostringstream oss;
    oss << "        .equ P1IN, 0x0000\n"
           "        .equ P2OUT, 0x0003\n"
           "        .equ P3IN, 0x0004\n"
           "        .equ P4OUT, 0x0007\n"
           "        .equ WDT, 0x0010\n"
           "        .equ DONE, 0xd07e\n"
           "        .equ CURTASK, 0x0900\n"
           "        .equ DIVPH, 0x0910\n"
           "        .equ BSPH, 0x0c00\n";
    if (protected_mode) {
        oss << "        .equ WDT_CMD, "
            << wdtArmCommand(interval_sel) << "\n";
    }

    // ---- scheduler (untainted, at the reset vector) ------------------
    oss << "start:  mov &CURTASK, r4\n"
           "        xor #1, r4\n"
           "        mov r4, &CURTASK\n";
    if (protected_mode)
        oss << "        mov #WDT_CMD, &WDT\n";
    oss << "        tst r4\n"
           "        jz s_div\n"
           "        mov #0x0ff0, r1\n"   // untrusted stack: tainted RAM
           "        jmp bs_task\n"
           "s_div:  mov #0x0bf0, r1\n"   // trusted stack: untainted RAM
           "        jmp div_task\n";

    // The end-of-slice behaviour of each task.
    const char *yield = protected_mode ? nullptr : "        jmp start\n";

    // ---- div task (trusted, untainted) -------------------------------
    oss << "        .org 0x40\n"
           "div_task:\n"
           "        mov &DIVPH, r10\n"
           "        cmp #4, r10\n"
           "        jl d_unit\n";
    if (protected_mode) {
        oss << "d_idle: jmp d_idle\n";
    } else {
        oss << "        mov #DONE, &P4OUT\n"
               "        jmp start\n";
    }
    oss << "d_unit:\n"
           "        mov &P3IN, r4\n"
           "        mov &P3IN, r5\n"
           "        bis #1, r5\n"
           "        clr r6\n"
           "        clr r7\n"
           "        mov #16, r8\n"
           "d_loop: rla r4\n"
           "        rlc r7\n"
           "        rla r6\n"
           "        cmp r5, r7\n"
           "        jnc d_skip\n"
           "        sub r5, r7\n"
           "        bis #1, r6\n"
           "d_skip: dec r8\n"
           "        jnz d_loop\n"
           "        inc r10\n"
           "        mov r10, &DIVPH\n"
           "        cmp #4, r10\n"
           "        jl d_cont\n"
           "        mov #DONE, &P4OUT\n"
           "d_cont: ";
    oss << (protected_mode ? "jmp div_task\n" : "jmp start\n");
    (void)yield;

    // ---- binSearch task (untrusted, tainted) --------------------------
    const char *mask12 = protected_mode
                             ? "        and #0x03ff, r12\n"
                               "        bis #0x0c00, r12\n"
                             : "";
    const char *mask14 = protected_mode
                             ? "        and #0x03ff, r14\n"
                               "        bis #0x0c00, r14\n"
                             : "";
    oss << "        .org 0x100\n"
           "bs_task:\n"
           "        mov &BSPH, r10\n"
           "        cmp #16, r10\n"
           "        jl b_init\n"
           "        cmp #20, r10\n"
           "        jl b_find\n";
    if (protected_mode) {
        oss << "b_idle: jmp b_idle\n";
    } else {
        oss << "        mov #DONE, &P2OUT\n"
               "        mov #start, r15\n"
               "        br r15\n";
    }
    oss << "b_init: mov r10, r11\n"
           "        rla r11\n"
           "        rla r11\n"
           "        add #2, r11\n"
           "        mov #0x0c20, r12\n"
           "        add r10, r12\n"
        << mask12
        << "        mov r11, 0(r12)\n"
           "        inc r10\n"
           "        mov r10, &BSPH\n";
    if (protected_mode) {
        oss << "        jmp bs_task\n";
    } else {
        oss << "        mov #start, r15\n"
               "        br r15\n";
    }
    oss << "b_find: mov &P1IN, r4\n"
           "        clr r5\n"
           "        mov #16, r6\n"
           "b_loop: cmp r6, r5\n"
           "        jge b_done\n"
           "        mov r5, r7\n"
           "        add r6, r7\n"
           "        rra r7\n"
           "        mov #0x0c20, r8\n"
           "        add r7, r8\n"
           "        mov @r8, r9\n"
           "        cmp r4, r9\n"
           "        jge b_hi\n"
           "        mov r7, r5\n"
           "        inc r5\n"
           "        jmp b_loop\n"
           "b_hi:   mov r7, r6\n"
           "        jmp b_loop\n"
           "b_done: mov #0x0c40, r14\n"
           "        add r4, r14\n"
        << mask14
        << "        mov r5, 0(r14)\n"
           "        inc r10\n"
           "        mov r10, &BSPH\n"
           "        cmp #20, r10\n"
           "        jl b_cont\n"
           "        mov #DONE, &P2OUT\n"
           "b_cont: ";
    if (protected_mode) {
        oss << "jmp bs_task\n";
    } else {
        oss << "mov #start, r15\n"
               "        br r15\n";
    }
    return oss.str();
}

} // namespace

MicroBenchmark
rtosBaseline()
{
    MicroBenchmark mb;
    mb.name = "rtos-baseline";
    mb.description =
        "cooperative scheduler, no protection: untrusted control "
        "flow re-enters the scheduler";
    mb.source = rtosSource(false, 0);
    mb.policy = rtosPolicy();
    return mb;
}

MicroBenchmark
rtosProtected(unsigned interval_sel)
{
    MicroBenchmark mb;
    mb.name = "rtos-protected";
    mb.description =
        "watchdog-sliced scheduler with masked untrusted stores";
    mb.source = rtosSource(true, interval_sel);
    mb.policy = rtosPolicy();
    return mb;
}

RtosMeasurement
measureRtos(const Soc &soc, const ProgramImage &image,
            uint64_t max_cycles)
{
    RtosMeasurement m;
    SocRunner runner(soc);
    runner.load(image);
    runner.setStimulus(measurementStimulus(0xBEEF));
    runner.reset();
    runner.simulator().resetCycleCount();

    bool div_done = false;
    bool bs_done = false;
    while (runner.cycles() < max_cycles) {
        runner.stepCycle();
        div_done = div_done || runner.portOut(4) == kDoneMagic;
        bs_done = bs_done || runner.portOut(2) == kDoneMagic;
        if (div_done && bs_done)
            break;
    }
    m.completed = div_done && bs_done;
    m.cycles = runner.cycles();
    return m;
}

} // namespace glifs
