/**
 * @file
 * The end-to-end software-refactoring toolflow of Figures 10 and 11:
 * application-specific gate-level information flow tracking, root-cause
 * identification, watchdog protection insertion (a harness "#define",
 * which requires re-analysis before mask insertion, exactly as the
 * paper notes), memory-address mask insertion, and final verification.
 */

#ifndef GLIFS_WORKLOADS_TOOLFLOW_HH
#define GLIFS_WORKLOADS_TOOLFLOW_HH

#include "ift/rootcause.hh"
#include "workloads/workload.hh"
#include "xform/masking.hh"

namespace glifs
{

/** Everything the toolflow produced for one workload. */
struct ToolflowResult
{
    /** Analysis of the unmodified program. */
    EngineResult unmodified;
    RootCauseReport rootCause;

    bool watchdogApplied = false;
    unsigned intervalSel = 1;
    size_t masksInserted = 0;
    size_t maskingRounds = 0;

    /** The secured program (== the original when nothing was needed). */
    AsmProgram securedProgram;
    ProgramImage securedImage;

    /** Analysis of the secured program. */
    EngineResult secured;

    std::vector<std::string> notes;

    bool modified() const { return watchdogApplied || masksInserted; }

    /** Final verification verdict (Section 5.4's T_S assurance). */
    bool verified() const { return secured.secure(); }

    std::string summary(const std::string &name) const;
};

/**
 * Run the full toolflow on a workload.
 * @param interval_sel watchdog interval used when protection is needed
 * @param max_mask_rounds analysis/masking iterations before giving up
 */
ToolflowResult secureWorkload(const Soc &soc, const Workload &workload,
                              unsigned interval_sel = 1,
                              unsigned max_mask_rounds = 4);

/**
 * The "always on" counterpart for the Table-3 baseline: watchdog
 * protection plus masking of every task store, with no analysis
 * feedback.
 */
struct AlwaysOnProgram
{
    AsmProgram program;
    ProgramImage image;
    size_t masksInserted = 0;
};

AlwaysOnProgram alwaysOnWorkload(const Workload &workload,
                                 unsigned interval_sel = 1);

} // namespace glifs

#endif // GLIFS_WORKLOADS_TOOLFLOW_HH
