#include "workloads/toolflow.hh"

#include <sstream>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "xform/always_on.hh"

namespace glifs
{

namespace
{

EngineResult
analyzeImage(const Soc &soc, const Policy &policy,
             const ProgramImage &image)
{
    IftEngine engine(soc, policy, EngineConfig{});
    return engine.run(image);
}

} // namespace

ToolflowResult
secureWorkload(const Soc &soc, const Workload &workload,
               unsigned interval_sel, unsigned max_mask_rounds)
{
    ToolflowResult res;
    res.intervalSel = interval_sel;
    const Policy policy = workload.policy();

    // Stage 1: application-specific gate-level IFT on the unmodified
    // binary (Figure 10).
    res.securedProgram = workload.program(HarnessOptions{});
    res.securedImage = workload.image(HarnessOptions{});
    res.unmodified = analyzeImage(soc, policy, res.securedImage);
    res.rootCause = analyzeRootCauses(res.unmodified, policy,
                                     &res.securedImage);

    if (!res.rootCause.needsModification()) {
        res.secured = res.unmodified;
        res.notes.push_back("no modification needed");
        return res;
    }

    // Stage 2: watchdog protection, applied as the harness-level
    // "#define" (Figure 11). The program changes shape, so analysis
    // must run again before masks are placed.
    EngineResult current = res.unmodified;
    if (!res.rootCause.tasksNeedingWatchdog.empty()) {
        res.watchdogApplied = true;
        HarnessOptions opts;
        opts.watchdog = true;
        opts.intervalSel = interval_sel;
        res.securedProgram = workload.program(opts);
        res.securedImage = workload.image(opts);
        res.notes.push_back(detail::concat(
            "enabled watchdog protection (interval ",
            iot430::wdtIntervals[interval_sel], " cycles)"));
        current = analyzeImage(soc, policy, res.securedImage);
    }

    // Stage 3: iterate mask insertion until no violating stores remain
    // (or the round budget runs out).
    for (unsigned round = 0; round < max_mask_rounds; ++round) {
        RootCauseReport rc = analyzeRootCauses(current, policy,
                                               &res.securedImage);
        if (rc.storesToMask.empty())
            break;
        ++res.maskingRounds;
        MaskingResult mres = insertMasks(res.securedProgram,
                                         res.securedImage,
                                         rc.storesToMask);
        res.masksInserted += mres.masksInserted;
        for (const std::string &n : mres.notes)
            res.notes.push_back(n);
        if (!mres.unmaskable.empty()) {
            res.notes.push_back(detail::concat(
                "error: ", mres.unmaskable.size(),
                " store(s) cannot be masked"));
            break;
        }
        res.securedProgram = mres.program;
        res.securedImage = assemble(res.securedProgram);
        current = analyzeImage(soc, policy, res.securedImage);
    }

    // Stage 4: final verification.
    res.secured = current;
    return res;
}

std::string
ToolflowResult::summary(const std::string &name) const
{
    std::ostringstream oss;
    oss << name << ": ";
    if (!modified()) {
        oss << (verified() ? "secure as-is" : "NOT SECURE (unfixable)");
        return oss.str();
    }
    oss << (watchdogApplied ? "watchdog" : "no-watchdog") << " + "
        << masksInserted << " mask(s) in " << maskingRounds
        << " round(s) -> "
        << (verified() ? "verified secure" : "STILL INSECURE");
    return oss.str();
}

AlwaysOnProgram
alwaysOnWorkload(const Workload &workload, unsigned interval_sel)
{
    AlwaysOnProgram out;
    HarnessOptions opts;
    opts.watchdog = true;
    opts.intervalSel = interval_sel;
    AlwaysOnResult aor = transformAlwaysOn(workload.program(opts));
    out.program = aor.program;
    out.image = assemble(out.program);
    out.masksInserted = aor.masksInserted;
    return out;
}

} // namespace glifs
