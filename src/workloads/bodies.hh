/**
 * @file
 * Task-body assembly sources for the 13 benchmarks (internal to
 * src/workloads; use the Workload registry).
 */

#ifndef GLIFS_WORKLOADS_BODIES_HH
#define GLIFS_WORKLOADS_BODIES_HH

#include <string>

namespace glifs
{

std::string workloadBodyMult();
std::string workloadBodyBinSearch();
std::string workloadBodyTea8();
std::string workloadBodyIntFilt();
std::string workloadBodyTHold();
std::string workloadBodyDiv();
std::string workloadBodyInSort();
std::string workloadBodyRle();
std::string workloadBodyIntAvg();
std::string workloadBodyAutocorr();
std::string workloadBodyFft();
std::string workloadBodyConvEn();
std::string workloadBodyViterbi();

} // namespace glifs

#endif // GLIFS_WORKLOADS_BODIES_HH
