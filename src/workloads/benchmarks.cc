/**
 * @file
 * The 13 benchmark task bodies (Table 1).
 *
 * Conventions: tasks run with SP = 0x0ff0 (tainted RAM); progress that
 * must survive a watchdog POR lives in the tainted partition (PHASE at
 * 0x0fc0 and scalar state at 0x0fc2-0x0fcf -- placed above every array
 * address cone so conservative X-merged store addresses cannot reach
 * them -- arrays at 0x0c20-0x0c3f, results at 0x0c10/0x0c30, BUCKETS
 * at 0x0c40 for the deliberately unbounded
 * stores of the violating benchmarks). Bodies jump to the harness
 * labels `task` (re-dispatch) and `task_done` (signal completion).
 *
 * The six Table-2 violators branch on tainted-input-derived values
 * (condition 1) and store through tainted-input-derived addresses
 * (condition 2); the other seven use fixed or predicated control and
 * loop-counter-derived addresses only.
 */

#include "workloads/bodies.hh"

namespace glifs
{

std::string
workloadBodyMult()
{
    // Predicated shift-add multiply: the multiplier bit is turned into
    // a full mask (0 or 0xffff) arithmetically, so no control flow
    // depends on tainted data. One round per resumable phase so a
    // watchdog slice can always make progress.
    return R"(
        mov &PHASE, r10
        and #0x001f, r10     ; bound the resume phase
        tst r10
        jnz mu_chk
        mov &P1IN, r4        ; multiplicand (tainted)
        mov r4, &0x0fc4
        mov &P1IN, r4        ; multiplier (tainted)
        mov r4, &0x0fc5
        mov #0, &0x0fc6      ; product accumulator
        mov #1, &PHASE
        jmp task
mu_chk:
        cmp #17, r10
        jl mu_round
        jmp task_done
mu_round:
        mov &0x0fc4, r4
        mov &0x0fc5, r5
        mov &0x0fc6, r6
        mov r5, r8
        and #1, r8           ; current multiplier bit
        clr r9
        sub r8, r9           ; r9 = -(bit): 0x0000 or 0xffff
        mov r4, r11
        and r9, r11          ; multiplicand or 0
        add r11, r6
        rla r4
        rra r5
        mov r4, &0x0fc4
        mov r5, &0x0fc5
        mov r6, &0x0fc6
        inc r10
        mov r10, &PHASE
        cmp #17, r10
        jl mu_more
        mov r6, &0x0c10
mu_more:
        jmp task
)";
}

std::string
workloadBodyBinSearch()
{
    return R"(
        mov &PHASE, r10
        and #0x001f, r10     ; bound the resume phase
        cmp #16, r10
        jl bs_init
        cmp #17, r10
        jl bs_find
        jmp task_done
bs_init:                     ; t[i] = 4*i + 2 (sorted table)
        mov r10, r11
        rla r11
        rla r11
        add #2, r11
        mov #0x0c20, r12
        add r10, r12
        mov r11, 0(r12)
        inc r10
        mov r10, &PHASE
        jmp task
bs_find:
        mov &P1IN, r4        ; search key (tainted)
        clr r5               ; lo
        mov #16, r6          ; hi (exclusive)
bs_loop:
        cmp r6, r5
        jge bs_done
        mov r5, r7
        add r6, r7
        rra r7               ; mid
        mov #0x0c20, r8
        add r7, r8
        mov @r8, r9          ; t[mid] (tainted)
        cmp r4, r9           ; tainted comparison: condition 1
        jge bs_high
        mov r7, r5
        inc r5
        jmp bs_loop
bs_high:
        mov r7, r6
        jmp bs_loop
bs_done:
        mov r5, &0x0c10      ; found position
        mov #BUCKETS, r14
        add r4, r14          ; key-derived pointer: condition 2
        mov r5, 0(r14)
        mov #17, &PHASE
        jmp task
)";
}

std::string
workloadBodyTea8()
{
    // 8 rounds of a 16-bit TEA-style Feistel mix; fixed control flow,
    // one round per resumable phase.
    return R"(
        mov &PHASE, r10
        and #0x000f, r10     ; bound the resume phase
        tst r10
        jnz te_chk
        mov &P1IN, r4        ; v0
        mov r4, &0x0fc4
        mov &P1IN, r4        ; v1
        mov r4, &0x0fc5
        mov #0, &0x0fc6      ; sum
        mov #1, &PHASE
        jmp task
te_chk:
        cmp #9, r10
        jl te_round
        jmp task_done
te_round:
        mov &0x0fc4, r4      ; v0
        mov &0x0fc5, r5      ; v1
        mov &0x0fc6, r6      ; sum
        add #0x9e37, r6
        mov r5, r8
        rla r8
        rla r8
        rla r8
        rla r8
        add #0x3c6e, r8      ; (v1<<4) + k0
        mov r5, r9
        add r6, r9           ; v1 + sum
        mov r5, r11
        rra r11
        rra r11
        rra r11
        rra r11
        rra r11
        add #0x7a9b, r11     ; (v1>>5) + k1
        xor r9, r8
        xor r11, r8
        add r8, r4           ; v0 += mix
        mov r4, r8
        rla r8
        rla r8
        rla r8
        rla r8
        add #0x1b58, r8      ; (v0<<4) + k2
        mov r4, r9
        add r6, r9
        mov r4, r11
        rra r11
        rra r11
        rra r11
        rra r11
        rra r11
        add #0x4d2c, r11     ; (v0>>5) + k3
        xor r9, r8
        xor r11, r8
        add r8, r5           ; v1 += mix
        mov r4, &0x0fc4
        mov r5, &0x0fc5
        mov r6, &0x0fc6
        inc r10
        mov r10, &PHASE
        cmp #9, r10
        jl te_more
        mov r4, &0x0c10
        mov r5, &0x0c11
te_more:
        jmp task
)";
}

std::string
workloadBodyIntFilt()
{
    // 4-tap FIR: y = (x + 2*x1 + 2*x2 + x3) / 4, history in RAM.
    return R"(
        mov &PHASE, r10
        and #0x000f, r10     ; bound the resume phase
        cmp #8, r10
        jl if_unit
        jmp task_done
if_unit:
        mov &P1IN, r4        ; x (tainted)
        mov &0x0fc4, r5      ; x1
        mov &0x0fc5, r6      ; x2
        mov &0x0fc6, r7      ; x3
        mov r4, r8
        add r7, r8
        mov r5, r9
        rla r9
        add r9, r8
        mov r6, r9
        rla r9
        add r9, r8
        rra r8
        rra r8
        mov #0x0c30, r9
        add r10, r9
        mov r8, 0(r9)        ; y[i]: loop-counter-derived address
        mov r6, &0x0fc6
        mov r5, &0x0fc5
        mov r4, &0x0fc4
        inc r10
        mov r10, &PHASE
        jmp task
)";
}

std::string
workloadBodyTHold()
{
    return R"(
        mov &PHASE, r10
        and #0x000f, r10     ; bound the resume phase
        cmp #8, r10
        jl th_unit
        jmp task_done
th_unit:
        mov &P1IN, r4
        cmp #0x4000, r4      ; tainted threshold compare: condition 1
        jnc th_skip
        mov #BUCKETS, r5
        add r4, r5           ; sample-derived pointer: condition 2
        mov r4, 0(r5)
        mov &0x0fc2, r6
        inc r6
        mov r6, &0x0fc2      ; event count
th_skip:
        inc r10
        mov r10, &PHASE
        jmp task
)";
}

std::string
workloadBodyDiv()
{
    return R"(
        mov &PHASE, r10
        and #0x000f, r10     ; bound the resume phase
        tst r10
        jz dv_run
        jmp task_done
dv_run:
        mov &P1IN, r4        ; dividend (tainted)
        mov &P1IN, r5        ; divisor (tainted)
        bis #1, r5           ; never zero
        clr r6               ; quotient
        clr r7               ; remainder
        mov #16, r8
dv_loop:
        rla r4               ; C = dividend MSB
        rlc r7               ; remainder = (remainder<<1) | C
        rla r6
        cmp r5, r7           ; tainted compare: condition 1
        jnc dv_skip
        sub r5, r7
        bis #1, r6
dv_skip:
        dec r8
        jnz dv_loop
        mov r6, &0x0c10
        mov r7, &0x0c11
        mov #BUCKETS, r9
        add r6, r9           ; quotient-derived pointer: condition 2
        mov #1, 0(r9)
        mov #1, &PHASE
        jmp task
)";
}

std::string
workloadBodyInSort()
{
    // Insertion sort with one element inserted per resumable phase so
    // a watchdog slice always makes progress (phases 0-7 sample, 8-14
    // insert elements 1..7, 15 does the violating bucket store).
    return R"(
        mov &PHASE, r10
        and #0x001f, r10     ; bound the resume phase
        cmp #8, r10
        jl is_read
        cmp #15, r10
        jl is_ins
        cmp #16, r10
        jl is_fin
        jmp task_done
is_read:
        mov #0x0c20, r11
        add r10, r11
        mov &P1IN, r4
        mov r4, 0(r11)
        inc r10
        mov r10, &PHASE
        jmp task
is_ins:                      ; insert element i = phase - 7
        mov r10, r5
        sub #7, r5
        and #0x0007, r5      ; bound the merge-widened index
        mov #0x0c20, r6
        add r5, r6
        mov @r6, r7          ; key (tainted)
        mov r5, r8
is_inner:
        tst r8
        jz is_place
        mov #0x0c20, r9
        add r8, r9
        mov -1(r9), r11      ; arr[j-1] (tainted)
        cmp r7, r11          ; tainted compare: condition 1
        jl is_place
        mov r11, 0(r9)
        dec r8
        jmp is_inner
is_place:
        mov #0x0c20, r9
        add r8, r9
        mov r7, 0(r9)
        inc r10
        mov r10, &PHASE
        jmp task
is_fin:
        mov &0x0c20, r12     ; minimum element (tainted)
        mov #BUCKETS, r13
        add r12, r13         ; value-derived pointer: condition 2
        mov #1, 0(r13)
        mov #16, &PHASE
        jmp task
)";
}

std::string
workloadBodyRle()
{
    // Fully predicated run-length state update: the equality of
    // consecutive tainted samples is computed as an arithmetic mask.
    return R"(
        mov &PHASE, r10
        and #0x000f, r10     ; bound the resume phase
        cmp #8, r10
        jl rl_unit
        jmp task_done
rl_unit:
        mov &P1IN, r4
        mov &0x0fc2, r5      ; previous sample
        mov r4, r6
        xor r5, r6           ; diff
        clr r7
        sub r6, r7
        bis r6, r7           ; bit15 set iff diff != 0
        mov #15, r9
rl_sh:
        rra r7
        dec r9
        jnz rl_sh            ; r7 = 0xffff if differ else 0
        inv r7               ; equal-mask
        mov &0x0fc3, r11     ; run length
        and r7, r11          ; reset on change
        inc r11
        mov r11, &0x0fc3
        mov r4, &0x0fc2
        mov #0x0c20, r12
        add r10, r12
        add r10, r12
        mov r4, 0(r12)       ; out[2i]   = sample
        mov r11, 1(r12)      ; out[2i+1] = run length
        inc r10
        mov r10, &PHASE
        jmp task
)";
}

std::string
workloadBodyIntAvg()
{
    return R"(
        mov &PHASE, r10
        and #0x000f, r10     ; bound the resume phase
        cmp #8, r10
        jl av_unit
        cmp #9, r10
        jl av_fin
        jmp task_done
av_unit:
        mov &P1IN, r4
        cmp #0x7000, r4      ; tainted outlier test: condition 1
        jc av_skip
        mov &0x0fc2, r5
        add r4, r5
        mov r5, &0x0fc2      ; accumulator
av_skip:
        inc r10
        mov r10, &PHASE
        jmp task
av_fin:
        mov &0x0fc2, r5
        rra r5
        rra r5
        rra r5               ; /8
        mov r5, &0x0c10
        mov #BUCKETS, r6
        add r5, r6           ; average-derived pointer: condition 2
        mov #1, 0(r6)
        mov #9, &PHASE
        jmp task
)";
}

std::string
workloadBodyAutocorr()
{
    // r[lag] = sum x[i]*x[i+lag] for lag 0..2 over 6 terms, with a
    // predicated multiply subroutine (exercises call/ret/stack).
    return R"(
        mov &PHASE, r10
        and #0x000f, r10     ; bound the resume phase
        cmp #8, r10
        jl ac_read
        cmp #11, r10
        jl ac_lag
        jmp task_done
ac_read:
        mov #0x0c20, r11
        add r10, r11
        mov &P1IN, r4
        and #0x00ff, r4      ; scale samples
        mov r4, 0(r11)
        inc r10
        mov r10, &PHASE
        jmp task
ac_lag:
        mov r10, r13
        sub #8, r13          ; lag
        and #0x0003, r13     ; bound it (resume phase is unconstrained)
        clr r12              ; accumulator
        clr r11              ; i
ac_inner:
        cmp #6, r11
        jge ac_store
        mov #0x0c20, r4
        add r11, r4
        mov @r4, r5          ; x[i]
        mov #0x0c20, r4
        add r11, r4
        add r13, r4
        mov @r4, r6          ; x[i+lag]
        push r10
        push r11
        call #ac_mul
        pop r11
        pop r10
        add r7, r12
        inc r11
        jmp ac_inner
ac_store:
        mov #0x0c30, r4
        add r13, r4
        mov r12, 0(r4)       ; r[lag]
        inc r10
        mov r10, &PHASE
        jmp task
ac_mul:                      ; r7 = r5 * r6 (predicated, clobbers r8-r11)
        clr r7
        mov #16, r8
ac_mloop:
        mov r6, r9
        and #1, r9
        clr r10
        sub r9, r10
        mov r5, r11
        and r10, r11
        add r11, r7
        rla r5
        rra r6
        dec r8
        jnz ac_mloop
        ret
)";
}

std::string
workloadBodyFft()
{
    // 8-point butterfly network (Walsh-Hadamard structure: the same
    // fixed staged butterflies as a radix-2 FFT with +-1 twiddles).
    return R"(
        mov &PHASE, r10
        and #0x000f, r10     ; bound the resume phase
        cmp #8, r10
        jl ff_read
        cmp #11, r10
        jl ff_stage
        jmp task_done
ff_read:
        mov #0x0c20, r11
        add r10, r11
        mov &P1IN, r4
        and #0x00ff, r4
        mov r4, 0(r11)
        inc r10
        mov r10, &PHASE
        jmp task
ff_stage:
        mov r10, r13
        sub #8, r13          ; stage 0..2
        and #0x0003, r13     ; bound it (resume phase is unconstrained)
        mov #1, r12          ; span = 1 << stage
        tst r13
        jz ff_spa
ff_sp:
        rla r12
        dec r13
        jnz ff_sp
ff_spa:
        and #0x000f, r12     ; bound the span (merge-abstracted shift)
        clr r11              ; i
ff_loop:
        cmp #8, r11
        jge ff_next
        mov r11, r4
        and r12, r4          ; i & span
        jnz ff_skip
        mov r11, r3
        and #0x0007, r3      ; bound the merge-widened index
        mov #0x0c20, r5
        add r3, r5
        mov r5, r6
        add r12, r6
        mov @r5, r7          ; a
        mov @r6, r8          ; b
        mov r7, r9
        add r8, r9           ; a + b
        sub r8, r7           ; a - b
        mov r9, 0(r5)
        mov r7, 0(r6)
ff_skip:
        inc r11
        jmp ff_loop
ff_next:
        inc r10
        mov r10, &PHASE
        jmp task
)";
}

std::string
workloadBodyConvEn()
{
    // Rate-1/2, K=3 convolutional encoder; one input bit per
    // resumable phase, shift-register state in tainted RAM.
    return R"(
        mov &PHASE, r10
        and #0x001f, r10     ; bound the resume phase
        tst r10
        jnz ce_chk
        mov &P1IN, r4        ; latch the 16 input bits
        mov r4, &0x0fc4
        mov #0, &0x0fc5      ; s0
        mov #0, &0x0fc6      ; s1
        mov #0, &0x0fc7      ; g0 bits
        mov #0, &0x0fc8      ; g1 bits
        mov #1, &PHASE
        jmp task
ce_chk:
        cmp #17, r10
        jl ce_bit
        jmp task_done
ce_bit:
        mov &0x0fc4, r4
        mov &0x0fc5, r5      ; s0
        mov &0x0fc6, r6      ; s1
        mov &0x0fc7, r7      ; g0
        mov &0x0fc8, r8      ; g1
        mov r4, r11
        and #1, r11
        mov r11, r12
        xor r5, r12
        xor r6, r12          ; g0 = b ^ s0 ^ s1
        mov r11, r13
        xor r6, r13          ; g1 = b ^ s1
        rla r7
        bis r12, r7
        rla r8
        bis r13, r8
        mov r5, r6
        mov r11, r5
        rra r4
        mov r4, &0x0fc4
        mov r5, &0x0fc5
        mov r6, &0x0fc6
        mov r7, &0x0fc7
        mov r8, &0x0fc8
        inc r10
        mov r10, &PHASE
        cmp #17, r10
        jl ce_more
        mov r7, &0x0c10
        mov r8, &0x0c11
ce_more:
        jmp task
)";
}

std::string
workloadBodyViterbi()
{
    // Two-state Viterbi ACS (add-compare-select) over 8 received
    // symbols; the compare-select branches on tainted path metrics.
    return R"(
        mov &PHASE, r10
        and #0x000f, r10     ; bound the resume phase
        cmp #8, r10
        jl vt_step
        cmp #9, r10
        jl vt_fin
        jmp task_done
vt_step:
        mov &P1IN, r4
        and #3, r4           ; received symbol (tainted)
        mov &0x0fc4, r5      ; metric m0
        mov &0x0fc5, r6      ; metric m1
        mov r4, r7
        mov r4, r8
        rra r8
        and #1, r8
        and #1, r7
        add r8, r7           ; c0 = popcount(symbol)
        mov #2, r8
        sub r7, r8           ; c1 = 2 - c0
        mov r5, r9
        add r7, r9           ; m0 + c0
        mov r6, r11
        add r8, r11          ; m1 + c1
        cmp r11, r9          ; tainted compare-select: condition 1
        jl vt_k0
        mov r11, r9
vt_k0:
        mov r9, &0x0fc4
        mov r5, r9
        add r8, r9
        mov r6, r11
        add r7, r11
        cmp r11, r9
        jl vt_k1
        mov r11, r9
vt_k1:
        mov r9, &0x0fc5
        inc r10
        mov r10, &PHASE
        jmp task
vt_fin:
        mov &0x0fc4, r5
        mov r5, &0x0c10
        mov #BUCKETS, r6
        add r5, r6           ; metric-derived pointer: condition 2
        mov #1, 0(r6)
        mov #9, &PHASE
        jmp task
)";
}

} // namespace glifs
