/**
 * @file
 * Harness generation and the workload registry.
 */

#include "workloads/workload.hh"

#include <sstream>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "workloads/bodies.hh"
#include "xform/watchdog_xform.hh"

namespace glifs
{

std::string
harnessSource(const std::string &body, const HarnessOptions &opts)
{
    std::ostringstream oss;
    oss << "        .equ P1IN, 0x0000\n"
           "        .equ P2OUT, 0x0003\n"
           "        .equ P3IN, 0x0004\n"
           "        .equ P4OUT, 0x0007\n"
           "        .equ WDT, 0x0010\n"
           "        .equ DONE, 0xd07e\n"
           "        .equ PHASE, 0x0fc0\n"
           "        .equ TDATA, 0x0c00\n"
           "        .equ BUCKETS, 0x0c40\n";
    if (opts.watchdog) {
        oss << "        .equ WDT_CMD, "
            << wdtArmCommand(opts.intervalSel) << "\n";
    }
    oss << "start:  mov #0x0ff0, r1\n";
    if (opts.watchdog)
        oss << "        mov #WDT_CMD, &WDT\n";
    oss << "        jmp task\n";
    oss << "        .org " << kTaskBase << "\n";
    oss << "task:\n" << body;
    oss << "task_done:\n"
           "        mov #DONE, &P2OUT\n";
    if (opts.watchdog) {
        oss << "task_idle:\n"
               "        jmp task_idle\n";
    } else {
        oss << "        jmp start\n";
    }
    return oss.str();
}

std::string
Workload::source(const HarnessOptions &opts) const
{
    return harnessSource(body, opts);
}

AsmProgram
Workload::program(const HarnessOptions &opts) const
{
    return parseSource(source(opts));
}

ProgramImage
Workload::image(const HarnessOptions &opts) const
{
    return assembleSource(source(opts));
}

Policy
Workload::policy() const
{
    return benchmarkPolicy(kTaskBase, kTaskEnd);
}

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> workloads = {
        // Embedded sensor benchmarks [34].
        {"mult", "predicated 16x16 shift-add multiply", false, false,
         workloadBodyMult()},
        {"binSearch", "binary search for a tainted key", true, true,
         workloadBodyBinSearch()},
        {"tea8", "8-round TEA-style block cipher", false, false,
         workloadBodyTea8()},
        {"intFilt", "4-tap integer FIR filter", false, false,
         workloadBodyIntFilt()},
        {"tHold", "threshold event detector", true, true,
         workloadBodyTHold()},
        {"div", "16-bit restoring division", true, true,
         workloadBodyDiv()},
        {"inSort", "insertion sort of sampled data", true, true,
         workloadBodyInSort()},
        {"rle", "predicated run-length encoder", false, false,
         workloadBodyRle()},
        {"intAVG", "outlier-filtering running average", true, true,
         workloadBodyIntAvg()},
        // EEMBC-style benchmarks [35].
        {"autocorr", "autocorrelation with predicated MAC", false,
         false, workloadBodyAutocorr()},
        {"FFT", "8-point butterfly transform", false, false,
         workloadBodyFft()},
        {"ConvEn", "rate-1/2 K=3 convolutional encoder", false, false,
         workloadBodyConvEn()},
        {"Viterbi", "4-state Viterbi decoder", true, true,
         workloadBodyViterbi()},
    };
    return workloads;
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        names.push_back(w.name);
    return names;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

const Workload &
workloadByName(const std::string &name)
{
    if (const Workload *w = findWorkload(name))
        return *w;
    GLIFS_FATAL("unknown workload '", name, "'");
}

} // namespace glifs
