/**
 * @file
 * The Section-3 motivation examples: Figures 3 (a secure application
 * on a commodity processor), 4 (a tainted offset makes it insecure)
 * and 5 (a software mask makes it secure again), transcribed to
 * IoT430 assembly with the paper's port/partition layout.
 */

#ifndef GLIFS_WORKLOADS_MOTIVATION_HH
#define GLIFS_WORKLOADS_MOTIVATION_HH

#include "workloads/micro.hh"

namespace glifs
{

/** Figure 3: tainted and untainted loops each stay in their lane. */
MicroBenchmark figure3Clean();

/** Figure 4: the tainted loop indexes memory with a tainted offset. */
MicroBenchmark figure4Vulnerable();

/** Figure 5: the offset is masked; the system is secure again. */
MicroBenchmark figure5Masked();

} // namespace glifs

#endif // GLIFS_WORKLOADS_MOTIVATION_HH
