#include "workloads/motivation.hh"

namespace glifs
{

namespace
{

const char *kEquHeader =
    "        .equ P1IN, 0x0000\n"
    "        .equ P2OUT, 0x0003\n"
    "        .equ P3IN, 0x0004\n"
    "        .equ P4OUT, 0x0007\n";

/**
 * The untainted half of every motivation example: for 25 iterations
 * read the untainted port, accumulate into the untainted d[] array and
 * write the result to the trusted output port.
 */
const char *kUntaintedLoop = R"(
start:  clr r5
uloop:  cmp #25, r5
        jge udone
        mov &P3IN, r4        ; untainted input
        mov r5, r9
        and #0x001f, r9      ; bound the (merge-widened) index
        mov #0x0900, r6      ; d[] in the untainted partition
        add r9, r6
        mov @r6, r7
        add r4, r7
        mov r7, 0(r6)
        mov r7, &P4OUT       ; trusted output
        inc r5
        jmp uloop
udone:  jmp tsk
        .org 0x100
)";

Policy
motivationPolicy()
{
    return benchmarkPolicy(0x0100, 0x0FFF);
}

} // namespace

MicroBenchmark
figure3Clean()
{
    MicroBenchmark mb;
    mb.name = "figure3-clean";
    mb.description =
        "tainted/untainted code only use their own ports and memory";
    mb.source = std::string(kEquHeader) + kUntaintedLoop + R"(
tsk:    clr r5
tloop:  cmp #25, r5
        jge tdone
        mov &P1IN, r4        ; tainted input
        mov r5, r9
        and #0x001f, r9      ; bound the (merge-widened) index
        mov #0x0c20, r6      ; c[] in the tainted partition
        add r9, r6
        mov @r6, r7
        add r4, r7
        mov r7, 3(r6)        ; c[i+3] = a + c[i]
        mov r7, &P2OUT       ; untrusted output
        inc r5
        jmp tloop
tdone:  jmp tdone
)";
    mb.policy = motivationPolicy();
    return mb;
}

MicroBenchmark
figure4Vulnerable()
{
    MicroBenchmark mb;
    mb.name = "figure4-vulnerable";
    mb.description = "tainted input used as a memory offset";
    mb.source = std::string(kEquHeader) + kUntaintedLoop + R"(
tsk:    mov &P1IN, r8        ; offset = <P1> (tainted!)
        clr r5
tloop:  cmp #25, r5
        jge tdone
        mov &P1IN, r4
        mov #0x0c20, r6
        add r5, r6
        mov @r6, r7
        add r4, r7
        mov r6, r9
        add r8, r9           ; &c[i + offset]: unbounded
        mov r7, 0(r9)        ; may taint untainted memory / ports
        mov r7, &P2OUT
        inc r5
        jmp tloop
tdone:  jmp tdone
)";
    mb.policy = motivationPolicy();
    return mb;
}

MicroBenchmark
figure5Masked()
{
    MicroBenchmark mb;
    mb.name = "figure5-masked";
    mb.description = "masking the tainted offset restores security";
    mb.source = std::string(kEquHeader) + kUntaintedLoop + R"(
tsk:    mov &P1IN, r8
        and #0x03ff, r8      ; Offset = mask(offset)
        clr r5
tloop:  cmp #25, r5
        jge tdone
        mov &P1IN, r4
        mov r5, r9
        and #0x001f, r9      ; bound the (merge-widened) index
        mov #0x0c20, r6
        add r9, r6
        mov @r6, r7
        add r4, r7
        mov r6, r10
        add r8, r10
        and #0x03ff, r10     ; bounded into the tainted partition
        bis #0x0c00, r10
        mov r7, 0(r10)
        mov r7, &P2OUT
        inc r5
        jmp tloop
tdone:  jmp tdone
)";
    mb.policy = motivationPolicy();
    return mb;
}

} // namespace glifs
