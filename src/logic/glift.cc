#include "logic/glift.hh"

#include <sstream>

#include "base/logging.hh"

namespace glifs
{

namespace
{

constexpr GateKind allKinds[] = {
    GateKind::Buf, GateKind::Not, GateKind::And, GateKind::Nand,
    GateKind::Or, GateKind::Nor, GateKind::Xor, GateKind::Xnor,
    GateKind::Mux,
};

} // namespace

const GliftTables &
GliftTables::instance()
{
    static const GliftTables tables;
    return tables;
}

unsigned
GliftTables::encode(const Signal &s)
{
    return (s.taint ? 4u : 0u) | static_cast<unsigned>(s.value);
}

Signal
GliftTables::decode(unsigned code)
{
    Signal s;
    s.taint = (code & 4u) != 0;
    s.value = static_cast<Tern>(code & 3u);
    return s;
}

Signal
GliftTables::evalReference(GateKind kind, const Signal *inputs)
{
    const unsigned arity = gateArity(kind);

    // Identify unknown-valued and tainted input positions.
    std::vector<unsigned> unknown_pos;
    std::vector<unsigned> tainted_pos;
    bool fixed[maxArity] = {false, false, false};
    for (unsigned i = 0; i < arity; ++i) {
        if (!inputs[i].known())
            unknown_pos.push_back(i);
        else
            fixed[i] = inputs[i].asBool();
        if (inputs[i].taint)
            tainted_pos.push_back(i);
    }

    // Ternary value: enumerate all assignments of the X inputs; if the
    // output is invariant the value is known, otherwise it is X.
    Signal out;
    {
        bool any0 = false;
        bool any1 = false;
        const size_t combos = 1u << unknown_pos.size();
        for (size_t c = 0; c < combos; ++c) {
            bool in[maxArity];
            for (unsigned i = 0; i < arity; ++i)
                in[i] = fixed[i];
            for (size_t k = 0; k < unknown_pos.size(); ++k)
                in[unknown_pos[k]] = (c >> k) & 1u;
            (gateEval(kind, in) ? any1 : any0) = true;
        }
        out.value = (any0 && any1) ? Tern::X
                                   : (any1 ? Tern::One : Tern::Zero);
    }

    // Taint: can varying the tainted inputs change the output, for some
    // assignment of the untainted-X inputs? Tainted inputs range over
    // {0,1} regardless of their current value; untainted-X inputs are
    // free (conservative); untainted known inputs are fixed.
    out.taint = false;
    if (!tainted_pos.empty()) {
        std::vector<unsigned> free_pos;
        for (unsigned p : unknown_pos) {
            if (!inputs[p].taint)
                free_pos.push_back(p);
        }
        const size_t free_combos = 1u << free_pos.size();
        const size_t taint_combos = 1u << tainted_pos.size();
        for (size_t f = 0; f < free_combos && !out.taint; ++f) {
            bool any0 = false;
            bool any1 = false;
            for (size_t t = 0; t < taint_combos; ++t) {
                bool in[maxArity];
                for (unsigned i = 0; i < arity; ++i)
                    in[i] = fixed[i];
                for (size_t k = 0; k < free_pos.size(); ++k)
                    in[free_pos[k]] = (f >> k) & 1u;
                for (size_t k = 0; k < tainted_pos.size(); ++k)
                    in[tainted_pos[k]] = (t >> k) & 1u;
                (gateEval(kind, in) ? any1 : any0) = true;
            }
            out.taint = any0 && any1;
        }
    }
    return out;
}

GliftTables::GliftTables()
{
    for (GateKind kind : allKinds) {
        auto &table = tables[static_cast<size_t>(kind)];
        const unsigned arity = gateArity(kind);
        const size_t entries = 1u << (codeBits * arity);
        for (size_t idx = 0; idx < entries; ++idx) {
            Signal in[maxArity];
            bool valid = true;
            for (unsigned i = 0; i < arity; ++i) {
                unsigned code = (idx >> (codeBits * i)) & 7u;
                if ((code & 3u) == 3u) {
                    valid = false;
                    break;
                }
                in[i] = decode(code);
            }
            if (valid)
                table[idx] = evalReference(kind, in);
        }
    }
}

Signal
GliftTables::eval(GateKind kind, const Signal *inputs) const
{
    const unsigned arity = gateArity(kind);
    size_t idx = 0;
    for (unsigned i = 0; i < arity; ++i)
        idx |= static_cast<size_t>(encode(inputs[i])) << (codeBits * i);
    return tables[static_cast<size_t>(kind)][idx];
}

std::string
GliftTables::truthTable(GateKind kind)
{
    GLIFS_ASSERT(gateArity(kind) == 2, "truthTable wants a 2-input gate");
    std::ostringstream oss;
    oss << gateKindName(kind) << " GLIFT truth table\n";
    oss << " A AT  B BT |  O OT\n";
    oss << "------------+------\n";
    for (unsigned a = 0; a < 2; ++a) {
        for (unsigned at = 0; at < 2; ++at) {
            for (unsigned b = 0; b < 2; ++b) {
                for (unsigned bt = 0; bt < 2; ++bt) {
                    Signal in[2] = {sigBool(a, at), sigBool(b, bt)};
                    Signal out = evalReference(kind, in);
                    oss << " " << a << "  " << at << "  " << b << "  " << bt
                        << " |  " << ternChar(out.value) << "  "
                        << (out.taint ? 1 : 0) << "\n";
                }
            }
        }
    }
    return oss.str();
}

} // namespace glifs
