/**
 * @file
 * GLIFT taint propagation for combinational gates (Tiwari et al., as used
 * in Figure 1 of the paper).
 *
 * The output taint of a gate is set iff some assignment of the *tainted*
 * inputs can change the gate's output, given the known untainted inputs.
 * Untainted inputs whose value is unknown (X) are treated as free
 * variables, which makes the rule conservative (never misses a flow) while
 * still exploiting value-based masking (e.g. a NAND with an untainted 0
 * input masks the other, tainted, input).
 */

#ifndef GLIFS_LOGIC_GLIFT_HH
#define GLIFS_LOGIC_GLIFT_HH

#include <array>
#include <string>
#include <vector>

#include "logic/ternary.hh"

namespace glifs
{

/**
 * Precomputed GLIFT propagation tables for every gate kind.
 *
 * Each input signal is encoded in 3 bits (value in {0,1,X} plus taint);
 * the table maps the packed input code to the output Signal. Tables are
 * built once by exhaustive enumeration of the gate's boolean function.
 */
class GliftTables
{
  public:
    /** Singleton accessor; tables are built on first use. */
    static const GliftTables &instance();

    /** Propagate value and taint through a gate. */
    Signal eval(GateKind kind, const Signal *inputs) const;

    /**
     * Reference (non-table) implementation used to build the tables and
     * by the property tests.
     */
    static Signal evalReference(GateKind kind, const Signal *inputs);

    /**
     * Render the concrete-input GLIFT truth table of a 2-input gate in
     * the layout of the paper's Figure 1 (columns A AT B BT O OT).
     */
    static std::string truthTable(GateKind kind);

  private:
    GliftTables();

    static constexpr unsigned codeBits = 3;
    static constexpr unsigned maxArity = 3;
    static constexpr size_t tableSize = 1u << (codeBits * maxArity);

    /** Encode one signal into 3 bits. */
    static unsigned encode(const Signal &s);
    static Signal decode(unsigned code);

    std::array<std::array<Signal, tableSize>, 9> tables;
};

/** Convenience wrapper around GliftTables::instance().eval(). */
inline Signal
gliftEval(GateKind kind, const Signal *inputs)
{
    return GliftTables::instance().eval(kind, inputs);
}

/** Two-input convenience overload. */
inline Signal
gliftEval2(GateKind kind, const Signal &a, const Signal &b)
{
    Signal in[2] = {a, b};
    return gliftEval(kind, in);
}

} // namespace glifs

#endif // GLIFS_LOGIC_GLIFT_HH
