#include "logic/ternary.hh"

#include "base/logging.hh"

namespace glifs
{

unsigned
gateArity(GateKind kind)
{
    switch (kind) {
      case GateKind::Buf:
      case GateKind::Not:
        return 1;
      case GateKind::Mux:
        return 3;
      default:
        return 2;
    }
}

const char *
gateKindName(GateKind kind)
{
    switch (kind) {
      case GateKind::Buf: return "BUF";
      case GateKind::Not: return "NOT";
      case GateKind::And: return "AND";
      case GateKind::Nand: return "NAND";
      case GateKind::Or: return "OR";
      case GateKind::Nor: return "NOR";
      case GateKind::Xor: return "XOR";
      case GateKind::Xnor: return "XNOR";
      case GateKind::Mux: return "MUX";
    }
    return "?";
}

bool
gateEval(GateKind kind, const bool *in)
{
    switch (kind) {
      case GateKind::Buf: return in[0];
      case GateKind::Not: return !in[0];
      case GateKind::And: return in[0] && in[1];
      case GateKind::Nand: return !(in[0] && in[1]);
      case GateKind::Or: return in[0] || in[1];
      case GateKind::Nor: return !(in[0] || in[1]);
      case GateKind::Xor: return in[0] != in[1];
      case GateKind::Xnor: return in[0] == in[1];
      case GateKind::Mux: return in[0] ? in[2] : in[1];
    }
    GLIFS_PANIC("bad gate kind");
}

char
ternChar(Tern t)
{
    switch (t) {
      case Tern::Zero: return '0';
      case Tern::One: return '1';
      case Tern::X: return 'X';
    }
    return '?';
}

std::string
Signal::str() const
{
    std::string s(1, ternChar(value));
    if (taint)
        s.push_back('\'');
    return s;
}

Tern
ternMerge(Tern a, Tern b)
{
    return a == b ? a : Tern::X;
}

bool
ternSubsumes(Tern a, Tern b)
{
    return b == Tern::X || a == b;
}

namespace
{

/** True when both signals hold the same known value. */
bool
sameKnownValue(const Signal &a, const Signal &b)
{
    return a.known() && b.known() && a.value == b.value;
}

/**
 * Value/taint after the enable mux, ignoring reset.
 *
 * A tainted enable that is known 0 does NOT taint the output: under
 * the path-enumeration semantics of Algorithm 1 the "attacker flips
 * the enable" scenario corresponds to a different control-flow path,
 * which the engine explores separately; the conservative merge at the
 * join ORs that path's taints back in. A tainted enable that is known
 * 1 (or unknown) can still mask or propagate taint within this path.
 */
Signal
enabledNext(const Signal &d, const Signal &en, const Signal &q)
{
    Signal out;
    if (en.known()) {
        if (!en.asBool())
            return q;
        out.value = d.value;
        out.taint = d.taint || (en.taint && !sameKnownValue(d, q));
    } else {
        out.value = ternMerge(d.value, q.value);
        out.taint = d.taint || q.taint ||
                    (en.taint && !sameKnownValue(d, q));
    }
    return out;
}

} // namespace

Signal
dffNext(const Signal &d, const Signal &rst, const Signal &en,
        const Signal &q, bool rstVal)
{
    Tern rv = ternBool(rstVal);

    if (rst.known() && rst.asBool()) {
        // Asserted reset: value forced; taint follows the reset line only
        // (Figure 7: an untainted reset clears taint, a tainted one does
        // not).
        return {rv, rst.taint};
    }

    Signal next = enabledNext(d, en, q);

    if (rst.known()) {
        // Deasserted reset: a tainted reset line could have forced the
        // output to rstVal, so it can affect the output unless the output
        // already equals rstVal.
        if (rst.taint && next.value != rv)
            next.taint = true;
        return next;
    }

    // Unknown reset: merge the reset and no-reset outcomes.
    Signal merged;
    merged.value = ternMerge(rv, next.value);
    merged.taint = next.taint || rst.taint;
    return merged;
}

} // namespace glifs
