/**
 * @file
 * Ternary logic values {0, 1, X} and tainted signals.
 *
 * Every net in a glifs simulation carries a Signal: a ternary logic value
 * plus one GLIFT taint bit. X is the "unknown value symbol" used by the
 * paper's input-independent symbolic simulation (Section 4.1).
 */

#ifndef GLIFS_LOGIC_TERNARY_HH
#define GLIFS_LOGIC_TERNARY_HH

#include <cstdint>
#include <string>

namespace glifs
{

/** A ternary logic value. */
enum class Tern : uint8_t { Zero = 0, One = 1, X = 2 };

/** Kinds of combinational gates understood by the logic layer. */
enum class GateKind : uint8_t
{
    Buf,    ///< 1 input
    Not,    ///< 1 input
    And,    ///< 2 inputs
    Nand,   ///< 2 inputs
    Or,     ///< 2 inputs
    Nor,    ///< 2 inputs
    Xor,    ///< 2 inputs
    Xnor,   ///< 2 inputs
    Mux,    ///< 3 inputs: sel, a, b; out = sel ? b : a
};

/** Number of inputs a gate kind consumes. */
unsigned gateArity(GateKind kind);

/** Short printable name ("NAND", ...). */
const char *gateKindName(GateKind kind);

/** Concrete boolean function of a gate kind over concrete inputs. */
bool gateEval(GateKind kind, const bool *inputs);

/** A ternary value with an associated taint bit. */
struct Signal
{
    Tern value = Tern::X;
    bool taint = false;

    Signal() = default;
    Signal(Tern v, bool t) : value(v), taint(t) {}

    /** Known (non-X) value? */
    bool known() const { return value != Tern::X; }

    /** Concrete boolean value; only valid when known(). */
    bool asBool() const { return value == Tern::One; }

    bool operator==(const Signal &o) const = default;

    /** "0", "1" or "X", with trailing "'" when tainted. */
    std::string str() const;
};

/** Untainted constants. */
inline Signal sigZero() { return {Tern::Zero, false}; }
inline Signal sigOne() { return {Tern::One, false}; }
inline Signal sigX() { return {Tern::X, false}; }
inline Signal sigBool(bool b, bool taint = false)
{
    return {b ? Tern::One : Tern::Zero, taint};
}

/** Ternary value from a bool. */
inline Tern ternBool(bool b) { return b ? Tern::One : Tern::Zero; }

/** Printable character for a ternary value. */
char ternChar(Tern t);

/**
 * Merge two ternary values into the most conservative common abstraction:
 * equal values stay, differing values become X.
 */
Tern ternMerge(Tern a, Tern b);

/** True iff @p a is a refinement of @p b (b is X, or they are equal). */
bool ternSubsumes(Tern a, Tern b);

/**
 * Flip-flop next-state computation with the paper's reset-taint semantics
 * (Figure 7):
 *  - asserted untainted reset clears both value and taint;
 *  - asserted tainted reset clears the value but the output stays tainted;
 *  - unknown reset conservatively merges the reset and data outcomes.
 * @param d     data input
 * @param rst   reset input (active high)
 * @param en    clock/write enable input
 * @param q     current output
 * @param rstVal value loaded on reset
 */
Signal dffNext(const Signal &d, const Signal &rst, const Signal &en,
               const Signal &q, bool rstVal);

} // namespace glifs

#endif // GLIFS_LOGIC_TERNARY_HH
