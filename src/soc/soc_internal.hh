/**
 * @file
 * Shared elaboration context passed between the SoC construction
 * stages (decode/control, ALU, datapath, peripherals). Internal to
 * src/soc.
 */

#ifndef GLIFS_SOC_SOC_INTERNAL_HH
#define GLIFS_SOC_SOC_INTERNAL_HH

#include "rtl/arith.hh"
#include "rtl/components.hh"
#include "rtl/lut.hh"
#include "rtl/regfile.hh"
#include "soc/soc.hh"

namespace glifs
{

/** Everything the SoC build stages share. */
struct SocCtx
{
    explicit SocCtx(Netlist &nl, const SocConfig &config)
        : rb(nl), cfg(config)
    {}

    RtlBuilder rb;
    SocConfig cfg;

    // --- primary inputs ----------------------------------------------
    NetId extRst = kNoNet;
    Bus portIn[4];

    // --- architectural registers (shells created first) --------------
    RegWord stateReg;   ///< 4-bit FSM state
    RegWord pc;         ///< 12-bit program counter
    RegWord instrAddr;  ///< 12-bit address of current instruction
    RegWord ir;         ///< instruction register
    RegWord tmpS;       ///< source immediate / index word
    RegWord tmpD;       ///< destination index word
    RegWord mdr;        ///< memory data register
    RegWord res;        ///< EXEC result latch
    RegWord flags;      ///< Z,N,C,V
    RegWord sp;         ///< stack pointer (r1)
    std::vector<RegWord> gpr;  ///< r2..r15

    // --- decode (from IR, or the fetch word during Fetch) -------------
    Bus decodeWord;
    Bus opc, rdf, rsf, smode, dmode, jcond, joff;
    NetId isTwoOp = kNoNet, isOneOp = kNoNet, isJump = kNoNet;
    NetId isStk = kNoNet, isMisc = kNoNet;
    NetId stkPush = kNoNet, stkPop = kNoNet, stkCall = kNoNet;
    NetId stkRet = kNoNet, stkBr = kNoNet, miscHalt = kNoNet;
    NetId isMov = kNoNet, isCmp = kNoNet;
    NetId smodeImm = kNoNet, smodeInd = kNoNet, smodeIdx = kNoNet;
    NetId dmodeReg = kNoNet, dmodeInd = kNoNet, dmodeIdx = kNoNet;
    NetId needSrcImm = kNoNet, needDstImm = kNoNet;
    NetId needRead = kNoNet, needWrite = kNoNet;

    /// One-hot state nets indexed by CoreState.
    std::vector<NetId> st;

    // --- register file values ----------------------------------------
    Bus rsVal, rdVal;

    // --- ALU ----------------------------------------------------------
    Bus srcB;        ///< selected source operand
    Bus aluRes;
    Bus flagsNext;   ///< Z,N,C,V next values
    NetId flagWe = kNoNet;
    NetId jumpTaken = kNoNet;

    // --- memory interface ----------------------------------------------
    Bus progRdata;   ///< program ROM read data
    Bus dRead;       ///< 16-bit effective read address
    Bus dWrite;      ///< 16-bit effective write address
    Bus wrData;      ///< data to store
    Bus ramRdata;
    Bus loaded;      ///< final load result (RAM or peripheral)
    NetId ramSelRead = kNoNet, ramSelWrite = kNoNet;
    NetId memWriteState = kNoNet, ramWe = kNoNet;

    // --- peripherals ----------------------------------------------------
    RegWord portOut[4];
    NetId portOutWe[4] = {kNoNet, kNoNet, kNoNet, kNoNet};
    Bus periphRdata;
    NetId wdtWe = kNoNet, wdtExpired = kNoNet, wdtHoldQ = kNoNet;
    RegWord wdtCounter;
    RegWord wdtHold;
    NetId por = kNoNet;

    MemId progMem = 0;
    MemId dataMem = 0;

    /** One-hot helper for a CoreState. */
    NetId inState(CoreState s) const
    {
        return st[static_cast<size_t>(s)];
    }
};

/** Stage 1: primary inputs and register shells. */
void socBuildShells(SocCtx &ctx);

/** Stage 2: program ROM (read address = PC). */
void socBuildRom(SocCtx &ctx);

/** Stage 3: instruction decode predicates and state one-hots. */
void socBuildDecode(SocCtx &ctx);

/** Stage 4: register-file read ports (rsVal / rdVal). */
void socBuildRegRead(SocCtx &ctx);

/** Stage 5: ALU, source-operand select and flag logic. */
void socBuildAlu(SocCtx &ctx);

/** Stage 6: effective addresses, data RAM and store-data mux. */
void socBuildAddressing(SocCtx &ctx);

/** Stage 7: GPIO peripheral read mux and the final load mux. */
void socBuildGpio(SocCtx &ctx);

/** Stage 8: watchdog timer, POR net, and WDT register connections. */
void socBuildWatchdog(SocCtx &ctx);

/** Stage 9: next-state logic and all remaining register connections. */
void socBuildControl(SocCtx &ctx);

/** Populate the probe struct after construction. */
void socFillProbes(const SocCtx &ctx, SocProbes &prb);

} // namespace glifs

#endif // GLIFS_SOC_SOC_INTERNAL_HH
