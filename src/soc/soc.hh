/**
 * @file
 * The IoT430 SoC: an MSP430-class 16-bit microcontroller elaborated to
 * a gate-level netlist.
 *
 * The SoC contains a multi-cycle FSM core (fetch / immediate fetch /
 * memory read / execute / memory write / stack states), a 16-entry
 * register file (r0 hardwired zero, r1 the stack pointer), a program
 * ROM, a data RAM, four 16-bit GPIO port pairs (PxIN input / PxOUT
 * output registers) and a gate-level watchdog timer that fires a
 * power-on reset (POR) resetting every flip-flop but no memory --
 * exactly the substrate the paper's software techniques rely on.
 *
 * This stands in for the openMSP430 placed-and-routed netlist used in
 * the paper (see DESIGN.md, substitutions).
 */

#ifndef GLIFS_SOC_SOC_HH
#define GLIFS_SOC_SOC_HH

#include <memory>

#include "assembler/program_image.hh"
#include "isa/isa.hh"
#include "netlist/netlist.hh"
#include "rtl/bus.hh"
#include "sim/signal_state.hh"

namespace glifs
{

/** Geometry knobs for the SoC. */
struct SocConfig
{
    size_t progWords = iot430::kProgWords;
    size_t ramWords = iot430::kRamWords;
};

/** FSM state encoding of the IoT430 control unit. */
enum class CoreState : uint8_t
{
    Fetch = 0,
    SrcImm = 1,
    DstImm = 2,
    ReadMem = 3,
    Exec = 4,
    WriteMem = 5,
    Push = 6,
    Pop = 7,
    Ret = 8,
    Call = 9,
    Halt = 10,
};

/** White-box probe points used by simulation, analysis and checking. */
struct SocProbes
{
    // Primary inputs.
    NetId extReset = kNoNet;
    Bus portIn[4];           ///< P1IN..P4IN

    // Core state.
    Bus pcQ;                 ///< PC register outputs
    Bus pcD;                 ///< PC register next-value nets
    std::vector<GateId> pcFlops;
    Bus stateQ;              ///< FSM state register
    Bus irQ;                 ///< instruction register
    Bus instrAddrQ;          ///< address of the executing instruction
    Bus spQ;                 ///< stack pointer
    Bus flagsQ;              ///< Z,N,C,V
    std::vector<Bus> gprQ;   ///< r2..r15 outputs (index 0 -> r2)
    NetId haltNet = kNoNet;  ///< 1 while the FSM sits in Halt
    NetId fetchNet = kNoNet; ///< 1 during instruction fetch cycles

    // Memory interface.
    MemId progMem = 0;
    MemId dataMem = 0;
    Bus dmemReadAddr;        ///< full 16-bit effective read address
    Bus dmemWriteAddr;       ///< full 16-bit effective write address
    Bus dmemWriteData;
    NetId memWriteState = kNoNet;  ///< a store-type state is active
    NetId ramWriteEn = kNoNet;

    // Peripherals.
    Bus portOut[4];          ///< P1OUT..P4OUT register outputs
    NetId wdtWriteEn = kNoNet;  ///< write-enable of the WDT control
    Bus wdtCounterQ;
    NetId wdtHoldQ = kNoNet;
    NetId wdtExpired = kNoNet;
    NetId porNet = kNoNet;
};

/**
 * Construct-once SoC: builds the netlist in the constructor.
 */
class Soc
{
  public:
    explicit Soc(const SocConfig &cfg = {});
    ~Soc();

    Soc(const Soc &) = delete;
    Soc &operator=(const Soc &) = delete;

    const Netlist &netlist() const { return nl; }
    const SocProbes &probes() const { return prb; }
    const SocConfig &config() const { return cfg; }

    /**
     * Load a program image into program-memory cells of a simulation
     * state. Optionally taint the instructions inside [taint_lo,
     * taint_hi] (paper footnote 3 allows marking code partitions
     * tainted in program memory).
     */
    void loadProgram(SignalState &state, const ProgramImage &image,
                     bool taint_code = false, uint16_t taint_lo = 0,
                     uint16_t taint_hi = 0) const;

    /** Concrete helper: read a register value from a state (0 = r0). */
    uint16_t regValue(const SignalState &state, unsigned reg) const;

    /** Concrete helper: read the PC. */
    uint16_t pcValue(const SignalState &state) const;

    /** Concrete helper: read a RAM word (full data-space address). */
    uint16_t ramValue(const SignalState &state, uint16_t addr) const;

  private:
    SocConfig cfg;
    Netlist nl;
    SocProbes prb;
};

} // namespace glifs

#endif // GLIFS_SOC_SOC_HH
