#include "soc/runner.hh"

#include "base/logging.hh"

namespace glifs
{

SocRunner::SocRunner(const Soc &soc) : socRef(soc), sim(soc.netlist())
{
}

void
SocRunner::load(const ProgramImage &image)
{
    socRef.loadProgram(sim.state(), image);
    // loadProgram writes memory cells directly; resync the simulator's
    // dirty tracking (covers reloading after cycles have run).
    sim.markAllDirty();
}

void
SocRunner::setPortInput(unsigned port, uint16_t value)
{
    GLIFS_ASSERT(port >= 1 && port <= 4, "bad port ", port);
    fixedIn[port - 1] = value;
}

void
SocRunner::driveInputs(bool reset_asserted)
{
    const SocProbes &prb = socRef.probes();
    sim.setInput(prb.extReset, sigBool(reset_asserted));
    for (unsigned p = 0; p < 4; ++p) {
        uint16_t v = stim ? stim(p + 1, sim.cycle()) : fixedIn[p];
        for (unsigned b = 0; b < 16; ++b)
            sim.setInput(prb.portIn[p][b], sigBool((v >> b) & 1u));
    }
}

void
SocRunner::reset()
{
    driveInputs(true);
    sim.step();
    // During the reset cycle the FSM state was still unknown, so the
    // conservative memory model X-merged the RAM (a write with unknown
    // enable could have happened). Concrete runs model power-up SRAM as
    // zero-filled; establish that now that every flop is known. The
    // symbolic analysis (src/ift) instead leaves RAM as unknown X.
    const Netlist &nl = socRef.netlist();
    MemId ram = socRef.probes().dataMem;
    for (size_t w = 0; w < nl.memory(ram).words; ++w)
        sim.setMemWord(ram, w, 0);
}

void
SocRunner::stepCycle()
{
    driveInputs(false);
    sim.step();
}

bool
SocRunner::halted() const
{
    // Read the state register directly: its flop outputs are fresh right
    // after a clock edge, while comb nets (like haltNet) are not
    // re-evaluated until the next cycle's evalComb().
    const Bus &st = socRef.probes().stateQ;
    uint16_t v = 0;
    for (size_t i = 0; i < st.size(); ++i) {
        Signal s = sim.state().net(st[i]);
        if (!s.known())
            return false;
        if (s.asBool())
            v |= static_cast<uint16_t>(1u << i);
    }
    return v == static_cast<uint16_t>(CoreState::Halt);
}

uint64_t
SocRunner::runToHalt(uint64_t max_cycles)
{
    uint64_t start = sim.cycle();
    while (!halted()) {
        if (sim.cycle() - start >= max_cycles)
            GLIFS_FATAL("program did not halt within ", max_cycles,
                        " cycles");
        stepCycle();
    }
    return sim.cycle() - start;
}

void
SocRunner::run(uint64_t cycles)
{
    for (uint64_t i = 0; i < cycles; ++i)
        stepCycle();
}

uint16_t
SocRunner::reg(unsigned r) const
{
    return socRef.regValue(sim.state(), r);
}

uint16_t
SocRunner::pc() const
{
    return socRef.pcValue(sim.state());
}

uint16_t
SocRunner::ram(uint16_t addr) const
{
    return socRef.ramValue(sim.state(), addr);
}

uint16_t
SocRunner::portOut(unsigned port) const
{
    GLIFS_ASSERT(port >= 1 && port <= 4, "bad port ", port);
    uint16_t v = 0;
    const Bus &bus = socRef.probes().portOut[port - 1];
    for (unsigned b = 0; b < 16; ++b) {
        Signal s = sim.state().net(bus[b]);
        if (s.known() && s.asBool())
            v |= static_cast<uint16_t>(1u << b);
    }
    return v;
}

} // namespace glifs
