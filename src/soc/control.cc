/**
 * @file
 * SoC control: instruction decode, FSM next-state logic, and the final
 * connection of every architectural register.
 */

#include "base/logging.hh"
#include "soc/soc_internal.hh"

namespace glifs
{

void
socBuildDecode(SocCtx &ctx)
{
    RtlBuilder &rb = ctx.rb;

    // FSM state one-hots (from the 4-bit state register).
    ctx.st.resize(11);
    for (size_t s = 0; s < ctx.st.size(); ++s)
        ctx.st[s] = rb.busEqConst(ctx.stateReg.q, s);

    // During Fetch the instruction word is still on the ROM output;
    // afterwards it sits in IR.
    ctx.decodeWord = rb.busMux(ctx.inState(CoreState::Fetch), ctx.ir.q,
                               ctx.progRdata);

    const Bus &d = ctx.decodeWord;
    ctx.opc = RtlBuilder::slice(d, 12, 4);
    ctx.rdf = RtlBuilder::slice(d, 8, 4);
    ctx.rsf = RtlBuilder::slice(d, 4, 4);
    ctx.smode = RtlBuilder::slice(d, 2, 2);
    ctx.dmode = RtlBuilder::slice(d, 0, 2);
    ctx.jcond = RtlBuilder::slice(d, 9, 3);
    ctx.joff = RtlBuilder::slice(d, 0, 9);

    ctx.isTwoOp = rb.bNot(d[15]);
    ctx.isOneOp = rb.busEqConst(ctx.opc, 0x8);
    ctx.isJump = rb.busEqConst(ctx.opc, 0x9);
    ctx.isStk = rb.busEqConst(ctx.opc, 0xA);
    ctx.isMisc = rb.busEqConst(ctx.opc, 0xB);

    ctx.stkPush = rb.bAnd(ctx.isStk, rb.busEqConst(ctx.rsf, 0));
    ctx.stkPop = rb.bAnd(ctx.isStk, rb.busEqConst(ctx.rsf, 1));
    ctx.stkCall = rb.bAnd(ctx.isStk, rb.busEqConst(ctx.rsf, 2));
    ctx.stkRet = rb.bAnd(ctx.isStk, rb.busEqConst(ctx.rsf, 3));
    ctx.stkBr = rb.bAnd(ctx.isStk, rb.busEqConst(ctx.rsf, 4));
    ctx.miscHalt = rb.bAnd(ctx.isMisc, rb.busEqConst(ctx.rsf, 1));

    ctx.isMov = rb.busEqConst(ctx.opc, 0x0);
    ctx.isCmp = rb.busEqConst(ctx.opc, 0x3);

    ctx.smodeImm = rb.busEqConst(ctx.smode, 1);
    ctx.smodeInd = rb.busEqConst(ctx.smode, 2);
    ctx.smodeIdx = rb.busEqConst(ctx.smode, 3);
    ctx.dmodeReg = rb.busEqConst(ctx.dmode, 0);
    ctx.dmodeInd = rb.busEqConst(ctx.dmode, 2);
    ctx.dmodeIdx = rb.busEqConst(ctx.dmode, 3);

    ctx.needSrcImm =
        rb.bAnd(ctx.isTwoOp, rb.bOr(ctx.smodeImm, ctx.smodeIdx));
    ctx.needDstImm = rb.bAnd(ctx.isTwoOp, ctx.dmodeIdx);
    ctx.needRead =
        rb.bAnd(ctx.isTwoOp, rb.bOr(ctx.smodeInd, ctx.smodeIdx));
    ctx.needWrite =
        rb.bAnd(ctx.isTwoOp, rb.bOr(ctx.dmodeInd, ctx.dmodeIdx));
}

namespace
{

Bus
stateConst(RtlBuilder &rb, CoreState s)
{
    return rb.busConst(static_cast<uint64_t>(s), 4);
}

} // namespace

void
socBuildControl(SocCtx &ctx)
{
    RtlBuilder &rb = ctx.rb;

    const NetId st_f = ctx.inState(CoreState::Fetch);
    const NetId st_si = ctx.inState(CoreState::SrcImm);
    const NetId st_di = ctx.inState(CoreState::DstImm);
    const NetId st_rd = ctx.inState(CoreState::ReadMem);
    const NetId st_ex = ctx.inState(CoreState::Exec);
    const NetId st_pu = ctx.inState(CoreState::Push);
    const NetId st_po = ctx.inState(CoreState::Pop);
    const NetId st_rt = ctx.inState(CoreState::Ret);
    const NetId st_ca = ctx.inState(CoreState::Call);

    // ---- final load mux (RAM vs peripherals) --------------------------
    ctx.loaded = rb.busMux(ctx.ramSelRead, ctx.periphRdata, ctx.ramRdata);

    // ---- next-state logic ---------------------------------------------
    // Dispatch target after Fetch.
    Bus nf = stateConst(rb, CoreState::Exec);
    nf = rb.busMux(ctx.miscHalt, nf, stateConst(rb, CoreState::Halt));
    nf = rb.busMux(ctx.stkRet, nf, stateConst(rb, CoreState::Ret));
    nf = rb.busMux(ctx.stkPop, nf, stateConst(rb, CoreState::Pop));
    nf = rb.busMux(ctx.stkPush, nf, stateConst(rb, CoreState::Push));
    nf = rb.busMux(ctx.needRead, nf, stateConst(rb, CoreState::ReadMem));
    nf = rb.busMux(ctx.needDstImm, nf, stateConst(rb, CoreState::DstImm));
    nf = rb.busMux(rb.bOr(ctx.needSrcImm, ctx.stkCall), nf,
                   stateConst(rb, CoreState::SrcImm));

    // After SrcImm.
    Bus ns = stateConst(rb, CoreState::Exec);
    ns = rb.busMux(ctx.needRead, ns, stateConst(rb, CoreState::ReadMem));
    ns = rb.busMux(ctx.needDstImm, ns, stateConst(rb, CoreState::DstImm));
    ns = rb.busMux(ctx.stkCall, ns, stateConst(rb, CoreState::Call));

    // After DstImm.
    Bus nd = rb.busMux(ctx.needRead, stateConst(rb, CoreState::Exec),
                       stateConst(rb, CoreState::ReadMem));

    // After Exec.
    Bus ne = rb.busMux(ctx.needWrite, stateConst(rb, CoreState::Fetch),
                       stateConst(rb, CoreState::WriteMem));

    std::vector<Bus> next_by_state(16, stateConst(rb, CoreState::Fetch));
    next_by_state[static_cast<size_t>(CoreState::Fetch)] = nf;
    next_by_state[static_cast<size_t>(CoreState::SrcImm)] = ns;
    next_by_state[static_cast<size_t>(CoreState::DstImm)] = nd;
    next_by_state[static_cast<size_t>(CoreState::ReadMem)] =
        stateConst(rb, CoreState::Exec);
    next_by_state[static_cast<size_t>(CoreState::Exec)] = ne;
    next_by_state[static_cast<size_t>(CoreState::Halt)] =
        stateConst(rb, CoreState::Halt);
    Bus state_next = rtlMuxN(rb, ctx.stateReg.q, next_by_state);

    rtlConnectRegister(rb, ctx.stateReg, state_next, ctx.por, rb.one());

    // ---- PC -------------------------------------------------------------
    Bus pc_inc = rtlInc(rb, ctx.pc.q);
    Bus jump_target =
        rtlAdd(rb, ctx.pc.q, rb.sext(ctx.joff, iot430::kPcBits),
               rb.zero()).sum;

    Bus pc_d = pc_inc;
    const NetId exec_jump = rb.bAnd(st_ex, ctx.isJump);
    pc_d = rb.busMux(exec_jump, pc_d,
                     rb.busMux(ctx.jumpTaken, ctx.pc.q, jump_target));
    const NetId exec_br = rb.bAnd(st_ex, ctx.stkBr);
    // BR encodes its register in the rd field.
    pc_d = rb.busMux(exec_br, pc_d,
                     RtlBuilder::slice(ctx.rdVal, 0, iot430::kPcBits));
    pc_d = rb.busMux(st_ca, pc_d,
                     RtlBuilder::slice(ctx.tmpS.q, 0, iot430::kPcBits));
    pc_d = rb.busMux(st_rt, pc_d,
                     RtlBuilder::slice(ctx.loaded, 0, iot430::kPcBits));

    NetId pc_en = rb.bOr3(st_f, st_si, st_di);
    pc_en = rb.bOr3(pc_en, st_ca, st_rt);
    pc_en = rb.bOr3(pc_en, exec_jump, exec_br);
    rtlConnectRegister(rb, ctx.pc, pc_d, ctx.por, pc_en);

    // Latch the address of the instruction being fetched.
    rtlConnectRegister(rb, ctx.instrAddr, ctx.pc.q, ctx.por, st_f);

    // ---- simple pipeline registers ---------------------------------------
    rtlConnectRegister(rb, ctx.ir, ctx.progRdata, ctx.por, st_f);
    rtlConnectRegister(rb, ctx.tmpS, ctx.progRdata, ctx.por, st_si);
    rtlConnectRegister(rb, ctx.tmpD, ctx.progRdata, ctx.por, st_di);
    rtlConnectRegister(rb, ctx.mdr, ctx.loaded, ctx.por, st_rd);
    rtlConnectRegister(rb, ctx.res, ctx.aluRes, ctx.por, st_ex);
    rtlConnectRegister(rb, ctx.flags, ctx.flagsNext, ctx.por,
                       rb.bAnd(st_ex, ctx.flagWe));

    // ---- register file writes --------------------------------------------
    const NetId reg_dst_write = rb.bAnd(
        st_ex,
        rb.bOr(rb.bAnd3(ctx.isTwoOp, rb.bNot(ctx.isCmp), ctx.dmodeReg),
               rb.bAnd(ctx.isOneOp,
                       rb.bNot(rb.busEqConst(ctx.rsf, 10)))));  // TST
    const NetId reg_we = rb.bOr(reg_dst_write, st_po);
    Bus reg_wdata = rb.busMux(st_po, ctx.aluRes, ctx.loaded);

    Bus onehot = rtlDecoder(rb, ctx.rdf);
    for (size_t i = 0; i < ctx.gpr.size(); ++i) {
        NetId en = rb.bAnd(reg_we, onehot[i + 2]);
        rtlConnectRegister(rb, ctx.gpr[i], reg_wdata, ctx.por, en);
    }

    // ---- stack pointer ------------------------------------------------
    Bus sp_plus1 = rtlInc(rb, ctx.sp.q);
    const NetId sp_dec = rb.bOr(st_pu, st_ca);
    const NetId sp_inc = rb.bOr(st_po, st_rt);
    const NetId sp_reg_write = rb.bAnd(reg_we, onehot[1]);

    Bus sp_d = reg_wdata;
    sp_d = rb.busMux(sp_dec, sp_d, ctx.dWrite);  // push addr == SP-1
    sp_d = rb.busMux(sp_inc, sp_d, sp_plus1);
    NetId sp_en = rb.bOr3(sp_dec, sp_inc, sp_reg_write);
    rtlConnectRegister(rb, ctx.sp, sp_d, ctx.por, sp_en);

    // ---- GPIO output registers ------------------------------------------
    for (unsigned p = 0; p < 4; ++p) {
        rtlConnectRegister(rb, ctx.portOut[p], ctx.wrData, ctx.por,
                           ctx.portOutWe[p]);
    }
}

} // namespace glifs
