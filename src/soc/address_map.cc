#include "soc/address_map.hh"

#include "base/logging.hh"
#include "base/strutil.hh"

namespace glifs
{

AddrRegion
classifyAddr(uint16_t addr)
{
    using namespace iot430;
    if (addr <= kP4Out)
        return (addr % 2 == 0) ? AddrRegion::PortIn : AddrRegion::PortOut;
    if (addr == kWdtCtl)
        return AddrRegion::WdtCtl;
    if (addr >= kRamBase && addr <= kRamEnd)
        return AddrRegion::Ram;
    return AddrRegion::Unmapped;
}

std::optional<unsigned>
portIndex(uint16_t addr)
{
    if (addr <= iot430::kP4Out)
        return addr / 2 + 1;
    return std::nullopt;
}

std::string
addrName(uint16_t addr)
{
    switch (classifyAddr(addr)) {
      case AddrRegion::PortIn:
        return "P" + std::to_string(*portIndex(addr)) + "IN";
      case AddrRegion::PortOut:
        return "P" + std::to_string(*portIndex(addr)) + "OUT";
      case AddrRegion::WdtCtl:
        return "WDTCTL";
      case AddrRegion::Ram:
        return "RAM[" + hex16(addr) + "]";
      case AddrRegion::Unmapped:
        return "unmapped[" + hex16(addr) + "]";
    }
    return "?";
}

size_t
ramIndex(uint16_t addr)
{
    GLIFS_ASSERT(classifyAddr(addr) == AddrRegion::Ram,
                 "not a RAM address: ", hex16(addr));
    return addr - iot430::kRamBase;
}

} // namespace glifs
