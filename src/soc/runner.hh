/**
 * @file
 * Concrete-execution harness around the SoC: loads a program, drives
 * reset and port stimulus, and runs the gate-level simulation until
 * HALT. Used for functional tests, cycle counting and energy
 * measurement (the paper's "input-based gate-level simulations",
 * Section 7.3).
 */

#ifndef GLIFS_SOC_RUNNER_HH
#define GLIFS_SOC_RUNNER_HH

#include <functional>

#include "sim/simulator.hh"
#include "soc/soc.hh"

namespace glifs
{

/** Drives a Soc netlist concretely. */
class SocRunner
{
  public:
    /**
     * Per-cycle stimulus: returns the value of input port @p port
     * (1..4) at cycle @p cycle.
     */
    using Stimulus = std::function<uint16_t(unsigned port,
                                            uint64_t cycle)>;

    explicit SocRunner(const Soc &soc);

    Simulator &simulator() { return sim; }
    const Soc &soc() const { return socRef; }

    /** Load a program image into program memory. */
    void load(const ProgramImage &image);

    /** Fix a constant value on an input port. */
    void setPortInput(unsigned port, uint16_t value);

    /** Install a dynamic stimulus function (overrides fixed values). */
    void setStimulus(Stimulus stimulus) { stim = std::move(stimulus); }

    /** Pulse the external reset for one cycle. */
    void reset();

    /** Advance one clock cycle. */
    void stepCycle();

    /** Is the core sitting in the HALT state? */
    bool halted() const;

    /**
     * Run until HALT. Returns the number of cycles executed (not
     * counting reset).
     * @throws FatalError if @p max_cycles elapse first.
     */
    uint64_t runToHalt(uint64_t max_cycles = 2'000'000);

    /** Run exactly @p cycles cycles. */
    void run(uint64_t cycles);

    // Convenience state readers.
    uint16_t reg(unsigned r) const;
    uint16_t pc() const;
    uint16_t ram(uint16_t addr) const;
    uint16_t portOut(unsigned port) const;
    uint64_t cycles() const { return sim.cycle(); }

  private:
    const Soc &socRef;
    Simulator sim;
    uint16_t fixedIn[4] = {0, 0, 0, 0};
    Stimulus stim;

    void driveInputs(bool reset_asserted);
};

} // namespace glifs

#endif // GLIFS_SOC_RUNNER_HH
