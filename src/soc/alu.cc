/**
 * @file
 * SoC ALU: source-operand select, shared adder/subtractor, logic ops,
 * single-bit shifts, flag generation and jump-condition evaluation.
 */

#include "soc/soc_internal.hh"

namespace glifs
{

void
socBuildAlu(SocCtx &ctx)
{
    RtlBuilder &rb = ctx.rb;

    // ---- source operand -------------------------------------------------
    // smode: 0 register, 1 immediate (tmpS), 2/3 memory (MDR).
    ctx.srcB = rtlMuxN(rb, ctx.smode,
                       {ctx.rsVal, ctx.tmpS.q, ctx.mdr.q, ctx.mdr.q});

    const Bus &a = ctx.rdVal;
    const Bus &b = ctx.srcB;

    // ---- operation predicates -------------------------------------------
    const NetId op_add = rb.busEqConst(ctx.opc, 0x1);
    const NetId op_sub = rb.busEqConst(ctx.opc, 0x2);
    const NetId op_and = rb.busEqConst(ctx.opc, 0x4);
    const NetId op_bis = rb.busEqConst(ctx.opc, 0x5);
    const NetId op_xor = rb.busEqConst(ctx.opc, 0x6);
    const NetId op_bic = rb.busEqConst(ctx.opc, 0x7);

    const Bus &sub_field = ctx.rsf;  // one-op subop lives in [7:4]
    const NetId so_clr = rb.busEqConst(sub_field, 0);
    const NetId so_inc = rb.busEqConst(sub_field, 1);
    const NetId so_dec = rb.busEqConst(sub_field, 2);
    const NetId so_inv = rb.busEqConst(sub_field, 3);
    const NetId so_rra = rb.busEqConst(sub_field, 4);
    const NetId so_rrc = rb.busEqConst(sub_field, 5);
    const NetId so_rla = rb.busEqConst(sub_field, 6);
    const NetId so_rlc = rb.busEqConst(sub_field, 7);
    const NetId so_swpb = rb.busEqConst(sub_field, 8);
    const NetId so_sxt = rb.busEqConst(sub_field, 9);

    // ---- shared adder -----------------------------------------------------
    const NetId two_sub =
        rb.bAnd(ctx.isTwoOp, rb.bOr(op_sub, ctx.isCmp));
    const NetId one_sub = rb.bAnd(ctx.isOneOp, so_dec);
    const NetId do_sub = rb.bOr(two_sub, one_sub);
    Bus add_b = rb.busMux(ctx.isOneOp, b, rb.busConst(1, 16));
    AddResult adder = rtlAddSub(rb, a, add_b, do_sub);

    // ---- logic / shift candidates -----------------------------------------
    Bus and_res = rb.busAnd(a, b);
    Bus bis_res = rb.busOr(a, b);
    Bus xor_res = rb.busXor(a, b);
    Bus bic_res = rb.busAnd(a, rb.busNot(b));
    Bus inv_res = rb.busNot(a);

    const NetId carry = ctx.flags.q[2];
    // Right shift: fill with carry (RRC) or the sign bit (RRA).
    NetId shr_fill = rb.bMux(so_rrc, a.back(), carry);
    Bus shr_res(a.begin() + 1, a.end());
    shr_res.push_back(shr_fill);
    // Left shift: fill with carry (RLC) or 0 (RLA).
    NetId shl_fill = rb.bMux(so_rlc, rb.zero(), carry);
    Bus shl_res;
    shl_res.push_back(shl_fill);
    shl_res.insert(shl_res.end(), a.begin(), a.end() - 1);

    Bus swpb_res = rtlSwapBytes(rb, a);
    Bus sxt_res = rb.sext(RtlBuilder::slice(a, 0, 8), 16);

    // ---- two-operand result ------------------------------------------------
    Bus two_res = b;  // MOV
    two_res = rb.busMux(rb.bOr3(op_add, op_sub, ctx.isCmp), two_res,
                        adder.sum);
    two_res = rb.busMux(op_and, two_res, and_res);
    two_res = rb.busMux(op_bis, two_res, bis_res);
    two_res = rb.busMux(op_xor, two_res, xor_res);
    two_res = rb.busMux(op_bic, two_res, bic_res);

    // ---- one-operand result -------------------------------------------------
    Bus one_res = a;  // TST
    one_res = rb.busMux(so_clr, one_res, rb.busConst(0, 16));
    one_res = rb.busMux(rb.bOr(so_inc, so_dec), one_res, adder.sum);
    one_res = rb.busMux(so_inv, one_res, inv_res);
    one_res = rb.busMux(rb.bOr(so_rra, so_rrc), one_res, shr_res);
    one_res = rb.busMux(rb.bOr(so_rla, so_rlc), one_res, shl_res);
    one_res = rb.busMux(so_swpb, one_res, swpb_res);
    one_res = rb.busMux(so_sxt, one_res, sxt_res);

    ctx.aluRes = rb.busMux(ctx.isOneOp, two_res, one_res);

    // ---- flags -------------------------------------------------------------
    const NetId adder_op = rb.bOr3(
        rb.bAnd(ctx.isTwoOp, rb.bOr3(op_add, op_sub, ctx.isCmp)),
        rb.bAnd(ctx.isOneOp, rb.bOr(so_inc, so_dec)), rb.zero());
    const NetId shift_r = rb.bAnd(ctx.isOneOp, rb.bOr(so_rra, so_rrc));
    const NetId shift_l = rb.bAnd(ctx.isOneOp, rb.bOr(so_rla, so_rlc));

    NetId z = rb.busIsZero(ctx.aluRes);
    NetId n = ctx.aluRes.back();
    NetId c = rb.zero();
    c = rb.bMux(adder_op, c, adder.carryOut);
    c = rb.bMux(shift_r, c, a.front());
    c = rb.bMux(shift_l, c, a.back());
    NetId v = rb.bMux(adder_op, rb.zero(), adder.overflow);

    ctx.flagsNext = Bus{z, n, c, v};
    ctx.flagWe = rb.bOr(rb.bAnd(ctx.isTwoOp, rb.bNot(ctx.isMov)),
                        ctx.isOneOp);

    // ---- jump condition ------------------------------------------------------
    const NetId fz = ctx.flags.q[0];
    const NetId fn = ctx.flags.q[1];
    const NetId fc = ctx.flags.q[2];
    const NetId fv = ctx.flags.q[3];
    const NetId nxv = rb.bXor(fn, fv);
    std::vector<Bus> conds = {
        Bus{rb.one()},        // JMP
        Bus{fz},              // JZ
        Bus{rb.bNot(fz)},     // JNZ
        Bus{fc},              // JC
        Bus{rb.bNot(fc)},     // JNC
        Bus{fn},              // JN
        Bus{rb.bNot(nxv)},    // JGE
        Bus{nxv},             // JL
    };
    ctx.jumpTaken = rtlMuxN(rb, ctx.jcond, conds)[0];
}

} // namespace glifs
