/**
 * @file
 * GPIO ports: memory-mapped PxIN inputs and PxOUT output registers,
 * plus the peripheral read mux.
 *
 * Because port write enables are decoded from the effective store
 * address, a store through an unknown or tainted pointer taints the
 * output registers via the gate-level enable path -- the exact hazard
 * the paper's memory masking closes.
 */

#include "isa/isa.hh"
#include "soc/soc_internal.hh"

namespace glifs
{

void
socBuildGpio(SocCtx &ctx)
{
    RtlBuilder &rb = ctx.rb;

    static const uint16_t in_addr[4] = {iot430::kP1In, iot430::kP2In,
                                        iot430::kP3In, iot430::kP4In};
    static const uint16_t out_addr[4] = {iot430::kP1Out, iot430::kP2Out,
                                         iot430::kP3Out, iot430::kP4Out};

    // Write decodes.
    for (unsigned p = 0; p < 4; ++p) {
        NetId match = rb.busEqConst(ctx.dWrite, out_addr[p]);
        ctx.portOutWe[p] = rb.bAnd(ctx.memWriteState, match);
    }

    // Peripheral read mux over the full 16-bit effective read address.
    Bus r = rb.busConst(0, 16);
    for (unsigned p = 0; p < 4; ++p) {
        r = rb.busMux(rb.busEqConst(ctx.dRead, in_addr[p]), r,
                      ctx.portIn[p]);
        r = rb.busMux(rb.busEqConst(ctx.dRead, out_addr[p]), r,
                      ctx.portOut[p].q);
    }
    // Reading WDTCTL returns the remaining watchdog count (our
    // substrate's readback convention).
    r = rb.busMux(rb.busEqConst(ctx.dRead, iot430::kWdtCtl), r,
                  ctx.wdtCounter.q);
    ctx.periphRdata = r;
}

} // namespace glifs
