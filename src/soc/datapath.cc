/**
 * @file
 * SoC datapath elaboration: register shells, program ROM, register-file
 * read ports, effective-address logic and the data RAM.
 */

#include "base/logging.hh"
#include "soc/soc_internal.hh"

namespace glifs
{

void
socBuildShells(SocCtx &ctx)
{
    RtlBuilder &rb = ctx.rb;

    ctx.extRst = rb.netlist().addInput("ext_rst");
    for (unsigned p = 0; p < 4; ++p) {
        ctx.portIn[p] =
            rb.busInput("p" + std::to_string(p + 1) + "in", 16);
    }

    ctx.stateReg = rtlRegister(rb, "state", 4,
                               static_cast<uint64_t>(CoreState::Fetch));
    ctx.pc = rtlRegister(rb, "pc", iot430::kPcBits, 0);
    ctx.instrAddr = rtlRegister(rb, "iaddr", iot430::kPcBits, 0);
    ctx.ir = rtlRegister(rb, "ir", 16);
    ctx.tmpS = rtlRegister(rb, "tmps", 16);
    ctx.tmpD = rtlRegister(rb, "tmpd", 16);
    ctx.mdr = rtlRegister(rb, "mdr", 16);
    ctx.res = rtlRegister(rb, "res", 16);
    ctx.flags = rtlRegister(rb, "flags", 4);
    ctx.sp = rtlRegister(rb, "sp", 16);
    ctx.gpr.reserve(14);
    for (unsigned r = 2; r < iot430::kNumRegs; ++r)
        ctx.gpr.push_back(rtlRegister(rb, "r" + std::to_string(r), 16));

    for (unsigned p = 0; p < 4; ++p) {
        ctx.portOut[p] =
            rtlRegister(rb, "p" + std::to_string(p + 1) + "out", 16);
    }
    ctx.wdtCounter = rtlRegister(rb, "wdt_cnt", 16, 0);
    ctx.wdtHold = rtlRegister(rb, "wdt_hold", 1, 1);
}

void
socBuildRom(SocCtx &ctx)
{
    RtlBuilder &rb = ctx.rb;
    ctx.progRdata = rb.busNets("prog_rdata", 16);

    MemoryDecl rom;
    rom.name = "progmem";
    rom.width = 16;
    rom.words = ctx.cfg.progWords;
    rom.writable = false;
    rom.addrTaintsRead = false;  // see MemoryDecl::addrTaintsRead
    rom.readAddr = ctx.pc.q;
    rom.readData = ctx.progRdata;
    ctx.progMem = rb.netlist().addMemory(rom);
}

void
socBuildRegRead(SocCtx &ctx)
{
    RtlBuilder &rb = ctx.rb;

    std::vector<Bus> choices;
    choices.reserve(iot430::kNumRegs);
    choices.push_back(rb.busConst(0, 16));  // r0: constant zero
    choices.push_back(ctx.sp.q);            // r1: stack pointer
    for (const RegWord &r : ctx.gpr)
        choices.push_back(r.q);

    ctx.rsVal = rtlMuxN(rb, ctx.rsf, choices);
    ctx.rdVal = rtlMuxN(rb, ctx.rdf, choices);
}

void
socBuildAddressing(SocCtx &ctx)
{
    RtlBuilder &rb = ctx.rb;

    const NetId st_pop = ctx.inState(CoreState::Pop);
    const NetId st_ret = ctx.inState(CoreState::Ret);
    const NetId st_push = ctx.inState(CoreState::Push);
    const NetId st_call = ctx.inState(CoreState::Call);
    const NetId st_write = ctx.inState(CoreState::WriteMem);

    // ---- read address: rs + (idx ? tmpS : 0), or SP for pop/ret -----
    const NetId sp_read = rb.bOr(st_pop, st_ret);
    Bus read_base = rb.busMux(sp_read, ctx.rsVal, ctx.sp.q);
    Bus read_off = rb.busMux(ctx.smodeIdx, rb.busConst(0, 16), ctx.tmpS.q);
    read_off = rb.busMux(sp_read, read_off, rb.busConst(0, 16));
    ctx.dRead = rtlAdd(rb, read_base, read_off, rb.zero()).sum;

    // ---- write address: rd + (idx ? tmpD : 0), or SP-1 for push/call
    const NetId sp_write = rb.bOr(st_push, st_call);
    Bus write_base = rb.busMux(sp_write, ctx.rdVal, ctx.sp.q);
    Bus write_off =
        rb.busMux(ctx.dmodeIdx, rb.busConst(0, 16), ctx.tmpD.q);
    write_off =
        rb.busMux(sp_write, write_off, rb.busConst(0xFFFF, 16));
    ctx.dWrite = rtlAdd(rb, write_base, write_off, rb.zero()).sum;

    // ---- store data: RES, pushed register, or the return address ----
    Bus w = ctx.res.q;
    w = rb.busMux(st_push, w, ctx.rdVal);
    w = rb.busMux(st_call, w, rb.zext(ctx.pc.q, 16));
    ctx.wrData = w;

    ctx.memWriteState = rb.bOr3(st_write, st_push, st_call);

    // ---- RAM block ---------------------------------------------------
    // RAM occupies [kRamBase, kRamBase + ramWords): address bit 11 set,
    // bits 15:12 clear (for the default 2048-word RAM).
    ctx.ramSelRead =
        rb.busEqConst(RtlBuilder::slice(ctx.dRead, 11, 5), 0x01);
    ctx.ramSelWrite =
        rb.busEqConst(RtlBuilder::slice(ctx.dWrite, 11, 5), 0x01);
    ctx.ramWe = rb.bAnd(ctx.memWriteState, ctx.ramSelWrite);

    ctx.ramRdata = rb.busNets("ram_rdata", 16);
    MemoryDecl ram;
    ram.name = "datamem";
    ram.width = 16;
    ram.words = ctx.cfg.ramWords;
    ram.writable = true;
    ram.readAddr = RtlBuilder::slice(ctx.dRead, 0, 11);
    ram.readData = ctx.ramRdata;
    ram.writeAddr = RtlBuilder::slice(ctx.dWrite, 0, 11);
    ram.writeData = ctx.wrData;
    ram.writeEn = ctx.ramWe;
    ctx.dataMem = rb.netlist().addMemory(ram);
}

} // namespace glifs
