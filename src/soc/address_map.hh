/**
 * @file
 * Helpers over the IoT430 data-space address map.
 */

#ifndef GLIFS_SOC_ADDRESS_MAP_HH
#define GLIFS_SOC_ADDRESS_MAP_HH

#include <cstdint>
#include <optional>
#include <string>

#include "isa/isa.hh"

namespace glifs
{

/** Address-space region categories. */
enum class AddrRegion : uint8_t { PortIn, PortOut, WdtCtl, Ram, Unmapped };

/** Classify a data-space word address. */
AddrRegion classifyAddr(uint16_t addr);

/** For port addresses: the port number 1..4. */
std::optional<unsigned> portIndex(uint16_t addr);

/** Human-readable name for an address ("P1IN", "WDTCTL", "RAM[0x...]"). */
std::string addrName(uint16_t addr);

/** RAM word index of a data-space address (address must be RAM). */
size_t ramIndex(uint16_t addr);

} // namespace glifs

#endif // GLIFS_SOC_ADDRESS_MAP_HH
