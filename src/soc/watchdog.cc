/**
 * @file
 * Gate-level watchdog timer.
 *
 * A store to WDTCTL loads the down-counter with one of the four MSP430
 * watchdog intervals (64/512/8192/32768 cycles, selected by data bits
 * [1:0]) and sets/clears the hold bit from data bit 7. While not held,
 * the counter decrements every cycle; when it reaches 1 the watchdog
 * fires a power-on reset (POR) that resets every flip-flop in the SoC
 * -- including the PC, which restarts at the reset vector (address 0)
 * -- but leaves the memories intact (paper Section 5.2, footnote 5).
 * After POR the hold bit resets to 1, so the watchdog is disarmed until
 * untainted code rearms it.
 */

#include "isa/isa.hh"
#include "soc/soc_internal.hh"

namespace glifs
{

void
socBuildWatchdog(SocCtx &ctx)
{
    RtlBuilder &rb = ctx.rb;

    // Write decode: this net is what the analysis must prove untainted
    // (Section 5.2: "the write enable input for the control register is
    // verified to be untainted").
    ctx.wdtWe = rb.bAnd(ctx.memWriteState,
                        rb.busEqConst(ctx.dWrite, iot430::kWdtCtl));

    // Interval preset selected by the stored data's low bits.
    Bus sel = RtlBuilder::slice(ctx.wrData, 0, 2);
    Bus preset = rtlLutRom(
        rb, sel,
        {iot430::wdtIntervals[0], iot430::wdtIntervals[1],
         iot430::wdtIntervals[2], iot430::wdtIntervals[3]},
        16);

    ctx.wdtHoldQ = ctx.wdtHold.q[0];
    const NetId running = rb.bNot(ctx.wdtHoldQ);

    // Expiry fires during the counter==1 cycle so the POR edge lands
    // exactly when the count hits zero.
    ctx.wdtExpired =
        rb.bAnd(running, rb.busEqConst(ctx.wdtCounter.q, 1));
    ctx.por = rb.bOr(ctx.extRst, ctx.wdtExpired);

    // Counter: load on a WDTCTL write, otherwise count down when
    // running.
    Bus cnt_dec = rtlDec(rb, ctx.wdtCounter.q);
    Bus cnt_d = rb.busMux(ctx.wdtWe, cnt_dec, preset);
    NetId cnt_en = rb.bOr(ctx.wdtWe, running);
    rtlConnectRegister(rb, ctx.wdtCounter, cnt_d, ctx.por, cnt_en);

    // Hold bit: loaded from data bit 7 on a write; resets to 1.
    rtlConnectRegister(rb, ctx.wdtHold, Bus{ctx.wrData[7]}, ctx.por,
                       ctx.wdtWe);
}

} // namespace glifs
