#include "soc/soc.hh"

#include "base/logging.hh"
#include "netlist/validate.hh"
#include "soc/address_map.hh"
#include "soc/soc_internal.hh"

namespace glifs
{

void
socFillProbes(const SocCtx &ctx, SocProbes &prb)
{
    prb.extReset = ctx.extRst;
    for (unsigned p = 0; p < 4; ++p) {
        prb.portIn[p] = ctx.portIn[p];
        prb.portOut[p] = ctx.portOut[p].q;
    }

    prb.pcQ = ctx.pc.q;
    prb.pcFlops = ctx.pc.flops;
    prb.pcD.clear();
    for (GateId f : ctx.pc.flops)
        prb.pcD.push_back(ctx.rb.netlist().gate(f).in[0]);
    prb.stateQ = ctx.stateReg.q;
    prb.irQ = ctx.ir.q;
    prb.instrAddrQ = ctx.instrAddr.q;
    prb.spQ = ctx.sp.q;
    prb.flagsQ = ctx.flags.q;
    prb.gprQ.clear();
    for (const RegWord &r : ctx.gpr)
        prb.gprQ.push_back(r.q);
    prb.haltNet = ctx.inState(CoreState::Halt);
    prb.fetchNet = ctx.inState(CoreState::Fetch);

    prb.progMem = ctx.progMem;
    prb.dataMem = ctx.dataMem;
    prb.dmemReadAddr = ctx.dRead;
    prb.dmemWriteAddr = ctx.dWrite;
    prb.dmemWriteData = ctx.wrData;
    prb.memWriteState = ctx.memWriteState;
    prb.ramWriteEn = ctx.ramWe;

    prb.wdtWriteEn = ctx.wdtWe;
    prb.wdtCounterQ = ctx.wdtCounter.q;
    prb.wdtHoldQ = ctx.wdtHoldQ;
    prb.wdtExpired = ctx.wdtExpired;
    prb.porNet = ctx.por;
}

Soc::Soc(const SocConfig &config) : cfg(config)
{
    SocCtx ctx(nl, cfg);
    socBuildShells(ctx);
    socBuildRom(ctx);
    socBuildDecode(ctx);
    socBuildRegRead(ctx);
    socBuildAlu(ctx);
    socBuildAddressing(ctx);
    socBuildGpio(ctx);
    socBuildWatchdog(ctx);
    socBuildControl(ctx);
    socFillProbes(ctx, prb);

    // Primary outputs: the four GPIO output ports.
    for (unsigned p = 0; p < 4; ++p) {
        ctx.rb.busOutput(prb.portOut[p],
                         "p" + std::to_string(p + 1) + "out");
    }

    validateOrDie(nl);
}

Soc::~Soc() = default;

void
Soc::loadProgram(SignalState &state, const ProgramImage &image,
                 bool taint_code, uint16_t taint_lo,
                 uint16_t taint_hi) const
{
    GLIFS_ASSERT(image.words.size() <= cfg.progWords,
                 "program image larger than program memory");
    for (size_t w = 0; w < cfg.progWords; ++w) {
        uint16_t val = w < image.words.size() ? image.words[w] : 0;
        bool taint = taint_code && w >= taint_lo && w <= taint_hi;
        state.setMemWord(nl, prb.progMem, w, val, taint);
    }
}

namespace
{

uint16_t
busValue(const SignalState &state, const Bus &bus)
{
    uint16_t v = 0;
    for (size_t i = 0; i < bus.size(); ++i) {
        Signal s = state.net(bus[i]);
        if (s.known() && s.asBool())
            v |= static_cast<uint16_t>(1u << i);
    }
    return v;
}

} // namespace

uint16_t
Soc::regValue(const SignalState &state, unsigned reg) const
{
    GLIFS_ASSERT(reg < iot430::kNumRegs, "bad register ", reg);
    if (reg == 0)
        return 0;
    if (reg == 1)
        return busValue(state, prb.spQ);
    return busValue(state, prb.gprQ[reg - 2]);
}

uint16_t
Soc::pcValue(const SignalState &state) const
{
    return busValue(state, prb.pcQ);
}

uint16_t
Soc::ramValue(const SignalState &state, uint16_t addr) const
{
    return static_cast<uint16_t>(
        state.memWordValue(nl, prb.dataMem, ramIndex(addr)));
}

} // namespace glifs
