/**
 * @file
 * Word-level RTL construction over a gate netlist.
 *
 * A Bus is an ordered (LSB-first) list of nets. RtlBuilder elaborates
 * word-level operators into primitive gates so the whole IoT430 SoC ends
 * up as a genuine gate-level netlist.
 */

#ifndef GLIFS_RTL_BUS_HH
#define GLIFS_RTL_BUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/builder.hh"

namespace glifs
{

/** An LSB-first bundle of nets. */
using Bus = std::vector<NetId>;

/**
 * Word-level gate elaborator.
 */
class RtlBuilder : public NetBuilder
{
  public:
    explicit RtlBuilder(Netlist &netlist) : NetBuilder(netlist) {}

    /** A bus of fresh primary inputs named name[i]. */
    Bus busInput(const std::string &name, unsigned width);

    /** A bus of fresh unconnected nets (for memory read data etc.). */
    Bus busNets(const std::string &name, unsigned width);

    /** A constant bus. */
    Bus busConst(uint64_t value, unsigned width);

    /** Bitwise operators. */
    Bus busNot(const Bus &a);
    Bus busAnd(const Bus &a, const Bus &b);
    Bus busOr(const Bus &a, const Bus &b);
    Bus busXor(const Bus &a, const Bus &b);

    /** Per-bit 2:1 mux: out = sel ? b : a. */
    Bus busMux(NetId sel, const Bus &a, const Bus &b);

    /** AND every bit with one enable net. */
    Bus busGate(NetId en, const Bus &a);

    /** Equality / zero / reduction predicates. */
    NetId busEq(const Bus &a, const Bus &b);
    NetId busEqConst(const Bus &a, uint64_t value);
    NetId busIsZero(const Bus &a);
    NetId busNonZero(const Bus &a);

    /** Slice [lo, lo+n) of a bus. */
    static Bus slice(const Bus &a, unsigned lo, unsigned n);

    /** Concatenate (lo bits first). */
    static Bus concat(const Bus &lo, const Bus &hi);

    /** Zero-extend / truncate to width. */
    Bus zext(const Bus &a, unsigned width);

    /** Sign-extend to width. */
    Bus sext(const Bus &a, unsigned width);

    /** Mark every bit as primary output named name[i]. */
    void busOutput(const Bus &a, const std::string &name);

  private:
    void checkSameWidth(const Bus &a, const Bus &b) const;
};

} // namespace glifs

#endif // GLIFS_RTL_BUS_HH
