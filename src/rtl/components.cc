#include "rtl/components.hh"

#include "base/bitutil.hh"
#include "base/logging.hh"

namespace glifs
{

RegWord
rtlRegister(RtlBuilder &rb, const std::string &name, unsigned width,
            uint64_t rst_val, bool por_reset)
{
    RegWord reg;
    reg.q.reserve(width);
    reg.flops.reserve(width);
    for (unsigned i = 0; i < width; ++i) {
        DffHandle h = rb.netlist().addDff(
            name + "[" + std::to_string(i) + "]", bit(rst_val, i),
            por_reset);
        reg.q.push_back(h.q);
        reg.flops.push_back(h.gate);
    }
    return reg;
}

void
rtlConnectRegister(RtlBuilder &rb, const RegWord &reg, const Bus &d,
                   NetId rst, NetId en)
{
    GLIFS_ASSERT(d.size() == reg.q.size(), "register width mismatch");
    for (size_t i = 0; i < reg.flops.size(); ++i)
        rb.netlist().connectDff(reg.flops[i], d[i], rst, en);
}

Bus
rtlDecoder(RtlBuilder &rb, const Bus &a)
{
    const size_t n = 1ULL << a.size();
    Bus out;
    out.reserve(n);
    for (size_t v = 0; v < n; ++v)
        out.push_back(rb.busEqConst(a, v));
    return out;
}

Bus
rtlMuxN(RtlBuilder &rb, const Bus &sel, const std::vector<Bus> &choices)
{
    GLIFS_ASSERT(choices.size() == (1ULL << sel.size()),
                 "rtlMuxN needs 2^sel choices, got ", choices.size());
    for (const Bus &c : choices) {
        GLIFS_ASSERT(c.size() == choices[0].size(),
                     "rtlMuxN choice width mismatch");
    }

    // Build the tree from the LSB of sel upward.
    std::vector<Bus> level = choices;
    for (size_t s = 0; s < sel.size(); ++s) {
        std::vector<Bus> next;
        next.reserve(level.size() / 2);
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(rb.busMux(sel[s], level[i], level[i + 1]));
        level.swap(next);
    }
    GLIFS_ASSERT(level.size() == 1, "mux tree reduction error");
    return level[0];
}

ShiftResult
rtlShr1(RtlBuilder &rb, const Bus &a, bool arithmetic, NetId carry_in)
{
    GLIFS_ASSERT(!a.empty(), "shift of empty bus");
    ShiftResult res;
    res.shiftedOut = a[0];
    res.out.assign(a.begin() + 1, a.end());
    NetId fill;
    if (carry_in != kNoNet)
        fill = carry_in;
    else if (arithmetic)
        fill = a.back();
    else
        fill = rb.zero();
    res.out.push_back(fill);
    return res;
}

ShiftResult
rtlShl1(RtlBuilder &rb, const Bus &a, NetId carry_in)
{
    GLIFS_ASSERT(!a.empty(), "shift of empty bus");
    ShiftResult res;
    res.shiftedOut = a.back();
    res.out.push_back(carry_in != kNoNet ? carry_in : rb.zero());
    res.out.insert(res.out.end(), a.begin(), a.end() - 1);
    return res;
}

Bus
rtlSwapBytes(RtlBuilder &rb, const Bus &a)
{
    GLIFS_ASSERT(a.size() == 16, "rtlSwapBytes wants 16 bits");
    (void)rb;
    Bus out(a.begin() + 8, a.end());
    out.insert(out.end(), a.begin(), a.begin() + 8);
    return out;
}

} // namespace glifs
