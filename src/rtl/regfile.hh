/**
 * @file
 * A register file elaborated to DFFs with one write port and two
 * combinational read ports.
 */

#ifndef GLIFS_RTL_REGFILE_HH
#define GLIFS_RTL_REGFILE_HH

#include "rtl/components.hh"

namespace glifs
{

/** Handle to an elaborated register file. */
struct RegFile
{
    std::vector<RegWord> regs;   ///< one register per architectural reg
    unsigned width = 0;
    unsigned addrBits = 0;
};

/**
 * Create @p count registers of @p width bits named name<r>[i].
 * Registers reset to 0 and are POR-reset (the watchdog reset clears
 * them, as the paper's proof requires).
 */
RegFile rtlRegFile(RtlBuilder &rb, const std::string &name, unsigned count,
                   unsigned width);

/**
 * Wire the shared write port: on a rising edge with @p we asserted,
 * regs[waddr] <= wdata. @p rst resets every register.
 */
void rtlRegFileWrite(RtlBuilder &rb, RegFile &rf, const Bus &waddr,
                     const Bus &wdata, NetId we, NetId rst);

/** Combinational read port: returns regs[raddr]. */
Bus rtlRegFileRead(RtlBuilder &rb, const RegFile &rf, const Bus &raddr);

} // namespace glifs

#endif // GLIFS_RTL_REGFILE_HH
