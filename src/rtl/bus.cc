#include "rtl/bus.hh"

#include "base/bitutil.hh"
#include "base/logging.hh"

namespace glifs
{

void
RtlBuilder::checkSameWidth(const Bus &a, const Bus &b) const
{
    GLIFS_ASSERT(a.size() == b.size(), "bus width mismatch: ", a.size(),
                 " vs ", b.size());
}

Bus
RtlBuilder::busInput(const std::string &name, unsigned width)
{
    Bus out;
    out.reserve(width);
    for (unsigned i = 0; i < width; ++i)
        out.push_back(netlist().addInput(name + "[" + std::to_string(i) +
                                         "]"));
    return out;
}

Bus
RtlBuilder::busNets(const std::string &name, unsigned width)
{
    Bus out;
    out.reserve(width);
    for (unsigned i = 0; i < width; ++i)
        out.push_back(netlist().addNet(name + "[" + std::to_string(i) +
                                       "]"));
    return out;
}

Bus
RtlBuilder::busConst(uint64_t value, unsigned width)
{
    Bus out;
    out.reserve(width);
    for (unsigned i = 0; i < width; ++i)
        out.push_back(bit(value, i) ? one() : zero());
    return out;
}

Bus
RtlBuilder::busNot(const Bus &a)
{
    Bus out;
    out.reserve(a.size());
    for (NetId n : a)
        out.push_back(bNot(n));
    return out;
}

Bus
RtlBuilder::busAnd(const Bus &a, const Bus &b)
{
    checkSameWidth(a, b);
    Bus out;
    out.reserve(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out.push_back(bAnd(a[i], b[i]));
    return out;
}

Bus
RtlBuilder::busOr(const Bus &a, const Bus &b)
{
    checkSameWidth(a, b);
    Bus out;
    out.reserve(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out.push_back(bOr(a[i], b[i]));
    return out;
}

Bus
RtlBuilder::busXor(const Bus &a, const Bus &b)
{
    checkSameWidth(a, b);
    Bus out;
    out.reserve(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out.push_back(bXor(a[i], b[i]));
    return out;
}

Bus
RtlBuilder::busMux(NetId sel, const Bus &a, const Bus &b)
{
    checkSameWidth(a, b);
    Bus out;
    out.reserve(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out.push_back(bMux(sel, a[i], b[i]));
    return out;
}

Bus
RtlBuilder::busGate(NetId en, const Bus &a)
{
    Bus out;
    out.reserve(a.size());
    for (NetId n : a)
        out.push_back(bAnd(en, n));
    return out;
}

NetId
RtlBuilder::busEq(const Bus &a, const Bus &b)
{
    checkSameWidth(a, b);
    std::vector<NetId> eqs;
    eqs.reserve(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        eqs.push_back(bXnor(a[i], b[i]));
    return reduceAnd(eqs);
}

NetId
RtlBuilder::busEqConst(const Bus &a, uint64_t value)
{
    return matchesConst(std::span<const NetId>(a.data(), a.size()), value);
}

NetId
RtlBuilder::busIsZero(const Bus &a)
{
    return isZero(std::span<const NetId>(a.data(), a.size()));
}

NetId
RtlBuilder::busNonZero(const Bus &a)
{
    return reduceOr(std::span<const NetId>(a.data(), a.size()));
}

Bus
RtlBuilder::slice(const Bus &a, unsigned lo, unsigned n)
{
    GLIFS_ASSERT(lo + n <= a.size(), "bad bus slice");
    return Bus(a.begin() + lo, a.begin() + lo + n);
}

Bus
RtlBuilder::concat(const Bus &lo, const Bus &hi)
{
    Bus out(lo);
    out.insert(out.end(), hi.begin(), hi.end());
    return out;
}

Bus
RtlBuilder::zext(const Bus &a, unsigned width)
{
    Bus out(a);
    if (out.size() > width)
        out.resize(width);
    while (out.size() < width)
        out.push_back(zero());
    return out;
}

Bus
RtlBuilder::sext(const Bus &a, unsigned width)
{
    GLIFS_ASSERT(!a.empty(), "sext of empty bus");
    Bus out(a);
    if (out.size() > width)
        out.resize(width);
    while (out.size() < width)
        out.push_back(a.back());
    return out;
}

void
RtlBuilder::busOutput(const Bus &a, const std::string &name)
{
    for (size_t i = 0; i < a.size(); ++i)
        netlist().markOutput(a[i], name + "[" + std::to_string(i) + "]");
}

} // namespace glifs
