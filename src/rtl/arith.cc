#include "rtl/arith.hh"

#include "base/logging.hh"

namespace glifs
{

AddResult
rtlAdd(RtlBuilder &rb, const Bus &a, const Bus &b, NetId cin)
{
    GLIFS_ASSERT(a.size() == b.size() && !a.empty(), "rtlAdd widths");
    AddResult res;
    res.sum.reserve(a.size());
    NetId carry = cin;
    NetId carry_prev = cin;
    for (size_t i = 0; i < a.size(); ++i) {
        NetId axb = rb.bXor(a[i], b[i]);
        res.sum.push_back(rb.bXor(axb, carry));
        carry_prev = carry;
        // carry-out = ab + c(a^b)
        carry = rb.bOr(rb.bAnd(a[i], b[i]), rb.bAnd(carry, axb));
    }
    res.carryOut = carry;
    // Signed overflow: carry into MSB != carry out of MSB.
    res.overflow = rb.bXor(carry, carry_prev);
    return res;
}

AddResult
rtlSub(RtlBuilder &rb, const Bus &a, const Bus &b)
{
    return rtlAdd(rb, a, rb.busNot(b), rb.one());
}

AddResult
rtlAddSub(RtlBuilder &rb, const Bus &a, const Bus &b, NetId sub)
{
    Bus b_eff;
    b_eff.reserve(b.size());
    for (NetId n : b)
        b_eff.push_back(rb.bXor(n, sub));
    return rtlAdd(rb, a, b_eff, sub);
}

Bus
rtlInc(RtlBuilder &rb, const Bus &a)
{
    return rtlAdd(rb, a, rb.busConst(0, static_cast<unsigned>(a.size())),
                  rb.one()).sum;
}

Bus
rtlDec(RtlBuilder &rb, const Bus &a)
{
    // a - 1 == a + ~0 + 0
    return rtlAdd(rb, a,
                  rb.busConst(~0ULL, static_cast<unsigned>(a.size())),
                  rb.zero()).sum;
}

NetId
rtlLtU(RtlBuilder &rb, const Bus &a, const Bus &b)
{
    // a < b unsigned <=> borrow out of a - b <=> NOT carryOut.
    return rb.bNot(rtlSub(rb, a, b).carryOut);
}

NetId
rtlLtS(RtlBuilder &rb, const Bus &a, const Bus &b)
{
    AddResult d = rtlSub(rb, a, b);
    // a < b signed <=> N xor V of (a - b).
    return rb.bXor(d.sum.back(), d.overflow);
}

} // namespace glifs
