#include "rtl/regfile.hh"

#include "base/bitutil.hh"
#include "base/logging.hh"

namespace glifs
{

RegFile
rtlRegFile(RtlBuilder &rb, const std::string &name, unsigned count,
           unsigned width)
{
    GLIFS_ASSERT(count >= 2 && (count & (count - 1)) == 0,
                 "register count must be a power of two");
    RegFile rf;
    rf.width = width;
    rf.addrBits = bitsFor(count);
    rf.regs.reserve(count);
    for (unsigned r = 0; r < count; ++r) {
        rf.regs.push_back(
            rtlRegister(rb, name + std::to_string(r), width));
    }
    return rf;
}

void
rtlRegFileWrite(RtlBuilder &rb, RegFile &rf, const Bus &waddr,
                const Bus &wdata, NetId we, NetId rst)
{
    GLIFS_ASSERT(waddr.size() == rf.addrBits, "regfile waddr width");
    GLIFS_ASSERT(wdata.size() == rf.width, "regfile wdata width");
    Bus onehot = rtlDecoder(rb, waddr);
    for (size_t r = 0; r < rf.regs.size(); ++r) {
        NetId en = rb.bAnd(we, onehot[r]);
        rtlConnectRegister(rb, rf.regs[r], wdata, rst, en);
    }
}

Bus
rtlRegFileRead(RtlBuilder &rb, const RegFile &rf, const Bus &raddr)
{
    GLIFS_ASSERT(raddr.size() == rf.addrBits, "regfile raddr width");
    std::vector<Bus> choices;
    choices.reserve(rf.regs.size());
    for (const RegWord &r : rf.regs)
        choices.push_back(r.q);
    return rtlMuxN(rb, raddr, choices);
}

} // namespace glifs
