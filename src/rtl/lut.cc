#include "rtl/lut.hh"

#include "base/bitutil.hh"
#include "base/logging.hh"
#include "rtl/components.hh"

namespace glifs
{

Bus
rtlLutRom(RtlBuilder &rb, const Bus &sel,
          const std::vector<uint64_t> &table, unsigned width)
{
    GLIFS_ASSERT(table.size() == (1ULL << sel.size()),
                 "rtlLutRom table size ", table.size(), " for ",
                 sel.size(), " select bits");
    std::vector<Bus> choices;
    choices.reserve(table.size());
    for (uint64_t v : table)
        choices.push_back(rb.busConst(v, width));
    return rtlMuxN(rb, sel, choices);
}

NetId
rtlLutBit(RtlBuilder &rb, const Bus &sel, uint64_t truth)
{
    GLIFS_ASSERT(sel.size() <= 6, "rtlLutBit select too wide");
    std::vector<Bus> choices;
    const size_t n = 1ULL << sel.size();
    choices.reserve(n);
    for (size_t i = 0; i < n; ++i)
        choices.push_back(Bus{bit(truth, static_cast<unsigned>(i))
                                  ? rb.one()
                                  : rb.zero()});
    return rtlMuxN(rb, sel, choices)[0];
}

} // namespace glifs
