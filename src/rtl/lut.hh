/**
 * @file
 * LUT/ROM synthesis: combinational lookup tables built from mux trees.
 * The IoT430 control unit is a microcode-style ROM synthesized with
 * these helpers, so control is genuinely made of gates.
 */

#ifndef GLIFS_RTL_LUT_HH
#define GLIFS_RTL_LUT_HH

#include "rtl/bus.hh"

namespace glifs
{

/**
 * Synthesize a combinational ROM: out = table[sel], where table has
 * exactly 1 << sel.size() entries of @p width bits each.
 */
Bus rtlLutRom(RtlBuilder &rb, const Bus &sel,
              const std::vector<uint64_t> &table, unsigned width);

/**
 * Synthesize a single-output boolean function given its truth table
 * (bit i of @p truth is the output for sel == i).
 */
NetId rtlLutBit(RtlBuilder &rb, const Bus &sel, uint64_t truth);

} // namespace glifs

#endif // GLIFS_RTL_LUT_HH
