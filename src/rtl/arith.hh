/**
 * @file
 * Arithmetic components elaborated to gates: ripple-carry adders,
 * subtractors, incrementers and comparators.
 */

#ifndef GLIFS_RTL_ARITH_HH
#define GLIFS_RTL_ARITH_HH

#include "rtl/bus.hh"

namespace glifs
{

/** Sum and carry-out of an adder. */
struct AddResult
{
    Bus sum;
    NetId carryOut = kNoNet;
    NetId overflow = kNoNet;  ///< signed overflow
};

/** a + b + cin (ripple-carry). */
AddResult rtlAdd(RtlBuilder &rb, const Bus &a, const Bus &b, NetId cin);

/** a - b (two's complement); carryOut is the NOT-borrow flag. */
AddResult rtlSub(RtlBuilder &rb, const Bus &a, const Bus &b);

/**
 * sub ? a - b : a + b, sharing one adder (the ALU uses this).
 * carryOut follows the MSP430 convention (carry for add, not-borrow for
 * subtract).
 */
AddResult rtlAddSub(RtlBuilder &rb, const Bus &a, const Bus &b, NetId sub);

/** a + 1. */
Bus rtlInc(RtlBuilder &rb, const Bus &a);

/** a - 1. */
Bus rtlDec(RtlBuilder &rb, const Bus &a);

/** Unsigned a < b. */
NetId rtlLtU(RtlBuilder &rb, const Bus &a, const Bus &b);

/** Signed a < b. */
NetId rtlLtS(RtlBuilder &rb, const Bus &a, const Bus &b);

} // namespace glifs

#endif // GLIFS_RTL_ARITH_HH
