/**
 * @file
 * Structural components: registers, counters, decoders, wide muxes and
 * single-bit shifters.
 */

#ifndef GLIFS_RTL_COMPONENTS_HH
#define GLIFS_RTL_COMPONENTS_HH

#include "rtl/bus.hh"

namespace glifs
{

/**
 * A word register made of DFFs whose d/rst/en inputs can be connected
 * after creation (allowing feedback).
 */
struct RegWord
{
    Bus q;                         ///< flip-flop outputs
    std::vector<GateId> flops;     ///< underlying DFF gates

    unsigned width() const { return static_cast<unsigned>(q.size()); }
};

/**
 * Create a register of @p width flip-flops named name[i].
 * @param rst_val value loaded on reset
 * @param por_reset whether the watchdog power-on reset also resets it
 */
RegWord rtlRegister(RtlBuilder &rb, const std::string &name,
                    unsigned width, uint64_t rst_val = 0,
                    bool por_reset = true);

/** Connect all flops of a register to d / rst / en. */
void rtlConnectRegister(RtlBuilder &rb, const RegWord &reg, const Bus &d,
                        NetId rst, NetId en);

/** One-hot decoder: out[i] = (a == i), for 2^a.size() outputs. */
Bus rtlDecoder(RtlBuilder &rb, const Bus &a);

/**
 * N-way word mux: out = choices[sel]. The number of choices must be
 * exactly 1 << sel.size(); all choices must share a width.
 */
Bus rtlMuxN(RtlBuilder &rb, const Bus &sel,
            const std::vector<Bus> &choices);

/** Logical shift right by one; returns shifted bus and the dropped bit. */
struct ShiftResult
{
    Bus out;
    NetId shiftedOut = kNoNet;
};

/** Logical/arithmetic shift right by 1 (arith replicates sign). */
ShiftResult rtlShr1(RtlBuilder &rb, const Bus &a, bool arithmetic,
                    NetId carry_in = kNoNet);

/** Shift left by 1 (LSB filled with carry_in or 0). */
ShiftResult rtlShl1(RtlBuilder &rb, const Bus &a, NetId carry_in = kNoNet);

/** Byte swap of a 16-bit bus. */
Bus rtlSwapBytes(RtlBuilder &rb, const Bus &a);

} // namespace glifs

#endif // GLIFS_RTL_COMPONENTS_HH
