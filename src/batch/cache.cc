#include "batch/cache.hh"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "base/hash.hh"
#include "base/logging.hh"
#include "base/stats.hh"

namespace glifs::batch
{

namespace
{

/** Entries dropped because a store step failed (lazily registered). */
stats::Scalar &
publishFailures()
{
    static stats::Scalar s{
        "batch.cache_publish_failures",
        "cache entries dropped because writing or publishing failed"};
    return s;
}

} // namespace

std::string
cacheKey(const JobSpec &job, const RetryConfig &retry,
         const std::string &toolVersion)
{
    Sha256 h;
    h.section("tool", toolVersion);
    h.section("firmware", job.firmwareText);
    h.section("policy", job.policyText);
    h.section("budgets", job.budgets.canonical());
    h.section("retry", retry.canonical());
    return h.hexDigest();
}

ResultCache::ResultCache(std::string dir, bool enabled)
    : cacheDir(std::move(dir)), isEnabled(enabled)
{
    if (isEnabled)
        sweepStaleTmp();
}

void
ResultCache::sweepStaleTmp() const
{
    // Leftover `<key>.json.tmp.<pid>` files are the debris of a writer
    // that died between open and rename; they are never read (lookup
    // only opens `<key>.json`) but accumulate forever. A concurrent
    // *live* writer whose temp file we remove just fails its rename
    // and drops that one entry -- stores are best-effort by design.
    DIR *d = ::opendir(cacheDir.c_str());
    if (!d)
        return; // not created yet (or unreadable): nothing to sweep
    while (const dirent *ent = ::readdir(d)) {
        if (std::strstr(ent->d_name, ".tmp.") == nullptr)
            continue;
        const std::string path = cacheDir + "/" + ent->d_name;
        if (std::remove(path.c_str()) == 0)
            GLIFS_WARN("swept stale cache temp file ", path);
    }
    ::closedir(d);
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return cacheDir + "/" + key + ".json";
}

std::optional<std::string>
ResultCache::lookup(const std::string &key) const
{
    if (!isEnabled)
        return std::nullopt;
    std::ifstream in(entryPath(key));
    if (!in)
        return std::nullopt;
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

void
ResultCache::store(const std::string &key,
                   const std::string &reportJson)
{
    // The cache is an accelerator: a verdict that cannot be cached is
    // still a verdict, so every failure path below warns, counts
    // (batch.cache_publish_failures) and returns instead of aborting
    // the batch that just spent its budget computing the result.
    if (!isEnabled)
        return;
    if (::mkdir(cacheDir.c_str(), 0755) != 0 && errno != EEXIST) {
        GLIFS_WARN("cannot create cache directory ", cacheDir,
                   ": ", std::strerror(errno),
                   "; dropping cache entry");
        publishFailures().inc();
        return;
    }

    // Temp file + rename: a reader (or a concurrent batch) sees
    // either no entry or a complete one, never a partial write.
    std::string finalPath = entryPath(key);
    std::string tmpPath =
        finalPath + ".tmp." + std::to_string(::getpid());
    std::ofstream out(tmpPath);
    if (!out) {
        GLIFS_WARN("cannot write cache entry ", tmpPath,
                   "; dropping cache entry");
        publishFailures().inc();
        return;
    }
    out << reportJson;
    out.close();
    if (!out || std::rename(tmpPath.c_str(), finalPath.c_str()) != 0) {
        std::remove(tmpPath.c_str());
        GLIFS_WARN("cannot publish cache entry ", finalPath,
                   "; dropping cache entry");
        publishFailures().inc();
    }
}

} // namespace glifs::batch
