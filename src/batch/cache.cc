#include "batch/cache.hh"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <utility>

#include "base/faultfs.hh"
#include "base/hash.hh"
#include "base/logging.hh"
#include "base/stats.hh"
#include "base/strutil.hh"

namespace glifs::batch
{

namespace
{

/** Entry-file header magic; the rest of the line is `<sha256> <size>`.
 *  Entries written before integrity checksums (no header) read as
 *  misses: re-running a job is always safe, trusting bytes is not. */
constexpr const char *kEntryMagic = "glifs-cache-v2";

struct CacheStats
{
    stats::Scalar publishFailures{
        "batch.cache_publish_failures",
        "cache entries dropped because writing or publishing failed"};
    stats::Scalar integrityMisses{
        "batch.cache_integrity_misses",
        "cache lookups that found a corrupt, truncated or "
        "foreign-format entry (evicted, served as a miss)"};
    stats::Scalar tmpSwept{
        "batch.cache_tmp_swept",
        "stale temp files removed by the open-time sweep"};
};

CacheStats &
cacheStats()
{
    static CacheStats s;
    return s;
}

} // namespace

std::string
cacheKey(const JobSpec &job, const RetryConfig &retry,
         const std::string &toolVersion)
{
    Sha256 h;
    h.section("tool", toolVersion);
    h.section("firmware", job.firmwareText);
    h.section("policy", job.policyText);
    h.section("budgets", job.budgets.canonical());
    h.section("retry", retry.canonical());
    return h.hexDigest();
}

ResultCache::ResultCache(std::string dir, bool enabled)
    : cacheDir(std::move(dir)), isEnabled(enabled)
{
    if (isEnabled)
        sweepStaleTmp();
}

void
ResultCache::sweepStaleTmp() const
{
    // Leftover `<key>.json.tmp.<pid>` files are the debris of a writer
    // that died between open and rename; they are never read (lookup
    // only opens `<key>.json`) but accumulate forever. A *live*
    // concurrent writer also has a temp file open right now, so only
    // temp files old enough that no live writer can plausibly own
    // them (mtime older than kStaleTmpSeconds) are removed — sweeping
    // a live writer's file would silently drop its entry.
    DIR *d = ::opendir(cacheDir.c_str());
    if (!d)
        return; // not created yet (or unreadable): nothing to sweep
    const std::time_t now = std::time(nullptr);
    while (const dirent *ent = ::readdir(d)) {
        if (std::strstr(ent->d_name, ".tmp.") == nullptr)
            continue;
        const std::string path = cacheDir + "/" + ent->d_name;
        struct stat st;
        if (::stat(path.c_str(), &st) != 0)
            continue;
        if (now - st.st_mtime < kStaleTmpSeconds)
            continue; // plausibly a live concurrent writer
        if (std::remove(path.c_str()) == 0) {
            GLIFS_WARN("swept stale cache temp file ", path);
            ++cacheStats().tmpSwept;
        }
    }
    ::closedir(d);
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return cacheDir + "/" + key + ".json";
}

std::optional<std::string>
ResultCache::lookup(const std::string &key) const
{
    if (!isEnabled)
        return std::nullopt;
    const std::string path = entryPath(key);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream oss;
    oss << in.rdbuf();
    const std::string raw = oss.str();

    // Verify the integrity header: `glifs-cache-v2 <sha256> <size>\n`
    // followed by exactly <size> payload bytes hashing to <sha256>.
    // Anything else — truncation, bit flips, a half-written or
    // pre-checksum entry — is evicted and served as a clean miss:
    // the worst case is recomputing one verdict.
    auto corrupt = [&](const char *why) -> std::optional<std::string> {
        GLIFS_WARN("cache entry ", path, " failed integrity check (",
                   why, "); evicting");
        ++cacheStats().integrityMisses;
        std::remove(path.c_str());
        return std::nullopt;
    };
    size_t eol = raw.find('\n');
    if (eol == std::string::npos)
        return corrupt("no header line");
    std::vector<std::string> h = split(raw.substr(0, eol), ' ');
    if (h.size() != 3 || h[0] != kEntryMagic)
        return corrupt("bad header");
    auto size = parseInt(h[2]);
    std::string payload = raw.substr(eol + 1);
    if (!size || static_cast<uint64_t>(*size) != payload.size())
        return corrupt("size mismatch");
    if (sha256Hex(payload) != h[1])
        return corrupt("checksum mismatch");
    return payload;
}

bool
ResultCache::store(const std::string &key,
                   const std::string &reportJson)
{
    // The cache is an accelerator: a verdict that cannot be cached is
    // still a verdict, so every failure path below warns, counts
    // (batch.cache_publish_failures) and returns instead of aborting
    // the batch that just spent its budget computing the result.
    if (!isEnabled)
        return false;
    if (::mkdir(cacheDir.c_str(), 0755) != 0 && errno != EEXIST) {
        GLIFS_WARN("cannot create cache directory ", cacheDir,
                   ": ", std::strerror(errno),
                   "; dropping cache entry");
        ++cacheStats().publishFailures;
        return false;
    }

    // Temp file + rename: a reader (or a concurrent batch) sees
    // either no entry or a complete one, never a partial write. All
    // syscalls go through faultfs so crash/ENOSPC/short-write plans
    // can exercise every failure path deterministically.
    std::string finalPath = entryPath(key);
    std::string tmpPath =
        finalPath + ".tmp." + std::to_string(::getpid());
    std::string blob = std::string(kEntryMagic) + " " +
                       sha256Hex(reportJson) + " " +
                       std::to_string(reportJson.size()) + "\n" +
                       reportJson;

    auto fail = [&](const char *what) {
        faultfs::unlink(tmpPath.c_str());
        GLIFS_WARN("cannot ", what, " cache entry ", finalPath, ": ",
                   std::strerror(errno), "; dropping cache entry");
        ++cacheStats().publishFailures;
        return false;
    };

    int fd = faultfs::open(tmpPath.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return fail("write");
    if (faultfs::writeFull(fd, blob.data(), blob.size()) < 0 ||
        faultfs::fsync(fd) != 0) {
        ::close(fd);
        return fail("write");
    }
    ::close(fd);
    if (faultfs::rename(tmpPath.c_str(), finalPath.c_str()) != 0)
        return fail("publish");
    return true;
}

} // namespace glifs::batch
