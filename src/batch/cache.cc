#include "batch/cache.hh"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "base/hash.hh"
#include "base/logging.hh"

namespace glifs::batch
{

std::string
cacheKey(const JobSpec &job, const RetryConfig &retry,
         const std::string &toolVersion)
{
    Sha256 h;
    h.section("tool", toolVersion);
    h.section("firmware", job.firmwareText);
    h.section("policy", job.policyText);
    h.section("budgets", job.budgets.canonical());
    h.section("retry", retry.canonical());
    return h.hexDigest();
}

ResultCache::ResultCache(std::string dir, bool enabled)
    : cacheDir(std::move(dir)), isEnabled(enabled)
{}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return cacheDir + "/" + key + ".json";
}

std::optional<std::string>
ResultCache::lookup(const std::string &key) const
{
    if (!isEnabled)
        return std::nullopt;
    std::ifstream in(entryPath(key));
    if (!in)
        return std::nullopt;
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

void
ResultCache::store(const std::string &key,
                   const std::string &reportJson)
{
    if (!isEnabled)
        return;
    if (::mkdir(cacheDir.c_str(), 0755) != 0 && errno != EEXIST)
        GLIFS_FATAL("cannot create cache directory ", cacheDir);

    // Temp file + rename: a reader (or a concurrent batch) sees
    // either no entry or a complete one, never a partial write.
    std::string finalPath = entryPath(key);
    std::string tmpPath =
        finalPath + ".tmp." + std::to_string(::getpid());
    std::ofstream out(tmpPath);
    if (!out)
        GLIFS_FATAL("cannot write cache entry ", tmpPath);
    out << reportJson;
    out.close();
    if (!out || std::rename(tmpPath.c_str(), finalPath.c_str()) != 0) {
        std::remove(tmpPath.c_str());
        GLIFS_FATAL("cannot publish cache entry ", finalPath);
    }
}

} // namespace glifs::batch
