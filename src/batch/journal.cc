#include "batch/journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "base/faultfs.hh"
#include "base/hash.hh"
#include "base/logging.hh"
#include "base/stats.hh"

namespace glifs::batch
{

namespace
{

constexpr char kMagic[8] = {'G', 'L', 'F', 'S', 'J', 'R', 'N', 'L'};

enum RecordType : uint8_t
{
    kRecManifest = 1,
    kRecJobStarted = 2,
    kRecCachePublished = 3,
    kRecJobFinished = 4,
};

/** The largest record replay() will believe (64 MiB). */
constexpr uint32_t kMaxRecord = 1u << 26;

stats::Scalar &
writeFailures()
{
    static stats::Scalar s{"batch.journal_write_failures",
                           "journal appends abandoned because a write "
                           "or fsync failed (journaling disables "
                           "itself)"};
    return s;
}

stats::Scalar &
recordsWritten()
{
    static stats::Scalar s{"batch.journal_records",
                           "records appended to the batch journal"};
    return s;
}

stats::Scalar &
tornReplays()
{
    static stats::Scalar s{"batch.journal_torn_replays",
                           "journal replays that truncated an invalid "
                           "tail"};
    return s;
}

// ---------------------------------------------------------------------
// Little-endian payload encoding into / out of std::string.
// ---------------------------------------------------------------------

void
putU8(std::string &out, uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        putU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::string &out, uint64_t v)
{
    putU32(out, static_cast<uint32_t>(v));
    putU32(out, static_cast<uint32_t>(v >> 32));
}

void
putStr(std::string &out, const std::string &s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out.append(s);
}

void
putDouble(std::string &out, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

/** Bounds-checked reader; sets `bad` instead of throwing so replay
 *  can treat a malformed payload like a torn record. */
struct PayloadReader
{
    const std::string &buf;
    size_t pos = 0;
    bool bad = false;

    uint8_t
    u8()
    {
        if (pos + 1 > buf.size()) {
            bad = true;
            return 0;
        }
        return static_cast<uint8_t>(buf[pos++]);
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= uint32_t{u8()} << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t lo = u32();
        return lo | (uint64_t{u32()} << 32);
    }

    std::string
    str()
    {
        uint32_t n = u32();
        if (bad || pos + n > buf.size()) {
            bad = true;
            return "";
        }
        std::string s = buf.substr(pos, n);
        pos += n;
        return s;
    }

    double
    real()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
};

} // namespace

std::string
manifestFingerprint(const Manifest &manifest)
{
    Sha256 h;
    h.section("manifest", manifest.name);
    h.section("retry", manifest.retry.canonical());
    for (const JobSpec &job : manifest.jobs) {
        h.section("job", job.name);
        h.section("firmware", job.firmwareText);
        h.section("policy", job.policyText);
        h.section("budgets", job.budgets.canonical());
    }
    return h.hexDigest();
}

BatchJournal
BatchJournal::create(const std::string &path,
                     const std::string &fingerprint)
{
    int fd = faultfs::open(path.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        GLIFS_WARN("cannot create batch journal ", path, ": ",
                   std::strerror(errno),
                   "; continuing without crash resumability");
        ++writeFailures();
        return BatchJournal{};
    }
    std::string header(kMagic, sizeof(kMagic));
    putU32(header, kVersion);
    BatchJournal j(fd);
    if (faultfs::writeFull(fd, header.data(), header.size()) < 0) {
        GLIFS_WARN("cannot write batch journal header ", path, ": ",
                   std::strerror(errno),
                   "; continuing without crash resumability");
        ++writeFailures();
        ::close(fd);
        return BatchJournal{};
    }
    std::string payload;
    putStr(payload, fingerprint);
    j.append(kRecManifest, payload);
    return j;
}

BatchJournal::BatchJournal(BatchJournal &&other) noexcept
    : fd(std::exchange(other.fd, -1))
{}

BatchJournal &
BatchJournal::operator=(BatchJournal &&other) noexcept
{
    if (this != &other) {
        if (fd >= 0)
            ::close(fd);
        fd = std::exchange(other.fd, -1);
    }
    return *this;
}

BatchJournal::~BatchJournal()
{
    if (fd >= 0)
        ::close(fd);
}

void
BatchJournal::append(uint8_t type, const std::string &payload)
{
    if (fd < 0)
        return;
    std::string body;
    putU8(body, type);
    body.append(payload);
    std::string frame;
    putU32(frame, static_cast<uint32_t>(payload.size()));
    frame.append(body);
    putU32(frame, crc32(body));
    // One write per record keeps every journal state reachable by a
    // crash at a syscall boundary; the fsync makes the record durable
    // before the action it logs is considered done.
    if (faultfs::writeFull(fd, frame.data(), frame.size()) < 0 ||
        faultfs::fsync(fd) != 0) {
        GLIFS_WARN("batch journal write failed: ",
                   std::strerror(errno),
                   "; journaling disabled for the rest of this run");
        ++writeFailures();
        ::close(fd);
        fd = -1;
        return;
    }
    ++recordsWritten();
}

void
BatchJournal::jobStarted(uint32_t index, const std::string &name,
                         const std::string &cacheKey)
{
    std::string p;
    putU32(p, index);
    putStr(p, name);
    putStr(p, cacheKey);
    append(kRecJobStarted, p);
}

void
BatchJournal::cachePublished(uint32_t index,
                             const std::string &cacheKey)
{
    std::string p;
    putU32(p, index);
    putStr(p, cacheKey);
    append(kRecCachePublished, p);
}

void
BatchJournal::jobFinished(uint32_t index, const JobOutcome &outcome)
{
    std::string p;
    putU32(p, index);
    putStr(p, outcome.name);
    putStr(p, outcome.verdict);
    putU32(p, static_cast<uint32_t>(outcome.exitCode));
    putU8(p, static_cast<uint8_t>(outcome.cache));
    putU32(p, outcome.attempts);
    putU8(p, outcome.resumed ? 1 : 0);
    putDouble(p, outcome.wallSeconds);
    putU64(p, outcome.violationCount);
    putStr(p, outcome.violationsJson);
    putStr(p, outcome.detail);
    append(kRecJobFinished, p);
}

BatchJournal::Replay
BatchJournal::replay(const std::string &path)
{
    Replay out;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        GLIFS_WARN("batch journal ", path,
                   " is missing or unreadable; resuming nothing");
        out.torn = true;
        return out;
    }
    char magic[8] = {};
    in.read(magic, sizeof(magic));
    uint8_t verBytes[4] = {};
    in.read(reinterpret_cast<char *>(verBytes), sizeof(verBytes));
    uint32_t version = static_cast<uint32_t>(verBytes[0]) |
                       (uint32_t{verBytes[1]} << 8) |
                       (uint32_t{verBytes[2]} << 16) |
                       (uint32_t{verBytes[3]} << 24);
    if (!in || !std::equal(magic, magic + sizeof(magic), kMagic) ||
        version != kVersion) {
        GLIFS_WARN("batch journal ", path,
                   " has a torn or foreign header; resuming nothing");
        out.torn = true;
        ++tornReplays();
        return out;
    }

    while (true) {
        uint8_t lenBytes[4] = {};
        in.read(reinterpret_cast<char *>(lenBytes), sizeof(lenBytes));
        if (in.gcount() == 0)
            break; // clean end of journal
        uint32_t len = static_cast<uint32_t>(lenBytes[0]) |
                       (uint32_t{lenBytes[1]} << 8) |
                       (uint32_t{lenBytes[2]} << 16) |
                       (uint32_t{lenBytes[3]} << 24);
        if (in.gcount() != sizeof(lenBytes) || len > kMaxRecord) {
            out.torn = true;
            break;
        }
        std::string body(size_t{len} + 1, '\0');
        in.read(body.data(), static_cast<std::streamsize>(body.size()));
        if (static_cast<size_t>(in.gcount()) != body.size()) {
            out.torn = true;
            break;
        }
        uint8_t crcBytes[4] = {};
        in.read(reinterpret_cast<char *>(crcBytes), sizeof(crcBytes));
        uint32_t want = static_cast<uint32_t>(crcBytes[0]) |
                        (uint32_t{crcBytes[1]} << 8) |
                        (uint32_t{crcBytes[2]} << 16) |
                        (uint32_t{crcBytes[3]} << 24);
        if (in.gcount() != sizeof(crcBytes) || crc32(body) != want) {
            out.torn = true;
            break;
        }

        uint8_t type = static_cast<uint8_t>(body[0]);
        std::string payload = body.substr(1);
        PayloadReader r{payload};
        switch (type) {
          case kRecManifest:
            out.fingerprint = r.str();
            break;
          case kRecJobStarted:
          case kRecCachePublished:
            // Presence-only records: nothing to recover, but their
            // CRCs anchor the valid prefix.
            break;
          case kRecJobFinished: {
            uint32_t index = r.u32();
            JobOutcome o;
            o.name = r.str();
            o.verdict = r.str();
            o.exitCode = static_cast<int>(r.u32());
            uint8_t cacheByte = r.u8();
            if (cacheByte > static_cast<uint8_t>(CacheStatus::Disabled))
                r.bad = true;
            o.cache = static_cast<CacheStatus>(cacheByte);
            o.attempts = r.u32();
            o.resumed = r.u8() != 0;
            o.wallSeconds = r.real();
            o.violationCount = r.u64();
            o.violationsJson = r.str();
            o.detail = r.str();
            if (!r.bad)
                out.finished[index] = std::move(o);
            break;
          }
          default:
            break; // unknown record type: skip, stay compatible
        }
        if (r.bad) {
            out.torn = true;
            break;
        }
        ++out.records;
    }
    if (out.torn) {
        GLIFS_WARN("batch journal ", path, " has an invalid tail; "
                   "replayed the first ", out.records, " record(s)");
        ++tornReplays();
    }
    return out;
}

} // namespace glifs::batch
