/**
 * @file
 * The escalating-budget retry ladder (docs/BATCH.md).
 *
 * A worker that exits 2 (Unknown/degraded — see docs/ROBUSTNESS.md)
 * ran out of *budget*, not of soundness: re-running the same job with
 * larger budgets can still converge to a definitive Secure/Violations
 * verdict. The ladder multiplies every configured budget by
 * `multiplier^(attempt-1)` up to `maxAttempts` total attempts, and
 * resumes from the job's checkpoint when the previous attempt wrote
 * one, so the work already done is not repeated.
 *
 * Exit codes 0 and 1 are definitive, and exit 3 (usage error) or a
 * crash would only fail identically on retry — none of those are ever
 * retried.
 */

#ifndef GLIFS_BATCH_RETRY_HH
#define GLIFS_BATCH_RETRY_HH

#include "batch/manifest.hh"

namespace glifs::batch
{

class RetryLadder
{
  public:
    explicit RetryLadder(const RetryConfig &cfg) : cfg(cfg) {}

    /**
     * Should a job that finished attempt @p attempt (1-based) with
     * @p exitCode run again? Only exit 2 within the attempt ceiling.
     */
    bool shouldRetry(int exitCode, unsigned attempt) const;

    /**
     * The budgets for attempt @p attempt (1-based): the base budgets
     * scaled by multiplier^(attempt-1). Unset dimensions (0) stay
     * unset — escalation never invents a budget the job didn't have.
     * Scaled values saturate instead of overflowing.
     */
    JobBudgets budgetsFor(const JobBudgets &base,
                          unsigned attempt) const;

    /**
     * Launch delay in seconds before attempt @p attempt (1-based; the
     * first attempt is never delayed). Decorrelated jitter on the
     * configured backoff base: each step draws uniformly from
     * [base, 3 * previous], capped at `backoffCapSeconds` — so a fleet
     * of jobs degrading together fans out instead of re-hitting the
     * box in lockstep (the thundering herd). @p seed makes the draw
     * deterministic per job: tests are stable and a resumed batch
     * paces exactly like the original.
     */
    double backoffFor(unsigned attempt, uint64_t seed) const;

    const RetryConfig &config() const { return cfg; }

  private:
    RetryConfig cfg;
};

} // namespace glifs::batch

#endif // GLIFS_BATCH_RETRY_HH
