/**
 * @file
 * Batch orchestration: ties the manifest, the result cache, the retry
 * ladder and the process scheduler together into one run, and
 * aggregates the per-worker `glifs.run_report.v1` reports into a
 * `glifs.batch_report.v1` (docs/BATCH.md).
 */

#ifndef GLIFS_BATCH_RUNNER_HH
#define GLIFS_BATCH_RUNNER_HH

#include <map>
#include <string>
#include <vector>

#include "batch/cache.hh"
#include "batch/manifest.hh"

namespace glifs::batch
{

/** How a job's inputs met the result cache. */
enum class CacheStatus : uint8_t
{
    Hit,      ///< verdict served from the cache; no worker ran
    Miss,     ///< workers ran; definitive outcomes were stored
    Disabled, ///< --no-cache: workers ran, nothing stored
};

const char *cacheStatusName(CacheStatus s);

/** The aggregated outcome of one job. */
struct JobOutcome
{
    std::string name;
    std::string verdict;       ///< secure | violations | unknown-degraded | error
    int exitCode = 3;          ///< worker exit-code contract 0/1/2/3
    CacheStatus cache = CacheStatus::Miss;
    unsigned attempts = 0;     ///< worker runs (0 on a cache hit)
    bool resumed = false;      ///< a retry resumed from a checkpoint
    double wallSeconds = 0;    ///< summed across attempts
    size_t violationCount = 0;
    /** The worker report's violations array, verbatim JSON ("[]" when
     *  none): the batch report keeps the worst findings inline. */
    std::string violationsJson = "[]";
    std::string detail;        ///< diagnostic for crashes/usage errors
};

/** The whole batch run. */
struct BatchReport
{
    std::string manifestName;
    std::string manifestPath;
    unsigned concurrency = 1;
    double wallSeconds = 0;
    std::vector<JobOutcome> jobs;
    /**
     * Worker stats aggregated over the fleet: each worker's last
     * telemetry stats snapshot, summed across jobs by stat name.
     * Empty when no telemetry arrived (workers too short-lived to
     * heartbeat, or telemetry unavailable). Rendered as the report's
     * "worker_stats" object.
     */
    std::map<std::string, double> workerStats;

    size_t cacheHits() const;
    /** Max worker exit code: the batch process exit code. */
    int exitCode() const;
    /** The glifs.batch_report.v1 document. */
    std::string json() const;
    /** One-line-per-job console summary. */
    std::string summary() const;
};

/** Everything runBatch() needs besides the manifest. */
struct BatchOptions
{
    unsigned jobs = 1;             ///< worker concurrency
    std::string auditBinary;       ///< path to glifs_audit (required)
    std::string cacheDir = kDefaultCacheDir;
    bool noCache = false;
    /** Scratch dir for materialized firmware, worker logs, reports
     *  and checkpoints ("" = <cacheDir>/work). */
    std::string workDir;
    bool verbose = true;           ///< per-job progress lines to stdout
    /** Write-ahead journal path ("" = <workDir>/batch.journal). */
    std::string journalPath;
    /**
     * Journal of a crashed run to resume ("" = fresh run): finished
     * jobs are reported from the journal without re-running; the rest
     * run normally. The journal must belong to the same manifest
     * (fingerprint-checked) — resuming a different fleet's journal is
     * a FatalError, never silently wrong results.
     */
    std::string resumeJournalPath;
    /**
     * Stall watchdog (0 = off): workers whose log stops growing for
     * this many seconds get SIGTERM (checkpoint-then-exit), then
     * SIGKILL. Enables the worker's `--progress` heartbeat. Worker
     * telemetry also feeds the watchdog: a job whose pipe still
     * carries heartbeats is never presumed stalled.
     */
    double stallTimeoutSeconds = 0;
    /**
     * Live status surface ("" = off): a `glifs.batch_status.v1` JSON
     * document atomically republished (temp + rename) on every worker
     * telemetry batch and lifecycle transition, with per-job
     * state/progress/cycle counts and batch rollups
     * (docs/OBSERVABILITY.md, "Streaming batch status").
     */
    std::string statusFilePath;
    /**
     * Merged multi-process Chrome trace ("" = off): each worker runs
     * with --trace-out, and after the batch the per-worker traces are
     * merged into one trace_event JSON with one pid lane per job
     * (open in Perfetto).
     */
    std::string traceMergePath;
};

/**
 * Run every job in @p manifest and aggregate the outcomes. Worker
 * failures (crashes, usage errors) become per-job outcomes, not
 * exceptions; only setup problems (unwritable work dir, missing audit
 * binary) throw FatalError.
 */
BatchReport runBatch(const Manifest &manifest,
                     const BatchOptions &options);

} // namespace glifs::batch

#endif // GLIFS_BATCH_RUNNER_HH
