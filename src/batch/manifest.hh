/**
 * @file
 * Batch job manifests (docs/BATCH.md): the input to `glifs_batch`.
 *
 * A manifest is a line-oriented text file ('#' comments) declaring a
 * fleet of verification jobs. Each job names its firmware — either a
 * `.s` file on disk or a built-in workload from the registry — plus an
 * optional policy file and optional per-job budget overrides:
 *
 *   batch    <name...>              # optional manifest name
 *   retry    multiplier   <x>      # escalation factor (default 4)
 *   retry    max-attempts <n>      # retry ceiling     (default 3)
 *   retry    backoff      <secs>   # jittered retry delay (default 0)
 *   retry    backoff-cap  <secs>   # delay ceiling      (default 60)
 *   default  <budget> <value>      # budget default for every job
 *   job      <name>                # starts a job block
 *     workload   <registry-name>   #   exactly one of workload /
 *     firmware   <path.s>          #   firmware per job
 *     policy     <path>            #   optional policy file
 *     deadline   <seconds>         #   per-job budget overrides
 *     max-cycles <n>
 *     max-states <n>
 *     max-rss    <MiB>
 *
 * Relative paths resolve against the manifest file's directory, so a
 * manifest checked in next to its firmware keeps working from any
 * working directory. Parsing resolves firmware and policy *content*
 * eagerly: the cache key must be a function of content, not of paths.
 */

#ifndef GLIFS_BATCH_MANIFEST_HH
#define GLIFS_BATCH_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

namespace glifs::batch
{

/**
 * Per-job analysis budgets, mirroring the glifs_audit flags of the
 * same names. 0 means "not set" (the engine default applies).
 */
struct JobBudgets
{
    double deadlineSeconds = 0;
    uint64_t maxCycles = 0;
    uint64_t maxStates = 0;
    uint64_t maxRssMb = 0;

    /**
     * Stable one-line rendering for the cache key: two jobs with the
     * same budgets must canonicalize identically.
     */
    std::string canonical() const;
};

/** Escalating-retry knobs (see src/batch/retry.hh). */
struct RetryConfig
{
    double multiplier = 4.0;   ///< budget scale factor per attempt
    unsigned maxAttempts = 3;  ///< total attempts incl. the first
    /**
     * Decorrelated-jitter backoff before each retry attempt: base
     * delay in seconds (0 = retries launch immediately) and the cap
     * the jittered ladder saturates at. Pacing only — deliberately
     * absent from canonical(), because when a retry launches cannot
     * change its verdict.
     */
    double backoffSeconds = 0;
    double backoffCapSeconds = 60.0;

    /** Verdict-affecting knobs only (feeds the cache key). */
    std::string canonical() const;
};

/** One verification job, with its input content resolved. */
struct JobSpec
{
    std::string name;          ///< unique within the manifest
    std::string workload;      ///< registry name ("" = file firmware)
    std::string firmwarePath;  ///< .s path     ("" = workload)
    std::string firmwareText;  ///< resolved assembly source
    std::string policyPath;    ///< "" = benchmark default policy
    std::string policyText;    ///< resolved policy file content
    JobBudgets budgets;
};

/** A parsed manifest: the job fleet plus fleet-wide settings. */
struct Manifest
{
    std::string name;
    std::string path;          ///< where it was loaded from ("" = text)
    RetryConfig retry;
    std::vector<JobSpec> jobs;
};

/**
 * Parse a manifest document. @p baseDir anchors relative firmware and
 * policy paths ("" = the process working directory).
 * @throws FatalError with a line number on malformed input: unknown
 *         directives, duplicate job names, jobs with zero or two
 *         firmware sources, unknown workloads, unreadable files, and
 *         empty manifests are all rejected.
 */
Manifest parseManifest(const std::string &text,
                       const std::string &baseDir = "");

/** Parse a manifest from a file; relative paths resolve against it. */
Manifest loadManifest(const std::string &path);

} // namespace glifs::batch

#endif // GLIFS_BATCH_MANIFEST_HH
