#include "batch/runner.hh"

#include <sys/stat.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "base/faultfs.hh"
#include "base/logging.hh"
#include "base/stats.hh"
#include "base/strutil.hh"
#include "base/version.hh"
#include "batch/cache.hh"
#include "batch/journal.hh"
#include "batch/retry.hh"
#include "batch/scheduler.hh"

namespace glifs::batch
{

namespace
{

using Clock = std::chrono::steady_clock;

/** mkdir -p: create @p path and any missing parents. */
void
makeDirs(const std::string &path)
{
    std::string cur;
    std::istringstream in(path);
    std::string part;
    if (!path.empty() && path[0] == '/')
        cur = "/";
    while (std::getline(in, part, '/')) {
        if (part.empty())
            continue;
        cur += part + "/";
        if (::mkdir(cur.c_str(), 0755) != 0 && errno != EEXIST)
            GLIFS_FATAL("cannot create directory ", cur);
    }
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

std::string
readFileIfAny(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return "";
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

/** Job-derived filename stem: unique (index) and filesystem-safe. */
std::string
fileStem(size_t index, const std::string &name)
{
    std::string safe;
    for (char c : name) {
        safe.push_back(std::isalnum(static_cast<unsigned char>(c))
                           ? c
                           : '_');
    }
    return "job" + std::to_string(index) + "_" + safe;
}

// ---------------------------------------------------------------------
// Minimal field extraction from the worker's run-report JSON. The
// reports are produced by glifs_audit itself, so a targeted scanner is
// enough — but it still respects string quoting and nesting so a
// detail string containing '"violations":' can never confuse it.
// ---------------------------------------------------------------------

/** Position just after `"key":` at any nesting depth; npos if absent. */
size_t
valueStart(const std::string &text, const std::string &key)
{
    std::string needle = "\"" + key + "\"";
    size_t pos = 0;
    bool inString = false;
    for (size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == '"') {
            if (text.compare(i, needle.size(), needle) == 0) {
                pos = i + needle.size();
                while (pos < text.size() &&
                       std::isspace(
                           static_cast<unsigned char>(text[pos])))
                    ++pos;
                if (pos < text.size() && text[pos] == ':') {
                    ++pos;
                    while (pos < text.size() &&
                           std::isspace(static_cast<unsigned char>(
                               text[pos])))
                        ++pos;
                    return pos;
                }
            }
            inString = true;
        }
    }
    return std::string::npos;
}

std::string
jsonStringField(const std::string &text, const std::string &key)
{
    size_t pos = valueStart(text, key);
    if (pos == std::string::npos || pos >= text.size() ||
        text[pos] != '"')
        return "";
    std::string out;
    for (size_t i = pos + 1; i < text.size(); ++i) {
        char c = text[i];
        if (c == '\\' && i + 1 < text.size()) {
            out.push_back(text[++i]);
        } else if (c == '"') {
            return out;
        } else {
            out.push_back(c);
        }
    }
    return "";
}

std::string
jsonArrayField(const std::string &text, const std::string &key)
{
    size_t pos = valueStart(text, key);
    if (pos == std::string::npos || pos >= text.size() ||
        text[pos] != '[')
        return "";
    int depth = 0;
    bool inString = false;
    for (size_t i = pos; i < text.size(); ++i) {
        char c = text[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == '"')
            inString = true;
        else if (c == '[')
            ++depth;
        else if (c == ']' && --depth == 0)
            return text.substr(pos, i - pos + 1);
    }
    return "";
}

/** Entries in a JSON array rendered by glifs (objects, not nested). */
size_t
jsonArrayCount(const std::string &arrayText)
{
    size_t count = 0;
    bool inString = false;
    for (size_t i = 0; i < arrayText.size(); ++i) {
        char c = arrayText[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == '"')
            inString = true;
        else if (c == '{')
            ++count;
    }
    return count;
}

/** Collapse a pretty-printed JSON fragment onto one line. */
std::string
squashWhitespace(const std::string &s)
{
    std::string out;
    bool inString = false;
    for (size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (inString) {
            out.push_back(c);
            if (c == '\\' && i + 1 < s.size())
                out.push_back(s[++i]);
            else if (c == '"')
                inString = false;
            continue;
        }
        // JSON tokens never need inter-token whitespace back.
        if (std::isspace(static_cast<unsigned char>(c)))
            continue;
        if (c == '"')
            inString = true;
        out.push_back(c);
    }
    return out;
}

/** Worker state tracked across attempts. */
struct JobRun
{
    const JobSpec *spec = nullptr;
    std::string key;            ///< cache key
    std::string firmwareFile;   ///< what the worker is handed
    std::string checkpointFile;
    std::string reportFile;     ///< per-attempt run report (rewritten)
    std::string traceFile;      ///< per-attempt worker trace (merge input)
    JobOutcome outcome;
    unsigned attempt = 0;       ///< attempts launched so far
    bool fromJournal = false;   ///< outcome replayed; never ran here
    bool resumeCheckpoint = false; ///< crashed run left a checkpoint

    // Live view fed by worker telemetry (the status file's payload).
    std::string state = "pending"; ///< pending|running|finished|cached|journal
    uint64_t heartbeats = 0;
    uint64_t cycles = 0;
    double cyclesPerSec = 0;
    uint64_t frontierStates = 0;
    uint64_t trackedStates = 0;
    uint64_t rssBytes = 0;
    double budgetUsed = 0;
    /** The worker's most recent stats snapshot (name -> value). */
    std::map<std::string, double> lastStats;
};

/** Runner-side observability counters (docs/OBSERVABILITY.md). */
struct RunnerStats
{
    stats::Scalar statusWrites{"batch.status_writes",
                               "status-file snapshots published "
                               "(atomic temp + rename)"};
    stats::Scalar statusWriteFailures{"batch.status_write_failures",
                                      "status-file publishes that "
                                      "failed (stale file left in "
                                      "place)"};
    stats::Scalar traceMergeInputs{"batch.trace_merge_inputs",
                                   "per-worker trace files folded "
                                   "into the merged batch trace"};
};

RunnerStats &
runnerStats()
{
    static RunnerStats s;
    return s;
}

/**
 * The live `glifs.batch_status.v1` surface: one small JSON document,
 * atomically republished (write temp, rename over) so a reader never
 * sees a torn file. Republishing is throttled — heartbeats arrive per
 * worker per 50-250ms, and rewriting the file for each would be pure
 * churn — but lifecycle transitions always force a publish so "a job
 * just finished" is immediately visible.
 */
class StatusPublisher
{
  public:
    StatusPublisher(std::string path, const BatchReport &report,
                    const std::vector<JobRun> &runs)
        : path(std::move(path)), report(report), runs(runs)
    {}

    bool enabled() const { return !path.empty(); }

    void
    publish(bool force)
    {
        if (!enabled())
            return;
        const auto now = Clock::now();
        if (!force && lastPublish.time_since_epoch().count() != 0 &&
            std::chrono::duration<double>(now - lastPublish).count() <
                kMinPeriodSeconds)
            return;
        lastPublish = now;
        if (!writeAtomically(render()))
            ++runnerStats().statusWriteFailures;
        else
            ++runnerStats().statusWrites;
    }

    static constexpr double kMinPeriodSeconds = 0.1;

  private:
    std::string
    render() const
    {
        size_t running = 0;
        size_t finished = 0;
        uint64_t totalCycles = 0;
        for (const JobRun &r : runs) {
            if (r.state == "running")
                ++running;
            else if (r.state != "pending")
                ++finished;
            totalCycles += r.cycles;
        }
        std::ostringstream oss;
        oss << "{\n"
            << "  \"schema\": \"glifs.batch_status.v1\",\n"
            << "  \"manifest\": " << jsonQuote(report.manifestName)
            << ",\n"
            << "  \"concurrency\": " << report.concurrency << ",\n"
            << "  \"jobs_total\": " << runs.size() << ",\n"
            << "  \"jobs_running\": " << running << ",\n"
            << "  \"jobs_finished\": " << finished << ",\n"
            << "  \"cycles_total\": " << totalCycles << ",\n"
            << "  \"jobs\": [\n";
        for (size_t i = 0; i < runs.size(); ++i) {
            const JobRun &r = runs[i];
            oss << "    {\"name\": " << jsonQuote(r.outcome.name)
                << ", \"state\": " << jsonQuote(r.state)
                << ", \"attempt\": " << r.attempt
                << ", \"heartbeats\": " << r.heartbeats
                << ", \"cycles\": " << r.cycles
                << ", \"cycles_per_sec\": " << r.cyclesPerSec
                << ", \"frontier\": " << r.frontierStates
                << ", \"states\": " << r.trackedStates
                << ", \"rss_bytes\": " << r.rssBytes
                << ", \"budget_used\": " << r.budgetUsed;
            if (r.state == "finished" || r.state == "cached" ||
                r.state == "journal") {
                oss << ", \"verdict\": " << jsonQuote(r.outcome.verdict)
                    << ", \"exit_code\": " << r.outcome.exitCode;
            }
            oss << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
        }
        oss << "  ]\n}\n";
        return oss.str();
    }

    /** Temp + rename through faultfs (the journal/cache publish
     *  idiom), so status publishing is crash-atomic and the fault
     *  sweeps can exercise its failure paths. */
    bool
    writeAtomically(const std::string &doc) const
    {
        const std::string tmp = path + ".tmp";
        int fd = faultfs::open(tmp.c_str(),
                               O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd < 0)
            return false;
        bool ok = faultfs::writeFull(fd, doc.data(), doc.size()) ==
                  static_cast<ssize_t>(doc.size());
        ::close(fd);
        if (ok)
            ok = faultfs::rename(tmp.c_str(), path.c_str()) == 0;
        if (!ok)
            faultfs::unlink(tmp.c_str());
        return ok;
    }

    std::string path;
    const BatchReport &report;
    const std::vector<JobRun> &runs;
    Clock::time_point lastPublish{};
};

/**
 * Merge the per-worker Chrome traces into one multi-process trace:
 * each job becomes its own pid lane (pid = job index + 1) with a
 * process_name metadata record, so Perfetto shows one named lane per
 * job. Worker trace events are emitted one per line with a literal
 * `"pid": 1`, which the merge rewrites — the same trusted-producer
 * assumption the run-report field scanners make.
 */
void
mergeTraces(const std::vector<JobRun> &runs, const std::string &outPath)
{
    std::ostringstream oss;
    oss << "{\n  \"displayTimeUnit\": \"ms\",\n"
        << "  \"traceEvents\": [\n";
    bool first = true;
    auto emit = [&](const std::string &line) {
        if (!first)
            oss << ",\n";
        first = false;
        oss << "    " << line;
    };
    for (size_t i = 0; i < runs.size(); ++i) {
        const JobRun &run = runs[i];
        if (run.traceFile.empty())
            continue;
        std::string doc = readFileIfAny(run.traceFile);
        if (doc.empty())
            continue;
        ++runnerStats().traceMergeInputs;
        const std::string pid = std::to_string(i + 1);
        emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
             pid + ", \"tid\": 1, \"args\": {\"name\": " +
             jsonQuote("job " + run.outcome.name) + "}}");
        std::istringstream in(doc);
        std::string line;
        while (std::getline(in, line)) {
            std::string t = trim(line);
            if (t.empty() || t[0] != '{')
                continue; // header/footer of the per-worker document
            if (t.back() == ',')
                t.pop_back();
            size_t pos = t.find("\"pid\": 1");
            if (pos == std::string::npos)
                continue;
            t.replace(pos, 8, "\"pid\": " + pid);
            emit(t);
        }
    }
    oss << "\n  ]\n}\n";

    std::ofstream out(outPath);
    if (!out) {
        GLIFS_WARN("cannot write merged trace ", outPath);
        return;
    }
    out << oss.str();
}

/** Per-job jitter seed: the first 16 hex digits of the cache key, so
 *  the backoff ladder is deterministic per job but fleet-decorrelated. */
uint64_t
jitterSeed(const std::string &cacheKey)
{
    uint64_t seed = 0;
    for (size_t i = 0; i < 16 && i < cacheKey.size(); ++i) {
        char c = cacheKey[i];
        uint64_t nibble =
            c >= 'a' ? static_cast<uint64_t>(c - 'a' + 10)
                     : static_cast<uint64_t>(c - '0');
        seed = (seed << 4) | (nibble & 0xF);
    }
    return seed;
}

} // namespace

const char *
cacheStatusName(CacheStatus s)
{
    switch (s) {
      case CacheStatus::Hit: return "hit";
      case CacheStatus::Miss: return "miss";
      case CacheStatus::Disabled: return "disabled";
    }
    return "?";
}

size_t
BatchReport::cacheHits() const
{
    return static_cast<size_t>(
        std::count_if(jobs.begin(), jobs.end(), [](const JobOutcome &j) {
            return j.cache == CacheStatus::Hit;
        }));
}

int
BatchReport::exitCode() const
{
    int worst = 0;
    for (const JobOutcome &j : jobs)
        worst = std::max(worst, j.exitCode);
    return worst;
}

std::string
BatchReport::json() const
{
    std::ostringstream oss;
    oss << "{\n"
        << "  \"schema\": \"glifs.batch_report.v1\",\n"
        << "  \"tool_version\": " << jsonQuote(kGlifsVersion) << ",\n"
        << "  \"manifest\": " << jsonQuote(manifestName) << ",\n"
        << "  \"manifest_path\": " << jsonQuote(manifestPath) << ",\n"
        << "  \"concurrency\": " << concurrency << ",\n"
        << "  \"wall_seconds\": " << wallSeconds << ",\n"
        << "  \"jobs_total\": " << jobs.size() << ",\n"
        << "  \"cache_hits\": " << cacheHits() << ",\n"
        << "  \"exit_code\": " << exitCode() << ",\n"
        << "  \"jobs\": [\n";
    for (size_t i = 0; i < jobs.size(); ++i) {
        const JobOutcome &j = jobs[i];
        oss << "    {\"name\": " << jsonQuote(j.name)
            << ", \"verdict\": " << jsonQuote(j.verdict)
            << ", \"exit_code\": " << j.exitCode << ", \"cache\": "
            << jsonQuote(cacheStatusName(j.cache))
            << ", \"attempts\": " << j.attempts << ", \"resumed\": "
            << (j.resumed ? "true" : "false")
            << ", \"wall_seconds\": " << j.wallSeconds
            << ", \"violation_count\": " << j.violationCount
            << ", \"violations\": "
            << (j.violationsJson.empty() ? "[]" : j.violationsJson);
        if (!j.detail.empty())
            oss << ", \"detail\": " << jsonQuote(j.detail);
        oss << "}" << (i + 1 < jobs.size() ? "," : "") << "\n";
    }
    oss << "  ],\n"
        << "  \"worker_stats\": {";
    bool firstStat = true;
    for (const auto &[name, value] : workerStats) {
        oss << (firstStat ? "\n" : ",\n") << "    "
            << jsonQuote(name) << ": " << value;
        firstStat = false;
    }
    oss << (firstStat ? "}\n" : "\n  }\n") << "}\n";
    return oss.str();
}

std::string
BatchReport::summary() const
{
    std::ostringstream oss;
    for (const JobOutcome &j : jobs) {
        char line[256];
        std::snprintf(line, sizeof(line),
                      "  %-20s %-18s cache=%-8s attempts=%u "
                      "%6.2fs%s\n",
                      j.name.c_str(), j.verdict.c_str(),
                      cacheStatusName(j.cache), j.attempts,
                      j.wallSeconds,
                      j.violationCount
                          ? (" violations=" +
                             std::to_string(j.violationCount))
                                .c_str()
                          : "");
        oss << line;
    }
    oss << "batch: " << jobs.size() << " job(s), " << cacheHits()
        << " cache hit(s), worst exit " << exitCode() << ", "
        << wallSeconds << "s wall";
    return oss.str();
}

BatchReport
runBatch(const Manifest &manifest, const BatchOptions &options)
{
    GLIFS_ASSERT(!options.auditBinary.empty(),
                 "BatchOptions::auditBinary is required");
    if (!fileExists(options.auditBinary))
        GLIFS_FATAL("audit binary not found: ", options.auditBinary);

    std::string workDir = options.workDir.empty()
                              ? options.cacheDir + "/work"
                              : options.workDir;
    makeDirs(workDir);

    ResultCache cache(options.cacheDir, !options.noCache);
    RetryLadder ladder(manifest.retry);

    // Crash resumability: replay any prior journal *before* creating
    // (truncating) this run's journal — they may be the same file.
    const std::string fingerprint = manifestFingerprint(manifest);
    std::map<uint32_t, JobOutcome> alreadyFinished;
    if (!options.resumeJournalPath.empty()) {
        BatchJournal::Replay prior =
            BatchJournal::replay(options.resumeJournalPath);
        if (!prior.fingerprint.empty() &&
            prior.fingerprint != fingerprint) {
            GLIFS_FATAL("journal ", options.resumeJournalPath,
                        " belongs to a different manifest; refusing "
                        "to resume (re-run without --resume-batch)");
        }
        if (prior.fingerprint.empty() && prior.records == 0) {
            GLIFS_WARN("journal ", options.resumeJournalPath,
                       " recovered nothing; running the full batch");
        }
        alreadyFinished = std::move(prior.finished);
    }

    std::string journalPath = options.journalPath.empty()
                                  ? workDir + "/batch.journal"
                                  : options.journalPath;
    BatchJournal journal = BatchJournal::create(journalPath,
                                               fingerprint);

    BatchReport report;
    report.manifestName = manifest.name;
    report.manifestPath = manifest.path;
    report.concurrency = options.jobs;

    Clock::time_point batchStart = Clock::now();

    // Resolve cache hits up front; materialize inputs for the misses.
    std::vector<JobRun> runs(manifest.jobs.size());
    ProcessScheduler sched(options.jobs);

    StatusPublisher status(options.statusFilePath, report, runs);

    // Live worker telemetry: heartbeats update the per-job progress
    // view (and the status file), stats snapshots feed the batch-wide
    // aggregation, lifecycle transitions force a status republish.
    sched.setTelemetrySink([&](uint64_t id, const telemetry::Event &e) {
        JobRun &run = runs[static_cast<size_t>(id)];
        switch (e.type) {
          case telemetry::EventType::Heartbeat:
            ++run.heartbeats;
            run.cycles = e.cycles;
            run.cyclesPerSec = e.cyclesPerSec;
            run.frontierStates = e.frontier;
            run.trackedStates = e.states;
            run.rssBytes = e.rssBytes;
            run.budgetUsed = e.budgetUsed;
            status.publish(false);
            break;
          case telemetry::EventType::StatsSnapshot:
            run.lastStats.clear();
            for (const auto &[name, value] : e.stats)
                run.lastStats[name] = value;
            break;
          case telemetry::EventType::Lifecycle:
            if (e.phase == "started") {
                run.state = "running";
                status.publish(true);
            }
            break;
          case telemetry::EventType::BudgetUsage:
            if (options.verbose) {
                std::printf("[%s] budget: %s %s threshold (%s)\n",
                            run.outcome.name.c_str(),
                            e.resource.c_str(), e.severity.c_str(),
                            e.detail.c_str());
            }
            break;
          case telemetry::EventType::Explore:
            // Per-worker exploration traffic (ship/steal/respawn/
            // prune) is interesting at trace granularity, not in the
            // live status view; the merged Chrome trace already gets
            // it via the worker's own trace lanes.
            if (options.verbose &&
                (e.phase == "steal" || e.phase == "respawn")) {
                std::printf("[%s] explore: %s worker %llu\n",
                            run.outcome.name.c_str(), e.phase.c_str(),
                            static_cast<unsigned long long>(e.worker));
            }
            break;
        }
    });

    // Fill one outcome from a worker/cached run report.
    auto applyReport = [](JobOutcome &out, const std::string &rep) {
        std::string verdict = jsonStringField(rep, "verdict");
        if (!verdict.empty())
            out.verdict = verdict;
        std::string viol = jsonArrayField(rep, "violations");
        if (!viol.empty()) {
            out.violationsJson = squashWhitespace(viol);
            out.violationCount = jsonArrayCount(viol);
        }
    };

    auto submitAttempt = [&](size_t idx) {
        JobRun &run = runs[idx];
        const JobSpec &job = *run.spec;
        ++run.attempt;
        JobBudgets budgets =
            ladder.budgetsFor(job.budgets, run.attempt);

        ProcTask t;
        t.id = idx;
        t.argv = {options.auditBinary, run.firmwareFile};
        if (!job.policyPath.empty()) {
            t.argv.push_back("--policy");
            t.argv.push_back(job.policyPath);
        }
        if (budgets.deadlineSeconds > 0) {
            t.argv.push_back("--deadline");
            t.argv.push_back(std::to_string(budgets.deadlineSeconds));
            // Backstop well past the worker's own graceful deadline.
            t.killAfterSeconds = budgets.deadlineSeconds * 4 + 10;
        }
        if (budgets.maxCycles > 0) {
            t.argv.push_back("--max-cycles");
            t.argv.push_back(std::to_string(budgets.maxCycles));
        }
        if (budgets.maxStates > 0) {
            t.argv.push_back("--max-states");
            t.argv.push_back(std::to_string(budgets.maxStates));
        }
        if (budgets.maxRssMb > 0) {
            t.argv.push_back("--max-rss");
            t.argv.push_back(std::to_string(budgets.maxRssMb));
        }
        t.argv.push_back("--stats-json");
        t.argv.push_back(run.reportFile);
        t.argv.push_back("--checkpoint");
        t.argv.push_back(run.checkpointFile);
        if ((run.attempt > 1 || run.resumeCheckpoint) &&
            fileExists(run.checkpointFile)) {
            t.argv.push_back("--resume");
            t.argv.push_back(run.checkpointFile);
            run.outcome.resumed = true;
        }
        if (options.stallTimeoutSeconds > 0) {
            // Heartbeat into the worker log (stderr is redirected
            // there) several times per stall window, so a live-but-
            // slow worker always grows its log under the watchdog.
            double period =
                std::max(options.stallTimeoutSeconds / 4.0, 0.05);
            std::ostringstream flag;
            flag << "--progress=" << period;
            t.argv.push_back(flag.str());
            t.stallTimeoutSeconds = options.stallTimeoutSeconds;
        }
        // Every worker streams telemetry back over the inherited pipe
        // (the scheduler puts its write end on the contract fd).
        t.telemetryPipe = true;
        t.argv.push_back("--telemetry-fd");
        t.argv.push_back(
            std::to_string(ProcessScheduler::kTelemetryChildFd));
        const std::string stem = workDir + "/" +
                                 fileStem(idx, job.name) + ".attempt" +
                                 std::to_string(run.attempt);
        if (!options.traceMergePath.empty()) {
            // The per-attempt trace becomes this job's lane in the
            // merged batch trace; a retry replaces the earlier one.
            run.traceFile = stem + ".trace.json";
            t.argv.push_back("--trace-out");
            t.argv.push_back(run.traceFile);
        }
        t.startDelaySeconds =
            ladder.backoffFor(run.attempt, jitterSeed(run.key));
        t.outputPath = stem + ".log";
        run.state = "running";
        sched.submit(std::move(t));
    };

    for (size_t i = 0; i < manifest.jobs.size(); ++i) {
        const JobSpec &job = manifest.jobs[i];
        JobRun &run = runs[i];
        run.spec = &job;
        run.key = cacheKey(job, manifest.retry, kGlifsVersion);
        run.outcome.name = job.name;
        run.outcome.cache = options.noCache ? CacheStatus::Disabled
                                            : CacheStatus::Miss;

        // Resumed batch: a job the crashed run finished is reported
        // from its journal record verbatim, and re-recorded into this
        // run's journal so a second crash still resumes everything.
        auto prior = alreadyFinished.find(static_cast<uint32_t>(i));
        if (prior != alreadyFinished.end()) {
            run.outcome = prior->second;
            run.outcome.name = job.name;
            run.fromJournal = true;
            run.state = "journal";
            journal.jobFinished(static_cast<uint32_t>(i),
                                run.outcome);
            if (options.verbose) {
                std::printf("[%s] resumed from journal: %s\n",
                            job.name.c_str(),
                            run.outcome.verdict.c_str());
            }
            continue;
        }

        if (auto cached = cache.lookup(run.key)) {
            run.outcome.cache = CacheStatus::Hit;
            run.state = "cached";
            run.outcome.verdict = "unknown-degraded";
            run.outcome.exitCode = 2;
            applyReport(run.outcome, *cached);
            size_t pos = valueStart(*cached, "exit_code");
            if (pos != std::string::npos) {
                size_t end = cached->find_first_of(",}\n", pos);
                auto v = parseInt(trim(cached->substr(
                    pos, end == std::string::npos ? end : end - pos)));
                if (v)
                    run.outcome.exitCode = static_cast<int>(*v);
            }
            journal.jobFinished(static_cast<uint32_t>(i),
                                run.outcome);
            if (options.verbose) {
                std::printf("[%s] cache hit: %s\n", job.name.c_str(),
                            run.outcome.verdict.c_str());
            }
            continue;
        }

        std::string stem = fileStem(i, job.name);
        if (!job.firmwarePath.empty()) {
            run.firmwareFile = job.firmwarePath;
        } else {
            // Materialize the registry workload for the worker.
            run.firmwareFile = workDir + "/" + stem + ".s";
            std::ofstream out(run.firmwareFile);
            out << job.firmwareText;
            if (!out)
                GLIFS_FATAL("cannot write ", run.firmwareFile);
        }
        run.checkpointFile = workDir + "/" + stem + ".ckpt";
        run.reportFile = workDir + "/" + stem + ".report.json";
        // A stale checkpoint from an earlier batch must not leak into
        // this run's first attempt — unless this *is* a resume, where
        // a crashed worker's checkpoint is exactly the state to keep.
        if (options.resumeJournalPath.empty())
            std::remove(run.checkpointFile.c_str());
        else
            run.resumeCheckpoint = fileExists(run.checkpointFile);
        journal.jobStarted(static_cast<uint32_t>(i), job.name,
                           run.key);
        submitAttempt(i);
    }

    // First snapshot before any worker reports: cache/journal
    // verdicts and queued jobs are visible immediately.
    status.publish(true);

    sched.run([&](const ProcResult &res) {
        size_t idx = static_cast<size_t>(res.id);
        JobRun &run = runs[idx];
        JobOutcome &out = run.outcome;
        out.wallSeconds += res.wallSeconds;

        // Map abnormal ends onto the exit-code contract: a backstop
        // or watchdog kill is a degraded run (retryable, and the
        // SIGTERM gave the worker a checkpoint to resume); a crash,
        // spawn failure or exec failure is a hard per-job error.
        int code;
        if (res.spawnFailed) {
            code = 3;
            out.detail = "could not spawn worker (fork kept failing)";
        } else if (res.stalled) {
            code = 2;
            out.detail = "killed by stall watchdog (no progress)";
        } else if (res.killedOnTimeout) {
            code = 2;
            out.detail = "killed by scheduler backstop timeout";
        } else if (res.crashed) {
            code = 3;
            out.detail = "worker crashed (signal)";
        } else if (res.exitCode == 127) {
            code = 3;
            out.detail = "cannot exec " + options.auditBinary;
        } else {
            code = res.exitCode;
        }

        if (ladder.shouldRetry(code, run.attempt)) {
            if (options.verbose) {
                std::printf("[%s] attempt %u degraded; retrying with "
                            "x%.0f budgets%s\n",
                            out.name.c_str(), run.attempt,
                            std::pow(ladder.config().multiplier,
                                     run.attempt),
                            fileExists(run.checkpointFile)
                                ? " (resuming from checkpoint)"
                                : "");
            }
            submitAttempt(idx);
            return;
        }

        out.attempts = run.attempt;
        out.exitCode = code;
        switch (code) {
          case 0: out.verdict = "secure"; break;
          case 1: out.verdict = "violations"; break;
          case 2: out.verdict = "unknown-degraded"; break;
          default: out.verdict = "error"; break;
        }
        std::string rep = readFileIfAny(run.reportFile);
        if (!rep.empty()) {
            applyReport(out, rep);
            if (code <= 1 && cache.store(run.key, rep))
                journal.cachePublished(static_cast<uint32_t>(idx),
                                       run.key);
        }
        journal.jobFinished(static_cast<uint32_t>(idx), out);
        run.state = "finished";
        // Fold this worker's last stats sample into the fleet rollup.
        for (const auto &[name, value] : run.lastStats)
            report.workerStats[name] += value;
        status.publish(true);
        if (options.verbose) {
            std::printf("[%s] %s (exit %d, %u attempt(s), %.2fs)\n",
                        out.name.c_str(), out.verdict.c_str(), code,
                        out.attempts, out.wallSeconds);
        }
    });

    status.publish(true);

    if (!options.traceMergePath.empty()) {
        mergeTraces(runs, options.traceMergePath);
        if (options.verbose) {
            std::printf("merged batch trace written to %s (one pid "
                        "lane per job; open in Perfetto)\n",
                        options.traceMergePath.c_str());
        }
    }

    for (JobRun &run : runs)
        report.jobs.push_back(std::move(run.outcome));
    report.wallSeconds =
        std::chrono::duration<double>(Clock::now() - batchStart)
            .count();
    return report;
}

} // namespace glifs::batch
