/**
 * @file
 * Process-parallel worker scheduler for batch verification
 * (docs/BATCH.md).
 *
 * Workers are separate `glifs_audit` processes (fork/exec), not
 * threads: the engine's stats registry, tracer and governor stop flag
 * are process-global, so process isolation gives full parallelism —
 * and crash isolation — with zero engine re-entrancy work. The
 * scheduler keeps up to `jobs` workers running, reaps them as they
 * finish, and reports each worker's exit status and wall time to a
 * completion callback, which may submit follow-up work (that is how
 * the retry ladder re-queues escalated attempts).
 *
 * Failure hardening (docs/ROBUSTNESS.md, "Crash recovery"):
 *
 *   - fork() transients (EAGAIN/ENOMEM) are retried with capped
 *     exponential backoff; only a persistently unforkable task is
 *     surfaced, as a `spawnFailed` result, never a fatal abort;
 *   - the reap loop is EINTR-safe and treats unexpected waitpid
 *     errors as a crashed worker rather than an invariant violation;
 *   - a per-task progress watchdog watches the worker's log file
 *     (where the governor heartbeat lands) and escalates
 *     SIGTERM → SIGKILL on stall. SIGTERM first, because a live
 *     worker snapshots its checkpoint on SIGTERM — the watchdog
 *     recovers wedged workers without losing their state. This is
 *     distinct from `killAfterSeconds`, the wall-clock SIGKILL
 *     backstop.
 *
 * Per-job analysis timeouts are the worker's own `--deadline` budget
 * (the engine degrades gracefully and exits 2); the scheduler's
 * `killAfterSeconds` is only a last-resort backstop for a worker that
 * stops making progress entirely, and such a kill is reported like a
 * degraded run so the ladder can retry it.
 */

#ifndef GLIFS_BATCH_SCHEDULER_HH
#define GLIFS_BATCH_SCHEDULER_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "base/telemetry.hh"

namespace glifs::batch
{

/** One process to run. */
struct ProcTask
{
    uint64_t id = 0;                 ///< caller's correlation tag
    std::vector<std::string> argv;   ///< argv[0] = executable path
    std::string outputPath;          ///< stdout+stderr log ("" = inherit)
    double killAfterSeconds = 0;     ///< SIGKILL backstop (0 = never)
    /**
     * Give the worker a telemetry pipe: the write end is dup2'd onto
     * fd kTelemetryChildFd in the child (so the caller can bake
     * `--telemetry-fd 3` into argv), the read end is multiplexed by
     * the scheduler and decoded events reach the telemetry sink. If
     * the pipe cannot be created the worker just runs without one —
     * its writer self-disables on the dead fd.
     */
    bool telemetryPipe = false;
    /**
     * Stall watchdog (0 = off): if `outputPath` stops growing for this
     * many seconds the worker is presumed wedged and SIGTERMed (it can
     * still checkpoint); SIGKILL follows if it ignores the SIGTERM.
     * Only meaningful when the worker emits a heartbeat into its log
     * (`--progress`) faster than this period.
     */
    double stallTimeoutSeconds = 0;
    /** Earliest start, seconds after submit (retry backoff jitter). */
    double startDelaySeconds = 0;
};

/** What happened to one process. */
struct ProcResult
{
    uint64_t id = 0;
    /** Exit code 0..255; -1 when the process did not exit normally. */
    int exitCode = -1;
    bool killedOnTimeout = false;    ///< we SIGKILLed it (backstop)
    bool stalled = false;            ///< stall watchdog escalated on it
    bool crashed = false;            ///< died on a signal (not ours)
    bool spawnFailed = false;        ///< fork kept failing; never ran
    double wallSeconds = 0;          ///< spawn-to-reap wall time
};

class ProcessScheduler
{
  public:
    using DoneFn = std::function<void(const ProcResult &)>;
    /** Decoded telemetry event from the worker running task @p id. */
    using TelemetryFn =
        std::function<void(uint64_t id, const telemetry::Event &)>;

    /** @param jobs max concurrently running workers (>= 1). */
    explicit ProcessScheduler(unsigned jobs);

    /** Queue a task (legal both before run() and from onDone). */
    void submit(ProcTask task);

    /**
     * Receive decoded telemetry events, in arrival order, from this
     * thread (interleaved with onDone calls). Events also feed the
     * stall watchdog: a worker whose telemetry still flows is never
     * presumed wedged, even if its log stops growing.
     */
    void setTelemetrySink(TelemetryFn fn) { telemetryFn = std::move(fn); }

    /**
     * Run until the queue and all workers drain. @p onDone fires in
     * reap order, once per finished task, from this thread.
     */
    void run(const DoneFn &onDone);

    unsigned concurrency() const { return jobs; }

    /** How long a SIGTERMed staller gets before the SIGKILL. */
    static constexpr double kTermGraceSeconds = 5.0;

    /** The fd the telemetry pipe's write end lands on in the child. */
    static constexpr int kTelemetryChildFd = 3;

  private:
    struct Running;

    /** A task waiting to launch (possibly delayed by backoff). */
    struct Queued
    {
        ProcTask task;
        std::chrono::steady_clock::time_point submitted;
    };

    /** Fork/exec @p task; false if fork failed past the retry cap. */
    bool spawn(ProcTask task, std::vector<Running> &running);
    void watchdog(Running &r);
    /** Non-blocking read+decode of one worker's pipe; true if bytes
     *  arrived. Closes the fd on EOF or error. */
    bool drainTelemetry(Running &r);
    /** poll(2) on the live telemetry fds instead of a blind sleep. */
    void idleWait(const std::vector<Running> &running);

    unsigned jobs;
    std::deque<Queued> pending;
    TelemetryFn telemetryFn;
};

} // namespace glifs::batch

#endif // GLIFS_BATCH_SCHEDULER_HH
