/**
 * @file
 * Process-parallel worker scheduler for batch verification
 * (docs/BATCH.md).
 *
 * Workers are separate `glifs_audit` processes (fork/exec), not
 * threads: the engine's stats registry, tracer and governor stop flag
 * are process-global, so process isolation gives full parallelism —
 * and crash isolation — with zero engine re-entrancy work. The
 * scheduler keeps up to `jobs` workers running, reaps them as they
 * finish, and reports each worker's exit status and wall time to a
 * completion callback, which may submit follow-up work (that is how
 * the retry ladder re-queues escalated attempts).
 *
 * Per-job analysis timeouts are the worker's own `--deadline` budget
 * (the engine degrades gracefully and exits 2); the scheduler's
 * `killAfterSeconds` is only a last-resort backstop for a worker that
 * stops making progress entirely, and such a kill is reported like a
 * degraded run so the ladder can retry it.
 */

#ifndef GLIFS_BATCH_SCHEDULER_HH
#define GLIFS_BATCH_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace glifs::batch
{

/** One process to run. */
struct ProcTask
{
    uint64_t id = 0;                 ///< caller's correlation tag
    std::vector<std::string> argv;   ///< argv[0] = executable path
    std::string outputPath;          ///< stdout+stderr log ("" = inherit)
    double killAfterSeconds = 0;     ///< SIGKILL backstop (0 = never)
};

/** What happened to one process. */
struct ProcResult
{
    uint64_t id = 0;
    /** Exit code 0..255; -1 when the process did not exit normally. */
    int exitCode = -1;
    bool killedOnTimeout = false;    ///< we SIGKILLed it (backstop)
    bool crashed = false;            ///< died on a signal (not ours)
    double wallSeconds = 0;          ///< spawn-to-reap wall time
};

class ProcessScheduler
{
  public:
    using DoneFn = std::function<void(const ProcResult &)>;

    /** @param jobs max concurrently running workers (>= 1). */
    explicit ProcessScheduler(unsigned jobs);

    /** Queue a task (legal both before run() and from onDone). */
    void submit(ProcTask task);

    /**
     * Run until the queue and all workers drain. @p onDone fires in
     * reap order, once per finished task, from this thread.
     */
    void run(const DoneFn &onDone);

    unsigned concurrency() const { return jobs; }

  private:
    struct Running;

    void spawn(ProcTask task, std::vector<Running> &running);

    unsigned jobs;
    std::deque<ProcTask> pending;
};

} // namespace glifs::batch

#endif // GLIFS_BATCH_SCHEDULER_HH
