/**
 * @file
 * Content-addressed result cache for batch verification
 * (docs/BATCH.md).
 *
 * A verdict is a pure function of the analysis inputs, so the cache
 * key is the SHA-256 of exactly those inputs: the firmware *text*, the
 * policy *text*, the canonical budget + retry configuration, and the
 * tool version (src/base/version.hh). Paths, job names and manifest
 * ordering deliberately do not participate: renaming a job or moving a
 * file never invalidates its verdict, while touching one byte of
 * firmware always does.
 *
 * Storage is one file per key under the cache directory
 * (`.glifs-cache/` by default): `<hex-key>.json` holding a one-line
 * integrity header (`glifs-cache-v2 <sha256> <size>`) followed by the
 * worker's `glifs.run_report.v1` report verbatim. Only *definitive*
 * outcomes (exit 0 secure / exit 1 violations) are stored — a degraded
 * exit 2 answer is a budget artifact, not a property of the inputs,
 * and re-running it is the useful behaviour.
 *
 * Lookups verify the header before trusting the payload: a truncated,
 * bit-flipped or torn entry is evicted and served as a clean miss
 * (`batch.cache_integrity_misses`), never a crash and never a stale
 * verdict handed to a report.
 */

#ifndef GLIFS_BATCH_CACHE_HH
#define GLIFS_BATCH_CACHE_HH

#include <optional>
#include <string>

#include "batch/manifest.hh"

namespace glifs::batch
{

/** The default cache directory (relative to the working directory). */
inline const char *const kDefaultCacheDir = ".glifs-cache";

/** Temp files younger than this survive the open-time sweep — they
 *  may belong to a live concurrent writer mid-publish. */
inline constexpr long kStaleTmpSeconds = 3600;

/** SHA-256 cache key of one job (see file comment for the recipe). */
std::string cacheKey(const JobSpec &job, const RetryConfig &retry,
                     const std::string &toolVersion);

class ResultCache
{
  public:
    /**
     * @param dir      cache directory (created lazily on first store)
     * @param enabled  false = every lookup misses and stores are
     *                 dropped (the `--no-cache` behaviour)
     *
     * Opening an enabled cache sweeps stale `*.tmp.<pid>` files left
     * by writers that died before publishing — but only ones older
     * than kStaleTmpSeconds, so a live concurrent writer's temp file
     * is never yanked out from under it.
     */
    explicit ResultCache(std::string dir, bool enabled = true);

    /**
     * Cached run-report JSON for @p key, if present and its integrity
     * header verifies; a corrupt entry is evicted and misses.
     */
    std::optional<std::string> lookup(const std::string &key) const;

    /**
     * Store a run report under @p key. Written via a temp file +
     * rename so concurrent batch runs never observe a torn entry.
     * Best-effort: a failed store warns and bumps
     * `batch.cache_publish_failures` instead of aborting the batch
     * (the result is already computed; only the reuse is lost).
     *
     * @return true when the entry was durably published — the signal
     *         the batch journal uses for `cache published` records.
     */
    bool store(const std::string &key, const std::string &reportJson);

    /** Where @p key lives (whether or not it exists yet). */
    std::string entryPath(const std::string &key) const;

    const std::string &dir() const { return cacheDir; }
    bool enabled() const { return isEnabled; }

  private:
    std::string cacheDir;
    bool isEnabled;

    /** Remove leftover `*.tmp.<pid>` files from dead writers. */
    void sweepStaleTmp() const;
};

} // namespace glifs::batch

#endif // GLIFS_BATCH_CACHE_HH
