#include "batch/scheduler.hh"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "base/logging.hh"

namespace glifs::batch
{

using Clock = std::chrono::steady_clock;

struct ProcessScheduler::Running
{
    ProcTask task;
    pid_t pid = -1;
    Clock::time_point started;
    bool killed = false;
};

ProcessScheduler::ProcessScheduler(unsigned jobs)
    : jobs(jobs > 0 ? jobs : 1)
{}

void
ProcessScheduler::submit(ProcTask task)
{
    GLIFS_ASSERT(!task.argv.empty(), "ProcTask needs an argv");
    pending.push_back(std::move(task));
}

void
ProcessScheduler::spawn(ProcTask task, std::vector<Running> &running)
{
    // Build the char* view before forking; the vector owns the bytes.
    std::vector<char *> argv;
    argv.reserve(task.argv.size() + 1);
    for (std::string &arg : task.argv)
        argv.push_back(arg.data());
    argv.push_back(nullptr);

    pid_t pid = ::fork();
    if (pid < 0)
        GLIFS_FATAL("fork failed: ", std::strerror(errno));
    if (pid == 0) {
        // Child: redirect stdout+stderr to the worker log, then exec.
        // Only async-signal-safe calls from here on.
        if (!task.outputPath.empty()) {
            int fd = ::open(task.outputPath.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC, 0644);
            if (fd >= 0) {
                ::dup2(fd, STDOUT_FILENO);
                ::dup2(fd, STDERR_FILENO);
                if (fd > STDERR_FILENO)
                    ::close(fd);
            }
        }
        ::execv(argv[0], argv.data());
        _exit(127); // exec failed; reported as a crash-free exit 127
    }

    Running r;
    r.task = std::move(task);
    r.pid = pid;
    r.started = Clock::now();
    running.push_back(std::move(r));
}

void
ProcessScheduler::run(const DoneFn &onDone)
{
    std::vector<Running> running;

    while (!pending.empty() || !running.empty()) {
        while (!pending.empty() && running.size() < jobs) {
            ProcTask t = std::move(pending.front());
            pending.pop_front();
            spawn(std::move(t), running);
        }

        bool reaped = false;
        for (size_t i = 0; i < running.size();) {
            Running &r = running[i];
            int status = 0;
            pid_t got = ::waitpid(r.pid, &status, WNOHANG);
            if (got == 0) {
                // Still going; apply the kill backstop if overdue.
                double elapsed =
                    std::chrono::duration<double>(Clock::now() -
                                                  r.started)
                        .count();
                if (!r.killed && r.task.killAfterSeconds > 0 &&
                    elapsed > r.task.killAfterSeconds) {
                    ::kill(r.pid, SIGKILL);
                    r.killed = true;
                }
                ++i;
                continue;
            }
            if (got < 0 && errno == EINTR)
                continue;
            GLIFS_ASSERT(got == r.pid, "waitpid returned ", got);

            ProcResult res;
            res.id = r.task.id;
            res.wallSeconds =
                std::chrono::duration<double>(Clock::now() - r.started)
                    .count();
            if (WIFEXITED(status)) {
                res.exitCode = WEXITSTATUS(status);
            } else if (r.killed) {
                res.killedOnTimeout = true;
            } else {
                res.crashed = true;
            }
            running.erase(running.begin() + i);
            reaped = true;
            // May submit() retries; the outer loop picks them up.
            onDone(res);
        }

        if (!reaped && !running.empty())
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

} // namespace glifs::batch
