#include "batch/scheduler.hh"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "base/faultfs.hh"
#include "base/logging.hh"
#include "base/stats.hh"

namespace glifs::batch
{

namespace
{

using Clock = std::chrono::steady_clock;

struct SchedulerStats
{
    stats::Scalar forkRetries{"batch.fork_retries",
                              "transient fork failures retried with "
                              "backoff"};
    stats::Scalar spawnFailures{"batch.spawn_failures",
                                "tasks abandoned because fork kept "
                                "failing past the retry cap"};
    stats::Scalar stallSigterm{"batch.stall_sigterm",
                               "workers SIGTERMed by the progress "
                               "watchdog"};
    stats::Scalar stallSigkill{"batch.stall_sigkill",
                               "stalled workers that ignored SIGTERM "
                               "and were SIGKILLed"};
    stats::Scalar telemetryFrames{"batch.telemetry_frames",
                                  "telemetry events decoded from "
                                  "worker pipes"};
    stats::Scalar telemetryBytes{"batch.telemetry_bytes",
                                 "raw bytes read off worker telemetry "
                                 "pipes"};
    stats::Scalar telemetryCrcErrors{"batch.telemetry_crc_errors",
                                     "telemetry frames rejected for a "
                                     "CRC or payload mismatch"};
    stats::Scalar telemetryTorn{"batch.telemetry_torn_streams",
                                "worker telemetry streams that ended "
                                "in a half-written frame (killed "
                                "worker)"};
    stats::Scalar telemetryPipeFailures{"batch.telemetry_pipe_failures",
                                        "telemetry pipes that could "
                                        "not be created (worker ran "
                                        "without one)"};
};

SchedulerStats &
schedStats()
{
    static SchedulerStats s;
    return s;
}

double
secondsSince(Clock::time_point t)
{
    return std::chrono::duration<double>(Clock::now() - t).count();
}

/** Size of @p path, or -1 when it cannot be statted. */
int64_t
fileSize(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    return static_cast<int64_t>(st.st_size);
}

} // namespace

struct ProcessScheduler::Running
{
    ProcTask task;
    pid_t pid = -1;
    Clock::time_point started;
    bool killed = false;       ///< SIGKILL sent (backstop or stall)
    // Stall-watchdog state.
    Clock::time_point lastProgress;
    int64_t lastLogSize = -1;
    bool termSent = false;
    Clock::time_point termTime;
    // Telemetry-pipe state (-1 = no pipe / already closed).
    int telFd = -1;
    telemetry::Reader reader;
};

ProcessScheduler::ProcessScheduler(unsigned jobs)
    : jobs(jobs > 0 ? jobs : 1)
{}

void
ProcessScheduler::submit(ProcTask task)
{
    GLIFS_ASSERT(!task.argv.empty(), "ProcTask needs an argv");
    pending.push_back(Queued{std::move(task), Clock::now()});
}

bool
ProcessScheduler::spawn(ProcTask task, std::vector<Running> &running)
{
    // Build the char* view before forking; the vector owns the bytes.
    std::vector<char *> argv;
    argv.reserve(task.argv.size() + 1);
    for (std::string &arg : task.argv)
        argv.push_back(arg.data());
    argv.push_back(nullptr);

    // The telemetry pipe, when asked for. Failure to create one is a
    // degraded-observability event, never a failed task: the worker
    // still runs, its --telemetry-fd points at nothing, and its writer
    // self-disables on the first emit.
    int telPipe[2] = {-1, -1};
    if (task.telemetryPipe &&
        faultfs::pipe2(telPipe, O_CLOEXEC | O_NONBLOCK) != 0) {
        GLIFS_WARN("telemetry pipe for task ", task.id,
                   " failed: ", std::strerror(errno),
                   "; worker runs unobserved");
        ++schedStats().telemetryPipeFailures;
        telPipe[0] = telPipe[1] = -1;
    }

    // A loaded box can transiently refuse to fork (EAGAIN: pid/rlimit
    // pressure; ENOMEM). Backing off and retrying turns a fatal batch
    // abort into a hiccup; anything still failing after the capped
    // ladder is reported as a spawn failure for that one task.
    pid_t pid = -1;
    for (unsigned attempt = 0; attempt < 6; ++attempt) {
        if (attempt > 0) {
            ++schedStats().forkRetries;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::min(10u << (attempt - 1), 160u)));
        }
        pid = faultfs::fork();
        if (pid >= 0 ||
            (errno != EAGAIN && errno != ENOMEM && errno != EINTR))
            break;
    }
    if (pid < 0) {
        GLIFS_WARN("fork failed persistently for task ", task.id,
                   ": ", std::strerror(errno));
        ++schedStats().spawnFailures;
        if (telPipe[0] >= 0) {
            ::close(telPipe[0]);
            ::close(telPipe[1]);
        }
        return false;
    }
    if (pid == 0) {
        // Child: plant the telemetry write end on its contract fd
        // *before* the log redirect (open() hands out the lowest free
        // fd and must not claim it), then redirect stdout+stderr and
        // exec. Only async-signal-safe calls from here on.
        if (telPipe[1] >= 0) {
            if (telPipe[1] != kTelemetryChildFd) {
                // dup2 clears O_CLOEXEC on the duplicate; the
                // original CLOEXEC ends vanish at exec.
                ::dup2(telPipe[1], kTelemetryChildFd);
            } else {
                // Already on the contract fd: dup2(fd, fd) would keep
                // O_CLOEXEC set, so clear it explicitly.
                ::fcntl(telPipe[1], F_SETFD, 0);
            }
        }
        if (!task.outputPath.empty()) {
            int fd = ::open(task.outputPath.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC, 0644);
            if (fd >= 0) {
                ::dup2(fd, STDOUT_FILENO);
                ::dup2(fd, STDERR_FILENO);
                if (fd > STDERR_FILENO)
                    ::close(fd);
            }
        }
        ::execv(argv[0], argv.data());
        _exit(127); // exec failed; reported as a crash-free exit 127
    }

    if (telPipe[1] >= 0)
        ::close(telPipe[1]); // parent keeps only the read end

    Running r;
    r.task = std::move(task);
    r.pid = pid;
    r.started = Clock::now();
    r.lastProgress = r.started;
    r.telFd = telPipe[0];
    running.push_back(std::move(r));
    return true;
}

/**
 * Drain one worker's telemetry pipe without blocking: decode whatever
 * arrived, hand events to the sink, and treat any arriving bytes as
 * liveness for the stall watchdog (a worker that still heartbeats
 * over the pipe is reaching its governor poll point even if its log
 * is quiet). EOF or a hard read error retires the fd.
 */
bool
ProcessScheduler::drainTelemetry(Running &r)
{
    if (r.telFd < 0)
        return false;

    bool gotBytes = false;
    std::vector<telemetry::Event> events;
    char buf[4096];
    while (true) {
        ssize_t n = faultfs::read(r.telFd, buf, sizeof(buf));
        if (n > 0) {
            gotBytes = true;
            schedStats().telemetryBytes.inc(
                static_cast<uint64_t>(n));
            uint64_t before = r.reader.crcErrors();
            events.clear();
            r.reader.feed(buf, static_cast<size_t>(n), events);
            schedStats().telemetryCrcErrors.inc(
                r.reader.crcErrors() - before);
            schedStats().telemetryFrames.inc(events.size());
            if (telemetryFn) {
                for (const telemetry::Event &e : events)
                    telemetryFn(r.task.id, e);
            }
            continue;
        }
        if (n == 0) {
            // EOF: the worker (and every dup of the write end) is
            // gone. A residual partial frame means it died mid-write.
            if (r.reader.finish() || r.reader.poisoned())
                ++schedStats().telemetryTorn;
            ::close(r.telFd);
            r.telFd = -1;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break; // drained for now; worker still alive
        GLIFS_WARN("telemetry read from worker ", r.pid,
                   " failed: ", std::strerror(errno));
        ::close(r.telFd);
        r.telFd = -1;
        break;
    }
    if (gotBytes)
        r.lastProgress = Clock::now();
    return gotBytes;
}

/**
 * Idle wait between scheduler iterations: park in poll(2) on the live
 * telemetry fds so fresh events wake the loop immediately, falling
 * back to a fixed sleep when nothing is observable. EINTR (or an
 * injected poll fault) just ends the wait early — the main loop
 * re-derives everything from state.
 */
void
ProcessScheduler::idleWait(const std::vector<Running> &running)
{
    std::vector<struct pollfd> fds;
    for (const Running &r : running) {
        if (r.telFd >= 0)
            fds.push_back({r.telFd, POLLIN, 0});
    }
    if (fds.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return;
    }
    faultfs::poll(fds.data(), fds.size(), 10);
}

/**
 * Stall detection: the worker's heartbeat (and all its other output)
 * lands in its log file, so a log that stops growing for the stall
 * timeout means the worker is no longer reaching its governor poll
 * point — wedged, not just slow. Escalate SIGTERM (the worker
 * checkpoints and exits like any governed stop) and, after a grace
 * period, SIGKILL. Both are distinct from the wall-clock backstop:
 * a slow-but-heartbeating worker is never touched by the watchdog.
 */
void
ProcessScheduler::watchdog(Running &r)
{
    if (r.killed)
        return;

    const double elapsed = secondsSince(r.started);
    if (r.task.killAfterSeconds > 0 &&
        elapsed > r.task.killAfterSeconds) {
        ::kill(r.pid, SIGKILL);
        r.killed = true;
        return;
    }

    if (r.task.stallTimeoutSeconds <= 0 || r.task.outputPath.empty())
        return;

    if (r.termSent) {
        if (secondsSince(r.termTime) > kTermGraceSeconds) {
            GLIFS_WARN("worker ", r.pid,
                       " ignored the stall SIGTERM; sending SIGKILL");
            ::kill(r.pid, SIGKILL);
            r.killed = true;
            ++schedStats().stallSigkill;
        }
        return;
    }

    int64_t size = fileSize(r.task.outputPath);
    if (size != r.lastLogSize) {
        r.lastLogSize = size;
        r.lastProgress = Clock::now();
        return;
    }
    if (secondsSince(r.lastProgress) > r.task.stallTimeoutSeconds) {
        GLIFS_WARN("worker ", r.pid, " made no progress for ",
                   r.task.stallTimeoutSeconds,
                   "s; sending SIGTERM (checkpoint-then-exit)");
        ::kill(r.pid, SIGTERM);
        r.termSent = true;
        r.termTime = Clock::now();
        ++schedStats().stallSigterm;
    }
}

void
ProcessScheduler::run(const DoneFn &onDone)
{
    std::vector<Running> running;

    while (!pending.empty() || !running.empty()) {
        // Launch ready tasks; rotate delayed ones to the back so a
        // backoff at the queue head never blocks ready work.
        size_t considered = pending.size();
        while (considered-- > 0 && !pending.empty() &&
               running.size() < jobs) {
            Queued q = std::move(pending.front());
            pending.pop_front();
            if (q.task.startDelaySeconds > 0 &&
                secondsSince(q.submitted) < q.task.startDelaySeconds) {
                pending.push_back(std::move(q));
                continue;
            }
            uint64_t id = q.task.id;
            if (!spawn(std::move(q.task), running)) {
                ProcResult res;
                res.id = id;
                res.spawnFailed = true;
                onDone(res);
            }
        }

        // Pull telemetry before the reap so the watchdog sees fresh
        // heartbeats, and events for a job precede its done callback.
        for (Running &r : running)
            drainTelemetry(r);

        bool reaped = false;
        for (size_t i = 0; i < running.size();) {
            Running &r = running[i];
            int status = 0;
            pid_t got = faultfs::waitpid(r.pid, &status, WNOHANG);
            if (got == 0) {
                watchdog(r);
                ++i;
                continue;
            }
            if (got < 0) {
                if (errno == EINTR)
                    continue; // retry the same pid
                // ECHILD or another surprise: the child is gone and
                // unreapable. Report a crash instead of asserting —
                // losing one worker must not lose the batch.
                GLIFS_WARN("waitpid(", r.pid, ") failed: ",
                           std::strerror(errno),
                           "; treating worker as crashed");
                ProcResult res;
                res.id = r.task.id;
                res.crashed = true;
                res.stalled = r.termSent;
                res.wallSeconds = secondsSince(r.started);
                if (r.telFd >= 0) {
                    drainTelemetry(r);
                    if (r.telFd >= 0) {
                        ::close(r.telFd);
                        r.telFd = -1;
                    }
                }
                running.erase(running.begin() + i);
                reaped = true;
                onDone(res);
                continue;
            }
            GLIFS_ASSERT(got == r.pid, "waitpid returned ", got);

            ProcResult res;
            res.id = r.task.id;
            res.wallSeconds = secondsSince(r.started);
            if (WIFEXITED(status)) {
                // A worker that caught the stall SIGTERM and exited
                // normally speaks for itself; its exit code stands.
                res.exitCode = WEXITSTATUS(status);
            } else if (r.termSent) {
                // Died on our SIGTERM/SIGKILL stall escalation.
                res.stalled = true;
            } else if (r.killed) {
                res.killedOnTimeout = true;
            } else {
                res.crashed = true;
            }
            // The write end is closed, so everything the worker ever
            // managed to send is sitting in the pipe: drain to EOF so
            // its final lifecycle/stats frames land before onDone.
            if (r.telFd >= 0) {
                drainTelemetry(r);
                if (r.telFd >= 0) {
                    ::close(r.telFd);
                    r.telFd = -1;
                }
            }
            running.erase(running.begin() + i);
            reaped = true;
            // May submit() retries; the outer loop picks them up.
            onDone(res);
        }

        if (!reaped && (!running.empty() || !pending.empty()))
            idleWait(running);
    }
}

} // namespace glifs::batch
