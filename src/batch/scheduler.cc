#include "batch/scheduler.hh"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "base/faultfs.hh"
#include "base/logging.hh"
#include "base/stats.hh"

namespace glifs::batch
{

namespace
{

using Clock = std::chrono::steady_clock;

struct SchedulerStats
{
    stats::Scalar forkRetries{"batch.fork_retries",
                              "transient fork failures retried with "
                              "backoff"};
    stats::Scalar spawnFailures{"batch.spawn_failures",
                                "tasks abandoned because fork kept "
                                "failing past the retry cap"};
    stats::Scalar stallSigterm{"batch.stall_sigterm",
                               "workers SIGTERMed by the progress "
                               "watchdog"};
    stats::Scalar stallSigkill{"batch.stall_sigkill",
                               "stalled workers that ignored SIGTERM "
                               "and were SIGKILLed"};
};

SchedulerStats &
schedStats()
{
    static SchedulerStats s;
    return s;
}

double
secondsSince(Clock::time_point t)
{
    return std::chrono::duration<double>(Clock::now() - t).count();
}

/** Size of @p path, or -1 when it cannot be statted. */
int64_t
fileSize(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    return static_cast<int64_t>(st.st_size);
}

} // namespace

struct ProcessScheduler::Running
{
    ProcTask task;
    pid_t pid = -1;
    Clock::time_point started;
    bool killed = false;       ///< SIGKILL sent (backstop or stall)
    // Stall-watchdog state.
    Clock::time_point lastProgress;
    int64_t lastLogSize = -1;
    bool termSent = false;
    Clock::time_point termTime;
};

ProcessScheduler::ProcessScheduler(unsigned jobs)
    : jobs(jobs > 0 ? jobs : 1)
{}

void
ProcessScheduler::submit(ProcTask task)
{
    GLIFS_ASSERT(!task.argv.empty(), "ProcTask needs an argv");
    pending.push_back(Queued{std::move(task), Clock::now()});
}

bool
ProcessScheduler::spawn(ProcTask task, std::vector<Running> &running)
{
    // Build the char* view before forking; the vector owns the bytes.
    std::vector<char *> argv;
    argv.reserve(task.argv.size() + 1);
    for (std::string &arg : task.argv)
        argv.push_back(arg.data());
    argv.push_back(nullptr);

    // A loaded box can transiently refuse to fork (EAGAIN: pid/rlimit
    // pressure; ENOMEM). Backing off and retrying turns a fatal batch
    // abort into a hiccup; anything still failing after the capped
    // ladder is reported as a spawn failure for that one task.
    pid_t pid = -1;
    for (unsigned attempt = 0; attempt < 6; ++attempt) {
        if (attempt > 0) {
            ++schedStats().forkRetries;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::min(10u << (attempt - 1), 160u)));
        }
        pid = faultfs::fork();
        if (pid >= 0 ||
            (errno != EAGAIN && errno != ENOMEM && errno != EINTR))
            break;
    }
    if (pid < 0) {
        GLIFS_WARN("fork failed persistently for task ", task.id,
                   ": ", std::strerror(errno));
        ++schedStats().spawnFailures;
        return false;
    }
    if (pid == 0) {
        // Child: redirect stdout+stderr to the worker log, then exec.
        // Only async-signal-safe calls from here on.
        if (!task.outputPath.empty()) {
            int fd = ::open(task.outputPath.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC, 0644);
            if (fd >= 0) {
                ::dup2(fd, STDOUT_FILENO);
                ::dup2(fd, STDERR_FILENO);
                if (fd > STDERR_FILENO)
                    ::close(fd);
            }
        }
        ::execv(argv[0], argv.data());
        _exit(127); // exec failed; reported as a crash-free exit 127
    }

    Running r;
    r.task = std::move(task);
    r.pid = pid;
    r.started = Clock::now();
    r.lastProgress = r.started;
    running.push_back(std::move(r));
    return true;
}

/**
 * Stall detection: the worker's heartbeat (and all its other output)
 * lands in its log file, so a log that stops growing for the stall
 * timeout means the worker is no longer reaching its governor poll
 * point — wedged, not just slow. Escalate SIGTERM (the worker
 * checkpoints and exits like any governed stop) and, after a grace
 * period, SIGKILL. Both are distinct from the wall-clock backstop:
 * a slow-but-heartbeating worker is never touched by the watchdog.
 */
void
ProcessScheduler::watchdog(Running &r)
{
    if (r.killed)
        return;

    const double elapsed = secondsSince(r.started);
    if (r.task.killAfterSeconds > 0 &&
        elapsed > r.task.killAfterSeconds) {
        ::kill(r.pid, SIGKILL);
        r.killed = true;
        return;
    }

    if (r.task.stallTimeoutSeconds <= 0 || r.task.outputPath.empty())
        return;

    if (r.termSent) {
        if (secondsSince(r.termTime) > kTermGraceSeconds) {
            GLIFS_WARN("worker ", r.pid,
                       " ignored the stall SIGTERM; sending SIGKILL");
            ::kill(r.pid, SIGKILL);
            r.killed = true;
            ++schedStats().stallSigkill;
        }
        return;
    }

    int64_t size = fileSize(r.task.outputPath);
    if (size != r.lastLogSize) {
        r.lastLogSize = size;
        r.lastProgress = Clock::now();
        return;
    }
    if (secondsSince(r.lastProgress) > r.task.stallTimeoutSeconds) {
        GLIFS_WARN("worker ", r.pid, " made no progress for ",
                   r.task.stallTimeoutSeconds,
                   "s; sending SIGTERM (checkpoint-then-exit)");
        ::kill(r.pid, SIGTERM);
        r.termSent = true;
        r.termTime = Clock::now();
        ++schedStats().stallSigterm;
    }
}

void
ProcessScheduler::run(const DoneFn &onDone)
{
    std::vector<Running> running;

    while (!pending.empty() || !running.empty()) {
        // Launch ready tasks; rotate delayed ones to the back so a
        // backoff at the queue head never blocks ready work.
        size_t considered = pending.size();
        while (considered-- > 0 && !pending.empty() &&
               running.size() < jobs) {
            Queued q = std::move(pending.front());
            pending.pop_front();
            if (q.task.startDelaySeconds > 0 &&
                secondsSince(q.submitted) < q.task.startDelaySeconds) {
                pending.push_back(std::move(q));
                continue;
            }
            uint64_t id = q.task.id;
            if (!spawn(std::move(q.task), running)) {
                ProcResult res;
                res.id = id;
                res.spawnFailed = true;
                onDone(res);
            }
        }

        bool reaped = false;
        for (size_t i = 0; i < running.size();) {
            Running &r = running[i];
            int status = 0;
            pid_t got = faultfs::waitpid(r.pid, &status, WNOHANG);
            if (got == 0) {
                watchdog(r);
                ++i;
                continue;
            }
            if (got < 0) {
                if (errno == EINTR)
                    continue; // retry the same pid
                // ECHILD or another surprise: the child is gone and
                // unreapable. Report a crash instead of asserting —
                // losing one worker must not lose the batch.
                GLIFS_WARN("waitpid(", r.pid, ") failed: ",
                           std::strerror(errno),
                           "; treating worker as crashed");
                ProcResult res;
                res.id = r.task.id;
                res.crashed = true;
                res.stalled = r.termSent;
                res.wallSeconds = secondsSince(r.started);
                running.erase(running.begin() + i);
                reaped = true;
                onDone(res);
                continue;
            }
            GLIFS_ASSERT(got == r.pid, "waitpid returned ", got);

            ProcResult res;
            res.id = r.task.id;
            res.wallSeconds = secondsSince(r.started);
            if (WIFEXITED(status)) {
                // A worker that caught the stall SIGTERM and exited
                // normally speaks for itself; its exit code stands.
                res.exitCode = WEXITSTATUS(status);
            } else if (r.termSent) {
                // Died on our SIGTERM/SIGKILL stall escalation.
                res.stalled = true;
            } else if (r.killed) {
                res.killedOnTimeout = true;
            } else {
                res.crashed = true;
            }
            running.erase(running.begin() + i);
            reaped = true;
            // May submit() retries; the outer loop picks them up.
            onDone(res);
        }

        if (!reaped && !running.empty())
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        else if (!reaped && running.empty() && !pending.empty())
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

} // namespace glifs::batch
