#include "batch/retry.hh"

#include <cmath>
#include <limits>

namespace glifs::batch
{

namespace
{

uint64_t
scaleCount(uint64_t base, double factor)
{
    if (base == 0)
        return 0;
    double scaled = static_cast<double>(base) * factor;
    double limit =
        static_cast<double>(std::numeric_limits<uint64_t>::max());
    if (scaled >= limit)
        return std::numeric_limits<uint64_t>::max();
    return static_cast<uint64_t>(scaled);
}

} // namespace

bool
RetryLadder::shouldRetry(int exitCode, unsigned attempt) const
{
    return exitCode == 2 && attempt < cfg.maxAttempts;
}

JobBudgets
RetryLadder::budgetsFor(const JobBudgets &base, unsigned attempt) const
{
    double factor =
        std::pow(cfg.multiplier,
                 static_cast<double>(attempt > 0 ? attempt - 1 : 0));
    JobBudgets b;
    b.deadlineSeconds =
        base.deadlineSeconds > 0 ? base.deadlineSeconds * factor : 0;
    b.maxCycles = scaleCount(base.maxCycles, factor);
    b.maxStates = scaleCount(base.maxStates, factor);
    b.maxRssMb = scaleCount(base.maxRssMb, factor);
    return b;
}

} // namespace glifs::batch
