#include "batch/retry.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace glifs::batch
{

namespace
{

uint64_t
scaleCount(uint64_t base, double factor)
{
    if (base == 0)
        return 0;
    double scaled = static_cast<double>(base) * factor;
    double limit =
        static_cast<double>(std::numeric_limits<uint64_t>::max());
    if (scaled >= limit)
        return std::numeric_limits<uint64_t>::max();
    return static_cast<uint64_t>(scaled);
}

} // namespace

bool
RetryLadder::shouldRetry(int exitCode, unsigned attempt) const
{
    return exitCode == 2 && attempt < cfg.maxAttempts;
}

double
RetryLadder::backoffFor(unsigned attempt, uint64_t seed) const
{
    if (cfg.backoffSeconds <= 0 || attempt <= 1)
        return 0;
    // Decorrelated jitter (delay_n uniform in [base, 3 * delay_n-1]),
    // replayed deterministically from a splitmix64 stream over
    // (seed, step) so the same job draws the same ladder every run.
    double delay = cfg.backoffSeconds;
    for (unsigned step = 2; step <= attempt; ++step) {
        uint64_t x = seed + 0x9e3779b97f4a7c15ULL * step;
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        double u = static_cast<double>(x >> 11) *
                   (1.0 / 9007199254740992.0); // 2^-53: u in [0, 1)
        double hi = 3.0 * delay;
        delay = cfg.backoffSeconds + u * (hi - cfg.backoffSeconds);
        delay = std::min(delay, cfg.backoffCapSeconds);
    }
    return delay;
}

JobBudgets
RetryLadder::budgetsFor(const JobBudgets &base, unsigned attempt) const
{
    double factor =
        std::pow(cfg.multiplier,
                 static_cast<double>(attempt > 0 ? attempt - 1 : 0));
    JobBudgets b;
    b.deadlineSeconds =
        base.deadlineSeconds > 0 ? base.deadlineSeconds * factor : 0;
    b.maxCycles = scaleCount(base.maxCycles, factor);
    b.maxStates = scaleCount(base.maxStates, factor);
    b.maxRssMb = scaleCount(base.maxRssMb, factor);
    return b;
}

} // namespace glifs::batch
