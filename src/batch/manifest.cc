#include "batch/manifest.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "workloads/workload.hh"

namespace glifs::batch
{

namespace
{

/** Split a line into whitespace-separated fields, dropping comments. */
std::vector<std::string>
fields(const std::string &line)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : line) {
        if (c == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

uint64_t
number(const std::string &tok, int line)
{
    auto v = parseInt(tok);
    if (!v || *v <= 0)
        GLIFS_FATAL("manifest line ", line, ": expected a positive "
                    "number, got '", tok, "'");
    return static_cast<uint64_t>(*v);
}

double
positiveReal(const std::string &tok, int line)
{
    char *end = nullptr;
    double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0' || v <= 0)
        GLIFS_FATAL("manifest line ", line, ": expected a positive "
                    "duration, got '", tok, "'");
    return v;
}

std::string
resolvePath(const std::string &baseDir, const std::string &path)
{
    if (baseDir.empty() || path.empty() || path[0] == '/')
        return path;
    return baseDir + "/" + path;
}

std::string
readFileOr(const std::string &path, int line)
{
    std::ifstream in(path);
    if (!in)
        GLIFS_FATAL("manifest line ", line, ": cannot open ", path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

/**
 * Apply one `<budget> <value>` directive; true if @p kw named a
 * budget dimension (shared by `default` lines and job-block lines).
 */
bool
applyBudget(JobBudgets &b, const std::string &kw,
            const std::string &val, int line)
{
    if (kw == "deadline")
        b.deadlineSeconds = positiveReal(val, line);
    else if (kw == "max-cycles")
        b.maxCycles = number(val, line);
    else if (kw == "max-states")
        b.maxStates = number(val, line);
    else if (kw == "max-rss")
        b.maxRssMb = number(val, line);
    else
        return false;
    return true;
}

} // namespace

std::string
JobBudgets::canonical() const
{
    std::ostringstream oss;
    oss << "deadline=" << deadlineSeconds << ";cycles=" << maxCycles
        << ";states=" << maxStates << ";rss_mb=" << maxRssMb;
    return oss.str();
}

std::string
RetryConfig::canonical() const
{
    std::ostringstream oss;
    oss << "mult=" << multiplier << ";attempts=" << maxAttempts;
    return oss.str();
}

Manifest
parseManifest(const std::string &text, const std::string &baseDir)
{
    Manifest m;
    JobBudgets defaults;
    JobSpec *cur = nullptr;    // job block being filled, if any
    int curLine = 0;           // where that block started

    // Each job must end up with exactly one firmware source; checked
    // when the block closes so the diagnostic cites the `job` line.
    auto closeJob = [&]() {
        if (!cur)
            return;
        if (cur->workload.empty() && cur->firmwarePath.empty())
            GLIFS_FATAL("manifest line ", curLine, ": job '",
                        cur->name, "' names neither a workload nor a "
                        "firmware file");
        cur = nullptr;
    };

    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::vector<std::string> f = fields(line);
        if (f.empty())
            continue;
        std::string kw = toLower(f[0]);

        if (kw == "batch") {
            std::string name;
            for (size_t i = 1; i < f.size(); ++i)
                name += (i > 1 ? " " : "") + f[i];
            m.name = name;
        } else if (kw == "retry") {
            if (f.size() != 3)
                GLIFS_FATAL("manifest line ", lineno,
                            ": retry <multiplier|max-attempts> <val>");
            std::string which = toLower(f[1]);
            if (which == "multiplier") {
                m.retry.multiplier = positiveReal(f[2], lineno);
                if (m.retry.multiplier < 1.0)
                    GLIFS_FATAL("manifest line ", lineno,
                                ": retry multiplier must be >= 1");
            } else if (which == "max-attempts") {
                m.retry.maxAttempts =
                    static_cast<unsigned>(number(f[2], lineno));
            } else if (which == "backoff") {
                m.retry.backoffSeconds = positiveReal(f[2], lineno);
            } else if (which == "backoff-cap") {
                m.retry.backoffCapSeconds = positiveReal(f[2], lineno);
            } else {
                GLIFS_FATAL("manifest line ", lineno,
                            ": unknown retry setting '", f[1], "'");
            }
        } else if (kw == "default") {
            if (f.size() != 3 ||
                !applyBudget(defaults, toLower(f[1]), f[2], lineno))
                GLIFS_FATAL("manifest line ", lineno,
                            ": default <deadline|max-cycles|"
                            "max-states|max-rss> <value>");
        } else if (kw == "job") {
            if (f.size() != 2)
                GLIFS_FATAL("manifest line ", lineno, ": job <name>");
            closeJob();
            for (const JobSpec &j : m.jobs) {
                if (j.name == f[1])
                    GLIFS_FATAL("manifest line ", lineno,
                                ": duplicate job name '", f[1], "'");
            }
            m.jobs.push_back(JobSpec{});
            cur = &m.jobs.back();
            cur->name = f[1];
            cur->budgets = defaults;
            curLine = lineno;
        } else if (cur == nullptr) {
            GLIFS_FATAL("manifest line ", lineno, ": directive '",
                        f[0], "' outside a job block");
        } else if (kw == "workload") {
            if (f.size() != 2)
                GLIFS_FATAL("manifest line ", lineno,
                            ": workload <name>");
            if (!cur->firmwarePath.empty())
                GLIFS_FATAL("manifest line ", lineno, ": job '",
                            cur->name, "' already has a firmware "
                            "file");
            const Workload *w = findWorkload(f[1]);
            if (!w)
                GLIFS_FATAL("manifest line ", lineno,
                            ": unknown workload '", f[1],
                            "' (see glifs_audit --list-workloads)");
            cur->workload = f[1];
            cur->firmwareText = w->source();
        } else if (kw == "firmware") {
            if (f.size() != 2)
                GLIFS_FATAL("manifest line ", lineno,
                            ": firmware <path.s>");
            if (!cur->workload.empty())
                GLIFS_FATAL("manifest line ", lineno, ": job '",
                            cur->name, "' already has a workload");
            cur->firmwarePath = resolvePath(baseDir, f[1]);
            cur->firmwareText = readFileOr(cur->firmwarePath, lineno);
        } else if (kw == "policy") {
            if (f.size() != 2)
                GLIFS_FATAL("manifest line ", lineno,
                            ": policy <path>");
            cur->policyPath = resolvePath(baseDir, f[1]);
            cur->policyText = readFileOr(cur->policyPath, lineno);
        } else if (f.size() == 2 &&
                   applyBudget(cur->budgets, kw, f[1], lineno)) {
            // budget override handled
        } else {
            GLIFS_FATAL("manifest line ", lineno,
                        ": unknown directive '", f[0], "'");
        }
    }
    closeJob();

    if (m.jobs.empty())
        GLIFS_FATAL("manifest is empty: no job blocks found");
    return m;
}

Manifest
loadManifest(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        GLIFS_FATAL("cannot open manifest ", path);
    std::ostringstream oss;
    oss << in.rdbuf();

    std::string baseDir;
    size_t slash = path.rfind('/');
    if (slash != std::string::npos)
        baseDir = path.substr(0, slash);

    Manifest m = parseManifest(oss.str(), baseDir);
    m.path = path;
    return m;
}

} // namespace glifs::batch
