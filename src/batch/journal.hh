/**
 * @file
 * The write-ahead batch journal (docs/ROBUSTNESS.md, "Crash
 * recovery").
 *
 * A batch run appends one record per event to an append-only journal:
 * the manifest identity up front, then `job started`, `cache
 * published` and `job finished` records as the fleet progresses. Every
 * append goes through the fault-injectable syscall layer
 * (src/base/faultfs.hh) and is fsync'd, so after a SIGKILL at *any*
 * syscall boundary the journal holds a prefix of the run's history
 * with at most one torn final record.
 *
 * `glifs_batch --resume-batch <journal>` replays that prefix: jobs
 * with a `job finished` record are skipped and their outcomes reported
 * verbatim; everything else runs again. A torn or bit-flipped tail is
 * detected by the per-record CRC-32 and truncated to the last valid
 * record — corruption costs re-running at most one job, never a crash
 * and never a wrong verdict.
 *
 * On-disk format (little-endian):
 *
 *   "GLFSJRNL"  8-byte magic
 *   u32 version currently 1
 *   records:    u32 payload_len | u8 type | payload |
 *               u32 crc32(type + payload)
 *
 * Journaling is best-effort by design: a journal that cannot be
 * written (ENOSPC, injected fault) disables itself with a warning and
 * a `batch.journal_write_failures` count — the batch still completes,
 * only crash resumability is lost.
 */

#ifndef GLIFS_BATCH_JOURNAL_HH
#define GLIFS_BATCH_JOURNAL_HH

#include <cstdint>
#include <map>
#include <string>

#include "batch/runner.hh"

namespace glifs::batch
{

/**
 * Identity of a manifest for journal/run matching: SHA-256 over the
 * manifest name, the retry configuration and every job's name,
 * firmware text, policy text and budgets. Two manifests with the same
 * fingerprint describe the same fleet, wherever the files live.
 */
std::string manifestFingerprint(const Manifest &manifest);

class BatchJournal
{
  public:
    static constexpr uint32_t kVersion = 1;

    /** A disabled journal: every append is a no-op. */
    BatchJournal() = default;

    /**
     * Create (truncate) the journal at @p path and write the header
     * and manifest-identity record. Failure warns and returns a
     * disabled journal — a batch without a journal is still a batch.
     */
    static BatchJournal create(const std::string &path,
                               const std::string &fingerprint);

    BatchJournal(BatchJournal &&other) noexcept;
    BatchJournal &operator=(BatchJournal &&other) noexcept;
    BatchJournal(const BatchJournal &) = delete;
    BatchJournal &operator=(const BatchJournal &) = delete;
    ~BatchJournal();

    /** False once created-disabled or after a write failure. */
    bool enabled() const { return fd >= 0; }

    void jobStarted(uint32_t index, const std::string &name,
                    const std::string &cacheKey);
    void cachePublished(uint32_t index, const std::string &cacheKey);
    void jobFinished(uint32_t index, const JobOutcome &outcome);

    /** What a journal replay recovered. */
    struct Replay
    {
        std::string fingerprint;  ///< manifest identity ("" if torn)
        /** Final outcome per manifest job index. */
        std::map<uint32_t, JobOutcome> finished;
        size_t records = 0;       ///< valid records read
        bool torn = false;        ///< invalid tail was truncated away
    };

    /**
     * Replay @p path tolerantly: a missing file, torn header, torn or
     * bit-flipped trailing record all yield the longest valid prefix
     * (possibly empty) with `torn` set — never an exception. The
     * caller decides whether a fingerprint mismatch is fatal.
     */
    static Replay replay(const std::string &path);

  private:
    explicit BatchJournal(int fd) : fd(fd) {}

    void append(uint8_t type, const std::string &payload);

    int fd = -1;
};

} // namespace glifs::batch

#endif // GLIFS_BATCH_JOURNAL_HH
