/**
 * @file
 * The *-logic baseline (Tiwari et al. [19], paper footnote 8): static
 * gate-level taint tracking with no application-specific path
 * exploration. When the PC becomes unknown or tainted, the analysis
 * cannot continue precisely; every software-exercisable gate becomes
 * unknown and tainted, and software fixes cannot be verified.
 */

#ifndef GLIFS_STARLOGIC_STARLOGIC_HH
#define GLIFS_STARLOGIC_STARLOGIC_HH

#include "ift/engine.hh"

namespace glifs
{

/** Result of a *-logic analysis. */
struct StarLogicResult
{
    bool aborted = false;          ///< PC became unknown/tainted
    bool verified = false;         ///< completed with no violations
    double taintedGateFraction = 0.0;
    size_t taintedGates = 0;
    size_t totalGates = 0;
    uint64_t cyclesSimulated = 0;
    std::vector<Violation> violations;

    std::string str() const;
};

/** Run the *-logic baseline on a program. */
StarLogicResult runStarLogic(const Soc &soc, const Policy &policy,
                             const ProgramImage &image,
                             uint64_t max_cycles = 2'000'000);

/**
 * Side-by-side comparison row: our application-specific analysis vs
 * *-logic on the same system (drives bench_footnote8_starlogic).
 */
struct AnalysisComparison
{
    EngineResult appSpecific;
    StarLogicResult star;

    std::string str(const std::string &name) const;
};

AnalysisComparison compareAnalyses(const Soc &soc, const Policy &policy,
                                   const ProgramImage &image);

} // namespace glifs

#endif // GLIFS_STARLOGIC_STARLOGIC_HH
