#include "starlogic/starlogic.hh"

#include <sstream>

#include "base/strutil.hh"

namespace glifs
{

StarLogicResult
runStarLogic(const Soc &soc, const Policy &policy,
             const ProgramImage &image, uint64_t max_cycles)
{
    EngineConfig cfg;
    cfg.starLogicMode = true;
    cfg.maxCycles = max_cycles;
    IftEngine engine(soc, policy, cfg);
    EngineResult r = engine.run(image);

    StarLogicResult out;
    out.aborted = r.starAborted;
    out.verified = r.completed && r.secure();
    out.taintedGateFraction = r.taintedGateFraction;
    out.taintedGates = r.taintedGates;
    out.totalGates = r.totalGates;
    out.cyclesSimulated = r.cyclesSimulated;
    out.violations = r.violations;
    return out;
}

std::string
StarLogicResult::str() const
{
    std::ostringstream oss;
    if (aborted) {
        oss << "*-logic ABORTED: control depends on unknown/tainted "
               "input; "
            << percent(taintedGateFraction, 1) << " of gates ("
            << taintedGates << "/" << totalGates
            << ") become unknown and tainted; software fixes cannot "
               "be verified";
    } else {
        oss << "*-logic completed: "
            << (verified ? "verified secure" : "violations found")
            << ", " << percent(taintedGateFraction, 1)
            << " gates tainted";
    }
    return oss.str();
}

AnalysisComparison
compareAnalyses(const Soc &soc, const Policy &policy,
                const ProgramImage &image)
{
    AnalysisComparison cmp;
    IftEngine app(soc, policy, EngineConfig{});
    cmp.appSpecific = app.run(image);
    cmp.star = runStarLogic(soc, policy, image);
    return cmp;
}

std::string
AnalysisComparison::str(const std::string &name) const
{
    std::ostringstream oss;
    oss << name << ":\n";
    oss << "  app-specific: "
        << (appSpecific.secure() ? "verified secure"
                                 : "violations reported")
        << ", " << percent(appSpecific.taintedGateFraction, 1)
        << " gates tainted, " << appSpecific.cyclesSimulated
        << " cycles\n";
    oss << "  " << star.str() << "\n";
    return oss.str();
}

} // namespace glifs
