#include "netlist/compile.hh"

#include <algorithm>
#include <array>
#include <bit>

#include "base/logging.hh"

namespace glifs
{

namespace
{

constexpr uint32_t kNoSlot = static_cast<uint32_t>(-1);

/**
 * Emit the gather program moving the nets at @p slots (one per lane,
 * lane order) into a lane-indexed word. A slot shared by several
 * lanes becomes one broadcast op; the remaining slots become rotate
 * ops, with consecutive lanes reading consecutive bits of one word
 * sharing a single (word, rot) op, so bus-structured operands stay
 * compact.
 */
void
emitGather(std::vector<PlaneOp> &pool, OpRange &range,
           std::span<const uint32_t> slots)
{
    range.begin = static_cast<uint32_t>(pool.size());
    // Group lanes by source slot (linear search: <= 64 lanes).
    struct Src
    {
        uint32_t slot;
        uint64_t mask;
    };
    std::vector<Src> srcs;
    for (size_t lane = 0; lane < slots.size(); ++lane) {
        bool found = false;
        for (Src &s : srcs) {
            if (s.slot == slots[lane]) {
                s.mask |= 1ULL << lane;
                found = true;
                break;
            }
        }
        if (!found)
            srcs.push_back({slots[lane], 1ULL << lane});
    }
    std::vector<PlaneOp> local;
    for (const Src &s : srcs) {
        const uint32_t word = s.slot >> 6;
        const unsigned bit = s.slot & 63;
        if (std::popcount(s.mask) > 1) {
            local.push_back(
                {word, static_cast<uint8_t>(PlaneOp::kBroadcast | bit),
                 s.mask});
            continue;
        }
        const unsigned lane =
            static_cast<unsigned>(std::countr_zero(s.mask));
        const uint8_t rot = static_cast<uint8_t>((lane - bit) & 63);
        bool merged = false;
        for (PlaneOp &op : local) {
            if (op.word == word && op.rot == rot) {
                op.mask |= s.mask;
                merged = true;
                break;
            }
        }
        if (!merged)
            local.push_back({word, rot, s.mask});
    }
    pool.insert(pool.end(), local.begin(), local.end());
    range.end = static_cast<uint32_t>(pool.size());
}

} // namespace

CompiledNetlist
compileNetlist(const Netlist &nl, const std::vector<EvalStep> &order)
{
    CompiledNetlist cn;
    cn.producerUnit.assign(nl.numNets(), -1);
    cn.unitOfMem.assign(nl.numMemories(), 0);
    cn.slotOfNet.assign(nl.numNets(), kNoSlot);

    // ---- unit assignment -------------------------------------------
    // Walk the (topological) levelized schedule. Each gate joins the
    // most recent open batch of its kind if that batch is scheduled
    // strictly after every unit producing one of the gate's inputs;
    // otherwise a fresh batch opens at the end of the unit sequence.
    // Memory read ports become their own units in place. This packs
    // across levels (producers and consumers of the same kind land in
    // different batches, unrelated gates share one), which matters on
    // deep carry chains where a per-level batching would fragment.
    struct OpenBatch
    {
        int32_t unit = -1;
        uint32_t batch = 0;
        uint32_t count = 0;
    };
    std::array<OpenBatch, 9> open;
    std::vector<std::vector<GateId>> batchGates;

    auto producerOf = [&](NetId net) -> int32_t {
        return net == kNoNet ? -1 : cn.producerUnit[net];
    };

    for (const EvalStep &step : order) {
        if (step.kind == EvalStep::Kind::MemRead) {
            const int32_t unit =
                static_cast<int32_t>(cn.units.size());
            cn.units.push_back(
                {EvalUnit::Kind::MemRead, step.index});
            cn.unitOfMem[step.index] =
                static_cast<uint32_t>(unit);
            for (NetId rd : nl.memory(step.index).readData)
                cn.producerUnit[rd] = unit;
            continue;
        }
        const GateId gid = step.index;
        const Gate &g = nl.gate(gid);
        const unsigned arity = gateArity(g.kind);
        int32_t minUnit = -1;
        for (unsigned i = 0; i < arity; ++i)
            minUnit = std::max(minUnit, producerOf(g.in[i]));

        OpenBatch &ob = open[static_cast<size_t>(g.kind)];
        if (ob.unit <= minUnit || ob.count >= 64) {
            // Open a new batch at the end of the schedule.
            ob.unit = static_cast<int32_t>(cn.units.size());
            ob.batch = static_cast<uint32_t>(batchGates.size());
            ob.count = 0;
            batchGates.emplace_back();
            cn.units.push_back({EvalUnit::Kind::Batch, ob.batch});
        }
        batchGates[ob.batch].push_back(gid);
        ++ob.count;
        cn.producerUnit[g.out] = ob.unit;
    }
    cn.batches.resize(batchGates.size());

    // ---- slot assignment -------------------------------------------
    auto allocWord = [&] {
        const uint32_t w = static_cast<uint32_t>(cn.planeWords++);
        return w;
    };
    auto placeNet = [&](NetId net, uint32_t slot) {
        GLIFS_ASSERT(cn.slotOfNet[net] == kNoSlot,
                     "compile: net ", net, " placed twice");
        cn.slotOfNet[net] = slot;
    };

    // Flip-flop Q outputs first: chunks of 64 in Q-net order, each
    // chunk owning one whole word so the edge commit is a word write.
    std::vector<GateId> dffs(nl.dffs());
    std::sort(dffs.begin(), dffs.end(), [&](GateId x, GateId y) {
        return nl.gate(x).out < nl.gate(y).out;
    });
    std::vector<uint32_t> dffWordOfGate(nl.numGates(), 0);
    for (size_t base = 0; base < dffs.size(); base += 64) {
        const size_t n = std::min<size_t>(64, dffs.size() - base);
        DffWord dw;
        dw.lanes = static_cast<uint8_t>(n);
        dw.qWord = allocWord();
        dw.laneMask = n == 64 ? ~0ULL : (1ULL << n) - 1;
        for (size_t l = 0; l < n; ++l) {
            const Gate &g = nl.gate(dffs[base + l]);
            placeNet(g.out, (dw.qWord << 6) +
                            static_cast<uint32_t>(l));
            if (g.rstVal)
                dw.rstVal |= 1ULL << l;
            dffWordOfGate[dffs[base + l]] =
                static_cast<uint32_t>(cn.dffWords.size());
        }
        cn.dffWords.push_back(dw);
    }

    // Remaining sources (primary inputs, constants, undriven nets):
    // packed in net order. Memory read-data nets get their slots when
    // their unit is processed below.
    {
        uint32_t word = kNoSlot;
        unsigned bit = 64;
        for (NetId n = 0; n < nl.numNets(); ++n) {
            if (cn.producerUnit[n] >= 0 || cn.slotOfNet[n] != kNoSlot)
                continue;
            if (bit == 64) {
                word = allocWord();
                bit = 0;
            }
            placeNet(n, (word << 6) + bit++);
        }
    }

    // ---- per-unit lowering ------------------------------------------
    // Units are processed in schedule order, so every input of a unit
    // already has its slot. Batch lanes are ordered by the slot of
    // their most distinguishing input (the one with the most distinct
    // nets), which lines bus-structured operands up into runs; the
    // output word simply inherits that order.
    std::vector<uint32_t> slots;
    for (const EvalUnit &u : cn.units) {
        if (u.kind == EvalUnit::Kind::MemRead) {
            const MemoryDecl &decl = nl.memory(u.index);
            GLIFS_ASSERT(decl.width <= 64, "mem width > 64");
            const uint32_t w = allocWord();
            for (unsigned b = 0; b < decl.width; ++b)
                placeNet(decl.readData[b], (w << 6) + b);
            continue;
        }
        std::vector<GateId> &gates = batchGates[u.index];
        GLIFS_ASSERT(!gates.empty() && gates.size() <= 64,
                     "bad batch size ", gates.size());
        PackedBatch &pb = cn.batches[u.index];
        pb.kind = nl.gate(gates[0]).kind;
        pb.arity = static_cast<uint8_t>(gateArity(pb.kind));
        pb.lanes = static_cast<uint8_t>(gates.size());
        pb.laneMask =
            gates.size() == 64 ? ~0ULL : (1ULL << gates.size()) - 1;
        cn.combLanes += gates.size();

        unsigned key = 0;
        size_t bestDistinct = 0;
        for (unsigned s = 0; s < pb.arity; ++s) {
            std::vector<NetId> ins;
            ins.reserve(gates.size());
            for (GateId g : gates)
                ins.push_back(nl.gate(g).in[s]);
            std::sort(ins.begin(), ins.end());
            const size_t distinct =
                std::unique(ins.begin(), ins.end()) - ins.begin();
            if (distinct > bestDistinct) {
                bestDistinct = distinct;
                key = s;
            }
        }
        std::sort(gates.begin(), gates.end(),
                  [&](GateId x, GateId y) {
                      const uint32_t sx =
                          cn.slotOfNet[nl.gate(x).in[key]];
                      const uint32_t sy =
                          cn.slotOfNet[nl.gate(y).in[key]];
                      if (sx != sy)
                          return sx < sy;
                      return nl.gate(x).out < nl.gate(y).out;
                  });

        pb.outWord = allocWord();
        for (size_t l = 0; l < gates.size(); ++l) {
            placeNet(nl.gate(gates[l]).out,
                     (pb.outWord << 6) + static_cast<uint32_t>(l));
        }
        slots.resize(gates.size());
        for (unsigned s = 0; s < pb.arity; ++s) {
            for (size_t l = 0; l < gates.size(); ++l)
                slots[l] = cn.slotOfNet[nl.gate(gates[l]).in[s]];
            emitGather(cn.ops, pb.gather[s], slots);
        }
    }

    // ---- flip-flop edge gathers ------------------------------------
    for (size_t wi = 0; wi < cn.dffWords.size(); ++wi) {
        DffWord &dw = cn.dffWords[wi];
        const size_t base = wi * 64;
        slots.resize(dw.lanes);
        auto emitSlot = [&](OpRange &range, unsigned in) {
            for (size_t l = 0; l < dw.lanes; ++l)
                slots[l] =
                    cn.slotOfNet[nl.gate(dffs[base + l]).in[in]];
            emitGather(cn.ops, range, slots);
        };
        emitSlot(dw.gatherD, 0);
        emitSlot(dw.gatherRst, 1);
        emitSlot(dw.gatherEn, 2);
    }

    // ---- slot -> net reverse map -----------------------------------
    cn.slotNet.assign(cn.planeWords * 64, kNoNet);
    for (NetId n = 0; n < nl.numNets(); ++n) {
        GLIFS_ASSERT(cn.slotOfNet[n] != kNoSlot,
                     "compile: net ", n, " has no slot");
        cn.slotNet[cn.slotOfNet[n]] = n;
    }

    // ---- net -> mark-target CSR ------------------------------------
    // Targets < units.size() are consuming units; units.size() + i is
    // dff word i (its D/RST/EN/Q inputs -- Q included, so an external
    // Q override or a committed Q change re-arms the word's own edge
    // computation).
    const uint32_t numUnits = static_cast<uint32_t>(cn.units.size());
    std::vector<uint32_t> counts(nl.numNets(), 0);
    auto eachEdge = [&](auto &&fn) {
        for (GateId g = 0; g < nl.numGates(); ++g) {
            const Gate &gate = nl.gate(g);
            if (gate.type == GateType::Comb) {
                const unsigned arity = gateArity(gate.kind);
                const uint32_t unit = static_cast<uint32_t>(
                    cn.producerUnit[gate.out]);
                for (unsigned i = 0; i < arity; ++i) {
                    if (gate.in[i] != kNoNet)
                        fn(gate.in[i], unit);
                }
            } else if (gate.type == GateType::Dff) {
                const uint32_t target = numUnits + dffWordOfGate[g];
                for (unsigned i = 0; i < 3; ++i) {
                    if (gate.in[i] != kNoNet)
                        fn(gate.in[i], target);
                }
                fn(gate.out, target);
            }
        }
        for (MemId m = 0; m < nl.numMemories(); ++m) {
            for (NetId a : nl.memory(m).readAddr) {
                if (a != kNoNet)
                    fn(a, cn.unitOfMem[m]);
            }
        }
    };
    eachEdge([&](NetId n, uint32_t) { ++counts[n]; });
    cn.consumerOffsets.assign(nl.numNets() + 1, 0);
    for (size_t n = 0; n < nl.numNets(); ++n)
        cn.consumerOffsets[n + 1] = cn.consumerOffsets[n] + counts[n];
    cn.consumerUnits.resize(cn.consumerOffsets.back());
    std::vector<uint32_t> cursor(cn.consumerOffsets.begin(),
                                 cn.consumerOffsets.end() - 1);
    eachEdge([&](NetId n, uint32_t unit) {
        cn.consumerUnits[cursor[n]++] = unit;
    });

    // Every combinational consumer must be scheduled strictly after
    // its producer; the ascending dirty-unit drain relies on it.
    for (NetId n = 0; n < nl.numNets(); ++n) {
        const int32_t p = cn.producerUnit[n];
        if (p < 0)
            continue;
        for (uint32_t c : cn.consumersOf(n)) {
            GLIFS_ASSERT(c >= numUnits ||
                             static_cast<int32_t>(c) > p,
                         "compile: unit order violated on net ", n);
        }
    }
    return cn;
}

} // namespace glifs
