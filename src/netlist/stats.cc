#include "netlist/stats.hh"

#include <sstream>

namespace glifs
{

NetlistStats
computeStats(const Netlist &nl)
{
    NetlistStats s;
    s.nets = nl.numNets();
    s.memories = nl.numMemories();
    s.inputs = nl.inputs().size();
    s.outputs = nl.outputs().size();
    for (const Gate &g : nl.gates()) {
        switch (g.type) {
          case GateType::Comb:
            ++s.combGates;
            ++s.combByKind[static_cast<size_t>(g.kind)];
            break;
          case GateType::Dff:
            ++s.dffs;
            break;
          case GateType::Const:
            ++s.consts;
            break;
          case GateType::Input:
            break;
        }
    }
    for (const MemoryDecl &m : nl.memoryList())
        s.memoryBits += m.words * m.width;
    return s;
}

std::string
NetlistStats::str() const
{
    std::ostringstream oss;
    oss << "nets=" << nets << " comb=" << combGates << " dff=" << dffs
        << " mem=" << memories << " (" << memoryBits << " bits)"
        << " in=" << inputs << " out=" << outputs;
    return oss.str();
}

} // namespace glifs
