/**
 * @file
 * Graphviz DOT export of (small) netlists for documentation/debugging.
 */

#ifndef GLIFS_NETLIST_DOT_EXPORT_HH
#define GLIFS_NETLIST_DOT_EXPORT_HH

#include <string>

#include "netlist/netlist.hh"

namespace glifs
{

/**
 * Render the netlist as a DOT digraph. Intended for small circuits
 * (examples, unit-test fixtures); a full SoC will produce a huge graph.
 */
std::string toDot(const Netlist &nl, const std::string &graph_name = "nl");

} // namespace glifs

#endif // GLIFS_NETLIST_DOT_EXPORT_HH
