#include "netlist/netlist.hh"

#include "base/bitutil.hh"
#include "base/logging.hh"

namespace glifs
{

NetId
Netlist::addNet(const std::string &name)
{
    NetId id = static_cast<NetId>(nets.size());
    nets.push_back(Net{name, static_cast<GateId>(-1)});
    if (!name.empty())
        netByName.emplace(name, id);
    return id;
}

NetId
Netlist::newDrivenNet(GateId driver, const std::string &name)
{
    NetId id = addNet(name);
    nets[id].driver = driver;
    return id;
}

NetId
Netlist::addInput(const std::string &name)
{
    GateId gid = static_cast<GateId>(gateList.size());
    Gate g;
    g.type = GateType::Input;
    gateList.push_back(g);
    NetId net = newDrivenNet(gid, name);
    gateList[gid].out = net;
    inputList.push_back(net);
    return net;
}

NetId
Netlist::constNet(bool value)
{
    NetId &cached = value ? const1 : const0;
    if (cached != kNoNet)
        return cached;
    GateId gid = static_cast<GateId>(gateList.size());
    Gate g;
    g.type = GateType::Const;
    g.constVal = value;
    gateList.push_back(g);
    cached = newDrivenNet(gid, value ? "const1" : "const0");
    gateList[gid].out = cached;
    return cached;
}

NetId
Netlist::addComb(GateKind kind, NetId a, NetId b, NetId c,
                 const std::string &name)
{
    const unsigned arity = gateArity(kind);
    GLIFS_ASSERT(a != kNoNet, "comb gate missing input 0");
    GLIFS_ASSERT(arity < 2 || b != kNoNet, "comb gate missing input 1");
    GLIFS_ASSERT(arity < 3 || c != kNoNet, "comb gate missing input 2");

    GateId gid = static_cast<GateId>(gateList.size());
    Gate g;
    g.type = GateType::Comb;
    g.kind = kind;
    g.in = {a, b, c};
    gateList.push_back(g);
    NetId net = newDrivenNet(gid, name);
    gateList[gid].out = net;
    return net;
}

DffHandle
Netlist::addDff(const std::string &name, bool rst_val, bool por_reset)
{
    GateId gid = static_cast<GateId>(gateList.size());
    Gate g;
    g.type = GateType::Dff;
    g.rstVal = rst_val;
    g.porReset = por_reset;
    gateList.push_back(g);
    NetId q = newDrivenNet(gid, name);
    gateList[gid].out = q;
    dffList.push_back(gid);
    return DffHandle{gid, q};
}

void
Netlist::connectDff(GateId dff, NetId d, NetId rst, NetId en)
{
    GLIFS_ASSERT(dff < gateList.size() &&
                 gateList[dff].type == GateType::Dff,
                 "connectDff on non-DFF gate ", dff);
    GLIFS_ASSERT(d != kNoNet && rst != kNoNet && en != kNoNet,
                 "DFF inputs must be connected");
    gateList[dff].in = {d, rst, en};
}

MemId
Netlist::addMemory(const MemoryDecl &decl)
{
    GLIFS_ASSERT(decl.words > 0 && decl.width > 0 && decl.width <= 64,
                 "bad memory geometry for ", decl.name);
    GLIFS_ASSERT(decl.readAddr.size() >= bitsFor(decl.words),
                 "memory ", decl.name, " read address too narrow");
    GLIFS_ASSERT(decl.readData.size() == decl.width,
                 "memory ", decl.name, " read data width mismatch");
    if (decl.writable) {
        GLIFS_ASSERT(decl.writeAddr.size() >= bitsFor(decl.words),
                     "memory ", decl.name, " write address too narrow");
        GLIFS_ASSERT(decl.writeData.size() == decl.width,
                     "memory ", decl.name, " write data width mismatch");
        GLIFS_ASSERT(decl.writeEn != kNoNet,
                     "memory ", decl.name, " missing write enable");
    }

    MemId id = static_cast<MemId>(memories.size());
    memories.push_back(decl);

    // The read-data nets are driven by the memory block; record a
    // pseudo-driver so validation can tell them apart from floating nets.
    for (NetId n : decl.readData) {
        GLIFS_ASSERT(nets[n].driver == static_cast<GateId>(-1),
                     "memory read-data net already driven");
        nets[n].driver = static_cast<GateId>(-2) - id;
    }
    return id;
}

void
Netlist::markOutput(NetId net, const std::string &name)
{
    GLIFS_ASSERT(net < nets.size(), "bad output net");
    outputList.emplace_back(net, name);
}

NetId
Netlist::findNet(const std::string &name) const
{
    auto it = netByName.find(name);
    return it == netByName.end() ? kNoNet : it->second;
}

} // namespace glifs
