/**
 * @file
 * Topological ordering of the combinational portion of a netlist.
 *
 * Combinational gates and memory read ports are ordered so a single
 * in-order sweep settles all nets for a cycle. Flip-flop outputs,
 * constants and primary inputs are sources. A combinational cycle is a
 * user design error and raises fatal().
 */

#ifndef GLIFS_NETLIST_LEVELIZE_HH
#define GLIFS_NETLIST_LEVELIZE_HH

#include <cstdint>
#include <vector>

#include "netlist/netlist.hh"

namespace glifs
{

/** One step of the per-cycle combinational evaluation schedule. */
struct EvalStep
{
    enum class Kind : uint8_t { Gate, MemRead };
    Kind kind;
    uint32_t index;  ///< GateId or MemId
};

/**
 * Compute the combinational evaluation schedule.
 * @throws FatalError if the netlist contains a combinational cycle.
 */
std::vector<EvalStep> levelize(const Netlist &nl);

} // namespace glifs

#endif // GLIFS_NETLIST_LEVELIZE_HH
