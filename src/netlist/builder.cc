#include "netlist/builder.hh"

#include "base/bitutil.hh"
#include "base/logging.hh"

namespace glifs
{

NetId
NetBuilder::reduceTree(GateKind kind, std::span<const NetId> nets,
                       bool empty_value)
{
    if (nets.empty())
        return nl.constNet(empty_value);
    std::vector<NetId> level(nets.begin(), nets.end());
    while (level.size() > 1) {
        std::vector<NetId> next;
        next.reserve((level.size() + 1) / 2);
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(nl.addComb(kind, level[i], level[i + 1]));
        if (level.size() % 2 == 1)
            next.push_back(level.back());
        level.swap(next);
    }
    return level[0];
}

NetId
NetBuilder::reduceAnd(std::span<const NetId> nets)
{
    return reduceTree(GateKind::And, nets, true);
}

NetId
NetBuilder::reduceOr(std::span<const NetId> nets)
{
    return reduceTree(GateKind::Or, nets, false);
}

NetId
NetBuilder::reduceXor(std::span<const NetId> nets)
{
    return reduceTree(GateKind::Xor, nets, false);
}

NetId
NetBuilder::isZero(std::span<const NetId> nets)
{
    return bNot(reduceOr(nets));
}

NetId
NetBuilder::matchesConst(std::span<const NetId> nets, uint64_t value)
{
    GLIFS_ASSERT(nets.size() <= 64, "matchesConst span too wide");
    std::vector<NetId> terms;
    terms.reserve(nets.size());
    for (size_t i = 0; i < nets.size(); ++i)
        terms.push_back(bit(value, i) ? nets[i] : bNot(nets[i]));
    return reduceAnd(terms);
}

} // namespace glifs
