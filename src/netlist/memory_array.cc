#include "netlist/memory_array.hh"

#include "base/logging.hh"

namespace glifs
{

MemAddr
decodeMemAddr(std::span<const Signal> addr, size_t words,
              unsigned max_unknown_bits)
{
    MemAddr out;
    for (size_t i = 0; i < addr.size(); ++i) {
        const Signal &s = addr[i];
        out.tainted = out.tainted || s.taint;
        if (!s.known()) {
            out.xBits.push_back(static_cast<unsigned>(i));
        } else if (s.asBool()) {
            out.base |= 1ULL << i;
        }
    }
    if (out.xBits.size() > max_unknown_bits ||
        (1ULL << out.xBits.size()) >= 2 * words) {
        out.fullRange = true;
        out.xBits.clear();
        out.base = 0;
    }
    return out;
}

void
forEachAddr(const MemAddr &addr, size_t words,
            const std::function<void(size_t)> &fn)
{
    if (addr.fullRange) {
        for (size_t w = 0; w < words; ++w)
            fn(w);
        return;
    }
    const size_t combos = 1ULL << addr.xBits.size();
    for (size_t c = 0; c < combos; ++c) {
        uint64_t a = addr.base;
        for (size_t k = 0; k < addr.xBits.size(); ++k) {
            if ((c >> k) & 1ULL)
                a |= 1ULL << addr.xBits[k];
        }
        if (a < words)
            fn(static_cast<size_t>(a));
    }
}

void
memoryRead(const std::vector<Signal> &cells, unsigned width, size_t words,
           const MemAddr &addr, std::span<Signal> data_out)
{
    GLIFS_ASSERT(data_out.size() == width, "memoryRead width mismatch");
    GLIFS_ASSERT(cells.size() == words * width, "memoryRead cell count");

    if (addr.concrete()) {
        if (addr.base < words) {
            const Signal *cell = &cells[addr.base * width];
            for (unsigned b = 0; b < width; ++b) {
                data_out[b] = cell[b];
                data_out[b].taint = data_out[b].taint || addr.tainted;
            }
        } else {
            for (unsigned b = 0; b < width; ++b)
                data_out[b] = Signal{Tern::X, addr.tainted};
        }
        return;
    }

    bool any = false;
    for (unsigned b = 0; b < width; ++b)
        data_out[b] = Signal{Tern::X, false};
    forEachAddr(addr, words, [&](size_t w) {
        const Signal *cell = &cells[w * width];
        if (!any) {
            for (unsigned b = 0; b < width; ++b)
                data_out[b] = cell[b];
            any = true;
        } else {
            for (unsigned b = 0; b < width; ++b) {
                data_out[b].value =
                    ternMerge(data_out[b].value, cell[b].value);
                data_out[b].taint = data_out[b].taint || cell[b].taint;
            }
        }
    });
    for (unsigned b = 0; b < width; ++b)
        data_out[b].taint = data_out[b].taint || addr.tainted;
}

void
memoryWrite(std::vector<Signal> &cells, unsigned width, size_t words,
            const MemAddr &addr, const Signal &we,
            std::span<const Signal> data)
{
    GLIFS_ASSERT(data.size() == width, "memoryWrite width mismatch");
    GLIFS_ASSERT(cells.size() == words * width, "memoryWrite cell count");

    // Definitely no write: nothing to do. A tainted-but-0 enable is
    // handled by the engine's path enumeration (the path where the
    // write actually happens carries the taint; merges OR it back).
    if (we.known() && !we.asBool())
        return;

    const bool strong = we.known() && we.asBool() && addr.concrete();
    if (strong) {
        if (addr.base >= words)
            return;
        Signal *cell = &cells[addr.base * width];
        for (unsigned b = 0; b < width; ++b) {
            cell[b] = data[b];
            cell[b].taint =
                cell[b].taint || addr.tainted || we.taint;
        }
        return;
    }

    // Possible (unknown enable) or ambiguous-address write: weak update.
    const bool extra_taint = we.taint || addr.tainted;
    forEachAddr(addr, words, [&](size_t w) {
        Signal *cell = &cells[w * width];
        for (unsigned b = 0; b < width; ++b) {
            cell[b].value = ternMerge(cell[b].value, data[b].value);
            cell[b].taint = cell[b].taint || data[b].taint || extra_taint;
        }
    });
}

} // namespace glifs
