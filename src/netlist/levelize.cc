#include "netlist/levelize.hh"

#include <deque>

#include "base/logging.hh"

namespace glifs
{

namespace
{

/** Internal node numbering: [0, nGates) gates, [nGates, +nMems) mems. */
struct NodeSpace
{
    size_t n_gates;
    size_t n_mems;

    size_t total() const { return n_gates + n_mems; }
    size_t gateNode(GateId g) const { return g; }
    size_t memNode(MemId m) const { return n_gates + m; }
};

} // namespace

std::vector<EvalStep>
levelize(const Netlist &nl)
{
    const NodeSpace ns{nl.numGates(), nl.numMemories()};

    // A node is schedulable when it is a combinational gate or a memory
    // read port; everything else is a source.
    std::vector<bool> schedulable(ns.total(), false);
    for (GateId g = 0; g < nl.numGates(); ++g) {
        if (nl.gate(g).type == GateType::Comb)
            schedulable[ns.gateNode(g)] = true;
    }
    for (MemId m = 0; m < nl.numMemories(); ++m)
        schedulable[ns.memNode(m)] = true;

    // Map each node to the nodes consuming its outputs, via nets.
    std::vector<std::vector<uint32_t>> consumers(ns.total());
    std::vector<uint32_t> indegree(ns.total(), 0);

    auto add_dep = [&](NetId input_net, size_t consumer_node) {
        if (input_net == kNoNet)
            return;
        size_t producer;
        if (nl.memDriven(input_net)) {
            producer = ns.memNode(nl.memDriver(input_net));
        } else {
            GateId d = nl.driverOf(input_net);
            if (d == static_cast<GateId>(-1))
                return;  // undriven: environment-set net, a source
            if (nl.gate(d).type != GateType::Comb)
                return;  // DFF / const / input output: a source
            producer = ns.gateNode(d);
        }
        consumers[producer].push_back(
            static_cast<uint32_t>(consumer_node));
        ++indegree[consumer_node];
    };

    for (GateId g = 0; g < nl.numGates(); ++g) {
        const Gate &gate = nl.gate(g);
        if (gate.type != GateType::Comb)
            continue;
        const unsigned arity = gateArity(gate.kind);
        for (unsigned i = 0; i < arity; ++i)
            add_dep(gate.in[i], ns.gateNode(g));
    }
    for (MemId m = 0; m < nl.numMemories(); ++m) {
        for (NetId a : nl.memory(m).readAddr)
            add_dep(a, ns.memNode(m));
    }

    // Kahn's algorithm.
    std::deque<size_t> ready;
    for (size_t n = 0; n < ns.total(); ++n) {
        if (schedulable[n] && indegree[n] == 0)
            ready.push_back(n);
    }

    std::vector<EvalStep> order;
    order.reserve(ns.total());
    while (!ready.empty()) {
        size_t n = ready.front();
        ready.pop_front();
        if (n < ns.n_gates) {
            order.push_back(
                {EvalStep::Kind::Gate, static_cast<uint32_t>(n)});
        } else {
            order.push_back(
                {EvalStep::Kind::MemRead,
                 static_cast<uint32_t>(n - ns.n_gates)});
        }
        for (uint32_t c : consumers[n]) {
            if (--indegree[c] == 0)
                ready.push_back(c);
        }
    }

    size_t expected = 0;
    for (size_t n = 0; n < ns.total(); ++n) {
        if (schedulable[n])
            ++expected;
    }
    if (order.size() != expected) {
        GLIFS_FATAL("combinational cycle detected: scheduled ",
                    order.size(), " of ", expected, " nodes");
    }
    return order;
}

} // namespace glifs
