/**
 * @file
 * Gate-count statistics for a netlist (used by Footnote-8 style
 * reporting and the energy model).
 */

#ifndef GLIFS_NETLIST_STATS_HH
#define GLIFS_NETLIST_STATS_HH

#include <array>
#include <cstddef>
#include <string>

#include "netlist/netlist.hh"

namespace glifs
{

/** Aggregate counts over a netlist. */
struct NetlistStats
{
    std::array<size_t, 9> combByKind{};  ///< indexed by GateKind
    size_t combGates = 0;
    size_t dffs = 0;
    size_t consts = 0;
    size_t inputs = 0;
    size_t outputs = 0;
    size_t nets = 0;
    size_t memories = 0;
    size_t memoryBits = 0;

    /** All nodes the symbolic analysis tracks state or taint for. */
    size_t trackedGates() const { return combGates + dffs; }

    std::string str() const;
};

/** Compute statistics for a netlist. */
NetlistStats computeStats(const Netlist &nl);

} // namespace glifs

#endif // GLIFS_NETLIST_STATS_HH
