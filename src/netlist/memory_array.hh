/**
 * @file
 * Conservative taint semantics for memory macro blocks (Section 4.1 and
 * Figure 9 of the paper).
 *
 * Reads and writes with fully known addresses behave like a normal RAM,
 * ORing the address taint into the data taint. An address with unknown
 * (X) bits denotes a *set* of cells: a read merges all reachable cells,
 * and a write conservatively merges the written data into every
 * reachable cell — a store through a fully unknown tainted pointer
 * therefore taints the whole memory, exactly the behaviour the paper
 * reports for the unmasked Figure 9 listing.
 */

#ifndef GLIFS_NETLIST_MEMORY_ARRAY_HH
#define GLIFS_NETLIST_MEMORY_ARRAY_HH

#include <functional>
#include <span>
#include <vector>

#include "netlist/netlist.hh"

namespace glifs
{

/** Decoded view of a (possibly partially unknown) memory address. */
struct MemAddr
{
    uint64_t base = 0;               ///< known bits of the address
    std::vector<unsigned> xBits;     ///< bit positions whose value is X
    bool tainted = false;            ///< OR of all address-bit taints
    bool fullRange = false;          ///< too many X bits: any cell

    /** Exactly one concrete address? */
    bool concrete() const { return !fullRange && xBits.empty(); }
};

/** Decode address signals (LSB first) into a MemAddr. */
MemAddr decodeMemAddr(std::span<const Signal> addr, size_t words,
                      unsigned max_unknown_bits);

/**
 * Enumerate every in-range concrete address a MemAddr may denote and
 * call @p fn(word_index) for each.
 */
void forEachAddr(const MemAddr &addr, size_t words,
                 const std::function<void(size_t)> &fn);

/**
 * Read one word. @p cells is the backing store laid out as
 * words*width signals, word-major. Output has @p width signals.
 */
void memoryRead(const std::vector<Signal> &cells, unsigned width,
                size_t words, const MemAddr &addr,
                std::span<Signal> data_out);

/**
 * Apply one write-port update at a clock edge. @p we is the write
 * enable signal, @p data the word to store.
 */
void memoryWrite(std::vector<Signal> &cells, unsigned width, size_t words,
                 const MemAddr &addr, const Signal &we,
                 std::span<const Signal> data);

} // namespace glifs

#endif // GLIFS_NETLIST_MEMORY_ARRAY_HH
