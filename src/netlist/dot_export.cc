#include "netlist/dot_export.hh"

#include <sstream>

namespace glifs
{

namespace
{

std::string
nodeName(GateId g)
{
    return "g" + std::to_string(g);
}

std::string
gateLabel(const Netlist &nl, GateId g)
{
    const Gate &gate = nl.gate(g);
    switch (gate.type) {
      case GateType::Comb:
        return gateKindName(gate.kind);
      case GateType::Dff:
        return "DFF " + nl.net(gate.out).name;
      case GateType::Const:
        return gate.constVal ? "1" : "0";
      case GateType::Input:
        return "IN " + nl.net(gate.out).name;
    }
    return "?";
}

} // namespace

std::string
toDot(const Netlist &nl, const std::string &graph_name)
{
    std::ostringstream oss;
    oss << "digraph " << graph_name << " {\n"
        << "  rankdir=LR;\n"
        << "  node [shape=box, fontname=\"monospace\"];\n";

    for (GateId g = 0; g < nl.numGates(); ++g) {
        oss << "  " << nodeName(g) << " [label=\"" << gateLabel(nl, g)
            << "\"";
        if (nl.gate(g).type == GateType::Dff)
            oss << ", style=filled, fillcolor=lightblue";
        oss << "];\n";
    }

    for (GateId g = 0; g < nl.numGates(); ++g) {
        const Gate &gate = nl.gate(g);
        unsigned arity = 0;
        if (gate.type == GateType::Comb)
            arity = gateArity(gate.kind);
        else if (gate.type == GateType::Dff)
            arity = 3;
        for (unsigned i = 0; i < arity; ++i) {
            NetId in = gate.in[i];
            if (in == kNoNet || nl.undriven(in) || nl.memDriven(in))
                continue;
            oss << "  " << nodeName(nl.driverOf(in)) << " -> "
                << nodeName(g);
            if (gate.type == GateType::Dff) {
                static const char *port[3] = {"d", "rst", "en"};
                oss << " [label=\"" << port[i] << "\"]";
            }
            oss << ";\n";
        }
    }

    for (const auto &[net, name] : nl.outputs()) {
        oss << "  out_" << net << " [label=\"OUT " << name
            << "\", shape=ellipse];\n";
        if (!nl.undriven(net) && !nl.memDriven(net)) {
            oss << "  " << nodeName(nl.driverOf(net)) << " -> out_" << net
                << ";\n";
        }
    }

    oss << "}\n";
    return oss.str();
}

} // namespace glifs
