/**
 * @file
 * Structural sanity checks for a finished netlist.
 */

#ifndef GLIFS_NETLIST_VALIDATE_HH
#define GLIFS_NETLIST_VALIDATE_HH

#include <string>
#include <vector>

#include "netlist/netlist.hh"

namespace glifs
{

/** One validation problem. */
struct ValidationIssue
{
    enum class Severity { Error, Warning };
    Severity severity;
    std::string message;
};

/**
 * Check the netlist for structural problems: unconnected gate inputs,
 * nets with no driver that are not primary inputs, disconnected
 * flip-flops, and combinational cycles.
 */
std::vector<ValidationIssue> validate(const Netlist &nl);

/** Run validate() and fatal() on the first error. */
void validateOrDie(const Netlist &nl);

} // namespace glifs

#endif // GLIFS_NETLIST_VALIDATE_HH
