/**
 * @file
 * Gate-level netlist intermediate representation.
 *
 * A Netlist is a flat sea of primitive gates (combinational GateKind
 * nodes, D flip-flops, constants) connected by single-driver nets, plus
 * MemoryArray macro blocks (program ROM / data RAM) with conservative
 * taint semantics. The IoT430 SoC (src/soc) is elaborated into this IR
 * and every analysis in glifs operates on it.
 */

#ifndef GLIFS_NETLIST_NETLIST_HH
#define GLIFS_NETLIST_NETLIST_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/ternary.hh"

namespace glifs
{

using NetId = uint32_t;
using GateId = uint32_t;
using MemId = uint32_t;

constexpr NetId kNoNet = static_cast<NetId>(-1);

/** Top-level node categories in the IR. */
enum class GateType : uint8_t
{
    Comb,   ///< combinational gate (GateKind)
    Dff,    ///< D flip-flop with reset and enable
    Const,  ///< constant 0/1 driver
    Input,  ///< primary input (driven by the environment)
};

/** One primitive node. */
struct Gate
{
    GateType type = GateType::Comb;
    GateKind kind = GateKind::Buf;

    /**
     * Input nets. Comb: gateArity(kind) entries. Dff: [d, rst, en].
     * Const/Input: unused.
     */
    std::array<NetId, 3> in = {kNoNet, kNoNet, kNoNet};

    /** The single net driven by this node. */
    NetId out = kNoNet;

    /**
     * Const only: the driven value. Never set on any other gate type;
     * a flip-flop's reset value lives in rstVal alone (historically
     * this field doubled as the Dff reset value, and stale copies
     * could silently disagree -- validate() now rejects a Dff with
     * constVal set).
     */
    bool constVal = false;

    /** Dff only: the value loaded on reset (the sole source). */
    bool rstVal = false;

    /**
     * Dff only: reset even when the global power-on-reset fires (the
     * watchdog POR resets every flop that has this set; memories are
     * never reset).
     */
    bool porReset = true;
};

/** A single-driver wire. */
struct Net
{
    std::string name;
    GateId driver = static_cast<GateId>(-1);
};

/** Declaration of a memory macro block. */
struct MemoryDecl
{
    std::string name;
    unsigned width = 16;          ///< bits per word
    size_t words = 0;             ///< number of words
    bool writable = true;         ///< false: ROM (no write port)

    std::vector<NetId> readAddr;  ///< read-port address (LSB first)
    std::vector<NetId> readData;  ///< read-port data out (driven by mem)

    std::vector<NetId> writeAddr; ///< write-port address (LSB first)
    std::vector<NetId> writeData; ///< write-port data in
    NetId writeEn = kNoNet;       ///< write enable

    /**
     * Maximum number of unknown (X) address bits that are enumerated
     * exactly before falling back to "whole memory" conservatism.
     */
    unsigned maxUnknownAddrBits = 12;

    /**
     * Whether a tainted read address taints the read data. True for
     * data memories (Figure-9 semantics). The program ROM sets this
     * false: a tainted PC's possible instruction streams are explored
     * explicitly by the analysis engine (which makes the PC concrete
     * per path and re-taints path-dependent differences when paths
     * merge), so fetches do not blanket-taint the IR.
     */
    bool addrTaintsRead = true;
};

/** Handle returned when creating a flip-flop. */
struct DffHandle
{
    GateId gate = static_cast<GateId>(-1);
    NetId q = kNoNet;
};

/**
 * The flat gate-level design container.
 */
class Netlist
{
  public:
    /** Create an anonymous or named net with no driver yet. */
    NetId addNet(const std::string &name = "");

    /** Create a primary input; returns its net. */
    NetId addInput(const std::string &name);

    /** Create (or reuse) a constant driver net. */
    NetId constNet(bool value);

    /** Add a combinational gate; returns its output net. */
    NetId addComb(GateKind kind, NetId a, NetId b = kNoNet,
                  NetId c = kNoNet, const std::string &name = "");

    /**
     * Add a D flip-flop. Inputs may be connected later via
     * connectDff() to allow feedback loops.
     */
    DffHandle addDff(const std::string &name, bool rst_val = false,
                     bool por_reset = true);

    /** Connect/replace the d / rst / en inputs of a flip-flop. */
    void connectDff(GateId dff, NetId d, NetId rst, NetId en);

    /** Register a memory block; nets must already exist. */
    MemId addMemory(const MemoryDecl &decl);

    /** Mark a net as a named primary output. */
    void markOutput(NetId net, const std::string &name);

    // --- accessors ---------------------------------------------------
    size_t numNets() const { return nets.size(); }
    size_t numGates() const { return gateList.size(); }
    size_t numMemories() const { return memories.size(); }

    const Gate &gate(GateId id) const { return gateList[id]; }
    const Net &net(NetId id) const { return nets[id]; }
    const MemoryDecl &memory(MemId id) const { return memories[id]; }

    const std::vector<Gate> &gates() const { return gateList; }
    const std::vector<Net> &netList() const { return nets; }
    const std::vector<MemoryDecl> &memoryList() const { return memories; }

    const std::vector<NetId> &inputs() const { return inputList; }
    const std::vector<std::pair<NetId, std::string>> &
    outputs() const { return outputList; }

    /** All flip-flop gate ids, in creation order. */
    const std::vector<GateId> &dffs() const { return dffList; }

    /** Look up a named net; kNoNet if absent. */
    NetId findNet(const std::string &name) const;

    /** Resolve the driver gate of a net (invalid id if none). */
    GateId driverOf(NetId net) const { return nets[net].driver; }

    /** True if the net has no driver at all (environment must set it). */
    bool
    undriven(NetId net) const
    {
        return nets[net].driver == static_cast<GateId>(-1);
    }

    /** True if the net is driven by a memory read port. */
    bool
    memDriven(NetId net) const
    {
        GateId d = nets[net].driver;
        return d != static_cast<GateId>(-1) && d >= gateList.size();
    }

    /** The memory driving a memDriven() net. */
    MemId
    memDriver(NetId net) const
    {
        return static_cast<MemId>(static_cast<GateId>(-2) -
                                  nets[net].driver);
    }

  private:
    std::vector<Net> nets;
    std::vector<Gate> gateList;
    std::vector<MemoryDecl> memories;
    std::vector<NetId> inputList;
    std::vector<std::pair<NetId, std::string>> outputList;
    std::vector<GateId> dffList;
    std::unordered_map<std::string, NetId> netByName;
    NetId const0 = kNoNet;
    NetId const1 = kNoNet;

    NetId newDrivenNet(GateId driver, const std::string &name);
};

} // namespace glifs

#endif // GLIFS_NETLIST_NETLIST_HH
