/**
 * @file
 * Netlist -> bit-packed straight-line program compiler.
 *
 * Lowers the levelized combinational schedule into a sequence of
 * *units*: packed batches of up to 64 same-kind gates evaluated by one
 * bitwise kernel over {0,1,X}+taint plane words (sim/packed_kernels.hh),
 * interleaved with the memory read ports, which stay interpreted.
 * Units execute in index order; every producer lands in a strictly
 * earlier unit than all of its consumers, so a dirty-unit bitset
 * drained in ascending order settles the netlist exactly like the
 * per-node level scheduler (DESIGN.md "Compiled evaluation").
 *
 * Signals do not live at their NetId bit position: the compiler
 * assigns every net a *slot* in a permuted plane space where each
 * batch owns one whole 64-bit word and its output lanes are that
 * word's consecutive bits. Storing kernel results is then a plain
 * word write (no scatter program at all), and because a consumer
 * batch's lanes are sorted by the slot of their distinguishing input,
 * bus-structured logic reads its operands as contiguous runs: one
 * (word, rotate, mask) gather op moves a whole run. Nets shared by
 * many lanes of a batch (clock enables, resets, mux selects) use
 * broadcast ops that smear a single plane bit across the lane mask.
 *
 * Flip-flops latch at the clock edge, staged exactly like the
 * interpreter, but packed as well: dffWords of up to 64 flops whose Q
 * slots are one dedicated word (commit is a word write), with gather
 * programs for D/RST/EN and a per-lane reset-value mask, evaluated by
 * dffNextKernel(). Edge work is event-driven too: the consumer index
 * maps every net to the dff words reading it, so quiescent flops cost
 * nothing.
 */

#ifndef GLIFS_NETLIST_COMPILE_HH
#define GLIFS_NETLIST_COMPILE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/levelize.hh"
#include "netlist/netlist.hh"

namespace glifs
{

/**
 * One gather op: dst |= f(plane[word]) & mask. With kRotate,
 * f = rotl(plane, rot & 63); with kBroadcast (rot bit 6 set),
 * f smears plane bit (rot & 63) across the word, so one shared source
 * net feeds any number of lanes in a single op. The same op list is
 * applied to all three planes of a signal word.
 */
struct PlaneOp
{
    /** rot bit 6 (kBroadcast) selects broadcast mode. */
    static constexpr uint8_t kBroadcast = 0x40;

    uint32_t word;  ///< source plane word
    uint8_t rot;    ///< left-rotate amount 0..63, or kBroadcast|bit
    uint64_t mask;  ///< destination lanes covered
};

/** Span of ops in the shared pool. */
struct OpRange
{
    uint32_t begin = 0;
    uint32_t end = 0;

    uint32_t size() const { return end - begin; }
};

/** Up to 64 same-kind gates evaluated by one kernel application. */
struct PackedBatch
{
    GateKind kind = GateKind::Buf;
    uint8_t arity = 1;
    uint8_t lanes = 0;      ///< live lanes, 1..64
    uint32_t outWord = 0;   ///< plane word owning the output lanes
    uint64_t laneMask = 0;  ///< low `lanes` bits set
    OpRange gather[3];      ///< per input slot, into CompiledNetlist::ops
};

/** One step of the settle schedule. */
struct EvalUnit
{
    enum class Kind : uint8_t { Batch, MemRead };
    Kind kind;
    uint32_t index;  ///< PackedBatch index or MemId
};

/** Up to 64 flip-flops latched by one dffNextKernel() application. */
struct DffWord
{
    uint8_t lanes = 0;
    uint32_t qWord = 0;     ///< plane word owning the Q slots
    uint64_t laneMask = 0;  ///< low `lanes` bits set
    uint64_t rstVal = 0;    ///< per-lane reset value mask
    OpRange gatherD;
    OpRange gatherRst;
    OpRange gatherEn;
};

/**
 * The compiled program plus the net <-> slot permutation and the
 * net -> consumer indices needed to drive it event-driven. Built once
 * per Simulator; immutable afterwards.
 */
struct CompiledNetlist
{
    size_t planeWords = 0;  ///< words per plane (permuted slot space)
    size_t combLanes = 0;   ///< total packed gate lanes (= comb gates)

    std::vector<PlaneOp> ops;  ///< shared gather-op pool
    std::vector<PackedBatch> batches;
    std::vector<EvalUnit> units;
    std::vector<DffWord> dffWords;

    /** Unit index evaluating each memory read port. */
    std::vector<uint32_t> unitOfMem;

    /** Unit producing each net, or -1 for sources (inputs, consts, Q). */
    std::vector<int32_t> producerUnit;

    /** Net -> plane slot (a bijection onto the used slots). */
    std::vector<uint32_t> slotOfNet;
    /** Slot -> net, kNoNet for unused lanes of a word. */
    std::vector<NetId> slotNet;

    /**
     * CSR net -> mark targets: a value < units.size() is a consuming
     * unit; units.size() + i is dff word i reading the net through
     * D/RST/EN/Q. May contain duplicates.
     */
    std::vector<uint32_t> consumerOffsets;
    std::vector<uint32_t> consumerUnits;

    std::span<const uint32_t>
    consumersOf(NetId net) const
    {
        return {consumerUnits.data() + consumerOffsets[net],
                consumerOffsets[net + 1] - consumerOffsets[net]};
    }

    std::span<const PlaneOp>
    opsOf(const OpRange &r) const
    {
        return {ops.data() + r.begin, r.end - r.begin};
    }
};

/**
 * Compile @p nl. @p order must be the schedule from levelize() for the
 * same netlist (its topological order seeds the unit assignment).
 */
CompiledNetlist compileNetlist(const Netlist &nl,
                               const std::vector<EvalStep> &order);

} // namespace glifs

#endif // GLIFS_NETLIST_COMPILE_HH
