/**
 * @file
 * Precomputed fanout index for event-driven combinational evaluation.
 *
 * For every net the index lists the schedulable consumers that must be
 * re-evaluated when the net's signal changes: combinational gates that
 * read it and memory read ports whose address includes it. Consumers
 * are identified in a compact node space shared with the levelized
 * schedule ([0, numGates) combinational gates, [numGates, +numMems)
 * memory read ports), and each node carries its topological level so a
 * dirty-set scheduler can drain changes in dependency order. Flip-flop
 * and memory write-port inputs are deliberately absent: they are
 * consumed at the clock edge, which always reads its inputs directly.
 */

#ifndef GLIFS_NETLIST_FANOUT_HH
#define GLIFS_NETLIST_FANOUT_HH

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/levelize.hh"
#include "netlist/netlist.hh"

namespace glifs
{

/**
 * CSR-style net -> consuming-node index plus per-node levels.
 *
 * Node numbering: node == GateId for combinational gates, node ==
 * numGates + MemId for memory read ports. A net may list the same
 * consumer twice (a gate reading it on two inputs); deduplication is
 * the marker's job (one bitset test per mark).
 */
struct FanoutIndex
{
    size_t nGates = 0;  ///< gate nodes [0, nGates)
    size_t nMems = 0;   ///< memory read-port nodes [nGates, +nMems)

    /** CSR row offsets, numNets()+1 entries. */
    std::vector<uint32_t> offsets;
    /** CSR payload: consumer node ids, grouped by net. */
    std::vector<uint32_t> consumers;

    /**
     * Topological level of each node: 0 for nodes fed only by sources
     * (inputs, constants, flip-flop outputs), else 1 + the maximum
     * level of any schedulable producer. Every edge in the
     * combinational graph strictly increases the level, so draining
     * dirty nodes level by level evaluates each at most once per
     * settle.
     */
    std::vector<uint32_t> levelOf;
    /** Number of distinct levels (max level + 1; 0 if no nodes). */
    uint32_t numLevels = 0;

    size_t numNodes() const { return nGates + nMems; }
    uint32_t gateNode(GateId g) const { return g; }

    uint32_t
    memNode(MemId m) const
    {
        return static_cast<uint32_t>(nGates + m);
    }

    bool isMemNode(uint32_t node) const { return node >= nGates; }

    MemId
    memOf(uint32_t node) const
    {
        return static_cast<MemId>(node - nGates);
    }

    /** Consumers of a net (possibly with duplicates). */
    std::span<const uint32_t>
    consumersOf(NetId net) const
    {
        return {consumers.data() + offsets[net],
                offsets[net + 1] - offsets[net]};
    }
};

/**
 * Build the fanout index of a netlist. @p order must be the schedule
 * returned by levelize() for the same netlist; levels are derived from
 * it, so a combinational cycle has already been rejected.
 */
FanoutIndex buildFanoutIndex(const Netlist &nl,
                             const std::vector<EvalStep> &order);

} // namespace glifs

#endif // GLIFS_NETLIST_FANOUT_HH
