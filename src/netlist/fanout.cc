#include "netlist/fanout.hh"

#include "base/logging.hh"

namespace glifs
{

namespace
{

/**
 * Schedulable producer node of a net, or -1 when the net is a source
 * (primary input, constant, flip-flop output, or undriven).
 */
int64_t
producerNode(const Netlist &nl, const FanoutIndex &fi, NetId net)
{
    if (net == kNoNet)
        return -1;
    if (nl.memDriven(net))
        return fi.memNode(nl.memDriver(net));
    GateId d = nl.driverOf(net);
    if (d == static_cast<GateId>(-1))
        return -1;
    if (nl.gate(d).type != GateType::Comb)
        return -1;
    return fi.gateNode(d);
}

} // namespace

FanoutIndex
buildFanoutIndex(const Netlist &nl, const std::vector<EvalStep> &order)
{
    FanoutIndex fi;
    fi.nGates = nl.numGates();
    fi.nMems = nl.numMemories();
    fi.levelOf.assign(fi.numNodes(), 0);

    // Levels, walking the (already topological) schedule: a node sits
    // one level above its deepest schedulable producer.
    for (const EvalStep &step : order) {
        uint32_t node;
        uint32_t lvl = 0;
        auto raise = [&](NetId in) {
            int64_t p = producerNode(nl, fi, in);
            if (p >= 0 && fi.levelOf[p] + 1 > lvl)
                lvl = fi.levelOf[p] + 1;
        };
        if (step.kind == EvalStep::Kind::Gate) {
            node = fi.gateNode(step.index);
            const Gate &g = nl.gate(step.index);
            const unsigned arity = gateArity(g.kind);
            for (unsigned i = 0; i < arity; ++i)
                raise(g.in[i]);
        } else {
            node = fi.memNode(step.index);
            for (NetId a : nl.memory(step.index).readAddr)
                raise(a);
        }
        fi.levelOf[node] = lvl;
        if (lvl + 1 > fi.numLevels)
            fi.numLevels = lvl + 1;
    }

    // CSR fanout: count, prefix-sum, fill.
    std::vector<uint32_t> counts(nl.numNets(), 0);
    auto countEdge = [&](NetId in) {
        if (in != kNoNet)
            ++counts[in];
    };
    for (GateId g = 0; g < nl.numGates(); ++g) {
        const Gate &gate = nl.gate(g);
        if (gate.type != GateType::Comb)
            continue;
        const unsigned arity = gateArity(gate.kind);
        for (unsigned i = 0; i < arity; ++i)
            countEdge(gate.in[i]);
    }
    for (MemId m = 0; m < nl.numMemories(); ++m) {
        for (NetId a : nl.memory(m).readAddr)
            countEdge(a);
    }

    fi.offsets.assign(nl.numNets() + 1, 0);
    for (size_t n = 0; n < nl.numNets(); ++n)
        fi.offsets[n + 1] = fi.offsets[n] + counts[n];
    fi.consumers.resize(fi.offsets.back());

    std::vector<uint32_t> cursor(fi.offsets.begin(),
                                 fi.offsets.end() - 1);
    auto fillEdge = [&](NetId in, uint32_t node) {
        if (in != kNoNet)
            fi.consumers[cursor[in]++] = node;
    };
    for (GateId g = 0; g < nl.numGates(); ++g) {
        const Gate &gate = nl.gate(g);
        if (gate.type != GateType::Comb)
            continue;
        const unsigned arity = gateArity(gate.kind);
        for (unsigned i = 0; i < arity; ++i)
            fillEdge(gate.in[i], fi.gateNode(g));
    }
    for (MemId m = 0; m < nl.numMemories(); ++m) {
        for (NetId a : nl.memory(m).readAddr)
            fillEdge(a, fi.memNode(m));
    }
    return fi;
}

} // namespace glifs
