/**
 * @file
 * Bit-level construction helpers over a Netlist: named gate factories and
 * reduction trees. The word-level layer lives in src/rtl.
 */

#ifndef GLIFS_NETLIST_BUILDER_HH
#define GLIFS_NETLIST_BUILDER_HH

#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hh"

namespace glifs
{

/**
 * Thin convenience wrapper that builds gates into a Netlist.
 */
class NetBuilder
{
  public:
    explicit NetBuilder(Netlist &netlist) : nl(netlist) {}

    Netlist &netlist() { return nl; }
    const Netlist &netlist() const { return nl; }

    NetId zero() { return nl.constNet(false); }
    NetId one() { return nl.constNet(true); }

    NetId bNot(NetId a) { return nl.addComb(GateKind::Not, a); }
    NetId bBuf(NetId a) { return nl.addComb(GateKind::Buf, a); }
    NetId bAnd(NetId a, NetId b) { return nl.addComb(GateKind::And, a, b); }
    NetId bNand(NetId a, NetId b)
    {
        return nl.addComb(GateKind::Nand, a, b);
    }
    NetId bOr(NetId a, NetId b) { return nl.addComb(GateKind::Or, a, b); }
    NetId bNor(NetId a, NetId b) { return nl.addComb(GateKind::Nor, a, b); }
    NetId bXor(NetId a, NetId b) { return nl.addComb(GateKind::Xor, a, b); }
    NetId bXnor(NetId a, NetId b)
    {
        return nl.addComb(GateKind::Xnor, a, b);
    }

    /** out = sel ? b : a */
    NetId
    bMux(NetId sel, NetId a, NetId b)
    {
        return nl.addComb(GateKind::Mux, sel, a, b);
    }

    /** 3-input helpers built from 2-input gates. */
    NetId bAnd3(NetId a, NetId b, NetId c) { return bAnd(bAnd(a, b), c); }
    NetId bOr3(NetId a, NetId b, NetId c) { return bOr(bOr(a, b), c); }

    /** Balanced AND reduction over a span of nets (empty -> const 1). */
    NetId reduceAnd(std::span<const NetId> nets);

    /** Balanced OR reduction over a span of nets (empty -> const 0). */
    NetId reduceOr(std::span<const NetId> nets);

    /** Balanced XOR reduction over a span of nets (empty -> const 0). */
    NetId reduceXor(std::span<const NetId> nets);

    /** NOR-reduction: 1 iff all nets are 0 (zero detector). */
    NetId isZero(std::span<const NetId> nets);

    /**
     * 1 iff the nets equal the constant @p value (LSB-first span).
     */
    NetId matchesConst(std::span<const NetId> nets, uint64_t value);

  private:
    Netlist &nl;

    NetId reduceTree(GateKind kind, std::span<const NetId> nets,
                     bool empty_value);
};

} // namespace glifs

#endif // GLIFS_NETLIST_BUILDER_HH
