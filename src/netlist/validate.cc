#include "netlist/validate.hh"

#include "base/logging.hh"
#include "netlist/levelize.hh"

namespace glifs
{

std::vector<ValidationIssue>
validate(const Netlist &nl)
{
    std::vector<ValidationIssue> issues;
    auto error = [&](std::string msg) {
        issues.push_back({ValidationIssue::Severity::Error,
                          std::move(msg)});
    };
    auto warning = [&](std::string msg) {
        issues.push_back({ValidationIssue::Severity::Warning,
                          std::move(msg)});
    };

    for (GateId g = 0; g < nl.numGates(); ++g) {
        const Gate &gate = nl.gate(g);
        switch (gate.type) {
          case GateType::Comb: {
            const unsigned arity = gateArity(gate.kind);
            for (unsigned i = 0; i < arity; ++i) {
                if (gate.in[i] == kNoNet) {
                    error(detail::concat("gate ", g, " (",
                                         gateKindName(gate.kind),
                                         ") input ", i, " unconnected"));
                }
            }
            break;
          }
          case GateType::Dff: {
            for (unsigned i = 0; i < 3; ++i) {
                if (gate.in[i] == kNoNet) {
                    error(detail::concat(
                        "dff ", g, " (net '", nl.net(gate.out).name,
                        "') input ", i, " unconnected"));
                }
            }
            // rstVal is the sole reset-value source (netlist.hh); a
            // set constVal on a flip-flop is a stale copy that some
            // reader might trust over rstVal.
            if (gate.constVal) {
                error(detail::concat(
                    "dff ", g, " (net '", nl.net(gate.out).name,
                    "') has constVal set; the reset value must live "
                    "in rstVal only"));
            }
            break;
          }
          default:
            break;
        }
    }

    for (NetId n = 0; n < nl.numNets(); ++n) {
        if (nl.undriven(n))
            warning(detail::concat("net ", n, " ('", nl.net(n).name,
                                   "') has no driver"));
    }

    bool have_errors = false;
    for (const auto &i : issues)
        have_errors |= i.severity == ValidationIssue::Severity::Error;

    if (!have_errors) {
        try {
            levelize(nl);
        } catch (const FatalError &e) {
            error(e.what());
        }
    }
    return issues;
}

void
validateOrDie(const Netlist &nl)
{
    for (const auto &issue : validate(nl)) {
        if (issue.severity == ValidationIssue::Severity::Error)
            GLIFS_FATAL("netlist validation: ", issue.message);
    }
}

} // namespace glifs
