/**
 * @file
 * The "always on" baseline transformation (Section 7.2): with no
 * application knowledge, every store in the task region must be masked
 * and every task must be watchdog-bounded, because all sufficient
 * conditions must be enforced unconditionally.
 */

#ifndef GLIFS_XFORM_ALWAYS_ON_HH
#define GLIFS_XFORM_ALWAYS_ON_HH

#include "assembler/parser.hh"
#include "ift/policy.hh"

namespace glifs
{

/** Outcome of the always-on transformation. */
struct AlwaysOnResult
{
    AsmProgram program;
    size_t masksInserted = 0;
    size_t absoluteStoresRewritten = 0;
};

/**
 * Mask *every* store at or after the label @p task_label (the task
 * region), regardless of whether the analysis would flag it. Register
 * based stores get AND/BIS mask pairs; absolute stores are left alone
 * (their addresses are constants the linker already fixed).
 */
AlwaysOnResult transformAlwaysOn(
    const AsmProgram &prog, const std::string &task_label = "task",
    uint16_t and_mask = iot430::kTaintedMaskAnd,
    uint16_t or_mask = iot430::kTaintedMaskOr);

} // namespace glifs

#endif // GLIFS_XFORM_ALWAYS_ON_HH
