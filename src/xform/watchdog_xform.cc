#include "xform/watchdog_xform.hh"

#include "base/logging.hh"
#include "base/strutil.hh"
#include "isa/isa.hh"

namespace glifs
{

uint16_t
wdtArmCommand(unsigned sel)
{
    GLIFS_ASSERT(sel < 4, "bad watchdog interval selector ", sel);
    return static_cast<uint16_t>(sel);
}

uint16_t
wdtHoldCommand()
{
    return iot430::kWdtHold;
}

WatchdogXformResult
applyWatchdogProtection(const AsmProgram &prog, unsigned interval_sel)
{
    WatchdogXformResult res;
    res.program = prog;
    const uint16_t cmd = wdtArmCommand(interval_sel);

    for (AsmItem &item : res.program.items) {
        if (item.kind == AsmItem::Kind::Equ && item.name == "WDT_CMD") {
            item.values[0] = AsmExpr{"", cmd};
            res.applied = true;
            res.notes.push_back(detail::concat(
                "warning: enabled watchdog protection (interval ",
                iot430::wdtIntervals[interval_sel],
                " cycles) via WDT_CMD"));
            return res;
        }
    }

    // No harness hook: insert an arming store before the first
    // instruction.
    for (size_t i = 0; i < res.program.items.size(); ++i) {
        if (res.program.items[i].kind != AsmItem::Kind::Instr)
            continue;
        AsmItem arm = makeInstr(Op::Mov, operandImm(cmd),
                                operandAbs(iot430::kWdtCtl));
        res.program.items.insert(res.program.items.begin() + i, arm);
        res.applied = true;
        res.notes.push_back(detail::concat(
            "warning: inserted watchdog arming store (interval ",
            iot430::wdtIntervals[interval_sel], " cycles)"));
        return res;
    }

    res.notes.push_back("error: no instruction to protect");
    return res;
}

} // namespace glifs
