/**
 * @file
 * Software memory-address masking (Section 5.2, Figure 9): insert
 * AND/BIS instructions before flagged store instructions so the
 * effective address provably stays inside the tainted partition.
 */

#ifndef GLIFS_XFORM_MASKING_HH
#define GLIFS_XFORM_MASKING_HH

#include "assembler/assembler.hh"
#include "ift/policy.hh"

namespace glifs
{

/** Outcome of a masking pass. */
struct MaskingResult
{
    AsmProgram program;            ///< rewritten program
    size_t masksInserted = 0;      ///< AND/BIS pairs added
    std::vector<uint16_t> unmaskable;  ///< stores that cannot be masked
    std::vector<std::string> notes;    ///< compiler-style messages
};

/**
 * Insert `and #and_mask, rX` / `bis #or_mask, rX` before each store
 * instruction listed in @p store_addrs (addresses from the analysis of
 * @p image, which must have been assembled from @p prog).
 *
 * Indirect and indexed stores are masked through their address
 * register; push/call (SP-relative) stores are masked through the
 * stack pointer; absolute stores have constant addresses and cannot be
 * redirected -- they are reported as unmaskable errors for the
 * programmer (Section 6, footnote 6).
 */
MaskingResult insertMasks(const AsmProgram &prog,
                          const ProgramImage &image,
                          const std::vector<uint16_t> &store_addrs,
                          uint16_t and_mask = iot430::kTaintedMaskAnd,
                          uint16_t or_mask = iot430::kTaintedMaskOr);

/** All store-instruction item indices of a program (for always-on). */
std::vector<size_t> findStoreItems(const AsmProgram &prog);

} // namespace glifs

#endif // GLIFS_XFORM_MASKING_HH
