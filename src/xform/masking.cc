#include "xform/masking.hh"

#include <algorithm>
#include <set>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace glifs
{

namespace
{

/** Which register carries the store address; -1 if none (absolute). */
int
storeAddrReg(const AsmItem &item)
{
    if (item.kind != AsmItem::Kind::Instr)
        return -1;
    if (item.op == Op::Push || item.op == Op::Call)
        return iot430::kSpReg;
    if (!isTwoOp(item.op))
        return -1;
    switch (item.dst.kind) {
      case AsmOperand::Kind::Ind:
      case AsmOperand::Kind::Idx:
        return static_cast<int>(item.dst.reg);
      default:
        return -1;
    }
}

bool
isStoreItem(const AsmItem &item)
{
    if (item.kind != AsmItem::Kind::Instr)
        return false;
    if (item.op == Op::Push || item.op == Op::Call)
        return true;
    return isTwoOp(item.op) &&
           (item.dst.kind == AsmOperand::Kind::Ind ||
            item.dst.kind == AsmOperand::Kind::Idx ||
            item.dst.kind == AsmOperand::Kind::Abs);
}

} // namespace

std::vector<size_t>
findStoreItems(const AsmProgram &prog)
{
    std::vector<size_t> out;
    for (size_t i = 0; i < prog.items.size(); ++i) {
        if (isStoreItem(prog.items[i]))
            out.push_back(i);
    }
    return out;
}

MaskingResult
insertMasks(const AsmProgram &prog, const ProgramImage &image,
            const std::vector<uint16_t> &store_addrs, uint16_t and_mask,
            uint16_t or_mask)
{
    MaskingResult res;

    // Resolve violating addresses to item indices.
    std::set<size_t> to_mask;
    for (uint16_t addr : store_addrs) {
        size_t idx = image.itemAt(addr);
        if (idx == ProgramImage::npos) {
            res.unmaskable.push_back(addr);
            res.notes.push_back(detail::concat(
                "error: violating address ", hex16(addr),
                " does not map to an instruction"));
            continue;
        }
        const AsmItem &item = prog.items[idx];
        if (storeAddrReg(item) < 0 ||
            storeAddrReg(item) == 0) {
            res.unmaskable.push_back(addr);
            res.notes.push_back(detail::concat(
                "error: store at ", hex16(addr), " (line ", item.line,
                ") uses a constant address and cannot be masked; fix "
                "the program or the policy labels"));
            continue;
        }
        to_mask.insert(idx);
    }

    // Rebuild the item list with AND/BIS pairs inserted before each
    // flagged store.
    for (size_t i = 0; i < prog.items.size(); ++i) {
        if (to_mask.count(i) != 0) {
            unsigned reg =
                static_cast<unsigned>(storeAddrReg(prog.items[i]));
            res.program.items.push_back(makeInstr(
                Op::And, operandImm(and_mask), operandReg(reg)));
            res.program.items.push_back(makeInstr(
                Op::Bis, operandImm(or_mask), operandReg(reg)));
            ++res.masksInserted;
            res.notes.push_back(detail::concat(
                "warning: masked store address register r", reg,
                " at line ", prog.items[i].line,
                " (store could taint an untainted partition)"));
        }
        res.program.items.push_back(prog.items[i]);
    }
    return res;
}

} // namespace glifs
