#include "xform/slicing.hh"

#include <sstream>

#include "base/logging.hh"
#include "isa/isa.hh"

namespace glifs
{

double
WatchdogPlan::overhead() const
{
    if (taskCycles == 0)
        return 0.0;
    return static_cast<double>(totalCycles - taskCycles) /
           static_cast<double>(taskCycles);
}

std::string
WatchdogPlan::str() const
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(2);
    oss << slices << " slice(s) of " << interval << " cycles (sel "
        << intervalSel << "), task " << taskCycles << " -> total "
        << totalCycles << " (+" << overhead() * 100.0 << "%)";
    return oss.str();
}

WatchdogPlan
planWatchdogForInterval(uint64_t task_cycles, unsigned sel,
                        const SliceCosts &costs)
{
    GLIFS_ASSERT(sel < 4, "bad watchdog interval selector ", sel);
    const uint64_t interval = iot430::wdtIntervals[sel];
    const uint64_t per_slice_cost = costs.contextSwitch + costs.wdtSetup;

    WatchdogPlan plan;
    plan.intervalSel = sel;
    plan.interval = interval;
    plan.taskCycles = task_cycles;
    if (interval <= per_slice_cost) {
        // No useful work fits in a slice.
        plan.slices = 0;
        plan.totalCycles = 0;
        return plan;
    }
    const uint64_t useful = interval - per_slice_cost;
    plan.slices = (task_cycles + useful - 1) / useful;
    if (plan.slices == 0)
        plan.slices = 1;
    plan.totalCycles = plan.slices * interval;
    plan.idlePadding = plan.totalCycles - plan.slices * per_slice_cost -
                       task_cycles;
    return plan;
}

WatchdogPlan
planWatchdog(uint64_t task_cycles, const SliceCosts &costs)
{
    WatchdogPlan best;
    bool have = false;
    for (unsigned sel = 0; sel < 4; ++sel) {
        WatchdogPlan plan =
            planWatchdogForInterval(task_cycles, sel, costs);
        if (plan.slices == 0)
            continue;
        if (!have || plan.totalCycles < best.totalCycles) {
            best = plan;
            have = true;
        }
    }
    if (!have)
        GLIFS_FATAL("no watchdog interval can make progress");
    return best;
}

} // namespace glifs
