/**
 * @file
 * Watchdog protection insertion (Section 5.2, Figure 8): make the
 * untainted system code arm the watchdog timer before transferring
 * control to a tainted task, so a power-on reset deterministically
 * recovers an untainted PC.
 */

#ifndef GLIFS_XFORM_WATCHDOG_XFORM_HH
#define GLIFS_XFORM_WATCHDOG_XFORM_HH

#include "assembler/parser.hh"
#include "xform/slicing.hh"

namespace glifs
{

/** Outcome of the watchdog-insertion pass. */
struct WatchdogXformResult
{
    AsmProgram program;
    bool applied = false;
    std::vector<std::string> notes;
};

/**
 * Enable watchdog protection in a program.
 *
 * If the program defines the harness symbol `WDT_CMD` (the
 * "#define"-style hook of Figure 11), its value is rewritten to the
 * requested interval selector. Otherwise an arming store to WDTCTL is
 * inserted at the start of the program (before the first instruction).
 */
WatchdogXformResult applyWatchdogProtection(const AsmProgram &prog,
                                            unsigned interval_sel);

/** The WDTCTL command word arming interval @p sel (hold bit clear). */
uint16_t wdtArmCommand(unsigned sel);

/** The WDTCTL command word that keeps the watchdog disabled. */
uint16_t wdtHoldCommand();

} // namespace glifs

#endif // GLIFS_XFORM_WATCHDOG_XFORM_HH
