#include "xform/overhead.hh"

#include <sstream>

#include "base/strutil.hh"
#include "netlist/stats.hh"

namespace glifs
{

SocRunner::Stimulus
measurementStimulus(uint32_t seed)
{
    return [seed](unsigned port, uint64_t /*cycle*/) -> uint16_t {
        // Hash of (seed, port) only: the value is constant over time,
        // so two program variants that sample the port on different
        // cycles (e.g. before/after mask insertion) still see the same
        // data and their cycle counts are directly comparable.
        uint32_t x = seed ^ (port * 0x9E3779B9u);
        x ^= x >> 13;
        x *= 0x85EBCA6Bu;
        x ^= x >> 16;
        return static_cast<uint16_t>(x);
    };
}

MeasuredRun
measureRun(const Soc &soc, const ProgramImage &image,
           const MeasureConfig &cfg)
{
    MeasuredRun run;
    SocRunner runner(soc);
    runner.load(image);
    runner.setStimulus(measurementStimulus(cfg.stimulusSeed));
    if (cfg.measureEnergy)
        runner.simulator().enableToggleStats(true);
    runner.reset();
    runner.simulator().resetCycleCount();
    runner.simulator().toggleStats().clear();

    bool done = false;
    while (runner.cycles() < cfg.maxCycles) {
        runner.stepCycle();
        if (!done && runner.portOut(cfg.donePort) == cfg.doneValue) {
            done = true;
            if (!cfg.runToPorAfterDone)
                break;
        }
        if (done && cfg.runToPorAfterDone) {
            Signal por = runner.simulator().state().net(
                soc.probes().porNet);
            if (por.known() && por.asBool())
                break;
        }
    }

    run.completed = done;
    run.cycles = runner.cycles();
    if (cfg.measureEnergy) {
        run.energy = computeEnergy(computeStats(soc.netlist()),
                                   runner.simulator().toggleStats());
    }
    return run;
}

double
OverheadComparison::perfOverhead() const
{
    if (base.cycles == 0)
        return 0.0;
    return (static_cast<double>(modified.cycles) -
            static_cast<double>(base.cycles)) /
           static_cast<double>(base.cycles);
}

double
OverheadComparison::energyOverhead() const
{
    if (base.energy.totalFj() <= 0.0)
        return 0.0;
    return (modified.energy.totalFj() - base.energy.totalFj()) /
           base.energy.totalFj();
}

std::string
OverheadComparison::str() const
{
    std::ostringstream oss;
    oss << "base " << base.cycles << " cy -> modified "
        << modified.cycles << " cy (+" << percent(perfOverhead())
        << "), energy +" << percent(energyOverhead());
    return oss.str();
}

} // namespace glifs
