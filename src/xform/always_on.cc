#include "xform/always_on.hh"

#include "isa/isa.hh"

namespace glifs
{

namespace
{

int
maskableStoreReg(const AsmItem &item)
{
    if (item.kind != AsmItem::Kind::Instr)
        return -1;
    if (item.op == Op::Push || item.op == Op::Call)
        return iot430::kSpReg;
    if (!isTwoOp(item.op))
        return -1;
    if ((item.dst.kind == AsmOperand::Kind::Ind ||
         item.dst.kind == AsmOperand::Kind::Idx) &&
        item.dst.reg != 0)
        return static_cast<int>(item.dst.reg);
    return -1;
}

} // namespace

AlwaysOnResult
transformAlwaysOn(const AsmProgram &prog, const std::string &task_label,
                  uint16_t and_mask, uint16_t or_mask)
{
    AlwaysOnResult res;
    bool in_task = false;
    for (const AsmItem &item : prog.items) {
        if (item.kind == AsmItem::Kind::Label &&
            item.name == task_label)
            in_task = true;
        if (in_task) {
            int reg = maskableStoreReg(item);
            if (reg > 0) {
                res.program.items.push_back(
                    makeInstr(Op::And, operandImm(and_mask),
                              operandReg(static_cast<unsigned>(reg))));
                res.program.items.push_back(
                    makeInstr(Op::Bis, operandImm(or_mask),
                              operandReg(static_cast<unsigned>(reg))));
                ++res.masksInserted;
            } else if (item.kind == AsmItem::Kind::Instr &&
                       isTwoOp(item.op) &&
                       item.dst.kind == AsmOperand::Kind::Abs) {
                ++res.absoluteStoresRewritten;
            }
        }
        res.program.items.push_back(item);
    }
    return res;
}

} // namespace glifs
