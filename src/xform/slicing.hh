/**
 * @file
 * Watchdog time-slice planning (Section 7.2).
 *
 * The MSP430-style watchdog offers four intervals (64, 512, 8192,
 * 32768 cycles). A tainted task of measured length T is executed in n
 * slices of interval I; each slice pays the context save/restore (20
 * cycles) and watchdog setup (10 cycles) overheads, and the final
 * slice is padded with an idle loop. The planner picks (I, n)
 * minimizing total time, exactly as the paper's toolflow does.
 */

#ifndef GLIFS_XFORM_SLICING_HH
#define GLIFS_XFORM_SLICING_HH

#include <cstdint>
#include <string>

namespace glifs
{

/** Fixed per-slice costs on the IoT430/openMSP430 (Section 7.2). */
struct SliceCosts
{
    uint64_t contextSwitch = 20;  ///< save + restore of task state
    uint64_t wdtSetup = 10;       ///< watchdog initialization / reset
};

/** A chosen slicing. */
struct WatchdogPlan
{
    unsigned intervalSel = 3;     ///< index into iot430::wdtIntervals
    uint64_t interval = 32768;
    uint64_t slices = 1;
    uint64_t taskCycles = 0;      ///< useful work being bounded
    uint64_t totalCycles = 0;     ///< slices * interval
    uint64_t idlePadding = 0;     ///< wasted cycles in the last slice

    /** (total - task) / task. */
    double overhead() const;

    std::string str() const;
};

/**
 * Pick the interval and slice count minimizing total time for a task
 * of @p task_cycles useful cycles.
 * @throws FatalError if the task cannot make progress in any slice
 *         (per-slice overhead exceeds every interval).
 */
WatchdogPlan planWatchdog(uint64_t task_cycles,
                          const SliceCosts &costs = {});

/**
 * Overhead of a specific interval choice (used by sweeps/ablations).
 */
WatchdogPlan planWatchdogForInterval(uint64_t task_cycles, unsigned sel,
                                     const SliceCosts &costs = {});

} // namespace glifs

#endif // GLIFS_XFORM_SLICING_HH
