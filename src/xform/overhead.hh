/**
 * @file
 * Concrete overhead measurement (Section 7.2): run original and
 * modified binaries through input-based gate-level simulation and
 * compare cycle counts and energy.
 *
 * Workloads signal completion by writing a magic value to their
 * (untrusted) output port; watchdog-protected runs optionally keep
 * simulating until the next POR so the idle padding of the final time
 * slice is charged, as the paper does.
 */

#ifndef GLIFS_XFORM_OVERHEAD_HH
#define GLIFS_XFORM_OVERHEAD_HH

#include "assembler/program_image.hh"
#include "power/energy_model.hh"
#include "soc/runner.hh"

namespace glifs
{

/** Magic "task finished" value written to the done port. */
constexpr uint16_t kDoneMagic = 0xD07E;

/** Measurement knobs. */
struct MeasureConfig
{
    unsigned donePort = 2;          ///< P2OUT signals completion
    uint16_t doneValue = kDoneMagic;
    bool runToPorAfterDone = false; ///< charge final-slice idle padding
    uint64_t maxCycles = 4'000'000;
    uint32_t stimulusSeed = 0x1234; ///< deterministic port inputs
    bool measureEnergy = true;
};

/** One measured concrete execution. */
struct MeasuredRun
{
    bool completed = false;
    uint64_t cycles = 0;
    EnergyReport energy;
};

/** Deterministic pseudo-random stimulus for measurement runs. */
SocRunner::Stimulus measurementStimulus(uint32_t seed);

/** Run a binary to completion and measure cycles/energy. */
MeasuredRun measureRun(const Soc &soc, const ProgramImage &image,
                       const MeasureConfig &cfg = {});

/** Base-vs-modified comparison. */
struct OverheadComparison
{
    MeasuredRun base;
    MeasuredRun modified;

    double perfOverhead() const;    ///< (mod - base) / base
    double energyOverhead() const;  ///< (modE - baseE) / baseE
    std::string str() const;
};

} // namespace glifs

#endif // GLIFS_XFORM_OVERHEAD_HH
