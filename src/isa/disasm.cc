#include "isa/disasm.hh"

#include <sstream>

#include "base/strutil.hh"

namespace glifs
{

namespace
{

std::string
reg(unsigned r)
{
    return "r" + std::to_string(r);
}

std::string
srcOperand(const Instr &ins)
{
    switch (ins.smode) {
      case Mode::Reg:
        return reg(ins.rs);
      case Mode::Imm:
        return "#" + hex16(ins.srcWord);
      case Mode::Ind:
        return "@" + reg(ins.rs);
      case Mode::Idx:
        if (ins.rs == 0)
            return "&" + hex16(ins.srcWord);
        return std::to_string(ins.srcWord) + "(" + reg(ins.rs) + ")";
    }
    return "?";
}

std::string
dstOperand(const Instr &ins)
{
    switch (ins.dmode) {
      case Mode::Reg:
        return reg(ins.rd);
      case Mode::Ind:
        return "@" + reg(ins.rd);
      case Mode::Idx:
        if (ins.rd == 0)
            return "&" + hex16(ins.dstWord);
        return std::to_string(ins.dstWord) + "(" + reg(ins.rd) + ")";
      default:
        return "?";
    }
}

} // namespace

std::string
disassemble(const Instr &ins, uint16_t pc)
{
    std::ostringstream oss;
    oss << opName(ins.op, ins.cond);
    if (isTwoOp(ins.op)) {
        oss << " " << srcOperand(ins) << ", " << dstOperand(ins);
    } else if (isOneOp(ins.op)) {
        oss << " " << reg(ins.rd);
    } else if (ins.op == Op::J) {
        oss << " " << hex16(static_cast<uint16_t>(pc + ins.words() +
                                                  ins.jumpOff));
    } else if (ins.op == Op::Push || ins.op == Op::Pop ||
               ins.op == Op::Br) {
        oss << " " << reg(ins.rd);
    } else if (ins.op == Op::Call) {
        oss << " #" << hex16(ins.srcWord);
    }
    return oss.str();
}

std::string
disassembleImage(const std::vector<uint16_t> &words, uint16_t base)
{
    std::ostringstream oss;
    size_t i = 0;
    while (i < words.size()) {
        uint16_t pc = static_cast<uint16_t>(base + i);
        auto ins = decode(&words[i], words.size() - i);
        oss << hex16(pc) << ":  ";
        if (!ins) {
            oss << ".word " << hex16(words[i]) << "\n";
            ++i;
            continue;
        }
        oss << disassemble(*ins, pc) << "\n";
        i += ins->words();
    }
    return oss.str();
}

} // namespace glifs
