#include "isa/isa.hh"

#include "base/bitutil.hh"
#include "base/logging.hh"

namespace glifs
{

bool
isTwoOp(Op op)
{
    return op >= Op::Mov && op <= Op::Bic;
}

bool
isOneOp(Op op)
{
    return op >= Op::Clr && op <= Op::Tst;
}

unsigned
Instr::words() const
{
    unsigned n = 1;
    if (isTwoOp(op) && (smode == Mode::Imm || smode == Mode::Idx))
        ++n;
    if (isTwoOp(op) && dmode == Mode::Idx)
        ++n;
    if (op == Op::Call)
        ++n;
    return n;
}

bool
Instr::readsMem() const
{
    if (isTwoOp(op) && (smode == Mode::Ind || smode == Mode::Idx))
        return true;
    return op == Op::Pop || op == Op::Ret;
}

bool
Instr::writesMem() const
{
    if (isTwoOp(op) && (dmode == Mode::Ind || dmode == Mode::Idx))
        return true;
    return op == Op::Push || op == Op::Call;
}

bool
Instr::isControlFlow() const
{
    return op == Op::J || op == Op::Call || op == Op::Ret ||
           op == Op::Br || op == Op::Halt;
}

std::string
opName(Op op, Cond cond)
{
    switch (op) {
      case Op::Mov: return "mov";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Cmp: return "cmp";
      case Op::And: return "and";
      case Op::Bis: return "bis";
      case Op::Xor: return "xor";
      case Op::Bic: return "bic";
      case Op::Clr: return "clr";
      case Op::Inc: return "inc";
      case Op::Dec: return "dec";
      case Op::Inv: return "inv";
      case Op::Rra: return "rra";
      case Op::Rrc: return "rrc";
      case Op::Rla: return "rla";
      case Op::Rlc: return "rlc";
      case Op::Swpb: return "swpb";
      case Op::Sxt: return "sxt";
      case Op::Tst: return "tst";
      case Op::J:
        switch (cond) {
          case Cond::Always: return "jmp";
          case Cond::Z: return "jz";
          case Cond::NZ: return "jnz";
          case Cond::C: return "jc";
          case Cond::NC: return "jnc";
          case Cond::N: return "jn";
          case Cond::GE: return "jge";
          case Cond::L: return "jl";
        }
        return "j?";
      case Op::Push: return "push";
      case Op::Pop: return "pop";
      case Op::Call: return "call";
      case Op::Ret: return "ret";
      case Op::Br: return "br";
      case Op::Nop: return "nop";
      case Op::Halt: return "halt";
    }
    return "?";
}

namespace
{

unsigned
oneOpSubop(Op op)
{
    return static_cast<unsigned>(op) - static_cast<unsigned>(Op::Clr);
}

} // namespace

std::vector<uint16_t>
encode(const Instr &instr)
{
    std::vector<uint16_t> out;
    const Op op = instr.op;

    if (isTwoOp(op)) {
        GLIFS_ASSERT(instr.rd < iot430::kNumRegs &&
                     instr.rs < iot430::kNumRegs, "bad register");
        if (instr.dmode == Mode::Imm)
            GLIFS_FATAL("immediate destination mode is illegal");
        const bool src_mem =
            instr.smode == Mode::Ind || instr.smode == Mode::Idx;
        const bool dst_mem =
            instr.dmode == Mode::Ind || instr.dmode == Mode::Idx;
        if (dst_mem && op != Op::Mov)
            GLIFS_FATAL("only mov may write memory: ", opName(op));
        if (src_mem && dst_mem)
            GLIFS_FATAL("memory-to-memory mov is illegal");
        uint16_t w = static_cast<uint16_t>(
            (static_cast<unsigned>(op) << 12) | (instr.rd << 8) |
            (instr.rs << 4) |
            (static_cast<unsigned>(instr.smode) << 2) |
            static_cast<unsigned>(instr.dmode));
        out.push_back(w);
        if (instr.smode == Mode::Imm || instr.smode == Mode::Idx)
            out.push_back(instr.srcWord);
        if (instr.dmode == Mode::Idx)
            out.push_back(instr.dstWord);
        return out;
    }

    if (isOneOp(op)) {
        GLIFS_ASSERT(instr.rd < iot430::kNumRegs, "bad register");
        out.push_back(static_cast<uint16_t>(
            (0x8u << 12) | (instr.rd << 8) | (oneOpSubop(op) << 4)));
        return out;
    }

    if (op == Op::J) {
        if (instr.jumpOff < -256 || instr.jumpOff > 255)
            GLIFS_FATAL("jump offset out of range: ", instr.jumpOff);
        out.push_back(static_cast<uint16_t>(
            (0x9u << 12) | (static_cast<unsigned>(instr.cond) << 9) |
            (static_cast<uint16_t>(instr.jumpOff) & 0x1FFu)));
        return out;
    }

    switch (op) {
      case Op::Push:
        out.push_back(static_cast<uint16_t>((0xAu << 12) |
                                            (instr.rd << 8) | (0u << 4)));
        return out;
      case Op::Pop:
        out.push_back(static_cast<uint16_t>((0xAu << 12) |
                                            (instr.rd << 8) | (1u << 4)));
        return out;
      case Op::Call:
        out.push_back(static_cast<uint16_t>((0xAu << 12) | (2u << 4)));
        out.push_back(instr.srcWord);
        return out;
      case Op::Ret:
        out.push_back(static_cast<uint16_t>((0xAu << 12) | (3u << 4)));
        return out;
      case Op::Br:
        out.push_back(static_cast<uint16_t>((0xAu << 12) |
                                            (instr.rd << 8) | (4u << 4)));
        return out;
      case Op::Nop:
        out.push_back(static_cast<uint16_t>((0xBu << 12) | (0u << 4)));
        return out;
      case Op::Halt:
        out.push_back(static_cast<uint16_t>((0xBu << 12) | (1u << 4)));
        return out;
      default:
        GLIFS_FATAL("unencodable op");
    }
}

std::optional<Instr>
decode(const uint16_t *mem, size_t avail)
{
    if (avail == 0)
        return std::nullopt;
    const uint16_t w = mem[0];
    const unsigned opc = (w >> 12) & 0xF;
    Instr ins;

    if (opc <= 0x7) {
        ins.op = static_cast<Op>(opc);
        ins.rd = (w >> 8) & 0xF;
        ins.rs = (w >> 4) & 0xF;
        ins.smode = static_cast<Mode>((w >> 2) & 0x3);
        ins.dmode = static_cast<Mode>(w & 0x3);
        if (ins.dmode == Mode::Imm)
            return std::nullopt;
        const bool src_mem =
            ins.smode == Mode::Ind || ins.smode == Mode::Idx;
        const bool dst_mem =
            ins.dmode == Mode::Ind || ins.dmode == Mode::Idx;
        if (dst_mem && (ins.op != Op::Mov || src_mem))
            return std::nullopt;
        size_t next = 1;
        if (ins.smode == Mode::Imm || ins.smode == Mode::Idx) {
            if (next >= avail)
                return std::nullopt;
            ins.srcWord = mem[next++];
        }
        if (ins.dmode == Mode::Idx) {
            if (next >= avail)
                return std::nullopt;
            ins.dstWord = mem[next++];
        }
        return ins;
    }

    if (opc == 0x8) {
        const unsigned sub = (w >> 4) & 0xF;
        if (sub > oneOpSubop(Op::Tst))
            return std::nullopt;
        ins.op = static_cast<Op>(static_cast<unsigned>(Op::Clr) + sub);
        ins.rd = (w >> 8) & 0xF;
        return ins;
    }

    if (opc == 0x9) {
        ins.op = Op::J;
        ins.cond = static_cast<Cond>((w >> 9) & 0x7);
        ins.jumpOff = static_cast<int16_t>(signExtend(w & 0x1FFu, 9));
        return ins;
    }

    if (opc == 0xA) {
        const unsigned sub = (w >> 4) & 0xF;
        ins.rd = (w >> 8) & 0xF;
        switch (sub) {
          case 0: ins.op = Op::Push; return ins;
          case 1: ins.op = Op::Pop; return ins;
          case 2:
            if (avail < 2)
                return std::nullopt;
            ins.op = Op::Call;
            ins.srcWord = mem[1];
            return ins;
          case 3: ins.op = Op::Ret; return ins;
          case 4: ins.op = Op::Br; return ins;
          default: return std::nullopt;
        }
    }

    if (opc == 0xB) {
        const unsigned sub = (w >> 4) & 0xF;
        if (sub == 0) {
            ins.op = Op::Nop;
            return ins;
        }
        if (sub == 1) {
            ins.op = Op::Halt;
            return ins;
        }
        return std::nullopt;
    }

    return std::nullopt;
}

} // namespace glifs
