/**
 * @file
 * Disassembler for the IoT430 ISA.
 */

#ifndef GLIFS_ISA_DISASM_HH
#define GLIFS_ISA_DISASM_HH

#include <string>

#include "isa/isa.hh"

namespace glifs
{

/**
 * Render a decoded instruction in assembler syntax.
 * @param pc word address of the instruction, used to resolve jump
 *        targets into absolute addresses.
 */
std::string disassemble(const Instr &instr, uint16_t pc = 0);

/**
 * Disassemble an entire program image into an address-annotated
 * listing.
 */
std::string disassembleImage(const std::vector<uint16_t> &words,
                             uint16_t base = 0);

} // namespace glifs

#endif // GLIFS_ISA_DISASM_HH
