/**
 * @file
 * The IoT430 instruction set: an MSP430-class 16-bit ISA used by the
 * gate-level SoC, the assembler and the analysis engine.
 *
 * Encoding (16-bit instruction words, program memory word-addressed):
 *
 *  Two-operand (opcode 0x0-0x7: MOV ADD SUB CMP AND BIS XOR BIC):
 *      [15:12] opcode  [11:8] rd  [7:4] rs  [3:2] smode  [1:0] dmode
 *      smode: 0 reg, 1 #imm (+word), 2 @rs, 3 idx imm(rs) (+word)
 *      dmode: 0 reg, 2 @rd, 3 idx imm(rd) (+word); only MOV may use
 *      memory destinations, and source and destination cannot both be
 *      memory. r0 reads as constant 0, so "&addr" is idx addr(r0).
 *      r1 is the stack pointer.
 *  One-operand (opcode 0x8):
 *      [11:8] rd  [7:4] subop
 *      subop: 0 CLR 1 INC 2 DEC 3 INV 4 RRA 5 RRC 6 RLA 7 RLC
 *             8 SWPB 9 SXT 10 TST
 *  Jumps (opcode 0x9):
 *      [11:9] cond (JMP JZ JNZ JC JNC JN JGE JL)  [8:0] signed word
 *      offset relative to the next instruction word.
 *  Stack/flow (opcode 0xA):  [7:4] subop
 *      0 PUSH rs([11:8]) 1 POP rd([11:8]) 2 CALL #target(+word)
 *      3 RET 4 BR rs([11:8])
 *  Misc (opcode 0xB):  [7:4] subop: 0 NOP 1 HALT
 */

#ifndef GLIFS_ISA_ISA_HH
#define GLIFS_ISA_ISA_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace glifs
{

/** Architectural constants of the IoT430. */
namespace iot430
{
constexpr unsigned kNumRegs = 16;
constexpr unsigned kWordBits = 16;
constexpr unsigned kPcBits = 12;
constexpr size_t kProgWords = 4096;
constexpr unsigned kSpReg = 1;

/// Data-space address map (word addresses).
constexpr uint16_t kP1In = 0x0000;
constexpr uint16_t kP1Out = 0x0001;
constexpr uint16_t kP2In = 0x0002;
constexpr uint16_t kP2Out = 0x0003;
constexpr uint16_t kP3In = 0x0004;
constexpr uint16_t kP3Out = 0x0005;
constexpr uint16_t kP4In = 0x0006;
constexpr uint16_t kP4Out = 0x0007;
constexpr uint16_t kWdtCtl = 0x0010;
constexpr uint16_t kRamBase = 0x0800;
constexpr size_t kRamWords = 2048;
constexpr uint16_t kRamEnd = kRamBase + kRamWords - 1;  // 0x0FFF

/// Watchdog control encoding: bits[1:0] interval select, bit 7 hold.
constexpr uint16_t kWdtHold = 0x0080;
constexpr uint16_t wdtIntervals[4] = {64, 512, 8192, 32768};
} // namespace iot430

/** Operations. */
enum class Op : uint8_t
{
    // two-operand
    Mov, Add, Sub, Cmp, And, Bis, Xor, Bic,
    // one-operand
    Clr, Inc, Dec, Inv, Rra, Rrc, Rla, Rlc, Swpb, Sxt, Tst,
    // jump (condition in Instr::cond)
    J,
    // stack / flow
    Push, Pop, Call, Ret, Br,
    // misc
    Nop, Halt,
};

/** Jump conditions. */
enum class Cond : uint8_t { Always, Z, NZ, C, NC, N, GE, L };

/** Addressing modes. */
enum class Mode : uint8_t { Reg = 0, Imm = 1, Ind = 2, Idx = 3 };

/** A decoded instruction. */
struct Instr
{
    Op op = Op::Nop;
    Cond cond = Cond::Always;
    unsigned rd = 0;         ///< destination register / PUSH-BR source
    unsigned rs = 0;         ///< source register
    Mode smode = Mode::Reg;
    Mode dmode = Mode::Reg;
    uint16_t srcWord = 0;    ///< immediate or source index offset
    uint16_t dstWord = 0;    ///< destination index offset
    int16_t jumpOff = 0;     ///< signed word offset for Op::J

    /** Total encoded length in words (1-3). */
    unsigned words() const;

    /** Does this instruction read data memory? */
    bool readsMem() const;
    /** Does this instruction write data memory? */
    bool writesMem() const;
    /** Can this instruction change the PC (other than PC+len)? */
    bool isControlFlow() const;

    bool operator==(const Instr &o) const = default;
};

/** True for MOV..BIC. */
bool isTwoOp(Op op);
/** True for CLR..TST. */
bool isOneOp(Op op);

/** Mnemonic of an operation ("mov", "jz", ...). */
std::string opName(Op op, Cond cond = Cond::Always);

/**
 * Encode an instruction into 1-3 words.
 * @throws FatalError on an unencodable instruction (bad mode combo,
 *         out-of-range jump offset).
 */
std::vector<uint16_t> encode(const Instr &instr);

/**
 * Decode the instruction starting at @p mem (with @p avail words
 * available). Returns nullopt for an illegal encoding.
 */
std::optional<Instr> decode(const uint16_t *mem, size_t avail);

} // namespace glifs

#endif // GLIFS_ISA_ISA_HH
