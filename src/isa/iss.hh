/**
 * @file
 * A golden instruction-set simulator (ISS) for the IoT430.
 *
 * Executes architecturally (no gates) and is used three ways: as a
 * fast functional simulator for firmware development, as the reference
 * model the gate-level SoC is co-simulated against in the property
 * tests, and for quick cycle estimates (it charges the documented
 * multi-cycle FSM timing of the core).
 */

#ifndef GLIFS_ISA_ISS_HH
#define GLIFS_ISA_ISS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "assembler/program_image.hh"
#include "isa/isa.hh"

namespace glifs
{

/** Architectural state of the golden model. */
struct IssState
{
    uint16_t pc = 0;
    std::array<uint16_t, 16> regs{};  ///< r0 reads 0; r1 is SP
    bool z = false, n = false, c = false, v = false;
    bool halted = false;

    uint16_t reg(unsigned r) const { return r == 0 ? 0 : regs[r]; }
};

/**
 * The golden model.
 */
class Iss
{
  public:
    /** Value supplier for reads of PxIN (port 1..4). */
    using PortIn = std::function<uint16_t(unsigned port)>;

    explicit Iss(const ProgramImage &image);

    /** Reset architectural state (keeps memory, like the POR). */
    void reset();

    /** Also clear RAM (power-up). */
    void powerUp();

    /**
     * Execute one instruction; returns the cycles it consumed on the
     * multi-cycle core. No-op when halted.
     */
    unsigned step();

    /** Run until HALT or the cycle budget is exhausted. */
    uint64_t run(uint64_t max_cycles = 1'000'000);

    const IssState &state() const { return st; }
    IssState &state() { return st; }

    uint16_t ram(uint16_t addr) const;
    void setRam(uint16_t addr, uint16_t value);
    uint16_t portOut(unsigned port) const;
    void setPortIn(PortIn fn) { portIn = std::move(fn); }

    /**
     * The watchdog counter (approximate architectural model: armed by
     * a WDTCTL store, decrements once per consumed cycle, POR resets
     * architectural state but not memory).
     */
    bool watchdogRunning() const { return !wdtHold; }

    /** Total consumed cycles. */
    uint64_t cycles() const { return cycleCount; }

  private:
    const ProgramImage &image;
    IssState st;
    std::vector<uint16_t> ramWords;
    std::array<uint16_t, 4> pout{};
    PortIn portIn;

    bool wdtHold = true;
    uint16_t wdtCounter = 0;

    uint64_t cycleCount = 0;

    uint16_t fetchWord();
    uint16_t readData(uint16_t addr);
    void writeData(uint16_t addr, uint16_t value);
    void setRegister(unsigned r, uint16_t value);
    void setFlagsLogic(uint16_t result);
    void por();
    void chargeCycles(unsigned n);
};

} // namespace glifs

#endif // GLIFS_ISA_ISS_HH
