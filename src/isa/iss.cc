#include "isa/iss.hh"

#include "base/logging.hh"
#include "soc/address_map.hh"

namespace glifs
{

Iss::Iss(const ProgramImage &img) : image(img)
{
    powerUp();
}

void
Iss::powerUp()
{
    ramWords.assign(iot430::kRamWords, 0);
    pout.fill(0);
    reset();
}

void
Iss::reset()
{
    st = IssState{};
    pout.fill(0);
    wdtHold = true;
    wdtCounter = 0;
}

void
Iss::por()
{
    // Power-on reset: every flip-flop clears, memory survives
    // (paper Section 5.2, footnote 5).
    st = IssState{};
    pout.fill(0);
    wdtHold = true;
    wdtCounter = 0;
}

void
Iss::chargeCycles(unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        ++cycleCount;
        if (!wdtHold) {
            if (--wdtCounter == 0) {
                por();
                return;
            }
        }
    }
}

uint16_t
Iss::ram(uint16_t addr) const
{
    GLIFS_ASSERT(classifyAddr(addr) == AddrRegion::Ram,
                 "iss: not a RAM address");
    return ramWords[ramIndex(addr)];
}

void
Iss::setRam(uint16_t addr, uint16_t value)
{
    ramWords[ramIndex(addr)] = value;
}

uint16_t
Iss::portOut(unsigned port) const
{
    GLIFS_ASSERT(port >= 1 && port <= 4, "bad port");
    return pout[port - 1];
}

uint16_t
Iss::fetchWord()
{
    uint16_t w = st.pc < image.words.size() ? image.words[st.pc] : 0;
    st.pc = static_cast<uint16_t>((st.pc + 1) & 0x0FFF);
    return w;
}

uint16_t
Iss::readData(uint16_t addr)
{
    switch (classifyAddr(addr)) {
      case AddrRegion::PortIn:
        return portIn ? portIn(*portIndex(addr)) : 0;
      case AddrRegion::PortOut:
        return pout[*portIndex(addr) - 1];
      case AddrRegion::WdtCtl:
        return wdtCounter;
      case AddrRegion::Ram:
        return ramWords[ramIndex(addr)];
      case AddrRegion::Unmapped:
        return 0;
    }
    return 0;
}

void
Iss::writeData(uint16_t addr, uint16_t value)
{
    switch (classifyAddr(addr)) {
      case AddrRegion::PortOut:
        pout[*portIndex(addr) - 1] = value;
        break;
      case AddrRegion::WdtCtl:
        wdtHold = (value & iot430::kWdtHold) != 0;
        wdtCounter = iot430::wdtIntervals[value & 3];
        break;
      case AddrRegion::Ram:
        ramWords[ramIndex(addr)] = value;
        break;
      default:
        break;
    }
}

void
Iss::setRegister(unsigned r, uint16_t value)
{
    if (r != 0)
        st.regs[r] = value;
}

void
Iss::setFlagsLogic(uint16_t result)
{
    st.z = result == 0;
    st.n = (result & 0x8000) != 0;
    st.c = false;
    st.v = false;
}

namespace
{

/** Add with flag computation matching the ripple-carry ALU. */
uint16_t
addFlags(uint16_t a, uint16_t b, bool cin, bool &cout, bool &vout)
{
    uint32_t full = static_cast<uint32_t>(a) + b + (cin ? 1 : 0);
    uint16_t sum = static_cast<uint16_t>(full);
    cout = (full >> 16) != 0;
    // Signed overflow: carry into MSB != carry out of MSB.
    uint32_t low = static_cast<uint32_t>(a & 0x7FFF) + (b & 0x7FFF) +
                   (cin ? 1 : 0);
    bool carry_in_msb = (low >> 15) != 0;
    vout = carry_in_msb != cout;
    return sum;
}

} // namespace

unsigned
Iss::step()
{
    if (st.halted)
        return 0;

    const uint16_t instr_pc = st.pc;
    std::vector<uint16_t> window;
    for (uint16_t i = 0; i < 3; ++i) {
        uint16_t a = static_cast<uint16_t>((instr_pc + i) & 0x0FFF);
        window.push_back(a < image.words.size() ? image.words[a] : 0);
    }
    auto decoded = decode(window.data(), window.size());
    if (!decoded) {
        // Undefined encodings execute as 2-cycle nops on the core.
        fetchWord();
        chargeCycles(2);
        return 2;
    }
    const Instr ins = *decoded;
    for (unsigned i = 0; i < ins.words(); ++i)
        fetchWord();

    unsigned cycles = 0;

    if (isTwoOp(ins.op)) {
        cycles = 2;  // fetch + exec
        // Source operand.
        uint16_t src = 0;
        switch (ins.smode) {
          case Mode::Reg:
            src = st.reg(ins.rs);
            break;
          case Mode::Imm:
            src = ins.srcWord;
            ++cycles;
            break;
          case Mode::Ind:
            src = readData(st.reg(ins.rs));
            ++cycles;
            break;
          case Mode::Idx:
            src = readData(
                static_cast<uint16_t>(st.reg(ins.rs) + ins.srcWord));
            cycles += 2;  // src-imm fetch + mem read
            break;
        }
        if (ins.dmode == Mode::Idx)
            ++cycles;  // dst-imm fetch

        const uint16_t a = st.reg(ins.rd);
        uint16_t result = 0;
        bool write_flags = true;
        switch (ins.op) {
          case Op::Mov:
            result = src;
            write_flags = false;
            break;
          case Op::Add: {
            bool c, v;
            result = addFlags(a, src, false, c, v);
            st.c = c;
            st.v = v;
            break;
          }
          case Op::Sub:
          case Op::Cmp: {
            bool c, v;
            result = addFlags(a, static_cast<uint16_t>(~src), true, c,
                              v);
            st.c = c;
            st.v = v;
            break;
          }
          case Op::And:
            result = a & src;
            st.c = false;
            st.v = false;
            break;
          case Op::Bis:
            result = a | src;
            st.c = false;
            st.v = false;
            break;
          case Op::Xor:
            result = a ^ src;
            st.c = false;
            st.v = false;
            break;
          case Op::Bic:
            result = a & static_cast<uint16_t>(~src);
            st.c = false;
            st.v = false;
            break;
          default:
            GLIFS_PANIC("not a two-op");
        }
        if (write_flags) {
            st.z = result == 0;
            st.n = (result & 0x8000) != 0;
        }

        // Destination.
        if (ins.op != Op::Cmp) {
            switch (ins.dmode) {
              case Mode::Reg:
                setRegister(ins.rd, result);
                break;
              case Mode::Ind:
                writeData(st.reg(ins.rd), result);
                ++cycles;
                break;
              case Mode::Idx:
                writeData(static_cast<uint16_t>(st.reg(ins.rd) +
                                                ins.dstWord),
                          result);
                ++cycles;
                break;
              default:
                break;
            }
        }
        chargeCycles(cycles);
        return cycles;
    }

    if (isOneOp(ins.op)) {
        cycles = 2;
        const uint16_t a = st.reg(ins.rd);
        uint16_t result = 0;
        bool c_flag = false;
        bool v_flag = false;
        switch (ins.op) {
          case Op::Clr:
            result = 0;
            break;
          case Op::Inc: {
            bool c, v;
            result = addFlags(a, 1, false, c, v);
            c_flag = c;
            v_flag = v;
            break;
          }
          case Op::Dec: {
            bool c, v;
            result = addFlags(a, 0xFFFE, true, c, v);
            c_flag = c;
            v_flag = v;
            break;
          }
          case Op::Inv:
            result = static_cast<uint16_t>(~a);
            break;
          case Op::Rra:
            result = static_cast<uint16_t>(
                static_cast<int16_t>(a) >> 1);
            c_flag = a & 1;
            break;
          case Op::Rrc:
            result = static_cast<uint16_t>((a >> 1) |
                                           (st.c ? 0x8000 : 0));
            c_flag = a & 1;
            break;
          case Op::Rla:
            result = static_cast<uint16_t>(a << 1);
            c_flag = (a & 0x8000) != 0;
            break;
          case Op::Rlc:
            result = static_cast<uint16_t>((a << 1) | (st.c ? 1 : 0));
            c_flag = (a & 0x8000) != 0;
            break;
          case Op::Swpb:
            result = static_cast<uint16_t>((a << 8) | (a >> 8));
            break;
          case Op::Sxt:
            result = static_cast<uint16_t>(
                static_cast<int16_t>(static_cast<int8_t>(a & 0xFF)));
            break;
          case Op::Tst:
            result = a;
            break;
          default:
            GLIFS_PANIC("not a one-op");
        }
        st.z = result == 0;
        st.n = (result & 0x8000) != 0;
        st.c = c_flag;
        st.v = v_flag;
        if (ins.op != Op::Tst)
            setRegister(ins.rd, result);
        chargeCycles(cycles);
        return cycles;
    }

    switch (ins.op) {
      case Op::J: {
        bool taken = false;
        switch (ins.cond) {
          case Cond::Always: taken = true; break;
          case Cond::Z: taken = st.z; break;
          case Cond::NZ: taken = !st.z; break;
          case Cond::C: taken = st.c; break;
          case Cond::NC: taken = !st.c; break;
          case Cond::N: taken = st.n; break;
          case Cond::GE: taken = st.n == st.v; break;
          case Cond::L: taken = st.n != st.v; break;
        }
        if (taken)
            st.pc = static_cast<uint16_t>((st.pc + ins.jumpOff) &
                                          0x0FFF);
        cycles = 2;
        break;
      }
      case Op::Push: {
        // The pushed value is sampled before SP moves (push r1 stores
        // the old stack pointer, as the datapath does).
        uint16_t value = st.reg(ins.rd);
        setRegister(1, static_cast<uint16_t>(st.regs[1] - 1));
        writeData(st.regs[1], value);
        cycles = 2;
        break;
      }
      case Op::Pop: {
        uint16_t value = readData(st.regs[1]);
        setRegister(ins.rd, value);
        setRegister(1, static_cast<uint16_t>(st.regs[1] + 1));
        cycles = 2;
        break;
      }
      case Op::Call:
        setRegister(1, static_cast<uint16_t>(st.regs[1] - 1));
        writeData(st.regs[1], st.pc);
        st.pc = static_cast<uint16_t>(ins.srcWord & 0x0FFF);
        cycles = 3;
        break;
      case Op::Ret:
        st.pc = static_cast<uint16_t>(readData(st.regs[1]) & 0x0FFF);
        setRegister(1, static_cast<uint16_t>(st.regs[1] + 1));
        cycles = 2;
        break;
      case Op::Br:
        st.pc = static_cast<uint16_t>(st.reg(ins.rd) & 0x0FFF);
        cycles = 2;
        break;
      case Op::Nop:
        cycles = 2;
        break;
      case Op::Halt:
        st.halted = true;
        cycles = 1;
        break;
      default:
        GLIFS_PANIC("unhandled op");
    }
    chargeCycles(cycles);
    return cycles;
}

uint64_t
Iss::run(uint64_t max_cycles)
{
    uint64_t start = cycleCount;
    while (!st.halted && cycleCount - start < max_cycles)
        step();
    return cycleCount - start;
}

} // namespace glifs
