#include "ift/checker.hh"

#include <sstream>

#include "base/bitutil.hh"
#include "base/logging.hh"
#include "base/stats.hh"
#include "base/strutil.hh"
#include "base/trace.hh"
#include "soc/address_map.hh"

namespace glifs
{

namespace
{

/** Policy-checking counters (docs/OBSERVABILITY.md). */
struct CheckerStats
{
    stats::Scalar cycleChecks{"checker.cycle_checks",
                              "per-cycle C1-C5 checks"};
    stats::Scalar memoryScans{"checker.memory_scans",
                              "path-end memory invariant scans"};
    stats::Scalar violations{"checker.violations",
                             "violation observations recorded"};
};

CheckerStats &
checkerStats()
{
    static CheckerStats s;
    return s;
}

} // namespace

const char *
violationKindName(ViolationKind kind)
{
    switch (kind) {
      case ViolationKind::TaintedControlFlow:
        return "C1-tainted-control-flow";
      case ViolationKind::UntaintedCodeTaintedPc:
        return "C1-untainted-code-tainted-pc";
      case ViolationKind::StoreUntaintedPartition:
        return "C2-store-untainted-partition";
      case ViolationKind::LoadTaintedData:
        return "C3-load-tainted-data";
      case ViolationKind::UntaintedReadTaintedPort:
        return "C4-untainted-read-tainted-port";
      case ViolationKind::TaintedWriteTrustedPort:
        return "C5-tainted-write-trusted-port";
      case ViolationKind::TrustedOutputTainted:
        return "trusted-output-tainted";
      case ViolationKind::WatchdogTainted:
        return "watchdog-tainted";
    }
    return "?";
}

bool
violationIsError(ViolationKind kind)
{
    switch (kind) {
      case ViolationKind::UntaintedCodeTaintedPc:
      case ViolationKind::UntaintedReadTaintedPort:
      case ViolationKind::TaintedWriteTrustedPort:
      case ViolationKind::TrustedOutputTainted:
        return true;
      default:
        return false;
    }
}

std::string
Violation::str() const
{
    std::ostringstream oss;
    oss << (violationIsError(kind) ? "error" : "warning") << " "
        << violationKindName(kind) << " @ " << hex16(instrAddr)
        << " (first cycle " << firstCycle << ", seen " << count << "x)";
    if (!detail.empty())
        oss << ": " << detail;
    return oss.str();
}

void
ViolationLog::record(ViolationKind kind, uint16_t instr_addr,
                     uint64_t cycle, const std::string &detail,
                     bool maskable)
{
    ++checkerStats().violations;
    GLIFS_TRACE_INSTANT_ARGS("checker", "violation",
                             add("kind", violationKindName(kind))
                                 .add("instr", hex16(instr_addr))
                                 .add("cycle", cycle));
    auto key = std::make_pair(static_cast<uint8_t>(kind), instr_addr);
    auto it = entries.find(key);
    if (it == entries.end()) {
        Violation v;
        v.kind = kind;
        v.instrAddr = instr_addr;
        v.firstCycle = cycle;
        v.count = 1;
        v.maskable = maskable;
        v.detail = detail;
        entries.emplace(key, std::move(v));
    } else {
        ++it->second.count;
        it->second.maskable = it->second.maskable || maskable;
    }
}

void
ViolationLog::restore(const Violation &v)
{
    entries.insert_or_assign(
        std::make_pair(static_cast<uint8_t>(v.kind), v.instrAddr), v);
}

void
ViolationLog::merge(const Violation &v)
{
    auto key = std::make_pair(static_cast<uint8_t>(v.kind), v.instrAddr);
    auto it = entries.find(key);
    if (it == entries.end()) {
        entries.emplace(key, v);
        return;
    }
    it->second.count += v.count;
    it->second.maskable |= v.maskable;
}

std::vector<Violation>
ViolationLog::list() const
{
    std::vector<Violation> out;
    out.reserve(entries.size());
    for (const auto &[key, v] : entries)
        out.push_back(v);
    return out;
}

namespace
{

/** A set of possible 16-bit addresses: fixed base plus free X bits. */
struct AddrSet
{
    uint16_t base = 0;
    uint16_t xmask = 0;
    bool tainted = false;

    bool
    canEqual(uint16_t c) const
    {
        return (base & ~xmask) == (c & ~xmask);
    }
};

AddrSet
addrSetFromBus(const Simulator &sim, const Bus &bus)
{
    AddrSet s;
    for (size_t i = 0; i < bus.size(); ++i) {
        Signal sig = sim.netValue(bus[i]);
        s.tainted = s.tainted || sig.taint;
        if (!sig.known())
            s.xmask |= static_cast<uint16_t>(1u << i);
        else if (sig.asBool())
            s.base |= static_cast<uint16_t>(1u << i);
    }
    return s;
}

/**
 * Can the set intersect [lo, hi]? Exact when the number of free bits
 * is small; conservatively true otherwise.
 */
bool
intersectsRange(const AddrSet &s, uint16_t lo, uint16_t hi)
{
    unsigned free_bits = popcount64(s.xmask);
    if (free_bits <= 12) {
        // Enumerate the subsets of xmask.
        uint16_t sub = 0;
        while (true) {
            uint16_t a = s.base | sub;
            if (a >= lo && a <= hi)
                return true;
            if (sub == s.xmask)
                break;
            sub = static_cast<uint16_t>((sub - s.xmask) & s.xmask);
        }
        return false;
    }
    // Conservative interval overlap.
    uint16_t min = s.base & static_cast<uint16_t>(~s.xmask);
    uint16_t max = s.base | s.xmask;
    return !(max < lo || min > hi);
}

/** Call fn(addr) for every set member inside [lo, hi] (bounded). */
template <typename Fn>
void
forEachInRange(const AddrSet &s, uint16_t lo, uint16_t hi, Fn fn)
{
    unsigned free_bits = popcount64(s.xmask);
    if (free_bits > 12) {
        for (uint32_t a = lo; a <= hi; ++a) {
            if (s.canEqual(static_cast<uint16_t>(a)))
                fn(static_cast<uint16_t>(a));
        }
        return;
    }
    uint16_t sub = 0;
    while (true) {
        uint16_t a = s.base | sub;
        if (a >= lo && a <= hi)
            fn(a);
        if (sub == s.xmask)
            break;
        sub = static_cast<uint16_t>((sub - s.xmask) & s.xmask);
    }
}

bool
busTainted(const Simulator &sim, const Bus &bus)
{
    for (NetId n : bus) {
        if (sim.netValue(n).taint)
            return true;
    }
    return false;
}

bool
netTainted(const Simulator &sim, NetId n)
{
    return sim.netValue(n).taint;
}

/** Concrete value of a bus; panics on X bits. */
uint16_t
busValueConcrete(const Simulator &sim, const Bus &bus, const char *what)
{
    uint16_t v = 0;
    for (size_t i = 0; i < bus.size(); ++i) {
        Signal s = sim.netValue(bus[i]);
        GLIFS_ASSERT(s.known(), what, " has unknown bit ", i);
        if (s.asBool())
            v |= static_cast<uint16_t>(1u << i);
    }
    return v;
}

const uint16_t kPortOutAddr[4] = {iot430::kP1Out, iot430::kP2Out,
                                  iot430::kP3Out, iot430::kP4Out};
const uint16_t kPortInAddr[4] = {iot430::kP1In, iot430::kP2In,
                                 iot430::kP3In, iot430::kP4In};

} // namespace

FlowChecker::FlowChecker(const Soc &s, const Policy &p)
    : soc(s), policy(p)
{
}

bool
FlowChecker::pcTainted(const Simulator &sim) const
{
    const SocProbes &prb = soc.probes();
    return busTainted(sim, prb.pcQ) || busTainted(sim, prb.stateQ);
}

void
FlowChecker::checkWrite(const Simulator &sim, uint16_t instr_addr,
                        uint64_t cycle, bool code_tainted,
                        ViolationLog &log) const
{
    const SocProbes &prb = soc.probes();
    Signal wstate = sim.netValue(prb.memWriteState);
    // No write can happen this cycle. (A tainted-but-0 write state is
    // covered by the engine exploring the paths where a write does
    // happen.)
    if (wstate.known() && !wstate.asBool())
        return;

    AddrSet addr = addrSetFromBus(sim, prb.dmemWriteAddr);
    const bool data_taint = busTainted(sim, prb.dmemWriteData);
    const bool we_taint = wstate.taint ||
                          netTainted(sim, prb.ramWriteEn);
    const bool any_taint =
        code_tainted || data_taint || addr.tainted || we_taint;

    for (const MemPartition &m : policy.mem) {
        if (m.tainted)
            continue;
        if (any_taint && intersectsRange(addr, m.lo, m.hi)) {
            log.record(ViolationKind::StoreUntaintedPartition, instr_addr,
                       cycle,
                       detail::concat("store may taint untainted "
                                      "partition '", m.name, "'"),
                       true);
        }
    }

    for (unsigned p = 0; p < 4; ++p) {
        if (!policy.trustedOutPort[p])
            continue;
        if (any_taint && addr.canEqual(kPortOutAddr[p])) {
            log.record(ViolationKind::TaintedWriteTrustedPort, instr_addr,
                       cycle,
                       detail::concat("tainted store may reach trusted "
                                      "P", p + 1, "OUT"),
                       true);
        }
    }

    if ((code_tainted || addr.tainted || we_taint) &&
        addr.canEqual(iot430::kWdtCtl)) {
        log.record(ViolationKind::WatchdogTainted, instr_addr, cycle,
                   "tainted store may reach WDTCTL", true);
    }
}

void
FlowChecker::checkRead(const Simulator &sim, uint16_t instr_addr,
                       uint64_t cycle, bool code_tainted,
                       ViolationLog &log) const
{
    // Only untainted code is constrained in what it may read
    // (conditions 3 and 4).
    if (code_tainted)
        return;

    const SocProbes &prb = soc.probes();
    uint16_t state = busValueConcrete(sim, prb.stateQ, "fsm state");
    const bool reading = state == static_cast<uint16_t>(
                             CoreState::ReadMem) ||
                         state == static_cast<uint16_t>(CoreState::Pop) ||
                         state == static_cast<uint16_t>(CoreState::Ret);
    if (!reading)
        return;

    AddrSet addr = addrSetFromBus(sim, prb.dmemReadAddr);

    for (const MemPartition &m : policy.mem) {
        if (!m.tainted)
            continue;
        if (intersectsRange(addr, m.lo, m.hi)) {
            log.record(ViolationKind::LoadTaintedData, instr_addr, cycle,
                       detail::concat("untainted code loads from "
                                      "tainted partition '", m.name,
                                      "'"));
        }
    }

    // Tainted cells anywhere in the reachable read set.
    const Netlist &nl = soc.netlist();
    const auto &cells = sim.state().memCells(prb.dataMem);
    const MemoryDecl &ram = nl.memory(prb.dataMem);
    forEachInRange(addr, iot430::kRamBase, iot430::kRamEnd,
                   [&](uint16_t a) {
                       size_t w = a - iot430::kRamBase;
                       for (unsigned b = 0; b < ram.width; ++b) {
                           if (cells[w * ram.width + b].taint) {
                               log.record(
                                   ViolationKind::LoadTaintedData,
                                   instr_addr, cycle,
                                   detail::concat(
                                       "untainted code loads tainted "
                                       "cell ", hex16(a)));
                               return;
                           }
                       }
                   });

    for (unsigned p = 0; p < 4; ++p) {
        if (!policy.taintedInPort[p])
            continue;
        if (addr.canEqual(kPortInAddr[p])) {
            log.record(ViolationKind::UntaintedReadTaintedPort,
                       instr_addr, cycle,
                       detail::concat("untainted code reads tainted P",
                                      p + 1, "IN"));
        }
    }
}

void
FlowChecker::checkCycle(const Simulator &sim, uint16_t instr_addr,
                        uint64_t cycle, ViolationLog &log) const
{
    ++checkerStats().cycleChecks;
    const SocProbes &prb = soc.probes();
    const bool code_tainted = policy.codeTainted(instr_addr);

    if (pcTainted(sim)) {
        log.record(code_tainted
                       ? ViolationKind::TaintedControlFlow
                       : ViolationKind::UntaintedCodeTaintedPc,
                   instr_addr, cycle,
                   code_tainted ? "PC tainted in tainted task"
                                : "PC tainted while untainted code runs");
    }

    checkWrite(sim, instr_addr, cycle, code_tainted, log);
    checkRead(sim, instr_addr, cycle, code_tainted, log);

    for (unsigned p = 0; p < 4; ++p) {
        if (policy.trustedOutPort[p] &&
            busTainted(sim, prb.portOut[p])) {
            log.record(ViolationKind::TrustedOutputTainted, instr_addr,
                       cycle,
                       detail::concat("trusted P", p + 1,
                                      "OUT carries taint"));
        }
    }

    if (netTainted(sim, prb.wdtWriteEn)) {
        log.record(ViolationKind::WatchdogTainted, instr_addr, cycle,
                   "WDTCTL write-enable carries taint");
    }
}

void
FlowChecker::checkMemoryInvariant(const Simulator &sim,
                                  uint16_t instr_addr, uint64_t cycle,
                                  ViolationLog &log) const
{
    ++checkerStats().memoryScans;
    const SocProbes &prb = soc.probes();
    const Netlist &nl = soc.netlist();
    const MemoryDecl &ram = nl.memory(prb.dataMem);
    const auto &cells = sim.state().memCells(prb.dataMem);

    for (const MemPartition &m : policy.mem) {
        if (m.tainted)
            continue;
        for (uint32_t a = m.lo; a <= m.hi; ++a) {
            if (classifyAddr(static_cast<uint16_t>(a)) != AddrRegion::Ram)
                continue;
            size_t w = ramIndex(static_cast<uint16_t>(a));
            for (unsigned b = 0; b < ram.width; ++b) {
                if (cells[w * ram.width + b].taint) {
                    log.record(
                        ViolationKind::StoreUntaintedPartition,
                        instr_addr, cycle,
                        detail::concat("untainted partition '", m.name,
                                       "' cell ", hex16(a),
                                       " is tainted"));
                    break;
                }
            }
        }
    }
}

} // namespace glifs
