/**
 * @file
 * Root-cause identification (Figure 10): map gate-level violations back
 * to the instructions and code tasks that must be fixed, driving the
 * software transformations of Section 5.2.
 */

#ifndef GLIFS_IFT_ROOTCAUSE_HH
#define GLIFS_IFT_ROOTCAUSE_HH

#include "assembler/program_image.hh"
#include "ift/engine.hh"

namespace glifs
{

/** The actionable output of the analysis. */
struct RootCauseReport
{
    /**
     * Addresses of store instructions that can write outside the
     * tainted partition: each needs memory-address masking.
     */
    std::vector<uint16_t> storesToMask;

    /**
     * Names of tainted code partitions whose control flow can become
     * tainted: each needs the watchdog-timer protection.
     */
    std::vector<std::string> tasksNeedingWatchdog;

    /**
     * Violations that software transformations cannot fix (illegal
     * direct accesses, Section 6 footnote): reported as errors.
     */
    std::vector<Violation> errors;

    /** All other (fixable) violations, for reference. */
    std::vector<Violation> warnings;

    bool
    needsModification() const
    {
        return !storesToMask.empty() || !tasksNeedingWatchdog.empty();
    }

    bool fixable() const { return errors.empty(); }

    /** Compiler-style report listing (Section 6). */
    std::string str(const ProgramImage *image = nullptr) const;
};

/**
 * Derive the root causes from an analysis result.
 *
 * @param image when given, "store needs masking" causes are filtered
 *        to instructions that actually write memory -- violations are
 *        also recorded against whatever instruction was executing when
 *        a persistent symptom (e.g. an already-tainted cell) was
 *        observed, and those must not be masked.
 */
RootCauseReport analyzeRootCauses(const EngineResult &result,
                                  const Policy &policy,
                                  const ProgramImage *image = nullptr);

} // namespace glifs

#endif // GLIFS_IFT_ROOTCAUSE_HH
