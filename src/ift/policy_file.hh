/**
 * @file
 * Textual policy files: the developer-facing way to hand labels to the
 * toolflow (the "Information Flow Policy" input of Figure 6) without
 * writing C++.
 *
 * Format (one directive per line; '#' comments):
 *
 *   policy  <name...>
 *   port    in  <1..4>  tainted|untainted
 *   port    out <1..4>  trusted|untrusted
 *   code    <name> <lo> <hi> tainted|untainted
 *   mem     <name> <lo> <hi> tainted|untainted
 *   taint-code                     # mark tainted code in program memory
 *
 * Numbers may be decimal or 0x-hex.
 */

#ifndef GLIFS_IFT_POLICY_FILE_HH
#define GLIFS_IFT_POLICY_FILE_HH

#include <string>

#include "ift/policy.hh"

namespace glifs
{

/**
 * Parse a policy document.
 * @throws FatalError with a line number on malformed input: unknown
 *         directives, bad labels/numbers, duplicate or overlapping
 *         code/mem partitions, and wholly empty documents are all
 *         rejected with a diagnostic naming the offending line.
 */
Policy parsePolicy(const std::string &text);

/** Parse a policy from a file on disk. */
Policy loadPolicyFile(const std::string &path);

/** Render a policy back into the file format (round-trips). */
std::string renderPolicy(const Policy &policy);

} // namespace glifs

#endif // GLIFS_IFT_POLICY_FILE_HH
