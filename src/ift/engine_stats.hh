/**
 * @file
 * The engine.* stat catalogue (docs/OBSERVABILITY.md), shared by the
 * serial exploration loop (ift/engine.cc), the segment runner
 * (ift/path_sim.cc) and the parallel coordinator
 * (explore/coordinator.cc) so both exploration modes feed the same
 * counters.
 */

#ifndef GLIFS_IFT_ENGINE_STATS_HH
#define GLIFS_IFT_ENGINE_STATS_HH

#include "base/stats.hh"

namespace glifs
{

/** Exploration counters of the symbolic engine. */
struct EngineStats
{
    stats::Scalar runs{"engine.runs", "analysis runs started"};
    stats::Scalar cycles{"engine.cycles",
                         "simulated cycles across all paths"};
    stats::Scalar paths{"engine.paths", "execution points explored"};
    stats::Scalar branchPoints{"engine.branch_points",
                               "forks on unknown PC or reset"};
    stats::Scalar porForks{"engine.por_forks",
                           "unknown watchdog-expiry forks"};
    stats::Scalar pcFanouts{"engine.pc_fanouts",
                            "unknown-PC successor enumerations"};
    stats::Distribution fanoutWidth{
        "engine.fanout_width",
        "concrete successors per unknown-PC branch", 0, 64, 16};
    stats::Distribution frontierDepth{
        "engine.frontier_depth", "frontier size at each pop", 0, 256,
        32};
    stats::Gauge frontierPeak{"engine.frontier_peak",
                              "pending execution points"};
    stats::Scalar escalations{"engine.escalations",
                              "degradation-ladder escalations"};
    stats::Scalar starSaturations{"engine.star_saturations",
                                  "paths saturated to *-logic"};
    stats::Gauge setupSeconds{"engine.setup_seconds",
                              "wall time loading/restoring state"};
    stats::Gauge exploreSeconds{"engine.explore_seconds",
                                "wall time in the exploration loop"};
    stats::Gauge finalizeSeconds{
        "engine.finalize_seconds",
        "wall time assembling results/checkpoints"};
    stats::Formula cyclesPerPath{
        "engine.cycles_per_path", "mean simulated cycles per path",
        [] {
            EngineStats &s = instance();
            return s.paths.value() == 0
                       ? 0.0
                       : static_cast<double>(s.cycles.value()) /
                             s.paths.value();
        }};

    static EngineStats &instance();
};

/** The process-wide engine.* counters. */
EngineStats &engineStats();

} // namespace glifs

#endif // GLIFS_IFT_ENGINE_STATS_HH
