#include "ift/symstate.hh"

#include "base/logging.hh"

namespace glifs
{

SymLayout::SymLayout(const Netlist &netlist) : nl(netlist)
{
    for (GateId g : nl.dffs())
        dffs.push_back(nl.gate(g).out);
    slotCount = dffs.size();
    for (MemId m = 0; m < nl.numMemories(); ++m) {
        const MemoryDecl &decl = nl.memory(m);
        if (!decl.writable)
            continue;  // ROM contents are constant: not state
        memBase.emplace_back(m, slotCount);
        slotCount += decl.words * decl.width;
    }
}

SymState::SymState(const SymLayout &layout)
    : known(layout.slots()), value(layout.slots()), taint(layout.slots())
{
}

Signal
SymState::slot(size_t i) const
{
    Signal s;
    if (known.get(i))
        s.value = value.get(i) ? Tern::One : Tern::Zero;
    else
        s.value = Tern::X;
    s.taint = taint.get(i);
    return s;
}

void
SymState::setSlot(size_t i, const Signal &s)
{
    known.set(i, s.known());
    value.set(i, s.known() && s.asBool());
    taint.set(i, s.taint);
}

void
SymState::setPlanes(BitPlane k, BitPlane v, BitPlane t)
{
    GLIFS_ASSERT(k.size() == v.size() && v.size() == t.size(),
                 "plane size mismatch");
    known = std::move(k);
    value = std::move(v);
    taint = std::move(t);
}

void
SymState::capture(const SymLayout &layout, const SignalState &sigs)
{
    if (known.size() != layout.slots()) {
        known.resize(layout.slots());
        value.resize(layout.slots());
        taint.resize(layout.slots());
    }
    size_t slot_idx = 0;
    for (NetId n : layout.dffNets())
        setSlot(slot_idx++, sigs.net(n));
    for (const auto &[mem, base] : layout.mems()) {
        const std::vector<Signal> &cells = sigs.memCells(mem);
        for (size_t i = 0; i < cells.size(); ++i)
            setSlot(base + i, cells[i]);
    }
}

void
SymState::restore(const SymLayout &layout, SignalState &sigs) const
{
    GLIFS_ASSERT(known.size() == layout.slots(), "layout mismatch");
    size_t slot_idx = 0;
    for (NetId n : layout.dffNets())
        sigs.setNet(n, slot(slot_idx++));
    for (const auto &[mem, base] : layout.mems()) {
        std::vector<Signal> &cells = sigs.memCells(mem);
        for (size_t i = 0; i < cells.size(); ++i)
            cells[i] = slot(base + i);
    }
}

bool
SymState::subsumedBy(const SymState &cons) const
{
    GLIFS_ASSERT(known.size() == cons.known.size(), "size mismatch");
    const auto &k1 = known.words();
    const auto &v1 = value.words();
    const auto &t1 = taint.words();
    const auto &k2 = cons.known.words();
    const auto &v2 = cons.value.words();
    const auto &t2 = cons.taint.words();
    for (size_t w = 0; w < k1.size(); ++w) {
        // Wherever cons is known, this must be known with equal value.
        if (k2[w] & (~k1[w] | (v1[w] ^ v2[w])))
            return false;
        // Taint containment.
        if (t1[w] & ~t2[w])
            return false;
    }
    return true;
}

void
SymState::mergeWith(const SymState &other, bool taint_diffs)
{
    GLIFS_ASSERT(known.size() == other.known.size(), "size mismatch");
    auto &k1 = known.words();
    auto &v1 = value.words();
    auto &t1 = taint.words();
    const auto &k2 = other.known.words();
    const auto &v2 = other.value.words();
    const auto &t2 = other.taint.words();
    for (size_t w = 0; w < k1.size(); ++w) {
        // Slots with a definite difference: known on both sides with
        // different values, or known on exactly one side.
        const uint64_t diff =
            (k1[w] & k2[w] & (v1[w] ^ v2[w])) | (k1[w] ^ k2[w]);
        // Known only where both known and values agree.
        k1[w] = k1[w] & k2[w] & ~(v1[w] ^ v2[w]);
        v1[w] &= k1[w];
        t1[w] |= t2[w];
        if (taint_diffs)
            t1[w] |= diff;
    }
}

} // namespace glifs
