#include "ift/path_sim.hh"

#include <unordered_map>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "base/trace.hh"
#include "ift/engine_stats.hh"

namespace glifs
{

PathSim::PathSim(const Soc &s, const Policy &p, const EngineConfig &c,
                 const ProgramImage &img)
    : soc(s), policy(p), cfg(c), image(img), sim(s.netlist()),
      layout(s.netlist()), checker(s, p)
{
    // Slot indices of the PC flip-flops within the layout.
    const Netlist &nl = s.netlist();
    std::unordered_map<GateId, size_t> slot_of;
    for (size_t i = 0; i < nl.dffs().size(); ++i)
        slot_of[nl.dffs()[i]] = i;
    for (GateId g : s.probes().pcFlops)
        pcSlots.push_back(slot_of.at(g));
}

void
PathSim::loadProgram()
{
    soc.loadProgram(sim.state(), image);
    if (policy.taintCodeInProgMem) {
        for (const CodePartition &p : policy.code) {
            if (!p.tainted)
                continue;
            for (uint32_t a = p.lo;
                 a <= p.hi && a < image.words.size(); ++a) {
                sim.setMemWord(soc.probes().progMem, a,
                               image.words[a], true);
            }
        }
    }
}

void
PathSim::setInputs(bool reset)
{
    const SocProbes &prb = soc.probes();
    sim.setInput(prb.extReset, sigBool(reset));
    for (unsigned p = 0; p < 4; ++p) {
        Signal s{Tern::X, policy.taintedInPort[p]};
        for (unsigned b = 0; b < 16; ++b)
            sim.setInput(prb.portIn[p][b], s);
    }
    // Nondeterminism injection (Section 8): force the named nets
    // unknown so every downstream outcome is explored.
    for (const auto &[net, taint] : cfg.injectUnknown)
        sim.setInput(net, Signal{Tern::X, taint});
}

uint16_t
PathSim::busValue(const Bus &bus, const char *what) const
{
    uint16_t v = 0;
    for (size_t i = 0; i < bus.size(); ++i) {
        Signal s = sim.netValue(bus[i]);
        GLIFS_ASSERT(s.known(), "engine: ", what,
                     " has unknown bit ", i);
        if (s.asBool())
            v |= static_cast<uint16_t>(1u << i);
    }
    return v;
}

uint16_t
PathSim::tryBusValue(const Bus &bus) const
{
    uint16_t v = 0;
    for (size_t i = 0; i < bus.size(); ++i) {
        Signal s = sim.netValue(bus[i]);
        if (!s.known())
            return 0xFFFF;
        if (s.asBool())
            v |= static_cast<uint16_t>(1u << i);
    }
    return v;
}

bool
PathSim::busHasX(const Bus &bus) const
{
    for (NetId n : bus) {
        if (!sim.netValue(n).known())
            return true;
    }
    return false;
}

void
PathSim::accumulateTaint(BitPlane &plane) const
{
    const auto &nets = sim.state().rawNets();
    auto &words = plane.words();
    for (size_t i = 0; i < nets.size(); ++i) {
        if (nets[i].taint)
            words[i / 64] |= 1ULL << (i % 64);
    }
}

std::vector<unsigned>
PathSim::statePcXBits(const SymState &s) const
{
    std::vector<unsigned> xs;
    for (size_t i = 0; i < pcSlots.size(); ++i) {
        if (!s.slot(pcSlots[i]).known())
            xs.push_back(static_cast<unsigned>(i));
    }
    return xs;
}

bool
PathSim::statePcTainted(const SymState &s) const
{
    for (size_t slot : pcSlots) {
        if (s.slot(slot).taint)
            return true;
    }
    return false;
}

uint16_t
PathSim::statePcBase(const SymState &s) const
{
    uint16_t v = 0;
    for (size_t i = 0; i < pcSlots.size(); ++i) {
        Signal sig = s.slot(pcSlots[i]);
        if (sig.known() && sig.asBool())
            v |= static_cast<uint16_t>(1u << i);
    }
    return v;
}

std::optional<Instr>
PathSim::instrAt(uint16_t addr) const
{
    if (addr >= image.words.size())
        return std::nullopt;
    return decode(&image.words[addr], image.words.size() - addr);
}

std::vector<uint16_t>
PathSim::candidatePcs(uint16_t instr_addr, const SymState &s,
                      bool &overflow)
{
    std::vector<unsigned> xbits = statePcXBits(s);
    uint16_t base = statePcBase(s);
    std::optional<Instr> instr = instrAt(instr_addr);

    std::vector<uint16_t> out;
    if (cfg.preciseJumpTargets && instr && instr->op == Op::J) {
        // Precise CFG successors of a conditional jump.
        uint16_t fall = static_cast<uint16_t>(instr_addr + 1);
        uint16_t target =
            static_cast<uint16_t>(instr_addr + 1 + instr->jumpOff);
        out = {target, fall};
    } else {
        if (xbits.size() > cfg.maxBranchBits) {
            overflow = true;
            return {};
        }
        for (size_t c = 0; c < (1ULL << xbits.size()); ++c) {
            uint16_t a = base;
            for (size_t k = 0; k < xbits.size(); ++k) {
                if ((c >> k) & 1ULL)
                    a |= static_cast<uint16_t>(1u << xbits[k]);
            }
            out.push_back(a);
        }
    }
    // Keep unique, in-range candidates consistent with the known
    // PC bits.
    std::vector<uint16_t> filtered;
    uint16_t xmask = 0;
    for (unsigned b : xbits)
        xmask |= static_cast<uint16_t>(1u << b);
    for (uint16_t a : out) {
        if (a >= image.words.size() && a >= iot430::kProgWords)
            continue;
        if ((a & ~xmask & lowMask(pcSlots.size())) !=
            (base & static_cast<uint16_t>(~xmask)))
            continue;
        bool dup = false;
        for (uint16_t f : filtered)
            dup |= f == a;
        if (!dup)
            filtered.push_back(a);
    }
    return filtered;
}

SymState
PathSim::concretizePc(const SymState &s, uint16_t pc) const
{
    SymState child = s;
    for (size_t i = 0; i < pcSlots.size(); ++i) {
        Signal cur = s.slot(pcSlots[i]);
        child.setSlot(pcSlots[i],
                      Signal{ternBool((pc >> i) & 1u), cur.taint});
    }
    return child;
}

std::pair<size_t, size_t>
PathSim::starSaturate(BitPlane *everTainted)
{
    ++engineStats().starSaturations;
    GLIFS_TRACE_INSTANT("engine", "star_saturate");
    // Bulk mutation of flop outputs and memory cells below
    // bypasses the simulator's tracked setters; invalidate its
    // dirty set so the settle is a full sweep.
    sim.markAllDirty();
    const Netlist &nl = soc.netlist();
    for (GateId g : nl.dffs())
        sim.state().setNet(nl.gate(g).out, Signal{Tern::X, true});
    for (MemId m = 0; m < nl.numMemories(); ++m) {
        if (!nl.memory(m).writable)
            continue;
        for (Signal &cell : sim.state().memCells(m))
            cell = Signal{Tern::X, true};
    }
    const SocProbes &prb = soc.probes();
    sim.setInput(prb.extReset, sigBool(false));
    for (unsigned p = 0; p < 4; ++p) {
        for (unsigned b = 0; b < 16; ++b)
            sim.setInput(prb.portIn[p][b], Signal{Tern::X, true});
    }
    sim.evalComb();
    if (cfg.trackTaintedNets && everTainted)
        accumulateTaint(*everTainted);

    size_t tainted = 0;
    size_t total = 0;
    for (const Gate &g : nl.gates()) {
        if (g.type != GateType::Comb && g.type != GateType::Dff)
            continue;
        ++total;
        Signal out = sim.netValue(g.out);
        bool next_taint = out.taint;
        if (g.type == GateType::Dff) {
            next_taint =
                dffNext(sim.netValue(g.in[0]), sim.netValue(g.in[1]),
                        sim.netValue(g.in[2]), out, g.rstVal).taint;
        }
        if (next_taint)
            ++tainted;
    }
    return {tainted, total};
}

SegmentResult
PathSim::runSegment(const SymState &start, const SegmentHooks &hooks)
{
    SegmentResult res;
    if (cfg.trackTaintedNets)
        res.taintDelta = BitPlane(soc.netlist().numNets());
    ViolationLog seglog;
    const SocProbes &prb = soc.probes();

    start.restore(layout, sim.state());
    // The restore rewrote every flop and memory cell behind the
    // scheduler's back; the first settle of the segment must sweep.
    sim.markAllDirty();
    GLIFS_ASSERT(statePcXBits(start).empty(),
                 "segment start with unknown PC");

    while (true) {
        // The serial loop's governor-poll point: before the cycle's
        // inputs are driven. Workers run hook-free; the coordinator's
        // inline execution polls its governor here, preserving the
        // serial engine's cycle-exact budget stops.
        if (hooks.poll) {
            CycleAction act = hooks.poll();
            if (act == CycleAction::Stop) {
                res.stopped = true;
                SymState cur(layout);
                cur.capture(layout, sim.state());
                res.end = std::move(cur);
                res.endInstr = tryBusValue(prb.instrAddrQ);
                res.violations = seglog.list();
                return res;
            }
            if (act == CycleAction::Kill) {
                res.killed = true;
                res.endInstr = tryBusValue(prb.instrAddrQ);
                res.violations = seglog.list();
                return res;
            }
        }

        setInputs(false);
        sim.evalComb();
        ++res.cycles;
        if (hooks.cycleCharged)
            hooks.cycleCharged();
        if (cfg.trackTaintedNets)
            accumulateTaint(res.taintDelta);

        const uint16_t instr_addr =
            busValue(prb.instrAddrQ, "instruction address");
        checker.checkCycle(sim, instr_addr, res.cycles, seglog);

        const uint16_t fsm = busValue(prb.stateQ, "fsm state");

        if (fsm == static_cast<uint16_t>(CoreState::Halt)) {
            res.halted = true;
            res.endInstr = instr_addr;
            res.endFsm = fsm;
            checker.checkMemoryInvariant(sim, instr_addr, res.cycles,
                                         seglog);
            res.violations = seglog.list();
            return res;
        }

        // Is this cycle a PC-changing commit?
        std::optional<Instr> instr = instrAt(instr_addr);
        bool is_commit =
            fsm == static_cast<uint16_t>(CoreState::Call) ||
            fsm == static_cast<uint16_t>(CoreState::Ret) ||
            (fsm == static_cast<uint16_t>(CoreState::Exec) && instr &&
             (instr->op == Op::J || instr->op == Op::Br));

        // Unknown watchdog expiry: fork into fired / not-fired so
        // the POR is always simulated with a concrete reset line
        // (preserving the Figure-7 untainting). The fired branch is
        // returned as a frontier push; the not-fired branch continues
        // inline but is forced through the state table so the chain
        // of forks converges.
        Signal por = sim.netValue(prb.porNet);
        if (!por.known()) {
            GLIFS_TRACE_INSTANT_ARGS(
                "engine", "por_fork",
                add("instr", hex16(instr_addr))
                    .add("seg_cycle", res.cycles));
            SymState pre(layout);
            pre.capture(layout, sim.state());

            // Fired branch: POR forced high; PC resets to 0.
            sim.setNet(prb.porNet, Signal{Tern::One, por.taint});
            sim.clockEdge();
            SymState fired(layout);
            fired.capture(layout, sim.state());
            GLIFS_ASSERT(statePcXBits(fired).empty(),
                         "POR branch left the PC unknown");
            const uint16_t startPc = statePcBase(fired);
            res.porForks.push_back({std::move(fired), startPc});

            // Not-fired branch: replay the cycle with POR forced
            // low and continue inline as a forced merge point.
            // The fork chain is bounded by the next PC-changing
            // commit, where the normal state-table subsumption
            // applies.
            pre.restore(layout, sim.state());
            sim.markAllDirty();
            setInputs(false);
            sim.evalComb();
            sim.setNet(prb.porNet, Signal{Tern::Zero, por.taint});
        }

        sim.clockEdge();

        SymState cur(layout);
        cur.capture(layout, sim.state());
        bool pc_unknown = !statePcXBits(cur).empty();

        if (!is_commit && !pc_unknown)
            continue;
        if (cfg.disableMerging && !pc_unknown)
            continue; // ablation: no subsumption, no merging

        res.end = std::move(cur);
        res.endInstr = instr_addr;
        res.endFsm = fsm;
        res.pcUnknown = pc_unknown;
        res.violations = seglog.list();
        return res;
    }
}

} // namespace glifs
