/**
 * @file
 * Per-path symbolic simulation shared by the serial engine
 * (ift/engine.cc) and the parallel exploration workers
 * (explore/worker.cc).
 *
 * A *segment* is the simulation of one execution point from its
 * concrete-PC start state up to the next PC-changing commit, HALT, or
 * hook-requested stop -- exactly the stretch the serial loop runs
 * between a frontier pop and the next state-table visit. Segments are
 * pure functions of the start state: every simulated value, violation
 * and POR fork depends only on the netlist, policy, program image and
 * the start state, never on the engine's global budgets or ladder
 * position (those only affect what the *caller* does with the segment
 * end). That purity is what lets worker processes execute segments
 * speculatively while the coordinator applies them in strict serial
 * order (DESIGN.md §11).
 */

#ifndef GLIFS_IFT_PATH_SIM_HH
#define GLIFS_IFT_PATH_SIM_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "assembler/program_image.hh"
#include "ift/checker.hh"
#include "ift/engine.hh"
#include "ift/symstate.hh"
#include "sim/simulator.hh"
#include "soc/soc.hh"

namespace glifs
{

/** An unknown watchdog-expiry fork taken inside a segment: the fired
 *  branch (concrete PC) to be pushed on the frontier, in order. */
struct SegmentPorFork
{
    SymState fired;
    uint16_t startPc = 0;
};

/** What one segment simulated, in segment-relative terms. */
struct SegmentResult
{
    uint64_t cycles = 0;     ///< simulated cycles in this segment
    SymState end;            ///< state after the terminal clock edge
    uint16_t endInstr = 0;   ///< committing instruction address
    uint16_t endFsm = 0;     ///< FSM state at the commit
    bool halted = false;     ///< program reached HALT (no end state)
    bool pcUnknown = false;  ///< end state has unknown PC bits
    bool stopped = false;    ///< hook Stop: end is the in-flight state
    bool killed = false;     ///< hook Kill: caller *-logics the path

    /** Violations observed in the segment, aggregated per (kind,
     *  instruction) with firstCycle *relative* to the segment start
     *  (1-based); the applier rebases them onto the global clock. */
    std::vector<Violation> violations;

    /** POR forks taken, in push order. */
    std::vector<SegmentPorFork> porForks;

    /** Nets that carried taint during the segment (empty when
     *  EngineConfig::trackTaintedNets is off). */
    BitPlane taintDelta;
};

/** Per-cycle hook decisions mirroring the serial governor poll. */
enum class CycleAction : uint8_t
{
    Continue, ///< simulate the next cycle
    Stop,     ///< hard budget: return with the in-flight state
    Kill,     ///< ladder exhausted: return; caller star-saturates
};

/**
 * Optional per-cycle callbacks. `poll` runs at the serial loop's
 * governor-poll point (before the cycle's inputs are driven);
 * `cycleCharged` runs right after the combinational settle, where the
 * serial loop charges its cycle counters. Workers run hook-free.
 */
struct SegmentHooks
{
    std::function<CycleAction()> poll;
    std::function<void()> cycleCharged;
};

/**
 * One path's symbolic simulation context: the simulator, the symbolic
 * layout, the per-cycle policy checker and every PC/branch helper of
 * Algorithm 1. The engine's degradation ladder mutates `cfg` in place
 * (preciseJumpTargets), which only changes how branch successors are
 * enumerated -- segment execution itself never reads the mutated
 * knobs, preserving segment purity.
 */
class PathSim
{
  public:
    PathSim(const Soc &s, const Policy &p, const EngineConfig &c,
            const ProgramImage &img);

    const Soc &soc;
    const Policy &policy;
    EngineConfig cfg; ///< by value: the ladder mutates it in place
    const ProgramImage &image;

    Simulator sim;
    SymLayout layout;
    FlowChecker checker;
    std::vector<size_t> pcSlots; ///< SymState slots of the PC flops

    /** Load the binary; taint the tainted code partitions (footnote
     *  3). Program ROM is not part of the captured symbolic state, so
     *  this also re-establishes it when resuming a checkpoint. */
    void loadProgram();

    /** Drive reset and port inputs for one cycle. */
    void setInputs(bool reset);

    /** Concrete value of a probed register bus; panics on X. */
    uint16_t busValue(const Bus &bus, const char *what) const;

    /** Concrete value of a probed bus, or 0xFFFF if any bit is X
     *  (degradation records must never panic on unknowns). */
    uint16_t tryBusValue(const Bus &bus) const;

    bool busHasX(const Bus &bus) const;

    /** OR this cycle's net taints into @p plane. */
    void accumulateTaint(BitPlane &plane) const;

    /** Unknown PC bits of a captured state. */
    std::vector<unsigned> statePcXBits(const SymState &s) const;

    /** Any taint on the PC bits of a captured state. */
    bool statePcTainted(const SymState &s) const;

    uint16_t statePcBase(const SymState &s) const;

    /** Decode the instruction at a program address (nullopt: data). */
    std::optional<Instr> instrAt(uint16_t addr) const;

    /**
     * Possible concrete next-PC values for a state whose PC has X
     * bits (Algorithm 1, possible_PC_next_vals). Sets @p overflow
     * (and returns nothing) when the enumeration would exceed the
     * hard branch-fanout budget; the caller degrades the path to the
     * *-logic abstraction instead of aborting the analysis.
     */
    std::vector<uint16_t> candidatePcs(uint16_t instr_addr,
                                       const SymState &s,
                                       bool &overflow);

    /** Child of @p s with the PC forced to @p pc (taints retained). */
    SymState concretizePc(const SymState &s, uint16_t pc) const;

    /**
     * *-logic abstraction: saturate all state to tainted-X, settle the
     * combinational logic once, and report how many gate outputs end
     * up tainted (footnote 8 reproduction).
     */
    std::pair<size_t, size_t> starSaturate(BitPlane *everTainted);

    /**
     * Run one segment from @p start: restore it, then simulate cycle
     * by cycle exactly like the serial inner loop until the next
     * PC-changing commit / unknown PC / HALT, or until a hook says
     * Stop or Kill. The simulator is left in the segment's final
     * in-flight state (Kill callers star-saturate it; Stop callers
     * already got it captured in SegmentResult::end).
     */
    SegmentResult runSegment(const SymState &start,
                             const SegmentHooks &hooks = {});
};

} // namespace glifs

#endif // GLIFS_IFT_PATH_SIM_HH
