/**
 * @file
 * Per-cycle information-flow policy checking (Section 4.2) over the
 * symbolic simulation, reporting violations of the sufficient
 * conditions of Section 5.1 plus the direct non-interference checks.
 */

#ifndef GLIFS_IFT_CHECKER_HH
#define GLIFS_IFT_CHECKER_HH

#include <map>
#include <string>
#include <vector>

#include "ift/policy.hh"
#include "sim/simulator.hh"
#include "soc/soc.hh"

namespace glifs
{

/** Violation categories, mapped to the paper's sufficient conditions. */
enum class ViolationKind : uint8_t
{
    /** C1: the PC is tainted while a tainted task runs (needs the
     *  watchdog mechanism to recover untainted control). */
    TaintedControlFlow,
    /** C1 (hard): the PC is tainted while untainted code executes. */
    UntaintedCodeTaintedPc,
    /** C2: a store may taint an untainted memory partition. */
    StoreUntaintedPartition,
    /** C3: untainted code loads from tainted memory / tainted cells. */
    LoadTaintedData,
    /** C4: untainted code reads a tainted input port. */
    UntaintedReadTaintedPort,
    /** C5: a tainted store may reach a trusted output port. */
    TaintedWriteTrustedPort,
    /** Non-interference break: a trusted output register is tainted. */
    TrustedOutputTainted,
    /** The watchdog control write-enable carries taint. */
    WatchdogTainted,
};

/** Printable name of a violation kind. */
const char *violationKindName(ViolationKind kind);

/** Does this kind make the system insecure by itself (error), or is it
 *  fixable by the software techniques of Section 5.2 (warning)? */
bool violationIsError(ViolationKind kind);

/** One (aggregated) policy violation. */
struct Violation
{
    ViolationKind kind;
    uint16_t instrAddr = 0;     ///< the responsible instruction
    uint64_t firstCycle = 0;    ///< first cycle it was observed
    uint32_t count = 0;         ///< number of cycles it was observed
    /** True when the violation is an actual store whose address
     *  register can be masked (set by the write-site checks; cleared
     *  for persistent downstream symptoms). */
    bool maskable = false;
    std::string detail;

    std::string str() const;
};

/** Aggregating log of violations keyed by (kind, instruction). */
class ViolationLog
{
  public:
    void record(ViolationKind kind, uint16_t instr_addr, uint64_t cycle,
                const std::string &detail, bool maskable = false);

    /** Checkpoint restore: re-insert an aggregated entry verbatim. */
    void restore(const Violation &v);

    /**
     * Fold an already-aggregated entry (e.g. from a worker segment)
     * into the log: absent keys insert it verbatim, present keys add
     * the observation counts and OR maskability, keeping the earlier
     * firstCycle/detail -- the same aggregation record() performs
     * cycle by cycle.
     */
    void merge(const Violation &v);

    std::vector<Violation> list() const;
    bool empty() const { return entries.empty(); }
    size_t distinct() const { return entries.size(); }

  private:
    std::map<std::pair<uint8_t, uint16_t>, Violation> entries;
};

/**
 * Per-cycle checker bound to one SoC and policy.
 */
class FlowChecker
{
  public:
    FlowChecker(const Soc &soc, const Policy &policy);

    /**
     * Inspect one settled cycle (call after evalComb, before the clock
     * edge). @p instr_addr is the concrete address of the executing
     * instruction.
     */
    void checkCycle(const Simulator &sim, uint16_t instr_addr,
                    uint64_t cycle, ViolationLog &log) const;

    /**
     * Scan all RAM cells for taint in untainted partitions (invariant
     * check, used at path ends).
     */
    void checkMemoryInvariant(const Simulator &sim, uint16_t instr_addr,
                              uint64_t cycle, ViolationLog &log) const;

  private:
    const Soc &soc;
    const Policy &policy;

    bool pcTainted(const Simulator &sim) const;
    void checkWrite(const Simulator &sim, uint16_t instr_addr,
                    uint64_t cycle, bool code_tainted,
                    ViolationLog &log) const;
    void checkRead(const Simulator &sim, uint16_t instr_addr,
                   uint64_t cycle, bool code_tainted,
                   ViolationLog &log) const;
};

} // namespace glifs

#endif // GLIFS_IFT_CHECKER_HH
