#include "ift/policy_file.hh"

#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace glifs
{

namespace
{

/** Split a line into whitespace-separated fields, dropping comments. */
std::vector<std::string>
fields(const std::string &line)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : line) {
        if (c == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

uint16_t
number(const std::string &tok, int line)
{
    auto v = parseInt(tok);
    if (!v || *v < 0 || *v > 0xFFFF)
        GLIFS_FATAL("policy line ", line, ": bad number '", tok, "'");
    return static_cast<uint16_t>(*v);
}

bool
taintFlag(const std::string &tok, int line)
{
    std::string t = toLower(tok);
    if (t == "tainted" || t == "untrusted" || t == "secret")
        return true;
    if (t == "untainted" || t == "trusted" || t == "non-secret")
        return false;
    GLIFS_FATAL("policy line ", line, ": expected tainted/untainted, "
                "got '", tok, "'");
}

unsigned
portNumber(const std::string &tok, int line)
{
    auto v = parseInt(tok);
    if (!v || *v < 1 || *v > 4)
        GLIFS_FATAL("policy line ", line, ": port must be 1..4");
    return static_cast<unsigned>(*v);
}

} // namespace

Policy
parsePolicy(const std::string &text)
{
    Policy p;
    // Start from an empty label set, not the benchmark defaults.
    p.taintedInPort = {false, false, false, false};
    p.trustedOutPort = {true, true, true, true};

    // Where each partition was declared, so duplicate/overlap
    // diagnostics can cite both offending lines.
    std::vector<int> codeLines, memLines;
    int directives = 0;

    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::vector<std::string> f = fields(line);
        if (f.empty())
            continue;
        ++directives;
        std::string kw = toLower(f[0]);

        if (kw == "policy") {
            std::string name;
            for (size_t i = 1; i < f.size(); ++i)
                name += (i > 1 ? " " : "") + f[i];
            p.name = name;
        } else if (kw == "port") {
            if (f.size() != 4)
                GLIFS_FATAL("policy line ", lineno,
                            ": port <in|out> <n> <label>");
            std::string dir = toLower(f[1]);
            unsigned port = portNumber(f[2], lineno);
            if (dir == "in") {
                p.taintedInPort[port - 1] = taintFlag(f[3], lineno);
            } else if (dir == "out") {
                std::string t = toLower(f[3]);
                if (t == "trusted" || t == "non-secret")
                    p.trustedOutPort[port - 1] = true;
                else if (t == "untrusted" || t == "tainted")
                    p.trustedOutPort[port - 1] = false;
                else
                    GLIFS_FATAL("policy line ", lineno,
                                ": expected trusted/untrusted");
            } else {
                GLIFS_FATAL("policy line ", lineno,
                            ": expected 'in' or 'out'");
            }
        } else if (kw == "code") {
            if (f.size() != 5)
                GLIFS_FATAL("policy line ", lineno,
                            ": code <name> <lo> <hi> <label>");
            uint16_t lo = number(f[2], lineno);
            uint16_t hi = number(f[3], lineno);
            if (lo > hi)
                GLIFS_FATAL("policy line ", lineno, ": partition '",
                            f[1], "' has lo > hi");
            for (size_t i = 0; i < p.code.size(); ++i) {
                const CodePartition &c = p.code[i];
                if (c.name == f[1])
                    GLIFS_FATAL("policy line ", lineno,
                                ": duplicate code partition '", f[1],
                                "' (first declared on line ",
                                codeLines[i], ")");
                if (lo <= c.hi && c.lo <= hi)
                    GLIFS_FATAL("policy line ", lineno,
                                ": code partition '", f[1],
                                "' overlaps '", c.name,
                                "' (declared on line ", codeLines[i],
                                ")");
            }
            p.addCode(f[1], lo, hi, taintFlag(f[4], lineno));
            codeLines.push_back(lineno);
        } else if (kw == "mem") {
            if (f.size() != 5)
                GLIFS_FATAL("policy line ", lineno,
                            ": mem <name> <lo> <hi> <label>");
            uint16_t lo = number(f[2], lineno);
            uint16_t hi = number(f[3], lineno);
            if (lo > hi)
                GLIFS_FATAL("policy line ", lineno, ": partition '",
                            f[1], "' has lo > hi");
            for (size_t i = 0; i < p.mem.size(); ++i) {
                const MemPartition &m = p.mem[i];
                if (m.name == f[1])
                    GLIFS_FATAL("policy line ", lineno,
                                ": duplicate mem partition '", f[1],
                                "' (first declared on line ",
                                memLines[i], ")");
                if (lo <= m.hi && m.lo <= hi)
                    GLIFS_FATAL("policy line ", lineno,
                                ": mem partition '", f[1],
                                "' overlaps '", m.name,
                                "' (declared on line ", memLines[i],
                                ")");
            }
            p.addMem(f[1], lo, hi, taintFlag(f[4], lineno));
            memLines.push_back(lineno);
        } else if (kw == "taint-code") {
            p.taintCodeInProgMem = true;
        } else {
            GLIFS_FATAL("policy line ", lineno,
                        ": unknown directive '", f[0], "'");
        }
    }
    if (directives == 0)
        GLIFS_FATAL("policy file is empty: no directives found "
                    "(expected policy/port/code/mem lines)");
    return p;
}

Policy
loadPolicyFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        GLIFS_FATAL("cannot open policy file ", path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return parsePolicy(oss.str());
}

std::string
renderPolicy(const Policy &p)
{
    std::ostringstream oss;
    oss << "policy " << p.name << "\n";
    for (unsigned i = 0; i < 4; ++i) {
        oss << "port in " << i + 1 << " "
            << (p.taintedInPort[i] ? "tainted" : "untainted") << "\n";
        oss << "port out " << i + 1 << " "
            << (p.trustedOutPort[i] ? "trusted" : "untrusted") << "\n";
    }
    for (const CodePartition &c : p.code) {
        oss << "code " << c.name << " " << hex16(c.lo) << " "
            << hex16(c.hi) << " "
            << (c.tainted ? "tainted" : "untainted") << "\n";
    }
    for (const MemPartition &m : p.mem) {
        oss << "mem " << m.name << " " << hex16(m.lo) << " "
            << hex16(m.hi) << " "
            << (m.tainted ? "tainted" : "untainted") << "\n";
    }
    if (p.taintCodeInProgMem)
        oss << "taint-code\n";
    return oss.str();
}

} // namespace glifs
