#include "ift/governor.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "base/stats.hh"
#include "base/strutil.hh"
#include "base/telemetry.hh"
#include "base/trace.hh"

#ifdef __linux__
#include <unistd.h>
#endif

namespace glifs
{

namespace
{

/** Set from signal handlers: plain lock-free atomic, no allocation. */
std::atomic<bool> g_stopRequested{false};

/** Sample RSS only every this many polls (it is a file read). */
constexpr uint64_t kRssSampleInterval = 512;

/** Check the heartbeat clock only every this many polls. */
constexpr uint64_t kHeartbeatCheckInterval = 64;

/** Budget/ladder counters (docs/OBSERVABILITY.md). */
struct GovernorStats
{
    stats::Scalar polls{"governor.polls", "per-cycle budget polls"};
    stats::Scalar softEvents{"governor.soft_events",
                             "soft thresholds crossed"};
    stats::Scalar hardEvents{"governor.hard_events",
                             "hard budget exhaustions"};
    stats::Scalar heartbeats{"governor.heartbeats",
                             "progress heartbeats fired"};
    stats::Gauge rssBytes{"governor.rss_bytes",
                          "sampled resident set size"};
};

GovernorStats &
govStats()
{
    static GovernorStats s;
    return s;
}

/** Emit every Nth telemetry heartbeat as a full stats snapshot. */
constexpr uint64_t kStatsSnapshotEvery = 4;

/**
 * Push one heartbeat over the worker's telemetry pipe (no-op unless
 * glifs_audit armed the Writer with --telemetry-fd), folding in a
 * periodic stats-registry sample so the scheduler can aggregate
 * worker stats without waiting for run reports.
 */
void
emitTelemetryHeartbeat(const GovernorProgress &p, uint64_t beatIndex)
{
    telemetry::Writer &w = telemetry::Writer::instance();
    if (!w.enabled())
        return;
    telemetry::Event e;
    e.type = telemetry::EventType::Heartbeat;
    e.cycles = p.cycles;
    e.elapsedSeconds = p.elapsedSeconds;
    e.cyclesPerSec = p.cyclesPerSec;
    e.frontier = p.frontier;
    e.states = p.states;
    e.rssBytes = p.rssBytes;
    e.budgetUsed = p.budgetUsed;
    w.emit(e);

    if (beatIndex % kStatsSnapshotEvery != 1)
        return;
    telemetry::Event snap;
    snap.type = telemetry::EventType::StatsSnapshot;
    for (const stats::SnapshotEntry &entry :
         stats::Registry::instance().snapshot().entries) {
        if (entry.kind == stats::SnapshotEntry::Kind::Distribution)
            continue; // histograms don't fold into one number
        snap.stats.emplace_back(entry.name, entry.value);
    }
    w.emit(snap);
}

} // namespace

const char *
resourceKindName(ResourceKind kind)
{
    switch (kind) {
      case ResourceKind::Cycles: return "cycles";
      case ResourceKind::WallClock: return "wall-clock";
      case ResourceKind::BranchFanout: return "branch-fanout";
      case ResourceKind::TrackedStates: return "tracked-states";
      case ResourceKind::Memory: return "memory";
      case ResourceKind::Interrupt: return "interrupt";
    }
    return "?";
}

const char *
degradeLevelName(DegradeLevel level)
{
    switch (level) {
      case DegradeLevel::None: return "none";
      case DegradeLevel::WidenedMerging: return "widened-merging";
      case DegradeLevel::StarLogicPath: return "star-logic-path";
      case DegradeLevel::PartialStop: return "partial-stop";
    }
    return "?";
}

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Secure: return "secure";
      case Verdict::Violations: return "violations";
      case Verdict::UnknownDegraded: return "unknown-degraded";
    }
    return "?";
}

std::string
Degradation::str() const
{
    std::string s = degradeLevelName(level);
    s += " (";
    s += severity == BudgetSeverity::Hard ? "hard " : "soft ";
    s += resourceKindName(trigger);
    s += ") at cycle ";
    s += std::to_string(cycle);
    s += " instr ";
    s += hex16(instrAddr);
    if (!detail.empty()) {
        s += ": ";
        s += detail;
    }
    return s;
}

bool
ResourceBudgets::any() const
{
    return softCycles || hardCycles || softSeconds > 0 ||
           hardSeconds > 0 || softStates || hardStates ||
           softRssBytes || hardRssBytes || softBranchBits;
}

ResourceGovernor::ResourceGovernor(const ResourceBudgets &b)
    : budgets(b), start(std::chrono::steady_clock::now())
{
}

double
ResourceGovernor::elapsedSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

size_t
ResourceGovernor::currentRssBytes()
{
#ifdef __linux__
    FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    unsigned long size = 0;
    unsigned long resident = 0;
    int n = std::fscanf(f, "%lu %lu", &size, &resident);
    std::fclose(f);
    if (n != 2)
        return 0;
    long page = sysconf(_SC_PAGESIZE);
    return resident * static_cast<size_t>(page > 0 ? page : 4096);
#else
    return 0;
#endif
}

void
ResourceGovernor::requestGlobalStop()
{
    g_stopRequested.store(true, std::memory_order_relaxed);
}

bool
ResourceGovernor::globalStopRequested()
{
    return g_stopRequested.load(std::memory_order_relaxed);
}

void
ResourceGovernor::clearGlobalStop()
{
    g_stopRequested.store(false, std::memory_order_relaxed);
}

std::optional<BudgetEvent>
ResourceGovernor::hardEvent()
{
    if (globalStopRequested()) {
        return BudgetEvent{ResourceKind::Interrupt, BudgetSeverity::Hard,
                           "external stop requested"};
    }
    if (budgets.hardCycles && cycleCount >= budgets.hardCycles) {
        return BudgetEvent{
            ResourceKind::Cycles, BudgetSeverity::Hard,
            std::to_string(cycleCount) + " simulated cycles"};
    }
    if (budgets.hardSeconds > 0) {
        double t = elapsedSeconds();
        if (t >= budgets.hardSeconds) {
            return BudgetEvent{ResourceKind::WallClock,
                               BudgetSeverity::Hard,
                               "deadline of " +
                                   std::to_string(budgets.hardSeconds) +
                                   "s expired"};
        }
    }
    if (budgets.hardStates && stateCount >= budgets.hardStates) {
        return BudgetEvent{
            ResourceKind::TrackedStates, BudgetSeverity::Hard,
            std::to_string(stateCount) + " tracked states"};
    }
    if (budgets.hardRssBytes && sampledRss >= budgets.hardRssBytes) {
        return BudgetEvent{
            ResourceKind::Memory, BudgetSeverity::Hard,
            std::to_string(sampledRss >> 20) + " MiB resident"};
    }
    return std::nullopt;
}

std::optional<BudgetEvent>
ResourceGovernor::softEvent()
{
    auto fire = [&](ResourceKind kind,
                    std::string detail) -> std::optional<BudgetEvent> {
        size_t idx = static_cast<size_t>(kind);
        if (softFired[idx])
            return std::nullopt;
        softFired[idx] = true;
        return BudgetEvent{kind, BudgetSeverity::Soft,
                           std::move(detail)};
    };

    if (budgets.softCycles && cycleCount >= budgets.softCycles &&
        !softFired[static_cast<size_t>(ResourceKind::Cycles)]) {
        return fire(ResourceKind::Cycles,
                    std::to_string(cycleCount) + " simulated cycles");
    }
    if (budgets.softSeconds > 0 &&
        !softFired[static_cast<size_t>(ResourceKind::WallClock)] &&
        elapsedSeconds() >= budgets.softSeconds) {
        return fire(ResourceKind::WallClock,
                    "soft deadline of " +
                        std::to_string(budgets.softSeconds) +
                        "s expired");
    }
    if (budgets.softStates && stateCount >= budgets.softStates &&
        !softFired[static_cast<size_t>(ResourceKind::TrackedStates)]) {
        return fire(ResourceKind::TrackedStates,
                    std::to_string(stateCount) + " tracked states");
    }
    if (budgets.softRssBytes && sampledRss >= budgets.softRssBytes &&
        !softFired[static_cast<size_t>(ResourceKind::Memory)]) {
        return fire(ResourceKind::Memory,
                    std::to_string(sampledRss >> 20) + " MiB resident");
    }
    return std::nullopt;
}

void
ResourceGovernor::setHeartbeat(double periodSeconds, ProgressFn fn)
{
    heartbeatPeriod = periodSeconds;
    nextHeartbeat = periodSeconds;
    heartbeatFn = std::move(fn);
}

GovernorProgress
ResourceGovernor::progress()
{
    GovernorProgress p;
    p.cycles = cycleCount;
    p.elapsedSeconds = elapsedSeconds();
    p.cyclesPerSec = p.elapsedSeconds > 0
                         ? static_cast<double>(cycleCount) /
                               p.elapsedSeconds
                         : 0;
    p.frontier = frontierCount;
    p.states = stateCount;
    if (sampledRss == 0)
        sampledRss = currentRssBytes();
    p.rssBytes = sampledRss;

    double used = 0;
    if (budgets.hardCycles) {
        used = std::max(used, static_cast<double>(cycleCount) /
                                  budgets.hardCycles);
    }
    if (budgets.hardSeconds > 0)
        used = std::max(used, p.elapsedSeconds / budgets.hardSeconds);
    if (budgets.hardStates) {
        used = std::max(used, static_cast<double>(stateCount) /
                                  budgets.hardStates);
    }
    if (budgets.hardRssBytes && sampledRss) {
        used = std::max(used, static_cast<double>(sampledRss) /
                                  budgets.hardRssBytes);
    }
    p.budgetUsed = std::min(used, 1.0);
    return p;
}

void
ResourceGovernor::maybeHeartbeat()
{
    if (heartbeatPeriod <= 0 || !heartbeatFn)
        return;
    if (pollCount % kHeartbeatCheckInterval != 0)
        return;
    const double t = elapsedSeconds();
    if (t < nextHeartbeat)
        return;
    nextHeartbeat = t + heartbeatPeriod;
    ++govStats().heartbeats;
    GovernorProgress p = progress();
    trace::Tracer &tr = trace::Tracer::instance();
    if (tr.enabled()) {
        tr.counter("governor", "frontier",
                   static_cast<double>(p.frontier));
        tr.counter("governor", "states",
                   static_cast<double>(p.states));
        tr.counter("governor", "cycles_per_sec", p.cyclesPerSec);
    }
    emitTelemetryHeartbeat(p, govStats().heartbeats.value());
    heartbeatFn(p);
}

std::optional<BudgetEvent>
ResourceGovernor::poll()
{
    maybeHeartbeat();
    if (hardFired)
        return std::nullopt;
    ++pollCount;
    ++govStats().polls;
    if ((budgets.softRssBytes || budgets.hardRssBytes ||
         heartbeatPeriod > 0) &&
        pollCount % kRssSampleInterval == 1) {
        sampledRss = currentRssBytes();
        govStats().rssBytes.set(static_cast<double>(sampledRss));
    }
    auto traced = [](BudgetEvent ev) {
        GovernorStats &gs = govStats();
        const bool hard = ev.severity == BudgetSeverity::Hard;
        if (hard)
            ++gs.hardEvents;
        else
            ++gs.softEvents;
        GLIFS_TRACE_INSTANT_ARGS(
            "governor", hard ? "hard_budget" : "soft_budget",
            add("kind", resourceKindName(ev.kind))
                .add("detail", ev.detail));
        telemetry::Writer &w = telemetry::Writer::instance();
        if (w.enabled()) {
            telemetry::Event te;
            te.type = telemetry::EventType::BudgetUsage;
            te.resource = resourceKindName(ev.kind);
            te.severity = hard ? "hard" : "soft";
            te.detail = ev.detail;
            w.emit(te);
        }
        return ev;
    };
    if (auto ev = hardEvent()) {
        hardFired = true;
        return traced(std::move(*ev));
    }
    if (auto ev = softEvent())
        return traced(std::move(*ev));
    return std::nullopt;
}

} // namespace glifs
