/**
 * @file
 * Packed symbolic-state snapshots for the input-independent taint
 * tracking engine (Algorithm 1).
 *
 * A SymState captures the ternary value and taint of every flip-flop
 * output plus every writable memory cell as three bit planes (known /
 * value / taint), giving O(words) substate tests and conservative
 * merges — the operations the paper's state table performs at every
 * PC-changing instruction.
 */

#ifndef GLIFS_IFT_SYMSTATE_HH
#define GLIFS_IFT_SYMSTATE_HH

#include "base/bitutil.hh"
#include "netlist/netlist.hh"
#include "sim/signal_state.hh"

namespace glifs
{

/** Slot layout of a SymState over a given netlist (built once). */
class SymLayout
{
  public:
    explicit SymLayout(const Netlist &nl);

    size_t slots() const { return slotCount; }
    const Netlist &netlist() const { return nl; }

    /** Flip-flop output nets in slot order. */
    const std::vector<NetId> &dffNets() const { return dffs; }

    /** (memory id, first slot) for every writable memory. */
    const std::vector<std::pair<MemId, size_t>> &mems() const
    {
        return memBase;
    }

    /** Slot index of a flip-flop by position in dffNets(). */
    size_t dffSlot(size_t idx) const { return idx; }

  private:
    const Netlist &nl;
    std::vector<NetId> dffs;
    std::vector<std::pair<MemId, size_t>> memBase;
    size_t slotCount = 0;
};

/** One captured symbolic machine state. */
class SymState
{
  public:
    SymState() = default;
    explicit SymState(const SymLayout &layout);

    /** Capture flops and memories from a simulation state. */
    void capture(const SymLayout &layout, const SignalState &sigs);

    /** Write flops and memories back into a simulation state. */
    void restore(const SymLayout &layout, SignalState &sigs) const;

    /**
     * Substate test: true iff every concrete machine state described
     * by *this is also described by @p cons, and the taint of *this is
     * contained in the taint of @p cons (i.e. cons is at least as
     * conservative).
     */
    bool subsumedBy(const SymState &cons) const;

    /**
     * Conservative merge: *this becomes the join of *this and other
     * (differing or unknown values -> X; taints union).
     *
     * With @p taint_diffs set, slots whose values differ between the
     * two states (or whose known-ness differs) additionally become
     * tainted: when the joining paths forked on *tainted* control
     * flow, which path ran is attacker-visible information, so every
     * path-dependent difference carries taint. This restores the
     * soundness that per-path concrete instruction fetches would
     * otherwise lose (see MemoryDecl::addrTaintsRead).
     */
    void mergeWith(const SymState &other, bool taint_diffs = false);

    bool operator==(const SymState &o) const = default;

    /** Per-slot accessors (slot indices from the layout). */
    Signal slot(size_t i) const;
    void setSlot(size_t i, const Signal &s);

    size_t numSlots() const { return known.size(); }

    /** Number of tainted slots (diagnostics). */
    size_t taintCount() const { return taint.count(); }

    /** Number of unknown slots (diagnostics). */
    size_t unknownCount() const { return known.size() - known.count(); }

    /** Raw plane access for checkpoint serialization. */
    const BitPlane &knownPlane() const { return known; }
    const BitPlane &valuePlane() const { return value; }
    const BitPlane &taintPlane() const { return taint; }

    /** Rebuild from raw planes (checkpoint restore); sizes must agree. */
    void setPlanes(BitPlane k, BitPlane v, BitPlane t);

  private:
    BitPlane known;
    BitPlane value;
    BitPlane taint;
};

} // namespace glifs

#endif // GLIFS_IFT_SYMSTATE_HH
