/**
 * @file
 * Versioned binary snapshots of an in-flight engine run.
 *
 * On hard budget exhaustion (deadline, cycle/state/memory budget, or a
 * stop signal) the engine serializes everything a later run needs to
 * continue exactly where it stopped: the conservative state table, the
 * exploration frontier, the execution tree, the ever-tainted plane and
 * all counters. Resuming the checkpoint against the same program image
 * and netlist reproduces the uninterrupted run bit-for-bit on the
 * EngineResult counters and violations.
 *
 * Format: magic "GLFSCKPT", a little-endian version word, a CRC-32 of
 * the body, then the body: a (image, layout) fingerprint and the
 * length-prefixed sections. Loading verifies the CRC before parsing
 * anything, so bad magic, unknown versions, truncation and arbitrary
 * bit flips all surface as one RecoverableError — callers are expected
 * to fall back to a fresh run, never to crash or trust a corrupt
 * snapshot.
 */

#ifndef GLIFS_IFT_CHECKPOINT_HH
#define GLIFS_IFT_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "assembler/program_image.hh"
#include "base/bitutil.hh"
#include "ift/checker.hh"
#include "ift/exec_tree.hh"
#include "ift/governor.hh"
#include "ift/symstate.hh"

namespace glifs
{

/** A serializable snapshot of a paused analysis. */
struct EngineCheckpoint
{
    /** v2 added the whole-body CRC-32 after the version word. */
    static constexpr uint32_t kVersion = 2;

    /** Identity of the (program image, symbolic layout) pair. */
    uint64_t fingerprint = 0;

    uint64_t totalCycles = 0;
    uint64_t pathsExplored = 0;
    uint64_t branchPoints = 0;
    uint64_t merges = 0;
    uint64_t subsumptions = 0;

    /** Ladder position; re-applied to the config on resume. */
    DegradeLevel level = DegradeLevel::None;

    /**
     * Escalations so far. The PartialStop record of the interruption
     * itself is deliberately *not* serialized: once resumed to
     * completion, the stop cost no coverage.
     */
    std::vector<Degradation> degradations;

    /** Aggregated violations observed so far. */
    std::vector<Violation> violations;

    /** Nets whose output ever carried taint. */
    BitPlane everTainted;

    /** The conservative state table (Algorithm 1's T). */
    std::vector<std::pair<uint32_t, SymState>> table;

    /** The exploration frontier, bottom of stack first. */
    std::vector<std::pair<SymState, uint32_t>> frontier;

    /** All execution-tree nodes. */
    std::vector<ExecNode> tree;

    /** Write the snapshot; RecoverableError on I/O failure. */
    void save(const std::string &path) const;

    /** Load and validate a snapshot; RecoverableError on any defect. */
    static EngineCheckpoint load(const std::string &path);

    /**
     * Append the body (everything after the magic/version/CRC header)
     * to @p out. Shared by save() and the parallel-exploration work
     * shipping (explore/protocol.cc); callers reuse the buffer across
     * encodes to keep the hot path allocation-free.
     */
    void encodeBody(std::string &out) const;

    /** Parse a body produced by encodeBody; RecoverableError on any
     *  defect. The caller has already verified integrity (CRC). */
    static EngineCheckpoint decodeBody(std::string_view body);
};

/**
 * Fingerprint binding a checkpoint to one program image and symbolic
 * layout (FNV-1a over the image words plus the layout geometry).
 */
uint64_t checkpointFingerprint(const ProgramImage &image, size_t slots,
                               size_t nets);

} // namespace glifs

#endif // GLIFS_IFT_CHECKPOINT_HH
