/**
 * @file
 * Information-flow security policies (Section 4.2).
 *
 * A policy labels input/output ports, code partitions and data-memory
 * partitions as tainted (untrusted or secret) or untainted (trusted or
 * non-secret). The paper analyzes the untrusted and secret taints
 * separately with the same machinery; one Policy instance describes one
 * such analysis.
 */

#ifndef GLIFS_IFT_POLICY_HH
#define GLIFS_IFT_POLICY_HH

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace glifs
{

/** A labeled range of program memory. */
struct CodePartition
{
    std::string name;
    uint16_t lo = 0;   ///< first instruction word address
    uint16_t hi = 0;   ///< last instruction word address (inclusive)
    bool tainted = false;
};

/** A labeled range of data-space addresses (RAM). */
struct MemPartition
{
    std::string name;
    uint16_t lo = 0;   ///< first data-space word address (inclusive)
    uint16_t hi = 0;   ///< last data-space word address (inclusive)
    bool tainted = false;
};

/** The complete label set for one analysis. */
struct Policy
{
    std::string name = "non-interference";

    /** PxIN delivers tainted data (attacker-controlled / secret). */
    std::array<bool, 4> taintedInPort{false, false, false, false};

    /**
     * PxOUT must never carry taint (trusted / non-secret output). A
     * port that is not trusted is a tainted output the tainted task is
     * allowed to use.
     */
    std::array<bool, 4> trustedOutPort{true, true, true, true};

    std::vector<CodePartition> code;
    std::vector<MemPartition> mem;

    /**
     * Also mark the instructions of tainted code partitions as tainted
     * in program memory (footnote 3 of the paper; off by default).
     */
    bool taintCodeInProgMem = false;

    /** Partition containing a program address (nullptr: unlabeled). */
    const CodePartition *codePartitionOf(uint16_t addr) const;

    /** Partition containing a data address (nullptr: unlabeled). */
    const MemPartition *memPartitionOf(uint16_t addr) const;

    /** Is the code at @p addr tainted? Unlabeled code is untainted. */
    bool codeTainted(uint16_t addr) const;

    /** Add helpers. */
    Policy &addCode(const std::string &name, uint16_t lo, uint16_t hi,
                    bool tainted);
    Policy &addMem(const std::string &name, uint16_t lo, uint16_t hi,
                   bool tainted);

    /** Human-readable dump. */
    std::string str() const;
};

/**
 * The standard two-partition benchmark policy used throughout the
 * evaluation: a tainted computational task (ports and RAM partition it
 * uses are tainted) plus untainted system code, mirroring Section 7.
 *
 * Layout: system code partition [0, task_lo), tainted task code
 * [task_lo, task_hi]; untainted RAM [0x0800, 0x0BFF], tainted RAM
 * [0x0C00, 0x0FFF]; P1 tainted in, P2 tainted out (untrusted), P3
 * untainted in, P4 trusted out.
 */
Policy benchmarkPolicy(uint16_t task_lo, uint16_t task_hi);

namespace iot430
{
/// Standard benchmark memory-partition boundaries.
constexpr uint16_t kUntaintedRamLo = 0x0800;
constexpr uint16_t kUntaintedRamHi = 0x0BFF;
constexpr uint16_t kTaintedRamLo = 0x0C00;
constexpr uint16_t kTaintedRamHi = 0x0FFF;
/// Figure-9 style mask constants for the tainted partition.
constexpr uint16_t kTaintedMaskAnd = 0x03FF;
constexpr uint16_t kTaintedMaskOr = 0x0C00;
} // namespace iot430

} // namespace glifs

#endif // GLIFS_IFT_POLICY_HH
