#include "ift/rootcause.hh"

#include <algorithm>
#include <sstream>

#include "base/strutil.hh"
#include "isa/disasm.hh"

namespace glifs
{

RootCauseReport
analyzeRootCauses(const EngineResult &result, const Policy &policy,
                  const ProgramImage *image)
{
    RootCauseReport report;

    auto is_store_instr = [&](uint16_t addr) {
        if (image == nullptr)
            return true;  // no image: cannot filter
        if (addr >= image->words.size())
            return false;
        auto ins = decode(&image->words[addr],
                          image->words.size() - addr);
        return ins.has_value() && ins->writesMem();
    };

    for (const Violation &v : result.violations) {
        switch (v.kind) {
          case ViolationKind::StoreUntaintedPartition:
          case ViolationKind::TaintedWriteTrustedPort:
          case ViolationKind::WatchdogTainted: {
            // A store that can escape the tainted partition (or reach a
            // peripheral it must not touch) is fixed by masking its
            // address register -- but only stores in/for tainted code
            // can be auto-masked; the rest are hard errors.
            if (!v.maskable || !is_store_instr(v.instrAddr)) {
                // Downstream symptom (persistent tainted cell or net
                // observed during some later instruction), not a
                // maskable cause.
                report.warnings.push_back(v);
                break;
            }
            if (policy.codeTainted(v.instrAddr) ||
                v.kind == ViolationKind::StoreUntaintedPartition) {
                if (std::find(report.storesToMask.begin(),
                              report.storesToMask.end(),
                              v.instrAddr) ==
                    report.storesToMask.end())
                    report.storesToMask.push_back(v.instrAddr);
                report.warnings.push_back(v);
            } else {
                report.errors.push_back(v);
            }
            break;
          }
          case ViolationKind::TaintedControlFlow:
            // A tainted task tainting its own PC is informational on
            // its own: it only becomes a problem when the taint
            // escapes to untainted code (UntaintedCodeTaintedPc).
            report.warnings.push_back(v);
            break;
          case ViolationKind::UntaintedCodeTaintedPc: {
            // Untainted code observed a tainted PC: the tainted tasks
            // whose control flow went bad must be watchdog-bounded.
            bool any = false;
            for (const CodePartition &c : policy.code) {
                if (!c.tainted)
                    continue;
                any = true;
                if (std::find(report.tasksNeedingWatchdog.begin(),
                              report.tasksNeedingWatchdog.end(),
                              c.name) ==
                    report.tasksNeedingWatchdog.end())
                    report.tasksNeedingWatchdog.push_back(c.name);
            }
            if (any)
                report.warnings.push_back(v);
            else
                report.errors.push_back(v);
            break;
          }
          case ViolationKind::LoadTaintedData:
          case ViolationKind::UntaintedReadTaintedPort:
            // Direct illegal accesses by untainted code: the
            // programmer must change the software or the labels
            // (Section 6, footnote 6).
            report.errors.push_back(v);
            break;
          case ViolationKind::TrustedOutputTainted:
            // Classified after the loop: this is a downstream symptom
            // when fixable causes were identified.
            break;
        }
    }

    for (const Violation &v : result.violations) {
        if (v.kind != ViolationKind::TrustedOutputTainted)
            continue;
        if (report.needsModification())
            report.warnings.push_back(v);
        else
            report.errors.push_back(v);
    }

    std::sort(report.storesToMask.begin(), report.storesToMask.end());
    return report;
}

std::string
RootCauseReport::str(const ProgramImage *image) const
{
    std::ostringstream oss;
    if (!needsModification() && errors.empty()) {
        oss << "no information flow violations: system is secure as-is\n";
        return oss.str();
    }
    for (const Violation &v : errors)
        oss << "  " << v.str() << "\n";
    if (!tasksNeedingWatchdog.empty()) {
        oss << "  tasks needing watchdog protection:";
        for (const std::string &t : tasksNeedingWatchdog)
            oss << " " << t;
        oss << "\n";
    }
    if (!storesToMask.empty()) {
        oss << "  stores needing address masking:\n";
        for (uint16_t a : storesToMask) {
            oss << "    " << hex16(a);
            if (image != nullptr && a < image->words.size()) {
                auto ins = decode(&image->words[a],
                                  image->words.size() - a);
                if (ins)
                    oss << "  " << disassemble(*ins, a);
            }
            oss << "\n";
        }
    }
    return oss.str();
}

} // namespace glifs
