#include "ift/state_table.hh"

#include "base/stats.hh"
#include "base/trace.hh"

namespace glifs
{

namespace
{

/** Conservative-state-table counters (docs/OBSERVABILITY.md). */
struct TableStats
{
    stats::Scalar lookups{"state_table.lookups",
                          "visits to a PC-changing instruction"};
    stats::Scalar inserts{"state_table.inserts",
                          "first-visit states stored"};
    stats::Scalar subsumed{"state_table.subsumed",
                           "visits covered by a stored state (hits)"};
    stats::Scalar merges{"state_table.merges",
                         "visits merged, widening the stored state"};
    stats::Gauge sizePeak{"state_table.size_peak",
                          "distinct tracked branch states"};
};

TableStats &
tableStats()
{
    static TableStats s;
    return s;
}

} // namespace

StateTable::Visit
StateTable::visit(uint32_t key, SymState &state, bool taint_diffs)
{
    TableStats &st = tableStats();
    ++st.lookups;
    auto it = table.find(key);
    if (it == table.end()) {
        table.emplace(key, state);
        ++st.inserts;
        st.sizePeak.set(static_cast<double>(table.size()));
        return Visit::New;
    }
    if (state.subsumedBy(it->second)) {
        ++subsumeCount;
        ++st.subsumed;
        return Visit::Subsumed;
    }
    it->second.mergeWith(state, taint_diffs);
    state = it->second;
    ++mergeCount;
    ++st.merges;
    GLIFS_TRACE_INSTANT_ARGS("state_table", "merge",
                             add("key", static_cast<uint64_t>(key)));
    return Visit::Merged;
}

const SymState *
StateTable::lookup(uint32_t key) const
{
    auto it = table.find(key);
    return it == table.end() ? nullptr : &it->second;
}

void
StateTable::insertRestored(uint32_t key, SymState state)
{
    table.insert_or_assign(key, std::move(state));
    tableStats().sizePeak.set(static_cast<double>(table.size()));
}

void
StateTable::setCounters(size_t merges, size_t subsumptions)
{
    mergeCount = merges;
    subsumeCount = subsumptions;
}

} // namespace glifs
