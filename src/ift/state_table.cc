#include "ift/state_table.hh"

namespace glifs
{

StateTable::Visit
StateTable::visit(uint32_t key, SymState &state, bool taint_diffs)
{
    auto it = table.find(key);
    if (it == table.end()) {
        table.emplace(key, state);
        return Visit::New;
    }
    if (state.subsumedBy(it->second)) {
        ++subsumeCount;
        return Visit::Subsumed;
    }
    it->second.mergeWith(state, taint_diffs);
    state = it->second;
    ++mergeCount;
    return Visit::Merged;
}

const SymState *
StateTable::lookup(uint32_t key) const
{
    auto it = table.find(key);
    return it == table.end() ? nullptr : &it->second;
}

void
StateTable::insertRestored(uint32_t key, SymState state)
{
    table.insert_or_assign(key, std::move(state));
}

void
StateTable::setCounters(size_t merges, size_t subsumptions)
{
    mergeCount = merges;
    subsumeCount = subsumptions;
}

} // namespace glifs
