#include "ift/exec_tree.hh"

#include <functional>
#include <sstream>

#include "base/strutil.hh"

namespace glifs
{

const char *
pathEndName(PathEnd end)
{
    switch (end) {
      case PathEnd::Running: return "running";
      case PathEnd::Halted: return "halted";
      case PathEnd::Subsumed: return "subsumed";
      case PathEnd::Branched: return "branched";
      case PathEnd::StarAborted: return "star-aborted";
      case PathEnd::Budget: return "budget";
      case PathEnd::Degraded: return "degraded";
    }
    return "?";
}

uint32_t
ExecTree::addNode(int32_t parent, uint16_t start_pc)
{
    ExecNode n;
    n.id = static_cast<uint32_t>(nodes.size());
    n.parent = parent;
    n.startPc = start_pc;
    nodes.push_back(n);
    return n.id;
}

uint64_t
ExecTree::totalCycles() const
{
    uint64_t total = 0;
    for (const ExecNode &n : nodes)
        total += n.cycles;
    return total;
}

std::string
ExecTree::str() const
{
    // Build child lists.
    std::vector<std::vector<uint32_t>> children(nodes.size());
    std::vector<uint32_t> roots;
    for (const ExecNode &n : nodes) {
        if (n.parent < 0)
            roots.push_back(n.id);
        else
            children[n.parent].push_back(n.id);
    }

    std::ostringstream oss;
    std::function<void(uint32_t, unsigned)> dump = [&](uint32_t id,
                                                       unsigned depth) {
        const ExecNode &n = nodes[id];
        oss << std::string(depth * 2, ' ') << "node " << n.id << " pc="
            << hex16(n.startPc) << " cycles=" << n.cycles << " end="
            << pathEndName(n.end) << " @" << hex16(n.endInstr) << "\n";
        for (uint32_t c : children[id])
            dump(c, depth + 1);
    };
    for (uint32_t r : roots)
        dump(r, 0);
    return oss.str();
}

} // namespace glifs
