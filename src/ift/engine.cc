#include "ift/engine.hh"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "base/logging.hh"
#include "base/stats.hh"
#include "base/strutil.hh"
#include "base/trace.hh"
#include "ift/checkpoint.hh"
#include "ift/engine_stats.hh"
#include "ift/path_sim.hh"
#include "ift/symstate.hh"
#include "sim/simulator.hh"

namespace glifs
{

bool
EngineResult::degradedUnsound() const
{
    for (const Degradation &d : degradations) {
        if (d.level == DegradeLevel::StarLogicPath ||
            d.level == DegradeLevel::PartialStop) {
            return true;
        }
    }
    return false;
}

bool
EngineResult::secure() const
{
    if (!completed || starAborted || degradedUnsound())
        return false;
    for (const Violation &v : violations) {
        if (v.kind != ViolationKind::TaintedControlFlow)
            return false;
    }
    return true;
}

Verdict
EngineResult::verdict() const
{
    for (const Violation &v : violations) {
        if (v.kind != ViolationKind::TaintedControlFlow)
            return Verdict::Violations;
    }
    if (completed && !starAborted && !degradedUnsound())
        return Verdict::Secure;
    return Verdict::UnknownDegraded;
}

bool
EngineResult::onlyFixable() const
{
    for (const Violation &v : violations) {
        if (violationIsError(v.kind))
            return false;
    }
    return completed && !starAborted;
}

std::string
EngineResult::summary() const
{
    std::ostringstream oss;
    oss << (completed ? "completed" : "INCOMPLETE");
    if (starAborted)
        oss << " (*-logic aborted)";
    oss << ": " << cyclesSimulated << " cycles, " << pathsExplored
        << " paths, " << branchPoints << " branch points, " << merges
        << " merges, " << subsumptions << " subsumptions, "
        << statesTracked << " tracked branches, "
        << violations.size() << " violation(s), "
        << percent(taintedGateFraction, 1) << " gates ever tainted, "
        << analysisSeconds << "s";
    if (!degradations.empty())
        oss << ", " << degradations.size() << " degradation(s)";
    oss << ", verdict " << verdictName(verdict());
    return oss.str();
}

namespace
{

/** Everything one run() invocation needs. */
struct RunCtx
{
    PathSim ps; ///< sim, layout, checker and the Algorithm-1 helpers

    ViolationLog log;
    StateTable table;
    ExecTree tree;
    ResourceGovernor gov;
    std::vector<std::pair<SymState, uint32_t>> stack;  // state, node
    BitPlane everTainted;

    uint64_t totalCycles = 0;
    uint64_t pathsExplored = 0;
    bool starAborted = false;
    bool budgetHit = false;
    size_t branchPoints = 0;

    DegradeLevel level = DegradeLevel::None;
    std::vector<Degradation> degradations;

    RunCtx(const Soc &s, const Policy &p, const EngineConfig &c,
           const ProgramImage &img)
        : ps(s, p, c, img), gov(c.budgets),
          everTainted(s.netlist().numNets())
    {
    }

    void
    recordDegradation(DegradeLevel lvl, ResourceKind trigger,
                      BudgetSeverity severity, uint16_t instr_addr,
                      std::string detail)
    {
        Degradation d;
        d.level = lvl;
        d.trigger = trigger;
        d.severity = severity;
        d.cycle = totalCycles;
        d.instrAddr = instr_addr;
        d.detail = std::move(detail);
        ++engineStats().escalations;
        GLIFS_TRACE_INSTANT_ARGS(
            "engine", "degrade",
            add("level", degradeLevelName(lvl))
                .add("trigger", resourceKindName(trigger))
                .add("severity",
                     severity == BudgetSeverity::Hard ? "hard"
                                                      : "soft")
                .add("cycle", totalCycles)
                .add("instr", hex16(instr_addr)));
        degradations.push_back(std::move(d));
    }

    /** Outcome of a soft-budget escalation. */
    enum class Escalation
    {
        Widened,  ///< merging widened; the path continues
        KillPath, ///< hand the current path to the *-logic abstraction
    };

    /**
     * Climb one rung of the degradation ladder: first widen merging
     * (drop the precise CFG successors so the bit-wise superset feeds
     * the state table), then give the offending path to *-logic.
     */
    Escalation
    escalate(const BudgetEvent &ev, uint16_t instr_addr)
    {
        if (level == DegradeLevel::None) {
            level = DegradeLevel::WidenedMerging;
            ps.cfg.preciseJumpTargets = false;
            recordDegradation(DegradeLevel::WidenedMerging, ev.kind,
                              ev.severity, instr_addr, ev.detail);
            return Escalation::Widened;
        }
        level = DegradeLevel::StarLogicPath;
        recordDegradation(DegradeLevel::StarLogicPath, ev.kind,
                          ev.severity, instr_addr, ev.detail);
        return Escalation::KillPath;
    }
};

} // namespace

IftEngine::IftEngine(const Soc &s, const Policy &p,
                     const EngineConfig &c)
    : soc(s), policy(p), cfg(c)
{
}

EngineResult
IftEngine::run(const ProgramImage &image)
{
    return run(image, nullptr);
}

EngineResult
IftEngine::run(const ProgramImage &image, const EngineCheckpoint *resume)
{
    GLIFS_TRACE_SCOPE("engine", "run");
    EngineStats &es = engineStats();
    ++es.runs;
    trace::Tracer &tr = trace::Tracer::instance();
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t traceT0 = tr.enabled() ? tr.nowUs() : 0;
    auto secondsSince = [](std::chrono::steady_clock::time_point t) {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t)
            .count();
    };

    // Fold the legacy cycle budget into the governed budgets as a hard
    // cycle budget (keeping the smaller of the two if both are set).
    EngineConfig effective = cfg;
    if (effective.maxCycles > 0 &&
        (effective.budgets.hardCycles == 0 ||
         effective.maxCycles < effective.budgets.hardCycles)) {
        effective.budgets.hardCycles = effective.maxCycles;
    }

    RunCtx ctx(soc, policy, effective, image);
    EngineResult res;

    // Heartbeat and budget checks share the governor's poll clock
    // (docs/OBSERVABILITY.md): one firing proves the other is live.
    if (effective.progressSeconds > 0 && effective.progressFn) {
        ctx.gov.setHeartbeat(effective.progressSeconds,
                             effective.progressFn);
    }

    // Load the binary; optionally taint the tainted code partitions in
    // program memory (footnote 3). Program ROM is not part of the
    // captured symbolic state, so this also re-establishes it when
    // resuming a checkpoint.
    ctx.ps.loadProgram();

    if (resume) {
        const uint64_t fp = checkpointFingerprint(
            image, ctx.ps.layout.slots(), soc.netlist().numNets());
        if (resume->fingerprint != fp) {
            GLIFS_RECOVERABLE(
                "checkpoint does not match this program image and "
                "netlist (was the firmware or SoC changed?)");
        }
        if (resume->everTainted.size() != soc.netlist().numNets())
            GLIFS_RECOVERABLE("checkpoint: tainted-net plane mismatch");

        ctx.totalCycles = resume->totalCycles;
        ctx.gov.chargeCycles(resume->totalCycles);
        ctx.pathsExplored = resume->pathsExplored;
        ctx.branchPoints = resume->branchPoints;
        ctx.level = resume->level;
        if (ctx.level >= DegradeLevel::WidenedMerging)
            ctx.ps.cfg.preciseJumpTargets = false;
        ctx.degradations = resume->degradations;
        for (const Violation &v : resume->violations)
            ctx.log.restore(v);
        ctx.everTainted = resume->everTainted;
        for (const auto &[key, state] : resume->table)
            ctx.table.insertRestored(key, state);
        ctx.table.setCounters(resume->merges, resume->subsumptions);
        ctx.gov.noteStates(ctx.table.size());
        ctx.tree.setNodes(resume->tree);
        for (const auto &[state, node] : resume->frontier)
            ctx.stack.emplace_back(state, node);
    } else {
        // Algorithm 1 line 5: propagate the (untainted) reset.
        ctx.ps.setInputs(true);
        ctx.ps.sim.step();
        ++ctx.totalCycles;
        ++es.cycles;
        ctx.gov.chargeCycles(1);

        SymState s0(ctx.ps.layout);
        s0.capture(ctx.ps.layout, ctx.ps.sim.state());
        uint32_t root = ctx.tree.addNode(-1, 0);
        ctx.stack.emplace_back(std::move(s0), root);
    }

    es.setupSeconds.add(secondsSince(t0));
    if (tr.enabled())
        tr.complete("engine", "setup", traceT0, tr.nowUs() - traceT0);
    const auto tExplore = std::chrono::steady_clock::now();
    const uint64_t traceTExplore = tr.enabled() ? tr.nowUs() : 0;

    const SocProbes &prb = soc.probes();

    while (!ctx.stack.empty() && !ctx.budgetHit && !ctx.starAborted) {
        auto [state, node] = std::move(ctx.stack.back());
        ctx.stack.pop_back();
        ++ctx.pathsExplored;
        ++es.paths;
        es.frontierDepth.sample(
            static_cast<double>(ctx.stack.size()));
        es.frontierPeak.set(
            static_cast<double>(ctx.stack.size() + 1));
        ctx.gov.noteFrontier(ctx.stack.size() + 1);
        state.restore(ctx.ps.layout, ctx.ps.sim.state());
        // The restore rewrote every flop and memory cell behind the
        // scheduler's back; the first settle of the path must sweep.
        ctx.ps.sim.markAllDirty();
        if (tr.enabled()) {
            tr.instant("engine", "pop",
                       trace::Args()
                           .add("node", static_cast<uint64_t>(node))
                           .add("pc", hex16(ctx.ps.statePcBase(state)))
                           .add("stack",
                                static_cast<uint64_t>(
                                    ctx.stack.size()))
                           .str());
        }

        // A popped state must have a concrete PC (children are pushed
        // concretized); defensive check.
        GLIFS_ASSERT(ctx.ps.statePcXBits(state).empty(),
                     "execution point with unknown PC");

        bool path_done = false;
        while (!path_done) {
            // Resource governance: poll every budget dimension before
            // simulating the next cycle. Soft exhaustion degrades in
            // place; hard exhaustion stops with a partial result (and
            // a resumable snapshot of the frontier) -- never a fatal.
            if (auto ev = ctx.gov.poll()) {
                const uint16_t at = ctx.ps.tryBusValue(prb.instrAddrQ);
                if (ev->severity == BudgetSeverity::Hard) {
                    ctx.recordDegradation(DegradeLevel::PartialStop,
                                          ev->kind, ev->severity, at,
                                          ev->detail);
                    ctx.budgetHit = true;
                    ctx.tree.node(node).end = PathEnd::Budget;
                    ctx.tree.node(node).endInstr = at;
                    if (ctx.ps.cfg.checkpointOnStop) {
                        // Park the in-flight path back on the frontier
                        // so the snapshot resumes it; it will be popped
                        // (and counted) again.
                        SymState cur(ctx.ps.layout);
                        cur.capture(ctx.ps.layout, ctx.ps.sim.state());
                        ctx.stack.emplace_back(std::move(cur), node);
                        --ctx.pathsExplored;
                    }
                    break;
                }
                if (ctx.escalate(*ev, at) ==
                    RunCtx::Escalation::KillPath) {
                    // *-logic the offending path: saturate to
                    // tainted-X and terminate it conservatively.
                    ctx.ps.starSaturate(&ctx.everTainted);
                    ctx.tree.node(node).end = PathEnd::Degraded;
                    ctx.tree.node(node).endInstr = at;
                    path_done = true;
                    break;
                }
            }

            ctx.ps.setInputs(false);
            ctx.ps.sim.evalComb();
            ++ctx.totalCycles;
            ++es.cycles;
            ctx.gov.chargeCycles(1);
            ++ctx.tree.node(node).cycles;
            if (cfg.trackTaintedNets)
                ctx.ps.accumulateTaint(ctx.everTainted);

            const uint16_t instr_addr =
                ctx.ps.busValue(prb.instrAddrQ, "instruction address");
            ctx.ps.checker.checkCycle(ctx.ps.sim, instr_addr,
                                      ctx.totalCycles, ctx.log);

            const uint16_t fsm =
                ctx.ps.busValue(prb.stateQ, "fsm state");

            // *-logic baseline: give up at the first tainted or
            // unknown control flow.
            if (cfg.starLogicMode) {
                bool pc_taint = false;
                for (NetId n : prb.pcQ)
                    pc_taint |= ctx.ps.sim.netValue(n).taint;
                if (pc_taint || ctx.ps.busHasX(prb.pcD)) {
                    auto [tainted, total] =
                        ctx.ps.starSaturate(&ctx.everTainted);
                    res.taintedGates = tainted;
                    res.totalGates = total;
                    ctx.starAborted = true;
                    ctx.tree.node(node).end = PathEnd::StarAborted;
                    ctx.tree.node(node).endInstr = instr_addr;
                    break;
                }
            }

            if (fsm == static_cast<uint16_t>(CoreState::Halt)) {
                ctx.tree.node(node).end = PathEnd::Halted;
                ctx.tree.node(node).endInstr = instr_addr;
                ctx.ps.checker.checkMemoryInvariant(ctx.ps.sim,
                                                    instr_addr,
                                                    ctx.totalCycles,
                                                    ctx.log);
                path_done = true;
                break;
            }

            // Is this cycle a PC-changing commit?
            std::optional<Instr> instr = ctx.ps.instrAt(instr_addr);
            bool is_commit =
                fsm == static_cast<uint16_t>(CoreState::Call) ||
                fsm == static_cast<uint16_t>(CoreState::Ret) ||
                (fsm == static_cast<uint16_t>(CoreState::Exec) && instr &&
                 (instr->op == Op::J || instr->op == Op::Br));

            // Unknown watchdog expiry: fork into fired / not-fired so
            // the POR is always simulated with a concrete reset line
            // (preserving the Figure-7 untainting). The fired branch is
            // pushed as a fresh execution point; the not-fired branch
            // continues inline but is forced through the state table so
            // the chain of forks converges.
            Signal por = ctx.ps.sim.netValue(prb.porNet);
            if (!por.known()) {
                ++ctx.branchPoints;
                ++es.branchPoints;
                ++es.porForks;
                GLIFS_TRACE_INSTANT_ARGS(
                    "engine", "por_fork",
                    add("instr", hex16(instr_addr))
                        .add("cycle", ctx.totalCycles));
                SymState pre(ctx.ps.layout);
                pre.capture(ctx.ps.layout, ctx.ps.sim.state());

                // Fired branch: POR forced high; PC resets to 0.
                ctx.ps.sim.setNet(prb.porNet,
                                  Signal{Tern::One, por.taint});
                ctx.ps.sim.clockEdge();
                SymState fired(ctx.ps.layout);
                fired.capture(ctx.ps.layout, ctx.ps.sim.state());
                GLIFS_ASSERT(ctx.ps.statePcXBits(fired).empty(),
                             "POR branch left the PC unknown");
                uint32_t cn = ctx.tree.addNode(
                    node, ctx.ps.statePcBase(fired));
                ctx.stack.emplace_back(std::move(fired), cn);

                // Not-fired branch: replay the cycle with POR forced
                // low and continue inline as a forced merge point.
                // The fork chain is bounded by the next PC-changing
                // commit, where the normal state-table subsumption
                // applies.
                pre.restore(ctx.ps.layout, ctx.ps.sim.state());
                ctx.ps.sim.markAllDirty();
                ctx.ps.setInputs(false);
                ctx.ps.sim.evalComb();
                ctx.ps.sim.setNet(prb.porNet,
                                  Signal{Tern::Zero, por.taint});
            }

            ctx.ps.sim.clockEdge();

            SymState cur(ctx.ps.layout);
            cur.capture(ctx.ps.layout, ctx.ps.sim.state());
            bool pc_unknown = !ctx.ps.statePcXBits(cur).empty();

            if (!is_commit && !pc_unknown)
                continue;

            if (cfg.disableMerging && !pc_unknown)
                continue;  // ablation: no subsumption, no merging
            const uint32_t table_key =
                (static_cast<uint32_t>(instr_addr) << 4) | fsm;
            // Plain conservative merge: cross-path differences that
            // could leak are all caught by the per-cycle C1-C5 checks
            // (untainted code with a tainted PC, partition escapes,
            // port escapes), mirroring the proof structure of
            // Section 5.4, so the merge itself need not re-taint.
            StateTable::Visit visit =
                ctx.ps.cfg.disableMerging
                    ? StateTable::Visit::New
                    : ctx.table.visit(table_key, cur);
            ctx.gov.noteStates(ctx.table.size());
            if (tr.enabled()) {
                static const char *const visitNames[] = {
                    "new", "subsumed", "merged"};
                tr.instant(
                    "engine", "visit",
                    trace::Args()
                        .add("instr", hex16(instr_addr))
                        .add("fsm", static_cast<uint64_t>(fsm))
                        .add("result",
                             visitNames[static_cast<int>(visit)])
                        .add("cycle", ctx.totalCycles)
                        .str());
            }
            if (visit == StateTable::Visit::Subsumed) {
                ctx.tree.node(node).end = PathEnd::Subsumed;
                ctx.tree.node(node).endInstr = instr_addr;
                ctx.ps.checker.checkMemoryInvariant(ctx.ps.sim,
                                                    instr_addr,
                                                    ctx.totalCycles,
                                                    ctx.log);
                path_done = true;
                break;
            }

            // visit() merged or stored; cur is now the conservative
            // state to continue from.
            const size_t pc_xbits = ctx.ps.statePcXBits(cur).size();
            if (pc_xbits > 0) {
                // Soft branch-fanout threshold: a wide unknown-PC
                // branch escalates the ladder before enumerating.
                if (ctx.ps.cfg.budgets.softBranchBits &&
                    pc_xbits > ctx.ps.cfg.budgets.softBranchBits &&
                    ctx.level == DegradeLevel::None) {
                    BudgetEvent ev{
                        ResourceKind::BranchFanout,
                        BudgetSeverity::Soft,
                        detail::concat(pc_xbits,
                                       " unknown PC bits at ",
                                       hex16(instr_addr))};
                    ctx.escalate(ev, instr_addr);
                }

                bool overflow = false;
                std::vector<uint16_t> pcs =
                    ctx.ps.candidatePcs(instr_addr, cur, overflow);
                if (overflow) {
                    // Hard fanout exhaustion: unbounded indirect
                    // control flow. Degrade the path to the *-logic
                    // abstraction instead of aborting the analysis.
                    ctx.recordDegradation(
                        DegradeLevel::StarLogicPath,
                        ResourceKind::BranchFanout,
                        BudgetSeverity::Hard, instr_addr,
                        detail::concat(
                            pc_xbits, " unknown PC bits exceed ",
                            ctx.ps.cfg.maxBranchBits,
                            " (consider masking the target)"));
                    ctx.ps.starSaturate(&ctx.everTainted);
                    ctx.tree.node(node).end = PathEnd::Degraded;
                    ctx.tree.node(node).endInstr = instr_addr;
                    path_done = true;
                    break;
                }
                ++ctx.branchPoints;
                ++es.branchPoints;
                ++es.pcFanouts;
                es.fanoutWidth.sample(
                    static_cast<double>(pcs.size()));
                GLIFS_TRACE_INSTANT_ARGS(
                    "engine", "branch",
                    add("instr", hex16(instr_addr))
                        .add("successors",
                             static_cast<uint64_t>(pcs.size()))
                        .add("cycle", ctx.totalCycles));
                for (uint16_t pc : pcs) {
                    uint32_t cn = ctx.tree.addNode(node, pc);
                    ctx.stack.emplace_back(
                        ctx.ps.concretizePc(cur, pc), cn);
                }
                es.frontierPeak.set(
                    static_cast<double>(ctx.stack.size()));
                ctx.gov.noteFrontier(ctx.stack.size());
                ctx.tree.node(node).end = PathEnd::Branched;
                ctx.tree.node(node).endInstr = instr_addr;
                path_done = true;
                break;
            }
            if (visit == StateTable::Visit::Merged) {
                cur.restore(ctx.ps.layout, ctx.ps.sim.state());
                ctx.ps.sim.markAllDirty();
            }
        }
    }

    es.exploreSeconds.add(secondsSince(tExplore));
    if (tr.enabled()) {
        tr.complete("engine", "explore", traceTExplore,
                    tr.nowUs() - traceTExplore);
    }
    const auto tFinalize = std::chrono::steady_clock::now();
    const uint64_t traceTFinalize = tr.enabled() ? tr.nowUs() : 0;

    res.completed = ctx.stack.empty() && !ctx.budgetHit &&
                    !ctx.starAborted;
    res.starAborted = ctx.starAborted;
    res.cyclesSimulated = ctx.totalCycles;
    res.pathsExplored = ctx.pathsExplored;
    res.branchPoints = ctx.branchPoints;
    res.merges = ctx.table.merges();
    res.subsumptions = ctx.table.subsumptions();
    res.statesTracked = ctx.table.size();
    res.violations = ctx.log.list();
    res.degradations = ctx.degradations;

    if (ctx.budgetHit && ctx.ps.cfg.checkpointOnStop) {
        auto ckpt = std::make_shared<EngineCheckpoint>();
        ckpt->fingerprint = checkpointFingerprint(
            image, ctx.ps.layout.slots(), soc.netlist().numNets());
        ckpt->totalCycles = ctx.totalCycles;
        ckpt->pathsExplored = ctx.pathsExplored;
        ckpt->branchPoints = ctx.branchPoints;
        ckpt->merges = ctx.table.merges();
        ckpt->subsumptions = ctx.table.subsumptions();
        ckpt->level = ctx.level;
        // The PartialStop record of this very stop is not carried
        // over: resumed to completion, it cost no coverage.
        for (const Degradation &d : ctx.degradations) {
            if (d.level != DegradeLevel::PartialStop)
                ckpt->degradations.push_back(d);
        }
        ckpt->violations = res.violations;
        ckpt->everTainted = ctx.everTainted;
        ckpt->table.reserve(ctx.table.entries().size());
        for (const auto &[key, state] : ctx.table.entries())
            ckpt->table.emplace_back(key, state);
        ckpt->frontier = ctx.stack;
        ckpt->tree = ctx.tree.all();
        res.checkpoint = std::move(ckpt);
    }

    res.tree = std::move(ctx.tree);

    if (!cfg.starLogicMode) {
        // Fraction of tracked gates whose output ever carried taint.
        const Netlist &nl = soc.netlist();
        size_t tainted = 0;
        size_t total = 0;
        for (const Gate &g : nl.gates()) {
            if (g.type != GateType::Comb && g.type != GateType::Dff)
                continue;
            ++total;
            if (ctx.everTainted.get(g.out))
                ++tainted;
        }
        res.taintedGates = tainted;
        res.totalGates = total;
    }
    res.taintedGateFraction =
        res.totalGates == 0
            ? 0.0
            : static_cast<double>(res.taintedGates) / res.totalGates;

    es.finalizeSeconds.add(secondsSince(tFinalize));
    if (tr.enabled()) {
        tr.complete("engine", "finalize", traceTFinalize,
                    tr.nowUs() - traceTFinalize);
    }

    const auto t1 = std::chrono::steady_clock::now();
    res.analysisSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return res;
}

} // namespace glifs
