/**
 * @file
 * The (pruned) symbolic execution tree: one node per explored execution
 * point, recording how each path started and ended (Section 4.3).
 */

#ifndef GLIFS_IFT_EXEC_TREE_HH
#define GLIFS_IFT_EXEC_TREE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace glifs
{

/** Why exploration of a path stopped. */
enum class PathEnd : uint8_t
{
    Running,     ///< still being explored
    Halted,      ///< program reached HALT
    Subsumed,    ///< covered by the conservative state at a branch
    Branched,    ///< split into children on an unknown PC / reset
    StarAborted, ///< *-logic baseline gave up (PC tainted)
    Budget,      ///< cycle budget exhausted (analysis incomplete)
    Degraded,    ///< path handed to the *-logic abstraction (governor)
};

/** One node of the execution tree. */
struct ExecNode
{
    uint32_t id = 0;
    int32_t parent = -1;
    uint16_t startPc = 0;        ///< concrete PC this path started from
    uint64_t cycles = 0;         ///< cycles simulated in this node
    uint16_t endInstr = 0;       ///< instruction where the node ended
    PathEnd end = PathEnd::Running;
};

/** Append-only tree of explored execution points. */
class ExecTree
{
  public:
    /** Add a node; returns its id. */
    uint32_t addNode(int32_t parent, uint16_t start_pc);

    ExecNode &node(uint32_t id) { return nodes[id]; }
    const ExecNode &node(uint32_t id) const { return nodes[id]; }
    size_t size() const { return nodes.size(); }
    const std::vector<ExecNode> &all() const { return nodes; }

    /** Checkpoint restore: replace the whole node array. */
    void setNodes(std::vector<ExecNode> n) { nodes = std::move(n); }

    /** Total simulated cycles across all nodes. */
    uint64_t totalCycles() const;

    /** Indented textual rendering of the tree. */
    std::string str() const;

  private:
    std::vector<ExecNode> nodes;
};

/** Printable name of a path end reason. */
const char *pathEndName(PathEnd end);

} // namespace glifs

#endif // GLIFS_IFT_EXEC_TREE_HH
