/**
 * @file
 * Resource governance and graceful degradation for the symbolic
 * taint-tracking engine.
 *
 * The paper's analysis must conservatively cover *all* executions, and
 * on real workloads the exploration can blow past any cycle, time or
 * memory budget. A production verification service must degrade
 * soundly instead of aborting: every budget has a soft threshold (the
 * engine escalates its degradation ladder and keeps going) and a hard
 * threshold (the engine stops, snapshots its frontier, and returns a
 * structured partial result). The three-valued verdict makes the
 * degraded outcome a first-class answer: "Unknown-degraded" still
 * soundly means "not verified secure".
 */

#ifndef GLIFS_IFT_GOVERNOR_HH
#define GLIFS_IFT_GOVERNOR_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace glifs
{

/** The resource dimensions the governor watches (failure taxonomy). */
enum class ResourceKind : uint8_t
{
    Cycles,        ///< total simulated cycles across all paths
    WallClock,     ///< wall-clock analysis deadline
    BranchFanout,  ///< unknown-PC enumeration width at one branch
    TrackedStates, ///< distinct entries in the conservative state table
    Memory,        ///< approximate resident set size
    Interrupt,     ///< external stop request (signal / operator)
};

/** Printable name of a resource kind. */
const char *resourceKindName(ResourceKind kind);

/** How far past a budget the analysis is. */
enum class BudgetSeverity : uint8_t
{
    Soft, ///< threshold crossed: degrade in place, keep exploring
    Hard, ///< budget exhausted: stop with a structured partial result
};

/** One threshold crossing reported by ResourceGovernor::poll(). */
struct BudgetEvent
{
    ResourceKind kind;
    BudgetSeverity severity;
    std::string detail;
};

/**
 * Per-dimension budgets. A value of 0 disables that threshold; soft
 * thresholds should be below their hard counterparts. The engine's
 * legacy EngineConfig::maxCycles is folded in as a hard cycle budget.
 */
struct ResourceBudgets
{
    uint64_t softCycles = 0;
    uint64_t hardCycles = 0;
    double softSeconds = 0.0;
    double hardSeconds = 0.0;
    size_t softStates = 0;
    size_t hardStates = 0;
    size_t softRssBytes = 0;
    size_t hardRssBytes = 0;

    /**
     * Soft branch-fanout threshold: an unknown-PC branch wider than
     * this many X bits escalates the degradation ladder (the hard
     * counterpart is EngineConfig::maxBranchBits, which *-logics the
     * offending path). Checked by the engine, not by poll().
     */
    unsigned softBranchBits = 0;

    /** True if any threshold is configured. */
    bool any() const;
};

/**
 * One liveness heartbeat fired from the governor's per-cycle poll
 * point (the same clock that services budget checks and SIGINT-safe
 * stop requests, so a heartbeat always proves the stop path is live).
 */
struct GovernorProgress
{
    uint64_t cycles = 0;       ///< simulated cycles so far
    double elapsedSeconds = 0; ///< wall time since the run started
    double cyclesPerSec = 0;   ///< overall simulation rate
    size_t frontier = 0;       ///< pending execution points
    size_t states = 0;         ///< conservative state-table entries
    size_t rssBytes = 0;       ///< sampled resident set size
    /** Fraction (0..1) of the tightest configured hard budget already
     *  spent; 0 when no hard budget is configured. */
    double budgetUsed = 0;
};

/**
 * Watches the budgets during one engine run. The engine charges
 * simulated cycles and reports the state-table size as it goes; poll()
 * is called once per simulated cycle and returns at most one *new*
 * threshold crossing (each soft threshold fires once; the first hard
 * exhaustion ends the run, so it also fires once).
 */
class ResourceGovernor
{
  public:
    using ProgressFn = std::function<void(const GovernorProgress &)>;

    explicit ResourceGovernor(const ResourceBudgets &budgets);

    void chargeCycles(uint64_t n) { cycleCount += n; }
    void noteStates(size_t n) { stateCount = n; }
    void noteFrontier(size_t n) { frontierCount = n; }

    uint64_t cycles() const { return cycleCount; }
    double elapsedSeconds() const;

    /**
     * Fire @p fn from poll() roughly every @p periodSeconds. The
     * heartbeat and the stop/budget checks share the poll clock: a run
     * that heartbeats is provably still reaching its stop point.
     */
    void setHeartbeat(double periodSeconds, ProgressFn fn);

    /** Snapshot of the run's progress (also used by heartbeats). */
    GovernorProgress progress();

    /** Check every dimension; returns a not-yet-reported crossing. */
    std::optional<BudgetEvent> poll();

    /**
     * Approximate resident set size of this process (Linux
     * /proc/self/statm; 0 where unavailable). Sampled sparsely by
     * poll() because it is a syscall.
     */
    static size_t currentRssBytes();

    /**
     * Async-signal-safe external stop request: the next poll() on any
     * governor reports a hard Interrupt event. Wired to SIGINT/SIGTERM
     * by glifs_audit so a killed run still writes its checkpoint.
     */
    static void requestGlobalStop();
    static bool globalStopRequested();
    static void clearGlobalStop();

  private:
    ResourceBudgets budgets;
    std::chrono::steady_clock::time_point start;
    uint64_t cycleCount = 0;
    size_t stateCount = 0;
    size_t frontierCount = 0;
    uint64_t pollCount = 0;
    size_t sampledRss = 0;
    std::array<bool, 6> softFired{};
    bool hardFired = false;

    double heartbeatPeriod = 0;
    double nextHeartbeat = 0;
    ProgressFn heartbeatFn;

    std::optional<BudgetEvent> hardEvent();
    std::optional<BudgetEvent> softEvent();
    void maybeHeartbeat();
};

/**
 * Rungs of the in-place degradation ladder. Each escalation trades
 * precision for resources while keeping the analysis sound:
 * WidenedMerging stays a complete verification (it may only report
 * spurious violations); StarLogicPath and PartialStop leave part of
 * the execution space covered only by the conservative *-logic
 * abstraction, so a clean run can no longer be called Secure.
 */
enum class DegradeLevel : uint8_t
{
    None = 0,
    /** Drop preciseJumpTargets: enumerate unknown-PC successors
     *  bit-wise (a conservative superset) so more paths merge. */
    WidenedMerging = 1,
    /** The offending path was saturated to tainted-X (*-logic,
     *  footnote 8) and terminated; coverage is conservative there. */
    StarLogicPath = 2,
    /** Hard exhaustion: exploration stopped with a live frontier. */
    PartialStop = 3,
};

/** Printable name of a ladder rung. */
const char *degradeLevelName(DegradeLevel level);

/** One recorded escalation of the ladder. */
struct Degradation
{
    DegradeLevel level = DegradeLevel::None;
    ResourceKind trigger = ResourceKind::Cycles;
    BudgetSeverity severity = BudgetSeverity::Soft;
    uint64_t cycle = 0;      ///< total simulated cycles at escalation
    uint16_t instrAddr = 0;  ///< instruction being executed (if known)
    std::string detail;

    std::string str() const;
};

/** Three-valued analysis verdict (replaces the boolean secure bit). */
enum class Verdict : uint8_t
{
    Secure,          ///< converged, precise, no uncontained violation
    Violations,      ///< violations found (sound: fix and re-verify)
    UnknownDegraded, ///< not verified secure: degraded or incomplete
};

/** Printable name of a verdict. */
const char *verdictName(Verdict v);

} // namespace glifs

#endif // GLIFS_IFT_GOVERNOR_HH
