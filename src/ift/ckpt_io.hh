/**
 * @file
 * Little-endian primitive serialization over in-memory buffers,
 * shared by the engine checkpoint format (ift/checkpoint.cc) and the
 * parallel-exploration wire protocol (explore/protocol.cc).
 *
 * Writer appends to a caller-provided std::string so hot paths (the
 * checkpoint save loop, segment-result shipping) can reuse one scratch
 * buffer across calls instead of re-allocating an ostringstream per
 * snapshot. Reader is a bounds-checked cursor over a std::string_view;
 * every short read or implausible section length surfaces as one
 * RecoverableError, never a garbage parse.
 */

#ifndef GLIFS_IFT_CKPT_IO_HH
#define GLIFS_IFT_CKPT_IO_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "base/bitutil.hh"
#include "base/logging.hh"
#include "ift/symstate.hh"

namespace glifs::ckptio
{

/** Caps shared by every consumer: a section length or string beyond
 *  these is treated as corruption, not an allocation request. */
constexpr uint32_t kMaxSection = 1u << 26;
constexpr uint64_t kMaxBits = 1ull << 36;

/** Little-endian primitive writer appending to a reusable buffer. */
class Writer
{
  public:
    explicit Writer(std::string &o) : out(o) {}

    void
    u8(uint8_t v)
    {
        out.push_back(static_cast<char>(v));
    }

    void
    u16(uint16_t v)
    {
        u8(v & 0xFF);
        u8(v >> 8);
    }

    void
    u32(uint32_t v)
    {
        u16(v & 0xFFFF);
        u16(v >> 16);
    }

    void
    u64(uint64_t v)
    {
        u32(static_cast<uint32_t>(v));
        u32(static_cast<uint32_t>(v >> 32));
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        out.append(s);
    }

    void
    plane(const BitPlane &p)
    {
        u64(p.size());
        for (uint64_t w : p.words())
            u64(w);
    }

    void
    symstate(const SymState &s)
    {
        plane(s.knownPlane());
        plane(s.valuePlane());
        plane(s.taintPlane());
    }

  private:
    std::string &out;
};

/** Bounds-checked little-endian cursor; RecoverableError on defects. */
class Reader
{
  public:
    explicit Reader(std::string_view b) : buf(b) {}

    uint8_t
    u8()
    {
        if (pos >= buf.size())
            GLIFS_RECOVERABLE("snapshot: truncated buffer");
        return static_cast<uint8_t>(buf[pos++]);
    }

    uint16_t u16() { return u8() | (uint16_t{u8()} << 8); }
    uint32_t u32() { return u16() | (uint32_t{u16()} << 16); }
    uint64_t u64() { return u32() | (uint64_t{u32()} << 32); }

    std::string
    str()
    {
        uint32_t n = u32();
        if (n > kMaxSection)
            GLIFS_RECOVERABLE("snapshot: implausible string length ",
                              n);
        if (pos + n > buf.size())
            GLIFS_RECOVERABLE("snapshot: truncated buffer");
        std::string s(buf.substr(pos, n));
        pos += n;
        return s;
    }

    BitPlane
    plane()
    {
        uint64_t nbits = u64();
        if (nbits > kMaxBits)
            GLIFS_RECOVERABLE("snapshot: implausible plane size ",
                              nbits);
        BitPlane p(static_cast<size_t>(nbits));
        for (uint64_t &w : p.words())
            w = u64();
        return p;
    }

    SymState
    symstate()
    {
        BitPlane k = plane();
        BitPlane v = plane();
        BitPlane t = plane();
        if (k.size() != v.size() || v.size() != t.size())
            GLIFS_RECOVERABLE("snapshot: state plane size mismatch");
        SymState s;
        s.setPlanes(std::move(k), std::move(v), std::move(t));
        return s;
    }

    /** Bytes not yet consumed (trailing-garbage checks). */
    size_t remaining() const { return buf.size() - pos; }

  private:
    std::string_view buf;
    size_t pos = 0;
};

} // namespace glifs::ckptio

#endif // GLIFS_IFT_CKPT_IO_HH
