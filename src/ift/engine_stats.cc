#include "ift/engine_stats.hh"

namespace glifs
{

EngineStats &
EngineStats::instance()
{
    static EngineStats s;
    return s;
}

EngineStats &
engineStats()
{
    return EngineStats::instance();
}

} // namespace glifs
