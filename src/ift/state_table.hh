/**
 * @file
 * The table of most-conservative observed states, keyed by the program
 * address of each PC-changing instruction (Algorithm 1, lines 20-22 and
 * 30-32).
 */

#ifndef GLIFS_IFT_STATE_TABLE_HH
#define GLIFS_IFT_STATE_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "ift/symstate.hh"

namespace glifs
{

/** Conservative-state table T of Algorithm 1. */
class StateTable
{
  public:
    /** Outcome of visiting a PC-changing instruction. */
    enum class Visit
    {
        New,        ///< first time at this branch; state stored
        Subsumed,   ///< state already covered: terminate this path
        Merged,     ///< state merged; continue from the merged state
    };

    /**
     * Visit the branch at @p key with the current state. The key is a
     * compound of the PC-changing instruction's address and the FSM
     * micro-state, so mid-instruction visits merge like with like. On
     * Merged, @p state is updated in place to the merged conservative
     * state (the caller continues from it, per Algorithm 1).
     */
    Visit visit(uint32_t key, SymState &state,
                bool taint_diffs = false);

    size_t size() const { return table.size(); }
    size_t merges() const { return mergeCount; }
    size_t subsumptions() const { return subsumeCount; }

    /** The stored conservative state for a branch (or nullptr). */
    const SymState *lookup(uint32_t key) const;

    /** All stored states (checkpoint serialization). */
    const std::unordered_map<uint32_t, SymState> &entries() const
    {
        return table;
    }

    /** Checkpoint restore: re-insert a stored state verbatim. */
    void insertRestored(uint32_t key, SymState state);

    /** Checkpoint restore: carry the merge/subsumption counters over. */
    void setCounters(size_t merges, size_t subsumptions);

  private:
    std::unordered_map<uint32_t, SymState> table;
    size_t mergeCount = 0;
    size_t subsumeCount = 0;
};

} // namespace glifs

#endif // GLIFS_IFT_STATE_TABLE_HH
