#include "ift/checkpoint.hh"

#include <chrono>
#include <fstream>

#include "base/hash.hh"
#include "base/logging.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "ift/ckpt_io.hh"

namespace glifs
{

namespace
{

constexpr char kMagic[8] = {'G', 'L', 'F', 'S', 'C', 'K', 'P', 'T'};

/** Snapshot size/latency accounting (docs/OBSERVABILITY.md). */
struct CheckpointStats
{
    stats::Scalar saves{"checkpoint.saves", "snapshots written"};
    stats::Scalar loads{"checkpoint.loads", "snapshots loaded"};
    stats::Gauge bytesWritten{"checkpoint.bytes_written",
                              "size of the last snapshot written"};
    stats::Gauge bytesRead{"checkpoint.bytes_read",
                           "size of the last snapshot loaded"};
    stats::Gauge saveSeconds{"checkpoint.save_seconds",
                             "wall time of the last save"};
    stats::Gauge loadSeconds{"checkpoint.load_seconds",
                             "wall time of the last load"};
};

CheckpointStats &
ckptStats()
{
    static CheckpointStats s;
    return s;
}

/**
 * Per-thread scratch buffer for save/load bodies. Snapshot bodies of
 * one run are all about the same size, so after the first call the
 * serialize path performs no heap allocation beyond string payloads --
 * this is the steal-latency floor of parallel exploration, where every
 * shipped work unit rides through encodeBody/decodeBody.
 */
std::string &
scratchBuffer()
{
    static thread_local std::string buf;
    buf.clear();
    return buf;
}

} // namespace

uint64_t
checkpointFingerprint(const ProgramImage &image, size_t slots,
                      size_t nets)
{
    // FNV-1a over the image words, then the layout geometry.
    uint64_t h = 14695981039346656037ULL;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xFF;
            h *= 1099511628211ULL;
        }
    };
    for (uint16_t w : image.words)
        mix(w);
    mix(image.usedWords);
    mix(slots);
    mix(nets);
    return h;
}

void
EngineCheckpoint::encodeBody(std::string &out) const
{
    ckptio::Writer w(out);
    w.u64(fingerprint);
    w.u64(totalCycles);
    w.u64(pathsExplored);
    w.u64(branchPoints);
    w.u64(merges);
    w.u64(subsumptions);
    w.u8(static_cast<uint8_t>(level));

    w.u32(static_cast<uint32_t>(degradations.size()));
    for (const Degradation &d : degradations) {
        w.u8(static_cast<uint8_t>(d.level));
        w.u8(static_cast<uint8_t>(d.trigger));
        w.u8(static_cast<uint8_t>(d.severity));
        w.u64(d.cycle);
        w.u16(d.instrAddr);
        w.str(d.detail);
    }

    w.u32(static_cast<uint32_t>(violations.size()));
    for (const Violation &v : violations) {
        w.u8(static_cast<uint8_t>(v.kind));
        w.u16(v.instrAddr);
        w.u64(v.firstCycle);
        w.u32(v.count);
        w.u8(v.maskable ? 1 : 0);
        w.str(v.detail);
    }

    w.plane(everTainted);

    w.u32(static_cast<uint32_t>(table.size()));
    for (const auto &[key, state] : table) {
        w.u32(key);
        w.symstate(state);
    }

    w.u32(static_cast<uint32_t>(frontier.size()));
    for (const auto &[state, node] : frontier) {
        w.symstate(state);
        w.u32(node);
    }

    w.u32(static_cast<uint32_t>(tree.size()));
    for (const ExecNode &n : tree) {
        w.u32(n.id);
        w.u32(static_cast<uint32_t>(n.parent));
        w.u16(n.startPc);
        w.u64(n.cycles);
        w.u16(n.endInstr);
        w.u8(static_cast<uint8_t>(n.end));
    }
}

EngineCheckpoint
EngineCheckpoint::decodeBody(std::string_view body)
{
    ckptio::Reader r(body);

    EngineCheckpoint c;
    c.fingerprint = r.u64();
    c.totalCycles = r.u64();
    c.pathsExplored = r.u64();
    c.branchPoints = r.u64();
    c.merges = r.u64();
    c.subsumptions = r.u64();
    uint8_t level = r.u8();
    if (level > static_cast<uint8_t>(DegradeLevel::PartialStop))
        GLIFS_RECOVERABLE("checkpoint: bad degrade level ", level);
    c.level = static_cast<DegradeLevel>(level);

    uint32_t ndeg = r.u32();
    if (ndeg > ckptio::kMaxSection)
        GLIFS_RECOVERABLE("checkpoint: implausible section size");
    c.degradations.reserve(ndeg);
    for (uint32_t i = 0; i < ndeg; ++i) {
        Degradation d;
        d.level = static_cast<DegradeLevel>(r.u8());
        d.trigger = static_cast<ResourceKind>(r.u8());
        d.severity = static_cast<BudgetSeverity>(r.u8());
        d.cycle = r.u64();
        d.instrAddr = r.u16();
        d.detail = r.str();
        c.degradations.push_back(std::move(d));
    }

    uint32_t nviol = r.u32();
    if (nviol > ckptio::kMaxSection)
        GLIFS_RECOVERABLE("checkpoint: implausible section size");
    c.violations.reserve(nviol);
    for (uint32_t i = 0; i < nviol; ++i) {
        Violation v;
        v.kind = static_cast<ViolationKind>(r.u8());
        v.instrAddr = r.u16();
        v.firstCycle = r.u64();
        v.count = r.u32();
        v.maskable = r.u8() != 0;
        v.detail = r.str();
        c.violations.push_back(std::move(v));
    }

    c.everTainted = r.plane();

    uint32_t ntable = r.u32();
    if (ntable > ckptio::kMaxSection)
        GLIFS_RECOVERABLE("checkpoint: implausible section size");
    c.table.reserve(ntable);
    for (uint32_t i = 0; i < ntable; ++i) {
        uint32_t key = r.u32();
        c.table.emplace_back(key, r.symstate());
    }

    uint32_t nfront = r.u32();
    if (nfront > ckptio::kMaxSection)
        GLIFS_RECOVERABLE("checkpoint: implausible section size");
    c.frontier.reserve(nfront);
    for (uint32_t i = 0; i < nfront; ++i) {
        SymState s = r.symstate();
        uint32_t node = r.u32();
        c.frontier.emplace_back(std::move(s), node);
    }

    uint32_t ntree = r.u32();
    if (ntree > ckptio::kMaxSection)
        GLIFS_RECOVERABLE("checkpoint: implausible section size");
    c.tree.reserve(ntree);
    for (uint32_t i = 0; i < ntree; ++i) {
        ExecNode n;
        n.id = r.u32();
        n.parent = static_cast<int32_t>(r.u32());
        n.startPc = r.u16();
        n.cycles = r.u64();
        n.endInstr = r.u16();
        uint8_t end = r.u8();
        if (end > static_cast<uint8_t>(PathEnd::Degraded))
            GLIFS_RECOVERABLE("checkpoint: bad path end ", end);
        n.end = static_cast<PathEnd>(end);
        c.tree.push_back(n);
    }

    return c;
}

void
EngineCheckpoint::save(const std::string &path) const
{
    GLIFS_TRACE_SCOPE("checkpoint", "save");
    const auto t0 = std::chrono::steady_clock::now();

    // Serialize the body to a buffer first so its CRC-32 can sit in
    // the header: load() then verifies the whole body before parsing
    // a byte of it, turning any on-disk corruption into one clean
    // RecoverableError instead of a garbage parse. The scratch is
    // per-thread and reused across saves, so the serialize path does
    // not re-allocate its working set on every snapshot.
    std::string &bytes = scratchBuffer();
    encodeBody(bytes);

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        GLIFS_RECOVERABLE("checkpoint: cannot write ", path);
    out.write(kMagic, sizeof(kMagic));
    char hdr[8];
    const uint32_t crc = crc32(bytes);
    for (int i = 0; i < 4; ++i) {
        hdr[i] = static_cast<char>((kVersion >> (8 * i)) & 0xFF);
        hdr[4 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
    }
    out.write(hdr, sizeof(hdr));
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out)
        GLIFS_RECOVERABLE("checkpoint: write to ", path, " failed");

    CheckpointStats &st = ckptStats();
    ++st.saves;
    st.bytesWritten.set(static_cast<double>(out.tellp()));
    st.saveSeconds.set(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
}

EngineCheckpoint
EngineCheckpoint::load(const std::string &path)
{
    GLIFS_TRACE_SCOPE("checkpoint", "load");
    const auto t0 = std::chrono::steady_clock::now();
    std::ifstream in(path, std::ios::binary);
    if (!in)
        GLIFS_RECOVERABLE("checkpoint: cannot open ", path);
    char magic[8] = {};
    in.read(magic, sizeof(magic));
    if (in.gcount() != sizeof(magic) ||
        !std::equal(magic, magic + sizeof(magic), kMagic)) {
        GLIFS_RECOVERABLE("checkpoint: ", path,
                          " is not a glifs checkpoint");
    }
    char hdr[8] = {};
    in.read(hdr, sizeof(hdr));
    if (in.gcount() != sizeof(hdr))
        GLIFS_RECOVERABLE("checkpoint: truncated file");
    uint32_t version = 0;
    uint32_t wantCrc = 0;
    for (int i = 0; i < 4; ++i) {
        version |= uint32_t{static_cast<uint8_t>(hdr[i])} << (8 * i);
        wantCrc |= uint32_t{static_cast<uint8_t>(hdr[4 + i])}
                   << (8 * i);
    }
    if (version != kVersion) {
        GLIFS_RECOVERABLE("checkpoint: version ", version,
                          " unsupported (expected ", kVersion, ")");
    }

    // Slurp and verify the body before parsing: a bit flip anywhere
    // must become this one error, not a semi-plausible parse. The
    // slurp reuses the per-thread scratch, so repeated loads (the
    // parallel coordinator re-reading shipped work units) settle into
    // a steady-state allocation footprint.
    std::string &bytes = scratchBuffer();
    in.seekg(0, std::ios::end);
    const std::streamoff fileEnd = in.tellg();
    constexpr std::streamoff kBodyOff =
        static_cast<std::streamoff>(sizeof(kMagic) + sizeof(hdr));
    if (fileEnd < kBodyOff)
        GLIFS_RECOVERABLE("checkpoint: truncated file");
    bytes.resize(static_cast<size_t>(fileEnd - kBodyOff));
    in.seekg(kBodyOff, std::ios::beg);
    in.read(bytes.data(),
            static_cast<std::streamsize>(bytes.size()));
    if (static_cast<size_t>(in.gcount()) != bytes.size())
        GLIFS_RECOVERABLE("checkpoint: truncated file");
    if (crc32(bytes) != wantCrc)
        GLIFS_RECOVERABLE("checkpoint: ", path,
                          " failed its integrity check (corrupt or "
                          "truncated body)");
    EngineCheckpoint c = decodeBody(bytes);

    CheckpointStats &st = ckptStats();
    ++st.loads;
    st.bytesRead.set(static_cast<double>(sizeof(kMagic) + 8 +
                                         bytes.size()));
    st.loadSeconds.set(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
    return c;
}

} // namespace glifs
