#include "ift/policy.hh"

#include <sstream>

#include "base/strutil.hh"

namespace glifs
{

const CodePartition *
Policy::codePartitionOf(uint16_t addr) const
{
    for (const CodePartition &p : code) {
        if (addr >= p.lo && addr <= p.hi)
            return &p;
    }
    return nullptr;
}

const MemPartition *
Policy::memPartitionOf(uint16_t addr) const
{
    for (const MemPartition &p : mem) {
        if (addr >= p.lo && addr <= p.hi)
            return &p;
    }
    return nullptr;
}

bool
Policy::codeTainted(uint16_t addr) const
{
    const CodePartition *p = codePartitionOf(addr);
    return p != nullptr && p->tainted;
}

Policy &
Policy::addCode(const std::string &name, uint16_t lo, uint16_t hi,
                bool tainted)
{
    code.push_back(CodePartition{name, lo, hi, tainted});
    return *this;
}

Policy &
Policy::addMem(const std::string &name, uint16_t lo, uint16_t hi,
               bool tainted)
{
    mem.push_back(MemPartition{name, lo, hi, tainted});
    return *this;
}

std::string
Policy::str() const
{
    std::ostringstream oss;
    oss << "policy '" << name << "'\n";
    for (unsigned p = 0; p < 4; ++p) {
        oss << "  P" << p + 1 << "IN: "
            << (taintedInPort[p] ? "tainted" : "untainted") << "  P"
            << p + 1 << "OUT: "
            << (trustedOutPort[p] ? "trusted" : "untrusted") << "\n";
    }
    for (const CodePartition &c : code) {
        oss << "  code '" << c.name << "' [" << hex16(c.lo) << ", "
            << hex16(c.hi) << "] "
            << (c.tainted ? "tainted" : "untainted") << "\n";
    }
    for (const MemPartition &m : mem) {
        oss << "  mem  '" << m.name << "' [" << hex16(m.lo) << ", "
            << hex16(m.hi) << "] "
            << (m.tainted ? "tainted" : "untainted") << "\n";
    }
    return oss.str();
}

Policy
benchmarkPolicy(uint16_t task_lo, uint16_t task_hi)
{
    Policy p;
    p.taintedInPort = {true, false, false, false};
    p.trustedOutPort = {true, false, true, true};
    if (task_lo > 0)
        p.addCode("system", 0, static_cast<uint16_t>(task_lo - 1),
                  false);
    p.addCode("task", task_lo, task_hi, true);
    p.addMem("sys_ram", iot430::kUntaintedRamLo, iot430::kUntaintedRamHi,
             false);
    p.addMem("task_ram", iot430::kTaintedRamLo, iot430::kTaintedRamHi,
             true);
    return p;
}

} // namespace glifs
