/**
 * @file
 * Input-independent gate-level taint tracking (Algorithm 1 of the
 * paper), adapted to the multi-cycle IoT430 core.
 *
 * The engine symbolically simulates the whole netlist cycle by cycle
 * with all port inputs set to unknown (X) values, tainted according to
 * the policy. When the next PC is unknown -- a control-flow instruction
 * whose outcome depends on an X -- the execution tree branches over all
 * possible concrete next-PC values (retaining per-bit taint). At every
 * PC-changing instruction the current state is compared against /
 * merged into the most conservative state previously observed at that
 * instruction, pruning the tree and guaranteeing termination on the
 * finite state lattice. An unknown watchdog expiry similarly forks
 * into fired / not-fired branches so the power-on reset is always
 * simulated with a concrete reset line (preserving the Figure-7
 * untainting semantics).
 */

#ifndef GLIFS_IFT_ENGINE_HH
#define GLIFS_IFT_ENGINE_HH

#include <cstdint>
#include <memory>

#include "assembler/program_image.hh"
#include "ift/checker.hh"
#include "ift/exec_tree.hh"
#include "ift/governor.hh"
#include "ift/policy.hh"
#include "ift/state_table.hh"
#include "soc/soc.hh"

namespace glifs
{

struct EngineCheckpoint;

/** Engine knobs. */
struct EngineConfig
{
    /** Total simulated-cycle budget across all paths (a hard budget;
     *  folded into ResourceBudgets::hardCycles). */
    uint64_t maxCycles = 2'000'000;

    /**
     * Max unknown PC bits enumerated at a branch. Exceeding it is a
     * hard branch-fanout exhaustion: the offending path is saturated
     * to the *-logic abstraction and terminated (recorded as a
     * degradation), so long runs always produce a report.
     */
    unsigned maxBranchBits = 8;

    /**
     * Resource budgets polled every simulated cycle. Soft exhaustion
     * escalates the degradation ladder in place; hard exhaustion stops
     * the run with a structured partial result (and a checkpoint when
     * checkpointOnStop is set). All default to disabled.
     */
    ResourceBudgets budgets;

    /**
     * On hard exhaustion, snapshot the state table + frontier into
     * EngineResult::checkpoint so the run can be resumed later.
     */
    bool checkpointOnStop = false;

    /**
     * *-logic baseline (footnote 8): when the PC first becomes tainted
     * or unknown, every software-exercisable gate is conservatively
     * made unknown and tainted and the analysis gives up on precision.
     */
    bool starLogicMode = false;

    /** Track which nets ever carried taint (for gate-taint stats). */
    bool trackTaintedNets = true;

    /**
     * Liveness heartbeat: when progressSeconds > 0 and progressFn is
     * set, the governor fires progressFn about every progressSeconds
     * from its per-cycle poll point — the same clock that services
     * budget checks and SIGINT-safe stop requests (glifs_audit
     * --progress). Exploration events themselves go to the structured
     * tracer (base/trace.hh) when it is enabled, replacing the old
     * debugTrace stderr prints.
     */
    double progressSeconds = 0.0;
    ResourceGovernor::ProgressFn progressFn;

    /**
     * Ablation: disable the conservative state table. Paths only end
     * on HALT or the cycle budget -- loops never converge, which is
     * exactly what bench_ablation_engine demonstrates.
     */
    bool disableMerging = false;

    /**
     * Ablation: when false, unknown next-PCs of conditional jumps are
     * enumerated bit-wise (a conservative superset) instead of using
     * the decoded {target, fallthrough} successors.
     */
    bool preciseJumpTargets = true;

    /**
     * Section-8 extension hook: nets forced to an unknown (X) value at
     * the start of every cycle. This is the paper's recipe for
     * analyzing nondeterministic microarchitecture ("by injecting an X
     * as the result of a tag check, both the cache hit and miss paths
     * will be explored"): name the nondeterministic state/result nets
     * here and the symbolic exploration covers every outcome. The
     * injected signals keep the taint given here (default untainted).
     */
    std::vector<std::pair<NetId, bool>> injectUnknown;
};

/** Outcome of an analysis run. */
struct EngineResult
{
    bool completed = false;       ///< exploration converged in budget
    bool starAborted = false;     ///< *-logic mode hit a tainted PC
    uint64_t cyclesSimulated = 0;
    size_t pathsExplored = 0;
    size_t branchPoints = 0;      ///< forks on unknown PC / reset
    size_t merges = 0;
    size_t subsumptions = 0;
    size_t statesTracked = 0;     ///< distinct PC-changing instructions
    double analysisSeconds = 0.0;

    std::vector<Violation> violations;

    /** Fraction of tracked gates whose output ever carried taint. */
    double taintedGateFraction = 0.0;
    size_t taintedGates = 0;
    size_t totalGates = 0;

    /** The pruned execution tree (diagnostics / Figure 7 rendering). */
    ExecTree tree;

    /** Every escalation of the degradation ladder, in order. */
    std::vector<Degradation> degradations;

    /**
     * Snapshot of the paused run, set on hard budget exhaustion when
     * EngineConfig::checkpointOnStop is enabled (shared_ptr so
     * EngineResult stays copyable).
     */
    std::shared_ptr<EngineCheckpoint> checkpoint;

    /**
     * Secure iff the analysis converged and found no violation other
     * than *contained* tainted control flow inside tainted tasks --
     * a tainted task may taint its own PC without breaking
     * non-interference as long as the taint never reaches untainted
     * code, memory partitions, trusted ports or the watchdog (all of
     * which are separate violation kinds). A run that degraded past
     * WidenedMerging (some coverage handed to the *-logic
     * abstraction, or exploration stopped early) can never be secure.
     */
    bool secure() const;

    /** Did any degradation forfeit verification completeness? Widened
     *  merging alone stays a full (if less precise) verification. */
    bool degradedUnsound() const;

    /**
     * Three-valued verdict: Violations when uncontained violations
     * were found (sound under the conservative semantics: fix and
     * re-verify), Secure when the precise analysis converged cleanly,
     * Unknown-degraded otherwise -- still a sound "not verified
     * secure" answer.
     */
    Verdict verdict() const;

    /** True if only watchdog/mask-fixable warnings were found. */
    bool onlyFixable() const;

    std::string summary() const;
};

/**
 * The application-specific gate-level information flow tracking tool
 * (Figure 6): netlist + binary + policy in, violations out.
 */
class IftEngine
{
  public:
    IftEngine(const Soc &soc, const Policy &policy,
              const EngineConfig &cfg = {});

    /** Run the full analysis of a program image. */
    EngineResult run(const ProgramImage &image);

    /**
     * Run the analysis, optionally continuing from a checkpoint taken
     * by an earlier (interrupted) run of the same image on the same
     * SoC. Throws RecoverableError if the checkpoint does not match.
     * Resuming an unmodified snapshot reproduces the uninterrupted
     * run's counters and violations exactly.
     */
    EngineResult run(const ProgramImage &image,
                     const EngineCheckpoint *resume);

  private:
    const Soc &soc;
    Policy policy;  ///< by value: callers often pass temporaries
    EngineConfig cfg;
};

} // namespace glifs

#endif // GLIFS_IFT_ENGINE_HH
