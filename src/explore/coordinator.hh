/**
 * @file
 * Work-stealing parallel symbolic exploration (DESIGN.md §11).
 *
 * The coordinator owns the authoritative serial exploration: the LIFO
 * frontier, the conservative state table, the governor, the violation
 * log and the execution tree all live here, and every segment's
 * *effects* are applied in exactly the order the serial engine would
 * produce them. Worker processes only ever execute segments
 * speculatively -- pure functions of their start state
 * (ift/path_sim.hh) -- and publish the results into a digest-keyed
 * cache. When the serial apply reaches a state whose digest is cached,
 * it consumes the result instead of re-simulating; when it is not (or
 * the cached result would cross a budget threshold mid-segment), the
 * coordinator simulates inline under the real governor. The verdict,
 * violation set, cycle counts and execution tree are therefore
 * bit-identical to the serial engine for every job count, and progress
 * never depends on any worker staying alive.
 *
 * Work is sharded to per-worker queues round-robin; a drained worker
 * steals from the most loaded queue (explore.steals). A worker that
 * dies (crash, kill -9, injected fault) is detected by pipe EOF, its
 * outstanding work is resharded, and it is respawned up to a cap
 * (explore.workers_respawned).
 */

#ifndef GLIFS_EXPLORE_COORDINATOR_HH
#define GLIFS_EXPLORE_COORDINATOR_HH

#include <string>
#include <vector>

#include "assembler/program_image.hh"
#include "ift/engine.hh"
#include "ift/policy.hh"
#include "soc/soc.hh"

namespace glifs::explore
{

/** How the coordinator runs and respawns its worker fleet. */
struct ExploreConfig
{
    /** Total exploration processes including the coordinator; the
     *  coordinator spawns jobs-1 workers. Must be >= 2 (jobs == 1 is
     *  the untouched serial IftEngine path, selected by the caller). */
    unsigned jobs = 2;

    /** The glifs_audit binary to exec as --explore-worker. */
    std::string auditBinary;

    /** argv tail rebuilding the same Soc/Policy/image in the worker
     *  (firmware path, --policy/--task-base/--task-end/--taint-code,
     *  --max-cycles). */
    std::vector<std::string> workerArgs;

    unsigned chunkEntries = 6;   ///< execution points per work unit
    unsigned maxOutstanding = 2; ///< shipped units in flight per worker
    unsigned respawnCap = 3;     ///< respawns per worker slot
};

/**
 * Drop-in parallel replacement for IftEngine::run. Same inputs, same
 * EngineResult contract, deterministically identical output.
 */
class ParallelEngine
{
  public:
    ParallelEngine(const Soc &s, const Policy &p, const EngineConfig &c,
                   ExploreConfig x);

    EngineResult run(const ProgramImage &image);
    EngineResult run(const ProgramImage &image,
                     const EngineCheckpoint *resume);

  private:
    const Soc &soc;
    const Policy &policy;
    EngineConfig cfg;
    ExploreConfig xcfg;
};

} // namespace glifs::explore

#endif // GLIFS_EXPLORE_COORDINATOR_HH
