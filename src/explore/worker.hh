/**
 * @file
 * The exploration worker process (`glifs_audit --explore-worker`).
 *
 * A worker is a persistent child of the parallel coordinator
 * (explore/coordinator.hh): it compiles the netlist once, then serves
 * work units for the rest of the run. The control protocol is two text
 * line streams over inherited pipes:
 *
 *   fd 0 (coordinator -> worker):  `w <seq> <path>`  process one unit
 *                                  `q`               drain and exit
 *   fd 3 (worker -> coordinator):  `r <seq> <usec> <path>`  results
 *                                  `e <seq>`                unit lost
 *
 * For every shipped execution point the worker runs the segment, then
 * speculatively *chains*: as long as a segment ends at a commit with a
 * concrete PC (the case the serial engine continues inline), the next
 * segment is run from its end state, up to a chain cap. Each link is
 * reported under its own start-state digest, so the coordinator's
 * strictly-serial apply consumes exactly the prefix of the chain that
 * the authoritative state table agrees with and prunes the rest.
 *
 * All file and pipe I/O goes through faultfs, so the crash-recovery
 * sweeps (GLIFS_FAULT_PLAN) can kill a worker deterministically at any
 * read/write boundary; the coordinator must then recover by resharding
 * (tests/test_explore.cc).
 */

#ifndef GLIFS_EXPLORE_WORKER_HH
#define GLIFS_EXPLORE_WORKER_HH

#include "assembler/program_image.hh"
#include "ift/engine.hh"
#include "ift/policy.hh"
#include "soc/soc.hh"

namespace glifs::explore
{

/** The fd the coordinator attaches the result stream to. */
constexpr int kResultFd = 3;

/** Maximum segments chained speculatively per shipped entry. */
constexpr unsigned kChainSegments = 8;

/**
 * Serve work units until `q` or EOF on fd 0. cfg.maxCycles bounds the
 * simulated cycles per shipped entry (chain total); a segment still
 * running at the cap is reported as overrun and re-executed inline by
 * the coordinator under the real governor. Returns the process exit
 * code.
 */
int workerMain(const Soc &soc, const Policy &policy,
               const EngineConfig &cfg, const ProgramImage &image);

} // namespace glifs::explore

#endif // GLIFS_EXPLORE_WORKER_HH
