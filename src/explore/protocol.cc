#include "explore/protocol.hh"

#include <fcntl.h>
#include <unistd.h>

#include <fstream>
#include <sstream>

#include "base/faultfs.hh"
#include "base/hash.hh"
#include "base/logging.hh"
#include "ift/checkpoint.hh"
#include "ift/ckpt_io.hh"

namespace glifs::explore
{

namespace
{

constexpr char kMagic[8] = {'G', 'L', 'F', 'S', 'S', 'E', 'G', 'R'};
constexpr uint32_t kVersion = 1;

enum SegFlag : uint8_t
{
    kHalted = 1 << 0,
    kPcUnknown = 1 << 1,
    kOverrun = 1 << 2,
    kHasEnd = 1 << 3,
    kHasTaint = 1 << 4,
};

} // namespace

std::string
stateDigest(const SymState &s)
{
    Sha256 h;
    // Plane sizes first so boundary-shifted plane contents never
    // collide across states of different (hypothetical) layouts.
    const BitPlane *planes[] = {&s.knownPlane(), &s.valuePlane(),
                                &s.taintPlane()};
    for (const BitPlane *p : planes) {
        uint64_t n = p->size();
        h.update(&n, sizeof(n));
        h.update(p->words().data(),
                 p->words().size() * sizeof(uint64_t));
    }
    std::array<uint8_t, 32> d = h.digest();
    return std::string(reinterpret_cast<const char *>(d.data()),
                       d.size());
}

void
saveWorkUnit(const std::string &path, uint64_t fingerprint,
             const std::vector<SymState> &states)
{
    EngineCheckpoint ck;
    ck.fingerprint = fingerprint;
    ck.frontier.reserve(states.size());
    for (size_t i = 0; i < states.size(); ++i)
        ck.frontier.emplace_back(states[i], static_cast<uint32_t>(i));
    ck.save(path);
}

std::vector<SymState>
loadWorkUnit(const std::string &path, uint64_t fingerprint)
{
    EngineCheckpoint ck = EngineCheckpoint::load(path);
    if (ck.fingerprint != fingerprint) {
        GLIFS_RECOVERABLE(
            "work unit does not match this program image (stale "
            "chunk from a different run?)");
    }
    std::vector<SymState> states;
    states.reserve(ck.frontier.size());
    for (auto &[state, node] : ck.frontier)
        states.push_back(std::move(state));
    return states;
}

void
saveSegmentResults(const std::string &path, uint64_t fingerprint,
                   const std::vector<SegmentRecord> &records)
{
    std::string body;
    ckptio::Writer w(body);
    w.u64(fingerprint);
    w.u32(static_cast<uint32_t>(records.size()));
    for (const SegmentRecord &rec : records) {
        w.str(rec.digest);
        const SegmentResult &s = rec.seg;
        w.u64(s.cycles);
        w.u16(s.endInstr);
        w.u16(s.endFsm);
        uint8_t flags = 0;
        if (s.halted)
            flags |= kHalted;
        if (s.pcUnknown)
            flags |= kPcUnknown;
        if (rec.overrun)
            flags |= kOverrun;
        const bool hasEnd = !s.halted && !rec.overrun;
        if (hasEnd)
            flags |= kHasEnd;
        if (s.taintDelta.size() > 0)
            flags |= kHasTaint;
        w.u8(flags);
        if (hasEnd)
            w.symstate(s.end);
        w.u32(static_cast<uint32_t>(s.violations.size()));
        for (const Violation &v : s.violations) {
            w.u8(static_cast<uint8_t>(v.kind));
            w.u16(v.instrAddr);
            w.u64(v.firstCycle);
            w.u32(v.count);
            w.u8(v.maskable ? 1 : 0);
            w.str(v.detail);
        }
        w.u32(static_cast<uint32_t>(s.porForks.size()));
        for (const SegmentPorFork &f : s.porForks) {
            w.u16(f.startPc);
            w.symstate(f.fired);
        }
        if (s.taintDelta.size() > 0)
            w.plane(s.taintDelta);
    }

    std::string out;
    out.append(kMagic, sizeof(kMagic));
    ckptio::Writer hw(out);
    hw.u32(kVersion);
    hw.u32(crc32(body));
    out.append(body);

    // faultfs so a crash-recovery plan (GLIFS_FAULT_PLAN) can kill or
    // fail the worker deterministically at this write boundary.
    int fd = faultfs::open(path.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        GLIFS_RECOVERABLE("segment results: cannot write ", path);
    ssize_t n = faultfs::writeFull(fd, out.data(), out.size());
    ::close(fd);
    if (n != static_cast<ssize_t>(out.size()))
        GLIFS_RECOVERABLE("segment results: write to ", path,
                          " failed");
}

std::vector<SegmentRecord>
loadSegmentResults(const std::string &path, uint64_t fingerprint)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        GLIFS_RECOVERABLE("segment results: cannot open ", path);
    std::ostringstream oss;
    oss << in.rdbuf();
    std::string doc = oss.str();

    if (doc.size() < sizeof(kMagic) + 8 ||
        doc.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0)
        GLIFS_RECOVERABLE("segment results: bad magic in ", path);
    ckptio::Reader hr(
        std::string_view(doc).substr(sizeof(kMagic), 8));
    uint32_t version = hr.u32();
    if (version != kVersion)
        GLIFS_RECOVERABLE("segment results: unknown version ",
                          version);
    uint32_t want = hr.u32();
    std::string_view body =
        std::string_view(doc).substr(sizeof(kMagic) + 8);
    if (crc32(body.data(), body.size()) != want)
        GLIFS_RECOVERABLE("segment results: CRC mismatch in ", path);

    ckptio::Reader r(body);
    if (r.u64() != fingerprint)
        GLIFS_RECOVERABLE(
            "segment results do not match this program image");
    uint32_t count = r.u32();
    if (count > ckptio::kMaxSection)
        GLIFS_RECOVERABLE("segment results: implausible record count");
    std::vector<SegmentRecord> records;
    records.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        SegmentRecord rec;
        rec.digest = r.str();
        if (rec.digest.size() != 32)
            GLIFS_RECOVERABLE("segment results: bad digest length");
        SegmentResult &s = rec.seg;
        s.cycles = r.u64();
        s.endInstr = r.u16();
        s.endFsm = r.u16();
        uint8_t flags = r.u8();
        s.halted = flags & kHalted;
        s.pcUnknown = flags & kPcUnknown;
        rec.overrun = flags & kOverrun;
        if (flags & kHasEnd)
            s.end = r.symstate();
        uint32_t nviol = r.u32();
        if (nviol > ckptio::kMaxSection)
            GLIFS_RECOVERABLE(
                "segment results: implausible section size");
        s.violations.reserve(nviol);
        for (uint32_t j = 0; j < nviol; ++j) {
            Violation v;
            v.kind = static_cast<ViolationKind>(r.u8());
            v.instrAddr = r.u16();
            v.firstCycle = r.u64();
            v.count = r.u32();
            v.maskable = r.u8() != 0;
            v.detail = r.str();
            s.violations.push_back(std::move(v));
        }
        uint32_t npor = r.u32();
        if (npor > ckptio::kMaxSection)
            GLIFS_RECOVERABLE(
                "segment results: implausible section size");
        s.porForks.reserve(npor);
        for (uint32_t j = 0; j < npor; ++j) {
            SegmentPorFork f;
            f.startPc = r.u16();
            f.fired = r.symstate();
            s.porForks.push_back(std::move(f));
        }
        if (flags & kHasTaint)
            s.taintDelta = r.plane();
        records.push_back(std::move(rec));
    }
    return records;
}

} // namespace glifs::explore
