/**
 * @file
 * Wire formats of the parallel exploration subsystem (DESIGN.md §11).
 *
 * Work travels coordinator -> worker as an ordinary versioned
 * EngineCheckpoint whose frontier holds the shipped execution points
 * (table/tree empty, fingerprint binding the chunk to the program
 * image); results travel back as a CRC-guarded file of
 * (state digest, SegmentResult) records. Both directions reuse the
 * checkpoint's little-endian section encoding (ift/ckpt_io.hh), so a
 * torn or corrupted file on either side surfaces as one clean
 * RecoverableError and costs only that chunk -- the coordinator then
 * re-executes the work inline.
 *
 * Results are keyed by a SHA-256 digest of the *start* state, not by a
 * sequence number: segments are pure functions of their start state
 * (ift/path_sim.hh), so one speculative result answers every frontier
 * entry that ever reaches that exact symbolic state, including the
 * commit-to-commit continuation chain a worker runs ahead of the
 * coordinator.
 */

#ifndef GLIFS_EXPLORE_PROTOCOL_HH
#define GLIFS_EXPLORE_PROTOCOL_HH

#include <string>
#include <vector>

#include "ift/path_sim.hh"
#include "ift/symstate.hh"

namespace glifs::explore
{

/** SHA-256 of a captured state's three planes (32 raw bytes). */
std::string stateDigest(const SymState &s);

/** One worker-produced segment, keyed by its start-state digest. */
struct SegmentRecord
{
    std::string digest; ///< stateDigest() of the segment's start state
    SegmentResult seg;

    /** The worker hit its chain cycle cap before the segment ended;
     *  the partial result is unusable and only reported for
     *  accounting. */
    bool overrun = false;
};

/**
 * Write a work unit: the shipped execution points as the frontier of a
 * versioned EngineCheckpoint (node = position within the chunk).
 * RecoverableError on I/O failure.
 */
void saveWorkUnit(const std::string &path, uint64_t fingerprint,
                  const std::vector<SymState> &states);

/**
 * Load a work unit and validate its fingerprint against the worker's
 * own (image, layout) identity. RecoverableError on any defect.
 */
std::vector<SymState> loadWorkUnit(const std::string &path,
                                   uint64_t fingerprint);

/**
 * Write a result file ("GLFSSEGR" magic, version, body CRC-32, then
 * the records). Goes through faultfs so the crash-recovery sweeps can
 * kill a worker deterministically mid-write. RecoverableError on I/O
 * failure.
 */
void saveSegmentResults(const std::string &path, uint64_t fingerprint,
                        const std::vector<SegmentRecord> &records);

/** Load and validate a result file. RecoverableError on any defect. */
std::vector<SegmentRecord>
loadSegmentResults(const std::string &path, uint64_t fingerprint);

} // namespace glifs::explore

#endif // GLIFS_EXPLORE_PROTOCOL_HH
