#include "explore/coordinator.hh"

#include <fcntl.h>
#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/faultfs.hh"
#include "base/logging.hh"
#include "base/stats.hh"
#include "base/strutil.hh"
#include "base/telemetry.hh"
#include "base/trace.hh"
#include "explore/protocol.hh"
#include "explore/worker.hh"
#include "ift/checkpoint.hh"
#include "ift/engine_stats.hh"
#include "ift/path_sim.hh"

namespace glifs::explore
{

namespace
{

/** The explore.* stat catalogue (docs/OBSERVABILITY.md). */
struct ExploreStats
{
    stats::Scalar steals{"explore.steals",
                         "work-stealing queue rebalances"};
    stats::Gauge frontierSize{"explore.frontier_size",
                              "coordinator frontier size"};
    stats::Scalar summaryPrunes{
        "explore.summary_prunes",
        "worker segment results discarded (stale, duplicate or "
        "overrun)"};
    stats::Scalar workersRespawned{"explore.workers_respawned",
                                   "crashed workers respawned"};
    stats::Scalar cacheHits{"explore.cache_hits",
                            "pops served from worker segment results"};
    stats::Scalar cacheMisses{"explore.cache_misses",
                              "pops simulated inline"};
    stats::Scalar chunksShipped{"explore.chunks_shipped",
                                "work units shipped to workers"};
    stats::Scalar segmentsReceived{
        "explore.segments_received",
        "worker segment results received (before pruning)"};

    static ExploreStats &
    instance()
    {
        static ExploreStats s;
        return s;
    }
};

ExploreStats &
exStats()
{
    return ExploreStats::instance();
}

void
emitExplore(const char *phase, uint64_t worker, uint64_t cycles,
            std::string detail = {})
{
    telemetry::Writer &w = telemetry::Writer::instance();
    if (!w.enabled())
        return;
    telemetry::Event e;
    e.type = telemetry::EventType::Explore;
    e.phase = phase;
    e.worker = worker;
    e.cycles = cycles;
    e.detail = std::move(detail);
    w.emit(e);
}

/** Trace lane of an exploration worker (1 is the coordinator). */
uint32_t
workerTid(size_t idx)
{
    return static_cast<uint32_t>(2 + idx);
}

/** One execution point copied out to a worker queue. */
struct ShippedEntry
{
    std::string digest;
    SymState state;
};

/** One work unit in flight at a worker. */
struct Chunk
{
    std::vector<ShippedEntry> entries;
    std::string unitPath;
    uint64_t shipUs = 0; ///< trace clock at ship (lane span start)
};

/** One worker process slot (respawned in place on death). */
struct WorkerSlot
{
    pid_t pid = -1;
    int ctlFd = -1; ///< coordinator -> worker command lines
    int resFd = -1; ///< worker -> coordinator result lines
    bool alive = false;
    bool disabled = false; ///< respawn cap exhausted
    unsigned respawns = 0;
    std::string lineBuf;
    std::deque<ShippedEntry> queue;
    std::map<uint32_t, Chunk> outstanding;

    size_t
    load() const
    {
        size_t n = queue.size();
        for (const auto &[seq, c] : outstanding)
            n += c.entries.size();
        return n;
    }
};

/**
 * The state of one parallel run. Exploration state (ps, gov, table,
 * tree, log, stack, counters, ladder) mirrors the serial engine's
 * RunCtx field for field; everything below `workers` is the
 * speculation machinery, which only ever changes *when* a segment is
 * simulated, never what it computes.
 */
struct Coord
{
    const Soc &soc;
    const ExploreConfig &xcfg;
    PathSim ps;
    ViolationLog log;
    StateTable table;
    ExecTree tree;
    ResourceGovernor gov;

    struct Entry
    {
        SymState state;
        uint32_t node = 0;
        /** Continuation of a path the serial loop would run through
         *  inline (commit with visit != Subsumed and a concrete PC):
         *  popped without the per-path accounting. */
        bool cont = false;
        std::string dg; ///< lazily memoized stateDigest(state)
    };
    std::vector<Entry> stack;
    BitPlane everTainted;

    uint64_t totalCycles = 0;
    uint64_t pathsExplored = 0;
    bool budgetHit = false;
    size_t branchPoints = 0;

    DegradeLevel level = DegradeLevel::None;
    std::vector<Degradation> degradations;

    // --- speculation machinery ---------------------------------------
    std::vector<WorkerSlot> workers;
    std::vector<pid_t> pendingReap;
    std::unordered_map<std::string, SegmentResult> cache;
    std::unordered_set<std::string> queuedDigests;
    std::unordered_set<std::string> inFlight;
    std::string workDir;
    uint64_t fingerprint = 0;
    uint32_t nextSeq = 1;
    double meanInlineUs = 2000.0; ///< rolling mean of inline segments
    bool shippingOk = true;       ///< false after a work-unit I/O error

    Coord(const Soc &s, const Policy &p, const EngineConfig &c,
          const ExploreConfig &x, const ProgramImage &img)
        : soc(s), xcfg(x), ps(s, p, c, img), gov(c.budgets),
          everTainted(s.netlist().numNets())
    {
    }

    ~Coord() { shutdownWorkers(); }

    void
    recordDegradation(DegradeLevel lvl, ResourceKind trigger,
                      BudgetSeverity severity, uint16_t instr_addr,
                      std::string detail)
    {
        Degradation d;
        d.level = lvl;
        d.trigger = trigger;
        d.severity = severity;
        d.cycle = totalCycles;
        d.instrAddr = instr_addr;
        d.detail = std::move(detail);
        ++engineStats().escalations;
        GLIFS_TRACE_INSTANT_ARGS(
            "engine", "degrade",
            add("level", degradeLevelName(lvl))
                .add("trigger", resourceKindName(trigger))
                .add("severity",
                     severity == BudgetSeverity::Hard ? "hard"
                                                      : "soft")
                .add("cycle", totalCycles)
                .add("instr", hex16(instr_addr)));
        degradations.push_back(std::move(d));
    }

    enum class Escalation
    {
        Widened,
        KillPath,
    };

    Escalation
    escalate(const BudgetEvent &ev, uint16_t instr_addr)
    {
        if (level == DegradeLevel::None) {
            level = DegradeLevel::WidenedMerging;
            ps.cfg.preciseJumpTargets = false;
            recordDegradation(DegradeLevel::WidenedMerging, ev.kind,
                              ev.severity, instr_addr, ev.detail);
            return Escalation::Widened;
        }
        level = DegradeLevel::StarLogicPath;
        recordDegradation(DegradeLevel::StarLogicPath, ev.kind,
                          ev.severity, instr_addr, ev.detail);
        return Escalation::KillPath;
    }

    const std::string &
    digestOf(Entry &e)
    {
        if (e.dg.empty())
            e.dg = stateDigest(e.state);
        return e.dg;
    }

    // --- worker lifecycle --------------------------------------------

    void
    spawnWorker(size_t idx)
    {
        WorkerSlot &w = workers[idx];
        int ctl[2];
        int res[2];
        if (faultfs::pipe2(ctl, O_CLOEXEC) != 0)
            GLIFS_RECOVERABLE("explore: cannot create control pipe");
        if (faultfs::pipe2(res, O_CLOEXEC) != 0) {
            ::close(ctl[0]);
            ::close(ctl[1]);
            GLIFS_RECOVERABLE("explore: cannot create result pipe");
        }

        // argv: <audit> --explore-worker <firmware + config tail>.
        std::vector<std::string> args;
        args.push_back(xcfg.auditBinary);
        args.push_back("--explore-worker");
        args.insert(args.end(), xcfg.workerArgs.begin(),
                    xcfg.workerArgs.end());
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);

        // Transient fork pressure (EAGAIN/ENOMEM on a loaded box)
        // deserves a bounded backoff ladder, same as the batch
        // scheduler; anything else is a real failure.
        pid_t pid = -1;
        for (unsigned attempt = 1; attempt <= 6; ++attempt) {
            pid = faultfs::fork();
            if (pid >= 0)
                break;
            if (errno != EAGAIN && errno != ENOMEM &&
                errno != EINTR) {
                break;
            }
            unsigned ms = std::min(10u << (attempt - 1), 160u);
            ::usleep(ms * 1000);
        }
        if (pid < 0) {
            ::close(ctl[0]);
            ::close(ctl[1]);
            ::close(res[0]);
            ::close(res[1]);
            GLIFS_RECOVERABLE("explore: fork failed: ",
                              std::strerror(errno));
        }

        if (pid == 0) {
            // Child: control lines on stdin, results on kResultFd,
            // stdout silenced (the worker owns no human output).
            ::dup2(ctl[0], 0); // dup2 clears O_CLOEXEC on the copy
            if (res[1] == kResultFd)
                ::fcntl(res[1], F_SETFD, 0);
            else
                ::dup2(res[1], kResultFd);
            int devnull = ::open("/dev/null", O_WRONLY);
            if (devnull >= 0)
                ::dup2(devnull, 1);
            // Worker-only fault injection: the crash-recovery tests
            // plant plans in the children without arming the
            // coordinator's own file I/O.
            const char *plan = ::getenv("GLIFS_EXPLORE_FAULT_PLAN");
            if (plan && *plan)
                ::setenv("GLIFS_FAULT_PLAN", plan, 1);
            ::execv(argv[0], argv.data());
            _exit(127);
        }

        ::close(ctl[0]);
        ::close(res[1]);
        w.pid = pid;
        w.ctlFd = ctl[1];
        w.resFd = res[0];
        w.alive = true;
        w.lineBuf.clear();
        trace::Tracer &tr = trace::Tracer::instance();
        if (tr.enabled()) {
            tr.threadName(workerTid(idx),
                          detail::concat("explore worker ", idx));
        }
    }

    void
    markDead(size_t idx)
    {
        WorkerSlot &w = workers[idx];
        if (!w.alive)
            return;
        w.alive = false;
        if (w.ctlFd >= 0)
            ::close(w.ctlFd);
        if (w.resFd >= 0)
            ::close(w.resFd);
        w.ctlFd = -1;
        w.resFd = -1;
        if (w.pid > 0)
            pendingReap.push_back(w.pid);
        w.pid = -1;
        // Whatever it was chewing on goes back to the front of its
        // queue; the coordinator can always run it inline instead.
        for (auto &[seq, chunk] : w.outstanding) {
            faultfs::unlink(chunk.unitPath.c_str());
            faultfs::unlink((chunk.unitPath + ".res").c_str());
            for (auto it = chunk.entries.rbegin();
                 it != chunk.entries.rend(); ++it) {
                inFlight.erase(it->digest);
                queuedDigests.insert(it->digest);
                w.queue.push_front(std::move(*it));
            }
        }
        w.outstanding.clear();
    }

    void
    reapZombies(bool block)
    {
        for (size_t i = 0; i < pendingReap.size();) {
            int st = 0;
            pid_t r = faultfs::waitpid(pendingReap[i], &st,
                                       block ? 0 : WNOHANG);
            if (r == pendingReap[i] ||
                (r < 0 && errno == ECHILD)) {
                pendingReap.erase(pendingReap.begin() + i);
            } else {
                ++i;
            }
        }
    }

    void
    respawnDead()
    {
        reapZombies(false);
        for (size_t i = 0; i < workers.size(); ++i) {
            WorkerSlot &w = workers[i];
            if (w.alive || w.disabled)
                continue;
            if (w.respawns >= xcfg.respawnCap) {
                // Slot given up: spill its queue to the survivors (or
                // to nobody -- the coordinator runs everything inline
                // then).
                w.disabled = true;
                WorkerSlot *tgt = nullptr;
                for (WorkerSlot &o : workers) {
                    if (o.alive &&
                        (!tgt || o.load() < tgt->load())) {
                        tgt = &o;
                    }
                }
                while (!w.queue.empty()) {
                    if (tgt) {
                        tgt->queue.push_back(
                            std::move(w.queue.front()));
                    } else {
                        queuedDigests.erase(w.queue.front().digest);
                    }
                    w.queue.pop_front();
                }
                continue;
            }
            ++w.respawns;
            try {
                spawnWorker(i);
            } catch (const RecoverableError &e) {
                GLIFS_WARN("explore: respawn of worker ", i,
                          " failed: ", e.what());
                continue;
            }
            ++exStats().workersRespawned;
            emitExplore("respawn", i, 0);
            trace::Tracer &tr = trace::Tracer::instance();
            if (tr.enabled()) {
                tr.instant("explore", "respawn",
                           trace::Args()
                               .add("worker",
                                    static_cast<uint64_t>(i))
                               .str(),
                           workerTid(i));
            }
        }
    }

    void
    shutdownWorkers()
    {
        for (size_t i = 0; i < workers.size(); ++i) {
            WorkerSlot &w = workers[i];
            if (!w.alive)
                continue;
            // Polite quit first; SIGTERM cuts a worker that is deep
            // in a speculative chain we no longer want.
            const char q[] = "q\n";
            ssize_t rc [[maybe_unused]] = ::write(w.ctlFd, q, 2);
            ::kill(w.pid, SIGTERM);
            markDead(i);
        }
        for (pid_t pid : pendingReap)
            ::kill(pid, SIGTERM);
        reapZombies(true);
        if (!workDir.empty()) {
            // Sweep whatever units/results the shutdown stranded.
            if (DIR *d = ::opendir(workDir.c_str())) {
                while (struct dirent *de = ::readdir(d)) {
                    if (de->d_name[0] == '.')
                        continue;
                    ::unlink(
                        (workDir + "/" + de->d_name).c_str());
                }
                ::closedir(d);
            }
            ::rmdir(workDir.c_str());
            workDir.clear();
        }
    }

    // --- result ingestion --------------------------------------------

    void
    handleResultLine(size_t idx, const std::string &line)
    {
        WorkerSlot &w = workers[idx];
        if (line.empty())
            return;
        std::istringstream iss(line);
        std::string verb;
        uint32_t seq = 0;
        iss >> verb >> seq;
        auto it = w.outstanding.find(seq);
        if (it == w.outstanding.end())
            return; // stale seq (left over from a pre-death chunk)
        Chunk chunk = std::move(it->second);
        w.outstanding.erase(it);
        for (const ShippedEntry &se : chunk.entries)
            inFlight.erase(se.digest);

        if (verb == "e") {
            // Unit lost worker-side; the entries simply fall back to
            // inline execution.
            exStats().summaryPrunes +=
                static_cast<uint64_t>(chunk.entries.size());
            faultfs::unlink(chunk.unitPath.c_str());
            return;
        }
        if (verb != "r")
            return;
        uint64_t usec = 0;
        std::string resPath;
        iss >> usec >> resPath;

        std::vector<SegmentRecord> records;
        try {
            records = loadSegmentResults(resPath, fingerprint);
        } catch (const RecoverableError &e) {
            GLIFS_WARN("explore: dropping results from worker ", idx,
                      ": ", e.what());
            faultfs::unlink(resPath.c_str());
            return;
        }
        faultfs::unlink(resPath.c_str());

        uint64_t segCycles = 0;
        uint64_t pruned = 0;
        for (SegmentRecord &rec : records) {
            ++exStats().segmentsReceived;
            segCycles += rec.seg.cycles;
            if (rec.overrun || cache.count(rec.digest)) {
                ++exStats().summaryPrunes;
                ++pruned;
                continue;
            }
            cache.emplace(std::move(rec.digest),
                          std::move(rec.seg));
        }
        emitExplore("result", idx, segCycles,
                    detail::concat(records.size(), " segments, ",
                                   pruned, " pruned"));
        if (pruned > 0)
            emitExplore("prune", idx, 0,
                        detail::concat(pruned, " records"));
        trace::Tracer &tr = trace::Tracer::instance();
        if (tr.enabled()) {
            // The worker's wall time, on its own lane.
            uint64_t nowUs = tr.nowUs();
            uint64_t start =
                nowUs >= usec ? nowUs - usec : chunk.shipUs;
            tr.complete("explore", "segments", start, usec,
                        trace::Args()
                            .add("records",
                                 static_cast<uint64_t>(
                                     records.size()))
                            .add("pruned", pruned)
                            .add("cycles", segCycles)
                            .str(),
                        workerTid(idx));
        }
    }

    /** Pump worker result pipes; waits at most @p timeoutMs. */
    void
    drainResults(int timeoutMs)
    {
        std::vector<struct pollfd> fds;
        std::vector<size_t> idxOf;
        for (size_t i = 0; i < workers.size(); ++i) {
            if (!workers[i].alive)
                continue;
            fds.push_back({workers[i].resFd, POLLIN, 0});
            idxOf.push_back(i);
        }
        if (fds.empty())
            return;
        int n = faultfs::poll(fds.data(), fds.size(), timeoutMs);
        if (n <= 0)
            return;
        char buf[4096];
        for (size_t k = 0; k < fds.size(); ++k) {
            if (fds[k].revents == 0)
                continue;
            size_t idx = idxOf[k];
            WorkerSlot &w = workers[idx];
            bool dead = false;
            if (fds[k].revents & POLLIN) {
                ssize_t r = faultfs::read(w.resFd, buf, sizeof(buf));
                if (r > 0) {
                    w.lineBuf.append(buf,
                                     static_cast<size_t>(r));
                } else if (r == 0 ||
                           (r < 0 && errno != EINTR &&
                            errno != EAGAIN)) {
                    dead = true;
                }
            } else if (fds[k].revents & (POLLHUP | POLLERR)) {
                dead = true;
            }
            size_t nl;
            while ((nl = w.lineBuf.find('\n')) !=
                   std::string::npos) {
                std::string line = w.lineBuf.substr(0, nl);
                w.lineBuf.erase(0, nl + 1);
                handleResultLine(idx, line);
            }
            if (dead)
                markDead(idx);
        }
    }

    // --- shipping and stealing ---------------------------------------

    bool
    anyAlive() const
    {
        for (const WorkerSlot &w : workers) {
            if (w.alive)
                return true;
        }
        return false;
    }

    WorkerSlot *
    lightestAlive()
    {
        WorkerSlot *best = nullptr;
        for (WorkerSlot &w : workers) {
            if (w.alive && (!best || w.load() < best->load()))
                best = &w;
        }
        return best;
    }

    /** Remove a queued (not yet shipped) entry by digest. */
    void
    dropQueued(const std::string &dg)
    {
        queuedDigests.erase(dg);
        for (WorkerSlot &w : workers) {
            for (auto it = w.queue.begin(); it != w.queue.end();
                 ++it) {
                if (it->digest == dg) {
                    w.queue.erase(it);
                    return;
                }
            }
        }
    }

    void
    shipChunks(size_t idx)
    {
        WorkerSlot &w = workers[idx];
        trace::Tracer &tr = trace::Tracer::instance();
        while (w.alive && shippingOk &&
               w.outstanding.size() < xcfg.maxOutstanding &&
               !w.queue.empty()) {
            Chunk chunk;
            std::vector<SymState> states;
            while (chunk.entries.size() < xcfg.chunkEntries &&
                   !w.queue.empty()) {
                ShippedEntry se = std::move(w.queue.front());
                w.queue.pop_front();
                if (cache.count(se.digest)) {
                    // Answered meanwhile by a speculative chain.
                    queuedDigests.erase(se.digest);
                    continue;
                }
                states.push_back(se.state);
                chunk.entries.push_back(std::move(se));
            }
            if (chunk.entries.empty())
                return;
            uint32_t seq = nextSeq++;
            chunk.unitPath =
                detail::concat(workDir, "/u", seq);
            try {
                saveWorkUnit(chunk.unitPath, fingerprint, states);
            } catch (const RecoverableError &e) {
                // Scratch space is gone; stop speculating, the
                // serial inline path needs no files.
                GLIFS_WARN("explore: shipping disabled: ", e.what());
                shippingOk = false;
                for (auto it = chunk.entries.rbegin();
                     it != chunk.entries.rend(); ++it)
                    w.queue.push_front(std::move(*it));
                return;
            }
            std::string cmd = detail::concat("w ", seq, " ",
                                             chunk.unitPath, "\n");
            if (::write(w.ctlFd, cmd.data(), cmd.size()) !=
                static_cast<ssize_t>(cmd.size())) {
                faultfs::unlink(chunk.unitPath.c_str());
                for (auto it = chunk.entries.rbegin();
                     it != chunk.entries.rend(); ++it)
                    w.queue.push_front(std::move(*it));
                markDead(idx);
                return;
            }
            for (const ShippedEntry &se : chunk.entries) {
                queuedDigests.erase(se.digest);
                inFlight.insert(se.digest);
            }
            chunk.shipUs = tr.enabled() ? tr.nowUs() : 0;
            ++exStats().chunksShipped;
            emitExplore("ship", idx,
                        static_cast<uint64_t>(
                            chunk.entries.size()));
            if (tr.enabled()) {
                tr.instant("explore", "ship",
                           trace::Args()
                               .add("seq", seq)
                               .add("entries",
                                    static_cast<uint64_t>(
                                        chunk.entries.size()))
                               .str(),
                           workerTid(idx));
            }
            w.outstanding.emplace(seq, std::move(chunk));
        }
    }

    void
    scheduleShipping()
    {
        if (!shippingOk || !anyAlive() || stack.size() < 2)
            return;
        const size_t perWorker =
            xcfg.chunkEntries * (xcfg.maxOutstanding + 1);

        // How many fresh entries the fleet could absorb.
        size_t deficit = 0;
        for (const WorkerSlot &w : workers) {
            if (!w.alive)
                continue;
            size_t l = w.load();
            if (l < perWorker)
                deficit += perWorker - l;
        }

        // Walk down from just below the top of the stack (the top is
        // the coordinator's own next pop): LIFO order means these are
        // the soonest-needed entries. The scan is bounded so a huge
        // frontier does not turn every iteration into a full sweep.
        size_t scanned = 0;
        const size_t scanCap = std::max<size_t>(4 * deficit, 64);
        for (size_t i = stack.size() - 1;
             i-- > 0 && deficit > 0 && scanned < scanCap;) {
            ++scanned;
            Entry &e = stack[i];
            if (e.cont)
                continue;
            const std::string &dg = digestOf(e);
            if (cache.count(dg) || inFlight.count(dg) ||
                queuedDigests.count(dg)) {
                continue;
            }
            WorkerSlot *tgt = lightestAlive();
            if (!tgt || tgt->load() >= perWorker)
                break;
            tgt->queue.push_back(ShippedEntry{dg, e.state});
            queuedDigests.insert(dg);
            --deficit;
        }

        // Work stealing: an idle worker raids the most loaded queue.
        for (size_t i = 0; i < workers.size(); ++i) {
            WorkerSlot &w = workers[i];
            if (!w.alive || w.load() != 0)
                continue;
            WorkerSlot *fat = nullptr;
            for (WorkerSlot &o : workers) {
                if (&o != &w && o.alive &&
                    o.queue.size() > 1 &&
                    (!fat || o.queue.size() > fat->queue.size()))
                    fat = &o;
            }
            if (!fat)
                continue;
            size_t take = fat->queue.size() / 2;
            for (size_t k = 0; k < take; ++k) {
                w.queue.push_back(std::move(fat->queue.back()));
                fat->queue.pop_back();
            }
            ++exStats().steals;
            emitExplore("steal", i,
                        static_cast<uint64_t>(take),
                        detail::concat("from worker ",
                                       static_cast<size_t>(
                                           fat - workers.data())));
            trace::Tracer &tr = trace::Tracer::instance();
            if (tr.enabled()) {
                tr.instant("explore", "steal",
                           trace::Args()
                               .add("entries",
                                    static_cast<uint64_t>(take))
                               .add("from",
                                    static_cast<uint64_t>(
                                        fat - workers.data()))
                               .str(),
                           workerTid(i));
            }
        }

        for (size_t i = 0; i < workers.size(); ++i)
            shipChunks(i);
    }

    /**
     * The next pop is being computed by a live worker right now: give
     * it a moment to land before re-simulating inline. Purely a
     * performance heuristic -- either way the same segment result is
     * applied.
     */
    bool
    waitForTop(const std::string &dg)
    {
        const double budgetUs =
            std::clamp(4.0 * meanInlineUs, 10'000.0, 500'000.0);
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(
                static_cast<int64_t>(budgetUs));
        while (inFlight.count(dg) && !cache.count(dg)) {
            auto now = std::chrono::steady_clock::now();
            if (now >= deadline)
                break;
            auto leftMs =
                std::chrono::duration_cast<
                    std::chrono::milliseconds>(deadline - now)
                    .count();
            drainResults(static_cast<int>(
                std::clamp<long long>(leftMs, 1, 5)));
            respawnDead(); // a dead owner un-inflights the digest
        }
        return cache.count(dg) > 0;
    }

    // --- the authoritative serial apply ------------------------------

    /**
     * Whether a cached segment of @p segCycles cycles can be applied
     * without changing what the serial engine would have done: the
     * serial loop polls the cycle budgets at the top of *every* cycle,
     * so a segment that crosses a threshold mid-flight must be re-run
     * inline under the real governor (which stops or degrades at the
     * exact cycle). Wall-clock/RSS dimensions fire at segment
     * boundaries instead of mid-segment -- those are timing-dependent
     * in the serial engine already (DESIGN.md §11).
     */
    bool
    cacheUsable(const SegmentResult &seg) const
    {
        for (uint64_t t : {ps.cfg.budgets.softCycles,
                           ps.cfg.budgets.hardCycles}) {
            if (t && totalCycles < t &&
                totalCycles + seg.cycles >= t) {
                return false;
            }
        }
        return true;
    }

    /**
     * Fold one finished segment into the authoritative run state, in
     * exactly the order the serial loop would have: taint, violations
     * (rebased onto the global clock), POR forks, then the
     * end-of-segment commit handling (HALT / state-table visit /
     * branch enumeration / inline continuation).
     *
     * @p liveSim is true when the segment was just simulated inline,
     * so the simulator already holds the segment's end state; cached
     * applies restore it on the rare paths that read the simulator
     * (memory-invariant scan at subsumption).
     */
    void
    apply(const Entry &e, const SegmentResult &seg, uint64_t c0,
          bool liveSim)
    {
        EngineStats &es = engineStats();
        trace::Tracer &tr = trace::Tracer::instance();

        if (ps.cfg.trackTaintedNets && seg.taintDelta.size() > 0)
            everTainted.orWith(seg.taintDelta);
        for (const Violation &v : seg.violations) {
            Violation gv = v;
            gv.firstCycle += c0;
            log.merge(gv);
        }
        for (const SegmentPorFork &f : seg.porForks) {
            ++branchPoints;
            ++es.branchPoints;
            ++es.porForks;
            uint32_t cn = tree.addNode(e.node, f.startPc);
            stack.push_back(Entry{f.fired, cn, false, {}});
        }

        if (seg.halted) {
            // The worker (or inline segment) already ran the halt
            // memory-invariant scan into seg.violations.
            tree.node(e.node).end = PathEnd::Halted;
            tree.node(e.node).endInstr = seg.endInstr;
            return;
        }

        const uint16_t instr_addr = seg.endInstr;
        const uint16_t fsm = seg.endFsm;
        // visit() mutates the probe state in place on a merge; cached
        // results must stay pristine for later identical pops.
        SymState cur = seg.end;
        const uint32_t table_key =
            (static_cast<uint32_t>(instr_addr) << 4) | fsm;
        StateTable::Visit visit =
            ps.cfg.disableMerging ? StateTable::Visit::New
                                  : table.visit(table_key, cur);
        gov.noteStates(table.size());
        if (tr.enabled()) {
            static const char *const visitNames[] = {
                "new", "subsumed", "merged"};
            tr.instant("engine", "visit",
                       trace::Args()
                           .add("instr", hex16(instr_addr))
                           .add("fsm",
                                static_cast<uint64_t>(fsm))
                           .add("result",
                                visitNames[static_cast<int>(
                                    visit)])
                           .add("cycle", totalCycles)
                           .str());
        }
        if (visit == StateTable::Visit::Subsumed) {
            tree.node(e.node).end = PathEnd::Subsumed;
            tree.node(e.node).endInstr = instr_addr;
            if (!liveSim) {
                // The scan below reads the data-memory cells out of
                // the simulator; put the segment's end state there.
                seg.end.restore(ps.layout, ps.sim.state());
                ps.sim.markAllDirty();
            }
            ps.checker.checkMemoryInvariant(ps.sim, instr_addr,
                                            totalCycles, log);
            return;
        }

        const size_t pc_xbits = ps.statePcXBits(cur).size();
        if (pc_xbits > 0) {
            if (ps.cfg.budgets.softBranchBits &&
                pc_xbits > ps.cfg.budgets.softBranchBits &&
                level == DegradeLevel::None) {
                BudgetEvent ev{ResourceKind::BranchFanout,
                               BudgetSeverity::Soft,
                               detail::concat(
                                   pc_xbits,
                                   " unknown PC bits at ",
                                   hex16(instr_addr))};
                escalate(ev, instr_addr);
            }

            bool overflow = false;
            std::vector<uint16_t> pcs =
                ps.candidatePcs(instr_addr, cur, overflow);
            if (overflow) {
                recordDegradation(
                    DegradeLevel::StarLogicPath,
                    ResourceKind::BranchFanout,
                    BudgetSeverity::Hard, instr_addr,
                    detail::concat(
                        pc_xbits, " unknown PC bits exceed ",
                        ps.cfg.maxBranchBits,
                        " (consider masking the target)"));
                // starSaturate overwrites every flop, memory cell and
                // input before settling, so it needs no particular
                // simulator state to start from.
                ps.starSaturate(&everTainted);
                tree.node(e.node).end = PathEnd::Degraded;
                tree.node(e.node).endInstr = instr_addr;
                return;
            }
            ++branchPoints;
            ++es.branchPoints;
            ++es.pcFanouts;
            es.fanoutWidth.sample(
                static_cast<double>(pcs.size()));
            GLIFS_TRACE_INSTANT_ARGS(
                "engine", "branch",
                add("instr", hex16(instr_addr))
                    .add("successors",
                         static_cast<uint64_t>(pcs.size()))
                    .add("cycle", totalCycles));
            for (uint16_t pc : pcs) {
                uint32_t cn = tree.addNode(e.node, pc);
                stack.push_back(Entry{
                    ps.concretizePc(cur, pc), cn, false, {}});
            }
            es.frontierPeak.set(
                static_cast<double>(stack.size()));
            gov.noteFrontier(stack.size());
            tree.node(e.node).end = PathEnd::Branched;
            tree.node(e.node).endInstr = instr_addr;
            return;
        }

        // Commit with a concrete PC and visit != Subsumed: the serial
        // loop keeps simulating this path inline. Model that as a
        // continuation entry -- popped right back off the stack
        // without the per-path accounting.
        stack.push_back(Entry{std::move(cur), e.node, true, {}});
    }

    // --- the main loop -----------------------------------------------

    void
    exploreLoop()
    {
        EngineStats &es = engineStats();
        trace::Tracer &tr = trace::Tracer::instance();
        const SocProbes &prb = soc.probes();

        while (!stack.empty() && !budgetHit) {
            exStats().frontierSize.set(
                static_cast<double>(stack.size()));
            drainResults(0);
            respawnDead();
            scheduleShipping();

            Entry e = std::move(stack.back());
            stack.pop_back();
            if (!e.cont) {
                ++pathsExplored;
                ++es.paths;
                es.frontierDepth.sample(
                    static_cast<double>(stack.size()));
                es.frontierPeak.set(
                    static_cast<double>(stack.size() + 1));
                gov.noteFrontier(stack.size() + 1);
                if (tr.enabled()) {
                    tr.instant(
                        "engine", "pop",
                        trace::Args()
                            .add("node",
                                 static_cast<uint64_t>(e.node))
                            .add("pc",
                                 hex16(ps.statePcBase(e.state)))
                            .add("stack",
                                 static_cast<uint64_t>(
                                     stack.size()))
                            .str());
                }
            }
            GLIFS_ASSERT(ps.statePcXBits(e.state).empty(),
                         "execution point with unknown PC");

            // Put the simulator exactly where the serial loop's would
            // be at its top-of-path governor poll.
            e.state.restore(ps.layout, ps.sim.state());
            ps.sim.markAllDirty();

            const std::string &dg = digestOf(e);
            auto hit = cache.find(dg);
            if (hit == cache.end() && inFlight.count(dg) &&
                waitForTop(dg)) {
                hit = cache.find(dg);
            }
            if (hit == cache.end() && queuedDigests.count(dg)) {
                // About to run it ourselves; no point having a worker
                // duplicate the effort.
                dropQueued(dg);
            }

            const uint64_t c0 = totalCycles;
            if (hit != cache.end() && cacheUsable(hit->second)) {
                ++exStats().cacheHits;
                const SegmentResult &seg = hit->second;
                // The serial loop's first governor poll of the path.
                if (auto ev = gov.poll()) {
                    const uint16_t at =
                        ps.tryBusValue(prb.instrAddrQ);
                    if (ev->severity == BudgetSeverity::Hard) {
                        recordDegradation(
                            DegradeLevel::PartialStop, ev->kind,
                            ev->severity, at, ev->detail);
                        budgetHit = true;
                        tree.node(e.node).end = PathEnd::Budget;
                        tree.node(e.node).endInstr = at;
                        if (ps.cfg.checkpointOnStop) {
                            stack.push_back(Entry{
                                std::move(e.state), e.node,
                                false, std::move(e.dg)});
                            --pathsExplored;
                        }
                        continue;
                    }
                    if (escalate(*ev, at) ==
                        Escalation::KillPath) {
                        ps.starSaturate(&everTainted);
                        tree.node(e.node).end =
                            PathEnd::Degraded;
                        tree.node(e.node).endInstr = at;
                        continue;
                    }
                }
                totalCycles += seg.cycles;
                es.cycles += seg.cycles;
                gov.chargeCycles(seg.cycles);
                tree.node(e.node).cycles += seg.cycles;
                apply(e, seg, c0, /*liveSim=*/false);
                continue;
            }

            // Inline execution under the real governor -- this is the
            // serial engine's own path loop, cycle for cycle.
            ++exStats().cacheMisses;
            SegmentHooks hooks;
            hooks.cycleCharged = [&] {
                ++totalCycles;
                ++es.cycles;
                gov.chargeCycles(1);
                ++tree.node(e.node).cycles;
            };
            hooks.poll = [&]() -> CycleAction {
                auto ev = gov.poll();
                if (!ev)
                    return CycleAction::Continue;
                const uint16_t at =
                    ps.tryBusValue(prb.instrAddrQ);
                if (ev->severity == BudgetSeverity::Hard) {
                    recordDegradation(DegradeLevel::PartialStop,
                                      ev->kind, ev->severity, at,
                                      ev->detail);
                    budgetHit = true;
                    tree.node(e.node).end = PathEnd::Budget;
                    tree.node(e.node).endInstr = at;
                    return CycleAction::Stop;
                }
                if (escalate(*ev, at) == Escalation::KillPath) {
                    tree.node(e.node).end = PathEnd::Degraded;
                    tree.node(e.node).endInstr = at;
                    return CycleAction::Kill;
                }
                return CycleAction::Continue;
            };

            const auto tSeg = std::chrono::steady_clock::now();
            SegmentResult seg = ps.runSegment(e.state, hooks);
            const double segUs =
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - tSeg)
                    .count();
            meanInlineUs = 0.9 * meanInlineUs + 0.1 * segUs;

            if (seg.killed) {
                // Taint/violations/forks observed before the kill
                // still count, exactly as in the serial loop.
                if (ps.cfg.trackTaintedNets &&
                    seg.taintDelta.size() > 0)
                    everTainted.orWith(seg.taintDelta);
                for (const Violation &v : seg.violations) {
                    Violation gv = v;
                    gv.firstCycle += c0;
                    log.merge(gv);
                }
                for (const SegmentPorFork &f : seg.porForks) {
                    ++branchPoints;
                    ++es.branchPoints;
                    ++es.porForks;
                    uint32_t cn = tree.addNode(e.node, f.startPc);
                    stack.push_back(Entry{f.fired, cn, false, {}});
                }
                ps.starSaturate(&everTainted);
                continue;
            }
            if (seg.stopped) {
                if (ps.cfg.trackTaintedNets &&
                    seg.taintDelta.size() > 0)
                    everTainted.orWith(seg.taintDelta);
                for (const Violation &v : seg.violations) {
                    Violation gv = v;
                    gv.firstCycle += c0;
                    log.merge(gv);
                }
                for (const SegmentPorFork &f : seg.porForks) {
                    ++branchPoints;
                    ++es.branchPoints;
                    ++es.porForks;
                    uint32_t cn = tree.addNode(e.node, f.startPc);
                    stack.push_back(Entry{f.fired, cn, false, {}});
                }
                if (ps.cfg.checkpointOnStop) {
                    // Park the in-flight state for the snapshot; the
                    // resumed run pops (and counts) it again.
                    stack.push_back(Entry{std::move(seg.end),
                                          e.node, false, {}});
                    --pathsExplored;
                }
                continue;
            }
            apply(e, seg, c0, /*liveSim=*/true);
        }
    }
};

} // namespace

ParallelEngine::ParallelEngine(const Soc &s, const Policy &p,
                               const EngineConfig &c, ExploreConfig x)
    : soc(s), policy(p), cfg(c), xcfg(std::move(x))
{
    GLIFS_ASSERT(xcfg.jobs >= 2,
                 "ParallelEngine needs at least 2 jobs (use "
                 "IftEngine for serial runs)");
}

EngineResult
ParallelEngine::run(const ProgramImage &image)
{
    return run(image, nullptr);
}

EngineResult
ParallelEngine::run(const ProgramImage &image,
                    const EngineCheckpoint *resume)
{
    GLIFS_TRACE_SCOPE("engine", "run");
    EngineStats &es = engineStats();
    ++es.runs;
    trace::Tracer &tr = trace::Tracer::instance();
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t traceT0 = tr.enabled() ? tr.nowUs() : 0;
    auto secondsSince = [](std::chrono::steady_clock::time_point t) {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t)
            .count();
    };

    // Same legacy-budget folding as the serial engine.
    EngineConfig effective = cfg;
    if (effective.maxCycles > 0 &&
        (effective.budgets.hardCycles == 0 ||
         effective.maxCycles < effective.budgets.hardCycles)) {
        effective.budgets.hardCycles = effective.maxCycles;
    }

    Coord ctx(soc, policy, effective, xcfg, image);
    EngineResult res;

    if (effective.progressSeconds > 0 && effective.progressFn) {
        ctx.gov.setHeartbeat(effective.progressSeconds,
                             effective.progressFn);
    }

    ctx.ps.loadProgram();
    ctx.fingerprint = checkpointFingerprint(
        image, ctx.ps.layout.slots(), soc.netlist().numNets());

    if (resume) {
        if (resume->fingerprint != ctx.fingerprint) {
            GLIFS_RECOVERABLE(
                "checkpoint does not match this program image and "
                "netlist (was the firmware or SoC changed?)");
        }
        if (resume->everTainted.size() != soc.netlist().numNets())
            GLIFS_RECOVERABLE("checkpoint: tainted-net plane mismatch");

        ctx.totalCycles = resume->totalCycles;
        ctx.gov.chargeCycles(resume->totalCycles);
        ctx.pathsExplored = resume->pathsExplored;
        ctx.branchPoints = resume->branchPoints;
        ctx.level = resume->level;
        if (ctx.level >= DegradeLevel::WidenedMerging)
            ctx.ps.cfg.preciseJumpTargets = false;
        ctx.degradations = resume->degradations;
        for (const Violation &v : resume->violations)
            ctx.log.restore(v);
        ctx.everTainted = resume->everTainted;
        for (const auto &[key, state] : resume->table)
            ctx.table.insertRestored(key, state);
        ctx.table.setCounters(resume->merges, resume->subsumptions);
        ctx.gov.noteStates(ctx.table.size());
        ctx.tree.setNodes(resume->tree);
        for (const auto &[state, node] : resume->frontier) {
            ctx.stack.push_back(
                Coord::Entry{state, node, false, {}});
        }
    } else {
        // Algorithm 1 line 5: propagate the (untainted) reset.
        ctx.ps.setInputs(true);
        ctx.ps.sim.step();
        ++ctx.totalCycles;
        ++es.cycles;
        ctx.gov.chargeCycles(1);

        SymState s0(ctx.ps.layout);
        s0.capture(ctx.ps.layout, ctx.ps.sim.state());
        uint32_t root = ctx.tree.addNode(-1, 0);
        ctx.stack.push_back(
            Coord::Entry{std::move(s0), root, false, {}});
    }

    // Spin up the worker fleet. Losing the scratch dir or every
    // worker is not fatal: the coordinator's inline path is always
    // sufficient. A worker dying with work queued must surface as
    // EPIPE on the next ctl write (-> markDead + reshard), never as
    // a coordinator-killing SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);
    char dirTemplate[] = "/tmp/glifs-explore-XXXXXX";
    if (::mkdtemp(dirTemplate)) {
        ctx.workDir = dirTemplate;
    } else {
        GLIFS_WARN("explore: cannot create scratch dir; running "
                  "without speculation");
        ctx.shippingOk = false;
    }
    if (tr.enabled())
        tr.threadName(1, "coordinator");
    ctx.workers.resize(xcfg.jobs - 1);
    if (ctx.shippingOk) {
        for (size_t i = 0; i < ctx.workers.size(); ++i) {
            try {
                ctx.spawnWorker(i);
            } catch (const RecoverableError &e) {
                GLIFS_WARN("explore: worker ", i,
                          " failed to start: ", e.what());
            }
        }
    }

    es.setupSeconds.add(secondsSince(t0));
    if (tr.enabled())
        tr.complete("engine", "setup", traceT0, tr.nowUs() - traceT0);
    const auto tExplore = std::chrono::steady_clock::now();
    const uint64_t traceTExplore = tr.enabled() ? tr.nowUs() : 0;

    ctx.exploreLoop();
    ctx.shutdownWorkers();

    es.exploreSeconds.add(secondsSince(tExplore));
    if (tr.enabled()) {
        tr.complete("engine", "explore", traceTExplore,
                    tr.nowUs() - traceTExplore);
    }
    const auto tFinalize = std::chrono::steady_clock::now();
    const uint64_t traceTFinalize = tr.enabled() ? tr.nowUs() : 0;

    res.completed = ctx.stack.empty() && !ctx.budgetHit;
    res.starAborted = false;
    res.cyclesSimulated = ctx.totalCycles;
    res.pathsExplored = ctx.pathsExplored;
    res.branchPoints = ctx.branchPoints;
    res.merges = ctx.table.merges();
    res.subsumptions = ctx.table.subsumptions();
    res.statesTracked = ctx.table.size();
    res.violations = ctx.log.list();
    res.degradations = ctx.degradations;

    if (ctx.budgetHit && ctx.ps.cfg.checkpointOnStop) {
        auto ckpt = std::make_shared<EngineCheckpoint>();
        ckpt->fingerprint = ctx.fingerprint;
        ckpt->totalCycles = ctx.totalCycles;
        ckpt->pathsExplored = ctx.pathsExplored;
        ckpt->branchPoints = ctx.branchPoints;
        ckpt->merges = ctx.table.merges();
        ckpt->subsumptions = ctx.table.subsumptions();
        ckpt->level = ctx.level;
        for (const Degradation &d : ctx.degradations) {
            if (d.level != DegradeLevel::PartialStop)
                ckpt->degradations.push_back(d);
        }
        ckpt->violations = res.violations;
        ckpt->everTainted = ctx.everTainted;
        ckpt->table.reserve(ctx.table.entries().size());
        for (const auto &[key, state] : ctx.table.entries())
            ckpt->table.emplace_back(key, state);
        ckpt->frontier.reserve(ctx.stack.size());
        for (const Coord::Entry &e : ctx.stack)
            ckpt->frontier.emplace_back(e.state, e.node);
        ckpt->tree = ctx.tree.all();
        res.checkpoint = std::move(ckpt);
    }

    res.tree = std::move(ctx.tree);

    if (!cfg.starLogicMode) {
        const Netlist &nl = soc.netlist();
        size_t tainted = 0;
        size_t total = 0;
        for (const Gate &g : nl.gates()) {
            if (g.type != GateType::Comb && g.type != GateType::Dff)
                continue;
            ++total;
            if (ctx.everTainted.get(g.out))
                ++tainted;
        }
        res.taintedGates = tainted;
        res.totalGates = total;
    }
    res.taintedGateFraction =
        res.totalGates == 0
            ? 0.0
            : static_cast<double>(res.taintedGates) / res.totalGates;

    es.finalizeSeconds.add(secondsSince(tFinalize));
    if (tr.enabled()) {
        tr.complete("engine", "finalize", traceTFinalize,
                    tr.nowUs() - traceTFinalize);
    }

    const auto t1 = std::chrono::steady_clock::now();
    res.analysisSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return res;
}

} // namespace glifs::explore
