#include "explore/worker.hh"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "base/faultfs.hh"
#include "base/logging.hh"
#include "base/strutil.hh"
#include "explore/protocol.hh"
#include "ift/checkpoint.hh"
#include "ift/path_sim.hh"

namespace glifs::explore
{

namespace
{

/** Send one already-terminated line to the coordinator; false when the
 *  pipe is unusable (coordinator gone -- time to exit). */
bool
sendLine(const std::string &line)
{
    return faultfs::writeFull(kResultFd, line.data(), line.size()) ==
           static_cast<ssize_t>(line.size());
}

/**
 * Run the segment chain for one shipped execution point: the segment
 * itself, then speculative continuations while each link ends at a
 * commit with a concrete PC (the serial engine's continue-inline
 * case). Every link is recorded under its own start digest.
 */
void
runChain(PathSim &ps, const SymState &start, uint64_t cycleCap,
         std::vector<SegmentRecord> &out)
{
    SymState cur = start;
    uint64_t spent = 0;
    for (unsigned link = 0; link < kChainSegments; ++link) {
        SegmentHooks hooks;
        uint64_t segCycles = 0;
        hooks.cycleCharged = [&] { ++segCycles; };
        hooks.poll = [&]() -> CycleAction {
            return spent + segCycles >= cycleCap ? CycleAction::Stop
                                                 : CycleAction::Continue;
        };

        SegmentRecord rec;
        rec.digest = stateDigest(cur);
        rec.seg = ps.runSegment(cur, hooks);
        spent += rec.seg.cycles;
        rec.overrun = rec.seg.stopped;
        const bool chainable = !rec.seg.halted && !rec.seg.pcUnknown &&
                               !rec.overrun;
        SymState next;
        if (chainable)
            next = rec.seg.end;
        out.push_back(std::move(rec));
        if (!chainable)
            return;
        cur = std::move(next);
    }
}

} // namespace

int
workerMain(const Soc &soc, const Policy &policy,
           const EngineConfig &cfg, const ProgramImage &image)
{
    PathSim ps(soc, policy, cfg, image);
    ps.loadProgram();
    const uint64_t fingerprint = checkpointFingerprint(
        image, ps.layout.slots(), soc.netlist().numNets());
    const uint64_t cycleCap =
        cfg.maxCycles > 0 ? cfg.maxCycles : 2'000'000;

    std::string pending;
    char buf[4096];
    while (true) {
        // Pull the next control line (blocking pipe read via faultfs
        // so read-fault plans hit the worker here).
        size_t nl;
        while ((nl = pending.find('\n')) == std::string::npos) {
            ssize_t n = faultfs::read(0, buf, sizeof(buf));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return 0; // coordinator gone (or injected read fault)
            pending.append(buf, static_cast<size_t>(n));
        }
        std::string line = pending.substr(0, nl);
        pending.erase(0, nl + 1);

        if (line.empty())
            continue;
        if (line[0] == 'q')
            return 0;
        if (line[0] != 'w')
            continue; // unknown verb: skip, stay forward-compatible

        // `w <seq> <path>`
        size_t sp1 = line.find(' ');
        size_t sp2 = line.find(' ', sp1 + 1);
        if (sp1 == std::string::npos || sp2 == std::string::npos)
            continue;
        std::string seq = line.substr(sp1 + 1, sp2 - sp1 - 1);
        std::string unitPath = line.substr(sp2 + 1);

        const auto t0 = std::chrono::steady_clock::now();
        std::vector<SegmentRecord> records;
        bool ok = true;
        try {
            std::vector<SymState> states =
                loadWorkUnit(unitPath, fingerprint);
            for (const SymState &s : states)
                runChain(ps, s, cycleCap, records);
        } catch (const RecoverableError &e) {
            // Corrupt or mismatched unit: report it lost; the
            // coordinator re-executes those entries inline.
            std::fprintf(stderr, "explore worker: %s\n", e.what());
            ok = false;
        }
        faultfs::unlink(unitPath.c_str());

        if (!ok) {
            if (!sendLine("e " + seq + "\n"))
                return 1;
            continue;
        }

        const std::string resPath = unitPath + ".res";
        try {
            saveSegmentResults(resPath, fingerprint, records);
        } catch (const RecoverableError &e) {
            std::fprintf(stderr, "explore worker: %s\n", e.what());
            if (!sendLine("e " + seq + "\n"))
                return 1;
            continue;
        }
        const uint64_t usec =
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
        if (!sendLine("r " + seq + " " + std::to_string(usec) + " " +
                      resPath + "\n"))
            return 1;
    }
}

} // namespace glifs::explore
