#include "power/energy_model.hh"

#include <sstream>

namespace glifs
{

EnergyReport
computeEnergy(const NetlistStats &stats, const ToggleStats &toggles,
              const EnergyParams &params)
{
    EnergyReport rep;
    for (size_t k = 0; k < toggles.combToggles.size(); ++k) {
        rep.switchingFj +=
            params.combSwitchFj[k] *
            static_cast<double>(toggles.combToggles[k]);
    }
    rep.switchingFj +=
        params.dffSwitchFj * static_cast<double>(toggles.dffToggles);
    rep.leakageFj = params.leakFjPerGateCycle *
                    static_cast<double>(stats.trackedGates()) *
                    static_cast<double>(toggles.cycles);
    rep.memoryFj =
        params.memWriteFj * static_cast<double>(toggles.memWrites);
    return rep;
}

std::string
EnergyReport::str() const
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(1);
    oss << "switching " << switchingFj / 1000.0 << " pJ, leakage "
        << leakageFj / 1000.0 << " pJ, memory " << memoryFj / 1000.0
        << " pJ, total " << totalFj() / 1000.0 << " pJ";
    return oss.str();
}

} // namespace glifs
