/**
 * @file
 * A simple per-gate energy model for the IoT430 substrate.
 *
 * The paper synthesizes openMSP430 in TSMC 65GP at 1V/100MHz and
 * reports *relative* energy overheads of the software modifications
 * (15% on average). Relative energy is preserved by any consistent
 * per-gate model, so we charge per-toggle switching energy by gate
 * kind, per-cycle leakage proportional to gate count, and per-access
 * memory energy, with magnitudes representative of a 65nm process.
 */

#ifndef GLIFS_POWER_ENERGY_MODEL_HH
#define GLIFS_POWER_ENERGY_MODEL_HH

#include <array>
#include <string>

#include "netlist/stats.hh"
#include "sim/toggle_stats.hh"

namespace glifs
{

/** Energy parameters (femtojoules). */
struct EnergyParams
{
    /** Switching energy per output toggle, indexed by GateKind. */
    std::array<double, 9> combSwitchFj{
        0.4,   // Buf
        0.4,   // Not
        0.8,   // And
        0.7,   // Nand
        0.8,   // Or
        0.7,   // Nor
        1.1,   // Xor
        1.1,   // Xnor
        1.3,   // Mux
    };
    double dffSwitchFj = 2.2;      ///< per flip-flop toggle
    double leakFjPerGateCycle = 0.02;  ///< leakage per gate per cycle
    double memWriteFj = 18.0;      ///< per memory write access
};

/** Energy breakdown of a simulation run. */
struct EnergyReport
{
    double switchingFj = 0.0;
    double leakageFj = 0.0;
    double memoryFj = 0.0;

    double totalFj() const { return switchingFj + leakageFj + memoryFj; }
    std::string str() const;
};

/** Compute the energy of a run from toggle statistics. */
EnergyReport computeEnergy(const NetlistStats &stats,
                           const ToggleStats &toggles,
                           const EnergyParams &params = {});

} // namespace glifs

#endif // GLIFS_POWER_ENERGY_MODEL_HH
