/**
 * @file
 * Global statistics registry in the spirit of gem5's stats package,
 * sized for the hot paths of the symbolic engine.
 *
 * Stats are cheap-by-construction: a Scalar increment is one integer
 * add on a plain member, a Gauge set is two stores, a Distribution
 * sample is an add and a bin increment. All bookkeeping (name lookup,
 * grouping, formatting) happens only at snapshot time. Names are
 * hierarchical dotted-lowercase identifiers ("engine.cycles",
 * "state_table.merges"); registration enforces the naming convention
 * and rejects collisions so the name space stays a stable, documented
 * contract (docs/OBSERVABILITY.md).
 *
 * Instrumented modules keep a function-local static struct of stats,
 * so the registry fills in lazily as subsystems are first exercised.
 * Snapshot() captures every registered stat; the snapshot renders as
 * nested JSON (grouped by the dotted name) or aligned human text, and
 * resetAll() rewinds every stat for interval measurements.
 */

#ifndef GLIFS_BASE_STATS_HH
#define GLIFS_BASE_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace glifs
{
namespace stats
{

class Registry;

/** Common registration/naming behaviour of every stat. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc);
    virtual ~StatBase();

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

    virtual void reset() = 0;

  private:
    std::string statName;
    std::string statDesc;
};

/** Monotonic event counter (the workhorse of the hot paths). */
class Scalar : public StatBase
{
  public:
    Scalar(std::string name, std::string desc)
        : StatBase(std::move(name), std::move(desc))
    {}

    void inc(uint64_t n = 1) { val += n; }
    Scalar &operator++() { ++val; return *this; }
    Scalar &operator+=(uint64_t n) { val += n; return *this; }

    uint64_t value() const { return val; }
    void reset() override { val = 0; }

  private:
    uint64_t val = 0;
};

/** Instantaneous level with a tracked peak (frontier size, RSS, ...). */
class Gauge : public StatBase
{
  public:
    Gauge(std::string name, std::string desc)
        : StatBase(std::move(name), std::move(desc))
    {}

    void
    set(double v)
    {
        val = v;
        if (v > peakVal)
            peakVal = v;
    }

    void add(double v) { set(val + v); }

    double value() const { return val; }
    double peak() const { return peakVal; }
    void reset() override { val = 0; peakVal = 0; }

  private:
    double val = 0;
    double peakVal = 0;
};

/**
 * Linear-binned histogram over [lo, hi) with underflow/overflow
 * buckets; min/max/sum/count cover every sample.
 */
class Distribution : public StatBase
{
  public:
    Distribution(std::string name, std::string desc, double lo,
                 double hi, size_t numBins);

    void sample(double x);

    uint64_t count() const { return sampleCount; }
    double sum() const { return sampleSum; }
    double min() const { return sampleMin; }
    double max() const { return sampleMax; }
    double mean() const
    {
        return sampleCount == 0
                   ? 0.0
                   : sampleSum / static_cast<double>(sampleCount);
    }
    double binLo() const { return lo; }
    double binHi() const { return hi; }
    uint64_t underflow() const { return underCount; }
    uint64_t overflow() const { return overCount; }
    const std::vector<uint64_t> &bins() const { return binCounts; }

    void reset() override;

  private:
    double lo;
    double hi;
    std::vector<uint64_t> binCounts;
    uint64_t underCount = 0;
    uint64_t overCount = 0;
    uint64_t sampleCount = 0;
    double sampleSum = 0;
    double sampleMin = 0;
    double sampleMax = 0;
};

/** Named derived value, evaluated lazily at snapshot time. */
class Formula : public StatBase
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn)
        : StatBase(std::move(name), std::move(desc)),
          fn(std::move(fn))
    {}

    double value() const { return fn ? fn() : 0.0; }
    void reset() override {}

  private:
    std::function<double()> fn;
};

/** One stat captured by Registry::snapshot(). */
struct SnapshotEntry
{
    enum class Kind : uint8_t { Scalar, Gauge, Distribution, Formula };

    std::string name;
    std::string desc;
    Kind kind = Kind::Scalar;

    /** Scalar/Formula value; Gauge current value. */
    double value = 0;
    /** Gauge peak. */
    double peak = 0;

    /** Distribution payload. */
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double binLo = 0;
    double binHi = 0;
    uint64_t underflow = 0;
    uint64_t overflow = 0;
    std::vector<uint64_t> bins;
};

/** Point-in-time capture of the whole registry, sorted by name. */
struct Snapshot
{
    std::vector<SnapshotEntry> entries;

    /** Entry by exact name, or nullptr. */
    const SnapshotEntry *find(const std::string &name) const;

    /** Scalar/gauge/formula value by name (0 if absent). */
    double value(const std::string &name) const;

    /**
     * Render as JSON, nesting objects along the dotted names:
     * {"engine": {"cycles": 123, ...}, ...}. Scalars and formulas
     * render as bare numbers, gauges as {"value","peak"} objects,
     * distributions as full histogram objects.
     */
    std::string json(int indent = 2) const;

    /** Render as aligned "name value  # description" text lines. */
    std::string text() const;
};

/**
 * The process-global stat registry. Stats register themselves on
 * construction and unregister on destruction; duplicate or malformed
 * names are a FatalError (caught by tests, fatal for a misbuilt
 * binary).
 */
class Registry
{
  public:
    static Registry &instance();

    void add(StatBase *stat);
    void remove(StatBase *stat);

    size_t size() const { return byName.size(); }
    Snapshot snapshot() const;
    void resetAll();

  private:
    std::map<std::string, StatBase *> byName;
};

/** True iff @p name is dotted-lowercase: [a-z0-9_]+(\.[a-z0-9_]+)+ */
bool validStatName(const std::string &name);

} // namespace stats
} // namespace glifs

#endif // GLIFS_BASE_STATS_HH
