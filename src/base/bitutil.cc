#include "base/bitutil.hh"

#include <bit>

#include "base/logging.hh"

namespace glifs
{

unsigned
popcount64(uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v));
}

unsigned
bitsFor(uint64_t n)
{
    if (n <= 2)
        return 1;
    unsigned bits = 0;
    uint64_t max = n - 1;
    while (max) {
        ++bits;
        max >>= 1;
    }
    return bits;
}

int64_t
signExtend(uint64_t v, unsigned bits)
{
    GLIFS_ASSERT(bits >= 1 && bits <= 64, "bad width ", bits);
    if (bits == 64)
        return static_cast<int64_t>(v);
    uint64_t m = 1ULL << (bits - 1);
    v &= lowMask(bits);
    return static_cast<int64_t>((v ^ m) - m);
}

BitPlane::BitPlane(size_t nbits)
{
    resize(nbits);
}

void
BitPlane::resize(size_t nbits)
{
    numBits = nbits;
    data.assign((nbits + 63) / 64, 0);
}

bool
BitPlane::get(size_t i) const
{
    GLIFS_ASSERT(i < numBits, "BitPlane index ", i, " >= ", numBits);
    return (data[i / 64] >> (i % 64)) & 1ULL;
}

void
BitPlane::set(size_t i, bool b)
{
    GLIFS_ASSERT(i < numBits, "BitPlane index ", i, " >= ", numBits);
    if (b)
        data[i / 64] |= (1ULL << (i % 64));
    else
        data[i / 64] &= ~(1ULL << (i % 64));
}

void
BitPlane::clearAll()
{
    for (auto &w : data)
        w = 0;
}

void
BitPlane::setAll()
{
    for (auto &w : data)
        w = ~0ULL;
    maskTail();
}

void
BitPlane::maskTail()
{
    if (numBits % 64 != 0 && !data.empty())
        data.back() &= lowMask(numBits % 64);
}

size_t
BitPlane::count() const
{
    size_t n = 0;
    for (auto w : data)
        n += popcount64(w);
    return n;
}

void
BitPlane::orWith(const BitPlane &other)
{
    GLIFS_ASSERT(numBits == other.numBits, "plane size mismatch");
    for (size_t i = 0; i < data.size(); ++i)
        data[i] |= other.data[i];
}

void
BitPlane::andWith(const BitPlane &other)
{
    GLIFS_ASSERT(numBits == other.numBits, "plane size mismatch");
    for (size_t i = 0; i < data.size(); ++i)
        data[i] &= other.data[i];
}

bool
BitPlane::subsetOf(const BitPlane &other) const
{
    GLIFS_ASSERT(numBits == other.numBits, "plane size mismatch");
    for (size_t i = 0; i < data.size(); ++i) {
        if (data[i] & ~other.data[i])
            return false;
    }
    return true;
}

bool
BitPlane::operator==(const BitPlane &other) const
{
    return numBits == other.numBits && data == other.data;
}

} // namespace glifs
