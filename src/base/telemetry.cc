#include "base/telemetry.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "base/hash.hh"
#include "base/stats.hh"

namespace glifs::telemetry
{

namespace
{

/** Worker-side emission counters (docs/OBSERVABILITY.md). */
struct WriterStats
{
    stats::Scalar written{"telemetry.frames_written",
                          "telemetry frames written to the "
                          "scheduler pipe"};
    stats::Scalar dropped{"telemetry.frames_dropped",
                          "telemetry frames dropped (pipe full or "
                          "oversized frame)"};
    stats::Scalar disabled{"telemetry.writer_disabled",
                           "telemetry writers self-disabled on a "
                           "write error (EPIPE: reader gone)"};
};

WriterStats &
writerStats()
{
    static WriterStats s;
    return s;
}

// ---------------------------------------------------------------------
// Little-endian payload encoding (the batch journal's scheme).
// ---------------------------------------------------------------------

void
putU8(std::string &out, uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        putU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::string &out, uint64_t v)
{
    putU32(out, static_cast<uint32_t>(v));
    putU32(out, static_cast<uint32_t>(v >> 32));
}

void
putStr(std::string &out, const std::string &s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out.append(s);
}

void
putDouble(std::string &out, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

/** Bounds-checked reader: `bad` instead of exceptions, so a malformed
 *  payload is handled like a torn frame. */
struct PayloadReader
{
    const std::string &buf;
    size_t pos = 0;
    bool bad = false;

    uint8_t
    u8()
    {
        if (pos + 1 > buf.size()) {
            bad = true;
            return 0;
        }
        return static_cast<uint8_t>(buf[pos++]);
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= uint32_t{u8()} << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t lo = u32();
        return lo | (uint64_t{u32()} << 32);
    }

    std::string
    str()
    {
        uint32_t n = u32();
        if (bad || pos + n > buf.size()) {
            bad = true;
            return "";
        }
        std::string s = buf.substr(pos, n);
        pos += n;
        return s;
    }

    double
    real()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
};

std::string
encodePayload(const Event &e)
{
    std::string p;
    switch (e.type) {
      case EventType::Lifecycle:
        putStr(p, e.phase);
        putU32(p, static_cast<uint32_t>(e.exitCode));
        putStr(p, e.verdict);
        break;
      case EventType::Heartbeat:
        putU64(p, e.cycles);
        putDouble(p, e.elapsedSeconds);
        putDouble(p, e.cyclesPerSec);
        putU64(p, e.frontier);
        putU64(p, e.states);
        putU64(p, e.rssBytes);
        putDouble(p, e.budgetUsed);
        break;
      case EventType::StatsSnapshot:
        putU32(p, static_cast<uint32_t>(e.stats.size()));
        for (const auto &[name, value] : e.stats) {
            putStr(p, name);
            putDouble(p, value);
        }
        break;
      case EventType::BudgetUsage:
        putStr(p, e.resource);
        putStr(p, e.severity);
        putStr(p, e.detail);
        break;
      case EventType::Explore:
        putStr(p, e.phase);
        putU64(p, e.worker);
        putU64(p, e.cycles);
        putStr(p, e.detail);
        break;
    }
    return p;
}

/** Decode one payload; false when the bytes do not parse. */
bool
decodePayload(uint8_t type, const std::string &payload, Event &out)
{
    PayloadReader r{payload};
    switch (static_cast<EventType>(type)) {
      case EventType::Lifecycle:
        out.type = EventType::Lifecycle;
        out.phase = r.str();
        out.exitCode = static_cast<int>(r.u32());
        out.verdict = r.str();
        break;
      case EventType::Heartbeat:
        out.type = EventType::Heartbeat;
        out.cycles = r.u64();
        out.elapsedSeconds = r.real();
        out.cyclesPerSec = r.real();
        out.frontier = r.u64();
        out.states = r.u64();
        out.rssBytes = r.u64();
        out.budgetUsed = r.real();
        break;
      case EventType::StatsSnapshot: {
        out.type = EventType::StatsSnapshot;
        uint32_t n = r.u32();
        if (r.bad || n > kMaxFrame)
            return false;
        out.stats.reserve(n);
        for (uint32_t i = 0; i < n && !r.bad; ++i) {
            std::string name = r.str();
            double value = r.real();
            out.stats.emplace_back(std::move(name), value);
        }
        break;
      }
      case EventType::BudgetUsage:
        out.type = EventType::BudgetUsage;
        out.resource = r.str();
        out.severity = r.str();
        out.detail = r.str();
        break;
      case EventType::Explore:
        out.type = EventType::Explore;
        out.phase = r.str();
        out.worker = r.u64();
        out.cycles = r.u64();
        out.detail = r.str();
        break;
      default:
        return false; // unknown type: skip, stay forward-compatible
    }
    return !r.bad;
}

} // namespace

const char *
eventTypeName(EventType t)
{
    switch (t) {
      case EventType::Lifecycle: return "lifecycle";
      case EventType::Heartbeat: return "heartbeat";
      case EventType::StatsSnapshot: return "stats";
      case EventType::BudgetUsage: return "budget";
      case EventType::Explore: return "explore";
    }
    return "?";
}

std::string
encodeFrame(const Event &e)
{
    std::string payload = encodePayload(e);
    std::string body;
    putU8(body, static_cast<uint8_t>(e.type));
    body.append(payload);
    std::string frame;
    putU32(frame, static_cast<uint32_t>(payload.size()));
    frame.append(body);
    putU32(frame, crc32(body));
    return frame;
}

Writer &
Writer::instance()
{
    // Leaked like the Tracer/Registry singletons: emission must stay
    // legal from static-destructor-time code paths.
    static Writer *w = new Writer;
    return *w;
}

void
Writer::open(int newFd)
{
    // A vanished reader must surface as EPIPE on write, not SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);
    int flags = ::fcntl(newFd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(newFd, F_SETFL, flags | O_NONBLOCK) < 0) {
        ++writerStats().disabled;
        fd = -1;
        return;
    }
    fd = newFd;
}

void
Writer::emit(const Event &e)
{
    if (fd < 0)
        return;
    std::string frame = encodeFrame(e);
    if (frame.size() > kMaxAtomicFrame) {
        ++writerStats().dropped;
        return;
    }
    // Raw ::write, not faultfs: telemetry is advisory, and routing it
    // through the fault plan would perturb the crash-recovery sweeps'
    // deterministic write counters in every worker.
    while (true) {
        ssize_t n = ::write(fd, frame.data(), frame.size());
        if (n == static_cast<ssize_t>(frame.size())) {
            ++writerStats().written;
            return;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Pipe full: the scheduler fell behind. Heartbeats are
            // periodic, so dropping is strictly better than blocking
            // the analysis loop.
            ++writerStats().dropped;
            return;
        }
        // EPIPE (reader gone), EBADF (no pipe inherited), or a short
        // write that should be impossible under kMaxAtomicFrame: the
        // channel is unusable, degrade silently to a no-op.
        ++writerStats().disabled;
        fd = -1;
        return;
    }
}

void
Reader::feed(const void *data, size_t n, std::vector<Event> &out)
{
    if (poisonedFlag)
        return; // desynced: discard the rest of the stream
    buf.append(static_cast<const char *>(data), n);

    size_t pos = 0;
    while (true) {
        if (buf.size() - pos < 4)
            break;
        uint32_t len = 0;
        for (int i = 0; i < 4; ++i) {
            len |= uint32_t{static_cast<uint8_t>(buf[pos + i])}
                   << (8 * i);
        }
        if (len > kMaxFrame) {
            // An unbelievable length means the length field itself is
            // damaged; the frame boundary is lost and nothing after
            // this point can be trusted.
            poisonedFlag = true;
            ++tornCount;
            buf.clear();
            return;
        }
        const size_t frameSize = 4 + 1 + size_t{len} + 4;
        if (buf.size() - pos < frameSize)
            break; // incomplete: wait for more bytes
        const char *body = buf.data() + pos + 4;
        const size_t bodySize = 1 + size_t{len};
        uint32_t want = 0;
        for (int i = 0; i < 4; ++i) {
            want |= uint32_t{static_cast<uint8_t>(
                        buf[pos + 4 + bodySize + i])}
                    << (8 * i);
        }
        if (crc32(body, bodySize) != want) {
            // Payload damage with an intact boundary: skip just this
            // frame and keep decoding the stream.
            ++crcErrorCount;
            pos += frameSize;
            continue;
        }
        Event e;
        std::string payload(body + 1, len);
        if (decodePayload(static_cast<uint8_t>(body[0]), payload, e))
            ++frameCount, out.push_back(std::move(e));
        else
            ++crcErrorCount;
        pos += frameSize;
    }
    buf.erase(0, pos);
}

bool
Reader::finish()
{
    if (buf.empty())
        return false;
    ++tornCount;
    buf.clear();
    return true;
}

} // namespace glifs::telemetry
