/**
 * @file
 * Content hashing for the batch result cache (docs/BATCH.md).
 *
 * SHA-256 (FIPS 180-4), implemented locally so the cache key is a
 * stable, collision-resistant function of the job *content* with no
 * external dependency. The streaming interface lets callers fold
 * several labelled sections into one digest without concatenating
 * them in memory.
 */

#ifndef GLIFS_BASE_HASH_HH
#define GLIFS_BASE_HASH_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace glifs
{

/** Incremental SHA-256 digest. */
class Sha256
{
  public:
    Sha256();

    /** Fold @p len bytes at @p data into the digest. */
    void update(const void *data, size_t len);

    /** Convenience: fold a string. */
    void update(const std::string &s) { update(s.data(), s.size()); }

    /**
     * Fold a labelled section: the label, the section length, then the
     * content. Length-prefixing keeps section boundaries unambiguous
     * ("ab" + "c" never hashes like "a" + "bc"), which matters for a
     * cache key assembled from several variable-length inputs.
     */
    void section(const std::string &label, const std::string &content);

    /** Finish and return the 32-byte digest (object is spent). */
    std::array<uint8_t, 32> digest();

    /** Finish and return the digest as 64 lowercase hex chars. */
    std::string hexDigest();

  private:
    void compress(const uint8_t *block);

    std::array<uint32_t, 8> state;
    std::array<uint8_t, 64> buffer;
    uint64_t totalBytes = 0;
    size_t buffered = 0;
};

/** One-shot helper: SHA-256 of @p s as lowercase hex. */
std::string sha256Hex(const std::string &s);

/**
 * CRC-32 (IEEE 802.3, the zlib polynomial) of @p len bytes at
 * @p data. Chainable: pass a previous result as @p seed to extend the
 * checksum. Used for cheap per-record integrity (the batch journal,
 * checkpoint payloads) where SHA-256 would be overkill: CRC-32 detects
 * all burst errors up to 32 bits and any odd number of bit flips.
 */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);
uint32_t crc32(const std::string &s, uint32_t seed = 0);

} // namespace glifs

#endif // GLIFS_BASE_HASH_HH
