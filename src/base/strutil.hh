/**
 * @file
 * String helpers: trimming, splitting, case folding, number formatting.
 */

#ifndef GLIFS_BASE_STRUTIL_HH
#define GLIFS_BASE_STRUTIL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace glifs
{

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &s);

/** Split on a delimiter character; empty fields preserved. */
std::vector<std::string> split(const std::string &s, char delim);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &s);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/**
 * Parse an integer literal: decimal, 0x-hex, or 0b-binary, with optional
 * leading '-'. Returns nullopt on malformed input.
 */
std::optional<int64_t> parseInt(const std::string &s);

/** Format a value as 0x%04x. */
std::string hex16(uint16_t v);

/** Format a ratio as a fixed-precision percent string. */
std::string percent(double ratio, int precision = 2);

/** Quote and escape a string as a JSON string literal. */
std::string jsonQuote(const std::string &s);

} // namespace glifs

#endif // GLIFS_BASE_STRUTIL_HH
