#include "base/logging.hh"

#include <iostream>

namespace glifs
{

namespace
{
bool g_verbose = true;
} // namespace

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "panic: " << msg << " @ " << file << ":" << line;
    throw PanicError(oss.str());
}

void
fatalImpl(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
recoverableImpl(const std::string &msg)
{
    throw RecoverableError(msg);
}

void
warnImpl(const std::string &msg)
{
    if (g_verbose)
        std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    if (g_verbose)
        std::cout << "info: " << msg << "\n";
}

} // namespace detail

} // namespace glifs
