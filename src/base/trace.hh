/**
 * @file
 * Structured event tracing for the analysis pipeline, emitting Chrome
 * trace_event JSON that chrome://tracing and Perfetto load directly.
 *
 * The tracer is a process-global ring buffer of fixed-capacity event
 * records. Disabled (the default), every instrumentation site is a
 * single predicted branch on a bool, so tracing can stay compiled into
 * the cycle loop without distorting it; enabling it never allocates in
 * the hot path beyond the per-event argument string. When the ring
 * wraps, the oldest events are dropped (and counted), bounding memory
 * for arbitrarily long runs.
 *
 * Spans are RAII scopes (phase "X" complete events); instants are
 * phase "i". Event names and categories must be string literals (the
 * ring stores the pointers); per-event details go into the Args
 * builder, which renders the Chrome "args" object.
 *
 * Compile-out: defining GLIFS_TRACE_DISABLED turns the macros into
 * no-ops with zero residue in the object code.
 */

#ifndef GLIFS_BASE_TRACE_HH
#define GLIFS_BASE_TRACE_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace glifs
{
namespace trace
{

/** One ring-buffer record (name/cat point at string literals). */
struct Event
{
    const char *name = "";
    const char *cat = "";
    char ph = 'i';       ///< Chrome phase: 'X' span, 'i' instant, 'C' counter
    uint64_t tsUs = 0;   ///< microseconds since enable()
    uint64_t durUs = 0;  ///< span duration ('X' only)
    uint32_t tid = 1;    ///< Chrome lane; 1 is the main analysis lane
    std::string args;    ///< pre-rendered body of the "args" object
};

/** Builds the body of a Chrome "args" object ("\"k\": v, ..."). */
class Args
{
  public:
    Args &add(const char *key, uint64_t v);
    Args &add(const char *key, int64_t v);
    Args &add(const char *key, unsigned v)
    {
        return add(key, static_cast<uint64_t>(v));
    }
    Args &add(const char *key, int v)
    {
        return add(key, static_cast<int64_t>(v));
    }
    Args &add(const char *key, double v);
    Args &add(const char *key, const char *v);
    Args &add(const char *key, const std::string &v);

    /** Consume the builder (chainable off add()'s lvalue ref). */
    std::string str() { return std::move(body); }

  private:
    void key(const char *k);
    std::string body;
};

/** The process-global ring-buffered tracer. */
class Tracer
{
  public:
    static Tracer &instance();

    /** Start recording into a fresh ring of @p capacity events. */
    void enable(size_t capacity = kDefaultCapacity);
    void disable();
    bool enabled() const { return on; }

    /** Microseconds since enable() (0 when disabled). */
    uint64_t nowUs() const;

    void instant(const char *cat, const char *name,
                 std::string args = {}, uint32_t tid = 1);
    void complete(const char *cat, const char *name, uint64_t tsUs,
                  uint64_t durUs, std::string args = {},
                  uint32_t tid = 1);
    void counter(const char *cat, const char *name, double value);

    /**
     * Label a trace lane: rendered as a Chrome "thread_name" metadata
     * row, so per-worker exploration lanes (explore/coordinator.cc)
     * show up named in chrome://tracing and Perfetto. Relabeling a tid
     * overwrites; labels survive clear() but not enable().
     */
    void threadName(uint32_t tid, const std::string &label);

    size_t size() const { return count; }
    uint64_t dropped() const { return droppedCount; }
    void clear();

    /** Events oldest-first (copies; for tests and text dumps). */
    std::vector<Event> events() const;

    /** Number of recorded events with this category (tests). */
    size_t countCategory(const char *cat) const;

    /** Full Chrome trace_event JSON document. */
    std::string json() const;

    /** Write json() to a file; FatalError on I/O failure. */
    void writeJson(const std::string &path) const;

    /** Human-readable one-line-per-event dump (--debug-trace). */
    std::string text() const;

    static constexpr size_t kDefaultCapacity = 1 << 16;

  private:
    void push(Event &&e);

    bool on = false;
    std::vector<Event> ring;
    std::vector<std::pair<uint32_t, std::string>> laneNames;
    size_t next = 0;         ///< ring slot for the next event
    size_t count = 0;        ///< live events (<= ring.size())
    uint64_t droppedCount = 0;
    std::chrono::steady_clock::time_point t0;
};

/** RAII span: records an 'X' complete event over its lifetime. */
class Scope
{
  public:
    Scope(const char *cat, const char *name)
        : cat(cat), name(name)
    {
        Tracer &t = Tracer::instance();
        if (t.enabled()) {
            startUs = t.nowUs();
            active = true;
        }
    }

    ~Scope()
    {
        if (!active)
            return;
        Tracer &t = Tracer::instance();
        if (t.enabled())
            t.complete(cat, name, startUs, t.nowUs() - startUs);
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    const char *cat;
    const char *name;
    uint64_t startUs = 0;
    bool active = false;
};

} // namespace trace
} // namespace glifs

#ifndef GLIFS_TRACE_DISABLED

#define GLIFS_TRACE_CONCAT2(a, b) a##b
#define GLIFS_TRACE_CONCAT(a, b) GLIFS_TRACE_CONCAT2(a, b)

/** Span covering the rest of the enclosing scope. */
#define GLIFS_TRACE_SCOPE(cat, name)                                         \
    ::glifs::trace::Scope GLIFS_TRACE_CONCAT(glifsTraceScope_,               \
                                             __COUNTER__)(cat, name)

/** Instant event without arguments. */
#define GLIFS_TRACE_INSTANT(cat, name)                                       \
    do {                                                                     \
        ::glifs::trace::Tracer &glifsTr =                                    \
            ::glifs::trace::Tracer::instance();                              \
        if (glifsTr.enabled())                                               \
            glifsTr.instant(cat, name);                                      \
    } while (0)

/** Instant event with an Args-builder expression. */
#define GLIFS_TRACE_INSTANT_ARGS(cat, name, argsExpr)                        \
    do {                                                                     \
        ::glifs::trace::Tracer &glifsTr =                                    \
            ::glifs::trace::Tracer::instance();                              \
        if (glifsTr.enabled())                                               \
            glifsTr.instant(cat, name,                                       \
                            ::glifs::trace::Args()                           \
                                .argsExpr.str());                            \
    } while (0)

#else

#define GLIFS_TRACE_SCOPE(cat, name) do {} while (0)
#define GLIFS_TRACE_INSTANT(cat, name) do {} while (0)
#define GLIFS_TRACE_INSTANT_ARGS(cat, name, argsExpr) do {} while (0)

#endif // GLIFS_TRACE_DISABLED

#endif // GLIFS_BASE_TRACE_HH
