/**
 * @file
 * Deterministic OS-fault injection for the batch subsystem
 * (docs/ROBUSTNESS.md, "Crash recovery").
 *
 * The batch layer performs all of its crash-critical file and process
 * syscalls through these thin wrappers. When no fault plan is active
 * they are a single predicted branch away from the raw syscall; when
 * `GLIFS_FAULT_PLAN` (or setPlan()) installs a plan, the Nth call of a
 * named operation can
 *
 *   - fail with a chosen errno (`write:3:ENOSPC`),
 *   - perform a short write of half the requested bytes
 *     (`write:2:short`),
 *   - or hard-abort the process mid-operation (`rename:2:crash`,
 *     `_exit(137)` before the operation executes — a deterministic
 *     kill -9 at exactly that syscall boundary).
 *
 * Plan grammar: comma-separated `op:N:action` clauses, where
 * `op` ∈ {open, write, rename, fsync, fork, waitpid, unlink, pipe,
 * read, poll}, `N` >= 1 counts calls of that op process-wide, and
 * `action` is `crash`, `short` (write/read only), or an errno name
 * from {ENOSPC, EAGAIN, EINTR, EIO, EMFILE, ENOMEM, EACCES, EPIPE}.
 *
 * Every injected fault increments `batch.fault_injected`; the same
 * guard-the-guards idea as tests/test_fault_injection.cc, extended
 * from the logic oracles to the OS boundary.
 */

#ifndef GLIFS_BASE_FAULTFS_HH
#define GLIFS_BASE_FAULTFS_HH

#include <poll.h>
#include <sys/types.h>

#include <string>

namespace glifs::faultfs
{

/**
 * Install a fault plan programmatically (tests); an empty string
 * clears the plan. Call counters restart from zero.
 * @throws FatalError on malformed plan grammar.
 */
void setPlan(const std::string &plan);

/** Remove any active plan and reset the call counters. */
void clearPlan();

/**
 * True if a plan is active. The first call (per process) also reads
 * `GLIFS_FAULT_PLAN` from the environment, so a spawned tool picks up
 * the plan with no code changes.
 */
bool active();

// -------------------------------------------------------------------
// Syscall wrappers. Signatures mirror the raw calls; when no plan is
// active each is a passthrough.
// -------------------------------------------------------------------

int open(const char *path, int flags, mode_t mode);
ssize_t write(int fd, const void *buf, size_t count);
int rename(const char *oldPath, const char *newPath);
int fsync(int fd);
int unlink(const char *path);
pid_t fork();
pid_t waitpid(pid_t pid, int *status, int options);
int pipe2(int fds[2], int flags);
ssize_t read(int fd, void *buf, size_t count);
int poll(struct pollfd *fds, nfds_t nfds, int timeoutMs);

/**
 * Write all of @p count bytes, retrying genuine short writes from the
 * OS but *not* masking injected failures: an injected short write or
 * errno surfaces to the caller exactly once, so torn-write handling
 * can be exercised. Returns @p count on success, -1 with errno set on
 * failure (possibly after a partial write).
 */
ssize_t writeFull(int fd, const void *buf, size_t count);

} // namespace glifs::faultfs

#endif // GLIFS_BASE_FAULTFS_HH
