#include "base/hash.hh"

#include <cstring>

namespace glifs
{

namespace
{

constexpr std::array<uint32_t, 64> kRound = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

uint32_t
rotr(uint32_t v, unsigned n)
{
    return (v >> n) | (v << (32 - n));
}

} // namespace

Sha256::Sha256()
    : state{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
            0x9b05688c, 0x1f83d9ab, 0x5be0cd19}
{}

void
Sha256::compress(const uint8_t *block)
{
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
        w[i] = static_cast<uint32_t>(block[4 * i]) << 24 |
               static_cast<uint32_t>(block[4 * i + 1]) << 16 |
               static_cast<uint32_t>(block[4 * i + 2]) << 8 |
               static_cast<uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
        uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                      (w[i - 15] >> 3);
        uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                      (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
        uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        uint32_t ch = (e & f) ^ (~e & g);
        uint32_t t1 = h + s1 + ch + kRound[i] + w[i];
        uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

void
Sha256::update(const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    totalBytes += len;
    while (len > 0) {
        size_t take = std::min(len, buffer.size() - buffered);
        std::memcpy(buffer.data() + buffered, p, take);
        buffered += take;
        p += take;
        len -= take;
        if (buffered == buffer.size()) {
            compress(buffer.data());
            buffered = 0;
        }
    }
}

void
Sha256::section(const std::string &label, const std::string &content)
{
    update(label);
    uint64_t n = content.size();
    uint8_t len8[8];
    for (int i = 0; i < 8; ++i)
        len8[i] = static_cast<uint8_t>(n >> (56 - 8 * i));
    update(len8, sizeof(len8));
    update(content);
}

std::array<uint8_t, 32>
Sha256::digest()
{
    uint64_t bits = totalBytes * 8;
    uint8_t pad = 0x80;
    update(&pad, 1);
    uint8_t zero = 0;
    while (buffered != 56)
        update(&zero, 1);
    uint8_t len8[8];
    for (int i = 0; i < 8; ++i)
        len8[i] = static_cast<uint8_t>(bits >> (56 - 8 * i));
    // Bypass update(): totalBytes is already folded into `bits`.
    std::memcpy(buffer.data() + buffered, len8, 8);
    compress(buffer.data());
    buffered = 0;

    std::array<uint8_t, 32> out;
    for (int i = 0; i < 8; ++i) {
        out[4 * i] = static_cast<uint8_t>(state[i] >> 24);
        out[4 * i + 1] = static_cast<uint8_t>(state[i] >> 16);
        out[4 * i + 2] = static_cast<uint8_t>(state[i] >> 8);
        out[4 * i + 3] = static_cast<uint8_t>(state[i]);
    }
    return out;
}

std::string
Sha256::hexDigest()
{
    static const char hex[] = "0123456789abcdef";
    std::array<uint8_t, 32> d = digest();
    std::string out;
    out.reserve(64);
    for (uint8_t b : d) {
        out.push_back(hex[b >> 4]);
        out.push_back(hex[b & 0xF]);
    }
    return out;
}

std::string
sha256Hex(const std::string &s)
{
    Sha256 h;
    h.update(s);
    return h.hexDigest();
}

uint32_t
crc32(const void *data, size_t len, uint32_t seed)
{
    // Table-driven CRC-32 (IEEE 802.3 polynomial, reflected).
    static const auto table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    uint32_t crc = ~seed;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

uint32_t
crc32(const std::string &s, uint32_t seed)
{
    return crc32(s.data(), s.size(), seed);
}

} // namespace glifs
