/**
 * @file
 * Small bit-manipulation helpers used throughout glifs.
 */

#ifndef GLIFS_BASE_BITUTIL_HH
#define GLIFS_BASE_BITUTIL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace glifs
{

/** Extract bit @p pos of @p value. */
inline bool
bit(uint64_t value, unsigned pos)
{
    return (value >> pos) & 1ULL;
}

/** Return @p value with bit @p pos set to @p b. */
inline uint64_t
setBit(uint64_t value, unsigned pos, bool b)
{
    return b ? (value | (1ULL << pos)) : (value & ~(1ULL << pos));
}

/** Mask with the low @p n bits set (n in [0,64]). */
inline uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

/** Population count. */
unsigned popcount64(uint64_t v);

/** Number of bits needed to represent values 0..n-1 (at least 1). */
unsigned bitsFor(uint64_t n);

/** Sign-extend the low @p bits of @p v to 64 bits. */
int64_t signExtend(uint64_t v, unsigned bits);

/**
 * A simple growable bitset backed by 64-bit words with word-level
 * merge/subset operations; the workhorse behind symbolic state planes.
 */
class BitPlane
{
  public:
    BitPlane() = default;
    explicit BitPlane(size_t nbits);

    void resize(size_t nbits);
    size_t size() const { return numBits; }

    bool get(size_t i) const;
    void set(size_t i, bool b);
    void clearAll();
    void setAll();

    /** Number of set bits. */
    size_t count() const;

    /** this |= other (sizes must match). */
    void orWith(const BitPlane &other);
    /** this &= other (sizes must match). */
    void andWith(const BitPlane &other);

    /** True if every set bit of this is also set in other. */
    bool subsetOf(const BitPlane &other) const;

    bool operator==(const BitPlane &other) const;

    const std::vector<uint64_t> &words() const { return data; }
    std::vector<uint64_t> &words() { return data; }

  private:
    size_t numBits = 0;
    std::vector<uint64_t> data;

    void maskTail();
};

} // namespace glifs

#endif // GLIFS_BASE_BITUTIL_HH
