#include "base/faultfs.hh"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <vector>

#include "base/logging.hh"
#include "base/stats.hh"
#include "base/strutil.hh"

namespace glifs::faultfs
{

namespace
{

enum class Op : uint8_t
{
    Open,
    Write,
    Rename,
    Fsync,
    Unlink,
    Fork,
    Waitpid,
    Pipe,
    Read,
    Poll,
    Count_,
};

constexpr size_t kOpCount = static_cast<size_t>(Op::Count_);

const char *const kOpNames[kOpCount] = {
    "open", "write", "rename", "fsync", "unlink", "fork", "waitpid",
    "pipe", "read", "poll",
};

/** What an armed clause does when its call count comes up. */
enum class Action : uint8_t
{
    Errno, ///< fail the call with `errnoValue`, op not performed
    Short, ///< (write only) write half the bytes, return the count
    Crash, ///< _exit(137) before the op: kill -9 at this boundary
};

struct Clause
{
    Op op;
    uint64_t nth = 0;  ///< fire on the nth call (1-based)
    Action action = Action::Errno;
    int errnoValue = EIO;
    bool fired = false;
};

struct PlanState
{
    bool loadedEnv = false;
    bool hasPlan = false;
    std::vector<Clause> clauses;
    uint64_t calls[kOpCount] = {};
    bool lastInjected = false;
};

PlanState &
state()
{
    static PlanState s;
    return s;
}

stats::Scalar &
injectedStat()
{
    static stats::Scalar s{"batch.fault_injected",
                           "faults injected by the GLIFS_FAULT_PLAN "
                           "syscall-fault layer"};
    return s;
}

int
errnoByName(const std::string &name)
{
    if (name == "ENOSPC") return ENOSPC;
    if (name == "EAGAIN") return EAGAIN;
    if (name == "EINTR") return EINTR;
    if (name == "EIO") return EIO;
    if (name == "EMFILE") return EMFILE;
    if (name == "ENOMEM") return ENOMEM;
    if (name == "EACCES") return EACCES;
    if (name == "EPIPE") return EPIPE;
    return -1;
}

std::vector<Clause>
parsePlan(const std::string &plan)
{
    std::vector<Clause> out;
    for (const std::string &part : split(plan, ',')) {
        std::string clause = trim(part);
        if (clause.empty())
            continue;
        std::vector<std::string> f = split(clause, ':');
        if (f.size() != 3)
            GLIFS_FATAL("fault plan clause '", clause,
                        "' is not op:N:action");
        Clause c;
        bool known = false;
        for (size_t i = 0; i < kOpCount; ++i) {
            if (f[0] == kOpNames[i]) {
                c.op = static_cast<Op>(i);
                known = true;
                break;
            }
        }
        if (!known)
            GLIFS_FATAL("fault plan: unknown op '", f[0], "'");
        auto n = parseInt(f[1]);
        if (!n || *n < 1)
            GLIFS_FATAL("fault plan: bad call index '", f[1], "'");
        c.nth = static_cast<uint64_t>(*n);
        if (f[2] == "crash") {
            c.action = Action::Crash;
        } else if (f[2] == "short") {
            if (c.op != Op::Write && c.op != Op::Read)
                GLIFS_FATAL("fault plan: 'short' only applies to "
                            "write and read");
            c.action = Action::Short;
        } else {
            int e = errnoByName(f[2]);
            if (e < 0)
                GLIFS_FATAL("fault plan: unknown action '", f[2], "'");
            c.action = Action::Errno;
            c.errnoValue = e;
        }
        out.push_back(c);
    }
    return out;
}

void
loadEnvOnce()
{
    PlanState &s = state();
    if (s.loadedEnv)
        return;
    s.loadedEnv = true;
    const char *env = std::getenv("GLIFS_FAULT_PLAN");
    if (env && *env) {
        s.clauses = parsePlan(env);
        s.hasPlan = !s.clauses.empty();
        if (s.hasPlan)
            GLIFS_WARN("fault injection armed: GLIFS_FAULT_PLAN=",
                       env);
    }
}

/**
 * Count one call of @p op; returns the armed clause if this call must
 * fail, after handling the crash action (which never returns).
 */
const Clause *
arm(Op op)
{
    PlanState &s = state();
    s.lastInjected = false;
    if (!s.loadedEnv)
        loadEnvOnce();
    if (!s.hasPlan)
        return nullptr;
    uint64_t n = ++s.calls[static_cast<size_t>(op)];
    for (Clause &c : s.clauses) {
        if (c.fired || c.op != op || c.nth != n)
            continue;
        c.fired = true;
        ++injectedStat();
        s.lastInjected = true;
        if (c.action == Action::Crash) {
            // Simulated kill -9: no atexit handlers, no stream
            // flushes, nothing — exactly what SIGKILL leaves behind.
            ::_exit(137);
        }
        return &c;
    }
    return nullptr;
}

} // namespace

void
setPlan(const std::string &plan)
{
    PlanState &s = state();
    s.loadedEnv = true; // programmatic plan overrides the environment
    s.clauses = parsePlan(plan);
    s.hasPlan = !s.clauses.empty();
    for (uint64_t &c : s.calls)
        c = 0;
    s.lastInjected = false;
}

void
clearPlan()
{
    setPlan("");
}

bool
active()
{
    loadEnvOnce();
    return state().hasPlan;
}

int
open(const char *path, int flags, mode_t mode)
{
    if (const Clause *c = arm(Op::Open)) {
        errno = c->errnoValue;
        return -1;
    }
    return ::open(path, flags, mode);
}

ssize_t
write(int fd, const void *buf, size_t count)
{
    if (const Clause *c = arm(Op::Write)) {
        if (c->action == Action::Short)
            return ::write(fd, buf, count / 2);
        errno = c->errnoValue;
        return -1;
    }
    return ::write(fd, buf, count);
}

int
rename(const char *oldPath, const char *newPath)
{
    if (const Clause *c = arm(Op::Rename)) {
        errno = c->errnoValue;
        return -1;
    }
    return ::rename(oldPath, newPath);
}

int
fsync(int fd)
{
    if (const Clause *c = arm(Op::Fsync)) {
        errno = c->errnoValue;
        return -1;
    }
    return ::fsync(fd);
}

int
unlink(const char *path)
{
    if (const Clause *c = arm(Op::Unlink)) {
        errno = c->errnoValue;
        return -1;
    }
    return ::unlink(path);
}

pid_t
fork()
{
    if (const Clause *c = arm(Op::Fork)) {
        errno = c->errnoValue;
        return -1;
    }
    return ::fork();
}

pid_t
waitpid(pid_t pid, int *status, int options)
{
    if (const Clause *c = arm(Op::Waitpid)) {
        errno = c->errnoValue;
        return -1;
    }
    return ::waitpid(pid, status, options);
}

int
pipe2(int fds[2], int flags)
{
    if (const Clause *c = arm(Op::Pipe)) {
        errno = c->errnoValue;
        return -1;
    }
    return ::pipe2(fds, flags);
}

ssize_t
read(int fd, void *buf, size_t count)
{
    if (const Clause *c = arm(Op::Read)) {
        if (c->action == Action::Short)
            return ::read(fd, buf, count > 1 ? count / 2 : count);
        errno = c->errnoValue;
        return -1;
    }
    return ::read(fd, buf, count);
}

int
poll(struct pollfd *fds, nfds_t nfds, int timeoutMs)
{
    if (const Clause *c = arm(Op::Poll)) {
        errno = c->errnoValue;
        return -1;
    }
    return ::poll(fds, nfds, timeoutMs);
}

ssize_t
writeFull(int fd, const void *buf, size_t count)
{
    const char *p = static_cast<const char *>(buf);
    size_t done = 0;
    while (done < count) {
        ssize_t n = write(fd, p + done, count - done);
        if (n < 0) {
            if (errno == EINTR && !state().lastInjected)
                continue;
            return -1;
        }
        done += static_cast<size_t>(n);
        if (state().lastInjected && done < count) {
            // An injected short write must stay torn — report the
            // failure instead of quietly completing the write.
            errno = ENOSPC;
            return -1;
        }
    }
    return static_cast<ssize_t>(done);
}

} // namespace glifs::faultfs
