/**
 * @file
 * Cross-process worker telemetry (docs/OBSERVABILITY.md, "Cross-
 * process telemetry").
 *
 * A batch worker (`glifs_audit --telemetry-fd N`) streams structured
 * event records to the scheduler over an inherited pipe, so a fleet
 * run can observe per-job progress *while the workers run* instead of
 * waiting for their exit codes and log files. The same records are the
 * wire format the future verification-as-a-service daemon will serve
 * over its socket API (ROADMAP open item 3), so the framing is
 * explicitly versioned and corruption-tolerant.
 *
 * Wire format (little-endian), one frame per event:
 *
 *   u32 payload_len | u8 type | payload | u32 crc32(type + payload)
 *
 * — the same length-prefixed CRC-32 framing as the batch journal
 * (src/batch/journal.hh), chosen so a torn tail (kill -9 mid-write) or
 * a flipped bit costs at most the damaged frame, never a misparse.
 * Frames are capped at kMaxFrame; the writer additionally keeps every
 * frame within PIPE_BUF so each O_NONBLOCK pipe write is atomic — the
 * stream can end torn (dead writer) but never *interleaves* torn.
 *
 * Delivery is deliberately lossy and non-blocking on the worker side:
 * a full pipe drops the frame (counted), a vanished reader (EPIPE)
 * silently self-disables the writer. Telemetry must never be able to
 * wedge or fail an analysis run.
 */

#ifndef GLIFS_BASE_TELEMETRY_HH
#define GLIFS_BASE_TELEMETRY_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace glifs::telemetry
{

/** Event record types (the u8 on the wire; gaps stay reserved). */
enum class EventType : uint8_t
{
    Lifecycle = 1,     ///< worker phase transition (started/finished)
    Heartbeat = 2,     ///< periodic progress from the governor poll point
    StatsSnapshot = 3, ///< stats-registry sample (name/value pairs)
    BudgetUsage = 4,   ///< a budget threshold crossing
    Explore = 5,       ///< parallel-exploration coordinator event
};

/** Printable name of an event type. */
const char *eventTypeName(EventType t);

/**
 * One decoded telemetry event. A tagged union in spirit: only the
 * field group matching `type` is meaningful.
 */
struct Event
{
    EventType type = EventType::Heartbeat;

    // Lifecycle: phase is "started" or "finished"; exitCode/verdict
    // are set on "finished" (exitCode -1 = not yet known).
    std::string phase;
    int exitCode = -1;
    std::string verdict;

    // Heartbeat (mirrors GovernorProgress).
    uint64_t cycles = 0;
    double elapsedSeconds = 0;
    double cyclesPerSec = 0;
    uint64_t frontier = 0;
    uint64_t states = 0;
    uint64_t rssBytes = 0;
    double budgetUsed = 0;

    // StatsSnapshot: dotted stat name -> value.
    std::vector<std::pair<std::string, double>> stats;

    // BudgetUsage: resourceKindName / "soft"|"hard" / free-form detail.
    std::string resource;
    std::string severity;
    std::string detail;

    // Explore (reuses phase/cycles/detail): phase is the event kind
    // ("ship", "result", "steal", "respawn", "prune"); worker is the
    // exploration lane index (0-based); cycles carries the segment
    // cycle count where one applies.
    uint64_t worker = 0;
};

/** Upper bound replay will believe for one frame's payload. */
constexpr uint32_t kMaxFrame = 1u << 16;

/**
 * Largest frame the writer will put on a pipe: POSIX guarantees
 * O_NONBLOCK pipe writes up to PIPE_BUF bytes are atomic, so staying
 * under it means a live stream never carries a partially-written
 * frame. Oversized events (a pathological stats snapshot) are dropped
 * and counted rather than torn.
 */
constexpr size_t kMaxAtomicFrame = 4096;

/** Encode @p e as one wire frame (header + payload + CRC). */
std::string encodeFrame(const Event &e);

/**
 * The worker-side emitter: a process-global, fire-and-forget writer
 * over an inherited fd (glifs_audit --telemetry-fd). All failure modes
 * degrade to dropped events or a disabled writer — never an error the
 * analysis can observe.
 */
class Writer
{
  public:
    static Writer &instance();

    /**
     * Start emitting over @p fd: the fd is switched to O_NONBLOCK and
     * SIGPIPE is ignored process-wide (a vanished reader must surface
     * as EPIPE, not kill the worker). An unusable fd self-disables on
     * the first emit.
     */
    void open(int fd);

    bool enabled() const { return fd >= 0; }

    /**
     * Frame and write @p e. Drops the event when the pipe is full or
     * the frame exceeds kMaxAtomicFrame; disables the writer on EPIPE
     * or any other write error.
     */
    void emit(const Event &e);

    /** Stop emitting (the fd is not closed; the caller owns it). */
    void disable() { fd = -1; }

  private:
    int fd = -1;
};

/**
 * The scheduler-side incremental decoder for one worker's stream.
 * Feed it whatever read() returned; it buffers partial frames across
 * feeds, validates each CRC, skips frames it cannot believe, and
 * reports what it saw through the counters.
 */
class Reader
{
  public:
    /** Decode everything complete in @p data, appending to @p out. */
    void feed(const void *data, size_t n, std::vector<Event> &out);

    /**
     * The stream ended (EOF). Returns true if undecodable bytes were
     * left behind — a half-written final frame from a killed worker —
     * which are discarded and counted as torn.
     */
    bool finish();

    uint64_t frames() const { return frameCount; }
    uint64_t crcErrors() const { return crcErrorCount; }
    uint64_t tornFrames() const { return tornCount; }
    /** True once a frame header was unbelievable (stream abandoned). */
    bool poisoned() const { return poisonedFlag; }

  private:
    std::string buf;
    uint64_t frameCount = 0;
    uint64_t crcErrorCount = 0;
    uint64_t tornCount = 0;
    bool poisonedFlag = false;
};

} // namespace glifs::telemetry

#endif // GLIFS_BASE_TELEMETRY_HH
