/**
 * @file
 * The tool version string. Folded into the batch result-cache key
 * (docs/BATCH.md) so cached verdicts never outlive the analysis
 * semantics that produced them: bump it whenever a change could alter
 * a verdict for unchanged inputs (engine semantics, checker rules,
 * policy parsing, budget accounting).
 */

#ifndef GLIFS_BASE_VERSION_HH
#define GLIFS_BASE_VERSION_HH

namespace glifs
{

constexpr const char *kGlifsVersion = "glifs-0.4.0";

} // namespace glifs

#endif // GLIFS_BASE_VERSION_HH
