#include "base/strutil.hh"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace glifs
{

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
toLower(const std::string &s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::optional<int64_t>
parseInt(const std::string &s)
{
    std::string t = trim(s);
    if (t.empty())
        return std::nullopt;

    bool neg = false;
    size_t i = 0;
    if (t[0] == '-' || t[0] == '+') {
        neg = (t[0] == '-');
        i = 1;
    }
    if (i >= t.size())
        return std::nullopt;

    int base = 10;
    if (t.size() > i + 1 && t[i] == '0' &&
        (t[i + 1] == 'x' || t[i + 1] == 'X')) {
        base = 16;
        i += 2;
    } else if (t.size() > i + 1 && t[i] == '0' &&
               (t[i + 1] == 'b' || t[i + 1] == 'B')) {
        base = 2;
        i += 2;
    }
    if (i >= t.size())
        return std::nullopt;

    int64_t val = 0;
    for (; i < t.size(); ++i) {
        char c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(t[i])));
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = 10 + (c - 'a');
        else
            return std::nullopt;
        if (digit >= base)
            return std::nullopt;
        val = val * base + digit;
    }
    return neg ? -val : val;
}

std::string
hex16(uint16_t v)
{
    char buf[8];
    std::snprintf(buf, sizeof(buf), "0x%04x", v);
    return buf;
}

std::string
percent(double ratio, int precision)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(precision);
    oss << ratio * 100.0 << "%";
    return oss.str();
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace glifs
