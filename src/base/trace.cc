#include "base/trace.hh"

#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "base/stats.hh"
#include "base/strutil.hh"

namespace glifs
{
namespace trace
{

void
Args::key(const char *k)
{
    if (!body.empty())
        body += ", ";
    body += '"';
    body += k;
    body += "\": ";
}

Args &
Args::add(const char *k, uint64_t v)
{
    key(k);
    body += std::to_string(v);
    return *this;
}

Args &
Args::add(const char *k, int64_t v)
{
    key(k);
    body += std::to_string(v);
    return *this;
}

Args &
Args::add(const char *k, double v)
{
    key(k);
    std::ostringstream oss;
    oss.precision(9);
    oss << v;
    body += oss.str();
    return *this;
}

Args &
Args::add(const char *k, const char *v)
{
    key(k);
    body += jsonQuote(v);
    return *this;
}

Args &
Args::add(const char *k, const std::string &v)
{
    key(k);
    body += jsonQuote(v);
    return *this;
}

Tracer &
Tracer::instance()
{
    // Leaked so tracing outlives static destructors of instrumented
    // modules (mirrors stats::Registry).
    static Tracer *t = new Tracer;
    return *t;
}

void
Tracer::enable(size_t capacity)
{
    ring.assign(capacity == 0 ? 1 : capacity, Event{});
    next = 0;
    count = 0;
    droppedCount = 0;
    laneNames.clear();
    t0 = std::chrono::steady_clock::now();
    on = true;
}

void
Tracer::disable()
{
    on = false;
}

void
Tracer::clear()
{
    next = 0;
    count = 0;
    droppedCount = 0;
}

uint64_t
Tracer::nowUs() const
{
    if (!on)
        return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

void
Tracer::push(Event &&e)
{
    if (count == ring.size()) {
        ++droppedCount;
        // Surfaced in the run report's stats snapshot, so a trace
        // whose ring wrapped is self-describing (docs/OBSERVABILITY.md).
        static stats::Scalar dropped{
            "trace.dropped_events",
            "trace events overwritten because the ring buffer "
            "wrapped (oldest first)"};
        ++dropped;
    } else {
        ++count;
    }
    ring[next] = std::move(e);
    next = (next + 1) % ring.size();
}

void
Tracer::instant(const char *cat, const char *name, std::string args,
                uint32_t tid)
{
    if (!on)
        return;
    Event e;
    e.name = name;
    e.cat = cat;
    e.ph = 'i';
    e.tsUs = nowUs();
    e.tid = tid;
    e.args = std::move(args);
    push(std::move(e));
}

void
Tracer::complete(const char *cat, const char *name, uint64_t tsUs,
                 uint64_t durUs, std::string args, uint32_t tid)
{
    if (!on)
        return;
    Event e;
    e.name = name;
    e.cat = cat;
    e.ph = 'X';
    e.tsUs = tsUs;
    e.durUs = durUs;
    e.tid = tid;
    e.args = std::move(args);
    push(std::move(e));
}

void
Tracer::threadName(uint32_t tid, const std::string &label)
{
    if (!on)
        return;
    for (auto &[id, name] : laneNames) {
        if (id == tid) {
            name = label;
            return;
        }
    }
    laneNames.emplace_back(tid, label);
}

void
Tracer::counter(const char *cat, const char *name, double value)
{
    if (!on)
        return;
    Event e;
    e.name = name;
    e.cat = cat;
    e.ph = 'C';
    e.tsUs = nowUs();
    e.args = Args().add("value", value).str();
    push(std::move(e));
}

std::vector<Event>
Tracer::events() const
{
    std::vector<Event> out;
    out.reserve(count);
    // Oldest-first: when full, the oldest slot is `next`.
    const size_t start = count == ring.size() ? next : 0;
    for (size_t i = 0; i < count; ++i)
        out.push_back(ring[(start + i) % ring.size()]);
    return out;
}

size_t
Tracer::countCategory(const char *cat) const
{
    size_t n = 0;
    const size_t start = count == ring.size() ? next : 0;
    for (size_t i = 0; i < count; ++i) {
        const Event &e = ring[(start + i) % ring.size()];
        if (std::string(e.cat) == cat)
            ++n;
    }
    return n;
}

std::string
Tracer::json() const
{
    std::ostringstream oss;
    oss << "{\n  \"displayTimeUnit\": \"ms\",\n"
        << "  \"traceEvents\": [\n";
    const std::vector<Event> evs = events();
    // Lane-name metadata rows first, so viewers label the per-worker
    // exploration lanes before any of their events render.
    for (const auto &[tid, label] : laneNames) {
        oss << "    {\"name\": \"thread_name\", \"ph\": \"M\", "
            << "\"pid\": 1, \"tid\": " << tid << ", \"args\": {"
            << "\"name\": " << jsonQuote(label) << "}},\n";
    }
    for (size_t i = 0; i < evs.size(); ++i) {
        const Event &e = evs[i];
        oss << "    {\"name\": " << jsonQuote(e.name)
            << ", \"cat\": " << jsonQuote(e.cat) << ", \"ph\": \""
            << e.ph << "\", \"ts\": " << e.tsUs
            << ", \"pid\": 1, \"tid\": " << e.tid;
        if (e.ph == 'X')
            oss << ", \"dur\": " << e.durUs;
        if (e.ph == 'i')
            oss << ", \"s\": \"g\"";
        if (!e.args.empty())
            oss << ", \"args\": {" << e.args << "}";
        oss << "}" << (i + 1 < evs.size() ? "," : "") << "\n";
    }
    oss << "  ]\n}\n";
    return oss.str();
}

void
Tracer::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        GLIFS_FATAL("cannot write trace file ", path);
    out << json();
    if (!out)
        GLIFS_FATAL("error writing trace file ", path);
}

std::string
Tracer::text() const
{
    std::ostringstream oss;
    for (const Event &e : events()) {
        oss << e.tsUs << "us " << e.cat << "." << e.name;
        if (e.ph == 'X')
            oss << " (" << e.durUs << "us)";
        if (!e.args.empty())
            oss << " {" << e.args << "}";
        oss << "\n";
    }
    if (droppedCount)
        oss << "(" << droppedCount << " older events dropped)\n";
    return oss.str();
}

} // namespace trace
} // namespace glifs
