#include "base/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace glifs
{
namespace stats
{

namespace
{

/** Render a double without trailing noise (integers stay integral). */
std::string
num(double v)
{
    if (std::isfinite(v) && v == std::floor(v) &&
        std::abs(v) < 1e15) {
        std::ostringstream oss;
        oss << static_cast<long long>(v);
        return oss.str();
    }
    std::ostringstream oss;
    oss.precision(12);
    oss << v;
    std::string s = oss.str();
    // JSON has no inf/nan literals.
    if (!std::isfinite(v))
        return "0";
    return s;
}

} // namespace

bool
validStatName(const std::string &name)
{
    size_t segments = 0;
    size_t seglen = 0;
    for (char c : name) {
        if (c == '.') {
            if (seglen == 0)
                return false;
            ++segments;
            seglen = 0;
            continue;
        }
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok)
            return false;
        ++seglen;
    }
    if (seglen == 0)
        return false;
    ++segments;
    return segments >= 2;
}

StatBase::StatBase(std::string name, std::string desc)
    : statName(std::move(name)), statDesc(std::move(desc))
{
    Registry::instance().add(this);
}

StatBase::~StatBase()
{
    Registry::instance().remove(this);
}

Distribution::Distribution(std::string name, std::string desc,
                           double lo_, double hi_, size_t numBins)
    : StatBase(std::move(name), std::move(desc)), lo(lo_), hi(hi_),
      binCounts(numBins, 0)
{
    GLIFS_ASSERT(hi > lo && numBins > 0,
                 "distribution ", this->name(), ": bad bin geometry");
}

void
Distribution::sample(double x)
{
    if (sampleCount == 0) {
        sampleMin = x;
        sampleMax = x;
    } else {
        sampleMin = std::min(sampleMin, x);
        sampleMax = std::max(sampleMax, x);
    }
    ++sampleCount;
    sampleSum += x;

    if (x < lo) {
        ++underCount;
    } else if (x >= hi) {
        ++overCount;
    } else {
        const double width = (hi - lo) / binCounts.size();
        size_t idx = static_cast<size_t>((x - lo) / width);
        if (idx >= binCounts.size())
            idx = binCounts.size() - 1;  // fp edge at the top bin
        ++binCounts[idx];
    }
}

void
Distribution::reset()
{
    std::fill(binCounts.begin(), binCounts.end(), 0);
    underCount = 0;
    overCount = 0;
    sampleCount = 0;
    sampleSum = 0;
    sampleMin = 0;
    sampleMax = 0;
}

Registry &
Registry::instance()
{
    // Leaked on purpose: stats with static storage duration in other
    // translation units unregister during shutdown, after a
    // function-local static registry could already be gone.
    static Registry *reg = new Registry;
    return *reg;
}

void
Registry::add(StatBase *stat)
{
    if (!validStatName(stat->name())) {
        GLIFS_FATAL("stat name '", stat->name(),
                    "' is not dotted-lowercase ",
                    "([a-z0-9_]+(.[a-z0-9_]+)+)");
    }
    auto [it, inserted] = byName.emplace(stat->name(), stat);
    if (!inserted)
        GLIFS_FATAL("duplicate stat name '", stat->name(), "'");
}

void
Registry::remove(StatBase *stat)
{
    auto it = byName.find(stat->name());
    if (it != byName.end() && it->second == stat)
        byName.erase(it);
}

Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    snap.entries.reserve(byName.size());
    for (const auto &[name, stat] : byName) {
        SnapshotEntry e;
        e.name = name;
        e.desc = stat->desc();
        if (auto *s = dynamic_cast<const Scalar *>(stat)) {
            e.kind = SnapshotEntry::Kind::Scalar;
            e.value = static_cast<double>(s->value());
        } else if (auto *g = dynamic_cast<const Gauge *>(stat)) {
            e.kind = SnapshotEntry::Kind::Gauge;
            e.value = g->value();
            e.peak = g->peak();
        } else if (auto *d =
                       dynamic_cast<const Distribution *>(stat)) {
            e.kind = SnapshotEntry::Kind::Distribution;
            e.count = d->count();
            e.sum = d->sum();
            e.min = d->min();
            e.max = d->max();
            e.value = d->mean();
            e.binLo = d->binLo();
            e.binHi = d->binHi();
            e.underflow = d->underflow();
            e.overflow = d->overflow();
            e.bins = d->bins();
        } else if (auto *f = dynamic_cast<const Formula *>(stat)) {
            e.kind = SnapshotEntry::Kind::Formula;
            // A formula over zero-valued inputs (0/0, x/0) yields
            // nan/inf; snapshot consumers (reports, bench counters)
            // treat entries as plain numbers, so clamp here rather
            // than only at JSON render time.
            const double v = f->value();
            e.value = std::isfinite(v) ? v : 0.0;
        }
        snap.entries.push_back(std::move(e));
    }
    return snap;
}

void
Registry::resetAll()
{
    for (auto &[name, stat] : byName)
        stat->reset();
}

const SnapshotEntry *
Snapshot::find(const std::string &name) const
{
    for (const SnapshotEntry &e : entries) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

double
Snapshot::value(const std::string &name) const
{
    const SnapshotEntry *e = find(name);
    return e ? e->value : 0.0;
}

namespace
{

/** Leaf JSON value of one snapshot entry. */
std::string
entryJson(const SnapshotEntry &e, const std::string &pad)
{
    switch (e.kind) {
      case SnapshotEntry::Kind::Scalar:
      case SnapshotEntry::Kind::Formula:
        return num(e.value);
      case SnapshotEntry::Kind::Gauge:
        return "{\"value\": " + num(e.value) +
               ", \"peak\": " + num(e.peak) + "}";
      case SnapshotEntry::Kind::Distribution: {
        std::ostringstream oss;
        oss << "{\n"
            << pad << "  \"count\": " << e.count << ",\n"
            << pad << "  \"sum\": " << num(e.sum) << ",\n"
            << pad << "  \"min\": " << num(e.min) << ",\n"
            << pad << "  \"max\": " << num(e.max) << ",\n"
            << pad << "  \"mean\": " << num(e.value) << ",\n"
            << pad << "  \"bin_lo\": " << num(e.binLo) << ",\n"
            << pad << "  \"bin_hi\": " << num(e.binHi) << ",\n"
            << pad << "  \"underflow\": " << e.underflow << ",\n"
            << pad << "  \"overflow\": " << e.overflow << ",\n"
            << pad << "  \"bins\": [";
        for (size_t i = 0; i < e.bins.size(); ++i)
            oss << (i ? ", " : "") << e.bins[i];
        oss << "]\n" << pad << "}";
        return oss.str();
      }
    }
    return "0";
}

/** Tree node grouping snapshot entries by dotted-name segment. */
struct Node
{
    const SnapshotEntry *leaf = nullptr;
    std::map<std::string, Node> children;
};

void
writeNode(std::ostringstream &oss, const Node &node, int depth,
          int indent)
{
    const std::string pad(static_cast<size_t>(depth * indent), ' ');
    const std::string inner(static_cast<size_t>((depth + 1) * indent),
                            ' ');
    oss << "{\n";
    size_t i = 0;
    for (const auto &[seg, child] : node.children) {
        oss << inner << "\"" << seg << "\": ";
        if (child.leaf)
            oss << entryJson(*child.leaf, inner);
        else
            writeNode(oss, child, depth + 1, indent);
        if (++i < node.children.size())
            oss << ",";
        oss << "\n";
    }
    oss << pad << "}";
}

} // namespace

std::string
Snapshot::json(int indent) const
{
    Node root;
    for (const SnapshotEntry &e : entries) {
        Node *cur = &root;
        for (const std::string &seg : split(e.name, '.'))
            cur = &cur->children[seg];
        cur->leaf = &e;
    }
    std::ostringstream oss;
    writeNode(oss, root, 0, indent);
    return oss.str();
}

std::string
Snapshot::text() const
{
    size_t nameWidth = 0;
    for (const SnapshotEntry &e : entries)
        nameWidth = std::max(nameWidth, e.name.size());

    std::ostringstream oss;
    for (const SnapshotEntry &e : entries) {
        oss << e.name
            << std::string(nameWidth + 2 - e.name.size(), ' ');
        switch (e.kind) {
          case SnapshotEntry::Kind::Scalar:
          case SnapshotEntry::Kind::Formula:
            oss << num(e.value);
            break;
          case SnapshotEntry::Kind::Gauge:
            oss << num(e.value) << " (peak " << num(e.peak) << ")";
            break;
          case SnapshotEntry::Kind::Distribution:
            oss << e.count << " samples, mean " << num(e.value)
                << ", min " << num(e.min) << ", max " << num(e.max);
            break;
        }
        if (!e.desc.empty())
            oss << "  # " << e.desc;
        oss << "\n";
    }
    return oss.str();
}

} // namespace stats
} // namespace glifs
