/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()       -- internal invariant broken (a glifs bug); aborts.
 * fatal()       -- unrecoverable user error (bad input, bad config); exits.
 * recoverable() -- a resource/degraded-mode condition the caller is
 *                  expected to catch and handle (retry, degrade,
 *                  resume); part of the structured failure taxonomy.
 * warn()        -- something suspicious but survivable.
 * inform()      -- plain status output.
 */

#ifndef GLIFS_BASE_LOGGING_HH
#define GLIFS_BASE_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace glifs
{

/** Exception thrown by fatal() so tests can catch user-level errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception thrown by panic() so tests can catch invariant violations. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/**
 * A condition the caller can recover from without losing the analysis:
 * budget exhaustion, an unusable checkpoint, a degraded-mode handoff.
 * Unlike FatalError (give up on the input) and PanicError (give up on
 * the program), catching this and retrying with a different
 * configuration is the expected behaviour.
 */
class RecoverableError : public std::runtime_error
{
  public:
    explicit RecoverableError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail
{

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
[[noreturn]] void recoverableImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Enable/disable warn()/inform() console output (on by default). */
void setVerbose(bool verbose);
bool verbose();

#define GLIFS_PANIC(...)                                                     \
    ::glifs::detail::panicImpl(__FILE__, __LINE__,                          \
                               ::glifs::detail::concat(__VA_ARGS__))

#define GLIFS_FATAL(...)                                                     \
    ::glifs::detail::fatalImpl(::glifs::detail::concat(__VA_ARGS__))

#define GLIFS_RECOVERABLE(...)                                               \
    ::glifs::detail::recoverableImpl(::glifs::detail::concat(__VA_ARGS__))

#define GLIFS_WARN(...)                                                      \
    ::glifs::detail::warnImpl(::glifs::detail::concat(__VA_ARGS__))

#define GLIFS_INFORM(...)                                                    \
    ::glifs::detail::informImpl(::glifs::detail::concat(__VA_ARGS__))

/** panic() unless the condition holds. */
#define GLIFS_ASSERT(cond, ...)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            GLIFS_PANIC("assertion failed: " #cond " ", __VA_ARGS__);        \
        }                                                                    \
    } while (0)

} // namespace glifs

#endif // GLIFS_BASE_LOGGING_HH
