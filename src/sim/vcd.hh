/**
 * @file
 * VCD (Value Change Dump) writer: record selected nets or buses during
 * simulation and emit a standard VCD file that GTKWave & co. can open.
 * Taint is emitted as a parallel `<name>_taint` signal so information
 * flows are visible next to the values.
 */

#ifndef GLIFS_SIM_VCD_HH
#define GLIFS_SIM_VCD_HH

#include <string>
#include <vector>

#include "sim/signal_state.hh"

namespace glifs
{

/**
 * Collects value changes and renders a VCD document.
 */
class VcdWriter
{
  public:
    /** Watch a single net. */
    void watch(const std::string &name, NetId net);

    /** Watch a bus (LSB-first, emitted as a VCD vector). */
    void watchBus(const std::string &name, const std::vector<NetId> &bus);

    /** Sample the current state at time @p cycle. */
    void sample(uint64_t cycle, const SignalState &state);

    /** Render the complete VCD document. */
    std::string str() const;

    /** Render and write to a file. */
    void write(const std::string &path) const;

    size_t numSignals() const { return signals.size(); }
    size_t numSamples() const { return samples.size(); }

  private:
    struct Watched
    {
        std::string name;
        std::vector<NetId> nets;  // 1 = scalar
        std::string id;           // VCD identifier code
        std::string taintId;
    };

    struct Sample
    {
        uint64_t cycle;
        /// Per watched signal: (value string, taint string); empty
        /// strings mean "unchanged since the previous sample".
        std::vector<std::pair<std::string, std::string>> values;
    };

    std::vector<Watched> signals;
    std::vector<Sample> samples;
    std::vector<std::pair<std::string, std::string>> last;

    static std::string idFor(size_t index, bool taint);
};

} // namespace glifs

#endif // GLIFS_SIM_VCD_HH
