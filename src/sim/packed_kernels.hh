/**
 * @file
 * Bit-parallel GLIFT kernels over {0,1,X}+taint plane words.
 *
 * A word of 64 signals is stored as three 64-bit planes:
 *
 *   lo  - "the value can be 0"  (set for 0 and X)
 *   hi  - "the value can be 1"  (set for 1 and X)
 *   tnt - the GLIFT taint bit
 *
 * so 0 = (lo,hi)=(1,0), 1 = (0,1), X = (1,1); (0,0) never occurs for a
 * valid lane. One bitwise kernel evaluates 64 independent gates of the
 * same GateKind at once, lane by lane, with semantics bit-identical to
 * glift::propagate (GliftTables::evalReference): the ternary value is
 * the exact set of outputs reachable by enumerating X inputs, and the
 * taint is set iff varying the tainted inputs (over {0,1}, regardless
 * of current value) can change the output for some assignment of the
 * untainted-X inputs -- which is what gives NAND/NOR/AND/OR their
 * untainted-controlling-value masking. tests/test_packed_kernels.cc
 * pins every kernel against the table-driven reference over all input
 * codes.
 */

#ifndef GLIFS_SIM_PACKED_KERNELS_HH
#define GLIFS_SIM_PACKED_KERNELS_HH

#include <cstdint>

#include "logic/ternary.hh"

namespace glifs::packed
{

/** One word of 64 ternary+taint lanes. */
struct Planes
{
    uint64_t lo = 0;   ///< lane value can be 0
    uint64_t hi = 0;   ///< lane value can be 1
    uint64_t tnt = 0;  ///< lane taint

    bool operator==(const Planes &o) const = default;
};

/** Encode one Signal into lane @p lane of a Planes word. */
inline void
setLane(Planes &p, unsigned lane, const Signal &s)
{
    const uint64_t bit = 1ULL << lane;
    p.lo &= ~bit;
    p.hi &= ~bit;
    p.tnt &= ~bit;
    if (s.value != Tern::One)
        p.lo |= bit;
    if (s.value != Tern::Zero)
        p.hi |= bit;
    if (s.taint)
        p.tnt |= bit;
}

/** Decode lane @p lane of a Planes word into a Signal. */
inline Signal
getLane(const Planes &p, unsigned lane)
{
    const bool lo = (p.lo >> lane) & 1;
    const bool hi = (p.hi >> lane) & 1;
    Signal s;
    s.value = lo ? (hi ? Tern::X : Tern::Zero) : Tern::One;
    s.taint = (p.tnt >> lane) & 1;
    return s;
}

inline Planes
bufKernel(const Planes &a)
{
    return a;
}

inline Planes
notKernel(const Planes &a)
{
    // Negation swaps the reachable-value planes; taint is unchanged
    // (an inverter never masks).
    return {a.hi, a.lo, a.tnt};
}

inline Planes
andKernel(const Planes &a, const Planes &b)
{
    // Taint flows from a tainted input unless the other input is an
    // untainted 0 (the controlling value): the partner must be able to
    // be 1 -- either by value (hi) or because it is itself tainted and
    // ranges over {0,1}.
    return {a.lo | b.lo, a.hi & b.hi,
            (a.tnt & (b.hi | b.tnt)) | (b.tnt & (a.hi | a.tnt))};
}

inline Planes
orKernel(const Planes &a, const Planes &b)
{
    // Dual of AND: an untainted 1 is the controlling/masking value.
    return {a.lo & b.lo, a.hi | b.hi,
            (a.tnt & (b.lo | b.tnt)) | (b.tnt & (a.lo | a.tnt))};
}

inline Planes
nandKernel(const Planes &a, const Planes &b)
{
    return notKernel(andKernel(a, b));
}

inline Planes
norKernel(const Planes &a, const Planes &b)
{
    return notKernel(orKernel(a, b));
}

inline Planes
xorKernel(const Planes &a, const Planes &b)
{
    // XOR has no controlling value: any tainted input taints the
    // output unconditionally.
    return {(a.lo & b.lo) | (a.hi & b.hi),
            (a.lo & b.hi) | (a.hi & b.lo), a.tnt | b.tnt};
}

inline Planes
xnorKernel(const Planes &a, const Planes &b)
{
    return notKernel(xorKernel(a, b));
}

/** out = sel ? b : a (operand order matches GateKind::Mux). */
inline Planes
muxKernel(const Planes &sel, const Planes &a, const Planes &b)
{
    Planes o;
    o.lo = (sel.lo & a.lo) | (sel.hi & b.lo);
    o.hi = (sel.lo & a.hi) | (sel.hi & b.hi);
    // A tainted select leaks iff the two data inputs can differ (a
    // tainted data input can always differ); an untainted select
    // forwards the taint of whichever input(s) it can pick.
    const uint64_t differ = (a.lo & b.hi) | (a.hi & b.lo);
    o.tnt = (sel.tnt & (a.tnt | b.tnt | differ)) |
            (~sel.tnt & ((sel.lo & a.tnt) | (sel.hi & b.tnt)));
    return o;
}

/** Dispatch on kind; unused operands are ignored. */
inline Planes
evalKernel(GateKind kind, const Planes &a, const Planes &b,
           const Planes &c)
{
    switch (kind) {
      case GateKind::Buf: return bufKernel(a);
      case GateKind::Not: return notKernel(a);
      case GateKind::And: return andKernel(a, b);
      case GateKind::Nand: return nandKernel(a, b);
      case GateKind::Or: return orKernel(a, b);
      case GateKind::Nor: return norKernel(a, b);
      case GateKind::Xor: return xorKernel(a, b);
      case GateKind::Xnor: return xnorKernel(a, b);
      case GateKind::Mux: return muxKernel(a, b, c);
    }
    return {};
}

/**
 * 64 flip-flops' next state with the Figure-7 reset-taint semantics of
 * dffNext() (logic/ternary.hh). @p rstVal holds each lane's reset
 * value as a bitmask. Derivation mirrors the scalar code: the enable
 * mux first (a tainted enable known 0 does not taint; a tainted
 * enable that can load taints unless D already equals Q), then the
 * reset overlay (asserted reset forces the value and passes only the
 * reset line's taint; a deasserted tainted reset taints unless the
 * output already equals the reset value; an unknown reset merges both
 * outcomes).
 */
inline Planes
dffNextKernel(const Planes &d, const Planes &rst, const Planes &en,
              const Planes &q, uint64_t rstVal)
{
    const uint64_t e1 = en.hi & ~en.lo;
    const uint64_t e0 = en.lo & ~en.hi;
    const uint64_t ex = en.lo & en.hi;
    // Lanes where D and Q hold the same known value: flipping the
    // enable is unobservable there.
    const uint64_t skv = (d.hi & ~d.lo & q.hi & ~q.lo) |
                         (d.lo & ~d.hi & q.lo & ~q.hi);
    const uint64_t enLeak = en.tnt & ~skv;
    const uint64_t nLo = (e1 & d.lo) | (e0 & q.lo) | (ex & (d.lo | q.lo));
    const uint64_t nHi = (e1 & d.hi) | (e0 & q.hi) | (ex & (d.hi | q.hi));
    const uint64_t nT =
        ((e0 | ex) & q.tnt) | ((e1 | ex) & (d.tnt | enLeak));

    const uint64_t r1 = rst.hi & ~rst.lo;
    const uint64_t r0 = rst.lo & ~rst.hi;
    const uint64_t rx = rst.lo & rst.hi;
    // Lanes where the post-enable value already equals the (known)
    // reset value: a tainted-but-deasserted reset cannot leak there.
    const uint64_t eqRv =
        (nHi & ~nLo & rstVal) | (nLo & ~nHi & ~rstVal);
    Planes o;
    o.lo = (r1 & ~rstVal) | (r0 & nLo) | (rx & (nLo | ~rstVal));
    o.hi = (r1 & rstVal) | (r0 & nHi) | (rx & (nHi | rstVal));
    o.tnt = (r1 & rst.tnt) | (r0 & (nT | (rst.tnt & ~eqRv))) |
            (rx & (nT | rst.tnt));
    return o;
}

} // namespace glifs::packed

#endif // GLIFS_SIM_PACKED_KERNELS_HH
