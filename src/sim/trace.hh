/**
 * @file
 * Lightweight per-cycle text tracing of selected nets/buses (used to
 * print Figure-7 style execution listings).
 */

#ifndef GLIFS_SIM_TRACE_HH
#define GLIFS_SIM_TRACE_HH

#include <string>
#include <vector>

#include "sim/signal_state.hh"

namespace glifs
{

/** Records the values of selected signals cycle by cycle. */
class TraceRecorder
{
  public:
    /** Watch a single net under a column label. */
    void watch(const std::string &label, NetId net);

    /** Watch a bus (rendered as a binary string, MSB first). */
    void watchBus(const std::string &label, const std::vector<NetId> &bus);

    /** Capture the current values for one cycle. */
    void capture(uint64_t cycle, const SignalState &state);

    /** Render the whole trace as an aligned table. */
    std::string str() const;

    size_t numRows() const { return rows.size(); }
    void clear() { rows.clear(); }

  private:
    struct Column
    {
        std::string label;
        std::vector<NetId> nets;  ///< single net or a bus (LSB first)
    };

    std::vector<Column> columns;
    std::vector<std::pair<uint64_t, std::vector<std::string>>> rows;
};

} // namespace glifs

#endif // GLIFS_SIM_TRACE_HH
