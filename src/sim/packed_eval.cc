#include "sim/packed_eval.hh"

#include <bit>

namespace glifs
{

using packed::Planes;

PackedEval::PackedEval(const Netlist &nl,
                       const std::vector<EvalStep> &order)
    : cn(compileNetlist(nl, order)),
      numUnits(static_cast<uint32_t>(cn.units.size()))
{
    vlo.assign(cn.planeWords, 0);
    vhi.assign(cn.planeWords, 0);
    vtnt.assign(cn.planeWords, 0);
    unitDirty.assign((cn.units.size() + 63) / 64, 0);
    dffDirty.assign((cn.dffWords.size() + 63) / 64, 0);
    dffNextQ.resize(cn.dffWords.size());
    changedNets.reserve(256);
}

void
PackedEval::importState(const SignalState &sigs)
{
    std::fill(vlo.begin(), vlo.end(), 0);
    std::fill(vhi.begin(), vhi.end(), 0);
    std::fill(vtnt.begin(), vtnt.end(), 0);
    const std::vector<Signal> &nets = sigs.rawNets();
    for (NetId n = 0; n < nets.size(); ++n) {
        const Signal &s = nets[n];
        const uint32_t slot = cn.slotOfNet[n];
        const uint64_t bit = 1ULL << (slot & 63);
        if (s.value != Tern::One)
            vlo[slot >> 6] |= bit;
        if (s.value != Tern::Zero)
            vhi[slot >> 6] |= bit;
        if (s.taint)
            vtnt[slot >> 6] |= bit;
    }
}

void
PackedEval::clearAllDirty()
{
    std::fill(unitDirty.begin(), unitDirty.end(), 0);
    std::fill(dffDirty.begin(), dffDirty.end(), 0);
}

Planes
PackedEval::gather(const OpRange &r) const
{
    Planes p;
    for (const PlaneOp &op : cn.opsOf(r)) {
        if (op.rot & PlaneOp::kBroadcast) {
            const unsigned b = op.rot & 63;
            p.lo |= (0 - ((vlo[op.word] >> b) & 1)) & op.mask;
            p.hi |= (0 - ((vhi[op.word] >> b) & 1)) & op.mask;
            p.tnt |= (0 - ((vtnt[op.word] >> b) & 1)) & op.mask;
        } else {
            p.lo |= std::rotl(vlo[op.word], op.rot) & op.mask;
            p.hi |= std::rotl(vhi[op.word], op.rot) & op.mask;
            p.tnt |= std::rotl(vtnt[op.word], op.rot) & op.mask;
        }
    }
    return p;
}

size_t
PackedEval::storeWord(uint32_t w, uint64_t mask, const Planes &out)
{
    const uint64_t nLo = (vlo[w] & ~mask) | (out.lo & mask);
    const uint64_t nHi = (vhi[w] & ~mask) | (out.hi & mask);
    const uint64_t nTnt = (vtnt[w] & ~mask) | (out.tnt & mask);
    const uint64_t valueDiff = (vlo[w] ^ nLo) | (vhi[w] ^ nHi);
    uint64_t diff = valueDiff | (vtnt[w] ^ nTnt);
    if (!diff)
        return 0;
    vlo[w] = nLo;
    vhi[w] = nHi;
    vtnt[w] = nTnt;
    const uint32_t base = w << 6;
    while (diff) {
        changedNets.push_back(
            cn.slotNet[base +
                       static_cast<uint32_t>(std::countr_zero(diff))]);
        diff &= diff - 1;
    }
    return std::popcount(valueDiff);
}

size_t
PackedEval::runBatch(uint32_t batch)
{
    const PackedBatch &pb = cn.batches[batch];
    Planes in[3];
    for (unsigned s = 0; s < pb.arity; ++s)
        in[s] = gather(pb.gather[s]);
    const Planes out = packed::evalKernel(pb.kind, in[0], in[1], in[2]);
    return storeWord(pb.outWord, pb.laneMask, out);
}

void
PackedEval::computeDffWord(uint32_t i)
{
    const DffWord &dw = cn.dffWords[i];
    const Planes q = {vlo[dw.qWord], vhi[dw.qWord], vtnt[dw.qWord]};
    dffNextQ[i] = packed::dffNextKernel(gather(dw.gatherD),
                                        gather(dw.gatherRst),
                                        gather(dw.gatherEn), q,
                                        dw.rstVal);
}

size_t
PackedEval::commitDffWord(uint32_t i)
{
    const DffWord &dw = cn.dffWords[i];
    return storeWord(dw.qWord, dw.laneMask, dffNextQ[i]);
}

} // namespace glifs
