/**
 * @file
 * Cycle-accurate gate-level simulator with GLIFT taint propagation.
 *
 * The same engine serves two roles:
 *  - concrete simulation (all inputs known) for functional testing,
 *    cycle counting and energy measurement; and
 *  - symbolic simulation (X inputs) as the single-cycle step primitive
 *    of the paper's input-independent taint tracking (Algorithm 1).
 */

#ifndef GLIFS_SIM_SIMULATOR_HH
#define GLIFS_SIM_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "netlist/levelize.hh"
#include "netlist/memory_array.hh"
#include "netlist/netlist.hh"
#include "sim/signal_state.hh"
#include "sim/toggle_stats.hh"

namespace glifs
{

/**
 * Gate-level cycle simulator. The netlist must outlive the simulator.
 */
class Simulator
{
  public:
    explicit Simulator(const Netlist &nl);

    const Netlist &netlist() const { return nl; }
    SignalState &state() { return sigs; }
    const SignalState &state() const { return sigs; }

    /** Replace the whole simulation state (used by symbolic restore). */
    void setState(const SignalState &s) { sigs = s; }
    void setState(SignalState &&s) { sigs = std::move(s); }

    /** Drive a primary input (or any undriven net). */
    void setInput(NetId net, const Signal &s) { sigs.setNet(net, s); }

    /** Current value of any net (after evalComb() for comb nets). */
    Signal netValue(NetId net) const { return sigs.net(net); }

    /**
     * Settle all combinational logic and memory read ports for the
     * current cycle, in levelized order.
     */
    void evalComb();

    /**
     * Advance one clock edge: latch every flip-flop (with the Figure-7
     * reset-taint semantics) and commit memory write ports.
     * evalComb() must have been called for the cycle.
     */
    void clockEdge();

    /** evalComb() + clockEdge(). */
    void
    step()
    {
        evalComb();
        clockEdge();
    }

    uint64_t cycle() const { return cycleCount; }
    void resetCycleCount() { cycleCount = 0; }

    /** Enable per-gate toggle counting (for the energy model). */
    void enableToggleStats(bool on) { togglesOn = on; }
    const ToggleStats &toggleStats() const { return toggles; }
    ToggleStats &toggleStats() { return toggles; }

  private:
    const Netlist &nl;
    std::vector<EvalStep> order;
    SignalState sigs;
    uint64_t cycleCount = 0;
    bool togglesOn = false;
    ToggleStats toggles;

    void evalMemRead(MemId m);
};

} // namespace glifs

#endif // GLIFS_SIM_SIMULATOR_HH
