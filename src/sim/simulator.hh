/**
 * @file
 * Cycle-accurate gate-level simulator with GLIFT taint propagation.
 *
 * The same engine serves two roles:
 *  - concrete simulation (all inputs known) for functional testing,
 *    cycle counting and energy measurement; and
 *  - symbolic simulation (X inputs) as the single-cycle step primitive
 *    of the paper's input-independent taint tracking (Algorithm 1).
 *
 * Scheduling is event-driven by default (DESIGN.md "Simulator
 * scheduling"): a precomputed fanout index maps every changed net to
 * the combinational gates and memory read ports it feeds, and
 * evalComb() re-evaluates only those, draining per-level worklists in
 * dependency order. Because every gate is a pure function of its input
 * signals, a node none of whose inputs changed cannot change its
 * output, so the event-driven settle is bit-identical (values and
 * taints) to the full levelized sweep -- which remains available via
 * setFullSweepMode() or the GLIFS_SIM_FULL_SWEEP=1 environment
 * variable for A/B measurement and differential testing.
 *
 * Evaluation itself is compiled by default (DESIGN.md "Compiled
 * evaluation"): the netlist is lowered once into bit-packed plane
 * programs (netlist/compile.hh) and settles run up to 64 gates per
 * bitwise kernel application, with dirty tracking over compiled units
 * instead of individual nodes. GLIFS_SIM_INTERP=1 (or
 * setBackend(SimBackend::Interp)) falls back to the per-signal table
 * interpreter; sweep mode and backend are orthogonal axes.
 */

#ifndef GLIFS_SIM_SIMULATOR_HH
#define GLIFS_SIM_SIMULATOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/fanout.hh"
#include "netlist/levelize.hh"
#include "netlist/memory_array.hh"
#include "netlist/netlist.hh"
#include "sim/signal_state.hh"
#include "sim/toggle_stats.hh"

namespace glifs
{

class GliftTables;
class PackedEval;

/**
 * Evaluation backend. Packed (the default) runs the netlist compiled
 * into bit-parallel plane kernels (netlist/compile.hh), 64 same-kind
 * gates per word op; Interp is the one-signal-at-a-time table
 * interpreter, kept as the bisection escape hatch
 * (GLIFS_SIM_INTERP=1) and differential-test oracle. Both produce
 * bit-identical values and taints on every net.
 */
enum class SimBackend : uint8_t { Packed, Interp };

/**
 * Gate-level cycle simulator. The netlist must outlive the simulator.
 */
class Simulator
{
  public:
    explicit Simulator(const Netlist &nl);
    Simulator(Simulator &&) noexcept;
    ~Simulator();

    const Netlist &netlist() const { return nl; }
    SignalState &state() { return sigs; }
    const SignalState &state() const { return sigs; }

    /** Replace the whole simulation state (used by symbolic restore). */
    void
    setState(const SignalState &s)
    {
        sigs = s;
        markAllDirty();
    }

    void
    setState(SignalState &&s)
    {
        sigs = std::move(s);
        markAllDirty();
    }

    /** Drive a primary input (or any undriven net). */
    void setInput(NetId net, const Signal &s) { setNet(net, s); }

    /**
     * Tracked override of any net. A change marks the net's fanout
     * dirty; if a combinational gate or memory read port drives the
     * net, that driver is marked too, so the override cannot outlive
     * the next evalComb() (full-sweep parity: the sweep recomputes
     * every driven net each settle).
     */
    void setNet(NetId net, const Signal &s);

    /**
     * Store a concrete word into a memory block, keeping the read
     * port's dirty tracking consistent. External writers must use this
     * (or markMemDirty()/markAllDirty()) instead of mutating
     * state().memCells() behind the scheduler's back.
     */
    void setMemWord(MemId mem, size_t word, uint64_t value,
                    bool taint = false);

    /** Mark a memory's read port for re-evaluation (cells changed). */
    void markMemDirty(MemId mem);

    /**
     * Invalidate the whole dirty set: the next evalComb() performs a
     * full levelized sweep. Required after any bulk mutation of the
     * SignalState that bypasses the tracked setters (symbolic state
     * restore, checkpoint resume, *-logic saturation).
     */
    void
    markAllDirty()
    {
        allDirty = true;
        // The packed planes may no longer mirror the SignalState;
        // re-import before the next packed pass.
        planesValid = false;
    }

    /** Full-sweep escape hatch (also GLIFS_SIM_FULL_SWEEP=1). */
    bool fullSweepMode() const { return fullSweep; }
    void setFullSweepMode(bool on);

    /** Backend selection (default Packed; also GLIFS_SIM_INTERP=1). */
    SimBackend backend() const { return backendSel; }
    void setBackend(SimBackend b);

    /** Current value of any net (after evalComb() for comb nets). */
    Signal netValue(NetId net) const { return sigs.net(net); }

    /**
     * Settle all combinational logic and memory read ports for the
     * current cycle: only dirty nodes in event-driven mode, the whole
     * levelized schedule in full-sweep mode or after markAllDirty().
     */
    void evalComb();

    /**
     * Advance one clock edge: latch every flip-flop (with the Figure-7
     * reset-taint semantics) and commit memory write ports. Flip-flops
     * and memories whose outputs actually changed seed the next
     * cycle's dirty set. evalComb() must have been called for the
     * cycle.
     */
    void clockEdge();

    /** evalComb() + clockEdge(). */
    void
    step()
    {
        evalComb();
        clockEdge();
    }

    uint64_t cycle() const { return cycleCount; }
    void resetCycleCount() { cycleCount = 0; }

    /** Enable per-gate toggle counting (for the energy model). */
    void enableToggleStats(bool on) { togglesOn = on; }
    const ToggleStats &toggleStats() const { return toggles; }
    ToggleStats &toggleStats() { return toggles; }

  private:
    const Netlist &nl;
    std::vector<EvalStep> order;
    FanoutIndex fanout;
    SignalState sigs;
    uint64_t cycleCount = 0;
    bool togglesOn = false;
    ToggleStats toggles;

    // --- event-driven scheduler state --------------------------------
    bool fullSweep = false;  ///< escape hatch: always sweep everything
    bool allDirty = true;    ///< next settle must sweep everything

    // --- packed backend ----------------------------------------------
    SimBackend backendSel = SimBackend::Packed;
    /** Compiled program + planes; created on first Packed selection. */
    std::unique_ptr<PackedEval> packed;
    /** Planes mirror the SignalState net-for-net (else re-import). */
    bool planesValid = false;
    /** Node-space dirty bitset (deduplicates worklist inserts). */
    std::vector<uint64_t> dirtyWords;
    /** Per-level worklists of dirty nodes, drained in ascending order. */
    std::vector<std::vector<uint32_t>> levelWork;

    // --- reusable scratch buffers (no per-call heap allocation) ------
    std::vector<Signal> addrScratch;
    std::vector<Signal> dataScratch;
    std::vector<Signal> dffNextScratch;

    /** One memory write port's pending edge update. */
    struct PendingWrite
    {
        MemAddr addr;
        Signal we;
        std::vector<Signal> data;
    };
    std::vector<PendingWrite> writeScratch;  ///< per-memory slot
    std::vector<MemId> activeWrites;         ///< memories written this edge
    std::vector<uint32_t> dffRunScratch;     ///< dff words latching this edge

    void markNodeDirty(uint32_t node);
    void markNetFanoutDirty(NetId net);

    /** Evaluate one gate; propagate into the dirty set iff @p track. */
    void evalGate(GateId g, const GliftTables &glift, bool track);
    void evalMemRead(MemId m, bool track);

    /** The full levelized sweep (allDirty / full-sweep mode). */
    void evalFull();

    // --- packed-backend paths ----------------------------------------
    void evalCombPacked();
    void clockEdgePacked();
    /** Run one compiled unit; mirrors changed nets into sigs. */
    void runUnitPacked(uint32_t unit, bool track, size_t &evaluated,
                       size_t &wordEvals);
    /** Memory read port with plane mirroring + unit marking. */
    void evalMemReadPacked(MemId m, bool track);
    /** Stage all memory write ports (shared by both edge paths). */
    void stageMemWrites();
};

} // namespace glifs

#endif // GLIFS_SIM_SIMULATOR_HH
