#include "sim/toggle_stats.hh"

namespace glifs
{

void
ToggleStats::clear()
{
    combToggles.fill(0);
    dffToggles = 0;
    memWrites = 0;
    cycles = 0;
}

uint64_t
ToggleStats::totalCombToggles() const
{
    uint64_t n = 0;
    for (uint64_t c : combToggles)
        n += c;
    return n;
}

} // namespace glifs
