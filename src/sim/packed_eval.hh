/**
 * @file
 * Execution engine for the compiled bit-packed netlist program.
 *
 * Holds the plane arrays (lo / hi / tnt over the compiler's permuted
 * slot space -- see netlist/compile.hh), the unit- and dff-word dirty
 * bitsets and the staged flip-flop next states, and executes the
 * CompiledNetlist. The Simulator drives it: it decides which units
 * run (event-driven drain or full pass), interprets the memory
 * read/write ports, and mirrors every changed net back into the
 * scalar SignalState so the rest of the system keeps a single
 * readable source of truth.
 *
 * Coherence contract: whenever the planes are valid (the Simulator's
 * planesValid flag), every net's slot equals sigs.net(net). The run
 * methods report the nets they changed through changedNets so the
 * caller can mirror them; writes coming from outside go through
 * setNetPlanes().
 */

#ifndef GLIFS_SIM_PACKED_EVAL_HH
#define GLIFS_SIM_PACKED_EVAL_HH

#include <cstdint>
#include <vector>

#include "netlist/compile.hh"
#include "sim/packed_kernels.hh"
#include "sim/signal_state.hh"

namespace glifs
{

/** Plane storage + executor for one compiled netlist. */
class PackedEval
{
  public:
    PackedEval(const Netlist &nl, const std::vector<EvalStep> &order);

    const CompiledNetlist &program() const { return cn; }

    /** Rebuild every net's slot from @p sigs (planes become valid). */
    void importState(const SignalState &sigs);

    /** Overwrite one net's slot (planes must be valid). */
    void
    setNetPlanes(NetId net, const Signal &s)
    {
        const uint32_t slot = cn.slotOfNet[net];
        const size_t w = slot >> 6;
        const uint64_t bit = 1ULL << (slot & 63);
        vlo[w] = (vlo[w] & ~bit) | (s.value != Tern::One ? bit : 0);
        vhi[w] = (vhi[w] & ~bit) | (s.value != Tern::Zero ? bit : 0);
        vtnt[w] = (vtnt[w] & ~bit) | (s.taint ? bit : 0);
    }

    /** Decode one net's slot back into a Signal. */
    Signal
    signalAt(NetId net) const
    {
        const uint32_t slot = cn.slotOfNet[net];
        const unsigned lane = slot & 63;
        const bool lo = (vlo[slot >> 6] >> lane) & 1;
        const bool hi = (vhi[slot >> 6] >> lane) & 1;
        return {lo ? (hi ? Tern::X : Tern::Zero) : Tern::One,
                static_cast<bool>((vtnt[slot >> 6] >> lane) & 1)};
    }

    // --- dirty tracking ----------------------------------------------
    /** Mark one CSR target: a unit, or units.size()+i for dff word i. */
    void
    markTarget(uint32_t t)
    {
        if (t < numUnits)
            unitDirty[t >> 6] |= 1ULL << (t & 63);
        else
            dffDirty[(t - numUnits) >> 6] |=
                1ULL << ((t - numUnits) & 63);
    }

    void
    markConsumersDirty(NetId net)
    {
        for (uint32_t t : cn.consumersOf(net))
            markTarget(t);
    }

    /** Mark the unit driving @p net, if any (override recompute). */
    void
    markProducerDirty(NetId net)
    {
        const int32_t p = cn.producerUnit[net];
        if (p >= 0)
            markTarget(static_cast<uint32_t>(p));
    }

    void markMemUnitDirty(MemId m) { markTarget(cn.unitOfMem[m]); }

    void clearAllDirty();

    /** Arm every dff word for the next edge (untracked full settle). */
    void
    markAllDffDirty()
    {
        for (uint32_t i = 0; i < cn.dffWords.size(); ++i)
            markTarget(numUnits + i);
    }

    std::vector<uint64_t> &unitDirtyWords() { return unitDirty; }
    std::vector<uint64_t> &dffDirtyWords() { return dffDirty; }

    // --- execution ---------------------------------------------------
    /**
     * Gather, apply the kernel and store one batch's output word.
     * Output nets whose signal changed are appended to changedNets;
     * the return value is the number of lanes whose *value* toggled
     * (for the energy model's per-kind toggle counters).
     */
    size_t runBatch(uint32_t batch);

    /**
     * Stage dff word @p i's next state from the current (settled)
     * planes. Nothing is written back until commitDffWord(), so the
     * clock edge stays atomic exactly like the interpreted path.
     */
    void computeDffWord(uint32_t i);

    /**
     * Write dff word @p i's staged next state into its Q word.
     * Changed Q nets are appended to changedNets; returns the number
     * of value toggles.
     */
    size_t commitDffWord(uint32_t i);

    /** Change report of the last runBatch()/commitDffWord() calls. */
    std::vector<NetId> changedNets;

  private:
    CompiledNetlist cn;
    uint32_t numUnits = 0;

    // Plane-slot storage; bit b of word s>>6 is slot s.
    std::vector<uint64_t> vlo;
    std::vector<uint64_t> vhi;
    std::vector<uint64_t> vtnt;

    std::vector<uint64_t> unitDirty;
    std::vector<uint64_t> dffDirty;

    /** Staged next-state per DffWord (valid between compute/commit). */
    std::vector<packed::Planes> dffNextQ;

    packed::Planes gather(const OpRange &r) const;

    /**
     * Replace the bits of word @p w under @p mask with @p out, with
     * change detection: changed nets are appended to changedNets.
     * Returns the value-toggle count.
     */
    size_t storeWord(uint32_t w, uint64_t mask,
                     const packed::Planes &out);
};

} // namespace glifs

#endif // GLIFS_SIM_PACKED_EVAL_HH
