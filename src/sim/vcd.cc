#include "sim/vcd.hh"

#include <fstream>
#include <sstream>

#include "base/logging.hh"

namespace glifs
{

std::string
VcdWriter::idFor(size_t index, bool taint)
{
    // Printable VCD identifier codes: base-94 over '!'..'~'.
    std::string id;
    size_t n = index * 2 + (taint ? 1 : 0);
    do {
        id.push_back(static_cast<char>('!' + n % 94));
        n /= 94;
    } while (n != 0);
    return id;
}

void
VcdWriter::watch(const std::string &name, NetId net)
{
    watchBus(name, {net});
}

void
VcdWriter::watchBus(const std::string &name,
                    const std::vector<NetId> &bus)
{
    GLIFS_ASSERT(samples.empty(), "watch before the first sample");
    Watched w;
    w.name = name;
    w.nets = bus;
    w.id = idFor(signals.size(), false);
    w.taintId = idFor(signals.size(), true);
    signals.push_back(std::move(w));
    last.resize(signals.size());
}

void
VcdWriter::sample(uint64_t cycle, const SignalState &state)
{
    Sample s;
    s.cycle = cycle;
    s.values.resize(signals.size());
    for (size_t i = 0; i < signals.size(); ++i) {
        const Watched &w = signals[i];
        std::string bits;
        std::string taint;
        for (auto it = w.nets.rbegin(); it != w.nets.rend(); ++it) {
            Signal sig = state.net(*it);
            bits.push_back(sig.known() ? (sig.asBool() ? '1' : '0')
                                       : 'x');
            taint.push_back(sig.taint ? '1' : '0');
        }
        if (bits != last[i].first || taint != last[i].second) {
            s.values[i] = {bits, taint};
            last[i] = {bits, taint};
        }
    }
    samples.push_back(std::move(s));
}

std::string
VcdWriter::str() const
{
    std::ostringstream oss;
    oss << "$timescale 1ns $end\n";
    oss << "$scope module glifs $end\n";
    for (const Watched &w : signals) {
        oss << "$var wire " << w.nets.size() << " " << w.id << " "
            << w.name << " $end\n";
        oss << "$var wire " << w.nets.size() << " " << w.taintId << " "
            << w.name << "_taint $end\n";
    }
    oss << "$upscope $end\n$enddefinitions $end\n";

    for (const Sample &s : samples) {
        oss << "#" << s.cycle << "\n";
        for (size_t i = 0; i < signals.size(); ++i) {
            const auto &[bits, taint] = s.values[i];
            if (bits.empty())
                continue;
            if (signals[i].nets.size() == 1) {
                oss << bits << signals[i].id << "\n";
                oss << taint << signals[i].taintId << "\n";
            } else {
                oss << "b" << bits << " " << signals[i].id << "\n";
                oss << "b" << taint << " " << signals[i].taintId
                    << "\n";
            }
        }
    }
    return oss.str();
}

void
VcdWriter::write(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        GLIFS_FATAL("cannot write ", path);
    out << str();
}

} // namespace glifs
