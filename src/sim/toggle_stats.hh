/**
 * @file
 * Switching-activity counters: how often each gate's output toggled.
 * Feeds the energy model (src/power).
 */

#ifndef GLIFS_SIM_TOGGLE_STATS_HH
#define GLIFS_SIM_TOGGLE_STATS_HH

#include <array>
#include <cstdint>

#include "logic/ternary.hh"

namespace glifs
{

/** Per-kind toggle counters plus flip-flop and memory activity. */
struct ToggleStats
{
    std::array<uint64_t, 9> combToggles{};  ///< indexed by GateKind
    uint64_t dffToggles = 0;
    uint64_t memWrites = 0;
    uint64_t cycles = 0;

    void clear();
    uint64_t totalCombToggles() const;
};

} // namespace glifs

#endif // GLIFS_SIM_TOGGLE_STATS_HH
