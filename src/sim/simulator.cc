#include "sim/simulator.hh"

#include <bit>
#include <cstdlib>

#include "base/logging.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "logic/glift.hh"
#include "sim/packed_eval.hh"

namespace glifs
{

namespace
{

/** Hot-loop counters; one or two integer adds per settle/edge. */
struct SimStats
{
    stats::Scalar combEvals{"sim.comb_evals",
                            "combinational settle passes"};
    stats::Scalar gateEvals{"sim.gate_evals",
                            "individual gate/step evaluations"};
    stats::Scalar gateEvalsSkipped{
        "sim.gate_evals_skipped",
        "scheduled evaluations skipped as clean (event-driven)"};
    stats::Scalar clockEdges{"sim.clock_edges", "clock edges latched"};
    stats::Scalar memReadEvals{"sim.mem_read_evals",
                               "memory read-port evaluations"};
    stats::Scalar memWriteCommits{"sim.mem_write_commits",
                                  "memory write-port commits"};
    stats::Scalar packedWordEvals{
        "sim.packed_word_evals",
        "bit-packed kernel word applications (packed backend)"};
    stats::Gauge backend{"sim.backend",
                         "active backend: 1 = packed, 0 = interpreted"};
    stats::Formula dirtyRatio{
        "sim.dirty_ratio",
        "fraction of scheduled evaluations actually run",
        [] {
            SimStats &s = simStats();
            const double run =
                static_cast<double>(s.gateEvals.value());
            const double total =
                run + static_cast<double>(
                          s.gateEvalsSkipped.value());
            return total == 0.0 ? 1.0 : run / total;
        }};

    static SimStats &simStats();
};

SimStats &
SimStats::simStats()
{
    static SimStats s;
    return s;
}

SimStats &
simStats()
{
    return SimStats::simStats();
}

/** True iff env var @p name is set to anything but "" or "0". */
bool
envFlag(const char *name)
{
    const char *e = std::getenv(name);
    return e && *e && !(e[0] == '0' && e[1] == '\0');
}

/** GLIFS_SIM_FULL_SWEEP=1 forces full sweeps. */
bool
envFullSweep()
{
    return envFlag("GLIFS_SIM_FULL_SWEEP");
}

/** GLIFS_SIM_INTERP=1 selects the interpreted backend. */
bool
envInterp()
{
    return envFlag("GLIFS_SIM_INTERP");
}

} // namespace

Simulator::Simulator(const Netlist &netlist)
    : nl(netlist), order(levelize(netlist)),
      fanout(buildFanoutIndex(netlist, order)), sigs(netlist),
      fullSweep(envFullSweep()),
      backendSel(envInterp() ? SimBackend::Interp : SimBackend::Packed)
{
    dirtyWords.assign((fanout.numNodes() + 63) / 64, 0);
    levelWork.resize(fanout.numLevels);
    dffNextScratch.reserve(nl.dffs().size());
    writeScratch.resize(nl.numMemories());
    for (MemId m = 0; m < nl.numMemories(); ++m)
        writeScratch[m].data.resize(nl.memory(m).width);
    activeWrites.reserve(nl.numMemories());
    if (backendSel == SimBackend::Packed)
        packed = std::make_unique<PackedEval>(nl, order);
    simStats().backend.set(backendSel == SimBackend::Packed ? 1 : 0);
}

Simulator::Simulator(Simulator &&) noexcept = default;

Simulator::~Simulator() = default;

void
Simulator::setBackend(SimBackend b)
{
    if (b == backendSel)
        return;
    backendSel = b;
    if (b == SimBackend::Packed && !packed)
        packed = std::make_unique<PackedEval>(nl, order);
    // Neither backend's dirty tracking covered changes made while the
    // other one was active; start from a clean slate.
    markAllDirty();
    simStats().backend.set(b == SimBackend::Packed ? 1 : 0);
}

void
Simulator::markNodeDirty(uint32_t node)
{
    uint64_t &w = dirtyWords[node >> 6];
    const uint64_t bit = 1ULL << (node & 63);
    if (w & bit)
        return;
    w |= bit;
    levelWork[fanout.levelOf[node]].push_back(node);
}

void
Simulator::markNetFanoutDirty(NetId net)
{
    for (uint32_t c : fanout.consumersOf(net))
        markNodeDirty(c);
}

void
Simulator::setNet(NetId net, const Signal &s)
{
    if (sigs.net(net) == s)
        return;
    sigs.setNet(net, s);
    // Keep the planes coherent whenever they are valid, even while
    // allDirty/fullSweep suppress dirty tracking (e.g. an override
    // between a stale-plane import and the next settle).
    if (backendSel == SimBackend::Packed && planesValid)
        packed->setNetPlanes(net, s);
    if (allDirty || fullSweep)
        return;
    // A driven net must be recomputed from its driver at the next
    // settle, so the override behaves exactly like under a full sweep
    // (visible to the clock edge, gone after the next evalComb()).
    if (backendSel == SimBackend::Packed) {
        packed->markConsumersDirty(net);
        packed->markProducerDirty(net);
        return;
    }
    markNetFanoutDirty(net);
    if (nl.memDriven(net)) {
        markNodeDirty(fanout.memNode(nl.memDriver(net)));
    } else {
        GateId d = nl.driverOf(net);
        if (d != static_cast<GateId>(-1) &&
            nl.gate(d).type == GateType::Comb) {
            markNodeDirty(fanout.gateNode(d));
        }
    }
}

void
Simulator::setMemWord(MemId mem, size_t word, uint64_t value, bool taint)
{
    sigs.setMemWord(nl, mem, word, value, taint);
    markMemDirty(mem);
}

void
Simulator::markMemDirty(MemId mem)
{
    if (allDirty || fullSweep)
        return;
    if (backendSel == SimBackend::Packed)
        packed->markMemUnitDirty(mem);
    else
        markNodeDirty(fanout.memNode(mem));
}

void
Simulator::setFullSweepMode(bool on)
{
    fullSweep = on;
    // Leaving full-sweep mode: changes made while it was on were not
    // tracked, so nothing short of a full sweep is known clean.
    if (!on)
        markAllDirty();
}

void
Simulator::evalGate(GateId gid, const GliftTables &glift, bool track)
{
    const Gate &g = nl.gate(gid);
    Signal in[3];
    const unsigned arity = gateArity(g.kind);
    for (unsigned i = 0; i < arity; ++i)
        in[i] = sigs.net(g.in[i]);
    const Signal out = glift.eval(g.kind, in);
    const Signal prev = sigs.net(g.out);
    if (out == prev)
        return;
    if (togglesOn && prev.value != out.value)
        ++toggles.combToggles[static_cast<size_t>(g.kind)];
    sigs.setNet(g.out, out);
    if (track)
        markNetFanoutDirty(g.out);
}

void
Simulator::evalMemRead(MemId m, bool track)
{
    const MemoryDecl &decl = nl.memory(m);
    addrScratch.resize(decl.readAddr.size());
    for (size_t i = 0; i < addrScratch.size(); ++i)
        addrScratch[i] = sigs.net(decl.readAddr[i]);

    MemAddr ma =
        decodeMemAddr(addrScratch, decl.words, decl.maxUnknownAddrBits);
    if (!decl.addrTaintsRead)
        ma.tainted = false;
    dataScratch.resize(decl.width);
    memoryRead(sigs.memCells(m), decl.width, decl.words, ma,
               dataScratch);
    for (unsigned b = 0; b < decl.width; ++b) {
        const NetId rd = decl.readData[b];
        if (sigs.net(rd) == dataScratch[b])
            continue;
        sigs.setNet(rd, dataScratch[b]);
        if (track)
            markNetFanoutDirty(rd);
    }
}

void
Simulator::evalFull()
{
    SimStats &st = simStats();
    st.gateEvals += order.size();
    const GliftTables &glift = GliftTables::instance();
    for (const EvalStep &step : order) {
        if (step.kind == EvalStep::Kind::MemRead) {
            ++st.memReadEvals;
            evalMemRead(step.index, /*track=*/false);
            continue;
        }
        evalGate(step.index, glift, /*track=*/false);
    }
    // Every node was just recomputed: the pending dirty set is moot.
    for (std::vector<uint32_t> &bucket : levelWork) {
        for (uint32_t node : bucket)
            dirtyWords[node >> 6] &= ~(1ULL << (node & 63));
        bucket.clear();
    }
    allDirty = false;
}

void
Simulator::evalComb()
{
    SimStats &st = simStats();
    ++st.combEvals;
    if (backendSel == SimBackend::Packed) {
        evalCombPacked();
        return;
    }
    if (fullSweep || allDirty) {
        evalFull();
        return;
    }

    const GliftTables &glift = GliftTables::instance();
    size_t evaluated = 0;
    // Drain levels in ascending order. A node's consumers all sit on
    // strictly higher levels, so a bucket never grows while it drains
    // and each node runs at most once per settle.
    for (std::vector<uint32_t> &bucket : levelWork) {
        for (size_t i = 0; i < bucket.size(); ++i) {
            const uint32_t node = bucket[i];
            dirtyWords[node >> 6] &= ~(1ULL << (node & 63));
            ++evaluated;
            if (fanout.isMemNode(node)) {
                ++st.memReadEvals;
                evalMemRead(fanout.memOf(node), /*track=*/true);
            } else {
                evalGate(node, glift, /*track=*/true);
            }
        }
        bucket.clear();
    }
    st.gateEvals += evaluated;
    st.gateEvalsSkipped += order.size() - evaluated;

    trace::Tracer &tr = trace::Tracer::instance();
    if (tr.enabled()) {
        tr.counter("sim", "dirty_nodes",
                   static_cast<double>(evaluated));
    }
}

void
Simulator::stageMemWrites()
{
    activeWrites.clear();
    for (MemId m = 0; m < nl.numMemories(); ++m) {
        const MemoryDecl &decl = nl.memory(m);
        if (!decl.writable)
            continue;
        PendingWrite &w = writeScratch[m];
        w.we = sigs.net(decl.writeEn);
        if (w.we.known() && !w.we.asBool() && !w.we.taint)
            continue;
        addrScratch.resize(decl.writeAddr.size());
        for (size_t i = 0; i < addrScratch.size(); ++i)
            addrScratch[i] = sigs.net(decl.writeAddr[i]);
        w.addr = decodeMemAddr(addrScratch, decl.words,
                               decl.maxUnknownAddrBits);
        for (unsigned b = 0; b < decl.width; ++b)
            w.data[b] = sigs.net(decl.writeData[b]);
        activeWrites.push_back(m);
    }
}

void
Simulator::clockEdge()
{
    if (backendSel == SimBackend::Packed) {
        clockEdgePacked();
        return;
    }
    const bool track = !fullSweep && !allDirty;

    // Compute all flip-flop next states from the settled nets...
    dffNextScratch.clear();
    for (GateId gid : nl.dffs()) {
        const Gate &g = nl.gate(gid);
        dffNextScratch.push_back(
            dffNext(sigs.net(g.in[0]), sigs.net(g.in[1]),
                    sigs.net(g.in[2]), sigs.net(g.out), g.rstVal));
    }

    // ... and all memory write-port updates, before committing
    // anything, so the edge is atomic.
    stageMemWrites();

    // Commit. A flip-flop whose output actually changed (value or
    // taint) seeds the next cycle's dirty set through its fanout.
    size_t i = 0;
    for (GateId gid : nl.dffs()) {
        const Gate &g = nl.gate(gid);
        const Signal prev = sigs.net(g.out);
        const Signal &next = dffNextScratch[i];
        ++i;
        if (prev == next)
            continue;
        if (togglesOn && prev.value != next.value)
            ++toggles.dffToggles;
        sigs.setNet(g.out, next);
        if (track)
            markNetFanoutDirty(g.out);
    }
    SimStats &st = simStats();
    ++st.clockEdges;
    for (MemId m : activeWrites) {
        const MemoryDecl &decl = nl.memory(m);
        const PendingWrite &w = writeScratch[m];
        memoryWrite(sigs.memCells(m), decl.width, decl.words, w.addr,
                    w.we, w.data);
        ++st.memWriteCommits;
        if (togglesOn)
            ++toggles.memWrites;
        // Cells may have changed: the read port must re-evaluate.
        if (track)
            markNodeDirty(fanout.memNode(m));
    }

    ++cycleCount;
    if (togglesOn)
        ++toggles.cycles;
}

// ---------------------------------------------------------------------
// Packed backend
// ---------------------------------------------------------------------

void
Simulator::runUnitPacked(uint32_t unit, bool track, size_t &evaluated,
                         size_t &wordEvals)
{
    PackedEval &pe = *packed;
    const EvalUnit &u = pe.program().units[unit];
    if (u.kind == EvalUnit::Kind::MemRead) {
        ++simStats().memReadEvals;
        evalMemReadPacked(u.index, track);
        ++evaluated;
        return;
    }
    const PackedBatch &pb = pe.program().batches[u.index];
    pe.changedNets.clear();
    const size_t tog = pe.runBatch(u.index);
    ++wordEvals;
    evaluated += pb.lanes;
    if (togglesOn)
        toggles.combToggles[static_cast<size_t>(pb.kind)] += tog;
    // Mirror into the scalar state (the readable source of truth) and
    // propagate through the compiled consumer index.
    for (NetId n : pe.changedNets) {
        sigs.setNet(n, pe.signalAt(n));
        if (track)
            pe.markConsumersDirty(n);
    }
}

void
Simulator::evalMemReadPacked(MemId m, bool track)
{
    PackedEval &pe = *packed;
    const MemoryDecl &decl = nl.memory(m);
    addrScratch.resize(decl.readAddr.size());
    for (size_t i = 0; i < addrScratch.size(); ++i)
        addrScratch[i] = sigs.net(decl.readAddr[i]);

    MemAddr ma =
        decodeMemAddr(addrScratch, decl.words, decl.maxUnknownAddrBits);
    if (!decl.addrTaintsRead)
        ma.tainted = false;
    dataScratch.resize(decl.width);
    memoryRead(sigs.memCells(m), decl.width, decl.words, ma,
               dataScratch);
    for (unsigned b = 0; b < decl.width; ++b) {
        const NetId rd = decl.readData[b];
        if (sigs.net(rd) == dataScratch[b])
            continue;
        sigs.setNet(rd, dataScratch[b]);
        pe.setNetPlanes(rd, dataScratch[b]);
        if (track)
            pe.markConsumersDirty(rd);
    }
}

void
Simulator::evalCombPacked()
{
    SimStats &st = simStats();
    PackedEval &pe = *packed;
    if (!planesValid) {
        pe.importState(sigs);
        planesValid = true;
    }

    size_t evaluated = 0;  // gate lanes + mem read ports actually run
    size_t wordEvals = 0;
    const size_t numUnits = pe.program().units.size();
    if (fullSweep || allDirty) {
        pe.clearAllDirty();
        for (uint32_t u = 0; u < numUnits; ++u)
            runUnitPacked(u, /*track=*/false, evaluated, wordEvals);
        // The settle recomputed every comb net without tracking, so
        // the next edge must consider every flip-flop.
        pe.markAllDffDirty();
        // Everything was just recomputed: pending interp-side dirty
        // state is moot too (mirrors evalFull()).
        for (std::vector<uint32_t> &bucket : levelWork) {
            for (uint32_t node : bucket)
                dirtyWords[node >> 6] &= ~(1ULL << (node & 63));
            bucket.clear();
        }
        allDirty = false;
    } else {
        // Drain dirty units in ascending index order. Compilation
        // guarantees every consumer unit has a strictly higher index
        // than its producer, so marks land only ahead of the cursor
        // and each unit runs at most once per settle.
        std::vector<uint64_t> &ud = pe.unitDirtyWords();
        for (size_t w = 0; w < ud.size(); ++w) {
            while (uint64_t bits = ud[w]) {
                const unsigned b =
                    static_cast<unsigned>(std::countr_zero(bits));
                ud[w] &= ~(1ULL << b);
                runUnitPacked(static_cast<uint32_t>((w << 6) + b),
                              /*track=*/true, evaluated, wordEvals);
            }
        }
    }
    st.gateEvals += evaluated;
    st.gateEvalsSkipped += order.size() - evaluated;
    st.packedWordEvals += wordEvals;

    trace::Tracer &tr = trace::Tracer::instance();
    if (tr.enabled()) {
        tr.counter("sim", "dirty_nodes",
                   static_cast<double>(evaluated));
    }
}

void
Simulator::clockEdgePacked()
{
    PackedEval &pe = *packed;
    // clockEdge() may legally run while the planes are stale (e.g. a
    // restore + override sequence that never settled); latch from a
    // fresh mirror of the scalar state, exactly what interp reads.
    if (!planesValid) {
        pe.importState(sigs);
        planesValid = true;
    }
    const bool track = !fullSweep && !allDirty;

    // Select the flip-flop words to latch. A word none of whose
    // D/RST/EN/Q nets changed since its last computation latches its
    // own held value again -- skipping it is exact, not approximate.
    dffRunScratch.clear();
    std::vector<uint64_t> &dd = pe.dffDirtyWords();
    if (track) {
        for (size_t w = 0; w < dd.size(); ++w) {
            uint64_t bits = dd[w];
            dd[w] = 0;
            while (bits) {
                dffRunScratch.push_back(static_cast<uint32_t>(
                    (w << 6) +
                    static_cast<unsigned>(std::countr_zero(bits))));
                bits &= bits - 1;
            }
        }
    } else {
        std::fill(dd.begin(), dd.end(), 0);
        for (uint32_t i = 0; i < pe.program().dffWords.size(); ++i)
            dffRunScratch.push_back(i);
    }

    // Stage everything -- flip-flop next states and memory write-port
    // updates -- before committing anything, so the edge is atomic.
    for (uint32_t i : dffRunScratch)
        pe.computeDffWord(i);
    stageMemWrites();

    pe.changedNets.clear();
    size_t tog = 0;
    for (uint32_t i : dffRunScratch)
        tog += pe.commitDffWord(i);
    if (togglesOn)
        toggles.dffToggles += tog;
    // Mirror changed Q nets; their consumers seed the next settle and
    // (through the Q entries of the consumer index) re-arm the dff
    // words that must latch again next edge.
    for (NetId n : pe.changedNets) {
        sigs.setNet(n, pe.signalAt(n));
        if (track)
            pe.markConsumersDirty(n);
    }

    SimStats &st = simStats();
    ++st.clockEdges;
    st.packedWordEvals += dffRunScratch.size();
    for (MemId m : activeWrites) {
        const MemoryDecl &decl = nl.memory(m);
        const PendingWrite &w = writeScratch[m];
        memoryWrite(sigs.memCells(m), decl.width, decl.words, w.addr,
                    w.we, w.data);
        ++st.memWriteCommits;
        if (togglesOn)
            ++toggles.memWrites;
        // Cells may have changed: the read port must re-evaluate.
        if (track)
            pe.markMemUnitDirty(m);
    }

    ++cycleCount;
    if (togglesOn)
        ++toggles.cycles;
}

} // namespace glifs
