#include "sim/simulator.hh"

#include <cstdlib>

#include "base/logging.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "logic/glift.hh"

namespace glifs
{

namespace
{

/** Hot-loop counters; one or two integer adds per settle/edge. */
struct SimStats
{
    stats::Scalar combEvals{"sim.comb_evals",
                            "combinational settle passes"};
    stats::Scalar gateEvals{"sim.gate_evals",
                            "individual gate/step evaluations"};
    stats::Scalar gateEvalsSkipped{
        "sim.gate_evals_skipped",
        "scheduled evaluations skipped as clean (event-driven)"};
    stats::Scalar clockEdges{"sim.clock_edges", "clock edges latched"};
    stats::Scalar memReadEvals{"sim.mem_read_evals",
                               "memory read-port evaluations"};
    stats::Scalar memWriteCommits{"sim.mem_write_commits",
                                  "memory write-port commits"};
    stats::Formula dirtyRatio{
        "sim.dirty_ratio",
        "fraction of scheduled evaluations actually run",
        [] {
            SimStats &s = simStats();
            const double run =
                static_cast<double>(s.gateEvals.value());
            const double total =
                run + static_cast<double>(
                          s.gateEvalsSkipped.value());
            return total == 0.0 ? 1.0 : run / total;
        }};

    static SimStats &simStats();
};

SimStats &
SimStats::simStats()
{
    static SimStats s;
    return s;
}

SimStats &
simStats()
{
    return SimStats::simStats();
}

/** GLIFS_SIM_FULL_SWEEP=1 (anything but ""/"0") forces full sweeps. */
bool
envFullSweep()
{
    const char *e = std::getenv("GLIFS_SIM_FULL_SWEEP");
    return e && *e && !(e[0] == '0' && e[1] == '\0');
}

} // namespace

Simulator::Simulator(const Netlist &netlist)
    : nl(netlist), order(levelize(netlist)),
      fanout(buildFanoutIndex(netlist, order)), sigs(netlist),
      fullSweep(envFullSweep())
{
    dirtyWords.assign((fanout.numNodes() + 63) / 64, 0);
    levelWork.resize(fanout.numLevels);
    dffNextScratch.reserve(nl.dffs().size());
    writeScratch.resize(nl.numMemories());
    for (MemId m = 0; m < nl.numMemories(); ++m)
        writeScratch[m].data.resize(nl.memory(m).width);
    activeWrites.reserve(nl.numMemories());
}

void
Simulator::markNodeDirty(uint32_t node)
{
    uint64_t &w = dirtyWords[node >> 6];
    const uint64_t bit = 1ULL << (node & 63);
    if (w & bit)
        return;
    w |= bit;
    levelWork[fanout.levelOf[node]].push_back(node);
}

void
Simulator::markNetFanoutDirty(NetId net)
{
    for (uint32_t c : fanout.consumersOf(net))
        markNodeDirty(c);
}

void
Simulator::setNet(NetId net, const Signal &s)
{
    if (sigs.net(net) == s)
        return;
    sigs.setNet(net, s);
    if (allDirty || fullSweep)
        return;
    markNetFanoutDirty(net);
    // A driven net must be recomputed from its driver at the next
    // settle, so the override behaves exactly like under a full sweep
    // (visible to the clock edge, gone after the next evalComb()).
    if (nl.memDriven(net)) {
        markNodeDirty(fanout.memNode(nl.memDriver(net)));
    } else {
        GateId d = nl.driverOf(net);
        if (d != static_cast<GateId>(-1) &&
            nl.gate(d).type == GateType::Comb) {
            markNodeDirty(fanout.gateNode(d));
        }
    }
}

void
Simulator::setMemWord(MemId mem, size_t word, uint64_t value, bool taint)
{
    sigs.setMemWord(nl, mem, word, value, taint);
    markMemDirty(mem);
}

void
Simulator::markMemDirty(MemId mem)
{
    if (!allDirty && !fullSweep)
        markNodeDirty(fanout.memNode(mem));
}

void
Simulator::setFullSweepMode(bool on)
{
    fullSweep = on;
    // Leaving full-sweep mode: changes made while it was on were not
    // tracked, so nothing short of a full sweep is known clean.
    if (!on)
        markAllDirty();
}

void
Simulator::evalGate(GateId gid, const GliftTables &glift, bool track)
{
    const Gate &g = nl.gate(gid);
    Signal in[3];
    const unsigned arity = gateArity(g.kind);
    for (unsigned i = 0; i < arity; ++i)
        in[i] = sigs.net(g.in[i]);
    const Signal out = glift.eval(g.kind, in);
    const Signal prev = sigs.net(g.out);
    if (out == prev)
        return;
    if (togglesOn && prev.value != out.value)
        ++toggles.combToggles[static_cast<size_t>(g.kind)];
    sigs.setNet(g.out, out);
    if (track)
        markNetFanoutDirty(g.out);
}

void
Simulator::evalMemRead(MemId m, bool track)
{
    const MemoryDecl &decl = nl.memory(m);
    addrScratch.resize(decl.readAddr.size());
    for (size_t i = 0; i < addrScratch.size(); ++i)
        addrScratch[i] = sigs.net(decl.readAddr[i]);

    MemAddr ma =
        decodeMemAddr(addrScratch, decl.words, decl.maxUnknownAddrBits);
    if (!decl.addrTaintsRead)
        ma.tainted = false;
    dataScratch.resize(decl.width);
    memoryRead(sigs.memCells(m), decl.width, decl.words, ma,
               dataScratch);
    for (unsigned b = 0; b < decl.width; ++b) {
        const NetId rd = decl.readData[b];
        if (sigs.net(rd) == dataScratch[b])
            continue;
        sigs.setNet(rd, dataScratch[b]);
        if (track)
            markNetFanoutDirty(rd);
    }
}

void
Simulator::evalFull()
{
    SimStats &st = simStats();
    st.gateEvals += order.size();
    const GliftTables &glift = GliftTables::instance();
    for (const EvalStep &step : order) {
        if (step.kind == EvalStep::Kind::MemRead) {
            ++st.memReadEvals;
            evalMemRead(step.index, /*track=*/false);
            continue;
        }
        evalGate(step.index, glift, /*track=*/false);
    }
    // Every node was just recomputed: the pending dirty set is moot.
    for (std::vector<uint32_t> &bucket : levelWork) {
        for (uint32_t node : bucket)
            dirtyWords[node >> 6] &= ~(1ULL << (node & 63));
        bucket.clear();
    }
    allDirty = false;
}

void
Simulator::evalComb()
{
    SimStats &st = simStats();
    ++st.combEvals;
    if (fullSweep || allDirty) {
        evalFull();
        return;
    }

    const GliftTables &glift = GliftTables::instance();
    size_t evaluated = 0;
    // Drain levels in ascending order. A node's consumers all sit on
    // strictly higher levels, so a bucket never grows while it drains
    // and each node runs at most once per settle.
    for (std::vector<uint32_t> &bucket : levelWork) {
        for (size_t i = 0; i < bucket.size(); ++i) {
            const uint32_t node = bucket[i];
            dirtyWords[node >> 6] &= ~(1ULL << (node & 63));
            ++evaluated;
            if (fanout.isMemNode(node)) {
                ++st.memReadEvals;
                evalMemRead(fanout.memOf(node), /*track=*/true);
            } else {
                evalGate(node, glift, /*track=*/true);
            }
        }
        bucket.clear();
    }
    st.gateEvals += evaluated;
    st.gateEvalsSkipped += order.size() - evaluated;

    trace::Tracer &tr = trace::Tracer::instance();
    if (tr.enabled()) {
        tr.counter("sim", "dirty_nodes",
                   static_cast<double>(evaluated));
    }
}

void
Simulator::clockEdge()
{
    const bool track = !fullSweep && !allDirty;

    // Compute all flip-flop next states from the settled nets...
    dffNextScratch.clear();
    for (GateId gid : nl.dffs()) {
        const Gate &g = nl.gate(gid);
        dffNextScratch.push_back(
            dffNext(sigs.net(g.in[0]), sigs.net(g.in[1]),
                    sigs.net(g.in[2]), sigs.net(g.out), g.rstVal));
    }

    // ... and all memory write-port updates, before committing
    // anything, so the edge is atomic.
    activeWrites.clear();
    for (MemId m = 0; m < nl.numMemories(); ++m) {
        const MemoryDecl &decl = nl.memory(m);
        if (!decl.writable)
            continue;
        PendingWrite &w = writeScratch[m];
        w.we = sigs.net(decl.writeEn);
        if (w.we.known() && !w.we.asBool() && !w.we.taint)
            continue;
        addrScratch.resize(decl.writeAddr.size());
        for (size_t i = 0; i < addrScratch.size(); ++i)
            addrScratch[i] = sigs.net(decl.writeAddr[i]);
        w.addr = decodeMemAddr(addrScratch, decl.words,
                               decl.maxUnknownAddrBits);
        for (unsigned b = 0; b < decl.width; ++b)
            w.data[b] = sigs.net(decl.writeData[b]);
        activeWrites.push_back(m);
    }

    // Commit. A flip-flop whose output actually changed (value or
    // taint) seeds the next cycle's dirty set through its fanout.
    size_t i = 0;
    for (GateId gid : nl.dffs()) {
        const Gate &g = nl.gate(gid);
        const Signal prev = sigs.net(g.out);
        const Signal &next = dffNextScratch[i];
        ++i;
        if (prev == next)
            continue;
        if (togglesOn && prev.value != next.value)
            ++toggles.dffToggles;
        sigs.setNet(g.out, next);
        if (track)
            markNetFanoutDirty(g.out);
    }
    SimStats &st = simStats();
    ++st.clockEdges;
    for (MemId m : activeWrites) {
        const MemoryDecl &decl = nl.memory(m);
        const PendingWrite &w = writeScratch[m];
        memoryWrite(sigs.memCells(m), decl.width, decl.words, w.addr,
                    w.we, w.data);
        ++st.memWriteCommits;
        if (togglesOn)
            ++toggles.memWrites;
        // Cells may have changed: the read port must re-evaluate.
        if (track)
            markNodeDirty(fanout.memNode(m));
    }

    ++cycleCount;
    if (togglesOn)
        ++toggles.cycles;
}

} // namespace glifs
