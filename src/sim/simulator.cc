#include "sim/simulator.hh"

#include "base/logging.hh"
#include "base/stats.hh"
#include "logic/glift.hh"

namespace glifs
{

namespace
{

/** Hot-loop counters; one or two integer adds per settle/edge. */
struct SimStats
{
    stats::Scalar combEvals{"sim.comb_evals",
                            "combinational settle passes"};
    stats::Scalar gateEvals{"sim.gate_evals",
                            "individual gate/step evaluations"};
    stats::Scalar clockEdges{"sim.clock_edges", "clock edges latched"};
    stats::Scalar memReadEvals{"sim.mem_read_evals",
                               "memory read-port evaluations"};
    stats::Scalar memWriteCommits{"sim.mem_write_commits",
                                  "memory write-port commits"};
};

SimStats &
simStats()
{
    static SimStats s;
    return s;
}

} // namespace

Simulator::Simulator(const Netlist &netlist)
    : nl(netlist), order(levelize(netlist)), sigs(netlist)
{
}

void
Simulator::evalMemRead(MemId m)
{
    const MemoryDecl &decl = nl.memory(m);
    std::vector<Signal> addr(decl.readAddr.size());
    for (size_t i = 0; i < addr.size(); ++i)
        addr[i] = sigs.net(decl.readAddr[i]);

    MemAddr ma = decodeMemAddr(addr, decl.words, decl.maxUnknownAddrBits);
    if (!decl.addrTaintsRead)
        ma.tainted = false;
    std::vector<Signal> data(decl.width);
    memoryRead(sigs.memCells(m), decl.width, decl.words, ma, data);
    for (unsigned b = 0; b < decl.width; ++b)
        sigs.setNet(decl.readData[b], data[b]);
}

void
Simulator::evalComb()
{
    SimStats &st = simStats();
    ++st.combEvals;
    st.gateEvals += order.size();
    const GliftTables &glift = GliftTables::instance();
    for (const EvalStep &step : order) {
        if (step.kind == EvalStep::Kind::MemRead) {
            ++st.memReadEvals;
            evalMemRead(step.index);
            continue;
        }
        const Gate &g = nl.gate(step.index);
        Signal in[3];
        const unsigned arity = gateArity(g.kind);
        for (unsigned i = 0; i < arity; ++i)
            in[i] = sigs.net(g.in[i]);
        Signal out = glift.eval(g.kind, in);
        if (togglesOn) {
            Signal prev = sigs.net(g.out);
            if (prev.value != out.value)
                ++toggles.combToggles[static_cast<size_t>(g.kind)];
        }
        sigs.setNet(g.out, out);
    }
}

void
Simulator::clockEdge()
{
    // Compute all flip-flop next states from the settled nets...
    std::vector<Signal> dff_next;
    dff_next.reserve(nl.dffs().size());
    for (GateId gid : nl.dffs()) {
        const Gate &g = nl.gate(gid);
        dff_next.push_back(dffNext(sigs.net(g.in[0]), sigs.net(g.in[1]),
                                   sigs.net(g.in[2]), sigs.net(g.out),
                                   g.rstVal));
    }

    // ... and all memory write-port updates, before committing anything,
    // so the edge is atomic.
    struct PendingWrite
    {
        MemId mem;
        MemAddr addr;
        Signal we;
        std::vector<Signal> data;
    };
    std::vector<PendingWrite> writes;
    for (MemId m = 0; m < nl.numMemories(); ++m) {
        const MemoryDecl &decl = nl.memory(m);
        if (!decl.writable)
            continue;
        PendingWrite w;
        w.mem = m;
        w.we = sigs.net(decl.writeEn);
        if (w.we.known() && !w.we.asBool() && !w.we.taint)
            continue;
        std::vector<Signal> addr(decl.writeAddr.size());
        for (size_t i = 0; i < addr.size(); ++i)
            addr[i] = sigs.net(decl.writeAddr[i]);
        w.addr = decodeMemAddr(addr, decl.words, decl.maxUnknownAddrBits);
        w.data.resize(decl.width);
        for (unsigned b = 0; b < decl.width; ++b)
            w.data[b] = sigs.net(decl.writeData[b]);
        writes.push_back(std::move(w));
    }

    // Commit.
    size_t i = 0;
    for (GateId gid : nl.dffs()) {
        const Gate &g = nl.gate(gid);
        if (togglesOn && sigs.net(g.out).value != dff_next[i].value)
            ++toggles.dffToggles;
        sigs.setNet(g.out, dff_next[i]);
        ++i;
    }
    SimStats &st = simStats();
    ++st.clockEdges;
    for (const PendingWrite &w : writes) {
        const MemoryDecl &decl = nl.memory(w.mem);
        memoryWrite(sigs.memCells(w.mem), decl.width, decl.words, w.addr,
                    w.we, w.data);
        ++st.memWriteCommits;
        if (togglesOn)
            ++toggles.memWrites;
    }

    ++cycleCount;
    if (togglesOn)
        ++toggles.cycles;
}

} // namespace glifs
