#include "sim/signal_state.hh"

#include "base/logging.hh"

namespace glifs
{

SignalState::SignalState(const Netlist &nl)
{
    netSignals.assign(nl.numNets(), Signal{Tern::X, false});
    memories.resize(nl.numMemories());
    for (MemId m = 0; m < nl.numMemories(); ++m) {
        const MemoryDecl &decl = nl.memory(m);
        memories[m].assign(decl.words * decl.width,
                           Signal{Tern::X, false});
    }
    // Constant nets hold their value from the start.
    for (const Gate &g : nl.gates()) {
        if (g.type == GateType::Const)
            netSignals[g.out] = sigBool(g.constVal);
    }
}

uint64_t
SignalState::memWordValue(const Netlist &nl, MemId id, size_t word) const
{
    const MemoryDecl &decl = nl.memory(id);
    GLIFS_ASSERT(word < decl.words, "memWordValue out of range");
    uint64_t v = 0;
    const Signal *cell = &memories[id][word * decl.width];
    for (unsigned b = 0; b < decl.width; ++b) {
        if (cell[b].known() && cell[b].asBool())
            v |= 1ULL << b;
    }
    return v;
}

void
SignalState::setMemWord(const Netlist &nl, MemId id, size_t word,
                        uint64_t value, bool taint)
{
    const MemoryDecl &decl = nl.memory(id);
    GLIFS_ASSERT(word < decl.words, "setMemWord out of range");
    Signal *cell = &memories[id][word * decl.width];
    for (unsigned b = 0; b < decl.width; ++b)
        cell[b] = Signal{ternBool((value >> b) & 1ULL), taint};
}

} // namespace glifs
