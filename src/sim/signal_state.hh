/**
 * @file
 * The mutable value/taint state of a netlist simulation: one Signal per
 * net plus the contents of every memory block.
 */

#ifndef GLIFS_SIM_SIGNAL_STATE_HH
#define GLIFS_SIM_SIGNAL_STATE_HH

#include <vector>

#include "netlist/netlist.hh"

namespace glifs
{

/** Per-net signals and memory contents. */
class SignalState
{
  public:
    SignalState() = default;
    explicit SignalState(const Netlist &nl);

    Signal net(NetId id) const { return netSignals[id]; }
    void setNet(NetId id, const Signal &s) { netSignals[id] = s; }

    std::vector<Signal> &memCells(MemId id) { return memories[id]; }
    const std::vector<Signal> &memCells(MemId id) const
    {
        return memories[id];
    }

    /** Read one memory word's concrete value; X bits read as 0. */
    uint64_t memWordValue(const Netlist &nl, MemId id, size_t word) const;

    /** Store a concrete, untainted word into a memory. */
    void setMemWord(const Netlist &nl, MemId id, size_t word,
                    uint64_t value, bool taint = false);

    size_t numNets() const { return netSignals.size(); }
    size_t numMems() const { return memories.size(); }

    /** Raw per-net signal array (fast whole-state scans). */
    const std::vector<Signal> &rawNets() const { return netSignals; }

  private:
    std::vector<Signal> netSignals;
    std::vector<std::vector<Signal>> memories;
};

} // namespace glifs

#endif // GLIFS_SIM_SIGNAL_STATE_HH
