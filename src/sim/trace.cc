#include "sim/trace.hh"

#include <algorithm>
#include <sstream>

namespace glifs
{

void
TraceRecorder::watch(const std::string &label, NetId net)
{
    columns.push_back(Column{label, {net}});
}

void
TraceRecorder::watchBus(const std::string &label,
                        const std::vector<NetId> &bus)
{
    columns.push_back(Column{label, bus});
}

void
TraceRecorder::capture(uint64_t cycle, const SignalState &state)
{
    std::vector<std::string> vals;
    vals.reserve(columns.size());
    for (const Column &col : columns) {
        if (col.nets.size() == 1) {
            vals.push_back(state.net(col.nets[0]).str());
        } else {
            std::string s;
            bool tainted = false;
            for (auto it = col.nets.rbegin(); it != col.nets.rend();
                 ++it) {
                Signal sig = state.net(*it);
                s.push_back(ternChar(sig.value));
                tainted = tainted || sig.taint;
            }
            if (tainted)
                s.push_back('\'');
            vals.push_back(std::move(s));
        }
    }
    rows.emplace_back(cycle, std::move(vals));
}

std::string
TraceRecorder::str() const
{
    std::vector<size_t> widths(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
        widths[c] = columns[c].label.size();
        for (const auto &[cycle, vals] : rows)
            widths[c] = std::max(widths[c], vals[c].size());
    }

    std::ostringstream oss;
    oss << "cycle";
    for (size_t c = 0; c < columns.size(); ++c) {
        oss << "  " << columns[c].label
            << std::string(widths[c] - columns[c].label.size(), ' ');
    }
    oss << "\n";
    for (const auto &[cycle, vals] : rows) {
        std::string cyc = std::to_string(cycle);
        oss << std::string(5 - std::min<size_t>(5, cyc.size()), ' ')
            << cyc;
        for (size_t c = 0; c < columns.size(); ++c) {
            oss << "  " << vals[c]
                << std::string(widths[c] - vals[c].size(), ' ');
        }
        oss << "\n";
    }
    return oss.str();
}

} // namespace glifs
