#include "assembler/assembler.hh"

#include "base/logging.hh"

namespace glifs
{

namespace
{

/** Resolve a symbol+offset expression. */
int64_t
resolveExpr(const AsmExpr &e,
            const std::map<std::string, uint16_t> &symbols, int line)
{
    int64_t v = e.offset;
    if (!e.constant()) {
        auto it = symbols.find(e.symbol);
        if (it == symbols.end())
            GLIFS_FATAL("line ", line, ": undefined symbol '", e.symbol,
                        "'");
        v += it->second;
    }
    return v;
}

/** Encoded size of an instruction item, independent of symbol values. */
unsigned
instrSize(const AsmItem &item)
{
    if (item.op == Op::J)
        return 1;
    if (item.op == Op::Call)
        return 2;
    if (!isTwoOp(item.op))
        return 1;
    unsigned n = 1;
    if (item.src.kind == AsmOperand::Kind::Imm ||
        item.src.kind == AsmOperand::Kind::Idx ||
        item.src.kind == AsmOperand::Kind::Abs)
        ++n;
    if (item.dst.kind == AsmOperand::Kind::Idx ||
        item.dst.kind == AsmOperand::Kind::Abs)
        ++n;
    return n;
}

} // namespace

Instr
lowerInstr(const AsmItem &item,
           const std::map<std::string, uint16_t> &symbols, uint16_t addr)
{
    Instr ins;
    ins.op = item.op;
    ins.cond = item.cond;
    const int line = item.line;

    auto value = [&](const AsmExpr &e) {
        return static_cast<uint16_t>(resolveExpr(e, symbols, line));
    };

    if (isTwoOp(item.op)) {
        // Source operand.
        switch (item.src.kind) {
          case AsmOperand::Kind::Reg:
            ins.smode = Mode::Reg;
            ins.rs = item.src.reg;
            break;
          case AsmOperand::Kind::Imm:
            ins.smode = Mode::Imm;
            ins.srcWord = value(item.src.expr);
            break;
          case AsmOperand::Kind::Ind:
            ins.smode = Mode::Ind;
            ins.rs = item.src.reg;
            break;
          case AsmOperand::Kind::Idx:
            ins.smode = Mode::Idx;
            ins.rs = item.src.reg;
            ins.srcWord = value(item.src.expr);
            break;
          case AsmOperand::Kind::Abs:
            ins.smode = Mode::Idx;
            ins.rs = 0;
            ins.srcWord = value(item.src.expr);
            break;
          default:
            GLIFS_FATAL("line ", line, ": missing source operand");
        }
        // Destination operand.
        switch (item.dst.kind) {
          case AsmOperand::Kind::Reg:
            ins.dmode = Mode::Reg;
            ins.rd = item.dst.reg;
            break;
          case AsmOperand::Kind::Ind:
            ins.dmode = Mode::Ind;
            ins.rd = item.dst.reg;
            break;
          case AsmOperand::Kind::Idx:
            ins.dmode = Mode::Idx;
            ins.rd = item.dst.reg;
            ins.dstWord = value(item.dst.expr);
            break;
          case AsmOperand::Kind::Abs:
            ins.dmode = Mode::Idx;
            ins.rd = 0;
            ins.dstWord = value(item.dst.expr);
            break;
          default:
            GLIFS_FATAL("line ", line, ": bad destination operand");
        }
        return ins;
    }

    if (isOneOp(item.op)) {
        if (item.dst.kind != AsmOperand::Kind::Reg)
            GLIFS_FATAL("line ", line,
                        ": one-operand ops need a register");
        ins.rd = item.dst.reg;
        return ins;
    }

    switch (item.op) {
      case Op::J: {
        int64_t target = resolveExpr(item.src.expr, symbols, line);
        int64_t off = target - (static_cast<int64_t>(addr) + 1);
        if (off < -256 || off > 255)
            GLIFS_FATAL("line ", line, ": jump target out of range (",
                        off, " words)");
        ins.jumpOff = static_cast<int16_t>(off);
        return ins;
      }
      case Op::Call:
        ins.srcWord = value(item.src.expr);
        return ins;
      case Op::Push:
      case Op::Pop:
      case Op::Br:
        if (item.dst.kind != AsmOperand::Kind::Reg)
            GLIFS_FATAL("line ", line, ": ", opName(item.op),
                        " needs a register");
        ins.rd = item.dst.reg;
        return ins;
      case Op::Ret:
      case Op::Nop:
      case Op::Halt:
        return ins;
      default:
        GLIFS_FATAL("line ", line, ": cannot lower instruction");
    }
}

ProgramImage
assemble(const AsmProgram &prog, size_t prog_words)
{
    ProgramImage img;
    img.words.assign(prog_words, 0);

    // Pass 1: addresses and symbols.
    {
        uint16_t addr = 0;
        for (const AsmItem &item : prog.items) {
            switch (item.kind) {
              case AsmItem::Kind::Label:
                img.symbols[item.name] = addr;
                break;
              case AsmItem::Kind::Equ:
                img.symbols[item.name] = static_cast<uint16_t>(
                    resolveExpr(item.values[0], img.symbols, item.line));
                break;
              case AsmItem::Kind::Org:
                addr = static_cast<uint16_t>(
                    resolveExpr(item.values[0], img.symbols, item.line));
                break;
              case AsmItem::Kind::Word:
                addr = static_cast<uint16_t>(addr + item.values.size());
                break;
              case AsmItem::Kind::Instr:
                addr = static_cast<uint16_t>(addr + instrSize(item));
                break;
            }
            if (addr > prog_words)
                GLIFS_FATAL("line ", item.line,
                            ": program image overflow");
        }
    }

    // Pass 2: encode.
    {
        uint16_t addr = 0;
        for (size_t idx = 0; idx < prog.items.size(); ++idx) {
            const AsmItem &item = prog.items[idx];
            switch (item.kind) {
              case AsmItem::Kind::Label:
              case AsmItem::Kind::Equ:
                break;
              case AsmItem::Kind::Org:
                addr = static_cast<uint16_t>(
                    resolveExpr(item.values[0], img.symbols, item.line));
                break;
              case AsmItem::Kind::Word:
                for (const AsmExpr &e : item.values) {
                    img.words[addr] = static_cast<uint16_t>(
                        resolveExpr(e, img.symbols, item.line));
                    img.usedWords =
                        std::max<size_t>(img.usedWords, addr + 1u);
                    ++addr;
                }
                break;
              case AsmItem::Kind::Instr: {
                Instr ins = lowerInstr(item, img.symbols, addr);
                std::vector<uint16_t> enc = encode(ins);
                GLIFS_ASSERT(enc.size() == instrSize(item),
                             "size mismatch at line ", item.line);
                img.addrToItem[addr] = idx;
                for (uint16_t w : enc) {
                    img.words[addr] = w;
                    img.usedWords =
                        std::max<size_t>(img.usedWords, addr + 1u);
                    ++addr;
                }
                break;
              }
            }
        }
    }
    return img;
}

ProgramImage
assembleSource(const std::string &source, size_t prog_words)
{
    return assemble(parseSource(source), prog_words);
}

} // namespace glifs
