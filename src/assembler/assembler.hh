/**
 * @file
 * Two-pass assembler: AsmProgram -> ProgramImage.
 */

#ifndef GLIFS_ASSEMBLER_ASSEMBLER_HH
#define GLIFS_ASSEMBLER_ASSEMBLER_HH

#include "assembler/parser.hh"
#include "assembler/program_image.hh"

namespace glifs
{

/**
 * Assemble a parsed program into a loadable image.
 * @param prog_words size of the target program memory.
 * @throws FatalError on undefined symbols, out-of-range jumps,
 *         overlapping .org regions or image overflow.
 */
ProgramImage assemble(const AsmProgram &prog,
                      size_t prog_words = iot430::kProgWords);

/** Convenience: parse + assemble a source string. */
ProgramImage assembleSource(const std::string &source,
                            size_t prog_words = iot430::kProgWords);

/** Encode one item into an Instr given resolved operand values. */
Instr lowerInstr(const AsmItem &item,
                 const std::map<std::string, uint16_t> &symbols,
                 uint16_t addr);

} // namespace glifs

#endif // GLIFS_ASSEMBLER_ASSEMBLER_HH
