/**
 * @file
 * Tokenizer for IoT430 assembly source.
 */

#ifndef GLIFS_ASSEMBLER_LEXER_HH
#define GLIFS_ASSEMBLER_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace glifs
{

/** Token categories. */
enum class TokKind : uint8_t
{
    Ident,      ///< mnemonic, label or symbol name
    Number,     ///< integer literal (dec/hex/bin, optional '-')
    Reg,        ///< r0..r15
    Directive,  ///< .org .word .equ ...
    Hash,       ///< '#'
    At,         ///< '@'
    Amp,        ///< '&'
    LParen,
    RParen,
    Comma,
    Colon,
    Newline,
    End,
};

/** One token. */
struct Token
{
    TokKind kind;
    std::string text;
    int64_t value = 0;  ///< Number: parsed value; Reg: register index
    int line = 0;
};

/**
 * Tokenize a full assembly source. ';' starts a comment running to end
 * of line. Every line is terminated by a Newline token; the stream ends
 * with End.
 * @throws FatalError on an unrecognizable character.
 */
std::vector<Token> lex(const std::string &source);

} // namespace glifs

#endif // GLIFS_ASSEMBLER_LEXER_HH
