#include "assembler/parser.hh"

#include <sstream>
#include <unordered_map>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace glifs
{

namespace
{

struct Mnemonic
{
    Op op;
    Cond cond;
    unsigned operands;  ///< expected operand count
};

const std::unordered_map<std::string, Mnemonic> &
mnemonics()
{
    static const std::unordered_map<std::string, Mnemonic> table = {
        {"mov", {Op::Mov, Cond::Always, 2}},
        {"add", {Op::Add, Cond::Always, 2}},
        {"sub", {Op::Sub, Cond::Always, 2}},
        {"cmp", {Op::Cmp, Cond::Always, 2}},
        {"and", {Op::And, Cond::Always, 2}},
        {"bis", {Op::Bis, Cond::Always, 2}},
        {"xor", {Op::Xor, Cond::Always, 2}},
        {"bic", {Op::Bic, Cond::Always, 2}},
        {"clr", {Op::Clr, Cond::Always, 1}},
        {"inc", {Op::Inc, Cond::Always, 1}},
        {"dec", {Op::Dec, Cond::Always, 1}},
        {"inv", {Op::Inv, Cond::Always, 1}},
        {"rra", {Op::Rra, Cond::Always, 1}},
        {"rrc", {Op::Rrc, Cond::Always, 1}},
        {"rla", {Op::Rla, Cond::Always, 1}},
        {"rlc", {Op::Rlc, Cond::Always, 1}},
        {"swpb", {Op::Swpb, Cond::Always, 1}},
        {"sxt", {Op::Sxt, Cond::Always, 1}},
        {"tst", {Op::Tst, Cond::Always, 1}},
        {"jmp", {Op::J, Cond::Always, 1}},
        {"jz", {Op::J, Cond::Z, 1}},
        {"jeq", {Op::J, Cond::Z, 1}},
        {"jnz", {Op::J, Cond::NZ, 1}},
        {"jne", {Op::J, Cond::NZ, 1}},
        {"jc", {Op::J, Cond::C, 1}},
        {"jnc", {Op::J, Cond::NC, 1}},
        {"jn", {Op::J, Cond::N, 1}},
        {"jge", {Op::J, Cond::GE, 1}},
        {"jl", {Op::J, Cond::L, 1}},
        {"push", {Op::Push, Cond::Always, 1}},
        {"pop", {Op::Pop, Cond::Always, 1}},
        {"call", {Op::Call, Cond::Always, 1}},
        {"ret", {Op::Ret, Cond::Always, 0}},
        {"br", {Op::Br, Cond::Always, 1}},
        {"nop", {Op::Nop, Cond::Always, 0}},
        {"halt", {Op::Halt, Cond::Always, 0}},
    };
    return table;
}

/** Cursor over the token stream. */
class Cursor
{
  public:
    explicit Cursor(const std::vector<Token> &toks) : toks(toks) {}

    const Token &peek() const { return toks[pos]; }
    const Token &
    next()
    {
        const Token &t = toks[pos];
        if (toks[pos].kind != TokKind::End)
            ++pos;
        return t;
    }
    bool at(TokKind k) const { return toks[pos].kind == k; }
    bool
    accept(TokKind k)
    {
        if (!at(k))
            return false;
        next();
        return true;
    }
    [[noreturn]] void
    fail(const std::string &what) const
    {
        GLIFS_FATAL("line ", toks[pos].line, ": expected ", what,
                    ", got '", toks[pos].text, "'");
    }

  private:
    const std::vector<Token> &toks;
    size_t pos = 0;
};

/** Parse [ident][number] into a symbol+offset expression. */
AsmExpr
parseExpr(Cursor &cur)
{
    AsmExpr e;
    if (cur.at(TokKind::Ident)) {
        e.symbol = cur.next().text;
        if (cur.at(TokKind::Number))
            e.offset = cur.next().value;
        return e;
    }
    if (cur.at(TokKind::Number)) {
        e.offset = cur.next().value;
        return e;
    }
    cur.fail("expression");
}

AsmOperand
parseOperand(Cursor &cur)
{
    AsmOperand op;
    if (cur.accept(TokKind::Hash)) {
        op.kind = AsmOperand::Kind::Imm;
        op.expr = parseExpr(cur);
        return op;
    }
    if (cur.accept(TokKind::At)) {
        if (!cur.at(TokKind::Reg))
            cur.fail("register after '@'");
        op.kind = AsmOperand::Kind::Ind;
        op.reg = static_cast<unsigned>(cur.next().value);
        return op;
    }
    if (cur.accept(TokKind::Amp)) {
        op.kind = AsmOperand::Kind::Abs;
        op.expr = parseExpr(cur);
        return op;
    }
    if (cur.at(TokKind::Reg)) {
        op.kind = AsmOperand::Kind::Reg;
        op.reg = static_cast<unsigned>(cur.next().value);
        return op;
    }
    // expr or expr(reg)
    op.expr = parseExpr(cur);
    if (cur.accept(TokKind::LParen)) {
        if (!cur.at(TokKind::Reg))
            cur.fail("register in indexed operand");
        op.kind = AsmOperand::Kind::Idx;
        op.reg = static_cast<unsigned>(cur.next().value);
        if (!cur.accept(TokKind::RParen))
            cur.fail("')'");
        return op;
    }
    // Bare expression: jump/call target.
    op.kind = AsmOperand::Kind::Imm;
    return op;
}

} // namespace

AsmProgram
parse(const std::vector<Token> &tokens)
{
    AsmProgram prog;
    Cursor cur(tokens);

    while (!cur.at(TokKind::End)) {
        if (cur.accept(TokKind::Newline))
            continue;

        // Labels: ident ':'
        while (cur.at(TokKind::Ident) &&
               mnemonics().find(toLower(cur.peek().text)) ==
                   mnemonics().end()) {
            AsmItem item;
            item.kind = AsmItem::Kind::Label;
            item.line = cur.peek().line;
            item.name = cur.next().text;
            if (!cur.accept(TokKind::Colon))
                cur.fail("':' after label");
            prog.items.push_back(std::move(item));
        }
        if (cur.accept(TokKind::Newline))
            continue;

        if (cur.at(TokKind::Directive)) {
            AsmItem item;
            item.line = cur.peek().line;
            std::string d = cur.next().text;
            if (d == ".org") {
                item.kind = AsmItem::Kind::Org;
                item.values.push_back(parseExpr(cur));
            } else if (d == ".word") {
                item.kind = AsmItem::Kind::Word;
                item.values.push_back(parseExpr(cur));
                while (cur.accept(TokKind::Comma))
                    item.values.push_back(parseExpr(cur));
            } else if (d == ".equ") {
                item.kind = AsmItem::Kind::Equ;
                if (!cur.at(TokKind::Ident))
                    cur.fail("symbol name after .equ");
                item.name = cur.next().text;
                cur.accept(TokKind::Comma);
                item.values.push_back(parseExpr(cur));
            } else {
                GLIFS_FATAL("line ", item.line, ": unknown directive ",
                            d);
            }
            prog.items.push_back(std::move(item));
            if (!cur.accept(TokKind::Newline) && !cur.at(TokKind::End))
                cur.fail("end of line");
            continue;
        }

        if (cur.at(TokKind::Ident)) {
            AsmItem item;
            item.kind = AsmItem::Kind::Instr;
            item.line = cur.peek().line;
            std::string m = toLower(cur.next().text);
            auto it = mnemonics().find(m);
            if (it == mnemonics().end())
                GLIFS_FATAL("line ", item.line, ": unknown mnemonic '",
                            m, "'");
            item.op = it->second.op;
            item.cond = it->second.cond;
            if (it->second.operands >= 1) {
                AsmOperand first = parseOperand(cur);
                if (it->second.operands == 2) {
                    if (!cur.accept(TokKind::Comma))
                        cur.fail("','");
                    item.src = first;
                    item.dst = parseOperand(cur);
                } else {
                    // Single-operand: destination for one-op/pop/push,
                    // source-like target for jumps/call.
                    if (item.op == Op::J || item.op == Op::Call)
                        item.src = first;
                    else
                        item.dst = first;
                }
            }
            prog.items.push_back(std::move(item));
            if (!cur.accept(TokKind::Newline) && !cur.at(TokKind::End))
                cur.fail("end of line");
            continue;
        }

        cur.fail("label, directive or instruction");
    }
    return prog;
}

AsmProgram
parseSource(const std::string &source)
{
    return parse(lex(source));
}

namespace
{

std::string
renderExpr(const AsmExpr &e)
{
    if (e.constant())
        return std::to_string(e.offset);
    std::string s = e.symbol;
    if (e.offset > 0)
        s += "+" + std::to_string(e.offset);
    else if (e.offset < 0)
        s += std::to_string(e.offset);
    return s;
}

std::string
renderOperand(const AsmOperand &op)
{
    switch (op.kind) {
      case AsmOperand::Kind::None:
        return "";
      case AsmOperand::Kind::Reg:
        return "r" + std::to_string(op.reg);
      case AsmOperand::Kind::Imm:
        return "#" + renderExpr(op.expr);
      case AsmOperand::Kind::Ind:
        return "@r" + std::to_string(op.reg);
      case AsmOperand::Kind::Idx:
        return renderExpr(op.expr) + "(r" + std::to_string(op.reg) + ")";
      case AsmOperand::Kind::Abs:
        return "&" + renderExpr(op.expr);
    }
    return "?";
}

} // namespace

std::string
render(const AsmProgram &prog)
{
    std::ostringstream oss;
    for (const AsmItem &item : prog.items) {
        switch (item.kind) {
          case AsmItem::Kind::Label:
            oss << item.name << ":\n";
            break;
          case AsmItem::Kind::Org:
            oss << "        .org " << renderExpr(item.values[0]) << "\n";
            break;
          case AsmItem::Kind::Word: {
            oss << "        .word ";
            for (size_t i = 0; i < item.values.size(); ++i) {
                if (i)
                    oss << ", ";
                oss << renderExpr(item.values[i]);
            }
            oss << "\n";
            break;
          }
          case AsmItem::Kind::Equ:
            oss << "        .equ " << item.name << ", "
                << renderExpr(item.values[0]) << "\n";
            break;
          case AsmItem::Kind::Instr: {
            oss << "        " << opName(item.op, item.cond);
            if (item.op == Op::J || item.op == Op::Call) {
                oss << " "
                    << (item.op == Op::Call
                            ? renderOperand(item.src)
                            : renderExpr(item.src.expr));
            } else if (item.src.kind != AsmOperand::Kind::None ||
                       item.dst.kind != AsmOperand::Kind::None) {
                if (item.src.kind != AsmOperand::Kind::None)
                    oss << " " << renderOperand(item.src) << ",";
                oss << " " << renderOperand(item.dst);
            }
            oss << "\n";
            break;
          }
        }
    }
    return oss.str();
}

AsmItem
makeInstr(Op op, AsmOperand src, AsmOperand dst, Cond cond)
{
    AsmItem item;
    item.kind = AsmItem::Kind::Instr;
    item.op = op;
    item.cond = cond;
    item.src = src;
    item.dst = dst;
    return item;
}

AsmOperand
operandReg(unsigned reg)
{
    AsmOperand op;
    op.kind = AsmOperand::Kind::Reg;
    op.reg = reg;
    return op;
}

AsmOperand
operandImm(int64_t value, const std::string &symbol)
{
    AsmOperand op;
    op.kind = AsmOperand::Kind::Imm;
    op.expr = AsmExpr{symbol, value};
    return op;
}

AsmOperand
operandInd(unsigned reg)
{
    AsmOperand op;
    op.kind = AsmOperand::Kind::Ind;
    op.reg = reg;
    return op;
}

AsmOperand
operandIdx(unsigned reg, int64_t offset, const std::string &symbol)
{
    AsmOperand op;
    op.kind = AsmOperand::Kind::Idx;
    op.reg = reg;
    op.expr = AsmExpr{symbol, offset};
    return op;
}

AsmOperand
operandAbs(int64_t addr, const std::string &symbol)
{
    AsmOperand op;
    op.kind = AsmOperand::Kind::Abs;
    op.expr = AsmExpr{symbol, addr};
    return op;
}

} // namespace glifs
