/**
 * @file
 * The loadable output of the assembler: program-memory words plus the
 * symbol table and the address <-> source-item mapping used by
 * root-cause reporting and the transformation passes.
 */

#ifndef GLIFS_ASSEMBLER_PROGRAM_IMAGE_HH
#define GLIFS_ASSEMBLER_PROGRAM_IMAGE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace glifs
{

/** Assembled program. */
struct ProgramImage
{
    /** Full program memory contents (index = word address). */
    std::vector<uint16_t> words;

    /** Highest used address + 1. */
    size_t usedWords = 0;

    /** Label/equ symbol values. */
    std::map<std::string, uint16_t> symbols;

    /**
     * For each instruction: word address -> index of the producing
     * AsmItem in the source program.
     */
    std::map<uint16_t, size_t> addrToItem;

    /** Look up a symbol; fatal() if missing. */
    uint16_t symbol(const std::string &name) const;

    /** Source item index of the instruction at @p addr (or npos). */
    size_t itemAt(uint16_t addr) const;

    static constexpr size_t npos = static_cast<size_t>(-1);
};

} // namespace glifs

#endif // GLIFS_ASSEMBLER_PROGRAM_IMAGE_HH
