/**
 * @file
 * Parser producing a structured assembly program. Software
 * transformations (src/xform) edit this representation and re-assemble,
 * mirroring the paper's toolflow (Figure 11).
 */

#ifndef GLIFS_ASSEMBLER_PARSER_HH
#define GLIFS_ASSEMBLER_PARSER_HH

#include <string>
#include <vector>

#include "assembler/lexer.hh"
#include "isa/isa.hh"

namespace glifs
{

/** A (symbol + offset) value reference. */
struct AsmExpr
{
    std::string symbol;  ///< empty: pure constant
    int64_t offset = 0;

    bool constant() const { return symbol.empty(); }
};

/** One parsed operand. */
struct AsmOperand
{
    enum class Kind : uint8_t { None, Reg, Imm, Ind, Idx, Abs };
    Kind kind = Kind::None;
    unsigned reg = 0;
    AsmExpr expr;  ///< Imm value, Idx offset or Abs address
};

/** One line-level element of an assembly program. */
struct AsmItem
{
    enum class Kind : uint8_t { Instr, Label, Org, Word, Equ };
    Kind kind;
    int line = 0;

    // Instr
    Op op = Op::Nop;
    Cond cond = Cond::Always;
    AsmOperand src;
    AsmOperand dst;

    // Label / Equ
    std::string name;

    // Org / Equ value / Word values
    std::vector<AsmExpr> values;
};

/** A parsed program: an editable list of items. */
struct AsmProgram
{
    std::vector<AsmItem> items;
};

/**
 * Parse tokenized source.
 * @throws FatalError with a line number on any syntax error.
 */
AsmProgram parse(const std::vector<Token> &tokens);

/** Convenience: lex + parse. */
AsmProgram parseSource(const std::string &source);

/** Render a program back to assembly text (for diffing/tests). */
std::string render(const AsmProgram &prog);

/** Build an instruction item (used by the transformation passes). */
AsmItem makeInstr(Op op, AsmOperand src = {}, AsmOperand dst = {},
                  Cond cond = Cond::Always);

/** Operand construction helpers. */
AsmOperand operandReg(unsigned reg);
AsmOperand operandImm(int64_t value, const std::string &symbol = "");
AsmOperand operandInd(unsigned reg);
AsmOperand operandIdx(unsigned reg, int64_t offset,
                      const std::string &symbol = "");
AsmOperand operandAbs(int64_t addr, const std::string &symbol = "");

} // namespace glifs

#endif // GLIFS_ASSEMBLER_PARSER_HH
