#include "assembler/program_image.hh"

#include "base/logging.hh"

namespace glifs
{

uint16_t
ProgramImage::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        GLIFS_FATAL("undefined symbol '", name, "'");
    return it->second;
}

size_t
ProgramImage::itemAt(uint16_t addr) const
{
    auto it = addrToItem.find(addr);
    return it == addrToItem.end() ? npos : it->second;
}

} // namespace glifs
