#include "assembler/lexer.hh"

#include <cctype>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace glifs
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Classify an identifier as a register name if it matches r0..r15. */
bool
asRegister(const std::string &ident, int64_t &reg)
{
    if (ident.size() < 2 || ident.size() > 3)
        return false;
    if (ident[0] != 'r' && ident[0] != 'R')
        return false;
    int v = 0;
    for (size_t i = 1; i < ident.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(ident[i])))
            return false;
        v = v * 10 + (ident[i] - '0');
    }
    if (v > 15)
        return false;
    reg = v;
    return true;
}

} // namespace

std::vector<Token>
lex(const std::string &source)
{
    std::vector<Token> toks;
    int line = 1;
    size_t i = 0;
    const size_t n = source.size();

    auto push = [&](TokKind k, std::string text, int64_t value = 0) {
        toks.push_back(Token{k, std::move(text), value, line});
    };

    while (i < n) {
        char c = source[i];
        if (c == '\n') {
            push(TokKind::Newline, "\\n");
            ++line;
            ++i;
            continue;
        }
        if (c == ';') {
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '#') { push(TokKind::Hash, "#"); ++i; continue; }
        if (c == '@') { push(TokKind::At, "@"); ++i; continue; }
        if (c == '&') { push(TokKind::Amp, "&"); ++i; continue; }
        if (c == '(') { push(TokKind::LParen, "("); ++i; continue; }
        if (c == ')') { push(TokKind::RParen, ")"); ++i; continue; }
        if (c == ',') { push(TokKind::Comma, ","); ++i; continue; }
        if (c == ':') { push(TokKind::Colon, ":"); ++i; continue; }

        if (c == '.') {
            size_t start = i++;
            while (i < n && identChar(source[i]))
                ++i;
            push(TokKind::Directive,
                 toLower(source.substr(start, i - start)));
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
            c == '+') {
            size_t start = i++;
            while (i < n && (identChar(source[i])))
                ++i;
            std::string text = source.substr(start, i - start);
            auto v = parseInt(text);
            if (!v)
                GLIFS_FATAL("line ", line, ": bad number '", text, "'");
            push(TokKind::Number, text, *v);
            continue;
        }

        if (identStart(c)) {
            size_t start = i++;
            while (i < n && identChar(source[i]))
                ++i;
            std::string text = source.substr(start, i - start);
            int64_t reg;
            if (asRegister(text, reg))
                push(TokKind::Reg, text, reg);
            else
                push(TokKind::Ident, text);
            continue;
        }

        GLIFS_FATAL("line ", line, ": unexpected character '",
                    std::string(1, c), "'");
    }
    push(TokKind::Newline, "\\n");
    push(TokKind::End, "");
    return toks;
}

} // namespace glifs
