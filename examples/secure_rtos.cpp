/**
 * @file
 * System-level use case (paper Section 7.3): schedule a trusted and an
 * untrusted task with MiniRTOS, show that the naive system leaks the
 * untrusted task's control flow into the scheduler, and that the
 * watchdog-sliced, mask-protected system runs correctly and verifies
 * secure -- then measure the protection overhead.
 *
 * Run: ./secure_rtos
 */

#include <cstdio>

#include "assembler/assembler.hh"
#include "ift/engine.hh"
#include "workloads/rtos.hh"

using namespace glifs;

namespace
{

void
show(const Soc &soc, const MicroBenchmark &mb)
{
    ProgramImage img = assembleSource(mb.source);
    RtosMeasurement m = measureRtos(soc, img);
    EngineResult r =
        IftEngine(soc, mb.policy, EngineConfig{}).run(img);
    std::printf("--- %s ---\n  %s\n", mb.name.c_str(),
                mb.description.c_str());
    std::printf("  concrete run: both tasks done in %llu cycles (%s)\n",
                static_cast<unsigned long long>(m.cycles),
                m.completed ? "ok" : "timeout");
    std::printf("  analysis: %s\n",
                r.secure() ? "VERIFIED SECURE" : "INSECURE");
    int shown = 0;
    for (const Violation &v : r.violations) {
        if (v.kind == ViolationKind::TaintedControlFlow)
            continue;  // contained inside the untrusted task
        if (shown++ < 4)
            std::printf("    %s\n", v.str().c_str());
    }
    if (shown > 4)
        std::printf("    ... and %d more\n", shown - 4);
    std::printf("\n");
}

} // namespace

int
main()
{
    Soc soc;
    std::printf("=== MiniRTOS: information flow secure scheduling ===\n\n");

    show(soc, rtosBaseline());
    show(soc, rtosProtected(1));

    RtosMeasurement base =
        measureRtos(soc, assembleSource(rtosBaseline().source));
    RtosMeasurement prot =
        measureRtos(soc, assembleSource(rtosProtected(0).source));
    if (base.completed && prot.completed) {
        std::printf("protection overhead (64-cycle slices): %.2f %%\n",
                    100.0 * (static_cast<double>(prot.cycles) -
                             base.cycles) /
                        base.cycles);
    }
    return 0;
}
