/**
 * @file
 * The paper's end-to-end developer story on a realistic scenario: a
 * sensor-node firmware whose logging routine indexes a table with an
 * attacker-controlled value. The example
 *
 *   1. writes the firmware in IoT430 assembly,
 *   2. runs application-specific gate-level information flow tracking,
 *   3. prints the compiler-style root-cause report,
 *   4. applies the automatic software fixes (watchdog + masking), and
 *   5. re-verifies the modified binary.
 *
 * Run: ./audit_sensor_node
 */

#include <cstdio>

#include "assembler/assembler.hh"
#include "ift/rootcause.hh"
#include "isa/disasm.hh"
#include "xform/masking.hh"
#include "xform/watchdog_xform.hh"

using namespace glifs;

namespace
{

/**
 * Sensor firmware: untainted system code dispatches a sampling task
 * that reads the radio port (attacker-controlled), smooths the value,
 * and -- the bug -- logs it into a table indexed by the sample itself.
 */
const char *kFirmware = R"(
        .equ RADIO, 0x0000      ; P1IN: untrusted radio input
        .equ LED,   0x0003      ; P2OUT: untrusted status output
        .equ WDT,   0x0010
        .equ SMOOTH, 0x0fc2     ; running average (tainted RAM)
        .equ LOG,   0x0c20      ; log table (tainted RAM)
start:  mov #0x0ff0, r1
        jmp task
        .org 0x80
task:   mov &RADIO, r4          ; attacker-controlled sample
        mov &SMOOTH, r5
        add r4, r5
        rra r5
        mov r5, &SMOOTH         ; smooth = (smooth + x) / 2
        cmp #0x2000, r4         ; alert threshold (tainted branch!)
        jnc t_quiet
        mov #LOG, r6
        add r4, r6              ; &log[sample]  <-- unbounded pointer
        mov r5, 0(r6)           ; log the smoothed value
        mov #1, &LED
t_quiet:
        jmp start               ; hand control back to system code
)";

} // namespace

int
main()
{
    Soc soc;
    Policy policy = benchmarkPolicy(0x80, 0xFFF);
    std::printf("=== auditing sensor-node firmware ===\n\n%s\n",
                policy.str().c_str());

    AsmProgram prog = parseSource(kFirmware);
    ProgramImage img = assemble(prog);

    // Stage 1: analysis (Figure 6).
    IftEngine engine(soc, policy, EngineConfig{});
    EngineResult before = engine.run(img);
    std::printf("analysis of the unmodified firmware:\n  %s\n\n",
                before.summary().c_str());

    // Stage 2: root-cause identification (Figure 10).
    RootCauseReport rc = analyzeRootCauses(before, policy, &img);
    std::printf("root causes:\n%s\n", rc.str(&img).c_str());

    // Stage 3: software fixes (Figure 11).
    //   (a) the tainted task needs the watchdog: arm it in system code
    //       and stop yielding by jump.
    AsmProgram fixed = prog;
    if (!rc.tasksNeedingWatchdog.empty()) {
        fixed = applyWatchdogProtection(fixed, 1).program;
        // Replace the cooperative "jmp start" yield with an idle loop:
        // the POR returns control deterministically.
        for (size_t i = 0; i < fixed.items.size(); ++i) {
            AsmItem &item = fixed.items[i];
            if (item.kind == AsmItem::Kind::Instr && item.op == Op::J &&
                item.src.expr.symbol == "start" && item.line > 10) {
                item.src.expr = AsmExpr{"t_quiet", 0};
                std::printf("rewrote the task's yield into an idle "
                            "loop (watchdog returns control)\n");
            }
        }
    }
    //   (b) mask the flagged store; re-analyze first since the
    //       watchdog insertion moved the code (Figure 11's note).
    ProgramImage fixed_img = assemble(fixed);
    EngineResult mid = IftEngine(soc, policy, EngineConfig{})
                           .run(fixed_img);
    RootCauseReport rc2 = analyzeRootCauses(mid, policy, &fixed_img);
    MaskingResult masked =
        insertMasks(fixed, fixed_img, rc2.storesToMask);
    for (const std::string &note : masked.notes)
        std::printf("%s\n", note.c_str());

    // Stage 4: re-verify.
    ProgramImage final_img = assemble(masked.program);
    EngineResult after = IftEngine(soc, policy, EngineConfig{})
                             .run(final_img);
    std::printf("\nanalysis of the modified firmware:\n  %s\n",
                after.summary().c_str());
    std::printf("verdict: %s\n",
                after.secure()
                    ? "VERIFIED SECURE on commodity hardware -- no "
                      "secure-by-design processor needed"
                    : "still insecure");
    return after.secure() ? 0 : 1;
}
