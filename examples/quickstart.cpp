/**
 * @file
 * Quickstart: build a small gate-level circuit, simulate it with
 * ternary values and GLIFT taint, and watch value-based masking stop a
 * taint (the core mechanism everything else in glifs builds on).
 *
 * Run: ./quickstart
 */

#include <cstdio>

#include "netlist/builder.hh"
#include "netlist/dot_export.hh"
#include "netlist/stats.hh"
#include "sim/simulator.hh"

using namespace glifs;

int
main()
{
    // A 2-bit "secret selector": out = sel ? secret : constant, then
    // AND-gated by an enable.
    Netlist nl;
    NetBuilder nb(nl);
    NetId secret = nl.addInput("secret");
    NetId sel = nl.addInput("sel");
    NetId enable = nl.addInput("enable");
    NetId picked = nb.bMux(sel, nb.zero(), secret);
    NetId out = nb.bAnd(picked, enable);
    nl.markOutput(out, "out");

    std::printf("netlist: %s\n\n", computeStats(nl).str().c_str());

    Simulator sim(nl);

    // Case 1: the tainted secret is selected and the enable is on:
    // the output must be tainted.
    sim.setInput(secret, Signal{Tern::One, true});
    sim.setInput(sel, sigOne());
    sim.setInput(enable, sigOne());
    sim.evalComb();
    std::printf("sel=1 enable=1 -> out = %s  (tainted: secret flows "
                "out)\n", sim.netValue(out).str().c_str());

    // Case 2: the selector picks the constant: the taint is masked.
    sim.setInput(sel, sigZero());
    sim.evalComb();
    std::printf("sel=0 enable=1 -> out = %s  (untainted: GLIFT masking)"
                "\n", sim.netValue(out).str().c_str());

    // Case 3: enable low masks even an unknown tainted secret.
    sim.setInput(sel, sigOne());
    sim.setInput(secret, Signal{Tern::X, true});
    sim.setInput(enable, sigZero());
    sim.evalComb();
    std::printf("sel=1 enable=0 -> out = %s  (an untainted 0 input "
                "masks the tainted X)\n\n",
                sim.netValue(out).str().c_str());

    std::printf("DOT rendering of the circuit:\n%s\n",
                toDot(nl, "quickstart").c_str());
    return 0;
}
