# ctest wrapper for the example batch manifest (docs/BATCH.md): runs
# glifs_batch on examples/fleet.manifest and asserts the exact
# aggregated exit code (1: the fleet contains a violations job) plus a
# well-formed glifs.batch_report.v1 on disk.
file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

execute_process(
    COMMAND "${GLIFS_BATCH}" "${MANIFEST}"
            --jobs 2
            --audit-bin "${GLIFS_AUDIT}"
            --cache-dir "${WORK}/cache"
            --report "${WORK}/report.json"
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if(NOT code EQUAL 1)
    message(FATAL_ERROR
        "glifs_batch exited ${code}, expected 1 (violations job "
        "dominates the fleet)\nstdout:\n${out}\nstderr:\n${err}")
endif()

file(READ "${WORK}/report.json" report)
if(NOT report MATCHES "glifs\\.batch_report\\.v1")
    message(FATAL_ERROR "report.json lacks the schema marker:\n${report}")
endif()
if(NOT report MATCHES "\"jobs_total\": 3")
    message(FATAL_ERROR "report.json lacks jobs_total 3:\n${report}")
endif()
