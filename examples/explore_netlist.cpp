/**
 * @file
 * Substrate tour: build the IoT430 SoC, print its gate-level
 * statistics, assemble a program, run it concretely through the
 * gate-level simulator, and inspect architectural state and energy.
 *
 * Run: ./explore_netlist
 */

#include <cstdio>

#include "assembler/assembler.hh"
#include "isa/disasm.hh"
#include "netlist/stats.hh"
#include "power/energy_model.hh"
#include "sim/vcd.hh"
#include "soc/runner.hh"

using namespace glifs;

int
main()
{
    Soc soc;
    NetlistStats stats = computeStats(soc.netlist());
    std::printf("=== the IoT430 gate-level substrate ===\n\n");
    std::printf("%s\n", stats.str().c_str());
    std::printf("gate mix:");
    for (size_t k = 0; k < stats.combByKind.size(); ++k) {
        std::printf(" %s=%zu",
                    gateKindName(static_cast<GateKind>(k)),
                    stats.combByKind[k]);
    }
    std::printf("\n\n");

    const char *src =
        "        mov #0x0ff0, r1\n"
        "        mov #5, r4\n"
        "        mov #7, r5\n"
        "        call #muladd\n"
        "        mov r6, &0x0900\n"
        "        mov r6, &0x0007\n"   // P4OUT
        "        halt\n"
        "muladd: clr r6\n"
        "loop:   add r4, r6\n"
        "        dec r5\n"
        "        jnz loop\n"
        "        ret\n";
    ProgramImage img = assembleSource(src);
    std::printf("program (%zu words):\n%s\n", img.usedWords,
                disassembleImage(
                    std::vector<uint16_t>(img.words.begin(),
                                          img.words.begin() +
                                              img.usedWords))
                    .c_str());

    SocRunner runner(soc);
    runner.simulator().enableToggleStats(true);
    runner.load(img);
    runner.reset();

    // Record a waveform of the architectural hot spots while running.
    VcdWriter vcd;
    vcd.watchBus("pc", soc.probes().pcQ);
    vcd.watchBus("state", soc.probes().stateQ);
    vcd.watchBus("r6", soc.probes().gprQ[4]);
    vcd.watchBus("sp", soc.probes().spQ);
    uint64_t cycles = 0;
    while (!runner.halted()) {
        runner.stepCycle();
        vcd.sample(++cycles, runner.simulator().state());
    }
    vcd.write("explore_netlist.vcd");

    std::printf("ran to HALT in %llu cycles\n",
                static_cast<unsigned long long>(cycles));
    std::printf("r6 = %u, RAM[0x0900] = %u, P4OUT = %u (expect 35)\n",
                runner.reg(6), runner.ram(0x0900), runner.portOut(4));
    EnergyReport energy = computeEnergy(
        stats, runner.simulator().toggleStats());
    std::printf("energy: %s\n", energy.str().c_str());
    std::printf("wrote explore_netlist.vcd (%zu signals, %zu samples) "
                "-- open it in GTKWave\n",
                vcd.numSignals(), vcd.numSamples());
    return 0;
}
