file(REMOVE_RECURSE
  "CMakeFiles/test_toolflow.dir/test_toolflow.cc.o"
  "CMakeFiles/test_toolflow.dir/test_toolflow.cc.o.d"
  "test_toolflow"
  "test_toolflow.pdb"
  "test_toolflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_toolflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
