file(REMOVE_RECURSE
  "CMakeFiles/test_confidentiality.dir/test_confidentiality.cc.o"
  "CMakeFiles/test_confidentiality.dir/test_confidentiality.cc.o.d"
  "test_confidentiality"
  "test_confidentiality.pdb"
  "test_confidentiality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_confidentiality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
