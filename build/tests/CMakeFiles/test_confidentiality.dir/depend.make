# Empty dependencies file for test_confidentiality.
# This may be replaced when dependencies are built.
