file(REMOVE_RECURSE
  "CMakeFiles/test_xinject.dir/test_xinject.cc.o"
  "CMakeFiles/test_xinject.dir/test_xinject.cc.o.d"
  "test_xinject"
  "test_xinject.pdb"
  "test_xinject[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xinject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
