# Empty dependencies file for test_xinject.
# This may be replaced when dependencies are built.
