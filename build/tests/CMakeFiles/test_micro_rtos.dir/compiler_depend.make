# Empty compiler generated dependencies file for test_micro_rtos.
# This may be replaced when dependencies are built.
