file(REMOVE_RECURSE
  "CMakeFiles/test_micro_rtos.dir/test_micro_rtos.cc.o"
  "CMakeFiles/test_micro_rtos.dir/test_micro_rtos.cc.o.d"
  "test_micro_rtos"
  "test_micro_rtos.pdb"
  "test_micro_rtos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_micro_rtos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
