file(REMOVE_RECURSE
  "CMakeFiles/test_netlist_property.dir/test_netlist_property.cc.o"
  "CMakeFiles/test_netlist_property.dir/test_netlist_property.cc.o.d"
  "test_netlist_property"
  "test_netlist_property.pdb"
  "test_netlist_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netlist_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
