# Empty dependencies file for test_netlist_property.
# This may be replaced when dependencies are built.
