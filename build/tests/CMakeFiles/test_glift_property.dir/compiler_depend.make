# Empty compiler generated dependencies file for test_glift_property.
# This may be replaced when dependencies are built.
