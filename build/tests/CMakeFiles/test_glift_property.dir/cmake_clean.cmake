file(REMOVE_RECURSE
  "CMakeFiles/test_glift_property.dir/test_glift_property.cc.o"
  "CMakeFiles/test_glift_property.dir/test_glift_property.cc.o.d"
  "test_glift_property"
  "test_glift_property.pdb"
  "test_glift_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_glift_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
