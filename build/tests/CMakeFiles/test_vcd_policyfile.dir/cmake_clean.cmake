file(REMOVE_RECURSE
  "CMakeFiles/test_vcd_policyfile.dir/test_vcd_policyfile.cc.o"
  "CMakeFiles/test_vcd_policyfile.dir/test_vcd_policyfile.cc.o.d"
  "test_vcd_policyfile"
  "test_vcd_policyfile.pdb"
  "test_vcd_policyfile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vcd_policyfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
