# Empty compiler generated dependencies file for test_vcd_policyfile.
# This may be replaced when dependencies are built.
