# Empty dependencies file for test_symstate.
# This may be replaced when dependencies are built.
