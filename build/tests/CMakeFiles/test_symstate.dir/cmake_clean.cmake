file(REMOVE_RECURSE
  "CMakeFiles/test_symstate.dir/test_symstate.cc.o"
  "CMakeFiles/test_symstate.dir/test_symstate.cc.o.d"
  "test_symstate"
  "test_symstate.pdb"
  "test_symstate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
