file(REMOVE_RECURSE
  "CMakeFiles/test_policy_checker.dir/test_policy_checker.cc.o"
  "CMakeFiles/test_policy_checker.dir/test_policy_checker.cc.o.d"
  "test_policy_checker"
  "test_policy_checker.pdb"
  "test_policy_checker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
