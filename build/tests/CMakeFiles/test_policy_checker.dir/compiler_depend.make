# Empty compiler generated dependencies file for test_policy_checker.
# This may be replaced when dependencies are built.
