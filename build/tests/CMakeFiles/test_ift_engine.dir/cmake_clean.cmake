file(REMOVE_RECURSE
  "CMakeFiles/test_ift_engine.dir/test_ift_engine.cc.o"
  "CMakeFiles/test_ift_engine.dir/test_ift_engine.cc.o.d"
  "test_ift_engine"
  "test_ift_engine.pdb"
  "test_ift_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ift_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
