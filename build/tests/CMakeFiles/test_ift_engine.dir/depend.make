# Empty dependencies file for test_ift_engine.
# This may be replaced when dependencies are built.
