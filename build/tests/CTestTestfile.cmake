# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_logic[1]_include.cmake")
include("/root/repo/build/tests/test_glift_property[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_rtl[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_soc[1]_include.cmake")
include("/root/repo/build/tests/test_ift_engine[1]_include.cmake")
include("/root/repo/build/tests/test_symstate[1]_include.cmake")
include("/root/repo/build/tests/test_policy_checker[1]_include.cmake")
include("/root/repo/build/tests/test_xform[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_toolflow[1]_include.cmake")
include("/root/repo/build/tests/test_micro_rtos[1]_include.cmake")
include("/root/repo/build/tests/test_cosim[1]_include.cmake")
include("/root/repo/build/tests/test_netlist_property[1]_include.cmake")
include("/root/repo/build/tests/test_noninterference[1]_include.cmake")
include("/root/repo/build/tests/test_ablation[1]_include.cmake")
include("/root/repo/build/tests/test_confidentiality[1]_include.cmake")
include("/root/repo/build/tests/test_vcd_policyfile[1]_include.cmake")
include("/root/repo/build/tests/test_xinject[1]_include.cmake")
include("/root/repo/build/tests/test_fault_injection[1]_include.cmake")
