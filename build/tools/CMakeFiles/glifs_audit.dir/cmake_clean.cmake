file(REMOVE_RECURSE
  "CMakeFiles/glifs_audit.dir/glifs_audit.cc.o"
  "CMakeFiles/glifs_audit.dir/glifs_audit.cc.o.d"
  "glifs_audit"
  "glifs_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glifs_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
