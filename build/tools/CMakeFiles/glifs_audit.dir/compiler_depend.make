# Empty compiler generated dependencies file for glifs_audit.
# This may be replaced when dependencies are built.
