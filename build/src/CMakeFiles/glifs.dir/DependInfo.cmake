
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assembler/assembler.cc" "src/CMakeFiles/glifs.dir/assembler/assembler.cc.o" "gcc" "src/CMakeFiles/glifs.dir/assembler/assembler.cc.o.d"
  "/root/repo/src/assembler/lexer.cc" "src/CMakeFiles/glifs.dir/assembler/lexer.cc.o" "gcc" "src/CMakeFiles/glifs.dir/assembler/lexer.cc.o.d"
  "/root/repo/src/assembler/parser.cc" "src/CMakeFiles/glifs.dir/assembler/parser.cc.o" "gcc" "src/CMakeFiles/glifs.dir/assembler/parser.cc.o.d"
  "/root/repo/src/assembler/program_image.cc" "src/CMakeFiles/glifs.dir/assembler/program_image.cc.o" "gcc" "src/CMakeFiles/glifs.dir/assembler/program_image.cc.o.d"
  "/root/repo/src/base/bitutil.cc" "src/CMakeFiles/glifs.dir/base/bitutil.cc.o" "gcc" "src/CMakeFiles/glifs.dir/base/bitutil.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/glifs.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/glifs.dir/base/logging.cc.o.d"
  "/root/repo/src/base/strutil.cc" "src/CMakeFiles/glifs.dir/base/strutil.cc.o" "gcc" "src/CMakeFiles/glifs.dir/base/strutil.cc.o.d"
  "/root/repo/src/ift/checker.cc" "src/CMakeFiles/glifs.dir/ift/checker.cc.o" "gcc" "src/CMakeFiles/glifs.dir/ift/checker.cc.o.d"
  "/root/repo/src/ift/engine.cc" "src/CMakeFiles/glifs.dir/ift/engine.cc.o" "gcc" "src/CMakeFiles/glifs.dir/ift/engine.cc.o.d"
  "/root/repo/src/ift/exec_tree.cc" "src/CMakeFiles/glifs.dir/ift/exec_tree.cc.o" "gcc" "src/CMakeFiles/glifs.dir/ift/exec_tree.cc.o.d"
  "/root/repo/src/ift/policy.cc" "src/CMakeFiles/glifs.dir/ift/policy.cc.o" "gcc" "src/CMakeFiles/glifs.dir/ift/policy.cc.o.d"
  "/root/repo/src/ift/policy_file.cc" "src/CMakeFiles/glifs.dir/ift/policy_file.cc.o" "gcc" "src/CMakeFiles/glifs.dir/ift/policy_file.cc.o.d"
  "/root/repo/src/ift/rootcause.cc" "src/CMakeFiles/glifs.dir/ift/rootcause.cc.o" "gcc" "src/CMakeFiles/glifs.dir/ift/rootcause.cc.o.d"
  "/root/repo/src/ift/state_table.cc" "src/CMakeFiles/glifs.dir/ift/state_table.cc.o" "gcc" "src/CMakeFiles/glifs.dir/ift/state_table.cc.o.d"
  "/root/repo/src/ift/symstate.cc" "src/CMakeFiles/glifs.dir/ift/symstate.cc.o" "gcc" "src/CMakeFiles/glifs.dir/ift/symstate.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/glifs.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/glifs.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/CMakeFiles/glifs.dir/isa/isa.cc.o" "gcc" "src/CMakeFiles/glifs.dir/isa/isa.cc.o.d"
  "/root/repo/src/isa/iss.cc" "src/CMakeFiles/glifs.dir/isa/iss.cc.o" "gcc" "src/CMakeFiles/glifs.dir/isa/iss.cc.o.d"
  "/root/repo/src/logic/glift.cc" "src/CMakeFiles/glifs.dir/logic/glift.cc.o" "gcc" "src/CMakeFiles/glifs.dir/logic/glift.cc.o.d"
  "/root/repo/src/logic/ternary.cc" "src/CMakeFiles/glifs.dir/logic/ternary.cc.o" "gcc" "src/CMakeFiles/glifs.dir/logic/ternary.cc.o.d"
  "/root/repo/src/netlist/builder.cc" "src/CMakeFiles/glifs.dir/netlist/builder.cc.o" "gcc" "src/CMakeFiles/glifs.dir/netlist/builder.cc.o.d"
  "/root/repo/src/netlist/dot_export.cc" "src/CMakeFiles/glifs.dir/netlist/dot_export.cc.o" "gcc" "src/CMakeFiles/glifs.dir/netlist/dot_export.cc.o.d"
  "/root/repo/src/netlist/levelize.cc" "src/CMakeFiles/glifs.dir/netlist/levelize.cc.o" "gcc" "src/CMakeFiles/glifs.dir/netlist/levelize.cc.o.d"
  "/root/repo/src/netlist/memory_array.cc" "src/CMakeFiles/glifs.dir/netlist/memory_array.cc.o" "gcc" "src/CMakeFiles/glifs.dir/netlist/memory_array.cc.o.d"
  "/root/repo/src/netlist/netlist.cc" "src/CMakeFiles/glifs.dir/netlist/netlist.cc.o" "gcc" "src/CMakeFiles/glifs.dir/netlist/netlist.cc.o.d"
  "/root/repo/src/netlist/stats.cc" "src/CMakeFiles/glifs.dir/netlist/stats.cc.o" "gcc" "src/CMakeFiles/glifs.dir/netlist/stats.cc.o.d"
  "/root/repo/src/netlist/validate.cc" "src/CMakeFiles/glifs.dir/netlist/validate.cc.o" "gcc" "src/CMakeFiles/glifs.dir/netlist/validate.cc.o.d"
  "/root/repo/src/power/energy_model.cc" "src/CMakeFiles/glifs.dir/power/energy_model.cc.o" "gcc" "src/CMakeFiles/glifs.dir/power/energy_model.cc.o.d"
  "/root/repo/src/rtl/arith.cc" "src/CMakeFiles/glifs.dir/rtl/arith.cc.o" "gcc" "src/CMakeFiles/glifs.dir/rtl/arith.cc.o.d"
  "/root/repo/src/rtl/bus.cc" "src/CMakeFiles/glifs.dir/rtl/bus.cc.o" "gcc" "src/CMakeFiles/glifs.dir/rtl/bus.cc.o.d"
  "/root/repo/src/rtl/components.cc" "src/CMakeFiles/glifs.dir/rtl/components.cc.o" "gcc" "src/CMakeFiles/glifs.dir/rtl/components.cc.o.d"
  "/root/repo/src/rtl/lut.cc" "src/CMakeFiles/glifs.dir/rtl/lut.cc.o" "gcc" "src/CMakeFiles/glifs.dir/rtl/lut.cc.o.d"
  "/root/repo/src/rtl/regfile.cc" "src/CMakeFiles/glifs.dir/rtl/regfile.cc.o" "gcc" "src/CMakeFiles/glifs.dir/rtl/regfile.cc.o.d"
  "/root/repo/src/sim/signal_state.cc" "src/CMakeFiles/glifs.dir/sim/signal_state.cc.o" "gcc" "src/CMakeFiles/glifs.dir/sim/signal_state.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/glifs.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/glifs.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/toggle_stats.cc" "src/CMakeFiles/glifs.dir/sim/toggle_stats.cc.o" "gcc" "src/CMakeFiles/glifs.dir/sim/toggle_stats.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/glifs.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/glifs.dir/sim/trace.cc.o.d"
  "/root/repo/src/sim/vcd.cc" "src/CMakeFiles/glifs.dir/sim/vcd.cc.o" "gcc" "src/CMakeFiles/glifs.dir/sim/vcd.cc.o.d"
  "/root/repo/src/soc/address_map.cc" "src/CMakeFiles/glifs.dir/soc/address_map.cc.o" "gcc" "src/CMakeFiles/glifs.dir/soc/address_map.cc.o.d"
  "/root/repo/src/soc/alu.cc" "src/CMakeFiles/glifs.dir/soc/alu.cc.o" "gcc" "src/CMakeFiles/glifs.dir/soc/alu.cc.o.d"
  "/root/repo/src/soc/control.cc" "src/CMakeFiles/glifs.dir/soc/control.cc.o" "gcc" "src/CMakeFiles/glifs.dir/soc/control.cc.o.d"
  "/root/repo/src/soc/datapath.cc" "src/CMakeFiles/glifs.dir/soc/datapath.cc.o" "gcc" "src/CMakeFiles/glifs.dir/soc/datapath.cc.o.d"
  "/root/repo/src/soc/gpio.cc" "src/CMakeFiles/glifs.dir/soc/gpio.cc.o" "gcc" "src/CMakeFiles/glifs.dir/soc/gpio.cc.o.d"
  "/root/repo/src/soc/runner.cc" "src/CMakeFiles/glifs.dir/soc/runner.cc.o" "gcc" "src/CMakeFiles/glifs.dir/soc/runner.cc.o.d"
  "/root/repo/src/soc/soc.cc" "src/CMakeFiles/glifs.dir/soc/soc.cc.o" "gcc" "src/CMakeFiles/glifs.dir/soc/soc.cc.o.d"
  "/root/repo/src/soc/watchdog.cc" "src/CMakeFiles/glifs.dir/soc/watchdog.cc.o" "gcc" "src/CMakeFiles/glifs.dir/soc/watchdog.cc.o.d"
  "/root/repo/src/starlogic/starlogic.cc" "src/CMakeFiles/glifs.dir/starlogic/starlogic.cc.o" "gcc" "src/CMakeFiles/glifs.dir/starlogic/starlogic.cc.o.d"
  "/root/repo/src/workloads/benchmarks.cc" "src/CMakeFiles/glifs.dir/workloads/benchmarks.cc.o" "gcc" "src/CMakeFiles/glifs.dir/workloads/benchmarks.cc.o.d"
  "/root/repo/src/workloads/micro.cc" "src/CMakeFiles/glifs.dir/workloads/micro.cc.o" "gcc" "src/CMakeFiles/glifs.dir/workloads/micro.cc.o.d"
  "/root/repo/src/workloads/motivation.cc" "src/CMakeFiles/glifs.dir/workloads/motivation.cc.o" "gcc" "src/CMakeFiles/glifs.dir/workloads/motivation.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/glifs.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/glifs.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/rtos.cc" "src/CMakeFiles/glifs.dir/workloads/rtos.cc.o" "gcc" "src/CMakeFiles/glifs.dir/workloads/rtos.cc.o.d"
  "/root/repo/src/workloads/toolflow.cc" "src/CMakeFiles/glifs.dir/workloads/toolflow.cc.o" "gcc" "src/CMakeFiles/glifs.dir/workloads/toolflow.cc.o.d"
  "/root/repo/src/xform/always_on.cc" "src/CMakeFiles/glifs.dir/xform/always_on.cc.o" "gcc" "src/CMakeFiles/glifs.dir/xform/always_on.cc.o.d"
  "/root/repo/src/xform/masking.cc" "src/CMakeFiles/glifs.dir/xform/masking.cc.o" "gcc" "src/CMakeFiles/glifs.dir/xform/masking.cc.o.d"
  "/root/repo/src/xform/overhead.cc" "src/CMakeFiles/glifs.dir/xform/overhead.cc.o" "gcc" "src/CMakeFiles/glifs.dir/xform/overhead.cc.o.d"
  "/root/repo/src/xform/slicing.cc" "src/CMakeFiles/glifs.dir/xform/slicing.cc.o" "gcc" "src/CMakeFiles/glifs.dir/xform/slicing.cc.o.d"
  "/root/repo/src/xform/watchdog_xform.cc" "src/CMakeFiles/glifs.dir/xform/watchdog_xform.cc.o" "gcc" "src/CMakeFiles/glifs.dir/xform/watchdog_xform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
