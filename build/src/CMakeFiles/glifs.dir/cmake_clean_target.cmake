file(REMOVE_RECURSE
  "libglifs.a"
)
