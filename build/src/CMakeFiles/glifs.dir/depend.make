# Empty dependencies file for glifs.
# This may be replaced when dependencies are built.
