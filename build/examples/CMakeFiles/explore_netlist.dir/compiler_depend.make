# Empty compiler generated dependencies file for explore_netlist.
# This may be replaced when dependencies are built.
