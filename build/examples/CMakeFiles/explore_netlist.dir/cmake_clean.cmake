file(REMOVE_RECURSE
  "CMakeFiles/explore_netlist.dir/explore_netlist.cpp.o"
  "CMakeFiles/explore_netlist.dir/explore_netlist.cpp.o.d"
  "explore_netlist"
  "explore_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
