file(REMOVE_RECURSE
  "CMakeFiles/secure_rtos.dir/secure_rtos.cpp.o"
  "CMakeFiles/secure_rtos.dir/secure_rtos.cpp.o.d"
  "secure_rtos"
  "secure_rtos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_rtos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
