# Empty compiler generated dependencies file for secure_rtos.
# This may be replaced when dependencies are built.
