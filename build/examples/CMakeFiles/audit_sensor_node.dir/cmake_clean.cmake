file(REMOVE_RECURSE
  "CMakeFiles/audit_sensor_node.dir/audit_sensor_node.cpp.o"
  "CMakeFiles/audit_sensor_node.dir/audit_sensor_node.cpp.o.d"
  "audit_sensor_node"
  "audit_sensor_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_sensor_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
