# Empty compiler generated dependencies file for audit_sensor_node.
# This may be replaced when dependencies are built.
