# Empty compiler generated dependencies file for bench_footnote8_starlogic.
# This may be replaced when dependencies are built.
