file(REMOVE_RECURSE
  "CMakeFiles/bench_footnote8_starlogic.dir/bench_footnote8_starlogic.cc.o"
  "CMakeFiles/bench_footnote8_starlogic.dir/bench_footnote8_starlogic.cc.o.d"
  "bench_footnote8_starlogic"
  "bench_footnote8_starlogic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_footnote8_starlogic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
