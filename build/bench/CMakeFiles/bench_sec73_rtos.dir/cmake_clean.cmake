file(REMOVE_RECURSE
  "CMakeFiles/bench_sec73_rtos.dir/bench_sec73_rtos.cc.o"
  "CMakeFiles/bench_sec73_rtos.dir/bench_sec73_rtos.cc.o.d"
  "bench_sec73_rtos"
  "bench_sec73_rtos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec73_rtos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
