# Empty compiler generated dependencies file for bench_sec73_rtos.
# This may be replaced when dependencies are built.
