# Empty dependencies file for bench_analysis_runtime.
# This may be replaced when dependencies are built.
