file(REMOVE_RECURSE
  "CMakeFiles/bench_analysis_runtime.dir/bench_analysis_runtime.cc.o"
  "CMakeFiles/bench_analysis_runtime.dir/bench_analysis_runtime.cc.o.d"
  "bench_analysis_runtime"
  "bench_analysis_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
