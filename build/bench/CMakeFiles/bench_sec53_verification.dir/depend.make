# Empty dependencies file for bench_sec53_verification.
# This may be replaced when dependencies are built.
