file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_verification.dir/bench_sec53_verification.cc.o"
  "CMakeFiles/bench_sec53_verification.dir/bench_sec53_verification.cc.o.d"
  "bench_sec53_verification"
  "bench_sec53_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
