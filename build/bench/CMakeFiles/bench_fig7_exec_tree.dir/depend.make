# Empty dependencies file for bench_fig7_exec_tree.
# This may be replaced when dependencies are built.
