/**
 * @file
 * Figures 3-5 reproduction (Section 3 motivation): a known application
 * can be verified secure on a commodity processor (Fig. 3); a tainted
 * offset makes it insecure (Fig. 4); a software mask restores security
 * (Fig. 5).
 */

#include <cstdio>

#include "assembler/assembler.hh"
#include "ift/rootcause.hh"
#include "workloads/motivation.hh"

#include "bench_common.hh"

using namespace glifs;

namespace
{

void
runExample(const Soc &soc, const MicroBenchmark &mb)
{
    ProgramImage img = assembleSource(mb.source);
    IftEngine engine(soc, mb.policy, EngineConfig{});
    EngineResult r = engine.run(img);
    std::printf("--- %s ---\n", mb.name.c_str());
    std::printf("    %s\n", mb.description.c_str());
    std::printf("    analysis: %s\n", r.summary().c_str());
    std::printf("    verdict:  %s\n",
                r.secure() ? "SECURE (no possible insecure information "
                             "flows)"
                           : "INSECURE");
    if (!r.secure()) {
        RootCauseReport rc = analyzeRootCauses(r, mb.policy, &img);
        std::printf("%s", rc.str(&img).c_str());
    }
    std::printf("\n");
}

} // namespace

int
runBench()
{
    std::printf("=== Figures 3-5: motivation examples ===\n\n");
    Soc soc;
    runExample(soc, figure3Clean());
    runExample(soc, figure4Vulnerable());
    runExample(soc, figure5Masked());
    std::printf(
        "Shape check (paper Section 3): Fig. 3 secure as-is on commodity\n"
        "hardware; Fig. 4 insecure (tainted offset reaches untainted\n"
        "memory/ports); Fig. 5 secure again after software masking.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return glifs::benchjson::printerMain(argc, argv, "fig345_motivation",
                                         [] { return runBench(); });
}
