/**
 * @file
 * Ablation of the two design choices DESIGN.md calls out for the
 * analysis engine:
 *
 *  1. conservative state merging (Algorithm 1's termination device):
 *     without it, even a trivial input-dependent loop exhausts any
 *     cycle budget;
 *  2. CFG-precise successors for conditional jumps: bit-wise next-PC
 *     enumeration still converges but explores a superset of paths.
 */

#include <cstdio>
#include <string>

#include "ift/engine.hh"
#include "workloads/workload.hh"

#include "bench_common.hh"

using namespace glifs;

namespace
{

void
row(const char *label, const EngineResult &r)
{
    std::printf("  %-28s | %9s | %9llu | %6zu | %6zu\n", label,
                r.completed ? "converged" : "BUDGET",
                static_cast<unsigned long long>(r.cyclesSimulated),
                r.pathsExplored, r.merges + r.subsumptions);
}

} // namespace

int
runBench()
{
    Soc soc;
    std::printf("=== Engine ablations ===\n\n");

    for (const char *name : {"tHold", "binSearch"}) {
        const Workload &w = workloadByName(name);
        ProgramImage img = w.image();
        std::printf("%s:\n", name);
        std::printf("  %-28s | %9s | %9s | %6s | %6s\n", "configuration",
                    "result", "cycles", "paths", "prunes");
        std::printf("  -----------------------------+-----------+------"
                    "-----+--------+-------\n");

        EngineConfig base;
        IftEngine e1(soc, w.policy(), base);
        row("full engine", e1.run(img));

        EngineConfig noprec = base;
        noprec.preciseJumpTargets = false;
        noprec.trackTaintedNets = false;
        noprec.maxCycles = 150000;  // superset exploration can explode
        IftEngine e2(soc, w.policy(), noprec);
        row("bit-enumerated jump targets", e2.run(img));

        if (std::string(name) == "tHold") {
            // Without merging the exploration cannot converge; bound
            // it tightly (forked snapshots are expensive).
            EngineConfig nomerge = base;
            nomerge.disableMerging = true;
            nomerge.maxCycles = 10000;
            nomerge.trackTaintedNets = false;
            IftEngine e3(soc, w.policy(), nomerge);
            row("no state merging (10k budget)", e3.run(img));
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    std::printf("Merging is what makes exploration of unbounded input "
                "spaces terminate\n(Section 4.1); precise CFG "
                "successors trim the conservative next-PC\nsuperset "
                "but are not required for convergence.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return glifs::benchjson::printerMain(argc, argv, "ablation_engine",
                                         [] { return runBench(); });
}
