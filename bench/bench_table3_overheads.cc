/**
 * @file
 * Table 3 reproduction: performance overhead (%) of the software
 * information-flow protections, applied WITH application-specific
 * analysis (only where needed, with only the flagged stores masked)
 * versus WITHOUT analysis (the always-on baseline: every task store
 * masked and every task watchdog-bounded).
 *
 * All numbers are measured by input-based gate-level simulation: each
 * variant runs to task completion (including the idle padding of the
 * final watchdog slice), trying every watchdog interval and keeping
 * the best, exactly as the paper's toolflow selects slice sizes.
 */

#include <cstdio>

#include "workloads/toolflow.hh"
#include "xform/overhead.hh"

#include "bench_common.hh"

using namespace glifs;

namespace
{

/** Best measured cycle count over the four watchdog intervals. */
uint64_t
bestOverIntervals(const Soc &soc,
                  const std::function<ProgramImage(unsigned)> &build)
{
    uint64_t best = ~0ULL;
    for (unsigned sel = 0; sel < 4; ++sel) {
        MeasureConfig cfg;
        cfg.runToPorAfterDone = true;
        cfg.maxCycles = 400000;
        MeasuredRun run = measureRun(soc, build(sel), cfg);
        if (run.completed && run.cycles < best)
            best = run.cycles;
    }
    return best;
}

} // namespace

int
runBench()
{
    Soc soc;
    std::printf("=== Table 3: performance overhead (%%) of software-"
                "based protection ===\n\n");
    std::printf("%-10s | %9s | %-17s | %-17s\n", "Benchmark", "base cy",
                "Without Analysis", "With Analysis");
    std::printf("-----------+-----------+-------------------+--------"
                "---------\n");

    double sum_with = 0.0;
    double sum_without = 0.0;
    int n = 0;
    for (const Workload &w : allWorkloads()) {
        // Baseline: unmodified, unprotected.
        MeasureConfig base_cfg;
        base_cfg.maxCycles = 400000;
        MeasuredRun base = measureRun(soc, w.image(), base_cfg);
        if (!base.completed) {
            std::printf("%-10s | (baseline did not complete)\n",
                        w.name.c_str());
            continue;
        }

        // Without analysis: always-on masking + watchdog bounding.
        uint64_t without = bestOverIntervals(soc, [&](unsigned sel) {
            return alwaysOnWorkload(w, sel).image;
        });

        // With analysis: the toolflow's secured program (no overhead at
        // all when the benchmark is secure as-is).
        ToolflowResult probe = secureWorkload(soc, w);
        uint64_t with_cycles;
        if (!probe.modified()) {
            with_cycles = base.cycles;
        } else {
            with_cycles = bestOverIntervals(soc, [&](unsigned sel) {
                return secureWorkload(soc, w, sel).securedImage;
            });
        }

        double ov_with =
            100.0 * (static_cast<double>(with_cycles) - base.cycles) /
            base.cycles;
        double ov_without =
            100.0 * (static_cast<double>(without) - base.cycles) /
            base.cycles;
        sum_with += ov_with;
        sum_without += ov_without;
        ++n;
        std::printf("%-10s | %9llu | %12.2f %%    | %12.2f %%\n",
                    w.name.c_str(),
                    static_cast<unsigned long long>(base.cycles),
                    ov_without, ov_with);
        std::fflush(stdout);
    }

    double avg_with = sum_with / n;
    double avg_without = sum_without / n;
    std::printf("-----------+-----------+-------------------+--------"
                "---------\n");
    std::printf("%-10s | %9s | %12.2f %%    | %12.2f %%\n", "average",
                "", avg_without, avg_with);
    if (avg_with > 0.0) {
        std::printf("\nanalysis reduces protection overhead by %.1fx "
                    "(paper: 3.3x)\n", avg_without / avg_with);
    }
    std::printf("paper shape: zero overhead for the seven clean "
                "benchmarks with analysis;\nwithout analysis every "
                "benchmark pays masking + watchdog bounding.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return glifs::benchjson::printerMain(argc, argv, "table3_overheads",
                                         [] { return runBench(); });
}
