/**
 * @file
 * Figure 1 reproduction: the GLIFT truth table of a NAND gate (taint
 * propagates only when a tainted input can affect the output), plus
 * the tables of the other primitive gates and a google-benchmark
 * measurement of table-driven taint-propagation throughput.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "logic/glift.hh"

#include "bench_common.hh"

namespace
{

void
printTables()
{
    using namespace glifs;
    std::printf("=== Figure 1: GLIFT truth table (NAND) ===\n");
    std::printf("%s\n", GliftTables::truthTable(GateKind::Nand).c_str());
    for (GateKind k : {GateKind::And, GateKind::Or, GateKind::Xor}) {
        std::printf("%s\n", GliftTables::truthTable(k).c_str());
    }
}

void
BM_GliftEvalNand(benchmark::State &state)
{
    using namespace glifs;
    Signal in[2] = {sigBool(1, true), sigBool(0, false)};
    for (auto _ : state) {
        in[1].taint = !in[1].taint;
        Signal out = gliftEval(GateKind::Nand, in);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GliftEvalNand);

void
BM_GliftEvalMux(benchmark::State &state)
{
    using namespace glifs;
    Signal in[3] = {Signal{glifs::Tern::X, true}, sigBool(0), sigBool(1)};
    for (auto _ : state) {
        Signal out = gliftEval(GateKind::Mux, in);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GliftEvalMux);

void
BM_GliftReferenceNand(benchmark::State &state)
{
    using namespace glifs;
    Signal in[2] = {sigBool(1, true), Signal{glifs::Tern::X, false}};
    for (auto _ : state) {
        Signal out = GliftTables::evalReference(GateKind::Nand, in);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GliftReferenceNand);

} // namespace

int
main(int argc, char **argv)
{
    return glifs::benchjson::benchMain(argc, argv,
                                       "fig1_glift_truth_table", "",
                                       printTables);
}
