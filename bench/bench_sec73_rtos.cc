/**
 * @file
 * Section 7.3 reproduction: information-flow-secure scheduling. A
 * MiniRTOS round-robin scheduler multiplexes a trusted div task and an
 * untrusted binSearch task. The unprotected baseline lets the
 * untrusted task's tainted control flow reach the scheduler and the
 * trusted task; the protected system (watchdog-sliced scheduling +
 * masked untrusted stores) verifies secure, at a small measured
 * overhead (the paper reports 0.83% on FreeRTOS).
 */

#include <cstdio>

#include "assembler/assembler.hh"
#include "ift/engine.hh"
#include "workloads/rtos.hh"
#include "xform/masking.hh"

#include "bench_common.hh"

using namespace glifs;

namespace
{

void
report(const Soc &soc, const MicroBenchmark &mb, uint64_t *cycles)
{
    ProgramImage img = assembleSource(mb.source);
    RtosMeasurement m = measureRtos(soc, img);
    IftEngine engine(soc, mb.policy, EngineConfig{});
    EngineResult r = engine.run(img);

    bool scheduler_compromised = false;
    bool partitions_escaped = false;
    bool wdt_tainted = false;
    for (const Violation &v : r.violations) {
        scheduler_compromised |=
            v.kind == ViolationKind::UntaintedCodeTaintedPc;
        partitions_escaped |=
            v.kind == ViolationKind::StoreUntaintedPartition;
        wdt_tainted |= v.kind == ViolationKind::WatchdogTainted;
    }

    std::printf("--- %s ---\n", mb.name.c_str());
    std::printf("  %s\n", mb.description.c_str());
    std::printf("  measured: both tasks complete in %llu cycles (%s)\n",
                static_cast<unsigned long long>(m.cycles),
                m.completed ? "ok" : "TIMEOUT");
    std::printf("  analysis: %s\n", r.summary().c_str());
    std::printf("  scheduler/trusted task sees tainted control: %s\n",
                scheduler_compromised ? "YES" : "no");
    std::printf("  untrusted stores escape their partition:     %s\n",
                partitions_escaped ? "YES" : "no");
    std::printf("  watchdog tainted:                            %s\n",
                wdt_tainted ? "YES" : "no");
    std::printf("  verdict: %s\n\n",
                r.secure() ? "VERIFIED SECURE" : "insecure");
    if (cycles != nullptr)
        *cycles = m.completed ? m.cycles : 0;
}

} // namespace

int
runBench()
{
    Soc soc;
    std::printf("=== Section 7.3: information flow secure scheduling "
                "(MiniRTOS) ===\n\n");

    // Masked stores in the protected untrusted task (paper: 330 store
    // instructions of binSearch were masked under FreeRTOS).
    {
        AsmProgram prot = parseSource(rtosProtected(1).source);
        size_t masked = 0;
        for (size_t i = 1; i < prot.items.size(); ++i) {
            const AsmItem &it = prot.items[i];
            if (it.kind == AsmItem::Kind::Instr && it.op == Op::And &&
                i + 1 < prot.items.size() &&
                prot.items[i + 1].op == Op::Bis)
                ++masked;
        }
        std::printf("masked store addresses in the untrusted task: %zu "
                    "(paper: 330 on FreeRTOS-scale code)\n\n", masked);
    }

    uint64_t base_cycles = 0;
    report(soc, rtosBaseline(), &base_cycles);

    uint64_t best = 0;
    unsigned best_sel = 0;
    for (unsigned sel = 0; sel < 3; ++sel) {
        RtosMeasurement m = measureRtos(
            soc, assembleSource(rtosProtected(sel).source));
        if (m.completed && (best == 0 || m.cycles < best)) {
            best = m.cycles;
            best_sel = sel;
        }
    }
    report(soc, rtosProtected(best_sel), nullptr);

    if (base_cycles != 0 && best != 0) {
        double overhead =
            100.0 * (static_cast<double>(best) - base_cycles) /
            base_cycles;
        std::printf("protection overhead: %.2f %% (best interval sel %u; "
                    "paper reports 0.83%% on FreeRTOS)\n",
                    overhead, best_sel);
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return glifs::benchjson::printerMain(argc, argv, "sec73_rtos",
                                         [] { return runBench(); });
}
