/**
 * @file
 * Shared `--json FILE` reporter for the bench binaries
 * (docs/OBSERVABILITY.md). Every bench accepts `--json FILE` (or
 * `--json=FILE`) and writes a machine-readable report combining the
 * google-benchmark run results (when the binary runs timed
 * benchmarks) with the full stats-registry snapshot, so a bench run
 * documents not just how fast it went but what work the instrumented
 * layers actually did.
 */

#ifndef GLIFS_BENCH_COMMON_HH
#define GLIFS_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "base/stats.hh"
#include "base/strutil.hh"

namespace glifs::benchjson
{

/** One timed benchmark run captured for the JSON report. */
struct RunResult
{
    std::string name;
    uint64_t iterations = 0;
    double realSeconds = 0.0;  ///< wall time per iteration
    double cpuSeconds = 0.0;   ///< CPU time per iteration
    std::vector<std::pair<std::string, double>> counters;
};

/**
 * Console reporter that also collects per-iteration numbers so the
 * JSON report sees exactly what was printed.
 */
class CollectingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &r : runs) {
            if (r.run_type != Run::RT_Iteration || r.error_occurred)
                continue;
            RunResult rr;
            rr.name = r.benchmark_name();
            rr.iterations = static_cast<uint64_t>(r.iterations);
            if (r.iterations > 0) {
                rr.realSeconds = r.real_accumulated_time /
                                 static_cast<double>(r.iterations);
                rr.cpuSeconds = r.cpu_accumulated_time /
                                static_cast<double>(r.iterations);
            }
            for (const auto &[cname, counter] : r.counters)
                rr.counters.emplace_back(cname, counter.value);
            results.push_back(std::move(rr));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    std::vector<RunResult> results;
};

/**
 * Pull `--json FILE` / `--json=FILE` out of argv (so it never reaches
 * benchmark::Initialize) and return the path; `fallback` when the
 * flag is absent.
 */
inline std::string
extractJsonPath(int &argc, char **argv,
                const std::string &fallback = "")
{
    std::string path = fallback;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            path = argv[++i];
        } else if (arg.rfind("--json=", 0) == 0) {
            path = arg.substr(7);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    return path;
}

/** Write the bench report: run results plus the stats snapshot. */
inline void
writeReport(const std::string &path, const std::string &benchName,
            const std::vector<RunResult> &results)
{
    std::ostringstream oss;
    oss << "{\n"
        << "  \"schema\": \"glifs.bench_report.v1\",\n"
        << "  \"benchmark\": " << jsonQuote(benchName) << ",\n"
        << "  \"results\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        oss << "    {\"name\": " << jsonQuote(r.name)
            << ", \"iterations\": " << r.iterations
            << ", \"real_time_sec\": " << r.realSeconds
            << ", \"cpu_time_sec\": " << r.cpuSeconds;
        for (const auto &[cname, value] : r.counters)
            oss << ", " << jsonQuote(cname) << ": " << value;
        oss << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    oss << "  ],\n"
        << "  \"stats\": "
        << stats::Registry::instance().snapshot().json(2) << "\n"
        << "}\n";

    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write bench report %s\n",
                     path.c_str());
        return;
    }
    out << oss.str();
    std::printf("bench report written to %s\n", path.c_str());
}

/**
 * Main body for benchmark-driven binaries: run the registered
 * benchmarks and honor `--json`. `preamble` (optional) prints the
 * reproduction tables before the timed runs.
 */
inline int
benchMain(int argc, char **argv, const std::string &benchName,
          const std::string &defaultJsonPath = "",
          const std::function<void()> &preamble = {})
{
    std::string jsonPath =
        extractJsonPath(argc, argv, defaultJsonPath);
    if (preamble)
        preamble();
    benchmark::Initialize(&argc, argv);
    CollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    if (!jsonPath.empty())
        writeReport(jsonPath, benchName, reporter.results);
    return 0;
}

/**
 * Main body for the plain table/figure printer binaries (no timed
 * benchmarks): run the printer, then report the stats snapshot the
 * run accumulated when `--json` was given.
 */
inline int
printerMain(int argc, char **argv, const std::string &benchName,
            const std::function<int()> &body)
{
    std::string jsonPath = extractJsonPath(argc, argv);
    int rc = body();
    if (!jsonPath.empty())
        writeReport(jsonPath, benchName, {});
    return rc;
}

} // namespace glifs::benchjson

#endif // GLIFS_BENCH_COMMON_HH
