/**
 * @file
 * Simulator-throughput ablation (supporting bench, not a paper table):
 * gate-evaluations per second of the GLIFT simulator in concrete and
 * symbolic operation, and the cost of symbolic state capture/restore/
 * merge -- the primitives the analysis engine's runtime (footnote 4)
 * is built from.
 *
 * The cycle benchmarks run the cross product of scheduling mode
 * (sweep:0 is the event-driven default, sweep:1 the full levelized
 * sweep; see DESIGN.md "Simulator scheduling") and evaluation backend
 * (interp:0 is the compiled bit-packed default, interp:1 the
 * per-signal table interpreter; DESIGN.md "Compiled evaluation"), and
 * report evals_per_cycle / skipped_per_cycle from the sim.* stats
 * registry deltas, plus a cycles_per_sec rate, so
 * BENCH_sim_throughput.json records the speedup and the
 * gate-evaluation reduction side by side.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "assembler/assembler.hh"
#include "base/stats.hh"
#include "bench_common.hh"
#include "ift/checkpoint.hh"
#include "ift/symstate.hh"
#include "netlist/stats.hh"
#include "soc/runner.hh"
#include "soc/soc.hh"

using namespace glifs;

namespace
{

Soc &
sharedSoc()
{
    static Soc soc;
    return soc;
}

ProgramImage
loopImage()
{
    return assembleSource(
        "        mov #1000, r4\n"
        "l:      add #3, r5\n"
        "        dec r4\n"
        "        jnz l\n"
        "        halt\n");
}

/**
 * Snapshot sim.* counters around the timing loop and report
 * per-cycle scheduling figures plus a cycles/sec rate.
 */
class SchedCounters
{
  public:
    SchedCounters()
    {
        stats::Snapshot s = stats::Registry::instance().snapshot();
        evals0 = s.value("sim.gate_evals");
        skipped0 = s.value("sim.gate_evals_skipped");
        edges0 = s.value("sim.clock_edges");
    }

    void
    report(benchmark::State &state) const
    {
        stats::Snapshot s = stats::Registry::instance().snapshot();
        const double edges = s.value("sim.clock_edges") - edges0;
        const double evals = s.value("sim.gate_evals") - evals0;
        const double skipped =
            s.value("sim.gate_evals_skipped") - skipped0;
        if (edges > 0) {
            state.counters["evals_per_cycle"] = evals / edges;
            state.counters["skipped_per_cycle"] = skipped / edges;
        }
        state.counters["cycles_per_sec"] = benchmark::Counter(
            static_cast<double>(state.iterations()),
            benchmark::Counter::kIsRate);
    }

  private:
    double evals0 = 0;
    double skipped0 = 0;
    double edges0 = 0;
};

void
BM_ConcreteCycle(benchmark::State &state)
{
    Soc &soc = sharedSoc();
    SocRunner runner(soc);
    runner.simulator().setFullSweepMode(state.range(0) != 0);
    runner.simulator().setBackend(state.range(1) != 0
                                      ? SimBackend::Interp
                                      : SimBackend::Packed);
    runner.load(loopImage());
    runner.reset();
    const size_t gates = computeStats(soc.netlist()).trackedGates();
    SchedCounters sched;
    for (auto _ : state)
        runner.stepCycle();
    sched.report(state);
    state.SetItemsProcessed(state.iterations() * gates);
    state.counters["gates"] = static_cast<double>(gates);
}
BENCHMARK(BM_ConcreteCycle)
    ->ArgNames({"sweep", "interp"})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1});

void
BM_SymbolicCycle(benchmark::State &state)
{
    // Same cycle loop but with unknown tainted inputs on every port.
    Soc &soc = sharedSoc();
    Simulator sim(soc.netlist());
    sim.setFullSweepMode(state.range(0) != 0);
    sim.setBackend(state.range(1) != 0 ? SimBackend::Interp
                                       : SimBackend::Packed);
    soc.loadProgram(sim.state(), loopImage());
    sim.markAllDirty();
    const SocProbes &prb = soc.probes();
    sim.setInput(prb.extReset, sigOne());
    for (unsigned p = 0; p < 4; ++p) {
        for (unsigned b = 0; b < 16; ++b)
            sim.setInput(prb.portIn[p][b], Signal{Tern::X, true});
    }
    sim.step();
    sim.setInput(prb.extReset, sigZero());
    const size_t gates = computeStats(soc.netlist()).trackedGates();
    SchedCounters sched;
    for (auto _ : state)
        sim.step();
    sched.report(state);
    state.SetItemsProcessed(state.iterations() * gates);
}
BENCHMARK(BM_SymbolicCycle)
    ->ArgNames({"sweep", "interp"})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1});

void
BM_SymStateCapture(benchmark::State &state)
{
    Soc &soc = sharedSoc();
    Simulator sim(soc.netlist());
    SymLayout layout(soc.netlist());
    SymState s(layout);
    for (auto _ : state) {
        s.capture(layout, sim.state());
        benchmark::DoNotOptimize(s.numSlots());
    }
    state.SetItemsProcessed(state.iterations() * layout.slots());
}
BENCHMARK(BM_SymStateCapture);

void
BM_SymStateSubsume(benchmark::State &state)
{
    Soc &soc = sharedSoc();
    Simulator sim(soc.netlist());
    SymLayout layout(soc.netlist());
    SymState a(layout);
    a.capture(layout, sim.state());
    SymState b = a;
    for (auto _ : state)
        benchmark::DoNotOptimize(a.subsumedBy(b));
    state.SetItemsProcessed(state.iterations() * layout.slots());
}
BENCHMARK(BM_SymStateSubsume);

void
BM_SymStateMerge(benchmark::State &state)
{
    Soc &soc = sharedSoc();
    Simulator sim(soc.netlist());
    SymLayout layout(soc.netlist());
    SymState a(layout);
    a.capture(layout, sim.state());
    SymState b = a;
    b.setSlot(0, sigBool(1, true));
    for (auto _ : state) {
        SymState m = a;
        m.mergeWith(b);
        benchmark::DoNotOptimize(m.taintCount());
    }
    state.SetItemsProcessed(state.iterations() * layout.slots());
}
BENCHMARK(BM_SymStateMerge);

void
BM_CheckpointSaveRestore(benchmark::State &state)
{
    // Round-trip a checkpoint whose frontier holds `frontier` full
    // symbolic states -- the dominant section by far, and the exact
    // payload the parallel coordinator ships per work unit. The save
    // path's thread-local scratch buffer keeps the loop
    // allocation-free after warm-up.
    Soc &soc = sharedSoc();
    Simulator sim(soc.netlist());
    SymLayout layout(soc.netlist());
    ProgramImage img = loopImage();
    EngineCheckpoint ck;
    ck.fingerprint = checkpointFingerprint(img, layout.slots(),
                                           soc.netlist().numNets());
    ck.everTainted = BitPlane(soc.netlist().numNets());
    SymState s(layout);
    s.capture(layout, sim.state());
    for (int64_t i = 0; i < state.range(0); ++i) {
        ck.frontier.emplace_back(s, static_cast<uint32_t>(i));
        ck.tree.push_back(ExecNode{});
    }
    const std::string path = "/tmp/glifs_bench_ckpt.bin";
    for (auto _ : state) {
        ck.save(path);
        EngineCheckpoint back = EngineCheckpoint::load(path);
        benchmark::DoNotOptimize(back.frontier.size());
    }
    std::remove(path.c_str());
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckpointSaveRestore)
    ->ArgNames({"frontier"})
    ->Args({1})
    ->Args({16})
    ->Args({64});

} // namespace

int
main(int argc, char **argv)
{
    // Default report in the working directory so CI picks it up as a
    // build artifact without extra plumbing (docs/OBSERVABILITY.md).
    return glifs::benchjson::benchMain(argc, argv, "sim_throughput",
                                       "BENCH_sim_throughput.json");
}
