/**
 * @file
 * Simulator-throughput ablation (supporting bench, not a paper table):
 * gate-evaluations per second of the levelized GLIFT simulator in
 * concrete and symbolic operation, and the cost of symbolic state
 * capture/restore/merge -- the primitives the analysis engine's
 * runtime (footnote 4) is built from.
 */

#include <benchmark/benchmark.h>

#include "assembler/assembler.hh"
#include "bench_common.hh"
#include "ift/symstate.hh"
#include "netlist/stats.hh"
#include "soc/runner.hh"
#include "soc/soc.hh"

using namespace glifs;

namespace
{

Soc &
sharedSoc()
{
    static Soc soc;
    return soc;
}

ProgramImage
loopImage()
{
    return assembleSource(
        "        mov #1000, r4\n"
        "l:      add #3, r5\n"
        "        dec r4\n"
        "        jnz l\n"
        "        halt\n");
}

void
BM_ConcreteCycle(benchmark::State &state)
{
    Soc &soc = sharedSoc();
    SocRunner runner(soc);
    runner.load(loopImage());
    runner.reset();
    const size_t gates = computeStats(soc.netlist()).trackedGates();
    for (auto _ : state)
        runner.stepCycle();
    state.SetItemsProcessed(state.iterations() * gates);
    state.counters["gates"] = static_cast<double>(gates);
}
BENCHMARK(BM_ConcreteCycle);

void
BM_SymbolicCycle(benchmark::State &state)
{
    // Same cycle loop but with unknown tainted inputs on every port.
    Soc &soc = sharedSoc();
    Simulator sim(soc.netlist());
    soc.loadProgram(sim.state(), loopImage());
    const SocProbes &prb = soc.probes();
    sim.setInput(prb.extReset, sigOne());
    for (unsigned p = 0; p < 4; ++p) {
        for (unsigned b = 0; b < 16; ++b)
            sim.setInput(prb.portIn[p][b], Signal{Tern::X, true});
    }
    sim.step();
    sim.setInput(prb.extReset, sigZero());
    const size_t gates = computeStats(soc.netlist()).trackedGates();
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations() * gates);
}
BENCHMARK(BM_SymbolicCycle);

void
BM_SymStateCapture(benchmark::State &state)
{
    Soc &soc = sharedSoc();
    Simulator sim(soc.netlist());
    SymLayout layout(soc.netlist());
    SymState s(layout);
    for (auto _ : state) {
        s.capture(layout, sim.state());
        benchmark::DoNotOptimize(s.numSlots());
    }
    state.SetItemsProcessed(state.iterations() * layout.slots());
}
BENCHMARK(BM_SymStateCapture);

void
BM_SymStateSubsume(benchmark::State &state)
{
    Soc &soc = sharedSoc();
    Simulator sim(soc.netlist());
    SymLayout layout(soc.netlist());
    SymState a(layout);
    a.capture(layout, sim.state());
    SymState b = a;
    for (auto _ : state)
        benchmark::DoNotOptimize(a.subsumedBy(b));
    state.SetItemsProcessed(state.iterations() * layout.slots());
}
BENCHMARK(BM_SymStateSubsume);

void
BM_SymStateMerge(benchmark::State &state)
{
    Soc &soc = sharedSoc();
    Simulator sim(soc.netlist());
    SymLayout layout(soc.netlist());
    SymState a(layout);
    a.capture(layout, sim.state());
    SymState b = a;
    b.setSlot(0, sigBool(1, true));
    for (auto _ : state) {
        SymState m = a;
        m.mergeWith(b);
        benchmark::DoNotOptimize(m.taintCount());
    }
    state.SetItemsProcessed(state.iterations() * layout.slots());
}
BENCHMARK(BM_SymStateMerge);

} // namespace

int
main(int argc, char **argv)
{
    // Default report in the working directory so CI picks it up as a
    // build artifact without extra plumbing (docs/OBSERVABILITY.md).
    return glifs::benchjson::benchMain(argc, argv, "sim_throughput",
                                       "BENCH_sim_throughput.json");
}
