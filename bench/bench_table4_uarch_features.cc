/**
 * @file
 * Table 4 reproduction: microarchitectural features in recent embedded
 * processors (Section 8). The survey motivates why ultra-low-power
 * IoT processors -- simple, deterministic, no caches or predictors --
 * are a good fit for input-independent symbolic co-analysis. The
 * IoT430 substrate used throughout this repository is shown alongside.
 */

#include <cstdio>

#include "netlist/stats.hh"
#include "soc/soc.hh"

#include "bench_common.hh"

int
runBench()
{
    std::printf("=== Table 4: microarchitectural features in recent "
                "embedded processors ===\n\n");
    struct Row
    {
        const char *processor;
        const char *predictor;
        const char *cache;
    };
    static const Row rows[] = {
        {"ARM Cortex-M0", "no", "no"},
        {"ARM Cortex-M3", "yes", "no"},
        {"Atmel ATxmega128A4", "no", "no"},
        {"Freescale/NXP MC13224v", "no", "no"},
        {"Intel Quark-D1000", "yes", "yes"},
        {"Jennic/NXP JN5169", "no", "no"},
        {"SiLab Si2012", "no", "no"},
        {"TI MSP430", "no", "no"},
        {"IoT430 (this repository)", "no", "no"},
    };
    std::printf("%-26s | %-16s | %s\n", "Processor", "Branch Predictor",
                "Cache");
    std::printf("---------------------------+------------------+------\n");
    for (const Row &r : rows)
        std::printf("%-26s | %-16s | %s\n", r.processor, r.predictor,
                    r.cache);

    glifs::Soc soc;
    glifs::NetlistStats stats = glifs::computeStats(soc.netlist());
    std::printf("\nIoT430 substrate: %s\n", stats.str().c_str());
    std::printf("(deterministic multi-cycle core: no speculation, no "
                "caches -- the class of\nprocessor the paper targets; "
                "see Section 8 for how co-analysis could extend\nto "
                "caches and prediction by X-injection on tag checks.)\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return glifs::benchjson::printerMain(argc, argv, "table4_uarch_features",
                                         [] { return runBench(); });
}
