/**
 * @file
 * Batch verification throughput (docs/BATCH.md): how fast the
 * process-parallel scheduler pushes a fleet of audits through, versus
 * running the same fleet serially, and what the content-addressed
 * cache turns a warm re-run into.
 *
 * Usage: bench_batch_throughput [--audit-bin PATH] [--json FILE]
 *
 * The worker binary defaults to `glifs_audit` next to this bench in
 * the build tree (tools/ vs bench/), falling back to $PATH. Reported
 * counters: jobs per second for --jobs 1 vs --jobs N, and the warm-
 * cache speedup on an identical second run.
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "base/logging.hh"
#include "batch/manifest.hh"
#include "batch/runner.hh"
#include "bench_common.hh"

using namespace glifs;

namespace
{

using Clock = std::chrono::steady_clock;

/** glifs_audit in the sibling tools/ directory of the build tree. */
std::string
defaultAuditBinary()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "glifs_audit";
    buf[n] = '\0';
    std::string self(buf);
    size_t slash = self.rfind('/');
    if (slash == std::string::npos)
        return "glifs_audit";
    std::string benchDir = self.substr(0, slash);
    size_t parent = benchDir.rfind('/');
    if (parent == std::string::npos)
        return "glifs_audit";
    return benchDir.substr(0, parent) + "/tools/glifs_audit";
}

/** An 8-job fleet over the cheap secure workloads. */
batch::Manifest
fleet()
{
    return batch::parseManifest(
        "batch throughput fleet\n"
        "job mult-a\n    workload mult\n"
        "job mult-b\n    workload mult\n    max-cycles 1000000\n"
        "job tea8-a\n    workload tea8\n"
        "job tea8-b\n    workload tea8\n    max-cycles 1000000\n"
        "job intFilt\n    workload intFilt\n"
        "job rle\n    workload rle\n"
        "job autocorr\n    workload autocorr\n"
        "job ConvEn\n    workload ConvEn\n");
}

double
timedRun(const batch::Manifest &m, const batch::BatchOptions &opts)
{
    Clock::time_point start = Clock::now();
    batch::BatchReport r = batch::runBatch(m, opts);
    double secs =
        std::chrono::duration<double>(Clock::now() - start).count();
    GLIFS_ASSERT(r.exitCode() == 0, "throughput fleet must verify, "
                 "got exit ", r.exitCode());
    return secs;
}

int
runBench(const std::string &auditBin)
{
    batch::Manifest m = fleet();
    std::string dir = "/tmp/glifs_bench_batch_" +
                      std::to_string(::getpid());

    batch::BatchOptions opts;
    opts.auditBinary = auditBin;
    opts.verbose = false;

    std::printf("batch throughput: %zu jobs, worker %s\n\n",
                m.jobs.size(), auditBin.c_str());

    // Cold, serial.
    opts.jobs = 1;
    opts.cacheDir = dir + "/serial";
    double serial = timedRun(m, opts);

    // Cold, parallel.
    opts.jobs = 8;
    opts.cacheDir = dir + "/parallel";
    double parallel = timedRun(m, opts);

    // Warm: identical run against the now-populated parallel cache.
    double warm = timedRun(m, opts);

    double n = static_cast<double>(m.jobs.size());
    std::printf("--jobs 1 (cold):  %6.2fs  %5.2f jobs/s\n", serial,
                n / serial);
    std::printf("--jobs 8 (cold):  %6.2fs  %5.2f jobs/s  "
                "(%.2fx speedup)\n",
                parallel, n / parallel, serial / parallel);
    std::printf("--jobs 8 (warm):  %6.4fs  (%.0fx over cold run: "
                "every job a cache hit)\n",
                warm, parallel / warm);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string auditBin;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--audit-bin" && i + 1 < argc)
            auditBin = argv[++i];
        else
            argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
    if (auditBin.empty())
        auditBin = defaultAuditBinary();

    return benchjson::printerMain(argc, argv, "batch_throughput",
                                  [&]() { return runBench(auditBin); });
}
