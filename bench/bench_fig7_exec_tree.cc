/**
 * @file
 * Figure 7 reproduction: application-specific gate-level information
 * flow tracking on the example state machine (S' = S xor In, with a
 * resettable flip-flop). The symbolic execution splits into two paths
 * when the PC becomes unknown after cycle 2; the left-hand path resets
 * with a *tainted* reset (taint survives), the right-hand path with an
 * *untainted* reset (taint cleared) -- reproducing the cycle-by-cycle
 * table of the figure.
 */

#include <cstdio>

#include "netlist/builder.hh"
#include "sim/simulator.hh"
#include "sim/trace.hh"

#include "bench_common.hh"

using namespace glifs;

namespace
{

struct Fig7Circuit
{
    Netlist nl;
    NetId in = kNoNet;
    NetId rst = kNoNet;
    NetId q = kNoNet;
    NetId s_next = kNoNet;

    Fig7Circuit()
    {
        NetBuilder nb(nl);
        in = nl.addInput("In");
        rst = nl.addInput("rst");
        DffHandle ff = nl.addDff("S");
        s_next = nb.bXor(ff.q, in);
        nl.connectDff(ff.gate, s_next, rst, nl.constNet(true));
        q = ff.q;
    }
};

struct Step
{
    Signal in;
    Signal rst;
};

/** Simulate one path and render the Figure-7 style table. */
void
runPath(const char *title, const std::vector<Step> &steps)
{
    Fig7Circuit c;
    Simulator sim(c.nl);
    TraceRecorder trace;
    trace.watch("S", c.q);
    trace.watch("In", c.in);
    trace.watch("rst", c.rst);
    trace.watch("S'", c.s_next);

    for (size_t cycle = 0; cycle < steps.size(); ++cycle) {
        sim.setInput(c.in, steps[cycle].in);
        sim.setInput(c.rst, steps[cycle].rst);
        sim.evalComb();
        trace.capture(cycle, sim.state());
        sim.clockEdge();
    }
    std::printf("%s\n%s\n", title, trace.str().c_str());
    std::printf("(a trailing ' marks a tainted value)\n\n");
}

} // namespace

int
runBench()
{
    std::printf("=== Figure 7: symbolic execution tree with taint ===\n\n");

    // Common prefix: cycles 0-2.
    const Step prefix[] = {
        {sigX(), sigBool(1, false)},          // cycle 0: untainted reset
        {sigBool(1, false), sigBool(0)},      // cycle 1: In = 1
        {sigBool(0, true), sigBool(0)},       // cycle 2: In = tainted 0
    };

    // Left-hand path: unknown untainted input, then a TAINTED reset.
    std::vector<Step> left(prefix, prefix + 3);
    left.push_back({sigX(), sigBool(0)});          // cycle 3: In = X
    left.push_back({sigX(), sigBool(1, true)});    // cycle 4: tainted rst
    left.push_back({sigBool(0), sigBool(0)});      // cycle 5
    runPath("--- left path (tainted reset: taint survives) ---", left);

    // Right-hand path: tainted input, then an UNTAINTED reset.
    std::vector<Step> right(prefix, prefix + 3);
    right.push_back({sigBool(1, true), sigBool(0)});   // cycle 3
    right.push_back({sigX(), sigBool(1, false)});      // cycle 4: clean rst
    right.push_back({sigBool(0), sigBool(0)});         // cycle 5
    runPath("--- right path (untainted reset: taint cleared) ---", right);

    std::printf("The executions split after cycle 2 when the PC becomes "
                "unknown; both\nbranches start tainted (S = 1'), and only "
                "the untainted reset recovers\nan untainted state "
                "(Section 4.3 of the paper).\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return glifs::benchjson::printerMain(argc, argv, "fig7_exec_tree",
                                         [] { return runBench(); });
}
