/**
 * @file
 * Section 5.3 reproduction: verification of the two software
 * techniques on the Figure 8 (watchdog timer reset) and Figure 9
 * (memory address masking) micro-benchmarks.
 */

#include <cstdio>

#include "assembler/assembler.hh"
#include "ift/engine.hh"
#include "workloads/micro.hh"

#include "bench_common.hh"

using namespace glifs;

namespace
{

EngineResult
analyze(const Soc &soc, const MicroBenchmark &mb)
{
    IftEngine engine(soc, mb.policy, EngineConfig{});
    return engine.run(assembleSource(mb.source));
}

bool
has(const EngineResult &r, ViolationKind kind)
{
    for (const Violation &v : r.violations) {
        if (v.kind == kind)
            return true;
    }
    return false;
}

} // namespace

int
runBench()
{
    Soc soc;
    std::printf("=== Section 5.3: verification of software techniques "
                "===\n\n");

    {
        EngineResult r = analyze(soc, fig8Unprotected());
        std::printf("Figure 8, left (no watchdog):\n  %s\n",
                    r.summary().c_str());
        std::printf("  PC tainted in task:        %s\n",
                    has(r, ViolationKind::TaintedControlFlow) ? "yes"
                                                              : "no");
        std::printf("  tainted PC reaches untainted code: %s  "
                    "(expected: yes)\n\n",
                    has(r, ViolationKind::UntaintedCodeTaintedPc)
                        ? "YES -- once tainted, never untainted again"
                        : "no");
    }
    {
        EngineResult r = analyze(soc, fig8Protected());
        std::printf("Figure 8, right (watchdog armed by untainted "
                    "code):\n  %s\n",
                    r.summary().c_str());
        std::printf("  tainted PC reaches untainted code: %s  "
                    "(expected: no)\n",
                    has(r, ViolationKind::UntaintedCodeTaintedPc)
                        ? "yes" : "NO -- POR recovers an untainted PC");
        std::printf("  watchdog write-enable tainted:     %s  "
                    "(expected: no)\n\n",
                    has(r, ViolationKind::WatchdogTainted) ? "yes"
                                                           : "NO");
    }
    {
        EngineResult r = analyze(soc, fig9Unmasked());
        std::printf("Figure 9, left (unmasked tainted offset):\n  %s\n",
                    r.summary().c_str());
        std::printf("  untainted memory tainted: %s  (expected: yes)\n\n",
                    has(r, ViolationKind::StoreUntaintedPartition)
                        ? "YES -- whole data memory reachable" : "no");
    }
    {
        EngineResult r = analyze(soc, fig9Masked());
        std::printf("Figure 9, right (masked offset):\n  %s\n",
                    r.summary().c_str());
        std::printf("  untainted memory tainted: %s  (expected: no)\n",
                    has(r, ViolationKind::StoreUntaintedPartition)
                        ? "yes"
                        : "NO -- store bounded to the tainted "
                          "partition");
        std::printf("  overall: %s\n",
                    r.secure() ? "verified secure" : "insecure");
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return glifs::benchjson::printerMain(argc, argv, "sec53_verification",
                                         [] { return runBench(); });
}
