/**
 * @file
 * Footnote 8 reproduction: applying *-logic (application-agnostic
 * static gate-level IFT) to the benchmarks with control dependences on
 * tainted inputs taints the PC and makes it unknown, turning the
 * majority of the processor's gates unknown-and-tainted (the paper
 * reports 70% on openMSP430), so the software fixes cannot be
 * verified. Our application-specific analysis verifies the same
 * (secured) binaries.
 */

#include <cstdio>

#include "starlogic/starlogic.hh"
#include "workloads/toolflow.hh"

#include "bench_common.hh"

using namespace glifs;

int
runBench()
{
    Soc soc;
    std::printf("=== Footnote 8: *-logic vs application-specific "
                "analysis ===\n\n");
    std::printf("%-10s | %-28s | %s\n", "Benchmark",
                "*-logic on secured binary", "app-specific analysis");
    std::printf("-----------+------------------------------+----------"
                "------------\n");

    double taint_sum = 0.0;
    int aborted = 0;
    int verified_by_ours = 0;
    int violators = 0;
    for (const Workload &w : allWorkloads()) {
        if (!w.expectC1)
            continue;
        ++violators;
        // Secure the benchmark with the toolflow, then ask both
        // analyses to verify the secured binary.
        ToolflowResult tf = secureWorkload(soc, w);
        StarLogicResult star =
            runStarLogic(soc, w.policy(), tf.securedImage);

        char starbuf[64];
        if (star.aborted) {
            ++aborted;
            taint_sum += star.taintedGateFraction;
            std::snprintf(starbuf, sizeof(starbuf),
                          "ABORTED, %.1f%% gates tainted",
                          100.0 * star.taintedGateFraction);
        } else {
            std::snprintf(starbuf, sizeof(starbuf), "%s",
                          star.verified ? "verified" : "violations");
        }
        verified_by_ours += tf.verified();
        std::printf("%-10s | %-28s | %s\n", w.name.c_str(), starbuf,
                    tf.verified() ? "verified secure" : "NOT verified");
        std::fflush(stdout);
    }

    std::printf("\n*-logic aborted on %d/%d benchmarks with tainted "
                "control dependences,\ntainting %.1f%% of gates on "
                "average (paper: 70%% of MSP430 gates);\napplication-"
                "specific analysis verified %d/%d of the secured "
                "binaries.\n",
                aborted, violators,
                aborted ? 100.0 * taint_sum / aborted : 0.0,
                verified_by_ours, violators);
    return 0;
}

int
main(int argc, char **argv)
{
    return glifs::benchjson::printerMain(argc, argv, "footnote8_starlogic",
                                         [] { return runBench(); });
}
