/**
 * @file
 * Parallel-exploration scaling (DESIGN.md, "Parallel exploration"):
 * wall-clock rate of `glifs_audit --explore-jobs N` over the serial
 * engine on the protected-RTOS firmware, for N in {1, 2, 4, 8}.
 *
 * Usage: bench_explore_scaling [--audit-bin PATH] [--json FILE]
 *
 * Every row reports `cycles_per_sec` (simulated engine cycles over
 * wall time -- identical numerators across N, since the parallel
 * coordinator is bit-identical to the serial engine), the
 * `speedup_vs_serial` ratio, and the machine's online `cpus`. The
 * cpus counter is load-bearing: `check_bench_regression.py
 * --scaling-floor` normalizes the expected speedup by
 * min(jobs, cpus), so a 1-core CI runner holds the coordinator to
 * "no slower than serial" while a many-core box is held to real
 * scaling. On a single core the fleet still wins whenever the
 * frontier revisits states (the digest cache de-duplicates segment
 * simulation that the serial engine only prunes after the fact), but
 * that surplus is workload-dependent and deliberately not floored.
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "bench_common.hh"
#include "workloads/rtos.hh"

using namespace glifs;

namespace
{

using Clock = std::chrono::steady_clock;

/** glifs_audit in the sibling tools/ directory of the build tree. */
std::string
defaultAuditBinary()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "glifs_audit";
    buf[n] = '\0';
    std::string self(buf);
    size_t slash = self.rfind('/');
    if (slash == std::string::npos)
        return "glifs_audit";
    std::string benchDir = self.substr(0, slash);
    size_t parent = benchDir.rfind('/');
    if (parent == std::string::npos)
        return "glifs_audit";
    return benchDir.substr(0, parent) + "/tools/glifs_audit";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

uint64_t
jsonCounter(const std::string &json, const std::string &key)
{
    size_t at = json.find("\"" + key + "\":");
    GLIFS_ASSERT(at != std::string::npos, "run report missing ", key);
    return std::strtoull(json.c_str() + at + key.size() + 3, nullptr,
                         10);
}

/** Materialize the protected-RTOS firmware -- the deepest frontier
 *  of any workload we ship, hence the headline scaling subject. */
std::string
materializeWorkload(const std::string &dir)
{
    const std::string asmFile = dir + "/rtos_protected.s";
    std::ofstream out(asmFile);
    out << rtosProtected().source;
    return asmFile;
}

int
runBench(const std::string &auditBin, const std::string &jsonPath)
{
    const std::string dir =
        "/tmp/glifs_bench_explore_" + std::to_string(::getpid());
    GLIFS_ASSERT(std::system(("mkdir -p " + dir).c_str()) == 0,
                 "cannot create ", dir);
    const std::string asmFile = materializeWorkload(dir);
    const double cpus = static_cast<double>(
        ::sysconf(_SC_NPROCESSORS_ONLN));

    std::printf("explore scaling: %s on rtos_protected "
                "(%.0f online cpu%s)\n\n",
                auditBin.c_str(), cpus, cpus == 1 ? "" : "s");

    std::vector<benchjson::RunResult> rows;
    double serialRate = 0;
    uint64_t serialCycles = 0;
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        const std::string rep = dir + "/report." +
                                std::to_string(jobs) + ".json";
        std::ostringstream cmd;
        cmd << auditBin << " " << asmFile << " --explore-jobs "
            << jobs << " --stats-json " << rep
            << " > /dev/null 2>&1";
        Clock::time_point t0 = Clock::now();
        int rc = std::system(cmd.str().c_str());
        double secs =
            std::chrono::duration<double>(Clock::now() - t0).count();
        GLIFS_ASSERT(rc == 0, "scaling run jobs=", jobs,
                     " failed with ", rc);

        const std::string report = readFile(rep);
        // Total simulated engine cycles: identical across N (the
        // coordinator charges cached segments exactly like inline
        // ones), so rate ratios are pure wall-time ratios.
        const uint64_t cycles = jsonCounter(report, "cycles");
        if (jobs == 1) {
            serialCycles = cycles;
            serialRate = static_cast<double>(cycles) / secs;
        }
        GLIFS_ASSERT(cycles == serialCycles,
                     "jobs=", jobs, " diverged from serial: ",
                     cycles, " vs ", serialCycles, " cycles");
        const double rate = static_cast<double>(cycles) / secs;

        benchjson::RunResult row;
        row.name = "explore_scaling/jobs:" + std::to_string(jobs);
        row.iterations = 1;
        row.realSeconds = secs;
        row.cpuSeconds = secs;
        row.counters.emplace_back("cycles_per_sec", rate);
        row.counters.emplace_back("speedup_vs_serial",
                                  rate / serialRate);
        row.counters.emplace_back("cpus", cpus);
        rows.push_back(std::move(row));

        std::printf("--explore-jobs %u: %7.2fs  %12.0f cycles/s  "
                    "(%.2fx vs serial)\n",
                    jobs, secs, rate, rate / serialRate);
    }

    if (!jsonPath.empty())
        benchjson::writeReport(jsonPath, "explore_scaling", rows);
    std::system(("rm -rf " + dir).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string auditBin;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--audit-bin" && i + 1 < argc)
            auditBin = argv[++i];
        else
            argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
    if (auditBin.empty())
        auditBin = defaultAuditBinary();
    std::string jsonPath = benchjson::extractJsonPath(
        argc, argv, "BENCH_explore_scaling.json");

    return runBench(auditBin, jsonPath);
}
