/**
 * @file
 * Footnote 4 reproduction: tractability of input-independent gate-level
 * taint tracking. The paper notes its most complex system analyzes in
 * 3 hours on the authors' machine; this bench reports per-benchmark
 * analysis runtime and exploration statistics for our substrate, plus
 * google-benchmark timings of the two smallest/largest kernels.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "workloads/workload.hh"
#include "ift/engine.hh"

#include "bench_common.hh"

using namespace glifs;

namespace
{

Soc &
sharedSoc()
{
    static Soc soc;
    return soc;
}

void
printRuntimeTable()
{
    Soc &soc = sharedSoc();
    std::printf("=== Footnote 4: analysis runtime per benchmark ===\n\n");
    std::printf("%-10s | %10s | %8s | %8s | %8s | %8s\n", "Benchmark",
                "seconds", "cycles", "paths", "merges", "subsume");
    std::printf("-----------+------------+----------+----------+-------"
                "---+---------\n");
    double total = 0.0;
    for (const Workload &w : allWorkloads()) {
        IftEngine engine(soc, w.policy(), EngineConfig{});
        EngineResult r = engine.run(w.image());
        total += r.analysisSeconds;
        std::printf("%-10s | %10.3f | %8llu | %8zu | %8zu | %8zu\n",
                    w.name.c_str(), r.analysisSeconds,
                    static_cast<unsigned long long>(r.cyclesSimulated),
                    r.pathsExplored, r.merges, r.subsumptions);
        std::fflush(stdout);
    }
    std::printf("\ntotal: %.1f s for all 13 benchmarks (paper: up to 3 "
                "hours for the most\ncomplex system on openMSP430 -- "
                "the conservative state merging keeps\nexploration "
                "tractable despite unbounded input spaces).\n\n",
                total);
}

void
BM_AnalyzeWorkload(benchmark::State &state, const std::string &name)
{
    Soc &soc = sharedSoc();
    const Workload &w = workloadByName(name);
    ProgramImage img = w.image();
    Policy policy = w.policy();
    for (auto _ : state) {
        IftEngine engine(soc, policy, EngineConfig{});
        EngineResult r = engine.run(img);
        benchmark::DoNotOptimize(r.violations.size());
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_AnalyzeWorkload, mult, std::string("mult"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AnalyzeWorkload, tHold, std::string("tHold"))
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    return glifs::benchjson::benchMain(argc, argv,
                                       "analysis_runtime", "",
                                       printRuntimeTable);
}
