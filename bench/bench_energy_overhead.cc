/**
 * @file
 * Energy-overhead reproduction (Section 7 / abstract: eliminating the
 * identified vulnerabilities through software modification costs ~15%
 * energy on average). Energy is computed from gate-level switching
 * activity (toggle counts) plus leakage and memory access energy, for
 * the baseline and the analysis-secured binary of every benchmark.
 */

#include <cstdio>

#include "workloads/toolflow.hh"
#include "xform/overhead.hh"

#include "bench_common.hh"

using namespace glifs;

int
runBench()
{
    Soc soc;
    std::printf("=== Energy overhead of analysis-guided software "
                "protection ===\n\n");
    std::printf("%-10s | %12s | %12s | %s\n", "Benchmark", "base (pJ)",
                "secured (pJ)", "overhead");
    std::printf("-----------+--------------+--------------+---------\n");

    double sum = 0.0;
    double sum_violators = 0.0;
    int n = 0;
    int n_violators = 0;
    for (const Workload &w : allWorkloads()) {
        MeasureConfig base_cfg;
        base_cfg.maxCycles = 400000;
        MeasuredRun base = measureRun(soc, w.image(), base_cfg);

        ToolflowResult tf = secureWorkload(soc, w);
        MeasuredRun secured;
        if (!tf.modified()) {
            secured = base;
        } else {
            // Use the slice interval with the lowest measured energy.
            double best = -1.0;
            for (unsigned sel = 0; sel < 4; ++sel) {
                MeasureConfig cfg;
                cfg.runToPorAfterDone = true;
                cfg.maxCycles = 400000;
                MeasuredRun run = measureRun(
                    soc, secureWorkload(soc, w, sel).securedImage, cfg);
                if (run.completed &&
                    (best < 0.0 || run.energy.totalFj() < best)) {
                    best = run.energy.totalFj();
                    secured = run;
                }
            }
        }

        double ov = (secured.energy.totalFj() - base.energy.totalFj()) /
                    base.energy.totalFj();
        sum += ov;
        ++n;
        if (tf.modified()) {
            sum_violators += ov;
            ++n_violators;
        }
        std::printf("%-10s | %12.1f | %12.1f | %6.2f %%%s\n",
                    w.name.c_str(), base.energy.totalFj() / 1000.0,
                    secured.energy.totalFj() / 1000.0, ov * 100.0,
                    tf.modified() ? "" : "  (secure as-is)");
        std::fflush(stdout);
    }

    std::printf("-----------+--------------+--------------+---------\n");
    std::printf("average over all benchmarks:      %6.2f %%\n",
                100.0 * sum / n);
    if (n_violators > 0) {
        std::printf("average over modified benchmarks: %6.2f %%  "
                    "(paper reports ~15%% avg)\n",
                    100.0 * sum_violators / n_violators);
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return glifs::benchjson::printerMain(argc, argv, "energy_overhead",
                                         [] { return runBench(); });
}
