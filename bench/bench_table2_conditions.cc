/**
 * @file
 * Table 2 reproduction: which benchmarks violate sufficient conditions
 * 1 and 2 (Section 5.1) before and after software modification. Runs
 * the complete toolflow (analysis -> root cause -> watchdog + masking
 * -> re-verification) on all 13 benchmarks.
 */

#include <cstdio>

#include "workloads/toolflow.hh"

#include "bench_common.hh"

using namespace glifs;

namespace
{

struct Row
{
    bool c1 = false;
    bool c2 = false;
    bool c3to5 = false;
};

Row
conditions(const EngineResult &r)
{
    Row row;
    for (const Violation &v : r.violations) {
        switch (v.kind) {
          case ViolationKind::UntaintedCodeTaintedPc:
            row.c1 = true;
            break;
          case ViolationKind::StoreUntaintedPartition:
            row.c2 = true;
            break;
          case ViolationKind::LoadTaintedData:
          case ViolationKind::UntaintedReadTaintedPort:
          case ViolationKind::TaintedWriteTrustedPort:
            row.c3to5 = true;
            break;
          default:
            break;
        }
    }
    return row;
}

const char *
mark(bool b)
{
    return b ? "X" : "-";
}

} // namespace

int
runBench()
{
    Soc soc;
    std::printf("=== Table 2: sufficient-condition violations before/"
                "after modification ===\n\n");
    std::printf("%-10s | %-11s | %-11s | %s\n", "Benchmark",
                "Unmod C1 C2", "Mod   C1 C2", "toolflow");
    std::printf("-----------+-------------+-------------+---------\n");

    int expected_matches = 0;
    for (const Workload &w : allWorkloads()) {
        ToolflowResult tf = secureWorkload(soc, w);
        Row before = conditions(tf.unmodified);
        Row after = conditions(tf.secured);
        bool match = before.c1 == w.expectC1 && before.c2 == w.expectC2 &&
                     !after.c1 && !after.c2;
        expected_matches += match;
        std::printf("%-10s |    %s  %s     |    %s  %s     | %s\n",
                    w.name.c_str(), mark(before.c1), mark(before.c2),
                    mark(after.c1), mark(after.c2),
                    tf.summary(w.name).c_str());
        std::fflush(stdout);
    }

    std::printf("\npaper shape: {binSearch, div, inSort, intAVG, tHold, "
                "Viterbi} violate C1+C2\nunmodified; all clean after "
                "modification; no benchmark violates C3/C4/C5.\n");
    std::printf("rows matching the paper: %d / 13\n", expected_matches);
    return 0;
}

int
main(int argc, char **argv)
{
    return glifs::benchjson::printerMain(argc, argv, "table2_conditions",
                                         [] { return runBench(); });
}
