/**
 * @file
 * Unit tests for the stats registry (base/stats.hh) and the
 * structured tracer (base/trace.hh): naming contract, registration
 * collisions, histogram binning, JSON rendering round-trip,
 * snapshot/reset, and the tracer ring buffer.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>

#include "base/logging.hh"
#include "base/stats.hh"
#include "base/trace.hh"

namespace glifs
{
namespace
{

using stats::Distribution;
using stats::Formula;
using stats::Gauge;
using stats::Registry;
using stats::Scalar;
using stats::Snapshot;
using stats::SnapshotEntry;

// ---------------------------------------------------------------------
// Naming contract
// ---------------------------------------------------------------------

TEST(StatName, AcceptsDottedLowercase)
{
    EXPECT_TRUE(stats::validStatName("engine.cycles"));
    EXPECT_TRUE(stats::validStatName("state_table.size_peak"));
    EXPECT_TRUE(stats::validStatName("a.b.c"));
    EXPECT_TRUE(stats::validStatName("x0.y1_z2"));
}

TEST(StatName, RejectsMalformed)
{
    EXPECT_FALSE(stats::validStatName(""));
    EXPECT_FALSE(stats::validStatName("nodots"));
    EXPECT_FALSE(stats::validStatName("Engine.cycles"));
    EXPECT_FALSE(stats::validStatName("engine.Cycles"));
    EXPECT_FALSE(stats::validStatName(".leading"));
    EXPECT_FALSE(stats::validStatName("trailing."));
    EXPECT_FALSE(stats::validStatName("two..dots"));
    EXPECT_FALSE(stats::validStatName("has space.x"));
    EXPECT_FALSE(stats::validStatName("engine.cy-cles"));
}

TEST(StatRegistry, MalformedNameIsFatal)
{
    EXPECT_THROW(Scalar("NotValid", "bad"), FatalError);
    EXPECT_THROW(Scalar("nodots", "bad"), FatalError);
}

TEST(StatRegistry, DuplicateNameIsFatal)
{
    Scalar a{"test_stats.dup", "first"};
    EXPECT_THROW(Scalar("test_stats.dup", "second"), FatalError);
}

TEST(StatRegistry, UnregisterFreesTheName)
{
    const size_t before = Registry::instance().size();
    {
        Scalar a{"test_stats.transient", "scoped"};
        EXPECT_EQ(Registry::instance().size(), before + 1);
    }
    EXPECT_EQ(Registry::instance().size(), before);
    // The name is reusable once the stat is gone.
    Scalar again{"test_stats.transient", "scoped again"};
    EXPECT_EQ(Registry::instance().size(), before + 1);
}

// ---------------------------------------------------------------------
// Stat kinds
// ---------------------------------------------------------------------

TEST(StatKinds, ScalarCounts)
{
    Scalar s{"test_stats.scalar", "counter"};
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 4;
    s.inc(5);
    EXPECT_EQ(s.value(), 10u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(StatKinds, GaugeTracksPeak)
{
    Gauge g{"test_stats.gauge", "level"};
    g.set(3.0);
    g.set(8.0);
    g.set(2.0);
    EXPECT_DOUBLE_EQ(g.value(), 2.0);
    EXPECT_DOUBLE_EQ(g.peak(), 8.0);
    g.add(5.0);
    EXPECT_DOUBLE_EQ(g.value(), 7.0);
    EXPECT_DOUBLE_EQ(g.peak(), 8.0);
}

TEST(StatKinds, DistributionBinsLinearly)
{
    // [0, 10) in 5 bins of width 2.
    Distribution d{"test_stats.dist", "histogram", 0.0, 10.0, 5};
    d.sample(-1.0);  // underflow
    d.sample(0.0);   // bin 0
    d.sample(1.9);   // bin 0
    d.sample(2.0);   // bin 1
    d.sample(9.9);   // bin 4
    d.sample(10.0);  // overflow (hi is exclusive)
    d.sample(42.0);  // overflow

    EXPECT_EQ(d.count(), 7u);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 2u);
    ASSERT_EQ(d.bins().size(), 5u);
    EXPECT_EQ(d.bins()[0], 2u);
    EXPECT_EQ(d.bins()[1], 1u);
    EXPECT_EQ(d.bins()[2], 0u);
    EXPECT_EQ(d.bins()[3], 0u);
    EXPECT_EQ(d.bins()[4], 1u);
    EXPECT_DOUBLE_EQ(d.min(), -1.0);
    EXPECT_DOUBLE_EQ(d.max(), 42.0);
    EXPECT_NEAR(d.sum(), 64.8, 1e-9);
}

TEST(StatKinds, FormulaEvaluatesLazily)
{
    Scalar num{"test_stats.fnum", "numerator"};
    Formula f{"test_stats.formula", "derived",
              [&num] { return static_cast<double>(num.value()) / 2; }};
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
    num.inc(10);
    EXPECT_DOUBLE_EQ(f.value(), 5.0);
}

TEST(StatKinds, NonFiniteFormulaSnapshotsAsZero)
{
    // Ratio formulas hit 0/0 before their inputs tick; the snapshot
    // (and thus every report built from it) must stay finite.
    Formula fnan{"test_stats.fnan", "0/0",
                 [] { return 0.0 / 0.0; }};
    Formula finf{"test_stats.finf", "1/0",
                 [] { return 1.0 / 0.0; }};
    Snapshot snap = Registry::instance().snapshot();
    EXPECT_DOUBLE_EQ(snap.value("test_stats.fnan"), 0.0);
    EXPECT_DOUBLE_EQ(snap.value("test_stats.finf"), 0.0);
    const std::string json = snap.json();
    EXPECT_EQ(json.find(": nan"), std::string::npos);
    EXPECT_EQ(json.find(": inf"), std::string::npos);
    EXPECT_EQ(json.find(": -inf"), std::string::npos);
}

// ---------------------------------------------------------------------
// Snapshot / reset
// ---------------------------------------------------------------------

TEST(StatSnapshot, CapturesAndResets)
{
    Scalar s{"test_stats.snap_scalar", "counter"};
    Gauge g{"test_stats.snap_gauge", "level"};
    s.inc(7);
    g.set(3.5);

    Snapshot snap = Registry::instance().snapshot();
    const SnapshotEntry *es = snap.find("test_stats.snap_scalar");
    ASSERT_NE(es, nullptr);
    EXPECT_EQ(es->kind, SnapshotEntry::Kind::Scalar);
    EXPECT_DOUBLE_EQ(es->value, 7.0);
    EXPECT_DOUBLE_EQ(snap.value("test_stats.snap_gauge"), 3.5);
    EXPECT_EQ(snap.find("test_stats.absent"), nullptr);
    EXPECT_DOUBLE_EQ(snap.value("test_stats.absent"), 0.0);

    // Entries are sorted by name (stable output for diffing).
    for (size_t i = 1; i < snap.entries.size(); ++i)
        EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);

    Registry::instance().resetAll();
    EXPECT_EQ(s.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    EXPECT_DOUBLE_EQ(g.peak(), 0.0);
    // The pre-reset snapshot is unaffected.
    EXPECT_DOUBLE_EQ(snap.value("test_stats.snap_scalar"), 7.0);
}

// ---------------------------------------------------------------------
// JSON round-trip (minimal in-test parser: enough JSON to walk the
// nested objects the dumper emits)
// ---------------------------------------------------------------------

/** Tiny recursive-descent JSON reader over the dumper's output. */
class MiniJson
{
  public:
    explicit MiniJson(const std::string &s) : s(s) {}

    /** Value at a dotted path ("engine.cycles"), NaN when absent. */
    double
    number(const std::string &path)
    {
        pos = 0;
        double out = nan("");
        walk(path, "", &out);
        return out;
    }

    /** True if the dotted path names an object or value. */
    bool
    has(const std::string &path)
    {
        pos = 0;
        found = false;
        walk(path, "", nullptr);
        return found;
    }

  private:
    static double nan(const char *) { return __builtin_nan(""); }

    void
    ws()
    {
        while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\n' ||
                                  s[pos] == '\t' || s[pos] == '\r'))
            ++pos;
    }

    std::string
    str()
    {
        EXPECT_EQ(s[pos], '"');
        ++pos;
        std::string out;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\')
                ++pos;
            out += s[pos++];
        }
        ++pos;
        return out;
    }

    /** Walk one value; record/emit at the matching path. */
    void
    walk(const std::string &want, const std::string &path, double *out)
    {
        ws();
        if (pos >= s.size())
            return;
        if (s[pos] == '{') {
            ++pos;
            ws();
            if (s[pos] == '}') { ++pos; return; }
            while (true) {
                ws();
                std::string key = str();
                ws();
                EXPECT_EQ(s[pos], ':');
                ++pos;
                std::string sub =
                    path.empty() ? key : path + "." + key;
                if (sub == want)
                    found = true;
                walk(want, sub, out);
                ws();
                if (s[pos] == ',') { ++pos; continue; }
                EXPECT_EQ(s[pos], '}');
                ++pos;
                return;
            }
        } else if (s[pos] == '[') {
            ++pos;
            ws();
            if (s[pos] == ']') { ++pos; return; }
            while (true) {
                walk(want, path, nullptr);
                ws();
                if (s[pos] == ',') { ++pos; continue; }
                EXPECT_EQ(s[pos], ']');
                ++pos;
                return;
            }
        } else if (s[pos] == '"') {
            str();
        } else {
            // number / true / false / null
            size_t start = pos;
            while (pos < s.size() && s[pos] != ',' && s[pos] != '}' &&
                   s[pos] != ']' && s[pos] != '\n')
                ++pos;
            if (out && path == want)
                *out = std::stod(s.substr(start, pos - start));
        }
    }

    const std::string &s;
    size_t pos = 0;
    bool found = false;
};

TEST(StatSnapshot, JsonRoundTrip)
{
    Scalar s{"test_stats_json.counter", "a counter"};
    Gauge g{"test_stats_json.level", "a gauge"};
    Distribution d{"test_stats_json.hist", "a histogram", 0, 8, 4};
    s.inc(42);
    g.set(2.0);
    g.set(1.5);
    d.sample(3.0);
    d.sample(100.0);

    std::string json = Registry::instance().snapshot().json(2);
    MiniJson j(json);
    EXPECT_DOUBLE_EQ(j.number("test_stats_json.counter"), 42.0);
    EXPECT_DOUBLE_EQ(j.number("test_stats_json.level.value"), 1.5);
    EXPECT_DOUBLE_EQ(j.number("test_stats_json.level.peak"), 2.0);
    EXPECT_DOUBLE_EQ(j.number("test_stats_json.hist.count"), 2.0);
    EXPECT_DOUBLE_EQ(j.number("test_stats_json.hist.overflow"), 1.0);
    EXPECT_TRUE(j.has("test_stats_json.hist.bins"));
}

TEST(StatSnapshot, TextMentionsEveryStat)
{
    Scalar s{"test_stats_text.one", "described here"};
    std::string text = Registry::instance().snapshot().text();
    EXPECT_NE(text.find("test_stats_text.one"), std::string::npos);
    EXPECT_NE(text.find("described here"), std::string::npos);
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

class TracerTest : public ::testing::Test
{
  protected:
    void SetUp() override { trace::Tracer::instance().disable(); }
    void TearDown() override { trace::Tracer::instance().disable(); }
};

TEST_F(TracerTest, DisabledRecordsNothing)
{
    trace::Tracer &tr = trace::Tracer::instance();
    GLIFS_TRACE_INSTANT("test", "nothing");
    { GLIFS_TRACE_SCOPE("test", "nothing_scope"); }
    EXPECT_EQ(tr.size(), 0u);
}

TEST_F(TracerTest, RecordsInstantsAndSpans)
{
    trace::Tracer &tr = trace::Tracer::instance();
    tr.enable(16);
    GLIFS_TRACE_INSTANT("cat_a", "hello");
    GLIFS_TRACE_INSTANT_ARGS("cat_b", "with_args",
                             add("k", 7u).add("s", "v"));
    { GLIFS_TRACE_SCOPE("cat_a", "span"); }
    EXPECT_EQ(tr.size(), 3u);
    EXPECT_EQ(tr.countCategory("cat_a"), 2u);
    EXPECT_EQ(tr.countCategory("cat_b"), 1u);

    auto evs = tr.events();
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_EQ(evs[0].ph, 'i');
    EXPECT_EQ(std::string(evs[1].name), "with_args");
    EXPECT_NE(evs[1].args.find("\"k\": 7"), std::string::npos);
    EXPECT_NE(evs[1].args.find("\"s\": \"v\""), std::string::npos);
    EXPECT_EQ(evs[2].ph, 'X');
}

TEST_F(TracerTest, RingDropsOldestWhenFull)
{
    trace::Tracer &tr = trace::Tracer::instance();
    tr.enable(4);
    for (int i = 0; i < 10; ++i)
        tr.instant("ring", i < 6 ? "old" : "new");
    EXPECT_EQ(tr.size(), 4u);
    EXPECT_EQ(tr.dropped(), 6u);
    // Only the newest four remain, oldest-first.
    for (const trace::Event &e : tr.events())
        EXPECT_EQ(std::string(e.name), "new");
}

TEST_F(TracerTest, JsonIsChromeTraceShape)
{
    trace::Tracer &tr = trace::Tracer::instance();
    tr.enable(8);
    tr.instant("shape", "i_event");
    tr.complete("shape", "x_event", 1, 5);
    tr.counter("shape", "c_event", 3.0);
    std::string json = tr.json();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
}

TEST_F(TracerTest, EnableResetsTheRing)
{
    trace::Tracer &tr = trace::Tracer::instance();
    tr.enable(4);
    tr.instant("reset", "one");
    tr.enable(4);
    EXPECT_EQ(tr.size(), 0u);
    EXPECT_EQ(tr.dropped(), 0u);
}

} // namespace
} // namespace glifs
