/**
 * @file
 * Tests of the batch verification subsystem (docs/BATCH.md): manifest
 * parsing, the content-addressed result cache, the escalating-budget
 * retry ladder, the process-parallel scheduler, and the end-to-end
 * `runBatch` acceptance flow against real `glifs_audit` workers. Also
 * covers the worker CLI contract the batch layer depends on:
 * `--list-workloads` and the policy-file usage-error exit code.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#include <utime.h>

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "base/faultfs.hh"
#include "base/hash.hh"
#include "base/logging.hh"
#include "base/stats.hh"
#include "base/version.hh"
#include "batch/cache.hh"
#include "batch/journal.hh"
#include "batch/manifest.hh"
#include "batch/retry.hh"
#include "batch/runner.hh"
#include "batch/scheduler.hh"
#include "workloads/workload.hh"

#ifndef GLIFS_AUDIT_BIN
#define GLIFS_AUDIT_BIN "glifs_audit"
#endif
#ifndef GLIFS_BATCH_BIN
#define GLIFS_BATCH_BIN "glifs_batch"
#endif

namespace glifs
{
namespace
{

using namespace glifs::batch;

std::string
tempDir(const std::string &name)
{
    // Wipe any residue from a previous run: cache/checkpoint state
    // surviving in /tmp would turn first-run cache-miss assertions
    // into spurious hits.
    std::string dir = ::testing::TempDir() + "batch_" + name;
    std::filesystem::remove_all(dir);
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    ASSERT_TRUE(out) << path;
    out << content;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

/** Backdate @p path's mtime past the stale-temp-sweep threshold. */
void
ageFile(const std::string &path)
{
    const std::time_t old =
        std::time(nullptr) - 2 * kStaleTmpSeconds;
    struct utimbuf times = {old, old};
    ASSERT_EQ(::utime(path.c_str(), &times), 0) << path;
}

/** Run a shell command; returns its exit code (-1 on abnormal end). */
int
runCmd(const std::string &cmd)
{
    int status = std::system(cmd.c_str());
    if (status < 0 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

// ---------------------------------------------------------------------
// SHA-256 (the cache-key primitive).
// ---------------------------------------------------------------------

TEST(Sha256Test, MatchesFipsVectors)
{
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    // Multi-block message (crosses the 64-byte boundary).
    EXPECT_EQ(sha256Hex("abcdbcdecdefdefgefghfghighijhijk"
                        "ijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, StreamingEqualsOneShot)
{
    Sha256 h;
    h.update("ab");
    h.update("c");
    EXPECT_EQ(h.hexDigest(), sha256Hex("abc"));
}

TEST(Sha256Test, SectionsAreUnambiguous)
{
    Sha256 a;
    a.section("x", "ab");
    a.section("y", "c");
    Sha256 b;
    b.section("x", "a");
    b.section("y", "bc");
    EXPECT_NE(a.hexDigest(), b.hexDigest());
}

// ---------------------------------------------------------------------
// Manifest parsing.
// ---------------------------------------------------------------------

TEST(ManifestTest, ParsesFleetWithDefaultsAndOverrides)
{
    Manifest m = parseManifest(
        "# nightly fleet\n"
        "batch nightly audit\n"
        "retry multiplier 8\n"
        "retry max-attempts 4\n"
        "default max-cycles 100000\n"
        "default deadline 30\n"
        "job a\n"
        "    workload mult\n"
        "job b\n"
        "    workload tea8\n"
        "    max-cycles 500\n"
        "    max-states 64\n");
    EXPECT_EQ(m.name, "nightly audit");
    EXPECT_DOUBLE_EQ(m.retry.multiplier, 8.0);
    EXPECT_EQ(m.retry.maxAttempts, 4u);
    ASSERT_EQ(m.jobs.size(), 2u);

    EXPECT_EQ(m.jobs[0].name, "a");
    EXPECT_EQ(m.jobs[0].workload, "mult");
    EXPECT_FALSE(m.jobs[0].firmwareText.empty());
    EXPECT_EQ(m.jobs[0].budgets.maxCycles, 100000u);
    EXPECT_DOUBLE_EQ(m.jobs[0].budgets.deadlineSeconds, 30.0);

    // Per-job overrides sit on top of the defaults.
    EXPECT_EQ(m.jobs[1].budgets.maxCycles, 500u);
    EXPECT_EQ(m.jobs[1].budgets.maxStates, 64u);
    EXPECT_DOUBLE_EQ(m.jobs[1].budgets.deadlineSeconds, 30.0);

    // Workload firmware text is the registry harness source.
    EXPECT_EQ(m.jobs[0].firmwareText, workloadByName("mult").source());
}

TEST(ManifestTest, ResolvesFirmwareAndPolicyRelativeToManifest)
{
    std::string dir = tempDir("manifest_rel");
    writeFile(dir + "/fw.s", workloadByName("mult").source());
    writeFile(dir + "/labels.pol", "port in 1 tainted\n");
    writeFile(dir + "/m.manifest",
              "job fromfile\n"
              "    firmware fw.s\n"
              "    policy labels.pol\n");
    Manifest m = loadManifest(dir + "/m.manifest");
    ASSERT_EQ(m.jobs.size(), 1u);
    EXPECT_EQ(m.jobs[0].firmwarePath, dir + "/fw.s");
    EXPECT_EQ(m.jobs[0].firmwareText,
              workloadByName("mult").source());
    EXPECT_EQ(m.jobs[0].policyText, "port in 1 tainted\n");
    EXPECT_EQ(m.path, dir + "/m.manifest");
}

TEST(ManifestTest, ErrorsCarryLineNumbers)
{
    auto expectError = [](const std::string &text,
                          const std::string &fragment) {
        try {
            parseManifest(text);
            FAIL() << "expected FatalError for: " << text;
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(fragment),
                      std::string::npos)
                << "message '" << e.what() << "' lacks '" << fragment
                << "'";
        }
    };
    expectError("job a\nworkload mult\njob a\nworkload tea8\n",
                "line 3");
    expectError("job a\nworkload no-such-thing\n", "unknown workload");
    expectError("job a\nworkload mult\nwibble 1\n", "line 3");
    expectError("workload mult\n", "outside a job block");
    expectError("job a\n", "neither a workload nor a firmware");
    expectError("job a\nworkload mult\nfirmware b.s\n",
                "already has a workload");
    expectError("job a\nworkload mult\nmax-cycles -5\n", "line 3");
    expectError("# just a comment\n", "empty");
}

// ---------------------------------------------------------------------
// Cache keys and the result cache.
// ---------------------------------------------------------------------

JobSpec
specWith(const std::string &fw, const std::string &pol,
         uint64_t cycles)
{
    JobSpec j;
    j.name = "j";
    j.firmwareText = fw;
    j.policyText = pol;
    j.budgets.maxCycles = cycles;
    return j;
}

TEST(CacheKeyTest, DependsOnContentNotNames)
{
    RetryConfig retry;
    JobSpec a = specWith("mov r1, r2", "", 100);
    JobSpec b = a;
    b.name = "renamed";
    b.firmwarePath = "/somewhere/else.s";
    EXPECT_EQ(cacheKey(a, retry, kGlifsVersion),
              cacheKey(b, retry, kGlifsVersion));
}

TEST(CacheKeyTest, SensitiveToEveryInput)
{
    RetryConfig retry;
    JobSpec base = specWith("mov r1, r2", "port in 1 tainted", 100);
    std::string k = cacheKey(base, retry, kGlifsVersion);

    EXPECT_NE(k, cacheKey(specWith("mov r1, r3", "port in 1 tainted",
                                   100),
                          retry, kGlifsVersion));
    EXPECT_NE(k, cacheKey(specWith("mov r1, r2", "port in 2 tainted",
                                   100),
                          retry, kGlifsVersion));
    EXPECT_NE(k, cacheKey(specWith("mov r1, r2", "port in 1 tainted",
                                   200),
                          retry, kGlifsVersion));
    RetryConfig other;
    other.multiplier = 16;
    EXPECT_NE(k, cacheKey(base, other, kGlifsVersion));
    EXPECT_NE(k, cacheKey(base, retry, "glifs-999"));
}

TEST(ResultCacheTest, RoundTripsAndHonorsDisable)
{
    std::string dir = tempDir("cache_rt");
    ResultCache cache(dir + "/c");
    EXPECT_FALSE(cache.lookup("deadbeef").has_value());
    cache.store("deadbeef", "{\"verdict\": \"secure\"}");
    auto hit = cache.lookup("deadbeef");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "{\"verdict\": \"secure\"}");

    ResultCache off(dir + "/c", false);
    EXPECT_FALSE(off.lookup("deadbeef").has_value());
    off.store("cafe", "{}");
    ResultCache on(dir + "/c");
    EXPECT_FALSE(on.lookup("cafe").has_value());
}

TEST(ResultCacheTest, FailedStoreWarnsAndCountsInsteadOfDying)
{
    std::string dir = tempDir("cache_fail");
    // A plain file where the cache directory should be makes mkdir()
    // fail with EEXIST-but-not-a-directory downstream errors; the
    // store must degrade to a no-op, not abort the batch.
    writeFile(dir + "/c", "not a directory");
    ResultCache cache(dir + "/c");
    const double before = stats::Registry::instance().snapshot().value(
        "batch.cache_publish_failures");
    cache.store("deadbeef", "{}");
    EXPECT_FALSE(cache.lookup("deadbeef").has_value());
    const double after = stats::Registry::instance().snapshot().value(
        "batch.cache_publish_failures");
    EXPECT_GE(after, before + 1.0);
}

TEST(ResultCacheTest, OpenSweepsOnlyAgedTempFiles)
{
    std::string dir = tempDir("cache_sweep");
    const std::string cdir = dir + "/c";
    ::mkdir(cdir.c_str(), 0755);
    {
        ResultCache seed(cdir);
        seed.store("bbbb", "{\"verdict\": \"secure\"}");
    }
    // An *aged* temp file is dead-writer debris; a *fresh* one may
    // belong to a live concurrent writer mid-publish and must
    // survive the sweep. (Created after the seed cache above so its
    // open() sweep doesn't collect them first.)
    writeFile(cdir + "/aaaa.json.tmp.12345", "torn half-write");
    ageFile(cdir + "/aaaa.json.tmp.12345");
    writeFile(cdir + "/ffff.json.tmp.999", "live concurrent write");

    const double before = stats::Registry::instance().snapshot().value(
        "batch.cache_tmp_swept");
    ResultCache cache(cdir);
    EXPECT_FALSE(
        std::filesystem::exists(cdir + "/aaaa.json.tmp.12345"));
    EXPECT_TRUE(
        std::filesystem::exists(cdir + "/ffff.json.tmp.999"));
    EXPECT_GE(stats::Registry::instance().snapshot().value(
                  "batch.cache_tmp_swept"),
              before + 1.0);
    // Published entries are untouched.
    auto hit = cache.lookup("bbbb");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "{\"verdict\": \"secure\"}");

    // A disabled cache must not touch the directory at all.
    writeFile(cdir + "/cccc.json.tmp.777", "torn");
    ageFile(cdir + "/cccc.json.tmp.777");
    ResultCache off(cdir, false);
    EXPECT_TRUE(std::filesystem::exists(cdir + "/cccc.json.tmp.777"));
}

TEST(ResultCacheTest, CorruptEntriesAreCleanMisses)
{
    std::string dir = tempDir("cache_corrupt");
    ResultCache cache(dir + "/c");
    const std::string report = "{\"verdict\": \"violations\"}";
    ASSERT_TRUE(cache.store("feed", report));
    ASSERT_TRUE(cache.lookup("feed").has_value());

    const std::string path = cache.entryPath("feed");
    const double before = stats::Registry::instance().snapshot().value(
        "batch.cache_integrity_misses");

    // Bit-flip one payload byte: checksum mismatch, evicted, miss.
    std::string blob = readFile(path);
    blob[blob.size() - 3] ^= 0x40;
    writeFile(path, blob);
    EXPECT_FALSE(cache.lookup("feed").has_value());
    EXPECT_FALSE(std::filesystem::exists(path));

    // Truncated mid-payload: size mismatch, miss.
    ASSERT_TRUE(cache.store("feed", report));
    blob = readFile(path);
    writeFile(path, blob.substr(0, blob.size() - 5));
    EXPECT_FALSE(cache.lookup("feed").has_value());

    // A pre-integrity (headerless) legacy entry reads as a miss too:
    // re-running the job is safe, trusting unverifiable bytes is not.
    writeFile(path, report);
    EXPECT_FALSE(cache.lookup("feed").has_value());

    // Every byte of payload fuzzing above was a *miss*, never a
    // crash, and each eviction was counted.
    EXPECT_GE(stats::Registry::instance().snapshot().value(
                  "batch.cache_integrity_misses"),
              before + 3.0);

    // A fresh store repairs the slot.
    ASSERT_TRUE(cache.store("feed", report));
    auto hit = cache.lookup("feed");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, report);
}

// ---------------------------------------------------------------------
// Syscall fault injection (src/base/faultfs.hh).
// ---------------------------------------------------------------------

/** Fault plans are process-global; never leak one into other tests. */
class FaultFsTest : public ::testing::Test
{
  protected:
    void TearDown() override { faultfs::clearPlan(); }
};

TEST_F(FaultFsTest, InjectsChosenErrnoOnNthCallOnly)
{
    std::string dir = tempDir("faultfs_errno");
    std::string path = dir + "/f";
    const double before = stats::Registry::instance().snapshot().value(
        "batch.fault_injected");

    faultfs::setPlan("write:2:ENOSPC");
    int fd = faultfs::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
    ASSERT_GE(fd, 0);
    EXPECT_EQ(faultfs::write(fd, "aa", 2), 2);    // call 1: clean
    errno = 0;
    EXPECT_EQ(faultfs::write(fd, "bb", 2), -1);   // call 2: injected
    EXPECT_EQ(errno, ENOSPC);
    EXPECT_EQ(faultfs::write(fd, "cc", 2), 2);    // call 3: clean
    ::close(fd);

    EXPECT_EQ(readFile(path), "aacc");
    EXPECT_GE(stats::Registry::instance().snapshot().value(
                  "batch.fault_injected"),
              before + 1.0);
}

TEST_F(FaultFsTest, InjectedShortWriteTearsAndSurfaces)
{
    std::string dir = tempDir("faultfs_short");
    std::string path = dir + "/f";
    faultfs::setPlan("write:1:short");
    int fd = faultfs::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
    ASSERT_GE(fd, 0);
    std::string buf(100, 'x');
    // writeFull must not retry past the injected tear: the caller has
    // to see the failure, with the partial bytes durably on disk.
    EXPECT_EQ(faultfs::writeFull(fd, buf.data(), buf.size()), -1);
    ::close(fd);
    const std::string written = readFile(path);
    EXPECT_GT(written.size(), 0u);
    EXPECT_LT(written.size(), buf.size());
}

TEST_F(FaultFsTest, CrashActionDiesAtTheSyscallBoundary)
{
    std::string dir = tempDir("faultfs_crash");
    std::string path = dir + "/f";
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: the second write must never execute.
        faultfs::setPlan("write:2:crash");
        int fd = faultfs::open(path.c_str(), O_WRONLY | O_CREAT,
                               0644);
        faultfs::write(fd, "one", 3);
        faultfs::write(fd, "two", 3);
        _exit(0); // unreachable when injection works
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 137);
    EXPECT_EQ(readFile(path), "one");
}

TEST_F(FaultFsTest, MalformedPlansAreFatal)
{
    EXPECT_THROW(faultfs::setPlan("bogus:1:ENOSPC"), FatalError);
    EXPECT_THROW(faultfs::setPlan("write:0:ENOSPC"), FatalError);
    EXPECT_THROW(faultfs::setPlan("write:1:EWHATEVER"), FatalError);
    EXPECT_THROW(faultfs::setPlan("write:1"), FatalError);
    EXPECT_THROW(faultfs::setPlan("fork:1:short"), FatalError);
}

TEST_F(FaultFsTest, ClearedPlanIsPassthrough)
{
    std::string dir = tempDir("faultfs_clear");
    std::string path = dir + "/f";
    faultfs::setPlan("write:1:EIO");
    faultfs::clearPlan();
    int fd = faultfs::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
    ASSERT_GE(fd, 0);
    EXPECT_EQ(faultfs::writeFull(fd, "ok", 2), 2);
    ::close(fd);
    EXPECT_EQ(readFile(path), "ok");
}

// ---------------------------------------------------------------------
// The write-ahead batch journal (src/batch/journal.hh).
// ---------------------------------------------------------------------

JobOutcome
sampleOutcome(const std::string &name, int code)
{
    JobOutcome o;
    o.name = name;
    o.verdict = code == 1 ? "violations" : "secure";
    o.exitCode = code;
    o.cache = CacheStatus::Miss;
    o.attempts = 2;
    o.resumed = true;
    o.wallSeconds = 1.25;
    o.violationCount = code == 1 ? 3 : 0;
    o.violationsJson = code == 1 ? "[{\"kind\": \"direct\"}]" : "[]";
    o.detail = "sample detail";
    return o;
}

TEST(BatchJournalTest, RoundTripsOutcomes)
{
    std::string dir = tempDir("journal_rt");
    std::string path = dir + "/batch.journal";
    {
        BatchJournal j = BatchJournal::create(path, "fp-abc");
        ASSERT_TRUE(j.enabled());
        j.jobStarted(0, "job-a", "key-a");
        j.jobStarted(1, "job-b", "key-b");
        j.cachePublished(0, "key-a");
        j.jobFinished(0, sampleOutcome("job-a", 0));
        j.jobFinished(1, sampleOutcome("job-b", 1));
    }
    BatchJournal::Replay r = BatchJournal::replay(path);
    EXPECT_FALSE(r.torn);
    EXPECT_EQ(r.fingerprint, "fp-abc");
    EXPECT_EQ(r.records, 6u); // manifest + 2 started + publish + 2 done
    ASSERT_EQ(r.finished.size(), 2u);
    const JobOutcome &a = r.finished.at(0);
    EXPECT_EQ(a.name, "job-a");
    EXPECT_EQ(a.verdict, "secure");
    EXPECT_EQ(a.exitCode, 0);
    EXPECT_EQ(a.attempts, 2u);
    EXPECT_TRUE(a.resumed);
    EXPECT_DOUBLE_EQ(a.wallSeconds, 1.25);
    EXPECT_EQ(a.detail, "sample detail");
    const JobOutcome &b = r.finished.at(1);
    EXPECT_EQ(b.verdict, "violations");
    EXPECT_EQ(b.violationCount, 3u);
    EXPECT_EQ(b.violationsJson, "[{\"kind\": \"direct\"}]");
}

TEST(BatchJournalTest, TornTailTruncatesToLastValidRecord)
{
    std::string dir = tempDir("journal_torn");
    std::string path = dir + "/batch.journal";
    {
        BatchJournal j = BatchJournal::create(path, "fp");
        j.jobFinished(0, sampleOutcome("done", 0));
        j.jobFinished(1, sampleOutcome("torn", 0));
    }
    // Chop bytes off the final record: exactly what a crash mid-write
    // leaves behind. The valid prefix must replay.
    std::string blob = readFile(path);
    writeFile(path, blob.substr(0, blob.size() - 7));
    BatchJournal::Replay r = BatchJournal::replay(path);
    EXPECT_TRUE(r.torn);
    ASSERT_EQ(r.finished.size(), 1u);
    EXPECT_EQ(r.finished.at(0).name, "done");

    // Trailing garbage after valid records is equally survivable.
    writeFile(path, blob + "\x03garbage");
    r = BatchJournal::replay(path);
    EXPECT_TRUE(r.torn);
    EXPECT_EQ(r.finished.size(), 2u);
}

TEST(BatchJournalTest, BitFlipIsCaughtByTheRecordCrc)
{
    std::string dir = tempDir("journal_flip");
    std::string path = dir + "/batch.journal";
    {
        BatchJournal j = BatchJournal::create(path, "fp");
        j.jobFinished(0, sampleOutcome("ok", 0));
        j.jobFinished(1, sampleOutcome("flipped", 1));
    }
    std::string blob = readFile(path);
    blob[blob.size() - 10] ^= 0x01;
    writeFile(path, blob);
    BatchJournal::Replay r = BatchJournal::replay(path);
    EXPECT_TRUE(r.torn);
    // The flipped record (and anything after) is gone; the prefix
    // survives. Crucially: job 1's corrupt outcome is NOT replayed.
    ASSERT_EQ(r.finished.size(), 1u);
    EXPECT_EQ(r.finished.at(0).name, "ok");
}

TEST(BatchJournalTest, MissingOrForeignFilesReplayNothing)
{
    std::string dir = tempDir("journal_missing");
    BatchJournal::Replay r =
        BatchJournal::replay(dir + "/nonexistent");
    EXPECT_TRUE(r.torn);
    EXPECT_EQ(r.records, 0u);
    EXPECT_TRUE(r.finished.empty());

    std::string alien = dir + "/alien";
    writeFile(alien, "this is not a journal at all");
    r = BatchJournal::replay(alien);
    EXPECT_TRUE(r.torn);
    EXPECT_TRUE(r.finished.empty());
}

TEST(BatchJournalTest, SelfDisablesOnInjectedWriteFailure)
{
    std::string dir = tempDir("journal_fault");
    std::string path = dir + "/batch.journal";
    const double before = stats::Registry::instance().snapshot().value(
        "batch.journal_write_failures");
    // Header + manifest record are writes 1-2; the first jobFinished
    // hits the injected ENOSPC and must disable the journal, not
    // abort the batch.
    faultfs::setPlan("write:3:ENOSPC");
    BatchJournal j = BatchJournal::create(path, "fp");
    ASSERT_TRUE(j.enabled());
    j.jobFinished(0, sampleOutcome("doomed", 0));
    EXPECT_FALSE(j.enabled());
    j.jobFinished(1, sampleOutcome("ignored", 0)); // no-op, no crash
    faultfs::clearPlan();
    EXPECT_GE(stats::Registry::instance().snapshot().value(
                  "batch.journal_write_failures"),
              before + 1.0);
    // The journal written so far still replays its valid prefix.
    BatchJournal::Replay r = BatchJournal::replay(path);
    EXPECT_EQ(r.fingerprint, "fp");
    EXPECT_TRUE(r.finished.empty());
}

TEST(BatchJournalTest, FingerprintTracksManifestContent)
{
    Manifest m1 = parseManifest("job a\n  workload mult\n", "");
    Manifest m2 = parseManifest("job a\n  workload mult\n", "");
    EXPECT_EQ(manifestFingerprint(m1), manifestFingerprint(m2));
    Manifest m3 =
        parseManifest("job a\n  workload mult\n  deadline 5\n", "");
    EXPECT_NE(manifestFingerprint(m1), manifestFingerprint(m3));
}

// ---------------------------------------------------------------------
// Retry ladder.
// ---------------------------------------------------------------------

TEST(RetryLadderTest, OnlyDegradedWithinCeilingRetries)
{
    RetryConfig cfg;
    cfg.maxAttempts = 3;
    RetryLadder ladder(cfg);
    EXPECT_FALSE(ladder.shouldRetry(0, 1));
    EXPECT_FALSE(ladder.shouldRetry(1, 1));
    EXPECT_FALSE(ladder.shouldRetry(3, 1));
    EXPECT_TRUE(ladder.shouldRetry(2, 1));
    EXPECT_TRUE(ladder.shouldRetry(2, 2));
    EXPECT_FALSE(ladder.shouldRetry(2, 3));
}

TEST(RetryLadderTest, EscalatesConfiguredBudgetsOnly)
{
    RetryConfig cfg;
    cfg.multiplier = 4;
    RetryLadder ladder(cfg);
    JobBudgets base;
    base.maxCycles = 100;
    base.deadlineSeconds = 2;

    JobBudgets first = ladder.budgetsFor(base, 1);
    EXPECT_EQ(first.maxCycles, 100u);
    EXPECT_DOUBLE_EQ(first.deadlineSeconds, 2.0);
    EXPECT_EQ(first.maxStates, 0u);

    JobBudgets third = ladder.budgetsFor(base, 3);
    EXPECT_EQ(third.maxCycles, 1600u);
    EXPECT_DOUBLE_EQ(third.deadlineSeconds, 32.0);
    // Unset dimensions stay unset at every rung.
    EXPECT_EQ(third.maxStates, 0u);
    EXPECT_EQ(third.maxRssMb, 0u);
}

TEST(RetryLadderTest, BackoffJitterIsDeterministicAndBounded)
{
    RetryConfig cfg;
    cfg.backoffSeconds = 2.0;
    cfg.backoffCapSeconds = 20.0;
    RetryLadder ladder(cfg);

    // Never delay the first attempt; never delay when backoff is off.
    EXPECT_EQ(ladder.backoffFor(1, 42), 0.0);
    RetryLadder off{RetryConfig{}};
    EXPECT_EQ(off.backoffFor(3, 42), 0.0);

    // Deterministic per seed (stable tests, stable resumed batches),
    // decorrelated across seeds (no thundering herd), and always
    // within [base, cap].
    for (unsigned attempt = 2; attempt <= 6; ++attempt) {
        double d1 = ladder.backoffFor(attempt, 42);
        EXPECT_EQ(d1, ladder.backoffFor(attempt, 42));
        EXPECT_GE(d1, cfg.backoffSeconds);
        EXPECT_LE(d1, cfg.backoffCapSeconds);
    }
    int distinct = 0;
    for (uint64_t seed = 0; seed < 8; ++seed) {
        if (ladder.backoffFor(2, seed) !=
            ladder.backoffFor(2, seed + 100))
            ++distinct;
    }
    EXPECT_GE(distinct, 6); // jitter actually spreads the fleet
}

TEST(RetryLadderTest, SaturatesInsteadOfOverflowing)
{
    RetryConfig cfg;
    cfg.multiplier = 1e12;
    cfg.maxAttempts = 10;
    RetryLadder ladder(cfg);
    JobBudgets base;
    base.maxCycles = UINT64_MAX / 2;
    JobBudgets b = ladder.budgetsFor(base, 5);
    EXPECT_EQ(b.maxCycles, UINT64_MAX);
}

// ---------------------------------------------------------------------
// Process scheduler.
// ---------------------------------------------------------------------

ProcTask
shellTask(uint64_t id, const std::string &script)
{
    ProcTask t;
    t.id = id;
    t.argv = {"/bin/sh", "-c", script};
    return t;
}

TEST(SchedulerTest, SurfacesExitCodesInReapOrder)
{
    ProcessScheduler sched(2);
    sched.submit(shellTask(1, "exit 0"));
    sched.submit(shellTask(2, "exit 5"));
    sched.submit(shellTask(3, "exit 2"));
    std::map<uint64_t, int> codes;
    sched.run([&](const ProcResult &r) { codes[r.id] = r.exitCode; });
    ASSERT_EQ(codes.size(), 3u);
    EXPECT_EQ(codes[1], 0);
    EXPECT_EQ(codes[2], 5);
    EXPECT_EQ(codes[3], 2);
}

TEST(SchedulerTest, RunsWorkersConcurrently)
{
    using Clock = std::chrono::steady_clock;
    ProcessScheduler sched(4);
    for (uint64_t i = 0; i < 4; ++i)
        sched.submit(shellTask(i, "sleep 0.4"));
    Clock::time_point start = Clock::now();
    size_t done = 0;
    sched.run([&](const ProcResult &) { ++done; });
    double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    EXPECT_EQ(done, 4u);
    // Serial execution would need >= 1.6s; give slow CI lots of slack.
    EXPECT_LT(wall, 1.2);
}

TEST(SchedulerTest, KillBackstopReportsTimeout)
{
    ProcessScheduler sched(1);
    ProcTask t = shellTask(7, "sleep 30");
    t.killAfterSeconds = 0.3;
    sched.submit(t);
    ProcResult got;
    sched.run([&](const ProcResult &r) { got = r; });
    EXPECT_EQ(got.id, 7u);
    EXPECT_TRUE(got.killedOnTimeout);
    EXPECT_FALSE(got.crashed);
    EXPECT_EQ(got.exitCode, -1);
    EXPECT_LT(got.wallSeconds, 5.0);
}

TEST(SchedulerTest, CallbackMaySubmitFollowUpWork)
{
    ProcessScheduler sched(2);
    sched.submit(shellTask(0, "exit 2"));
    std::vector<uint64_t> order;
    sched.run([&](const ProcResult &r) {
        order.push_back(r.id);
        if (r.id == 0)
            sched.submit(shellTask(1, "exit 0"));
    });
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0u);
    EXPECT_EQ(order[1], 1u);
}

TEST(SchedulerTest, StallWatchdogEscalatesOnSilentWorker)
{
    std::string dir = tempDir("sched_stall");
    ProcessScheduler sched(1);
    // One line of output, then total silence: a wedged worker. The
    // watchdog must SIGTERM it long before the 30s backstop.
    ProcTask t = shellTask(1, "echo started; sleep 30");
    t.outputPath = dir + "/stall.log";
    t.stallTimeoutSeconds = 0.4;
    t.killAfterSeconds = 30;
    sched.submit(t);
    ProcResult got;
    sched.run([&](const ProcResult &r) { got = r; });
    EXPECT_TRUE(got.stalled);
    EXPECT_FALSE(got.killedOnTimeout);
    EXPECT_FALSE(got.crashed);
    EXPECT_LT(got.wallSeconds, 10.0);
}

TEST(SchedulerTest, StallWatchdogSparesHeartbeatingWorkers)
{
    std::string dir = tempDir("sched_heartbeat");
    ProcessScheduler sched(1);
    // Slower than the stall timeout overall, but the log keeps
    // growing — a live worker must never be escalated on.
    ProcTask t = shellTask(
        1, "for i in 1 2 3 4 5 6; do echo beat; sleep 0.2; done");
    t.outputPath = dir + "/beat.log";
    t.stallTimeoutSeconds = 0.6;
    sched.submit(t);
    ProcResult got;
    sched.run([&](const ProcResult &r) { got = r; });
    EXPECT_FALSE(got.stalled);
    EXPECT_EQ(got.exitCode, 0);
}

TEST(SchedulerTest, StartDelayHoldsTaskWithoutBlockingOthers)
{
    using Clock = std::chrono::steady_clock;
    ProcessScheduler sched(2);
    ProcTask delayed = shellTask(1, "exit 0");
    delayed.startDelaySeconds = 0.5;
    sched.submit(delayed);
    sched.submit(shellTask(2, "exit 0"));
    std::vector<uint64_t> order;
    Clock::time_point start = Clock::now();
    sched.run([&](const ProcResult &r) { order.push_back(r.id); });
    double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    // The ready task finished first even though the delayed one sat
    // at the head of the queue; the delayed one still ran.
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 2u);
    EXPECT_EQ(order[1], 1u);
    EXPECT_GE(wall, 0.5);
}

// ---------------------------------------------------------------------
// Worker CLI contract: --list-workloads and policy usage errors.
// ---------------------------------------------------------------------

TEST(AuditCliTest, ListWorkloadsIsMachineReadable)
{
    std::string dir = tempDir("cli_list");
    std::string outFile = dir + "/names.txt";
    ASSERT_EQ(runCmd(std::string(GLIFS_AUDIT_BIN) +
                     " --list-workloads > " + outFile),
              0);
    std::istringstream in(readFile(outFile));
    std::vector<std::string> names;
    std::string line;
    while (std::getline(in, line))
        names.push_back(line);
    EXPECT_EQ(names, workloadNames());
    EXPECT_EQ(names.size(), allWorkloads().size());
}

/** Audit a policy file; returns {exit code, stderr text}. */
std::pair<int, std::string>
auditWithPolicy(const std::string &dir, const std::string &policyText)
{
    std::string polFile = dir + "/p.pol";
    std::string fwFile = dir + "/fw.s";
    std::string errFile = dir + "/err.txt";
    writeFile(polFile, policyText);
    writeFile(fwFile, workloadByName("mult").source());
    int code = runCmd(std::string(GLIFS_AUDIT_BIN) + " " + fwFile +
                      " --policy " + polFile + " > /dev/null 2> " +
                      errFile);
    return {code, readFile(errFile)};
}

TEST(AuditCliTest, PolicyParseErrorsExitCleanlyWithLineNumbers)
{
    std::string dir = tempDir("cli_policy");

    // Malformed label line.
    auto [c1, e1] =
        auditWithPolicy(dir, "port in 1 tainted\n"
                             "mem task_ram 0x0c00 0x0fff sideways\n");
    EXPECT_EQ(c1, 3);
    EXPECT_NE(e1.find("line 2"), std::string::npos) << e1;

    // Duplicate partition name.
    auto [c2, e2] = auditWithPolicy(
        dir, "mem ram 0x0c00 0x0cff tainted\n"
             "mem ram 0x0d00 0x0dff tainted\n");
    EXPECT_EQ(c2, 3);
    EXPECT_NE(e2.find("line 2"), std::string::npos) << e2;
    EXPECT_NE(e2.find("duplicate"), std::string::npos) << e2;

    // Overlapping partitions.
    auto [c3, e3] = auditWithPolicy(
        dir, "code a 0x000 0x0ff tainted\n"
             "code b 0x080 0x1ff tainted\n");
    EXPECT_EQ(c3, 3);
    EXPECT_NE(e3.find("line 2"), std::string::npos) << e3;
    EXPECT_NE(e3.find("overlaps"), std::string::npos) << e3;

    // Wholly empty policy file.
    auto [c4, e4] = auditWithPolicy(dir, "");
    EXPECT_EQ(c4, 3);
    EXPECT_NE(e4.find("empty"), std::string::npos) << e4;
}

// ---------------------------------------------------------------------
// End-to-end batch runs (the acceptance flow).
// ---------------------------------------------------------------------

/** The acceptance manifest: 8 secure-ish jobs + one with violations,
 *  one of them deliberately under-budgeted so the retry ladder must
 *  escalate (x40 rebuilds mult's 60-cycle stub into a converging
 *  2400-cycle budget). */
const char *kFleetManifest =
    "batch acceptance fleet\n"
    "retry multiplier 40\n"
    "retry max-attempts 3\n"
    "job mult\n    workload mult\n"
    "job tea8\n    workload tea8\n"
    "job intFilt\n    workload intFilt\n"
    "job rle\n    workload rle\n"
    "job autocorr\n    workload autocorr\n"
    "job FFT\n    workload FFT\n"
    "job ConvEn\n    workload ConvEn\n"
    "job tight-mult\n    workload mult\n    max-cycles 60\n"
    "job thold\n    workload tHold\n";

BatchOptions
fleetOptions(const std::string &dir)
{
    BatchOptions opts;
    opts.jobs = 4;
    opts.auditBinary = GLIFS_AUDIT_BIN;
    opts.cacheDir = dir + "/cache";
    opts.verbose = false;
    return opts;
}

TEST(BatchEndToEndTest, FleetRunsRetriesCachesAndAggregates)
{
    std::string dir = tempDir("e2e");
    Manifest m = parseManifest(kFleetManifest);
    ASSERT_EQ(m.jobs.size(), 9u);
    BatchOptions opts = fleetOptions(dir);

    // First run: everything misses, workers execute in parallel.
    BatchReport first = runBatch(m, opts);
    ASSERT_EQ(first.jobs.size(), 9u);
    EXPECT_EQ(first.cacheHits(), 0u);
    EXPECT_EQ(first.exitCode(), 1);

    std::map<std::string, const JobOutcome *> byName;
    for (const JobOutcome &j : first.jobs)
        byName[j.name] = &j;

    for (const char *secure :
         {"mult", "tea8", "intFilt", "rle", "autocorr", "FFT",
          "ConvEn"}) {
        ASSERT_NE(byName[secure], nullptr) << secure;
        EXPECT_EQ(byName[secure]->verdict, "secure") << secure;
        EXPECT_EQ(byName[secure]->exitCode, 0) << secure;
        EXPECT_EQ(byName[secure]->attempts, 1u) << secure;
    }

    // The under-budgeted job degraded, was escalated, and converged
    // to a definitive secure verdict (resuming from its checkpoint).
    const JobOutcome *tight = byName["tight-mult"];
    ASSERT_NE(tight, nullptr);
    EXPECT_EQ(tight->verdict, "secure");
    EXPECT_EQ(tight->exitCode, 0);
    EXPECT_GE(tight->attempts, 2u);
    EXPECT_TRUE(tight->resumed);

    const JobOutcome *thold = byName["thold"];
    ASSERT_NE(thold, nullptr);
    EXPECT_EQ(thold->verdict, "violations");
    EXPECT_EQ(thold->exitCode, 1);
    EXPECT_GT(thold->violationCount, 0u);
    EXPECT_NE(thold->violationsJson.find("\"kind\""),
              std::string::npos);

    // Second run: every job is served from the cache, no workers run,
    // and the batch finishes in a fraction of the first run's time.
    BatchReport second = runBatch(m, opts);
    ASSERT_EQ(second.jobs.size(), 9u);
    EXPECT_EQ(second.cacheHits(), 9u);
    EXPECT_EQ(second.exitCode(), 1);
    for (const JobOutcome &j : second.jobs) {
        EXPECT_EQ(j.cache, CacheStatus::Hit) << j.name;
        EXPECT_EQ(j.attempts, 0u) << j.name;
    }
    EXPECT_LT(second.wallSeconds, first.wallSeconds * 0.5);

    // Verdicts survive the cache round trip exactly.
    for (const JobOutcome &j : second.jobs) {
        EXPECT_EQ(j.verdict, byName[j.name]->verdict) << j.name;
        EXPECT_EQ(j.exitCode, byName[j.name]->exitCode) << j.name;
    }
}

TEST(BatchEndToEndTest, NoCacheRunsEveryJob)
{
    std::string dir = tempDir("e2e_nocache");
    Manifest m = parseManifest("job mult\n    workload mult\n");
    BatchOptions opts = fleetOptions(dir);
    opts.noCache = true;

    BatchReport first = runBatch(m, opts);
    ASSERT_EQ(first.jobs.size(), 1u);
    EXPECT_EQ(first.jobs[0].cache, CacheStatus::Disabled);
    EXPECT_EQ(first.jobs[0].attempts, 1u);

    // Nothing was stored, so a second no-cache run executes again.
    BatchReport second = runBatch(m, opts);
    EXPECT_EQ(second.jobs[0].cache, CacheStatus::Disabled);
    EXPECT_EQ(second.jobs[0].attempts, 1u);
}

TEST(BatchEndToEndTest, ReportJsonCarriesTheContract)
{
    std::string dir = tempDir("e2e_json");
    Manifest m =
        parseManifest("batch json check\n"
                      "job mult\n    workload mult\n"
                      "job thold\n    workload tHold\n");
    BatchReport report = runBatch(m, fleetOptions(dir));
    std::string json = report.json();

    for (const char *needle :
         {"\"schema\": \"glifs.batch_report.v1\"", "\"tool_version\"",
          "\"manifest\": \"json check\"", "\"concurrency\": 4",
          "\"jobs_total\": 2", "\"cache_hits\": 0",
          "\"exit_code\": 1", "\"name\": \"mult\"",
          "\"verdict\": \"secure\"", "\"verdict\": \"violations\"",
          "\"violation_count\"", "\"attempts\": 1"}) {
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle << " in:\n" << json;
    }
}

TEST(BatchEndToEndTest, ResumeBatchReportsJournaledJobsWithoutRerun)
{
    std::string dir = tempDir("e2e_resume");
    Manifest m =
        parseManifest("batch resume check\n"
                      "job mult\n    workload mult\n"
                      "job thold\n    workload tHold\n");
    BatchOptions opts = fleetOptions(dir);
    opts.noCache = true; // isolate journal resume from cache hits
    opts.workDir = dir + "/work";

    BatchReport first = runBatch(m, opts);
    ASSERT_EQ(first.exitCode(), 1);
    std::string journal = dir + "/work/batch.journal";
    ASSERT_TRUE(std::filesystem::exists(journal));

    // "Crash recovery": resuming a fully-journaled run re-runs
    // nothing (attempts stay as recorded) and reproduces the report.
    opts.resumeJournalPath = journal;
    BatchReport second = runBatch(m, opts);
    ASSERT_EQ(second.jobs.size(), 2u);
    EXPECT_EQ(second.exitCode(), 1);
    for (size_t i = 0; i < second.jobs.size(); ++i) {
        EXPECT_EQ(second.jobs[i].name, first.jobs[i].name);
        EXPECT_EQ(second.jobs[i].verdict, first.jobs[i].verdict);
        EXPECT_EQ(second.jobs[i].exitCode, first.jobs[i].exitCode);
        EXPECT_EQ(second.jobs[i].attempts, first.jobs[i].attempts);
        EXPECT_EQ(second.jobs[i].violationCount,
                  first.jobs[i].violationCount);
    }
    // The resumed run ran no workers, so it is near-instant.
    EXPECT_LT(second.wallSeconds, first.wallSeconds * 0.5);

    // A second resume works too: the resumed run re-journaled the
    // replayed outcomes into its own journal.
    BatchReport third = runBatch(m, opts);
    EXPECT_EQ(third.exitCode(), 1);
    EXPECT_EQ(third.jobs[1].verdict, "violations");
}

TEST(BatchEndToEndTest, ResumeRefusesAForeignManifestsJournal)
{
    std::string dir = tempDir("e2e_resume_foreign");
    BatchOptions opts = fleetOptions(dir);
    opts.noCache = true;
    opts.workDir = dir + "/work";
    Manifest m1 = parseManifest("job mult\n    workload mult\n");
    runBatch(m1, opts);

    // Same journal, different fleet: silently mixing results from
    // two manifests must be impossible.
    Manifest m2 = parseManifest("job tea8\n    workload tea8\n");
    opts.resumeJournalPath = dir + "/work/batch.journal";
    EXPECT_THROW(runBatch(m2, opts), FatalError);
}

TEST(BatchCliTest, BadManifestExitsUsage)
{
    std::string dir = tempDir("cli_bad");
    writeFile(dir + "/bad.manifest", "job a\n");
    std::string errFile = dir + "/err.txt";
    int code = runCmd(std::string(GLIFS_BATCH_BIN) + " " + dir +
                      "/bad.manifest > /dev/null 2> " + errFile);
    EXPECT_EQ(code, 3);
    EXPECT_NE(readFile(errFile).find("line 1"), std::string::npos);

    EXPECT_EQ(runCmd(std::string(GLIFS_BATCH_BIN) +
                     " /nonexistent.manifest > /dev/null 2>&1"),
              3);
    EXPECT_EQ(runCmd(std::string(GLIFS_BATCH_BIN) +
                     " > /dev/null 2>&1"),
              3);
}

TEST(BatchCliTest, DriverRunsManifestAndWritesReport)
{
    std::string dir = tempDir("cli_run");
    writeFile(dir + "/fleet.manifest",
              "job mult\n    workload mult\n"
              "job tea8\n    workload tea8\n");
    std::string reportFile = dir + "/report.json";
    int code = runCmd(std::string(GLIFS_BATCH_BIN) + " " + dir +
                      "/fleet.manifest --jobs 2 --quiet"
                      " --cache-dir " + dir + "/cache"
                      " --audit-bin " + GLIFS_AUDIT_BIN +
                      " --report " + reportFile + " > /dev/null 2>&1");
    EXPECT_EQ(code, 0);
    std::string json = readFile(reportFile);
    EXPECT_NE(json.find("\"schema\": \"glifs.batch_report.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"jobs_total\": 2"), std::string::npos);
}

} // namespace
} // namespace glifs
